#!/usr/bin/env python3
"""Gate sequential-path benchmark regressions against a committed baseline.

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json [options]

Both files are Google Benchmark ``--benchmark_format=json`` outputs. The
comparison is *ratio-normalized*: CI machines differ in speed run to run,
so each benchmark's current/baseline time ratio is divided by the median
ratio across all compared benchmarks (the machine factor) before applying
the tolerance. A benchmark fails the gate when its normalized ratio
exceeds ``1 + tolerance``.

Excluded from the gate:
  - benchmarks whose baseline time is below ``--min-us`` (timer noise),
  - multi-worker parallel sweeps (``--skip`` regex, default
    ``Parallel.*/(2|4|8)$``): their wall clock depends on worker
    scheduling and host core count, which CI does not control. The
    ``parallelism=1`` rows of the same sweeps stay gated — they are the
    sequential path this script protects.

Standard library only; no third-party packages.
"""

import argparse
import json
import re
import statistics
import sys

_UNIT_TO_US = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}


def load_times(path):
    """Returns {benchmark name: real time in microseconds}."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    times = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregates (mean/median/stddev rows under --benchmark_repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        unit = _UNIT_TO_US.get(bench.get("time_unit", "ns"))
        if unit is None or "real_time" not in bench:
            continue
        times[bench["name"]] = bench["real_time"] * unit
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh benchmark JSON")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed normalized slowdown (default 0.10)")
    parser.add_argument("--min-us", type=float, default=100.0,
                        help="ignore benchmarks with baseline below this")
    parser.add_argument("--skip", default=r"Parallel.*/(2|4|8)$",
                        help="regex of benchmark names to exclude")
    args = parser.parse_args()

    current = load_times(args.current)
    baseline = load_times(args.baseline)
    skip = re.compile(args.skip)

    compared = {}
    for name, base_us in sorted(baseline.items()):
        if name not in current:
            continue
        if skip.search(name):
            continue
        if base_us < args.min_us:
            continue
        compared[name] = current[name] / base_us

    if not compared:
        print("no comparable benchmarks; treating as pass")
        return 0

    machine_factor = statistics.median(compared.values())
    print(f"{len(compared)} benchmarks compared; "
          f"machine factor (median ratio) = {machine_factor:.3f}")

    failures = []
    for name, ratio in sorted(compared.items()):
        normalized = ratio / machine_factor
        marker = ""
        if normalized > 1.0 + args.tolerance:
            failures.append(name)
            marker = "  << REGRESSION"
        print(f"  {name}: {baseline[name]:.0f}us -> {current[name]:.0f}us "
              f"(x{ratio:.2f}, normalized x{normalized:.2f}){marker}")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed more than "
              f"{args.tolerance:.0%} after machine normalization:")
        for name in failures:
            print(f"  {name}")
        return 1
    print("no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
