#!/usr/bin/env python3
"""Gate sequential-path benchmark regressions against a committed baseline.

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json [options]

Both files are Google Benchmark ``--benchmark_format=json`` outputs. The
comparison is *ratio-normalized*: CI machines differ in speed run to run,
so each benchmark's current/baseline time ratio is divided by the median
ratio across all compared benchmarks (the machine factor) before applying
the tolerance. A benchmark fails the gate when its normalized ratio
exceeds ``1 + tolerance``.

Excluded from the gate:
  - benchmarks whose baseline time is below ``--min-us`` (timer noise),
  - multi-worker parallel sweeps (``--skip`` regex, default
    ``Parallel.*/(2|4|8)$``): their wall clock depends on worker
    scheduling and host core count, which CI does not control. The
    ``parallelism=1`` rows of the same sweeps stay gated — they are the
    sequential path this script protects.

Overhead mode::

    check_bench_regression.py CURRENT.json --overhead BM_RewriteObserved \\
        [--overhead-tolerance 0.05]

gates *paired* instrumented-vs-plain benchmarks: each named benchmark
runs both variants interleaved within one iteration and exports an
``overhead`` counter (instrumented/plain wall-time ratio) plus
``plain_us``/``observed_us``. Every row matching a given name prefix
fails the gate when its ratio exceeds ``1 + --overhead-tolerance``.
Pairing inside the benchmark is what makes a few-percent tolerance
meaningful — comparing two separately-timed rows on a shared CI host
drifts by far more than the tax being measured. This gates the
observability tax of tracing + metrics on the sequential rewrite path.

Speedup mode::

    check_bench_regression.py CURRENT.json --speedup BM_EvalIR/3 \\
        [--speedup-min 1.5]

gates *paired* compiled-vs-tree benchmarks the other way around: each
named benchmark runs the tree walker and the compiled IR interleaved
within one iteration and exports a ``speedup`` counter (tree/IR
wall-time ratio) plus ``tree_us``/``ir_us``. Every row matching a name
prefix fails the gate when its speedup falls below ``--speedup-min``.
The same pairing argument applies: the gate holds the compiled backend
to a floor that separately-timed rows on a shared host could not
enforce. This gates the k=7 plan-set execution win of src/ir.

Scaling mode::

    check_bench_regression.py CURRENT.json --scaling BM_ClusterScaling \\
        [--scaling-min 2.5]

gates *paired* multi-shard-vs-single-shard benchmarks: each named
benchmark pushes the same batch through a 1-shard and a 4-shard cluster
interleaved within one iteration and exports a ``scaling`` counter
(1-shard/4-shard wall-time ratio) plus ``shard1_us``/``shard4_us``.
Every row matching a name prefix fails the gate when its scaling falls
below ``--scaling-min``. This gates the CL-SHARD near-linear throughput
claim of src/cluster.

Retention mode::

    check_bench_regression.py CURRENT.json --retention BM_MaintSingleViewEdit \\
        [--retention-min 0.90] [--warmhit-min 5.0]

gates *paired* selective-vs-full-flush maintenance benchmarks: each named
benchmark warms a plan cache, edits one catalog view, and re-serves the
workload under both maintenance modes interleaved within one iteration,
exporting a ``retained`` counter (selective-arm retained cache fraction)
and a ``warmhit_gain`` counter (full-flush/selective re-serve wall-time
ratio) plus ``selective_us``/``flush_us``. A row fails the gate when its
retained fraction falls below ``--retention-min`` or its warm-hit gain
falls below ``--warmhit-min``. This gates the CL-MAINT claim of
src/maint: a single-view edit must not cold-start the serving layer.

Standard library only; no third-party packages.
"""

import argparse
import json
import re
import statistics
import sys

_UNIT_TO_US = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}


def load_times(path):
    """Returns {benchmark name: real time in microseconds}."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    times = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregates (mean/median/stddev rows under --benchmark_repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        unit = _UNIT_TO_US.get(bench.get("time_unit", "ns"))
        if unit is None or "real_time" not in bench:
            continue
        times[bench["name"]] = bench["real_time"] * unit
    return times


def check_overhead(path, prefixes, tolerance, min_us):
    """Gates paired benchmarks that export an ``overhead`` ratio counter.

    ``prefixes`` is a list of benchmark name prefixes (``NAME`` matches
    ``NAME`` and every ``NAME/<arg>`` row). Rows whose ``plain_us``
    counter is below ``min_us`` are skipped as timer noise. Returns the
    exit code.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    failures = []
    compared = 0
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "")
        if not any(name == p or name.startswith(p + "/") for p in prefixes):
            continue
        ratio = bench.get("overhead")
        if ratio is None:
            print(f"  {name}: no `overhead` counter; skipped")
            continue
        plain_us = bench.get("plain_us", 0.0)
        observed_us = bench.get("observed_us", 0.0)
        if plain_us < min_us:
            continue
        compared += 1
        marker = ""
        if ratio > 1.0 + tolerance:
            failures.append(name)
            marker = "  << OVERHEAD"
        print(f"  {name}: {plain_us:.0f}us plain -> "
              f"{observed_us:.0f}us observed (x{ratio:.3f}){marker}")

    if not compared:
        print("no comparable overhead rows; treating as pass")
        return 0
    if failures:
        print(f"\n{len(failures)} benchmark(s) exceed the "
              f"{tolerance:.0%} instrumentation overhead budget:")
        for name in failures:
            print(f"  {name}")
        return 1
    print(f"instrumentation overhead within {tolerance:.0%} "
          f"on all {compared} rows")
    return 0


def check_speedup(path, prefixes, minimum, min_us):
    """Gates paired benchmarks that export a ``speedup`` ratio counter.

    ``prefixes`` works like in check_overhead. Rows whose ``tree_us``
    counter is below ``min_us`` are skipped as timer noise. Returns the
    exit code.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    failures = []
    compared = 0
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "")
        if not any(name == p or name.startswith(p + "/") for p in prefixes):
            continue
        ratio = bench.get("speedup")
        if ratio is None:
            print(f"  {name}: no `speedup` counter; skipped")
            continue
        tree_us = bench.get("tree_us", 0.0)
        ir_us = bench.get("ir_us", 0.0)
        if tree_us < min_us:
            continue
        compared += 1
        marker = ""
        if ratio < minimum:
            failures.append(name)
            marker = "  << BELOW FLOOR"
        print(f"  {name}: {tree_us:.0f}us tree -> "
              f"{ir_us:.0f}us IR (x{ratio:.2f}){marker}")

    if not compared:
        print("no comparable speedup rows; gate FAILS (nothing measured)")
        return 1
    if failures:
        print(f"\n{len(failures)} benchmark(s) fall below the "
              f"{minimum:.2f}x compiled-execution speedup floor:")
        for name in failures:
            print(f"  {name}")
        return 1
    print(f"compiled execution at or above {minimum:.2f}x "
          f"on all {compared} rows")
    return 0


def check_scaling(path, prefixes, minimum, min_us):
    """Gates paired benchmarks that export a ``scaling`` ratio counter.

    ``prefixes`` works like in check_overhead. Rows whose ``shard1_us``
    counter is below ``min_us`` are skipped as timer noise. Returns the
    exit code.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    failures = []
    compared = 0
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "")
        if not any(name == p or name.startswith(p + "/") for p in prefixes):
            continue
        ratio = bench.get("scaling")
        if ratio is None:
            print(f"  {name}: no `scaling` counter; skipped")
            continue
        shard1_us = bench.get("shard1_us", 0.0)
        shard4_us = bench.get("shard4_us", 0.0)
        if shard1_us < min_us:
            continue
        compared += 1
        marker = ""
        if ratio < minimum:
            failures.append(name)
            marker = "  << BELOW FLOOR"
        print(f"  {name}: {shard1_us:.0f}us at 1 shard -> "
              f"{shard4_us:.0f}us at 4 (x{ratio:.2f}){marker}")

    if not compared:
        print("no comparable scaling rows; gate FAILS (nothing measured)")
        return 1
    if failures:
        print(f"\n{len(failures)} benchmark(s) fall below the "
              f"{minimum:.2f}x cluster throughput-scaling floor:")
        for name in failures:
            print(f"  {name}")
        return 1
    print(f"cluster scaling at or above {minimum:.2f}x "
          f"on all {compared} rows")
    return 0


def check_retention(path, prefixes, retention_min, warmhit_min):
    """Gates paired maintenance benchmarks exporting ``retained`` and
    ``warmhit_gain`` counters. Returns the exit code."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    failures = []
    compared = 0
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "")
        if not any(name == p or name.startswith(p + "/") for p in prefixes):
            continue
        retained = bench.get("retained")
        gain = bench.get("warmhit_gain")
        if retained is None or gain is None:
            print(f"  {name}: no `retained`/`warmhit_gain` counters; skipped")
            continue
        compared += 1
        selective_us = bench.get("selective_us", 0.0)
        flush_us = bench.get("flush_us", 0.0)
        marker = ""
        if retained < retention_min:
            failures.append(f"{name} (retained {retained:.3f})")
            marker = "  << LOW RETENTION"
        if gain < warmhit_min:
            failures.append(f"{name} (warm-hit gain x{gain:.2f})")
            marker += "  << LOW WARM-HIT GAIN"
        print(f"  {name}: retained {retained:.1%}, "
              f"{flush_us:.0f}us flush -> {selective_us:.0f}us selective "
              f"(x{gain:.2f}){marker}")

    if not compared:
        print("no comparable retention rows; gate FAILS (nothing measured)")
        return 1
    if failures:
        print(f"\n{len(failures)} maintenance gate violation(s) "
              f"(floors: retained >= {retention_min:.2f}, "
              f"warm-hit gain >= {warmhit_min:.2f}x):")
        for entry in failures:
            print(f"  {entry}")
        return 1
    print(f"cache retention >= {retention_min:.0%} and warm-hit gain >= "
          f"{warmhit_min:.2f}x on all {compared} rows")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh benchmark JSON")
    parser.add_argument("baseline", nargs="?",
                        help="committed baseline JSON (omit with --overhead)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed normalized slowdown (default 0.10)")
    parser.add_argument("--min-us", type=float, default=100.0,
                        help="ignore benchmarks with baseline below this")
    parser.add_argument("--skip", default=r"Parallel.*/(2|4|8)$",
                        help="regex of benchmark names to exclude")
    parser.add_argument("--overhead", nargs="+", metavar="BENCH",
                        help="paired benchmarks (with an `overhead` ratio "
                             "counter) to gate instead of a baseline "
                             "comparison")
    parser.add_argument("--overhead-tolerance", type=float, default=0.05,
                        help="allowed instrumented/plain slowdown in "
                             "--overhead mode (default 0.05)")
    parser.add_argument("--speedup", nargs="+", metavar="BENCH",
                        help="paired benchmarks (with a `speedup` ratio "
                             "counter) to hold to a minimum tree/IR "
                             "speedup instead of a baseline comparison")
    parser.add_argument("--speedup-min", type=float, default=1.5,
                        help="minimum tree/IR speedup in --speedup mode "
                             "(default 1.5)")
    parser.add_argument("--scaling", nargs="+", metavar="BENCH",
                        help="paired benchmarks (with a `scaling` ratio "
                             "counter) to hold to a minimum 4-shard/1-shard "
                             "throughput ratio instead of a baseline "
                             "comparison")
    parser.add_argument("--scaling-min", type=float, default=2.5,
                        help="minimum cluster throughput scaling in "
                             "--scaling mode (default 2.5)")
    parser.add_argument("--retention", nargs="+", metavar="BENCH",
                        help="paired maintenance benchmarks (with "
                             "`retained` and `warmhit_gain` counters) to "
                             "hold to cache-retention floors instead of a "
                             "baseline comparison")
    parser.add_argument("--retention-min", type=float, default=0.90,
                        help="minimum selective-arm retained cache "
                             "fraction in --retention mode (default 0.90)")
    parser.add_argument("--warmhit-min", type=float, default=5.0,
                        help="minimum full-flush/selective re-serve "
                             "wall-time ratio in --retention mode "
                             "(default 5.0)")
    args = parser.parse_args()

    if args.overhead:
        return check_overhead(args.current, args.overhead,
                              args.overhead_tolerance, args.min_us)
    if args.speedup:
        return check_speedup(args.current, args.speedup,
                             args.speedup_min, args.min_us)
    if args.scaling:
        return check_scaling(args.current, args.scaling,
                             args.scaling_min, args.min_us)
    if args.retention:
        return check_retention(args.current, args.retention,
                               args.retention_min, args.warmhit_min)
    if not args.baseline:
        parser.error("baseline JSON is required unless --overhead, "
                     "--speedup, --scaling, or --retention is given")

    current = load_times(args.current)
    baseline = load_times(args.baseline)
    skip = re.compile(args.skip)

    compared = {}
    for name, base_us in sorted(baseline.items()):
        if name not in current:
            continue
        if skip.search(name):
            continue
        if base_us < args.min_us:
            continue
        compared[name] = current[name] / base_us

    if not compared:
        print("no comparable benchmarks; treating as pass")
        return 0

    machine_factor = statistics.median(compared.values())
    print(f"{len(compared)} benchmarks compared; "
          f"machine factor (median ratio) = {machine_factor:.3f}")

    failures = []
    for name, ratio in sorted(compared.items()):
        normalized = ratio / machine_factor
        marker = ""
        if normalized > 1.0 + args.tolerance:
            failures.append(name)
            marker = "  << REGRESSION"
        print(f"  {name}: {baseline[name]:.0f}us -> {current[name]:.0f}us "
              f"(x{ratio:.2f}, normalized x{normalized:.2f}){marker}")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed more than "
              f"{args.tolerance:.0%} after machine normalization:")
        for name in failures:
            print(f"  {name}")
        return 1
    print("no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
