#!/usr/bin/env python3
"""Collect per-module test coverage and gate regressions against a baseline.

Two subcommands, in the style of check_bench_regression.py:

    check_coverage.py report --build-dir BUILD [--source-root .] [-o OUT]
        Runs ``gcov --json-format --stdout`` over every .gcda file in the
        build tree (the build must be configured with -DTSLRW_COVERAGE=ON
        and the tests run), merges execution counts per source line and
        branch, and writes per-``src/`` module line/branch coverage JSON::

            {"modules": {"src/rewrite": {"line_total": 812,
                                         "line_covered": 790,
                                         "line_pct": 97.3,
                                         "branch_total": ...,
                                         "branch_covered": ...,
                                         "branch_pct": ...}, ...},
             "totals": {...}}

    check_coverage.py check CURRENT.json BASELINE.json [--tolerance 2.0]
        Fails (exit 1) when any module's line coverage percentage dropped
        by more than ``--tolerance`` points against the committed
        baseline, or when a baseline module disappeared. New modules and
        improvements pass (regenerate the baseline to lock them in).

Standard library only; requires the ``gcov`` binary (JSON output needs
gcc/gcov >= 9).
"""

import argparse
import collections
import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def run_gcov(gcda, source_root):
    """Yields gcov JSON documents (one per instrumented source) for one
    .gcda file."""
    try:
        out = subprocess.run(
            ["gcov", "--json-format", "--stdout", "--branch-probabilities",
             gcda],
            capture_output=True, check=True, cwd=source_root)
    except (subprocess.CalledProcessError, FileNotFoundError) as e:
        print(f"warning: gcov failed on {gcda}: {e}", file=sys.stderr)
        return
    # --stdout prints one JSON document per line, one per source file
    # group; tolerate (skip) any non-JSON diagnostics interleaved.
    for line in out.stdout.splitlines():
        line = line.strip()
        if not line.startswith(b"{"):
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            continue


def normalize(path, source_root):
    """Repo-relative path for an instrumented file, or None to skip it
    (system headers, third-party, generated)."""
    path = os.path.normpath(os.path.join(source_root, path))
    root = os.path.normpath(os.path.abspath(source_root))
    try:
        rel = os.path.relpath(path, root)
    except ValueError:
        return None
    if rel.startswith(".."):
        return None
    if not rel.startswith("src" + os.sep):
        return None
    return rel.replace(os.sep, "/")


def module_of(rel_path):
    """src/rewrite/rewriter.cc -> src/rewrite; src/top.h -> src."""
    parts = rel_path.split("/")
    return "/".join(parts[:2]) if len(parts) > 2 else parts[0]


def collect(build_dir, source_root):
    # Execution counts merged across every translation unit that compiled
    # the file (headers are seen many times): counts sum per line and per
    # (line, branch index).
    line_counts = collections.defaultdict(int)     # (file, line) -> count
    branch_counts = collections.defaultdict(int)   # (file, line, i) -> count
    gcda_files = list(find_gcda(build_dir))
    if not gcda_files:
        print(f"error: no .gcda files under {build_dir} "
              "(build with -DTSLRW_COVERAGE=ON and run the tests first)",
              file=sys.stderr)
        sys.exit(2)
    for gcda in gcda_files:
        for doc in run_gcov(gcda, source_root):
            for f in doc.get("files", []):
                rel = normalize(f.get("file", ""), source_root)
                if rel is None:
                    continue
                for line in f.get("lines", []):
                    number = line.get("line_number")
                    if number is None:
                        continue
                    line_counts[(rel, number)] += int(line.get("count", 0))
                    for i, br in enumerate(line.get("branches", [])):
                        branch_counts[(rel, number, i)] += int(
                            br.get("count", 0))
    return line_counts, branch_counts


def summarize(line_counts, branch_counts):
    per_module = collections.defaultdict(
        lambda: {"line_total": 0, "line_covered": 0,
                 "branch_total": 0, "branch_covered": 0})
    for (rel, _number), count in line_counts.items():
        m = per_module[module_of(rel)]
        m["line_total"] += 1
        if count > 0:
            m["line_covered"] += 1
    for (rel, _number, _i), count in branch_counts.items():
        m = per_module[module_of(rel)]
        m["branch_total"] += 1
        if count > 0:
            m["branch_covered"] += 1

    def with_pcts(stats):
        out = dict(stats)
        out["line_pct"] = round(
            100.0 * stats["line_covered"] / stats["line_total"], 2) \
            if stats["line_total"] else 0.0
        out["branch_pct"] = round(
            100.0 * stats["branch_covered"] / stats["branch_total"], 2) \
            if stats["branch_total"] else 0.0
        return out

    modules = {name: with_pcts(stats)
               for name, stats in sorted(per_module.items())}
    totals = {"line_total": 0, "line_covered": 0,
              "branch_total": 0, "branch_covered": 0}
    for stats in per_module.values():
        for key in totals:
            totals[key] += stats[key]
    return {"modules": modules, "totals": with_pcts(totals)}


def cmd_report(args):
    line_counts, branch_counts = collect(args.build_dir, args.source_root)
    summary = summarize(line_counts, branch_counts)
    text = json.dumps(summary, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text)
    print(f"{'module':<20} {'lines':>16} {'line%':>7} "
          f"{'branches':>16} {'branch%':>8}")
    for name, m in summary["modules"].items():
        print(f"{name:<20} "
              f"{m['line_covered']:>7}/{m['line_total']:<8} "
              f"{m['line_pct']:>6.2f} "
              f"{m['branch_covered']:>7}/{m['branch_total']:<8} "
              f"{m['branch_pct']:>7.2f}")
    t = summary["totals"]
    print(f"{'TOTAL':<20} "
          f"{t['line_covered']:>7}/{t['line_total']:<8} "
          f"{t['line_pct']:>6.2f} "
          f"{t['branch_covered']:>7}/{t['branch_total']:<8} "
          f"{t['branch_pct']:>7.2f}")
    return 0


def cmd_check(args):
    with open(args.current, "r", encoding="utf-8") as f:
        current = json.load(f)["modules"]
    with open(args.baseline, "r", encoding="utf-8") as f:
        baseline = json.load(f)["modules"]

    failures = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: module missing from current report "
                            f"(baseline line {base['line_pct']:.2f}%)")
            continue
        drop = base["line_pct"] - cur["line_pct"]
        marker = "FAIL" if drop > args.tolerance else "ok"
        print(f"{marker:<5} {name:<20} line {base['line_pct']:6.2f}% -> "
              f"{cur['line_pct']:6.2f}% ({-drop:+.2f})")
        if drop > args.tolerance:
            failures.append(
                f"{name}: line coverage fell {drop:.2f} points "
                f"({base['line_pct']:.2f}% -> {cur['line_pct']:.2f}%), "
                f"tolerance {args.tolerance:.2f}")
    for name in sorted(set(current) - set(baseline)):
        print(f"new  {name:<20} line {current[name]['line_pct']:6.2f}% "
              "(not in baseline)")

    if failures:
        print("\ncoverage regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("  (if intentional, regenerate COVERAGE.json via "
              "`check_coverage.py report` and commit it)", file=sys.stderr)
        return 1
    print("\ncoverage gate passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="aggregate gcov data to JSON")
    report.add_argument("--build-dir", required=True,
                        help="build tree with .gcda files")
    report.add_argument("--source-root", default=".",
                        help="repository root (default .)")
    report.add_argument("-o", "--output",
                        help="write the JSON summary here")
    report.set_defaults(func=cmd_report)

    check = sub.add_parser("check", help="gate against a baseline")
    check.add_argument("current", help="fresh report JSON")
    check.add_argument("baseline", help="committed baseline JSON")
    check.add_argument("--tolerance", type=float, default=2.0,
                       help="allowed line-coverage drop in percentage "
                            "points per module (default 2.0)")
    check.set_defaults(func=cmd_check)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
