// CL-MAINT: what dependency-tracked selective invalidation buys on a
// catalog edit (docs/SERVING.md "Incremental maintenance"). Two claims are
// gated: (1) after editing ONE view out of N, the selective decider
// retains at least 90% of the warmed plan cache, and (2) re-serving the
// warmed workload after that edit is at least 5x faster under selective
// maintenance than under the pre-maintenance full flush — the flush arm
// pays a cold plan search per query, the selective arm pays one. Both are
// exported as paired counters (`retained`, `warmhit_gain`) from the same
// iteration, so the gate is immune to machine-speed drift. CI merges the
// JSON into BENCH_service.json and holds the floors with
// check_bench_regression.py --retention.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "catalog/diff.h"
#include "mediator/mediator.h"
#include "oem/generator.h"
#include "service/server.h"

namespace tslrw::bench {
namespace {

/// N single-path views over per-view labels m{i}: every warmed query
/// matches exactly one view, so the catalog scales without blowing up the
/// per-query candidate count (the exponential axis lives in
/// bench_rewrite). Editing view \p edited republishes under a different
/// head label — a real semantic change (the plans that use it differ),
/// while the query that maps onto the view stays answerable.
std::vector<SourceDescription> MakeViews(int n, int edited) {
  std::vector<Capability> caps;
  caps.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Capability cap;
    const char* head = (i == edited) ? "oedit" : "o";
    cap.view = MustParse(
        StrCat("<v", i, "(P') ", head, i, " {<w", i, "(X') k U'>}> :- ",
               "<P' rec {<X' m", i, " U'>}>@db"),
        StrCat("V", i));
    caps.push_back(std::move(cap));
  }
  return {SourceDescription{"db", std::move(caps)}};
}

Mediator MustMake(std::vector<SourceDescription> sources) {
  auto mediator = Mediator::Make(std::move(sources));
  if (!mediator.ok()) std::abort();
  return std::move(mediator).ValueOrDie();
}

SourceCatalog MakeMaintCatalog() {
  GeneratorOptions options;
  options.seed = 7;
  options.num_roots = 24;
  options.max_depth = 2;
  options.num_labels = 4;
  options.num_values = 4;
  options.root_label = "rec";
  SourceCatalog catalog;
  catalog.Put(GenerateOemDatabase("db", options));
  return catalog;
}

/// The warmed workload: W distinct canonical queries, query j matching
/// only view j (query 0 is the one whose view the edit invalidates).
std::vector<TslQuery> MakeWorkload(int w) {
  std::vector<TslQuery> queries;
  queries.reserve(static_cast<size_t>(w));
  for (int j = 0; j < w; ++j) {
    queries.push_back(
        MustParse(StrCat("<f(P) out yes> :- <P rec {<X m", j, " U>}>@db"),
                  StrCat("Q", j)));
  }
  return queries;
}

bool AnswerAll(QueryServer& server, const std::vector<TslQuery>& workload,
               benchmark::State& state) {
  for (const TslQuery& query : workload) {
    auto response = server.Answer(query);
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return false;
    }
  }
  return true;
}

/// The paired sweep: warm W queries against N views, edit one view the
/// workload uses, re-serve — once per maintenance mode, interleaved in the
/// same iteration. Counters:
///   retained      selective-arm retained fraction after the edit
///   warmhit_gain  flush-arm re-serve time / selective-arm re-serve time
void BM_MaintSingleViewEdit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // Query j maps onto view j, so the workload cannot outnumber the views.
  const int num_queries = std::min(n, 128);
  const SourceCatalog catalog = MakeMaintCatalog();
  const std::vector<TslQuery> workload = MakeWorkload(num_queries);

  using Clock = std::chrono::steady_clock;
  std::chrono::nanoseconds selective_ns{0};
  std::chrono::nanoseconds flush_ns{0};
  double retained = 0.0;

  auto run_arm = [&](MaintenanceMode mode,
                     std::chrono::nanoseconds* total) -> bool {
    state.PauseTiming();
    ServerOptions options;
    options.threads = 1;
    options.plan_cache_capacity = static_cast<size_t>(4 * num_queries);
    options.maintenance = mode;
    QueryServer server(MustMake(MakeViews(n, -1)), catalog, options);
    Mediator edited = MustMake(MakeViews(n, /*edited=*/0));
    if (!AnswerAll(server, workload, state)) return false;
    state.ResumeTiming();

    // Timed: the swap (diff + per-entry decisions) plus the re-serve.
    // Building the replacement mediator is untimed — both maintenance
    // modes pay it identically, and it would otherwise swamp the
    // cache-retention difference being measured.
    const auto start = Clock::now();
    MaintenanceReport report = server.ReplaceMediator(std::move(edited));
    if (!AnswerAll(server, workload, state)) return false;
    *total += Clock::now() - start;

    if (mode == MaintenanceMode::kSelective) {
      if (report.entries_examined == 0) {
        state.SkipWithError("selective swap examined no entries");
        return false;
      }
      retained = static_cast<double>(report.entries_retained) /
                 static_cast<double>(report.entries_examined);
    }
    return true;
  };

  bool selective_first = true;
  for (auto _ : state) {
    if (selective_first) {
      if (!run_arm(MaintenanceMode::kSelective, &selective_ns)) return;
      if (!run_arm(MaintenanceMode::kFullFlush, &flush_ns)) return;
    } else {
      if (!run_arm(MaintenanceMode::kFullFlush, &flush_ns)) return;
      if (!run_arm(MaintenanceMode::kSelective, &selective_ns)) return;
    }
    selective_first = !selective_first;
  }

  const double iters = static_cast<double>(
      std::max<int64_t>(static_cast<int64_t>(state.iterations()), 1));
  state.counters["retained"] = retained;
  state.counters["selective_us"] =
      static_cast<double>(selective_ns.count()) / 1e3 / iters;
  state.counters["flush_us"] =
      static_cast<double>(flush_ns.count()) / 1e3 / iters;
  state.counters["warmhit_gain"] =
      selective_ns.count() > 0
          ? static_cast<double>(flush_ns.count()) /
                static_cast<double>(selective_ns.count())
          : 0.0;
}
BENCHMARK(BM_MaintSingleViewEdit)
    ->Arg(100)
    ->Arg(1000)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The diff itself: ComputeCatalogDelta over two N-view catalogs that
/// differ in one view. This is the fixed per-swap cost selective
/// maintenance adds before any per-entry decision; it must stay linear in
/// the catalog size.
void BM_CatalogDeltaCompute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<SourceDescription> before = MakeViews(n, -1);
  const std::vector<SourceDescription> after = MakeViews(n, 0);
  for (auto _ : state) {
    CatalogDelta delta = ComputeCatalogDelta(before, nullptr, after, nullptr);
    benchmark::DoNotOptimize(delta);
    if (delta.changed.size() != 1) {
      state.SkipWithError("diff misclassified the single-view edit");
      return;
    }
  }
}
BENCHMARK(BM_CatalogDeltaCompute)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tslrw::bench

BENCHMARK_MAIN();
