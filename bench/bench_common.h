#ifndef TSLRW_BENCH_BENCH_COMMON_H_
#define TSLRW_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "tsl/ast.h"
#include "tsl/parser.h"

namespace tslrw::bench {

/// Parses or aborts — benchmark inputs are programmer-controlled.
inline TslQuery MustParse(const std::string& text, std::string name = "") {
  auto parsed = ParseTslQuery(text, std::move(name));
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench fixture failed to parse: %s\n  %s\n",
                 parsed.status().ToString().c_str(), text.c_str());
    std::abort();
  }
  return std::move(parsed).ValueOrDie();
}

/// A "star" query: k single-path conditions on one root,
/// `<f(P) out yes> :- <P rec {<X1 l1 u1>}>@db AND ... AND <P rec {<Xk lk uk>}>@db`.
inline TslQuery MakeStarQuery(int k, const std::string& source = "db") {
  std::vector<std::string> body;
  for (int i = 0; i < k; ++i) {
    body.push_back(StrCat("<P rec {<X", i, " l", i, " u", i, ">}>@", source));
  }
  return MustParse(StrCat("<f(P) out yes> :- ", Join(body, " AND ")), "Q");
}

/// A chain query of the given depth:
/// `<f(P) out yes> :- <P rec {<X1 l1 {<X2 l2 ... u>}>}>@db`.
inline TslQuery MakeChainQuery(int depth, const std::string& source = "db") {
  std::string inner = "u";
  for (int d = depth; d >= 1; --d) {
    inner = StrCat("{<X", d, " l", d, " ", inner, ">}");
  }
  return MustParse(StrCat("<f(P) out yes> :- <P rec ", inner, ">@", source),
                   "Q");
}

/// A view with m interchangeable body paths (same shape, different
/// variables), e.g. for CL-EXP-MAP: each path can map onto any of the
/// query's k star arms when labels are variables.
inline TslQuery MakeWildcardView(int m, const std::string& name,
                                 const std::string& source = "db") {
  std::vector<std::string> body;
  std::vector<std::string> head;
  for (int i = 0; i < m; ++i) {
    body.push_back(
        StrCat("<P' rec {<A", i, " B", i, " C", i, ">}>@", source));
    head.push_back(StrCat("<w", i, "(A", i, ") m", i, " C", i, ">"));
  }
  return MustParse(StrCat("<v(P') out {", Join(head, " "), "}> :- ",
                          Join(body, " AND ")),
                   name);
}

/// The dump view: republishes rec-objects and their subobjects.
inline TslQuery MakeDumpView(const std::string& name,
                             const std::string& source = "db") {
  return MustParse(StrCat("<d(P') rec {<X' Y' Z'>}> :- <P' rec {<X' Y' Z'>}>@",
                          source),
                   name);
}

/// A view whose head has b sibling branches, each able to absorb a generic
/// member path — b^n unifier combinations for a query with n generic
/// conditions over it (CL-EXP-COMP).
inline TslQuery MakeBranchyView(int b, const std::string& name,
                                const std::string& source = "db") {
  std::vector<std::string> head;
  for (int i = 0; i < b; ++i) {
    head.push_back(StrCat("<w", i, "(X", i, "') m C", i, "'>"));
  }
  std::vector<std::string> body;
  for (int i = 0; i < b; ++i) {
    body.push_back(
        StrCat("<P' rec {<X", i, "' l", i, " C", i, "'>}>@", source));
  }
  return MustParse(StrCat("<v(P') out {", Join(head, " "), "}> :- ",
                          Join(body, " AND ")),
                   name);
}

/// A query with n generic member conditions over view \p view_name, each
/// unifiable with every branch of a MakeBranchyView head.
inline TslQuery MakeGenericViewQuery(int n, const std::string& view_name) {
  std::vector<std::string> body;
  for (int i = 0; i < n; ++i) {
    body.push_back(StrCat("<v(P) out {<W", i, " M", i, " U", i, ">}>@",
                          view_name));
  }
  return MustParse(StrCat("<f(P) out yes> :- ", Join(body, " AND ")), "Q");
}

}  // namespace tslrw::bench

#endif  // TSLRW_BENCH_BENCH_COMMON_H_
