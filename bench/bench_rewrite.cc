// CL-EXP-CAND (\S5.1 + \S3.4): "Step 2 can generate an exponential number
// of candidate rewritings", and the \S3.4 cover heuristic "can
// substantially improve" the algorithm. We sweep the number of query
// conditions k and views v, reporting candidates generated/tested with the
// heuristic ON vs OFF — the ablation for the paper's one explicit
// algorithmic design choice — plus end-to-end rewriting latency.

#include <algorithm>
#include <chrono>
#include <cstdint>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "catalog/compiler.h"
#include "common/virtual_clock.h"
#include "eval/evaluator.h"
#include "ir/compiler.h"
#include "ir/interp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "oem/parser.h"
#include "rewrite/contained.h"
#include "rewrite/minimize.h"
#include "rewrite/rewriter.h"

namespace tslrw::bench {
namespace {

/// One single-arm view per query condition: `<vi(P') oi {...li...}>`.
std::vector<TslQuery> MakePerArmViews(int k) {
  std::vector<TslQuery> views;
  for (int i = 0; i < k; ++i) {
    views.push_back(MustParse(
        StrCat("<v", i, "(P') o", i, " {<w", i, "(X') m U'>}> :- ",
               "<P' rec {<X' l", i, " U'>}>@db"),
        StrCat("V", i)));
  }
  return views;
}

void RunRewrite(benchmark::State& state, bool heuristic) {
  const int k = static_cast<int>(state.range(0));
  TslQuery query = MakeStarQuery(k);
  std::vector<TslQuery> views = MakePerArmViews(k);
  RewriteOptions options;
  options.use_cover_heuristic = heuristic;
  options.prune_dominated = false;
  options.parallelism = 1;  // the sequential algorithm, on any host
  RewriteResult last;
  for (auto _ : state) {
    auto result = RewriteQuery(query, views, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = std::move(result).value();
    benchmark::DoNotOptimize(last);
  }
  state.counters["candidates"] =
      static_cast<double>(last.candidates_generated);
  state.counters["tested"] = static_cast<double>(last.candidates_tested);
  state.counters["rewritings"] = static_cast<double>(last.rewritings.size());
}

void BM_RewriteHeuristicOn(benchmark::State& state) {
  RunRewrite(state, /*heuristic=*/true);
}
BENCHMARK(BM_RewriteHeuristicOn)->DenseRange(1, 6);

void BM_RewriteHeuristicOff(benchmark::State& state) {
  RunRewrite(state, /*heuristic=*/false);
}
BENCHMARK(BM_RewriteHeuristicOff)->DenseRange(1, 6);

void BM_RewriteObserved(benchmark::State& state) {
  // The observability tax on the CL-EXP-CAND star, measured as a *paired*
  // comparison: each iteration runs the plain and the instrumented
  // rewrite back-to-back (alternating which goes first) and accumulates
  // their wall times separately. Interleaving cancels the slow load
  // drift of a shared host that block-at-a-time comparison of two
  // benchmark rows cannot — single-pass A/B rows here swing ±20% in
  // either direction, dwarfing the real tax. check_bench_regression
  // --overhead gates the exported `overhead` ratio at <5%.
  const int k = static_cast<int>(state.range(0));
  TslQuery query = MakeStarQuery(k);
  std::vector<TslQuery> views = MakePerArmViews(k);
  MetricRegistry metrics;  // long-lived, like a server's registry
  RewriteOptions plain;
  plain.use_cover_heuristic = true;
  plain.prune_dominated = false;
  plain.parallelism = 1;
  RewriteOptions observed = plain;
  observed.metrics = &metrics;
  using Clock = std::chrono::steady_clock;
  std::chrono::nanoseconds plain_ns{0};
  std::chrono::nanoseconds observed_ns{0};
  auto run_plain = [&] {
    const auto start = Clock::now();
    auto result = RewriteQuery(query, views, plain);
    plain_ns += Clock::now() - start;
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  };
  auto run_observed = [&] {
    VirtualClock clock;  // fresh tracer per iteration, like one per request
    Tracer tracer(&clock);
    observed.tracer = &tracer;
    const auto start = Clock::now();
    auto result = RewriteQuery(query, views, observed);
    observed_ns += Clock::now() - start;
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  };
  bool plain_first = true;
  for (auto _ : state) {
    if (plain_first) {
      run_plain();
      run_observed();
    } else {
      run_observed();
      run_plain();
    }
    plain_first = !plain_first;
  }
  const double iters = static_cast<double>(std::max<int64_t>(
      static_cast<int64_t>(state.iterations()), 1));
  state.counters["plain_us"] =
      static_cast<double>(plain_ns.count()) / 1e3 / iters;
  state.counters["observed_us"] =
      static_cast<double>(observed_ns.count()) / 1e3 / iters;
  state.counters["overhead"] =
      plain_ns.count() > 0
          ? static_cast<double>(observed_ns.count()) /
                static_cast<double>(plain_ns.count())
          : 0.0;
}
BENCHMARK(BM_RewriteObserved)->DenseRange(1, 6);

void RunParallelStar(benchmark::State& state, bool heuristic) {
  // CL-PAR: the k=7 CL-EXP-CAND star under the parallel verification
  // pipeline, swept over worker counts. All 2^7 - 1 candidates compose to
  // α-equivalent rule sets, so the verdict memo answers all but the first
  // \S4 test per worker — on a single-core host the whole speedup is
  // sharing, on a multi-core host threads add to it.
  const size_t workers = static_cast<size_t>(state.range(0));
  const int k = 7;
  TslQuery query = MakeStarQuery(k);
  std::vector<TslQuery> views = MakePerArmViews(k);
  RewriteOptions options;
  options.use_cover_heuristic = heuristic;
  options.prune_dominated = false;
  options.parallelism = workers;
  RewriteResult last;
  for (auto _ : state) {
    auto result = RewriteQuery(query, views, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = std::move(result).value();
    benchmark::DoNotOptimize(last);
  }
  state.counters["candidates"] =
      static_cast<double>(last.candidates_generated);
  state.counters["chase_hits"] = static_cast<double>(last.chase_cache_hits);
  state.counters["equiv_hits"] = static_cast<double>(last.equiv_cache_hits);
  state.counters["batches"] = static_cast<double>(last.batches_dispatched);
  state.counters["verify_us"] = static_cast<double>(last.verify_wall_ticks);
}

void BM_RewriteParallelCoverOn(benchmark::State& state) {
  RunParallelStar(state, /*heuristic=*/true);
}
BENCHMARK(BM_RewriteParallelCoverOn)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RewriteParallelCoverOff(benchmark::State& state) {
  RunParallelStar(state, /*heuristic=*/false);
}
BENCHMARK(BM_RewriteParallelCoverOff)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RewriteManyIrrelevantViews(benchmark::State& state) {
  // Robustness to catalog size: v irrelevant views next to one useful one.
  const int v = static_cast<int>(state.range(0));
  TslQuery query = MakeStarQuery(2);
  std::vector<TslQuery> views = MakePerArmViews(2);
  for (int i = 0; i < v; ++i) {
    views.push_back(MustParse(
        StrCat("<z", i, "(P') zz {<y", i, "(X') m U'>}> :- ",
               "<P' zebra", i, " {<X' q U'>}>@db"),
        StrCat("Z", i)));
  }
  for (auto _ : state) {
    auto result = RewriteQuery(query, views);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(v);
}
BENCHMARK(BM_RewriteManyIrrelevantViews)
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->Complexity();

void BM_RewriteIndexed(benchmark::State& state) {
  // Catalog-scale pruning through the compiled structural view index
  // (src/catalog): v views of which only two can map into the query. The
  // index is compiled once, offline — outside the timed loop, as a
  // mediator would at startup — and each iteration runs the full scan and
  // the indexed rewrite back-to-back (alternating order, same pairing
  // trick as BM_RewriteObserved) so the exported `speedup` ratio is
  // meaningful on a noisy host. The indexed path must stay sublinear in v:
  // its per-query cost is the signature probe plus the two admitted views,
  // while the full scan attempts a mapping per view.
  const int v = static_cast<int>(state.range(0));
  TslQuery query = MakeStarQuery(2);
  std::vector<TslQuery> views = MakePerArmViews(2);
  for (int i = 0; i < v - 2; ++i) {
    views.push_back(MustParse(
        StrCat("<z", i, "(P') zz {<y", i, "(X') m U'>}> :- ",
               "<P' zebra", i, " {<X' q U'>}>@db"),
        StrCat("Z", i)));
  }
  auto catalog = CompileCatalog(DescribeViews(views), nullptr);
  if (!catalog.ok()) {
    state.SkipWithError(catalog.status().ToString().c_str());
    return;
  }
  RewriteOptions full;
  full.prune_dominated = false;
  full.parallelism = 1;
  RewriteOptions indexed = full;
  indexed.view_index = catalog->get();
  using Clock = std::chrono::steady_clock;
  std::chrono::nanoseconds full_ns{0};
  std::chrono::nanoseconds indexed_ns{0};
  size_t rewritings = 0;
  auto run = [&](const RewriteOptions& options,
                 std::chrono::nanoseconds* sink) {
    const auto start = Clock::now();
    auto result = RewriteQuery(query, views, options);
    *sink += Clock::now() - start;
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    rewritings = result.ok() ? result->rewritings.size() : 0;
    benchmark::DoNotOptimize(result);
  };
  bool full_first = true;
  for (auto _ : state) {
    if (full_first) {
      run(full, &full_ns);
      run(indexed, &indexed_ns);
    } else {
      run(indexed, &indexed_ns);
      run(full, &full_ns);
    }
    full_first = !full_first;
  }
  const double iters = static_cast<double>(std::max<int64_t>(
      static_cast<int64_t>(state.iterations()), 1));
  state.counters["full_us"] =
      static_cast<double>(full_ns.count()) / 1e3 / iters;
  state.counters["indexed_us"] =
      static_cast<double>(indexed_ns.count()) / 1e3 / iters;
  state.counters["speedup"] =
      indexed_ns.count() > 0
          ? static_cast<double>(full_ns.count()) /
                static_cast<double>(indexed_ns.count())
          : 0.0;
  state.counters["rewritings"] = static_cast<double>(rewritings);
  state.SetComplexityN(v);
}
BENCHMARK(BM_RewriteIndexed)->Arg(10)->Arg(100)->Arg(1000)->Complexity();

void BM_CompileCatalog(benchmark::State& state) {
  // The offline cost the index trades for: whole-catalog compilation at v
  // views, chase + signatures + pairwise containment lattice.
  const int v = static_cast<int>(state.range(0));
  std::vector<TslQuery> views = MakePerArmViews(2);
  for (int i = 0; i < v - 2; ++i) {
    views.push_back(MustParse(
        StrCat("<z", i, "(P') zz {<y", i, "(X') m U'>}> :- ",
               "<P' zebra", i, " {<X' q U'>}>@db"),
        StrCat("Z", i)));
  }
  auto sources = DescribeViews(views);
  for (auto _ : state) {
    auto catalog = CompileCatalog(sources, nullptr);
    if (!catalog.ok()) {
      state.SkipWithError(catalog.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(catalog);
  }
}
BENCHMARK(BM_CompileCatalog)->Arg(10)->Arg(100);

void BM_RewriteAmbiguousViews(benchmark::State& state) {
  // A wildcard view against k wildcard arms: k mappings per view path; the
  // candidate space explodes and the verifier prunes — worst case of the
  // whole pipeline (kept small).
  const int k = static_cast<int>(state.range(0));
  std::vector<std::string> body;
  for (int i = 0; i < k; ++i) {
    body.push_back(StrCat("<P rec {<X", i, " Y", i, " Z", i, ">}>@db"));
  }
  TslQuery query = MustParse(
      StrCat("<f(P) out yes> :- ", Join(body, " AND ")), "Q");
  TslQuery view = MakeWildcardView(1, "V");
  RewriteResult last;
  for (auto _ : state) {
    auto result = RewriteQuery(query, {view});
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = std::move(result).value();
  }
  state.counters["mappings"] = static_cast<double>(last.mappings_found);
  state.counters["tested"] = static_cast<double>(last.candidates_tested);
}
BENCHMARK(BM_RewriteAmbiguousViews)->DenseRange(1, 4);

void BM_MaximallyContainedRewriting(benchmark::State& state) {
  // The \S7 extension on k per-arm views where only j < k arms have views:
  // the contained search still returns the partial answer plans.
  const int k = static_cast<int>(state.range(0));
  TslQuery query = MakeStarQuery(k);
  std::vector<TslQuery> views = MakePerArmViews(k - 1);  // one arm uncovered
  RewriteOptions options;
  size_t rules = 0;
  for (auto _ : state) {
    auto result = FindMaximallyContainedRewriting(query, views, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    rules = result->rewriting.rules.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_MaximallyContainedRewriting)->DenseRange(2, 5);

void BM_MinimizeRedundantStar(benchmark::State& state) {
  // k arms where only one is non-redundant: minimization strips the rest.
  const int k = static_cast<int>(state.range(0));
  std::vector<std::string> body{"<P rec {<X l0 u0>}>@db"};
  for (int i = 1; i < k; ++i) {
    body.push_back(StrCat("<P rec {<X", i, " l0 W", i, ">}>@db"));
  }
  TslQuery query = MustParse(
      StrCat("<f(P) out yes> :- ", Join(body, " AND ")), "Q");
  size_t conditions = 0;
  for (auto _ : state) {
    auto minimized = MinimizeQuery(query);
    if (!minimized.ok()) {
      state.SkipWithError(minimized.status().ToString().c_str());
    }
    conditions = minimized->body.size();
    benchmark::DoNotOptimize(minimized);
  }
  state.counters["conditions"] = static_cast<double>(conditions);
}
BENCHMARK(BM_MinimizeRedundantStar)->RangeMultiplier(2)->Range(2, 16);

// --- CL-IR (docs/IR.md): compiled plan-set execution ------------------------
//
// The k-arm CL-EXP-CAND star rewritten over its per-arm views fans out into
// 2^k genuine plans once each condition may read either its view or an
// α-equivalent replica mirror. The tree walker re-matches every condition
// of every plan from scratch; the compiled IR hoists each condition into a
// match unit, merges α-equivalent units across plans (CSE keys on
// source-scoped fingerprints, so a view and its mirror stay distinct
// units), and materializes each unit once per execution. BM_EvalIR runs
// both backends *paired-interleaved* (same discipline as
// BM_RewriteObserved) and exports the `speedup` ratio that
// check_bench_regression --speedup gates at >= 1.5x for the full pass
// stack on the k=7 workload.

/// Star data: \p roots `rec` roots with \p fanout children per arm — one
/// child carries the query's `u<i>` constant, the rest junk values.
SourceCatalog MakeStarData(int k, int roots, int fanout) {
  std::string text = "database db {\n";
  for (int r = 0; r < roots; ++r) {
    StrAppend(&text, "<p", r, " rec {\n");
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < fanout; ++j) {
        StrAppend(&text, "  <c", r, "_", i, "_", j, " l", i, " ",
                  j == 0 ? StrCat("u", i) : StrCat("x", j), ">\n");
      }
    }
    StrAppend(&text, "}>\n");
  }
  StrAppend(&text, "}");
  auto db = ParseOemDatabase(text);
  if (!db.ok()) {
    std::fprintf(stderr, "bench star data failed to parse: %s\n",
                 db.status().ToString().c_str());
    std::abort();
  }
  SourceCatalog catalog;
  catalog.Put(std::move(db).ValueOrDie());
  return catalog;
}

struct PlanSetWorkload {
  std::vector<TslQuery> plans;
  SourceCatalog view_results;
};

/// Rewrites the k-arm star over its per-arm views, then fans the base
/// rewriting out into 2^k plans by flipping each condition between the
/// view and its mirror replica per bit of the plan index. Both backends
/// execute the identical plan vector over the identical materialized
/// view results.
PlanSetWorkload MakePlanSetWorkload(int k) {
  PlanSetWorkload w;
  TslQuery query = MakeStarQuery(k);
  std::vector<TslQuery> views = MakePerArmViews(k);
  SourceCatalog data = MakeStarData(k, /*roots=*/8, /*fanout=*/16);
  for (const TslQuery& view : views) {
    auto result = MaterializeView(view, data);
    if (!result.ok()) {
      std::fprintf(stderr, "bench view failed to materialize: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    OemDatabase mirror = *result;
    mirror.set_name(result->name() + "m");
    w.view_results.Put(std::move(result).ValueOrDie());
    w.view_results.Put(std::move(mirror));
  }
  RewriteOptions options;
  options.use_cover_heuristic = true;
  options.prune_dominated = false;
  options.parallelism = 1;
  auto rewritten = RewriteQuery(query, views, options);
  if (!rewritten.ok() || rewritten->rewritings.empty()) {
    std::fprintf(stderr, "bench star rewrite produced no plans\n");
    std::abort();
  }
  const TslQuery& base = rewritten->rewritings.front();
  for (int j = 0; j < (1 << k); ++j) {
    TslQuery plan = base;
    plan.name = StrCat("plan", j);
    int arm = 0;
    for (Condition& condition : plan.body) {
      if ((j >> (arm++ % k)) & 1) condition.source += "m";
    }
    w.plans.push_back(std::move(plan));
  }
  return w;
}

std::string RenderAnswer(const OemDatabase& db) {
  return StrCat(db.name(), "\n", db.ToString());
}

void BM_EvalTree(benchmark::State& state) {
  // The tree-walking baseline: per-plan Evaluate over the materialized
  // view results, exactly what Mediator::Execute does on the kTree
  // backend after view execution.
  const int k = static_cast<int>(state.range(0));
  PlanSetWorkload w = MakePlanSetWorkload(k);
  for (auto _ : state) {
    for (const TslQuery& plan : w.plans) {
      auto answer = Evaluate(plan, w.view_results);
      if (!answer.ok()) {
        state.SkipWithError(answer.status().ToString().c_str());
      }
      benchmark::DoNotOptimize(answer);
    }
  }
  state.counters["plans"] = static_cast<double>(w.plans.size());
}
BENCHMARK(BM_EvalTree)->Arg(3)->Arg(5)->Arg(7);

void BM_EvalIR(benchmark::State& state) {
  // Pass ablation: arg 0 = no passes, 1 = +hoist, 2 = +CSE, 3 = +copy
  // elision (the shipped default stack). k is pinned to the 2^7-plan
  // CL-EXP-CAND workload the CI speedup gate reads. Compilation sits
  // outside the timed region — the mediator compiles once per cached plan
  // set and re-executes the program per request, so steady-state
  // execution is the honest comparison (`plan.compile` span cost is
  // reported separately in EXPERIMENTS.md).
  const int level = static_cast<int>(state.range(0));
  const int k = 7;
  PlanSetWorkload w = MakePlanSetWorkload(k);
  IrPassOptions passes;
  passes.hoist_invariant_submatches = level >= 1;
  passes.common_subplan_elimination = level >= 2;
  passes.copy_elision = level >= 3;
  PlanCompiler compiler(passes);
  auto program = compiler.CompilePlans(w.plans);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  // Byte-identity first: the speedup below is meaningless unless the
  // compiled program computes the tree walker's exact answers.
  {
    auto ir = ExecuteIrPerSegment(**program, w.view_results);
    if (!ir.ok()) {
      state.SkipWithError(ir.status().ToString().c_str());
      return;
    }
    for (size_t i = 0; i < w.plans.size(); ++i) {
      auto tree = Evaluate(w.plans[i], w.view_results);
      if (!tree.ok()) {
        state.SkipWithError(tree.status().ToString().c_str());
        return;
      }
      if (RenderAnswer((*ir)[i]) != RenderAnswer(*tree)) {
        state.SkipWithError("IR answer diverges from the tree walker");
        return;
      }
    }
  }
  using Clock = std::chrono::steady_clock;
  std::chrono::nanoseconds tree_ns{0};
  std::chrono::nanoseconds ir_ns{0};
  auto run_tree = [&] {
    const auto start = Clock::now();
    for (const TslQuery& plan : w.plans) {
      auto answer = Evaluate(plan, w.view_results);
      if (!answer.ok()) {
        state.SkipWithError(answer.status().ToString().c_str());
      }
      benchmark::DoNotOptimize(answer);
    }
    tree_ns += Clock::now() - start;
  };
  auto run_ir = [&] {
    const auto start = Clock::now();
    auto answers = ExecuteIrPerSegment(**program, w.view_results);
    if (!answers.ok()) {
      state.SkipWithError(answers.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(answers);
    ir_ns += Clock::now() - start;
  };
  bool tree_first = true;
  for (auto _ : state) {
    if (tree_first) {
      run_tree();
      run_ir();
    } else {
      run_ir();
      run_tree();
    }
    tree_first = !tree_first;
  }
  const double iters = static_cast<double>(std::max<int64_t>(
      static_cast<int64_t>(state.iterations()), 1));
  state.counters["tree_us"] =
      static_cast<double>(tree_ns.count()) / 1e3 / iters;
  state.counters["ir_us"] = static_cast<double>(ir_ns.count()) / 1e3 / iters;
  state.counters["speedup"] =
      ir_ns.count() > 0 ? static_cast<double>(tree_ns.count()) /
                              static_cast<double>(ir_ns.count())
                        : 0.0;
  state.counters["plans"] = static_cast<double>(w.plans.size());
  state.counters["ops"] = static_cast<double>((*program)->ops.size());
}
BENCHMARK(BM_EvalIR)->DenseRange(0, 3);

void BM_RewriteSinglePathSpecialCase(benchmark::State& state) {
  // The \S3.1 algorithm: one condition, one view — the fast path.
  TslQuery query = MustParse(
      "<f(P) stanford yes> :- <P p {<X Y leland>}>@db", "Q3");
  TslQuery view = MustParse(
      "<g(P') p {<pp(P',Y') pr Y'> <h(X') v Z'>}> :- <P' p {<X' Y' Z'>}>@db",
      "V1");
  for (auto _ : state) {
    auto result = RewriteSinglePath(query, view);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RewriteSinglePathSpecialCase);

}  // namespace
}  // namespace tslrw::bench

BENCHMARK_MAIN();
