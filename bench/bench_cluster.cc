// CL-SHARD: the sharded cluster front-end — consistent-hash routing over
// canonical-query fingerprints to N QueryServer shards, each with its own
// thread pool and plan cache. Two claims are measured: (1) on a
// simulated-RTT workload whose keys spread over the ring, throughput at 4
// shards is at least 3x the single-shard rate (the --scaling gate holds
// the paired ratio to >= 2.5x); and (2) a rebalance only cools the
// remapped keys — the retained-key fraction of the ring matches the
// observed re-hit rate after a resize. CI merges the JSON into
// BENCH_service.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "mediator/mediator.h"
#include "oem/generator.h"
#include "service/server.h"

namespace tslrw::bench {
namespace {

constexpr int kLabels = 4;

/// One capability per label, so every workload query (each touching one
/// label) is answerable through exactly one view fetch.
Mediator MakeShardedMediator() {
  std::vector<Capability> caps;
  for (int i = 0; i < kLabels; ++i) {
    Capability cap;
    cap.view = MustParse(
        StrCat("<v", i, "(P') o", i, " {<w", i, "(X') m U'>}> :- ",
               "<P' rec {<X' l", i, " U'>}>@db"),
        StrCat("V", i));
    caps.push_back(std::move(cap));
  }
  auto mediator = Mediator::Make({SourceDescription{"db", caps}});
  if (!mediator.ok()) std::abort();
  return std::move(mediator).ValueOrDie();
}

/// Small on purpose: the scaling claim is about overlapping source *round
/// trips*, so per-request CPU (evaluation, fusion) must stay far below the
/// simulated RTT — a single-core CI host serializes all CPU across every
/// shard, and a fat catalog would turn the sweep into a CPU benchmark.
SourceCatalog MakeClusterCatalog() {
  GeneratorOptions options;
  options.seed = 7;
  options.num_roots = 8;
  options.max_depth = 2;
  options.num_labels = kLabels;
  options.num_values = 4;
  options.root_label = "rec";
  SourceCatalog catalog;
  catalog.Put(GenerateOemDatabase("db", options));
  return catalog;
}

/// A mixed workload of \p n queries with pairwise-distinct canonical
/// fingerprints (the head functor is part of the canonical form), so the
/// ring spreads them across shards at its key-space balance.
std::vector<TslQuery> MakeMixedWorkload(int n) {
  std::vector<TslQuery> workload;
  workload.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workload.push_back(MustParse(
        StrCat("<q", i, "(P) out yes> :- <P rec {<X l", i % kLabels,
               " U>}>@db"),
        StrCat("Q", i)));
  }
  return workload;
}

/// Simulated deployed wrapper (same trick as bench_service.cc): a fetch
/// costs a source round trip the worker spends blocked, which is the wait
/// the per-shard thread pools overlap.
class RemoteSourceWrapper : public Wrapper {
 public:
  explicit RemoteSourceWrapper(std::chrono::microseconds rtt) : rtt_(rtt) {}

  Result<WrapperResult> Fetch(const Capability& capability,
                              const SourceCatalog& catalog) override {
    std::this_thread::sleep_for(rtt_);
    return base_.Fetch(capability, catalog);
  }

 private:
  std::chrono::microseconds rtt_;
  CatalogWrapper base_;
};

ClusterOptions MakeClusterOptions(size_t shards) {
  ClusterOptions options;
  options.shards = shards;
  options.server.threads = 8;
  options.server.queue_capacity = 4096;
  options.server.plan_cache_capacity = 1024;
  return options;
}

/// 20ms RTT — an order of magnitude above the per-request CPU cost, so
/// the sweep measures overlapped waiting (the thing shards multiply), not
/// evaluator speed.
WrapperFactory RemoteFactory() {
  return [](VirtualClock*, uint64_t) {
    return std::make_unique<RemoteSourceWrapper>(
        std::chrono::microseconds(20000));
  };
}

/// Submits the whole workload and drains the futures; returns false (and
/// marks the state failed) on any error.
bool PushBatch(ShardRouter& router, const std::vector<TslQuery>& workload,
               benchmark::State& state) {
  std::vector<std::future<Result<ServeResponse>>> futures;
  futures.reserve(workload.size());
  for (const TslQuery& query : workload) {
    auto submitted = router.Submit(query);
    if (!submitted.ok()) {
      state.SkipWithError(submitted.status().ToString().c_str());
      return false;
    }
    futures.push_back(std::move(submitted).value());
  }
  for (auto& future : futures) {
    auto response = future.get();
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return false;
    }
    benchmark::DoNotOptimize(response);
  }
  return true;
}

/// Throughput sweep over the shard count: 256 distinct-fingerprint
/// queries, each paying a simulated 20ms source round trip, pushed
/// through the router in batches. Every shard runs the same 8-worker
/// pool, so the curve reads the routing win alone: more shards, more
/// overlapped source waits, bounded by the ring's key-space balance (the
/// busiest shard owns ~28% of the key space at 4 shards, so ~3.6x is the
/// asymptote there).
void BM_ClusterThroughputVsShards(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  ShardRouter router(MakeShardedMediator(), MakeClusterCatalog(),
                     MakeClusterOptions(shards), RemoteFactory());
  const std::vector<TslQuery> workload = MakeMixedWorkload(256);
  if (!PushBatch(router, workload, state)) return;  // warm every plan
  for (auto _ : state) {
    if (!PushBatch(router, workload, state)) return;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
  const ClusterStats stats = router.stats();
  state.counters["hit_rate"] = stats.TotalPlanCache().hit_rate();
  state.counters["rerouted"] = static_cast<double>(stats.rerouted);
}
BENCHMARK(BM_ClusterThroughputVsShards)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The acceptance claim as a *paired* measurement (the
/// BM_ServeResilientOverhead trick): each iteration pushes the same batch
/// through a 1-shard and a 4-shard cluster, alternating which goes first,
/// and exports the wall-time ratio as a `scaling` counter.
/// check_bench_regression --scaling gates it at >= 2.5x — pairing inside
/// the benchmark is what lets a throughput floor survive CI machine
/// variance that separately-timed rows could not.
void BM_ClusterScaling(benchmark::State& state) {
  ShardRouter one(MakeShardedMediator(), MakeClusterCatalog(),
                  MakeClusterOptions(1), RemoteFactory());
  ShardRouter four(MakeShardedMediator(), MakeClusterCatalog(),
                   MakeClusterOptions(4), RemoteFactory());
  const std::vector<TslQuery> workload = MakeMixedWorkload(256);
  if (!PushBatch(one, workload, state)) return;
  if (!PushBatch(four, workload, state)) return;
  using Clock = std::chrono::steady_clock;
  std::chrono::nanoseconds one_ns{0};
  std::chrono::nanoseconds four_ns{0};
  auto run = [&](ShardRouter& router, std::chrono::nanoseconds* total) {
    const auto start = Clock::now();
    if (!PushBatch(router, workload, state)) return false;
    *total += Clock::now() - start;
    return true;
  };
  bool one_first = true;
  for (auto _ : state) {
    if (one_first) {
      if (!run(one, &one_ns) || !run(four, &four_ns)) return;
    } else {
      if (!run(four, &four_ns) || !run(one, &one_ns)) return;
    }
    one_first = !one_first;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
  const double iters = static_cast<double>(std::max<int64_t>(
      static_cast<int64_t>(state.iterations()), 1));
  state.counters["shard1_us"] =
      static_cast<double>(one_ns.count()) / 1e3 / iters;
  state.counters["shard4_us"] =
      static_cast<double>(four_ns.count()) / 1e3 / iters;
  state.counters["scaling"] =
      four_ns.count() > 0 ? static_cast<double>(one_ns.count()) /
                                static_cast<double>(four_ns.count())
                          : 0.0;
}
BENCHMARK(BM_ClusterScaling)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Rebalance cost and cache retention: warm a 4-shard cluster, grow it to
/// 5, and re-serve the workload. The ring predicts the retained fraction
/// (~4/5 of the key space keeps its shard); the observed re-hit rate must
/// track it — only remapped keys recompute their plans. No simulated RTT
/// here: the timed cost is the resize itself (template mediator copies +
/// the ring swap) plus the cold replans.
void BM_ClusterRebalance(benchmark::State& state) {
  const SourceCatalog catalog = MakeClusterCatalog();
  const std::vector<TslQuery> workload = MakeMixedWorkload(128);
  double retained = 0.0;
  double rehit = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    ClusterOptions options = MakeClusterOptions(4);
    options.server.threads = 2;
    ShardRouter router(MakeShardedMediator(), catalog, options);
    for (const TslQuery& query : workload) {
      auto warm = router.Answer(query);
      if (!warm.ok()) {
        state.SkipWithError(warm.status().ToString().c_str());
        return;
      }
    }
    state.ResumeTiming();
    retained = router.Resize(5);
    size_t hits = 0;
    for (const TslQuery& query : workload) {
      auto response = router.Answer(query);
      if (!response.ok()) {
        state.SkipWithError(response.status().ToString().c_str());
        return;
      }
      if (response->plan_cache_hit) ++hits;
    }
    rehit = static_cast<double>(hits) / static_cast<double>(workload.size());
  }
  state.counters["retained"] = retained;
  state.counters["rehit_rate"] = rehit;
}
BENCHMARK(BM_ClusterRebalance)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tslrw::bench

BENCHMARK_MAIN();
