// CL-QNC (\S2): "TSL queries can be computed in polylogarithmic parallel
// time with polynomially many processors (TSL ⊆ QNC)" — operationally, the
// sequential evaluator's data complexity should be a low polynomial. We
// sweep the database size with fixed queries and report items/second; the
// shape to check is near-linear growth for selective queries and low
// polynomial for wildcard joins.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "eval/evaluator.h"
#include "oem/generator.h"

namespace tslrw::bench {
namespace {

SourceCatalog MakeCatalog(int roots, uint64_t seed = 42) {
  GeneratorOptions options;
  options.seed = seed;
  options.num_roots = roots;
  options.max_depth = 3;
  options.max_fanout = 4;
  options.num_labels = 6;
  options.num_values = 8;
  options.root_label = "rec";
  SourceCatalog catalog;
  catalog.Put(GenerateOemDatabase("db", options));
  return catalog;
}

void BM_EvalSelective(benchmark::State& state) {
  const int roots = static_cast<int>(state.range(0));
  SourceCatalog catalog = MakeCatalog(roots);
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P rec {<X l0 v0>}>@db", "Q");
  for (auto _ : state) {
    auto answer = Evaluate(query, catalog);
    if (!answer.ok()) state.SkipWithError(answer.status().ToString().c_str());
    benchmark::DoNotOptimize(answer);
  }
  state.SetComplexityN(roots);
  state.SetItemsProcessed(state.iterations() * roots);
}
BENCHMARK(BM_EvalSelective)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity();

void BM_EvalWildcardProjection(benchmark::State& state) {
  // Binds every (label, value) pair of every root subobject.
  const int roots = static_cast<int>(state.range(0));
  SourceCatalog catalog = MakeCatalog(roots);
  TslQuery query = MustParse(
      "<f(P,X) out Z> :- <P rec {<X Y Z>}>@db", "Q");
  for (auto _ : state) {
    auto answer = Evaluate(query, catalog);
    if (!answer.ok()) state.SkipWithError(answer.status().ToString().c_str());
    benchmark::DoNotOptimize(answer);
  }
  state.SetComplexityN(roots);
  state.SetItemsProcessed(state.iterations() * roots);
}
BENCHMARK(BM_EvalWildcardProjection)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();

void BM_EvalJoinTwoConditions(benchmark::State& state) {
  const int roots = static_cast<int>(state.range(0));
  SourceCatalog catalog = MakeCatalog(roots);
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P rec {<X l0 v0>}>@db AND <P rec {<Y l1 v1>}>@db",
      "Q");
  for (auto _ : state) {
    auto answer = Evaluate(query, catalog);
    if (!answer.ok()) state.SkipWithError(answer.status().ToString().c_str());
    benchmark::DoNotOptimize(answer);
  }
  state.SetComplexityN(roots);
}
BENCHMARK(BM_EvalJoinTwoConditions)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();

void BM_EvalDeepChain(benchmark::State& state) {
  // Fixed database, growing query depth: combined complexity.
  const int depth = static_cast<int>(state.range(0));
  GeneratorOptions options;
  options.num_roots = 64;
  options.max_depth = 6;
  options.num_labels = 3;
  options.root_label = "rec";
  options.atomic_probability = 0.3;
  SourceCatalog catalog;
  catalog.Put(GenerateOemDatabase("db", options));
  std::string inner = "W";
  for (int d = depth; d >= 1; --d) {
    inner = StrCat("{<X", d, " Y", d, " ", inner, ">}");
  }
  TslQuery query = MustParse(
      StrCat("<f(P) out yes> :- <P rec ", inner, ">@db"), "Q");
  for (auto _ : state) {
    auto answer = Evaluate(query, catalog);
    if (!answer.ok()) state.SkipWithError(answer.status().ToString().c_str());
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_EvalDeepChain)->DenseRange(1, 5);

void BM_EvalDescendantStep(benchmark::State& state) {
  // The \S7 regular-path extension: `**` search over a growing database.
  // BFS with a visited set: near-linear in reachable objects per anchor.
  const int roots = static_cast<int>(state.range(0));
  SourceCatalog catalog = MakeCatalog(roots);
  TslQuery query = MustParse(
      "<f(R) has-deep yes> :- <R rec {<X ** v0>}>@db", "Q");
  for (auto _ : state) {
    auto answer = Evaluate(query, catalog);
    if (!answer.ok()) state.SkipWithError(answer.status().ToString().c_str());
    benchmark::DoNotOptimize(answer);
  }
  state.SetComplexityN(roots);
}
BENCHMARK(BM_EvalDescendantStep)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();

void BM_EvalClosureChain(benchmark::State& state) {
  // `l+` along a single deep chain of length N: linear in the chain.
  const int depth = static_cast<int>(state.range(0));
  OemDatabase db("db");
  Term prev = Term::MakeAtom("n0");
  if (!db.PutSet(prev, "hop").ok() || !db.AddRoot(prev).ok()) std::abort();
  for (int i = 1; i <= depth; ++i) {
    Term cur = Term::MakeAtom(StrCat("n", i));
    if (!db.PutSet(cur, "hop").ok() || !db.AddEdge(prev, cur).ok()) {
      std::abort();
    }
    prev = cur;
  }
  SourceCatalog catalog;
  catalog.Put(std::move(db));
  TslQuery query = MustParse(
      "<f(X) reach yes> :- <R hop {<X hop+ {}>}>@db", "Q");
  size_t results = 0;
  for (auto _ : state) {
    auto answer = Evaluate(query, catalog);
    if (!answer.ok()) state.SkipWithError(answer.status().ToString().c_str());
    results = answer->roots().size();
    benchmark::DoNotOptimize(answer);
  }
  state.counters["reachable"] = static_cast<double>(results);
  state.SetComplexityN(depth);
}
BENCHMARK(BM_EvalClosureChain)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();

void BM_MaterializeRestructuringView(benchmark::State& state) {
  // The (V1)-style label/value-splitting view over a growing database:
  // the cost of the repository maintaining a materialized view.
  const int roots = static_cast<int>(state.range(0));
  SourceCatalog catalog = MakeCatalog(roots);
  TslQuery view = MustParse(
      "<g(P') p {<pp(P',Y') pr Y'> <h(X') v Z'>}> :- "
      "<P' rec {<X' Y' Z'>}>@db",
      "V1");
  for (auto _ : state) {
    auto result = MaterializeView(view, catalog);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(roots);
}
BENCHMARK(BM_MaterializeRestructuringView)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();

}  // namespace
}  // namespace tslrw::bench

BENCHMARK_MAIN();
