// CL-EXP-MAP (\S5.1): "Step 1 can generate an exponential in the size of
// the view bodies number of mappings."
//
// Family: a view with m interchangeable wildcard paths against a query with
// k star conditions. Every view path maps onto every query arm, so the
// number of mappings is k^m — the reported `mappings` counter should grow
// geometrically in m (and the time with it), while k^1 growth in the query
// size alone stays polynomial.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.h"
#include "rewrite/mapping.h"

namespace tslrw::bench {
namespace {

void BM_MappingsVsViewPaths(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));  // view body paths
  const int k = 3;                                 // query arms (fixed)
  // Wildcard arms: labels/values variable so every arm accepts every path.
  std::vector<std::string> body;
  for (int i = 0; i < k; ++i) {
    body.push_back(StrCat("<P rec {<X", i, " Y", i, " Z", i, ">}>@db"));
  }
  TslQuery query = MustParse(
      StrCat("<f(P) out yes> :- ", Join(body, " AND ")), "Q");
  TslQuery view = MakeWildcardView(m, "V");
  size_t mappings = 0;
  for (auto _ : state) {
    auto result = FindMappings(view, query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    mappings = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["mappings"] = static_cast<double>(mappings);
  state.counters["expected"] = std::pow(static_cast<double>(k), m);
}
BENCHMARK(BM_MappingsVsViewPaths)->DenseRange(1, 7);

void BM_MappingsVsQueryArms(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));  // query arms
  const int m = 2;                                 // view paths (fixed)
  std::vector<std::string> body;
  for (int i = 0; i < k; ++i) {
    body.push_back(StrCat("<P rec {<X", i, " Y", i, " Z", i, ">}>@db"));
  }
  TslQuery query = MustParse(
      StrCat("<f(P) out yes> :- ", Join(body, " AND ")), "Q");
  TslQuery view = MakeWildcardView(m, "V");
  size_t mappings = 0;
  for (auto _ : state) {
    auto result = FindMappings(view, query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    mappings = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["mappings"] = static_cast<double>(mappings);  // k^2
}
BENCHMARK(BM_MappingsVsQueryArms)->DenseRange(1, 12);

void BM_MappingDiscoverySelective(benchmark::State& state) {
  // Constant-labeled views have at most one target per path: discovery is
  // cheap even for large bodies (the common case in practice).
  const int k = static_cast<int>(state.range(0));
  TslQuery query = MakeStarQuery(k);
  std::vector<std::string> body;
  std::vector<std::string> head;
  for (int i = 0; i < k; ++i) {
    body.push_back(StrCat("<P' rec {<A", i, " l", i, " C", i, ">}>@db"));
    head.push_back(StrCat("<w", i, "(A", i, ") m", i, " C", i, ">"));
  }
  TslQuery view = MustParse(StrCat("<v(P') out {", Join(head, " "), "}> :- ",
                                   Join(body, " AND ")),
                            "V");
  size_t mappings = 0;
  for (auto _ : state) {
    auto result = FindMappings(view, query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    mappings = result->size();
  }
  state.counters["mappings"] = static_cast<double>(mappings);  // exactly 1
}
BENCHMARK(BM_MappingDiscoverySelective)->RangeMultiplier(2)->Range(2, 32);

void BM_MatchIntoFunctionTerms(benchmark::State& state) {
  // The MatchInto undo trail: matching a function term used to copy the
  // whole substitution once per nested function subterm (O(bindings)
  // each, quadratic over a match that binds as it goes); the bind trail
  // makes a successful match copy-free and charges a failed branch only
  // for the bindings it made. n nested g(..) subterms, 2n fresh bindings.
  const int n = static_cast<int>(state.range(0));
  std::vector<Term> args;
  std::vector<Term> ground;
  for (int i = 0; i < n; ++i) {
    args.push_back(
        Term::MakeFunc("g", {Term::MakeVar(StrCat("X", i), VarKind::kObjectId),
                             Term::MakeVar(StrCat("Y", i),
                                           VarKind::kLabelValue)}));
    ground.push_back(Term::MakeFunc("g", {Term::MakeAtom(StrCat("ox", i)),
                                          Term::MakeAtom(StrCat("vy", i))}));
  }
  Term from = Term::MakeFunc("f", std::move(args));
  Term to = Term::MakeFunc("f", std::move(ground));
  for (auto _ : state) {
    Substitution subst;
    bool matched = MatchInto(from, to, &subst);
    if (!matched) state.SkipWithError("match unexpectedly failed");
    benchmark::DoNotOptimize(subst);
  }
  state.counters["bindings"] = 2.0 * n;
}
BENCHMARK(BM_MatchIntoFunctionTerms)->RangeMultiplier(4)->Range(4, 256);

}  // namespace
}  // namespace tslrw::bench

BENCHMARK_MAIN();
