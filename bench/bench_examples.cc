// EX-* index: regenerates every worked example of the paper and prints a
// paper-vs-measured table (the paper's "evaluation" is these examples; see
// EXPERIMENTS.md). Each row states the artifact, the paper's claim, what
// this library computes, and PASS/FAIL. Exits non-zero on any FAIL.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "constraints/dtd.h"
#include "equiv/component.h"
#include "equiv/equivalence.h"
#include "eval/evaluator.h"
#include "oem/generator.h"
#include "rewrite/chase.h"
#include "rewrite/compose.h"
#include "rewrite/mapping.h"
#include "rewrite/rewriter.h"
#include "tsl/normal_form.h"
#include "tsl/parser.h"

namespace {

using namespace tslrw;

struct Row {
  std::string id;
  std::string claim;
  std::string measured;
  bool pass;
};

std::vector<Row> g_rows;
void Report(std::string id, std::string claim, std::string measured,
            bool pass) {
  g_rows.push_back(Row{std::move(id), std::move(claim), std::move(measured),
                       pass});
}

TslQuery Parse(const char* text, const char* name) {
  auto q = ParseTslQuery(text, name);
  if (!q.ok()) {
    std::fprintf(stderr, "fixture parse error: %s\n",
                 q.status().ToString().c_str());
    std::abort();
  }
  return std::move(q).ValueOrDie();
}

constexpr const char* kQ1 =
    "<f(P) female {<f(X) Y Z>}> :- "
    "<P person {<G gender female> <X Y Z>}>@db";
constexpr const char* kQ2 =
    "<f(P) female {<f(X) Y Z>}> :- "
    "<P person {<G gender female>}>@db AND <P person {<X Y Z>}>@db";
constexpr const char* kV1 =
    "<g(P') p {<pp(P',Y') pr Y'> <h(X') v Z'>}> :- <P' p {<X' Y' Z'>}>@db";
constexpr const char* kQ3 = "<f(P) stanford yes> :- <P p {<X Y leland>}>@db";
constexpr const char* kQ5 =
    "<f(P) stanford yes> :- <P p {<X Y {<Z last stanford>}>}>@db";
constexpr const char* kQ7 =
    "<f(P) stanford yes> :- <P p {<X name {<Z last stanford>}>}>@db";
constexpr const char* kQ10 =
    "<f(P) \"Stan-student\" {<X Y Z>}> :- "
    "<P p {<U university stanford>}>@db AND <P p {<X Y Z>}>@db";
constexpr const char* kQ11 =
    "<f(P) \"Stan-student\" V> :- "
    "<P p {<U university stanford>}>@db AND <P p V>@db";
constexpr const char* kQ14 =
    "<l(X) l {<f(Y) m {<n(Z) n V>}>}> :- <X a {<Y b {<Z c V>}>}>@db";
constexpr const char* kPersonDtd = R"(
  <!ELEMENT p (name, phone, address*)>
  <!ELEMENT name (last, first, middle?, alias?)>
  <!ELEMENT alias (last, first)>
  <!ELEMENT address CDATA>
  <!ELEMENT phone CDATA>
  <!ELEMENT last CDATA>
  <!ELEMENT first CDATA>
  <!ELEMENT middle CDATA>
)";

void RunFig3() {
  OemDatabase db = MakeFig3Database();
  bool pass = db.Validate().ok() && db.roots().size() == 2;
  Report("FIG-3", "example OEM objects (2 publications)",
         StrCat(db.ReachableOids().size(), " objects, ", db.roots().size(),
                " roots"),
         pass);
}

void RunQ1NormalForm() {
  TslQuery q1 = Parse(kQ1, "Q1");
  TslQuery q2 = Parse(kQ2, "Q2");
  bool pass = ToNormalForm(q1) == q2;
  Report("EX-Q1", "(Q1) normalizes to (Q2)", pass ? "identical" : "differs",
         pass);
}

void RunExample31() {
  auto result = RewriteQuery(Parse(kQ3, "Q3"), {Parse(kV1, "V1")});
  bool pass = result.ok() && result->rewritings.size() == 1 &&
              result->mappings_found == 1;
  Report("EX-3.1", "unique mapping (M2); rewriting (Q4) found",
         result.ok() ? StrCat(result->mappings_found, " mapping(s), ",
                              result->rewritings.size(), " rewriting(s)")
                     : result.status().ToString(),
         pass);
}

void RunExample32() {
  auto mappings = FindMappings(ToNormalForm(Parse(kV1, "V1")),
                               ToNormalForm(Parse(kQ5, "Q5")));
  bool set_mapping = false;
  if (mappings.ok()) {
    for (const BodyMapping& m : *mappings) {
      set_mapping = set_mapping || !m.subst.sets().empty();
    }
  }
  auto result = RewriteQuery(Parse(kQ5, "Q5"), {Parse(kV1, "V1")});
  bool pass = set_mapping && result.ok() && result->rewritings.size() == 1;
  Report("EX-3.2", "set mapping (M5); rewriting (Q6) found",
         StrCat(set_mapping ? "set mapping present" : "NO set mapping", ", ",
                result.ok() ? result->rewritings.size() : 0, " rewriting(s)"),
         pass);
}

void RunExample33() {
  auto result = RewriteQuery(Parse(kQ7, "Q7"), {Parse(kV1, "V1")});
  bool pass = result.ok() && result->rewritings.empty() &&
              result->mappings_found >= 1 && result->candidates_tested >= 1;
  Report("EX-3.3", "mapping (M6) exists but candidate (Q8) is rejected",
         result.ok() ? StrCat(result->mappings_found, " mapping(s), ",
                              result->candidates_tested, " tested, ",
                              result->rewritings.size(), " accepted")
                     : result.status().ToString(),
         pass);
}

void RunExample34() {
  auto eq = AreEquivalent(Parse(kQ10, "Q10"), Parse(kQ11, "Q11"));
  Report("EX-3.4", "(Q11) chases to (Q10); equivalent",
         eq.ok() ? (*eq ? "equivalent" : "NOT equivalent")
                 : eq.status().ToString(),
         eq.ok() && *eq);
}

void RunExample35() {
  auto dtd = Dtd::Parse(kPersonDtd);
  if (!dtd.ok()) {
    Report("EX-3.5", "DTD parses", dtd.status().ToString(), false);
    return;
  }
  StructuralConstraints constraints(std::move(dtd).value());
  RewriteOptions options;
  options.constraints = &constraints;
  auto with = RewriteQuery(Parse(kQ7, "Q7"), {Parse(kV1, "V1")}, options);
  auto without = RewriteQuery(Parse(kQ7, "Q7"), {Parse(kV1, "V1")});
  bool pass = with.ok() && without.ok() && !with->rewritings.empty() &&
              without->rewritings.empty();
  Report("EX-3.5", "DTD enables the (Q7) rewriting that EX-3.3 lacks",
         StrCat("without: ", without.ok() ? without->rewritings.size() : 0,
                ", with DTD: ", with.ok() ? with->rewritings.size() : 0),
         pass);
}

void RunExample41() {
  auto parts = DecomposeQuery(Parse(kQ14, "Q14"));
  int tops = 0, members = 0, objects = 0;
  if (parts.ok()) {
    for (const ComponentQuery& c : *parts) {
      switch (c.kind) {
        case ComponentKind::kTop: ++tops; break;
        case ComponentKind::kMember: ++members; break;
        case ComponentKind::kObject: ++objects; break;
      }
    }
  }
  bool pass = tops == 1 && members == 2 && objects == 3;
  Report("EX-4.1", "(Q14) decomposes into 1 top + 2 member + 3 object rules",
         StrCat(tops, " top + ", members, " member + ", objects, " object"),
         pass);
}

}  // namespace

int main() {
  RunFig3();
  RunQ1NormalForm();
  RunExample31();
  RunExample32();
  RunExample33();
  RunExample34();
  RunExample35();
  RunExample41();

  std::printf("%-8s | %-55s | %-40s | %s\n", "id", "paper claim", "measured",
              "status");
  std::printf("%s\n", std::string(118, '-').c_str());
  bool all_pass = true;
  for (const Row& row : g_rows) {
    std::printf("%-8s | %-55s | %-40s | %s\n", row.id.c_str(),
                row.claim.c_str(), row.measured.c_str(),
                row.pass ? "PASS" : "FAIL");
    all_pass = all_pass && row.pass;
  }
  std::printf("\n%zu/%zu paper artifacts reproduced\n",
              static_cast<size_t>(
                  std::count_if(g_rows.begin(), g_rows.end(),
                                [](const Row& r) { return r.pass; })),
              g_rows.size());
  return all_pass ? 0 : 1;
}
