// CL-SERVE: the serving layer in front of the mediator — thread-pool
// scaling on a repeated-query workload, and what the rewriting-plan cache
// buys. Two claims are measured: (1) throughput at 4 worker threads is at
// least 2x the single-threaded rate on repeated queries, and (2) a warm
// plan cache makes per-request latency several times lower than a cold one
// (the exponential \S5.1 plan search is paid once per canonical query, not
// per request). CI publishes the JSON as BENCH_service.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "mediator/mediator.h"
#include "oem/generator.h"
#include "service/server.h"

namespace tslrw::bench {
namespace {

/// One per-arm capability per star arm: planning cost grows exponentially
/// with k (CL-EXP-CAND), execution cost stays modest.
Mediator MakePerArmMediator(int k) {
  std::vector<Capability> caps;
  for (int i = 0; i < k; ++i) {
    Capability cap;
    cap.view = MustParse(
        StrCat("<v", i, "(P') o", i, " {<w", i, "(X') m U'>}> :- ",
               "<P' rec {<X' l", i, " U'>}>@db"),
        StrCat("V", i));
    caps.push_back(std::move(cap));
  }
  auto mediator = Mediator::Make({SourceDescription{"db", caps}});
  if (!mediator.ok()) std::abort();
  return std::move(mediator).ValueOrDie();
}

SourceCatalog MakeCatalog(int roots) {
  GeneratorOptions options;
  options.seed = 7;
  options.num_roots = roots;
  options.max_depth = 2;
  options.num_labels = 4;
  options.num_values = 4;
  options.root_label = "rec";
  SourceCatalog catalog;
  catalog.Put(GenerateOemDatabase("db", options));
  return catalog;
}

ServerOptions MakeOptions(size_t threads) {
  ServerOptions options;
  options.threads = threads;
  options.queue_capacity = 4096;
  return options;
}

/// Simulates the deployed wrapper: a fetch is a round trip to a remote
/// source, so it costs wall-clock time the worker spends blocked, not
/// computing. Overlapping those waits is what the thread pool is for — on
/// an in-process CatalogWrapper there is nothing to overlap and a
/// single-core host shows no scaling at all.
class RemoteSourceWrapper : public Wrapper {
 public:
  explicit RemoteSourceWrapper(std::chrono::microseconds rtt) : rtt_(rtt) {}

  Result<WrapperResult> Fetch(const Capability& capability,
                              const SourceCatalog& catalog) override {
    std::this_thread::sleep_for(rtt_);
    return base_.Fetch(capability, catalog);
  }

 private:
  std::chrono::microseconds rtt_;
  CatalogWrapper base_;
};

WrapperFactory RemoteSourceFactory(std::chrono::microseconds rtt) {
  return [rtt](VirtualClock*, uint64_t) {
    return std::make_unique<RemoteSourceWrapper>(rtt);
  };
}

/// Throughput on a repeated-query workload: one client enqueues batches of
/// requests cycling through a handful of queries whose plans are already
/// cached, each request paying a simulated 2ms source round trip per view
/// fetch. Sweep the worker-thread count to read the scaling curve (4
/// threads vs 1 is the acceptance ratio): workers overlap the source
/// waits, so throughput rises with the pool until CPU saturates.
void BM_ServeThroughputVsThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  constexpr int kArms = 2;
  constexpr int kBatch = 128;
  QueryServer server(MakePerArmMediator(kArms), MakeCatalog(96),
                     MakeOptions(threads),
                     RemoteSourceFactory(std::chrono::microseconds(2000)));
  std::vector<TslQuery> workload;
  for (int i = 0; i < 4; ++i) workload.push_back(MakeStarQuery(kArms));
  for (const TslQuery& query : workload) {
    auto warm = server.Answer(query);
    if (!warm.ok()) {
      state.SkipWithError(warm.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    std::vector<std::future<Result<ServeResponse>>> futures;
    futures.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      auto submitted =
          server.Submit(workload[static_cast<size_t>(i) % workload.size()]);
      if (!submitted.ok()) {
        state.SkipWithError(submitted.status().ToString().c_str());
        return;
      }
      futures.push_back(std::move(submitted).value());
    }
    for (auto& future : futures) {
      auto response = future.get();
      if (!response.ok()) {
        state.SkipWithError(response.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(response);
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  ServerStats stats = server.stats();
  state.counters["hit_rate"] = stats.plan_cache.hit_rate();
  state.counters["rejected"] = static_cast<double>(stats.rejected);
}
BENCHMARK(BM_ServeThroughputVsThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Per-request latency with a cold plan cache: every iteration starts a
/// fresh cache generation, so the request pays the full exponential plan
/// search before executing. Compare against BM_ServeWarmPlanCache below —
/// same query, same data, plans cached — for the cache's latency win.
void BM_ServeColdPlanCache(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  QueryServer server(MakePerArmMediator(k), MakeCatalog(8), MakeOptions(1));
  TslQuery query = MakeStarQuery(k);
  for (auto _ : state) {
    server.InvalidatePlans();
    auto response = server.Answer(query);
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    if (response->plan_cache_hit) {
      state.SkipWithError("cold run unexpectedly hit the plan cache");
      return;
    }
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServeColdPlanCache)->DenseRange(3, 7)->Unit(
    benchmark::kMicrosecond);

void BM_ServeWarmPlanCache(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  QueryServer server(MakePerArmMediator(k), MakeCatalog(8), MakeOptions(1));
  TslQuery query = MakeStarQuery(k);
  auto warm = server.Answer(query);
  if (!warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto response = server.Answer(query);
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    if (!response->plan_cache_hit) {
      state.SkipWithError("warm run missed the plan cache");
      return;
    }
    benchmark::DoNotOptimize(response);
  }
  state.counters["hit_rate"] = server.stats().plan_cache.hit_rate();
}
BENCHMARK(BM_ServeWarmPlanCache)->DenseRange(3, 7)->Unit(
    benchmark::kMicrosecond);

/// α-equivalent renamings of one query: canonicalization folds them onto a
/// single cache entry, so every rendering after the first is a hit. This
/// prices the canonicalization step itself (it is on the hit path).
void BM_ServeAlphaRenamedWorkload(benchmark::State& state) {
  constexpr int kArms = 3;
  QueryServer server(MakePerArmMediator(kArms), MakeCatalog(8),
                     MakeOptions(1));
  // The same star query under four different variable alphabets.
  std::vector<TslQuery> renamings;
  for (int r = 0; r < 4; ++r) {
    std::vector<std::string> conditions;
    for (int i = 0; i < kArms; ++i) {
      conditions.push_back(
          StrCat("<P", r, " rec {<R", r, "x", i, " l", i, " u", i, ">}>@db"));
    }
    renamings.push_back(MustParse(
        StrCat("<f(P", r, ") out yes> :- ", Join(conditions, " AND ")), "Q"));
  }
  auto first = server.Answer(renamings[0]);
  if (!first.ok()) {
    state.SkipWithError(first.status().ToString().c_str());
    return;
  }
  size_t next = 1;
  for (auto _ : state) {
    auto response = server.Answer(renamings[next % renamings.size()]);
    ++next;
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    if (!response->plan_cache_hit) {
      state.SkipWithError("renamed query missed the plan cache");
      return;
    }
    benchmark::DoNotOptimize(response);
  }
  state.counters["misses"] =
      static_cast<double>(server.stats().plan_cache.misses);
}
BENCHMARK(BM_ServeAlphaRenamedWorkload)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tslrw::bench

BENCHMARK_MAIN();
