// CL-SERVE: the serving layer in front of the mediator — thread-pool
// scaling on a repeated-query workload, and what the rewriting-plan cache
// buys. Two claims are measured: (1) throughput at 4 worker threads is at
// least 2x the single-threaded rate on repeated queries, and (2) a warm
// plan cache makes per-request latency several times lower than a cold one
// (the exponential \S5.1 plan search is paid once per canonical query, not
// per request). CI publishes the JSON as BENCH_service.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "oem/generator.h"
#include "service/server.h"

namespace tslrw::bench {
namespace {

/// One per-arm capability per star arm: planning cost grows exponentially
/// with k (CL-EXP-CAND), execution cost stays modest.
Mediator MakePerArmMediator(int k) {
  std::vector<Capability> caps;
  for (int i = 0; i < k; ++i) {
    Capability cap;
    cap.view = MustParse(
        StrCat("<v", i, "(P') o", i, " {<w", i, "(X') m U'>}> :- ",
               "<P' rec {<X' l", i, " U'>}>@db"),
        StrCat("V", i));
    caps.push_back(std::move(cap));
  }
  auto mediator = Mediator::Make({SourceDescription{"db", caps}});
  if (!mediator.ok()) std::abort();
  return std::move(mediator).ValueOrDie();
}

SourceCatalog MakeCatalog(int roots) {
  GeneratorOptions options;
  options.seed = 7;
  options.num_roots = roots;
  options.max_depth = 2;
  options.num_labels = 4;
  options.num_values = 4;
  options.root_label = "rec";
  SourceCatalog catalog;
  catalog.Put(GenerateOemDatabase("db", options));
  return catalog;
}

ServerOptions MakeOptions(size_t threads) {
  ServerOptions options;
  options.threads = threads;
  options.queue_capacity = 4096;
  return options;
}

/// Simulates the deployed wrapper: a fetch is a round trip to a remote
/// source, so it costs wall-clock time the worker spends blocked, not
/// computing. Overlapping those waits is what the thread pool is for — on
/// an in-process CatalogWrapper there is nothing to overlap and a
/// single-core host shows no scaling at all.
class RemoteSourceWrapper : public Wrapper {
 public:
  explicit RemoteSourceWrapper(std::chrono::microseconds rtt) : rtt_(rtt) {}

  Result<WrapperResult> Fetch(const Capability& capability,
                              const SourceCatalog& catalog) override {
    std::this_thread::sleep_for(rtt_);
    return base_.Fetch(capability, catalog);
  }

 private:
  std::chrono::microseconds rtt_;
  CatalogWrapper base_;
};

WrapperFactory RemoteSourceFactory(std::chrono::microseconds rtt) {
  return [rtt](VirtualClock*, uint64_t) {
    return std::make_unique<RemoteSourceWrapper>(rtt);
  };
}

/// Throughput on a repeated-query workload: one client enqueues batches of
/// requests cycling through a handful of queries whose plans are already
/// cached, each request paying a simulated 2ms source round trip per view
/// fetch. Sweep the worker-thread count to read the scaling curve (4
/// threads vs 1 is the acceptance ratio): workers overlap the source
/// waits, so throughput rises with the pool until CPU saturates.
void BM_ServeThroughputVsThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  constexpr int kArms = 2;
  constexpr int kBatch = 128;
  QueryServer server(MakePerArmMediator(kArms), MakeCatalog(96),
                     MakeOptions(threads),
                     RemoteSourceFactory(std::chrono::microseconds(2000)));
  std::vector<TslQuery> workload;
  for (int i = 0; i < 4; ++i) workload.push_back(MakeStarQuery(kArms));
  for (const TslQuery& query : workload) {
    auto warm = server.Answer(query);
    if (!warm.ok()) {
      state.SkipWithError(warm.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    std::vector<std::future<Result<ServeResponse>>> futures;
    futures.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      auto submitted =
          server.Submit(workload[static_cast<size_t>(i) % workload.size()]);
      if (!submitted.ok()) {
        state.SkipWithError(submitted.status().ToString().c_str());
        return;
      }
      futures.push_back(std::move(submitted).value());
    }
    for (auto& future : futures) {
      auto response = future.get();
      if (!response.ok()) {
        state.SkipWithError(response.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(response);
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  ServerStats stats = server.stats();
  state.counters["hit_rate"] = stats.plan_cache.hit_rate();
  state.counters["rejected"] = static_cast<double>(stats.rejected);
}
BENCHMARK(BM_ServeThroughputVsThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Per-request latency with a cold plan cache: every iteration starts a
/// fresh cache generation, so the request pays the full exponential plan
/// search before executing. Compare against BM_ServeWarmPlanCache below —
/// same query, same data, plans cached — for the cache's latency win.
void BM_ServeColdPlanCache(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  QueryServer server(MakePerArmMediator(k), MakeCatalog(8), MakeOptions(1));
  TslQuery query = MakeStarQuery(k);
  for (auto _ : state) {
    server.InvalidatePlans();
    auto response = server.Answer(query);
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    if (response->plan_cache_hit) {
      state.SkipWithError("cold run unexpectedly hit the plan cache");
      return;
    }
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServeColdPlanCache)->DenseRange(3, 7)->Unit(
    benchmark::kMicrosecond);

void BM_ServeWarmPlanCache(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  QueryServer server(MakePerArmMediator(k), MakeCatalog(8), MakeOptions(1));
  TslQuery query = MakeStarQuery(k);
  auto warm = server.Answer(query);
  if (!warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto response = server.Answer(query);
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    if (!response->plan_cache_hit) {
      state.SkipWithError("warm run missed the plan cache");
      return;
    }
    benchmark::DoNotOptimize(response);
  }
  state.counters["hit_rate"] = server.stats().plan_cache.hit_rate();
}
BENCHMARK(BM_ServeWarmPlanCache)->DenseRange(3, 7)->Unit(
    benchmark::kMicrosecond);

/// α-equivalent renamings of one query: canonicalization folds them onto a
/// single cache entry, so every rendering after the first is a hit. This
/// prices the canonicalization step itself (it is on the hit path).
void BM_ServeAlphaRenamedWorkload(benchmark::State& state) {
  constexpr int kArms = 3;
  QueryServer server(MakePerArmMediator(kArms), MakeCatalog(8),
                     MakeOptions(1));
  // The same star query under four different variable alphabets.
  std::vector<TslQuery> renamings;
  for (int r = 0; r < 4; ++r) {
    std::vector<std::string> conditions;
    for (int i = 0; i < kArms; ++i) {
      conditions.push_back(
          StrCat("<P", r, " rec {<R", r, "x", i, " l", i, " u", i, ">}>@db"));
    }
    renamings.push_back(MustParse(
        StrCat("<f(P", r, ") out yes> :- ", Join(conditions, " AND ")), "Q"));
  }
  auto first = server.Answer(renamings[0]);
  if (!first.ok()) {
    state.SkipWithError(first.status().ToString().c_str());
    return;
  }
  size_t next = 1;
  for (auto _ : state) {
    auto response = server.Answer(renamings[next % renamings.size()]);
    ++next;
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    if (!response->plan_cache_hit) {
      state.SkipWithError("renamed query missed the plan cache");
      return;
    }
    benchmark::DoNotOptimize(response);
  }
  state.counters["misses"] =
      static_cast<double>(server.stats().plan_cache.misses);
}
BENCHMARK(BM_ServeAlphaRenamedWorkload)->Unit(benchmark::kMicrosecond);

/// Two α-equivalent mirror endpoints over one source: the fixture that
/// exercises the whole resilience surface — breakers record outcomes for
/// both, hedge partner sets are non-empty, failover has somewhere to go.
Mediator MakeMirroredMediator() {
  Capability a;
  a.view = MakeDumpView("MirrorA");
  Capability b;
  b.view = MakeDumpView("MirrorB");
  auto mediator = Mediator::Make(
      {SourceDescription{"db", {a}}, SourceDescription{"db", {b}}});
  if (!mediator.ok()) std::abort();
  return std::move(mediator).ValueOrDie();
}

ServerOptions ResilientOptions(size_t threads) {
  ServerOptions options = MakeOptions(threads);
  options.resilience.breaker.enabled = true;
  options.resilience.hedge.enabled = true;
  options.request_deadline_ticks = 4096;
  return options;
}

/// The resilience tax on the fault-free serving path, as a *paired*
/// comparison (the BM_RewriteObserved trick): each iteration pushes the
/// same warm-cache batch through a plain server and a server with
/// breakers + hedging + an admission deadline, alternating which goes
/// first, and accumulates the wall times separately.
/// check_bench_regression --overhead gates the exported ratio at <5% —
/// the acceptance bar for shipping the resilience layer enabled.
void BM_ServeResilientOverhead(benchmark::State& state) {
  constexpr int kBatch = 16;
  SourceCatalog catalog = MakeCatalog(96);
  QueryServer plain(MakeMirroredMediator(), catalog, MakeOptions(1));
  QueryServer resilient(MakeMirroredMediator(), catalog,
                        ResilientOptions(1));
  std::vector<TslQuery> workload;
  workload.push_back(MakeStarQuery(1));
  workload.push_back(MakeStarQuery(2));
  for (const TslQuery& query : workload) {
    auto warm_plain = plain.Answer(query);
    auto warm_resilient = resilient.Answer(query);
    if (!warm_plain.ok() || !warm_resilient.ok()) {
      state.SkipWithError("warmup failed");
      return;
    }
  }
  using Clock = std::chrono::steady_clock;
  std::chrono::nanoseconds plain_ns{0};
  std::chrono::nanoseconds resilient_ns{0};
  auto run = [&](QueryServer& server, std::chrono::nanoseconds* total) {
    const auto start = Clock::now();
    for (int i = 0; i < kBatch; ++i) {
      auto response =
          server.Answer(workload[static_cast<size_t>(i) % workload.size()]);
      if (!response.ok()) {
        state.SkipWithError(response.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(response);
    }
    *total += Clock::now() - start;
  };
  bool plain_first = true;
  for (auto _ : state) {
    if (plain_first) {
      run(plain, &plain_ns);
      run(resilient, &resilient_ns);
    } else {
      run(resilient, &resilient_ns);
      run(plain, &plain_ns);
    }
    plain_first = !plain_first;
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  const double iters = static_cast<double>(std::max<int64_t>(
      static_cast<int64_t>(state.iterations()), 1));
  state.counters["plain_us"] =
      static_cast<double>(plain_ns.count()) / 1e3 / iters;
  state.counters["observed_us"] =
      static_cast<double>(resilient_ns.count()) / 1e3 / iters;
  state.counters["overhead"] =
      plain_ns.count() > 0
          ? static_cast<double>(resilient_ns.count()) /
                static_cast<double>(plain_ns.count())
          : 0.0;
}
BENCHMARK(BM_ServeResilientOverhead)->Unit(benchmark::kMicrosecond);

/// A wrapper that injects the chaos drill's flaky-plus-slow regime into
/// every fetch, on the request's own virtual clock (slowness costs ticks,
/// not wall time; the wall-time cost measured here is the *handling* —
/// retries, backoff bookkeeping, failover replans, breaker updates).
class ChaosBenchWrapper : public Wrapper {
 public:
  ChaosBenchWrapper(uint64_t seed, VirtualClock* clock)
      : injector_(&base_, seed, clock) {
    FaultSchedule flaky;
    flaky.steady_state = Fault::Flaky(0.3);
    injector_.SetSchedule("db", flaky);
  }

  Result<WrapperResult> Fetch(const Capability& capability,
                              const SourceCatalog& catalog) override {
    return injector_.Fetch(capability, catalog);
  }

 private:
  CatalogWrapper base_;
  FaultInjector injector_;
};

/// CL-CHAOS: healthy-vs-chaos paired throughput on the resilient server.
/// Each iteration pushes one warm-cache batch through a fault-free server
/// and one whose wrappers flake at p=0.3, interleaved. The exported
/// `slowdown` ratio prices fault handling (retries, failover, breaker
/// churn) relative to the healthy path; the row's real time is gated by
/// the baseline comparison like every other serving benchmark.
void BM_ServeChaos(benchmark::State& state) {
  constexpr int kBatch = 16;
  SourceCatalog catalog = MakeCatalog(96);
  QueryServer healthy(MakeMirroredMediator(), catalog, ResilientOptions(1));
  QueryServer chaotic(MakeMirroredMediator(), catalog, ResilientOptions(1),
                      [](VirtualClock* clock, uint64_t seed) {
                        return std::make_unique<ChaosBenchWrapper>(seed,
                                                                   clock);
                      });
  std::vector<TslQuery> workload;
  workload.push_back(MakeStarQuery(1));
  workload.push_back(MakeStarQuery(2));
  for (const TslQuery& query : workload) {
    auto warm_healthy = healthy.Answer(query);
    auto warm_chaotic = chaotic.Answer(query);
    if (!warm_healthy.ok() || !warm_chaotic.ok()) {
      state.SkipWithError("warmup failed");
      return;
    }
  }
  using Clock = std::chrono::steady_clock;
  std::chrono::nanoseconds healthy_ns{0};
  std::chrono::nanoseconds chaos_ns{0};
  size_t degraded = 0;
  auto run = [&](QueryServer& server, std::chrono::nanoseconds* total) {
    const auto start = Clock::now();
    for (int i = 0; i < kBatch; ++i) {
      auto response =
          server.Answer(workload[static_cast<size_t>(i) % workload.size()]);
      if (!response.ok()) {
        state.SkipWithError(response.status().ToString().c_str());
        return;
      }
      if (!response->answer.complete()) ++degraded;
      benchmark::DoNotOptimize(response);
    }
    *total += Clock::now() - start;
  };
  bool healthy_first = true;
  for (auto _ : state) {
    if (healthy_first) {
      run(healthy, &healthy_ns);
      run(chaotic, &chaos_ns);
    } else {
      run(chaotic, &chaos_ns);
      run(healthy, &healthy_ns);
    }
    healthy_first = !healthy_first;
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  const double iters = static_cast<double>(std::max<int64_t>(
      static_cast<int64_t>(state.iterations()), 1));
  state.counters["healthy_us"] =
      static_cast<double>(healthy_ns.count()) / 1e3 / iters;
  state.counters["chaos_us"] =
      static_cast<double>(chaos_ns.count()) / 1e3 / iters;
  state.counters["slowdown"] =
      healthy_ns.count() > 0
          ? static_cast<double>(chaos_ns.count()) /
                static_cast<double>(healthy_ns.count())
          : 0.0;
  state.counters["degraded"] = static_cast<double>(degraded) / iters;
}
BENCHMARK(BM_ServeChaos)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tslrw::bench

BENCHMARK_MAIN();
