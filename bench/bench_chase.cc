// CL-POLY-CHASE (\S3.3): "applying label inference and the chase always
// terminates in time polynomial to the length of the queries and the
// constraints description."
//
// Families: (a) oid-key chase over growing star bodies sharing one root;
// (b) label inference over growing chains with a growing DTD; (c) the
// labeled-FD chase merging duplicated sibling paths. Time should grow
// polynomially (roughly quadratically in the body size for the pairwise
// scan), never geometrically.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "constraints/dtd.h"
#include "rewrite/chase.h"

namespace tslrw::bench {
namespace {

void BM_OidKeyChaseStar(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  // k arms with value variables that all merge pairwise through the shared
  // child oid X: <P rec {<X l Z0>}> AND ... AND <P rec {<X l Zk>}>.
  std::vector<std::string> body;
  for (int i = 0; i < k; ++i) {
    body.push_back(StrCat("<P rec {<X l Z", i, ">}>@db"));
  }
  TslQuery query = MustParse(
      StrCat("<f(P) out yes> :- ", Join(body, " AND ")), "Q");
  for (auto _ : state) {
    auto chased = ChaseQuery(query);
    if (!chased.ok()) state.SkipWithError(chased.status().ToString().c_str());
    benchmark::DoNotOptimize(chased);
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_OidKeyChaseStar)->RangeMultiplier(2)->Range(2, 64)->Complexity();

void BM_SetVariableChase(benchmark::State& state) {
  // k arms alternating set patterns and set variables on the same root
  // value: each variable gets expanded by the \S3.2 set-variable rule.
  const int k = static_cast<int>(state.range(0));
  std::vector<std::string> body;
  body.push_back("<P rec {<X0 l0 u>}>@db");
  for (int i = 0; i < k; ++i) {
    body.push_back(StrCat("<P rec V", i, ">@db"));
  }
  TslQuery query = MustParse(
      StrCat("<f(P) out yes> :- ", Join(body, " AND ")), "Q");
  for (auto _ : state) {
    auto chased = ChaseQuery(query);
    if (!chased.ok()) state.SkipWithError(chased.status().ToString().c_str());
    benchmark::DoNotOptimize(chased);
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_SetVariableChase)->RangeMultiplier(2)->Range(2, 64)->Complexity();

/// A linear DTD a0 -> a1 -> ... -> a{n-1} -> leaf, each level exactly-one.
Dtd MakeChainDtd(int n) {
  std::string text;
  for (int i = 0; i + 1 < n; ++i) {
    text += StrCat("<!ELEMENT a", i, " (a", i + 1, ")>\n");
  }
  text += StrCat("<!ELEMENT a", n - 1, " (leaf)>\n<!ELEMENT leaf CDATA>\n");
  auto dtd = Dtd::Parse(text);
  if (!dtd.ok()) std::abort();
  return std::move(dtd).ValueOrDie();
}

void BM_LabelInferenceChain(benchmark::State& state) {
  // A chain query whose middle labels are all variables; the DTD pins each
  // one. Work is O(depth * rounds) — polynomial.
  const int depth = static_cast<int>(state.range(0));
  Dtd dtd = MakeChainDtd(depth + 1);
  StructuralConstraints constraints(std::move(dtd));
  ChaseOptions options{&constraints, {}};
  // <P a0 {<X1 L1 {<X2 L2 ... {<Xd leaf u>} ...>}>}>
  std::string inner = StrCat("{<Xd leaf u>}");
  for (int d = depth - 1; d >= 1; --d) {
    inner = StrCat("{<X", d, " L", d, " ", inner, ">}");
  }
  TslQuery query = MustParse(
      StrCat("<f(P) out yes> :- <P a0 ", inner, ">@db"), "Q");
  for (auto _ : state) {
    auto chased = ChaseQuery(query, options);
    if (!chased.ok()) state.SkipWithError(chased.status().ToString().c_str());
    benchmark::DoNotOptimize(chased);
  }
  state.SetComplexityN(depth);
}
BENCHMARK(BM_LabelInferenceChain)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity();

void BM_LabeledFdMerge(benchmark::State& state) {
  // k duplicate `name` siblings under one person; the FD p -> name merges
  // them all into one path.
  const int k = static_cast<int>(state.range(0));
  auto dtd = Dtd::Parse(R"(
    <!ELEMENT p (name, phone)>
    <!ELEMENT name CDATA>
    <!ELEMENT phone CDATA>
  )");
  if (!dtd.ok()) std::abort();
  StructuralConstraints constraints(std::move(*dtd));
  ChaseOptions options{&constraints, {}};
  std::vector<std::string> body;
  for (int i = 0; i < k; ++i) {
    body.push_back(StrCat("<P p {<N", i, " name W", i, ">}>@db"));
  }
  TslQuery query = MustParse(
      StrCat("<f(P) out yes> :- ", Join(body, " AND ")), "Q");
  for (auto _ : state) {
    auto chased = ChaseQuery(query, options);
    if (!chased.ok()) state.SkipWithError(chased.status().ToString().c_str());
    benchmark::DoNotOptimize(chased);
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_LabeledFdMerge)->RangeMultiplier(2)->Range(2, 32)->Complexity();

}  // namespace
}  // namespace tslrw::bench

BENCHMARK_MAIN();
