// CL-EQUIV (\S4): cost of the TSL equivalence test as the number of graph
// components grows. Decomposition is linear in the head; the mutual
// coverage test is quadratic in the number of components times the cost of
// body-mapping discovery, so same-shaped queries should test in polynomial
// time, while wildcard bodies expose the underlying NP-hardness inherited
// from conjunctive-query containment.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "equiv/component.h"
#include "equiv/equivalence.h"

namespace tslrw::bench {
namespace {

/// A head republishing k subobjects under distinct labels: decomposes into
/// 1 top + k member + (k+1) object components.
TslQuery MakeWideHeadQuery(int k, const char* value_stem) {
  std::vector<std::string> head;
  std::vector<std::string> body;
  for (int i = 0; i < k; ++i) {
    head.push_back(StrCat("<h", i, "(X", i, ") m", i, " Z", i, ">"));
    body.push_back(
        StrCat("<P rec {<X", i, " l", i, " Z", i, ">}>@db"));
  }
  return MustParse(StrCat("<f(P) ", value_stem, " {", Join(head, " "),
                          "}> :- ", Join(body, " AND ")),
                   "Q");
}

void BM_Decompose(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  TslQuery q = MakeWideHeadQuery(k, "out");
  size_t components = 0;
  for (auto _ : state) {
    auto parts = DecomposeQuery(q);
    if (!parts.ok()) state.SkipWithError(parts.status().ToString().c_str());
    components = parts->size();
    benchmark::DoNotOptimize(parts);
  }
  state.counters["components"] = static_cast<double>(components);
  state.SetComplexityN(k);
}
BENCHMARK(BM_Decompose)->RangeMultiplier(2)->Range(2, 64)->Complexity();

void BM_EquivalentPair(benchmark::State& state) {
  // Alpha-renamed copies: the positive case must still verify quickly.
  const int k = static_cast<int>(state.range(0));
  TslQuery a = MakeWideHeadQuery(k, "out");
  TslQuery b = MakeWideHeadQuery(k, "out");
  for (auto _ : state) {
    auto eq = AreEquivalent(a, b);
    if (!eq.ok()) state.SkipWithError(eq.status().ToString().c_str());
    if (!*eq) state.SkipWithError("expected equivalence");
    benchmark::DoNotOptimize(eq);
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_EquivalentPair)->RangeMultiplier(2)->Range(2, 32)->Complexity();

void BM_InequivalentPair(benchmark::State& state) {
  // One differing label: the test must reject, typically fast (a component
  // with no counterpart).
  const int k = static_cast<int>(state.range(0));
  TslQuery a = MakeWideHeadQuery(k, "out");
  TslQuery b = MakeWideHeadQuery(k, "other");
  for (auto _ : state) {
    auto eq = AreEquivalent(a, b);
    if (!eq.ok()) state.SkipWithError(eq.status().ToString().c_str());
    if (*eq) state.SkipWithError("expected inequivalence");
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_InequivalentPair)->RangeMultiplier(2)->Range(2, 32)->Complexity();

void BM_ContainmentHardCase(benchmark::State& state) {
  // Wildcard bodies make body-mapping discovery combinatorial (inherited
  // CQ-containment hardness); kept small deliberately.
  const int k = static_cast<int>(state.range(0));
  std::vector<std::string> wild;
  for (int i = 0; i < k; ++i) {
    wild.push_back(StrCat("<P rec {<X", i, " Y", i, " Z", i, ">}>@db"));
  }
  TslQuery a = MustParse(
      StrCat("<f(P) out yes> :- ", Join(wild, " AND ")), "A");
  TslQuery b = MakeStarQuery(k);
  b.head = a.head;
  for (auto _ : state) {
    auto le = IsContainedIn(TslRuleSet::Single(b), TslRuleSet::Single(a));
    if (!le.ok()) state.SkipWithError(le.status().ToString().c_str());
    benchmark::DoNotOptimize(le);
  }
}
BENCHMARK(BM_ContainmentHardCase)->DenseRange(1, 6);

}  // namespace
}  // namespace tslrw::bench

BENCHMARK_MAIN();
