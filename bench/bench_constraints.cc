// CL-DTD-GAIN (\S3.3): "The existence of such constraints allows us to
// find rewritings in cases where, in the absence of constraints, the
// algorithm would fail."
//
// Family: Example-3.3-shaped queries <P p {<X name_i {<Z last_i c>}>}>
// against the label/value-splitting view (V1). Without a DTD none of them
// is rewritable; with a per-family DTD (each p has exactly one name_i, and
// only name_i can carry last_i) all of them are. The `rewritable` counter
// is the headline: 0 without constraints, k with.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "constraints/dtd.h"
#include "rewrite/rewriter.h"

namespace tslrw::bench {
namespace {

TslQuery MakeV1() {
  return MustParse(
      "<g(P') p {<pp(P',Y') pr Y'> <h(X') v Z'>}> :- <P' p {<X' Y' Z'>}>@db",
      "V1");
}

/// k queries of the Example 3.3 shape over distinct name_i/last_i labels.
std::vector<TslQuery> MakeFamily(int k) {
  std::vector<TslQuery> queries;
  for (int i = 0; i < k; ++i) {
    queries.push_back(MustParse(
        StrCat("<f(P) out yes> :- <P p {<X name", i, " {<Z last", i,
               " c>}>}>@db"),
        StrCat("Q", i)));
  }
  return queries;
}

/// The family DTD: p has exactly one of each name_i; only name_i has
/// last_i.
Dtd MakeFamilyDtd(int k) {
  std::string text;
  std::string p_children;
  for (int i = 0; i < k; ++i) {
    if (i) p_children += ", ";
    p_children += StrCat("name", i);
    text += StrCat("<!ELEMENT name", i, " (last", i, ", first)>\n");
    text += StrCat("<!ELEMENT last", i, " CDATA>\n");
  }
  text += StrCat("<!ELEMENT p (", p_children, ")>\n");
  text += "<!ELEMENT first CDATA>\n";
  auto dtd = Dtd::Parse(text);
  if (!dtd.ok()) std::abort();
  return std::move(dtd).ValueOrDie();
}

void RunFamily(benchmark::State& state, bool with_dtd) {
  const int k = static_cast<int>(state.range(0));
  std::vector<TslQuery> family = MakeFamily(k);
  TslQuery v1 = MakeV1();
  Dtd dtd = MakeFamilyDtd(k);
  StructuralConstraints constraints(std::move(dtd));
  RewriteOptions options;
  if (with_dtd) options.constraints = &constraints;
  size_t rewritable = 0;
  for (auto _ : state) {
    rewritable = 0;
    for (const TslQuery& q : family) {
      auto result = RewriteQuery(q, {v1}, options);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      if (!result->rewritings.empty()) ++rewritable;
    }
    benchmark::DoNotOptimize(rewritable);
  }
  state.counters["queries"] = static_cast<double>(k);
  state.counters["rewritable"] = static_cast<double>(rewritable);
}

void BM_FamilyWithoutDtd(benchmark::State& state) {
  RunFamily(state, /*with_dtd=*/false);
}
BENCHMARK(BM_FamilyWithoutDtd)->DenseRange(1, 8);

void BM_FamilyWithDtd(benchmark::State& state) {
  RunFamily(state, /*with_dtd=*/true);
}
BENCHMARK(BM_FamilyWithDtd)->DenseRange(1, 8);

void BM_ChaseOverheadOfConstraints(benchmark::State& state) {
  // The price of carrying a large DTD through the rewrite of a query it
  // never applies to: should be near-zero marginal cost.
  const int decls = static_cast<int>(state.range(0));
  std::string text = "<!ELEMENT p (name)>\n<!ELEMENT name CDATA>\n";
  for (int i = 0; i < decls; ++i) {
    text += StrCat("<!ELEMENT e", i, " (c", i, "*)>\n<!ELEMENT c", i,
                   " CDATA>\n");
  }
  auto dtd = Dtd::Parse(text);
  if (!dtd.ok()) std::abort();
  StructuralConstraints constraints(std::move(*dtd));
  RewriteOptions options;
  options.constraints = &constraints;
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P zzz {<X www v>}>@db", "Q");
  TslQuery view = MakeDumpView("V");
  for (auto _ : state) {
    auto result = RewriteQuery(query, {view}, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(decls);
}
BENCHMARK(BM_ChaseOverheadOfConstraints)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

}  // namespace
}  // namespace tslrw::bench

BENCHMARK_MAIN();
