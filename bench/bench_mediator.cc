// CL-CBR (\S1, Fig. 2): capability-based rewriting as the mediator's query
// processing front end. We sweep the number of integrated sources and the
// data volume, separating planning cost (pure rewriting, no data access)
// from execution cost (wrapper materialization + consolidation).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "mediator/cache.h"
#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "oem/generator.h"

namespace tslrw::bench {
namespace {

/// n sources, each with a dump capability over its publication-like data.
Mediator MakeWideMediator(int n) {
  std::vector<SourceDescription> sources;
  for (int i = 0; i < n; ++i) {
    Capability cap;
    cap.view = MustParse(
        StrCat("<d", i, "(P') rec {<X' Y' Z'>}> :- <P' rec {<X' Y' Z'>}>@s",
               i),
        StrCat("Dump", i));
    sources.push_back(SourceDescription{StrCat("s", i), {cap}});
  }
  auto mediator = Mediator::Make(std::move(sources));
  if (!mediator.ok()) std::abort();
  return std::move(mediator).ValueOrDie();
}

SourceCatalog MakeWideCatalog(int n, int roots_each) {
  SourceCatalog catalog;
  for (int i = 0; i < n; ++i) {
    GeneratorOptions options;
    options.seed = 1000 + static_cast<uint64_t>(i);
    options.num_roots = roots_each;
    options.max_depth = 2;
    options.num_labels = 4;
    options.num_values = 4;
    options.root_label = "rec";
    catalog.Put(GenerateOemDatabase(StrCat("s", i), options));
  }
  return catalog;
}

void BM_PlanVsSources(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Mediator mediator = MakeWideMediator(n);
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P rec {<X l0 v0>}>@s0", "Q");
  size_t plans = 0;
  for (auto _ : state) {
    auto result = mediator.Plan(query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    plans = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["plans"] = static_cast<double>(plans);
  state.SetComplexityN(n);
}
BENCHMARK(BM_PlanVsSources)->RangeMultiplier(2)->Range(1, 16)->Complexity();

void BM_ExecuteVsDataSize(benchmark::State& state) {
  const int roots = static_cast<int>(state.range(0));
  Mediator mediator = MakeWideMediator(2);
  SourceCatalog catalog = MakeWideCatalog(2, roots);
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P rec {<X l0 v0>}>@s0", "Q");
  auto plans = mediator.Plan(query);
  if (!plans.ok() || plans->empty()) {
    state.SkipWithError("no plan");
    return;
  }
  for (auto _ : state) {
    auto answer = mediator.Execute(plans->front(), catalog);
    if (!answer.ok()) state.SkipWithError(answer.status().ToString().c_str());
    benchmark::DoNotOptimize(answer);
  }
  state.SetComplexityN(roots);
}
BENCHMARK(BM_ExecuteVsDataSize)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();

void BM_CacheHitVsMiss(benchmark::State& state) {
  // The \S1 cached-query scenario: answering from the cache versus
  // recomputing over the base (the win the repository is after).
  const bool hit = state.range(0) == 1;
  SourceCatalog catalog = MakeWideCatalog(1, 256);
  QueryCache cache;
  TslQuery cached = MustParse(
      "<c(P') rec {<X' Y' Z'>}> :- "
      "<P' rec {<U' l0 v0>}>@s0 AND <P' rec {<X' Y' Z'>}>@s0",
      "L0V0Cache");
  if (!cache.InsertAndMaterialize(cached, catalog).ok()) {
    state.SkipWithError("cache warmup failed");
    return;
  }
  // The narrower query filters the cached result further.
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P rec {<U l0 v0>}>@s0 AND <P rec {<W l1 v1>}>@s0",
      "Q");
  SourceCatalog base = hit ? SourceCatalog{} : catalog;
  for (auto _ : state) {
    auto answer = cache.TryAnswer(query, hit ? SourceCatalog{} : catalog,
                                  /*allow_base_fallback=*/!hit);
    if (!answer.ok()) state.SkipWithError(answer.status().ToString().c_str());
    benchmark::DoNotOptimize(answer);
  }
  state.SetLabel(hit ? "cache-hit" : "base-recompute");
}
BENCHMARK(BM_CacheHitVsMiss)->Arg(1)->Arg(0);

void BM_FailoverVsDeadEndpoints(benchmark::State& state) {
  // Fault-tolerant Answer with 0, 1, or 2 of three replicated endpoints
  // dead: the marginal cost of exhausting retries and walking further down
  // the plan list before a live replica answers.
  const int dead = static_cast<int>(state.range(0));
  std::vector<SourceDescription> sources;
  for (int i = 0; i < 3; ++i) {
    Capability cap;
    cap.view = MustParse(
        StrCat("<r", i, "(P') rec {<X' Y' Z'>}> :- <P' rec {<X' Y' Z'>}>@s0"),
        StrCat("R", i));
    sources.push_back(SourceDescription{"s0", {cap}});
  }
  auto mediator = Mediator::Make(std::move(sources));
  if (!mediator.ok()) {
    state.SkipWithError("mediator construction failed");
    return;
  }
  SourceCatalog catalog = MakeWideCatalog(1, 64);
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P rec {<X l0 v0>}>@s0", "Q");
  CatalogWrapper base;
  for (auto _ : state) {
    VirtualClock clock;
    FaultInjector injector(&base, /*seed=*/7, &clock);
    for (int i = 0; i < dead; ++i) {
      FaultSchedule down;
      down.steady_state = Fault::Unavailable();
      injector.SetSchedule(StrCat("R", i), down);
    }
    ExecutionPolicy policy;
    policy.wrapper = &injector;
    policy.clock = &clock;
    policy.retry.max_attempts = 2;
    auto answer = mediator->Answer(query, catalog, policy);
    if (!answer.ok()) state.SkipWithError(answer.status().ToString().c_str());
    benchmark::DoNotOptimize(answer);
  }
  state.SetLabel(StrCat(dead, " dead endpoint(s)"));
}
BENCHMARK(BM_FailoverVsDeadEndpoints)->Arg(0)->Arg(1)->Arg(2);

void BM_DegradedVsTotalPlanning(benchmark::State& state) {
  // The cost of the \S7 fallback relative to a healthy total plan: the
  // two-source query loses s1, so Answer re-plans and runs the
  // maximally-contained search before producing the degraded answer.
  const bool degraded = state.range(0) == 1;
  Mediator mediator = MakeWideMediator(2);
  SourceCatalog catalog = MakeWideCatalog(2, 64);
  TslQuery query = MustParse(
      "<f(P,R) out yes> :- "
      "<P rec {<X l0 v0>}>@s0 AND <R rec {<Y l1 v1>}>@s1",
      "Q");
  CatalogWrapper base;
  for (auto _ : state) {
    VirtualClock clock;
    FaultInjector injector(&base, /*seed=*/7, &clock);
    if (degraded) {
      FaultSchedule down;
      down.steady_state = Fault::Unavailable();
      injector.SetSchedule("s1", down);
    }
    ExecutionPolicy policy;
    policy.wrapper = &injector;
    policy.clock = &clock;
    policy.retry.max_attempts = 1;
    auto answer = mediator.Answer(query, catalog, policy);
    if (!answer.ok()) state.SkipWithError(answer.status().ToString().c_str());
    benchmark::DoNotOptimize(answer);
  }
  state.SetLabel(degraded ? "degraded-fallback" : "total-plan");
}
BENCHMARK(BM_DegradedVsTotalPlanning)->Arg(0)->Arg(1);

}  // namespace
}  // namespace tslrw::bench

BENCHMARK_MAIN();
