// CL-EXP-COMP (\S5.1 / [31]): "the construction of Q'(V1,...,Vn) using a
// query composition algorithm takes exponential time."
//
// Family: a view head with b sibling branches against a query with n
// generic member conditions over the view — each condition unifies with
// every branch, so composition produces b^n resolvent rules. The `rules`
// counter exposes the blow-up; time follows it. The selective family shows
// the practical case (constant labels, one unifier each) staying linear.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.h"
#include "rewrite/compose.h"

namespace tslrw::bench {
namespace {

void BM_ComposeBranchy(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));  // head branches
  const int n = static_cast<int>(state.range(1));  // generic conditions
  TslQuery view = MakeBranchyView(b, "V");
  TslQuery query = MakeGenericViewQuery(n, "V");
  size_t rules = 0;
  for (auto _ : state) {
    auto composed = ComposeWithViews(query, {view});
    if (!composed.ok()) {
      state.SkipWithError(composed.status().ToString().c_str());
    }
    rules = composed->rules.size();
    benchmark::DoNotOptimize(composed);
  }
  state.counters["rules"] = static_cast<double>(rules);
  state.counters["expected_upper"] = std::pow(b, n);
}
BENCHMARK(BM_ComposeBranchy)
    ->ArgsProduct({{2, 3, 4}, {1, 2, 3, 4}});

void BM_ComposeSelective(benchmark::State& state) {
  // Constant-labeled conditions match exactly one branch each: one rule,
  // time linear in n (the everyday case for rewriter-generated bodies).
  const int n = static_cast<int>(state.range(0));
  const int b = 8;
  TslQuery view = MakeBranchyView(b, "V");
  std::vector<std::string> body;
  for (int i = 0; i < n; ++i) {
    int branch = i % b;
    body.push_back(StrCat("<v(P) out {<w", branch, "(X", i, ") m U", i,
                          ">}>@V"));
  }
  TslQuery query = MustParse(
      StrCat("<f(P) out yes> :- ", Join(body, " AND ")), "Q");
  size_t rules = 0;
  for (auto _ : state) {
    auto composed = ComposeWithViews(query, {view});
    if (!composed.ok()) {
      state.SkipWithError(composed.status().ToString().c_str());
    }
    rules = composed->rules.size();
  }
  state.counters["rules"] = static_cast<double>(rules);
  state.SetComplexityN(n);
}
BENCHMARK(BM_ComposeSelective)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->Complexity();

void BM_ComposeDeepPush(benchmark::State& state) {
  // Pushing an ever-deeper remaining path below a copied view value: the
  // set-binding mechanics should stay linear in the path depth.
  const int depth = static_cast<int>(state.range(0));
  TslQuery view = MakeDumpView("V");
  std::string inner = "u";
  for (int d = depth; d >= 1; --d) {
    inner = StrCat("{<Y", d, " m", d, " ", inner, ">}");
  }
  TslQuery query = MustParse(
      StrCat("<f(P) out yes> :- <d(P) rec {<X l0 ", inner, ">}>@V"), "Q");
  for (auto _ : state) {
    auto composed = ComposeWithViews(query, {view});
    if (!composed.ok()) {
      state.SkipWithError(composed.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(composed);
  }
  state.SetComplexityN(depth);
}
BENCHMARK(BM_ComposeDeepPush)
    ->RangeMultiplier(2)
    ->Range(1, 32)
    ->Complexity();

}  // namespace
}  // namespace tslrw::bench

BENCHMARK_MAIN();
