// Regular path steps over graph-shaped OEM data (the \S7 extension, on the
// evaluation side): an organization chart with a cyclic "collaborates"
// relation. `manages+` finds the whole reporting subtree, `**` finds
// anything reachable, and the rewriting pipeline demonstrates its explicit
// refusal to rewrite such queries (the theory the paper defers).

#include <cstdio>
#include <cstdlib>

#include "eval/evaluator.h"
#include "oem/parser.h"
#include "rewrite/rewriter.h"
#include "tsl/parser.h"

namespace {

void Fail(const tslrw::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Must(tslrw::Result<T> result) {
  if (!result.ok()) Fail(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace tslrw;

  SourceCatalog catalog;
  catalog.Put(Must(ParseOemDatabase(R"(
    database org {
      <ceo emp {
        <n0 name "ada">
        <m1 emp {
          <n1 name "grace">
          <m2 emp { <n2 name "edsger"> <c1 peer { @m3 }> }>
        }>
        <m3 emp {
          <n3 name "barbara">
          <c2 peer { @m2 }>
        }>
      }>
    })")));

  // Everyone in ada's reporting subtree, at any depth: emp+ .
  TslQuery reports = Must(ParseTslQuery(
      R"(<r(E) report N> :-
           <C emp {<X name "ada">}>@org AND
           <C emp {<E emp+ {<M name N>}>}>@org)",
      "AllReports"));
  OemDatabase subtree = Must(Evaluate(reports, catalog));
  std::printf("== reports of ada (emp+) ==\n%s\n", subtree.ToString().c_str());

  // Anything reachable below grace holding the name edsger: ** .
  TslQuery reach = Must(ParseTslQuery(
      R"(<f(E) found yes> :-
           <C emp {<G emp {<X name "grace">}>}>@org AND
           <C emp {<G emp {<E ** {<M name "edsger">}>}>}>@org)",
      "Reachable"));
  OemDatabase found = Must(Evaluate(reach, catalog));
  std::printf("== descendants of grace named edsger (**) ==\n%s\n",
              found.ToString().c_str());

  // The `peer` relation is cyclic; descendant search still terminates.
  TslQuery loop = Must(ParseTslQuery(
      R"(<f(E) in-cycle yes> :- <C emp {<E ** {<P peer {}>}>}>@org)",
      "CycleSafe"));
  OemDatabase cyclic = Must(Evaluate(loop, catalog));
  std::printf("== employees with a peer edge, via ** over a cycle ==\n%s\n",
              cyclic.ToString().c_str());

  // Rewriting such queries is the paper's future work: the pipeline says
  // so instead of silently under-answering.
  TslQuery view = Must(ParseTslQuery(
      R"(<v(E') o {<w(X') m N'>}> :- <E' emp {<X' name N'>}>@org)", "V"));
  auto rewritten = RewriteQuery(reports, {view});
  std::printf("rewrite of an emp+ query: %s\n",
              rewritten.ok() ? "unexpectedly succeeded!"
                             : rewritten.status().ToString().c_str());
  return rewritten.ok() ? 1 : 0;
}
