// The \S1 repository scenario (Lore-style): answering queries from cached
// query results. A previously cached "all SIGMOD publications" result
// answers a later "SIGMOD 1997" query by filtering the cache — "the
// rewriting algorithm only needs the query and the cached query statements;
// it does not need to examine the source data".

#include <cstdio>
#include <cstdlib>

#include "mediator/cache.h"
#include "oem/parser.h"
#include "service/server.h"
#include "tsl/parser.h"

namespace {

void Fail(const tslrw::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Must(tslrw::Result<T> result) {
  if (!result.ok()) Fail(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace tslrw;

  SourceCatalog repository;
  repository.Put(Must(ParseOemDatabase(R"(
    database lore {
      <p1 publication { <t1 title "Views"> <v1 venue "SIGMOD">
                        <y1 year "1997"> }>
      <p2 publication { <t2 title "Tsimmis"> <v2 venue "SIGMOD">
                        <y2 year "1995"> }>
      <p3 publication { <t3 title "Lore"> <v3 venue "VLDB">
                        <y3 year "1997"> }>
    })")));

  QueryCache cache;

  // Warm the cache: all SIGMOD publications, with their subobjects.
  TslQuery sigmod_all = Must(ParseTslQuery(
      R"(<c(P') sigmod-pub {<X' Y' Z'>}> :-
           <P' publication {<V' venue "SIGMOD">}>@lore AND
           <P' publication {<X' Y' Z'>}>@lore)",
      "SigmodAll"));
  if (auto st = cache.InsertAndMaterialize(sigmod_all, repository); !st.ok()) {
    Fail(st);
  }
  std::printf("cached 1 statement: %s\n\n", sigmod_all.ToString().c_str());

  // Query 1: SIGMOD 1997 — answerable by filtering the cache.
  TslQuery q97 = Must(ParseTslQuery(
      R"(<f(P) sigmod97 {<X Y Z>}> :-
           <P publication {<V venue "SIGMOD">}>@lore AND
           <P publication {<U year "1997">}>@lore AND
           <P publication {<X Y Z>}>@lore)",
      "Sigmod97"));
  SourceCatalog no_base;  // the base source is deliberately unavailable
  QueryCache::Answer hit =
      Must(cache.TryAnswer(q97, no_base, /*allow_base_fallback=*/false));
  std::printf("== SIGMOD 97 (cache %s) ==\nrewriting: %s\n%s\n",
              hit.from_cache ? "HIT" : "MISS",
              hit.rewriting.ToString().c_str(),
              hit.result.ToString().c_str());

  // Query 2: VLDB publications — not derivable from a SIGMOD cache.
  TslQuery vldb = Must(ParseTslQuery(
      R"(<f(P) vldb-pub yes> :-
           <P publication {<V venue "VLDB">}>@lore)",
      "Vldb"));
  auto miss = cache.TryAnswer(vldb, no_base, /*allow_base_fallback=*/false);
  std::printf("== VLDB without base access ==\n%s\n\n",
              miss.ok() ? "unexpected hit!" : miss.status().ToString().c_str());

  // With base fallback the repository answers it directly.
  QueryCache::Answer fallback =
      Must(cache.TryAnswer(vldb, repository, /*allow_base_fallback=*/true));
  std::printf("== VLDB with base fallback (cache %s) ==\n%s\n",
              fallback.from_cache ? "HIT" : "MISS",
              fallback.result.ToString().c_str());

  // The serving layer's variant of the same idea: instead of caching
  // materialized answers, the QueryServer caches rewriting-plan lists (the
  // exponential part) per canonical query — α-renamed spellings share one
  // entry, and the data stays live.
  Capability dump;
  dump.view = Must(ParseTslQuery(
      R"(<d(P') publication {<X' Y' Z'>}> :-
           <P' publication {<X' Y' Z'>}>@lore)",
      "Dump"));
  Mediator mediator =
      Must(Mediator::Make({SourceDescription{"lore", {dump}}}));
  QueryServer server(std::move(mediator), repository);

  ServeResponse cold = Must(server.Answer(q97));
  std::printf("\n== serving layer, cold plan cache (%s) ==\n%s",
              cold.plan_cache_hit ? "hit" : "miss",
              cold.answer.result.ToString().c_str());
  std::printf("plan search paid here: %s\n",
              cold.plan_search.ToString().c_str());
  // The same query under another variable alphabet: still a hit.
  TslQuery q97_renamed = Must(ParseTslQuery(
      R"(<f(Pub) sigmod97 {<Sub Lbl Val>}> :-
           <Pub publication {<Ven venue "SIGMOD">}>@lore AND
           <Pub publication {<Yr year "1997">}>@lore AND
           <Pub publication {<Sub Lbl Val>}>@lore)",
      "Sigmod97"));
  ServeResponse warm = Must(server.Answer(q97_renamed));
  std::printf("== serving layer, α-renamed spelling (%s) ==\n%s",
              warm.plan_cache_hit ? "hit" : "miss",
              warm.answer.result.ToString().c_str());
  std::printf("plan search skipped (cached numbers): %s\n",
              warm.plan_search.ToString().c_str());
  std::printf("\n%s", server.stats().ToString().c_str());
  return 0;
}
