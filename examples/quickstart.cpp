// Quickstart: the 60-second tour of tslrw.
//
// Builds the paper's Fig. 3 bibliographic data, runs a TSL query over it,
// defines a view, asks the rewriter to answer the query through the view,
// and verifies the two answers coincide — the whole pipeline in one file.

#include <cstdio>
#include <cstdlib>

#include "eval/evaluator.h"
#include "oem/generator.h"
#include "oem/parser.h"
#include "rewrite/rewriter.h"
#include "tsl/parser.h"

namespace {

void Fail(const tslrw::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Must(tslrw::Result<T> result) {
  if (!result.ok()) Fail(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace tslrw;

  // 1. An OEM database (Fig. 3): two publications, one from SIGMOD 1993.
  OemDatabase db = MakeFig3Database("db");
  std::printf("== source data (Fig. 3) ==\n%s\n", db.ToString().c_str());
  SourceCatalog catalog;
  catalog.Put(db);

  // 2. A TSL query: publications by A. Gupta, republished with their
  //    subobjects copied under fresh f(...) answer ids.
  TslQuery query = Must(ParseTslQuery(
      R"((ByGupta) <f(P) gupta-pub {<X Y Z>}> :-
           <P publication {<A author "A. Gupta">}>@db AND
           <P publication {<X Y Z>}>@db)"));
  OemDatabase direct = Must(Evaluate(query, catalog));
  std::printf("== direct answer ==\n%s\n", direct.ToString().c_str());

  // 3. A view: every publication, restructured (label/value split like the
  //    paper's (V1), but keeping the correspondence).
  TslQuery view = Must(ParseTslQuery(
      R"(<g(P') publication {<X' Y' Z'>}> :-
           <P' publication {<X' Y' Z'>}>@db)",
      "AllPubs"));

  // 4. Rewrite the query to run against the view only.
  RewriteOptions options;
  options.require_total = true;
  RewriteResult rewrites = Must(RewriteQuery(query, {view}, options));
  std::printf("== rewriting ==\nmappings found: %zu, candidates tested: %zu\n",
              rewrites.mappings_found, rewrites.candidates_tested);
  if (rewrites.rewritings.empty()) {
    std::fprintf(stderr, "no rewriting found (unexpected)\n");
    return 1;
  }
  const TslQuery& rewriting = rewrites.rewritings.front();
  std::printf("%s\n\n", rewriting.ToString().c_str());

  // 5. Materialize the view, answer through it, and compare.
  SourceCatalog views_only;
  views_only.Put(Must(MaterializeView(view, catalog)));
  OemDatabase via_view = Must(
      Evaluate(rewriting, views_only, EvalOptions{.answer_name = "ByGupta"}));
  std::printf("== answer via the view ==\n%s\n", via_view.ToString().c_str());

  if (!direct.Equals(via_view)) {
    std::fprintf(stderr, "MISMATCH: rewriting is unsound!\n");
    return 1;
  }
  std::printf("answers identical: the rewriting is equivalent to the query\n");
  return 0;
}
