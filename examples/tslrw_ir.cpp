// Compiled plan execution: lowers a capability-based rewriting plan set to
// the flat register IR (src/ir), shows what each optimization pass did to
// the program (before/after op counts, mirroring the `plan <Q> ir` shell
// command), and proves the point of the exercise — the interpreter's answer
// is byte-identical to the tree walker's on every pass configuration.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/evaluator.h"
#include "ir/compiler.h"
#include "ir/interp.h"
#include "ir/ir.h"
#include "mediator/mediator.h"
#include "oem/parser.h"
#include "tsl/parser.h"

namespace {

void Fail(const tslrw::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Must(tslrw::Result<T> result) {
  if (!result.ok()) Fail(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace tslrw;

  SourceCatalog catalog;
  catalog.Put(Must(ParseOemDatabase(R"(
    database db {
      <a1 publication {
        <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
      }>
      <a2 publication {
        <t2 title "Wrappers"> <v2 venue "VLDB"> <y2 year "1997">
      }>
      <a3 publication {
        <t3 title "Mediators"> <v3 venue "SIGMOD"> <y3 year "1996">
      }>
    })")));

  // Two α-equivalent dump views (replicated mirrors) plus a venue index:
  // the rewriter produces several plans whose bodies share submatches,
  // which is exactly what the hoist + CSE passes feed on.
  auto view = [](const char* name, const std::string& text) {
    Capability cap;
    cap.view = Must(ParseTslQuery(text, name));
    return cap;
  };
  Mediator mediator = Must(Mediator::Make({SourceDescription{
      "db",
      {view("MirrorA",
            "<ma(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@db"),
       view("MirrorB",
            "<mb(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@db"),
       view("Venues",
            "<vi(P') entry {<V' venue W'>}> :- "
            "<P' publication {<V' venue W'>}>@db")}}}));

  TslQuery query = Must(ParseTslQuery(
      R"(<f(P,R) sigmod hit> :-
           <P publication {<U year "1997">}>@db AND
           <R publication {<V venue "SIGMOD">}>@db)",
      "Sigmod97"));
  std::printf("query: %s\n\n", query.ToString().c_str());

  MediatorPlanSet plans = Must(mediator.Plan(query));
  std::printf("%zu capability plan(s):\n", plans.size());
  std::vector<TslQuery> rewritings;
  for (const MediatorPlan& plan : plans) {
    std::printf("  %s\n", plan.ToString().c_str());
    rewritings.push_back(plan.rewriting);
  }

  // Per-pass ablation: compile the same plan set under each configuration
  // and report what the enabled passes changed. Answers are byte-identical
  // in every row — the sweep below checks that, not just claims it.
  struct Config {
    const char* name;
    IrPassOptions passes;
  };
  const Config configs[] = {
      {"none", {false, false, false}},
      {"hoist", {true, false, false}},
      {"hoist+cse", {true, true, false}},
      {"all", {true, true, true}},
  };
  for (const Config& config : configs) {
    PlanCompiler compiler(config.passes);
    auto program = Must(compiler.CompilePlans(rewritings));
    std::printf("\n=== passes: %s ===\n%s", config.name,
                PassStatsTable(*program).c_str());
  }

  // The fully optimized program, disassembled (what `plan <Q> ir` prints).
  PlanCompiler compiler{IrPassOptions{}};
  auto program = Must(compiler.CompilePlans(rewritings));
  std::printf("\n=== disassembly (all passes) ===\n%s",
              Disassemble(*program).c_str());

  // Byte-identity, two ways. First the original query, tree walker vs
  // interpreter, under every pass configuration:
  OemDatabase tree_answer = Must(Evaluate(query, catalog));
  bool all_identical = true;
  for (const Config& config : configs) {
    PlanCompiler per_config(config.passes);
    auto compiled = Must(per_config.Compile(query));
    OemDatabase ir_answer = Must(ExecuteIr(*compiled, catalog));
    all_identical = all_identical &&
                    ir_answer.ToString() == tree_answer.ToString() &&
                    ir_answer.name() == tree_answer.name();
  }
  // Then end to end: the cheapest capability plan executed through the
  // mediator with each backend.
  ExecutionPolicy tree_policy;
  OemDatabase plan_tree =
      Must(mediator.Execute(plans.front(), catalog, tree_policy, nullptr));
  ExecutionPolicy ir_policy;
  ir_policy.backend = ExecutionBackend::kIR;
  OemDatabase plan_ir =
      Must(mediator.Execute(plans.front(), catalog, ir_policy, nullptr));
  all_identical =
      all_identical && plan_ir.ToString() == plan_tree.ToString() &&
      plan_ir.name() == plan_tree.name();

  std::printf("\ntree vs IR byte-identical: %s\n%s",
              all_identical ? "yes" : "NO (bug!)",
              tree_answer.ToString().c_str());
  return all_identical ? 0 : 1;
}
