// A closed-loop load driver for the serving layer: N client threads fire
// queries (a repeated-query mix with α-renamed spellings and per-request
// seeds) at a QueryServer over a synthetic catalog, optionally through
// faulty wrappers, then print the serving-layer counters. This is the
// "stream of client queries" deployment of \S1 Fig. 2 as a runnable
// program:
//
//   tslrw_serve [clients N] [threads N] [requests N] [queue N] [par N]
//               [faults]
//
// Exit code 0 means every admitted request completed; admission-control
// rejections are expected under overload and reported, not fatal.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "obs/metrics.h"
#include "oem/generator.h"
#include "service/server.h"
#include "tsl/parser.h"

namespace {

void Fail(const tslrw::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Must(tslrw::Result<T> result) {
  if (!result.ok()) Fail(result.status());
  return std::move(result).value();
}

tslrw::TslQuery MustParse(const std::string& text, std::string name) {
  return Must(tslrw::ParseTslQuery(text, std::move(name)));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tslrw;

  size_t clients = 4;
  size_t threads = 4;
  size_t requests = 200;  // per client
  size_t queue = 256;
  size_t par = 0;  // rewrite parallelism; 0 = hardware concurrency
  bool faults = false;
  for (int i = 1; i < argc; ++i) {
    auto number = [&](const char* flag) -> size_t {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    };
    if (std::strcmp(argv[i], "clients") == 0) {
      clients = number("clients");
    } else if (std::strcmp(argv[i], "threads") == 0) {
      threads = number("threads");
    } else if (std::strcmp(argv[i], "requests") == 0) {
      requests = number("requests");
    } else if (std::strcmp(argv[i], "queue") == 0) {
      queue = number("queue");
    } else if (std::strcmp(argv[i], "par") == 0) {
      par = number("par");
    } else if (std::strcmp(argv[i], "faults") == 0) {
      faults = true;
    } else {
      std::fprintf(stderr,
                   "usage: tslrw_serve [clients N] [threads N] "
                   "[requests N] [queue N] [par N] [faults]\n");
      return 2;
    }
  }

  // Two sources with dump capabilities over generated record data.
  std::vector<SourceDescription> sources;
  SourceCatalog catalog;
  for (int s = 0; s < 2; ++s) {
    const std::string name = StrCat("s", s);
    Capability cap;
    cap.view = MustParse(
        StrCat("<d", s, "(P') rec {<X' Y' Z'>}> :- <P' rec {<X' Y' Z'>}>@",
               name),
        StrCat("Dump", s));
    sources.push_back(SourceDescription{name, {cap}});
    GeneratorOptions data;
    data.seed = 100 + static_cast<uint64_t>(s);
    data.num_roots = 64;
    data.max_depth = 2;
    data.root_label = "rec";
    catalog.Put(GenerateOemDatabase(name, data));
  }
  Mediator mediator = Must(Mediator::Make(std::move(sources)));

  ServerOptions options;
  options.threads = threads;
  options.queue_capacity = queue;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ticks = 1;
  options.rewrite_parallelism = par;
  MetricRegistry metrics;  // outlives the server (workers write into it)
  options.metrics = &metrics;
  WrapperFactory factory = nullptr;
  if (faults) {
    // s0 drops its first call of every request, then recovers: retries
    // win, answers stay complete, and the execution path under stress is
    // exercised end to end.
    std::map<std::string, FaultSchedule> schedules;
    FaultSchedule blip;
    blip.scripted = {Fault::Unavailable()};
    schedules["s0"] = blip;
    factory = MakeFaultInjectingWrapperFactory(std::move(schedules));
  }
  QueryServer server(std::move(mediator), std::move(catalog), options,
                     std::move(factory));

  // The workload: a small repeated-query mix, two of them α-equivalent
  // renamings of each other (they share one plan-cache entry).
  std::vector<TslQuery> mix = {
      MustParse("<f(P) out yes> :- <P rec {<X l0 v0>}>@s0", "Q0"),
      MustParse("<f(Q) out yes> :- <Q rec {<Y l0 v0>}>@s0", "Q0renamed"),
      MustParse("<f(P) out yes> :- <P rec {<X l1 v1>}>@s1", "Q1"),
      MustParse(
          "<f(P) pair yes> :- <P rec {<X l0 v0>}>@s0 AND "
          "<P rec {<Y l1 Z>}>@s0",
          "Q2"),
  };

  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> rejected_count{0};
  std::atomic<uint64_t> failed_count{0};
  std::atomic<uint64_t> hit_count{0};
  // Rewrite-search work actually paid by cold plan-cache misses, summed
  // over all requests that computed a plan list themselves.
  std::atomic<uint64_t> cold_candidates{0};
  std::atomic<uint64_t> cold_chase_hits{0};
  std::atomic<uint64_t> cold_equiv_hits{0};
  std::atomic<uint64_t> cold_verify_us{0};
  std::vector<std::thread> workers;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (size_t r = 0; r < requests; ++r) {
        const TslQuery& query = mix[(c + r) % mix.size()];
        ServeOptions serve;
        serve.seed = c * 1000 + r;
        auto submitted = server.Submit(query, serve);
        if (!submitted.ok()) {
          // Admission control: back off and move on (a real client would
          // retry after the hinted delay).
          rejected_count.fetch_add(1);
          std::this_thread::yield();
          continue;
        }
        auto response = std::move(submitted).value().get();
        if (!response.ok()) {
          failed_count.fetch_add(1);
          continue;
        }
        ok_count.fetch_add(1);
        if (response->plan_cache_hit) {
          hit_count.fetch_add(1);
        } else {
          cold_candidates.fetch_add(response->plan_search.candidates_generated);
          cold_chase_hits.fetch_add(response->plan_search.chase_cache_hits);
          cold_equiv_hits.fetch_add(response->plan_search.equiv_cache_hits);
          cold_verify_us.fetch_add(response->plan_search.verify_wall_ticks);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  // The /statsz-style dump: serving-layer counters followed by every
  // metric the requests recorded (pool admission, plan cache, mediator
  // retries, rewrite-phase histograms).
  std::printf("--- /statsz ---\n%s--- end /statsz ---\n",
              server.Statsz().c_str());
  std::printf(
      "clients: %zu x %zu requests; %llu ok (%llu plan-cache hits), "
      "%llu rejected, %llu failed\n",
      clients, requests, static_cast<unsigned long long>(ok_count.load()),
      static_cast<unsigned long long>(hit_count.load()),
      static_cast<unsigned long long>(rejected_count.load()),
      static_cast<unsigned long long>(failed_count.load()));
  std::printf(
      "cold plan searches: %llu candidate(s), %llu chase / %llu equiv "
      "cache hit(s), %lluus verifying\n",
      static_cast<unsigned long long>(cold_candidates.load()),
      static_cast<unsigned long long>(cold_chase_hits.load()),
      static_cast<unsigned long long>(cold_equiv_hits.load()),
      static_cast<unsigned long long>(cold_verify_us.load()));
  if (failed_count.load() != 0) return 1;
  return 0;
}
