// A closed-loop load driver for the sharded cluster front-end: N client
// threads fire a mixed workload (distinct-fingerprint queries spread over
// the ring, plus α-renamed spellings that must land on the same shard and
// share its plan-cache entry) at a ShardRouter, optionally through faulty
// wrappers. Midway the driver partitions one shard, verifies its keys
// re-route to the ring successor with byte-identical answers, rejoins it,
// and prints the cluster /statsz.
//
//   tslrw_cluster [shards N] [clients N] [threads N] [requests N]
//                 [queue N] [faults]
//
// Exit code 0 means every admitted request completed and the partition
// answers matched the pre-partition bytes; admission-control rejections
// are expected under overload and reported, not fatal.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/string_util.h"
#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "obs/metrics.h"
#include "oem/generator.h"
#include "service/plan_cache.h"
#include "service/server.h"
#include "tsl/parser.h"

namespace {

void Fail(const tslrw::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Must(tslrw::Result<T> result) {
  if (!result.ok()) Fail(result.status());
  return std::move(result).value();
}

tslrw::TslQuery MustParse(const std::string& text, std::string name) {
  return Must(tslrw::ParseTslQuery(text, std::move(name)));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tslrw;

  size_t shards = 4;
  size_t clients = 4;
  size_t threads = 2;  // per shard
  size_t requests = 50;  // per client
  size_t queue = 256;
  bool faults = false;
  for (int i = 1; i < argc; ++i) {
    auto number = [&](const char* flag) -> size_t {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    };
    if (std::strcmp(argv[i], "shards") == 0) {
      shards = number("shards");
    } else if (std::strcmp(argv[i], "clients") == 0) {
      clients = number("clients");
    } else if (std::strcmp(argv[i], "threads") == 0) {
      threads = number("threads");
    } else if (std::strcmp(argv[i], "requests") == 0) {
      requests = number("requests");
    } else if (std::strcmp(argv[i], "queue") == 0) {
      queue = number("queue");
    } else if (std::strcmp(argv[i], "faults") == 0) {
      faults = true;
    } else {
      std::fprintf(stderr,
                   "usage: tslrw_cluster [shards N] [clients N] [threads N] "
                   "[requests N] [queue N] [faults]\n");
      return 2;
    }
  }
  if (shards == 0) {
    std::fprintf(stderr, "shards must be at least 1\n");
    return 2;
  }

  // One source with per-label capabilities over generated record data.
  constexpr int kLabels = 4;
  std::vector<Capability> caps;
  for (int l = 0; l < kLabels; ++l) {
    Capability cap;
    cap.view = MustParse(
        StrCat("<v", l, "(P') o", l, " {<w", l, "(X') m U'>}> :- ",
               "<P' rec {<X' l", l, " U'>}>@db"),
        StrCat("V", l));
    caps.push_back(std::move(cap));
  }
  GeneratorOptions data;
  data.seed = 11;
  data.num_roots = 16;
  data.max_depth = 2;
  data.num_labels = kLabels;
  data.root_label = "rec";
  SourceCatalog catalog;
  catalog.Put(GenerateOemDatabase("db", data));
  Mediator mediator = Must(Mediator::Make({SourceDescription{"db", caps}}));

  ClusterOptions options;
  options.shards = shards;
  options.server.threads = threads;
  options.server.queue_capacity = queue;
  options.server.retry.max_attempts = 3;
  options.server.retry.initial_backoff_ticks = 1;
  MetricRegistry metrics;  // outlives the router (workers write into it)
  options.server.metrics = &metrics;
  WrapperFactory factory = nullptr;
  if (faults) {
    // The source drops its first call of every request, then recovers:
    // retries win on every shard, answers stay complete.
    std::map<std::string, FaultSchedule> schedules;
    FaultSchedule blip;
    blip.scripted = {Fault::Unavailable()};
    schedules["db"] = blip;
    factory = MakeFaultInjectingWrapperFactory(std::move(schedules));
  }
  ShardRouter router(std::move(mediator), std::move(catalog), options,
                     std::move(factory));

  // The mixed workload: 12 distinct-fingerprint queries (the head functor
  // is part of the canonical form, so the ring spreads them), plus an
  // α-renamed spelling of the first — same fingerprint, same shard, same
  // plan-cache entry.
  std::vector<TslQuery> mix;
  for (int q = 0; q < 12; ++q) {
    mix.push_back(MustParse(
        StrCat("<q", q, "(P) out yes> :- <P rec {<X l", q % kLabels,
               " U>}>@db"),
        StrCat("Q", q)));
  }
  mix.push_back(MustParse("<q0(R) out yes> :- <R rec {<Y l0 W>}>@db",
                          "Q0renamed"));

  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> rejected_count{0};
  std::atomic<uint64_t> failed_count{0};
  std::atomic<uint64_t> hit_count{0};
  std::vector<std::thread> workers;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (size_t r = 0; r < requests; ++r) {
        const TslQuery& query = mix[(c + r) % mix.size()];
        ServeOptions serve;
        serve.seed = c * 1000 + r;
        auto submitted = router.Submit(query, serve);
        if (!submitted.ok()) {
          // Admission control on the owning shard: the rejection carries
          // that shard's retry-after hint; back off and move on.
          rejected_count.fetch_add(1);
          std::this_thread::yield();
          continue;
        }
        auto response = std::move(submitted).value().get();
        if (!response.ok()) {
          failed_count.fetch_add(1);
          continue;
        }
        ok_count.fetch_add(1);
        if (response->plan_cache_hit) hit_count.fetch_add(1);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  // Partition drill: take the first query's home shard down, re-ask, and
  // demand the ring-successor answer match the pre-partition bytes (every
  // shard holds an identical snapshot, so failover cannot change answers).
  bool partition_ok = true;
  if (shards > 1) {
    const uint64_t fp = MakePlanCacheKey(mix[0]).fingerprint;
    const size_t home = router.HomeOf(fp);
    ServeOptions serve;
    serve.seed = 7;
    const std::string before =
        Must(router.Answer(mix[0], serve)).answer.result.ToString();
    router.SetShardDown(home, true);
    const size_t successor = router.RouteOf(fp);
    const std::string during =
        Must(router.Answer(mix[0], serve)).answer.result.ToString();
    router.SetShardDown(home, false);
    const std::string after =
        Must(router.Answer(mix[0], serve)).answer.result.ToString();
    partition_ok = during == before && after == before;
    std::printf(
        "partition drill: shard %zu down, key re-routed to shard %zu; "
        "answers %s\n",
        home, successor,
        partition_ok ? "byte-identical across partition and rejoin"
                     : "DIVERGED");
  }

  std::printf("--- cluster /statsz ---\n%s--- end /statsz ---\n",
              router.Statsz().c_str());
  std::printf(
      "%zu shard(s); clients: %zu x %zu requests; %llu ok "
      "(%llu plan-cache hits), %llu rejected, %llu failed\n",
      shards, clients, requests,
      static_cast<unsigned long long>(ok_count.load()),
      static_cast<unsigned long long>(hit_count.load()),
      static_cast<unsigned long long>(rejected_count.load()),
      static_cast<unsigned long long>(failed_count.load()));
  if (failed_count.load() != 0 || !partition_ok) return 1;
  return 0;
}
