// Maximally contained rewritings (\S7 future work, "in the spirit of
// [10, 9]"): when the available views cannot express a query exactly, the
// mediator can still return every answer the views *do* carry — sound,
// maximal, and annotated with whether it happens to be complete.
//
// Scenario: a people directory reachable only through two regional
// sources' export views. A query over the whole directory has no
// equivalent rewriting, but the union of the per-region contained
// rewritings recovers everything the regions publish.

#include <cstdio>
#include <cstdlib>

#include "eval/evaluator.h"
#include "oem/parser.h"
#include "rewrite/contained.h"
#include "tsl/parser.h"

namespace {

void Fail(const tslrw::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Must(tslrw::Result<T> result) {
  if (!result.ok()) Fail(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace tslrw;

  SourceCatalog catalog;
  catalog.Put(Must(ParseOemDatabase(R"(
    database directory {
      <p1 person { <n1 name ann> <r1 region west> }>
      <p2 person { <n2 name bob> <r2 region east> }>
      <p3 person { <n3 name cem> <r3 region north> }>
    })")));

  // Each region exports only its own people (with names).
  TslQuery west = Must(ParseTslQuery(
      R"(<vw(P') person {<ww(X') name Z'>}> :-
           <P' person {<R' region west>}>@directory AND
           <P' person {<X' name Z'>}>@directory)",
      "WestExport"));
  TslQuery east = Must(ParseTslQuery(
      R"(<ve(P') person {<we(X') name Z'>}> :-
           <P' person {<R' region east>}>@directory AND
           <P' person {<X' name Z'>}>@directory)",
      "EastExport"));

  TslQuery query = Must(ParseTslQuery(
      R"(<f(P) name-of Z> :- <P person {<X name Z>}>@directory)", "AllNames"));
  std::printf("query: %s\nviews: WestExport, EastExport (no north export!)\n\n",
              query.ToString().c_str());

  RewriteOptions options;
  options.require_total = true;  // the directory itself is unreachable
  ContainedRewritingResult result =
      Must(FindMaximallyContainedRewriting(query, {west, east}, options));

  std::printf("maximally contained rewriting (%zu rules, %s):\n",
              result.rewriting.rules.size(),
              result.equivalent ? "EQUIVALENT" : "strictly contained");
  for (const TslQuery& rule : result.rewriting.rules) {
    std::printf("  %s\n", rule.ToString().c_str());
  }

  // Execute: materialize the exports, evaluate the union.
  SourceCatalog exports;
  exports.Put(Must(MaterializeView(west, catalog)));
  exports.Put(Must(MaterializeView(east, catalog)));
  OemDatabase partial = Must(EvaluateRuleSet(result.rewriting, exports,
                                             EvalOptions{.answer_name = "a"}));
  OemDatabase full =
      Must(Evaluate(query, catalog, EvalOptions{.answer_name = "a"}));
  std::printf("\nanswers via the exports (%zu roots) vs. direct (%zu roots):\n",
              partial.roots().size(), full.roots().size());
  std::printf("%s", partial.ToString().c_str());
  std::printf("\nann and bob are recovered; cem (north) is invisible through\n"
              "the available views — the contained rewriting is sound and\n"
              "maximal but, as reported, not equivalent.\n");
  return result.equivalent ? 1 : 0;  // equivalence here would be a bug
}
