// The differential maintenance drill runner behind the CI maintenance
// job: replays seeded catalog-mutation + query scripts twice per seed —
// once under selective, dependency-tracked plan-cache invalidation and
// once under the full-flush baseline — and fails unless every request's
// answer, completeness, execution report, served plan list, and
// normalized trace were byte-identical between the two arms
// (docs/SERVING.md "Incremental maintenance").
//
//   tslrw_maint_drill [seeds a,b,c] [steps N] [requests N] [threads N]
//               [shards N] [report]
//
// `threads N` (N > 1) issues each step's request burst concurrently;
// `shards N` (N > 1) drills a ShardRouter cluster, which must replicate
// the same catalog delta to every shard. `report` prints the selective
// arm's per-step maintenance log.
//
// Exit code 0 = every (seed, config) byte-identical across the arms.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "testing/maint_differential.h"

int main(int argc, char** argv) {
  using namespace tslrw;

  std::vector<uint64_t> seeds = {1, 7, 23};
  size_t steps = 10;
  size_t requests = 6;
  size_t threads = 1;
  size_t shards = 1;
  bool print_report = false;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "seeds") == 0) {
      seeds.clear();
      const char* list = value("seeds");
      for (const char* p = list; *p != '\0';) {
        char* end = nullptr;
        seeds.push_back(std::strtoull(p, &end, 10));
        p = (*end == ',') ? end + 1 : end;
      }
    } else if (std::strcmp(argv[i], "steps") == 0) {
      steps = std::strtoull(value("steps"), nullptr, 10);
    } else if (std::strcmp(argv[i], "requests") == 0) {
      requests = std::strtoull(value("requests"), nullptr, 10);
    } else if (std::strcmp(argv[i], "threads") == 0) {
      threads = std::strtoull(value("threads"), nullptr, 10);
    } else if (std::strcmp(argv[i], "shards") == 0) {
      shards = std::strtoull(value("shards"), nullptr, 10);
    } else if (std::strcmp(argv[i], "report") == 0) {
      print_report = true;
    } else {
      std::fprintf(stderr,
                   "usage: tslrw_maint_drill [seeds a,b,c] [steps N] "
                   "[requests N] [threads N] [shards N] [report]\n");
      return 2;
    }
  }
  if (seeds.empty()) {
    std::fprintf(stderr, "no seeds given\n");
    return 2;
  }

  bool ok = true;
  size_t examined = 0;
  size_t invalidated = 0;
  size_t retained = 0;
  for (uint64_t seed : seeds) {
    MaintDrillOptions options;
    options.seed = seed;
    options.steps = steps;
    options.requests_per_step = requests;
    options.parallelism = threads;
    options.shards = shards;
    Result<MaintDrillResult> drilled = RunMaintDifferentialDrill(options);
    if (!drilled.ok()) {
      std::fprintf(stderr, "seed %llu: drill error: %s\n",
                   static_cast<unsigned long long>(seed),
                   drilled.status().ToString().c_str());
      ok = false;
      continue;
    }
    const MaintDrillResult& result = *drilled;
    examined += result.entries_examined;
    invalidated += result.entries_invalidated;
    retained += result.entries_retained;
    std::printf(
        "seed %llu: %s; selective examined %zu / invalidated %zu / "
        "retained %zu; cache hits %llu (selective) vs %llu (full flush)\n",
        static_cast<unsigned long long>(seed),
        result.identical ? "byte-identical" : "DIVERGED",
        result.entries_examined, result.entries_invalidated,
        result.entries_retained,
        static_cast<unsigned long long>(result.selective_hits),
        static_cast<unsigned long long>(result.flush_hits));
    if (print_report) std::fputs(result.report.c_str(), stdout);
    for (const std::string& divergence : result.divergences) {
      std::fprintf(stderr, "seed %llu: %s\n",
                   static_cast<unsigned long long>(seed),
                   divergence.c_str());
    }
    ok = ok && result.identical;
  }
  std::printf(
      "maint: %zu seed(s), %zu thread(s), %zu shard(s): %s "
      "(%zu examined, %zu invalidated, %zu retained)\n",
      seeds.size(), threads, shards,
      ok ? "selective == full flush" : "FAILED", examined, invalidated,
      retained);
  return ok ? 0 : 1;
}
