// The chaos-drill runner behind the CI resilience job: replays the
// standard seeded fault script (endpoint flap, latency storm, flaky
// network, index corruption, snapshot swap race, pool saturation)
// against a live QueryServer over a replicated bibliographic fixture,
// runs every drill TWICE, and fails unless
//
//   - the two runs' reports and traces are byte-identical (determinism),
//   - every drilled answer was sound (roots ⊆ the fault-free baseline,
//     complete answers byte-identical to it), and
//   - the server recovered: breakers re-closed, answers back to the
//     baseline, plan cache retained.
//
//   tslrw_chaos [seeds a,b,c] [requests N] [deadline N] [threads N]
//               [queue N] [shards N] [traces]
//
// `shards N` (N > 1) drills a ShardRouter cluster instead: the standard
// script swaps pool saturation for a shard partition/rejoin phase.
//
// Exit code 0 = every seed deterministic, sound, and recovered.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mediator/mediator.h"
#include "oem/parser.h"
#include "testing/chaos.h"
#include "tsl/parser.h"

namespace {

void Fail(const tslrw::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Must(tslrw::Result<T> result) {
  if (!result.ok()) Fail(result.status());
  return std::move(result).value();
}

tslrw::TslQuery MustParse(const std::string& text, std::string name) {
  return Must(tslrw::ParseTslQuery(text, std::move(name)));
}

/// A replicated source `lib` (two α-equivalent mirror endpoints — the
/// drill's flap and storm targets, so failover and hedging have somewhere
/// to go) plus a single-endpoint source `s2`.
std::vector<tslrw::SourceDescription> DrillSources() {
  tslrw::Capability a;
  a.view = MustParse(
      "<m(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@lib",
      "MirrorA");
  tslrw::Capability b;
  b.view = MustParse(
      "<m(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@lib",
      "MirrorB");
  tslrw::Capability dump;
  dump.view = MustParse(
      "<dump(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@s2",
      "Dump2");
  return {tslrw::SourceDescription{"lib", {a}},
          tslrw::SourceDescription{"lib", {b}},
          tslrw::SourceDescription{"s2", {dump}}};
}

tslrw::SourceCatalog DrillCatalog() {
  tslrw::SourceCatalog catalog;
  catalog.Put(Must(tslrw::ParseOemDatabase(R"(
    database lib {
      <a1 publication {
        <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
      }>
      <a2 publication {
        <t2 title "Wrappers"> <v2 venue "VLDB"> <y2 year "1996">
      }>
      <a3 publication {
        <t3 title "Mediators"> <v3 venue "SIGMOD"> <y3 year "1993">
      }>
    })")));
  catalog.Put(Must(tslrw::ParseOemDatabase(R"(
    database s2 {
      <b1 publication {
        <u1 title "Warehouses"> <w1 venue "SIGMOD"> <x1 year "1996">
      }>
    })")));
  return catalog;
}

std::vector<tslrw::TslQuery> DrillQueries() {
  return {
      MustParse("<f(P) sigmod yes> :- "
                "<P publication {<V venue \"SIGMOD\">}>@lib",
                "Sigmod"),
      MustParse("<f(P) year97 yes> :- "
                "<P publication {<Y year \"1997\">}>@lib",
                "Year97"),
      MustParse("<f(P) all2 yes> :- <P publication {<X Y Z>}>@s2", "All2"),
  };
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tslrw;

  std::vector<uint64_t> seeds = {1, 7, 23};
  size_t requests = 6;
  uint64_t deadline = 256;
  size_t threads = 4;
  size_t queue = 8;
  size_t shards = 1;
  bool print_traces = false;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "seeds") == 0) {
      seeds.clear();
      const char* list = value("seeds");
      for (const char* p = list; *p != '\0';) {
        char* end = nullptr;
        seeds.push_back(std::strtoull(p, &end, 10));
        p = (*end == ',') ? end + 1 : end;
      }
    } else if (std::strcmp(argv[i], "requests") == 0) {
      requests = std::strtoull(value("requests"), nullptr, 10);
    } else if (std::strcmp(argv[i], "deadline") == 0) {
      deadline = std::strtoull(value("deadline"), nullptr, 10);
    } else if (std::strcmp(argv[i], "threads") == 0) {
      threads = std::strtoull(value("threads"), nullptr, 10);
    } else if (std::strcmp(argv[i], "queue") == 0) {
      queue = std::strtoull(value("queue"), nullptr, 10);
    } else if (std::strcmp(argv[i], "shards") == 0) {
      shards = std::strtoull(value("shards"), nullptr, 10);
    } else if (std::strcmp(argv[i], "traces") == 0) {
      print_traces = true;
    } else {
      std::fprintf(stderr,
                   "usage: tslrw_chaos [seeds a,b,c] [requests N] "
                   "[deadline N] [threads N] [queue N] [shards N] "
                   "[traces]\n");
      return 2;
    }
  }
  if (seeds.empty()) {
    std::fprintf(stderr, "no seeds given\n");
    return 2;
  }

  const std::vector<SourceDescription> sources = DrillSources();
  const SourceCatalog catalog = DrillCatalog();
  const std::vector<TslQuery> queries = DrillQueries();

  bool ok = true;
  for (uint64_t seed : seeds) {
    ChaosOptions options;
    options.seed = seed;
    options.requests_per_phase = requests;
    options.request_deadline_ticks = deadline;
    options.server.threads = threads;
    options.server.queue_capacity = queue;
    options.cluster_shards = shards;
    const std::vector<ChaosPhase> script =
        StandardChaosScript(sources, options);

    ChaosDrillResult first =
        Must(RunChaosDrill(sources, catalog, queries, script, options));
    ChaosDrillResult second =
        Must(RunChaosDrill(sources, catalog, queries, script, options));

    std::fputs(first.report.c_str(), stdout);
    if (print_traces) std::fputs(first.traces.c_str(), stdout);
    if (first.report != second.report || first.traces != second.traces) {
      std::fprintf(stderr,
                   "seed %llu: two runs of the same drill diverged — the "
                   "report/traces are not deterministic\n",
                   static_cast<unsigned long long>(seed));
      ok = false;
    }
    for (const std::string& violation : first.violations) {
      std::fprintf(stderr, "seed %llu: %s\n",
                   static_cast<unsigned long long>(seed), violation.c_str());
    }
    ok = ok && first.sound && first.recovered;
    std::printf("\n");
  }
  std::printf("chaos: %zu seed(s) drilled twice each: %s\n", seeds.size(),
              ok ? "deterministic, sound, recovered" : "FAILED");
  return ok ? 0 : 1;
}
