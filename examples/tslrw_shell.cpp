// An interactive shell over the whole library: define sources, views, and
// queries; evaluate, rewrite, minimize, and compare them. Works
// interactively, piped, or on a script file:
//
//   ./build/examples/tslrw_shell               # interactive
//   echo 'help' | ./build/examples/tslrw_shell # piped
//   ./build/examples/tslrw_shell session.tsl   # script (same as `load`)
//
// Statements are one per line; a trailing `\` continues a statement on the
// next line. See `help` for the command set.

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "repl/repl.h"

int main(int argc, char** argv) {
  tslrw::ReplSession session;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::fputs(session.ExecuteScript(buffer.str()).c_str(), stdout);
    return 0;
  }
  bool interactive = isatty(0);
  std::string line;
  if (interactive) std::printf("tslrw shell — `help` for commands\n");
  while (!session.done()) {
    if (interactive) {
      std::printf("tslrw> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    std::fputs(session.Execute(line).c_str(), stdout);
  }
  return 0;
}
