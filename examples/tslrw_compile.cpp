// Command-line front end for the whole-catalog compiler: reads a TSL view
// catalog from files (or stdin when no file is given), runs CompileCatalog
// over it — offline chase, structural signatures, subsumption lattice,
// TSL2xx cross-view diagnostics — and prints the findings with caret
// snippets pointing into the input.
//
//   ./build/examples/tslrw_compile catalog.tsl
//   ./build/examples/tslrw_compile --strict --dtd schema.dtd catalog.tsl
//   ./build/examples/tslrw_compile -o catalog.tslrwix catalog.tsl
//   ./build/examples/tslrw_compile --load catalog.tslrwix
//
// Each input file is one catalog: every rule is a capability view, grouped
// into sources by its body source. Lines of the form
//
//   %bind <ViewName> <Var> [<Var> ...]
//
// declare a binding pattern for a view (the `%` prefix makes them comments
// to the TSL parser, so one file carries both). `--dtd FILE` chases under
// the DTD's constraints, `-o FILE` writes the compiled index in the
// TSLRWIX1 format (docs/CATALOG.md), `--load FILE` inspects an existing
// index instead of compiling, and `--lattice` prints the subsumption edges.
//
// Exit status: 0 on success, 1 when --strict was given and some catalog
// produced an error-level diagnostic (the CI gate), 2 on I/O, parse, or
// compile failures. Without --strict, error-level findings are printed but
// report-only. docs/DIAGNOSTICS.md catalogues every code.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "catalog/compiler.h"
#include "catalog/index_file.h"
#include "constraints/dtd.h"
#include "constraints/inference.h"
#include "tsl/parser.h"

namespace {

struct Input {
  std::string name;
  std::string text;
};

struct Args {
  bool strict = false;
  bool lattice = false;
  std::string dtd_path;
  std::string out_path;
  std::string load_path;
  std::vector<std::string> files;
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Collects `%bind <View> <Var...>` directives from \p text.
std::map<std::string, std::set<std::string>> ParseBindDirectives(
    const std::string& text) {
  std::map<std::string, std::set<std::string>> binds;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream words(line);
    std::string word;
    if (!(words >> word) || word != "%bind") continue;
    std::string view;
    if (!(words >> view)) continue;
    std::set<std::string>& vars = binds[view];
    while (words >> word) vars.insert(word);
  }
  return binds;
}

void PrintLattice(const tslrw::CompiledCatalog& catalog,
                  const std::string& name) {
  for (const tslrw::CatalogLatticeEdge& edge : catalog.lattice()) {
    const std::string& sub = catalog.entries()[edge.subsumed].name;
    const std::string& sup = catalog.entries()[edge.subsuming].name;
    std::printf("%s: lattice: %s %s %s\n", name.c_str(), sub.c_str(),
                edge.equivalent ? "==" : "<=", sup.c_str());
  }
  if (catalog.lattice_truncated()) {
    std::printf("%s: lattice: (truncated by containment budget)\n",
                name.c_str());
  }
}

/// Renders a compiled catalog's report; returns 1 if it holds error-level
/// diagnostics, else 0.
int Report(const tslrw::CompiledCatalog& catalog, const Input& input,
           bool lattice) {
  for (const tslrw::Diagnostic& d : catalog.diagnostics()) {
    std::fputs(input.name.c_str(), stdout);
    std::fputs(":", stdout);
    std::fputs(tslrw::RenderDiagnostic(d, input.text).c_str(), stdout);
  }
  if (lattice) PrintLattice(catalog, input.name);
  std::printf("%s: %s\n", input.name.c_str(), catalog.Summary().c_str());
  return catalog.error_count() > 0 ? 1 : 0;
}

/// Compiles one catalog file end to end; \p errors accumulates whether any
/// error-level diagnostic was seen. Returns 0/2 (I/O or compile failure).
int CompileOne(const Input& input,
               const tslrw::StructuralConstraints* constraints,
               const Args& args, int* errors) {
  tslrw::Result<std::vector<tslrw::TslQuery>> views =
      tslrw::ParseTslProgram(input.text);
  if (!views.ok()) {
    std::fprintf(stderr, "%s: parse error: %s\n", input.name.c_str(),
                 std::string(views.status().message()).c_str());
    return 2;
  }
  std::vector<tslrw::SourceDescription> sources =
      tslrw::DescribeViews(*views);
  const std::map<std::string, std::set<std::string>> binds =
      ParseBindDirectives(input.text);
  for (tslrw::SourceDescription& source : sources) {
    for (tslrw::Capability& capability : source.capabilities) {
      auto bind = binds.find(capability.view.name);
      if (bind != binds.end()) capability.bound_variables = bind->second;
    }
  }
  tslrw::Result<std::shared_ptr<const tslrw::CompiledCatalog>> compiled =
      tslrw::CompileCatalog(sources, constraints);
  if (!compiled.ok()) {
    std::fprintf(stderr, "%s: compile error: %s\n", input.name.c_str(),
                 std::string(compiled.status().message()).c_str());
    return 2;
  }
  *errors |= Report(**compiled, input, args.lattice);
  if (!args.out_path.empty()) {
    tslrw::Status saved =
        tslrw::SaveCatalogIndex(**compiled, args.out_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s: cannot write %s: %s\n", input.name.c_str(),
                   args.out_path.c_str(),
                   std::string(saved.message()).c_str());
      return 2;
    }
    std::printf("%s: wrote index %s (fingerprint %llu)\n",
                input.name.c_str(), args.out_path.c_str(),
                static_cast<unsigned long long>(
                    (*compiled)->catalog_fingerprint()));
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: tslrw_compile [--strict] [--lattice] [--dtd FILE]\n"
      "                     [-o INDEX] [catalog.tsl ...]\n"
      "       tslrw_compile --load INDEX [--lattice]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--strict") {
      args.strict = true;
    } else if (arg == "--lattice") {
      args.lattice = true;
    } else if (arg == "--dtd" && i + 1 < argc) {
      args.dtd_path = argv[++i];
    } else if (arg == "-o" && i + 1 < argc) {
      args.out_path = argv[++i];
    } else if (arg == "--load" && i + 1 < argc) {
      args.load_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      args.files.push_back(arg);
    }
  }
  if (!args.load_path.empty()) {
    // Inspect mode: print an existing index's report without recompiling.
    if (!args.files.empty() || !args.out_path.empty() ||
        !args.dtd_path.empty()) {
      return Usage();
    }
    tslrw::Result<std::shared_ptr<const tslrw::CompiledCatalog>> loaded =
        tslrw::LoadCatalogIndex(args.load_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s: %s\n", args.load_path.c_str(),
                   std::string(loaded.status().message()).c_str());
      return 2;
    }
    Input input{args.load_path, ""};
    int errors = 0;
    errors |= Report(**loaded, input, args.lattice);
    return args.strict ? errors : 0;
  }
  if (!args.out_path.empty() && args.files.size() > 1) {
    std::fprintf(stderr, "-o expects exactly one catalog file\n");
    return Usage();
  }

  tslrw::StructuralConstraints constraints;
  const tslrw::StructuralConstraints* constraints_ptr = nullptr;
  if (!args.dtd_path.empty()) {
    std::string dtd_text;
    if (!ReadFile(args.dtd_path, &dtd_text)) {
      std::fprintf(stderr, "cannot open %s\n", args.dtd_path.c_str());
      return 2;
    }
    tslrw::Result<tslrw::Dtd> dtd = tslrw::Dtd::Parse(dtd_text);
    if (!dtd.ok()) {
      std::fprintf(stderr, "%s: %s\n", args.dtd_path.c_str(),
                   std::string(dtd.status().message()).c_str());
      return 2;
    }
    constraints = tslrw::StructuralConstraints(std::move(dtd).value());
    constraints_ptr = &constraints;
  }

  std::vector<Input> inputs;
  if (!args.files.empty()) {
    for (const std::string& file : args.files) {
      Input input{file, ""};
      if (!ReadFile(file, &input.text)) {
        std::fprintf(stderr, "cannot open %s\n", file.c_str());
        return 2;
      }
      inputs.push_back(std::move(input));
    }
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    inputs.push_back({"<stdin>", buffer.str()});
  }

  int errors = 0;
  for (const Input& input : inputs) {
    int hard = CompileOne(input, constraints_ptr, args, &errors);
    if (hard != 0) return hard;
  }
  return args.strict ? errors : 0;
}
