// Command-line front end for the static analyzer: reads TSL programs from
// files (or stdin when no file is given), runs every analyzer pass, and
// prints the diagnostics with caret snippets pointing into the input.
//
//   ./build/examples/tslrw_analyze rules.tsl more_rules.tsl
//   echo '<f(P) out W> :- <P p V>@db' | ./build/examples/tslrw_analyze
//
// The exit status is 1 when any file produced an error-level diagnostic
// (TSL000-TSL006), so the binary slots into CI pipelines and editor hooks;
// warnings and notes do not affect the exit status. docs/DIAGNOSTICS.md
// catalogues every code.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"

namespace {

struct Input {
  std::string name;
  std::string text;
};

int AnalyzeOne(const tslrw::Analyzer& analyzer, const Input& input) {
  tslrw::AnalysisReport report = analyzer.AnalyzeProgramText(input.text);
  if (report.diagnostics.empty()) {
    std::printf("%s: no diagnostics\n", input.name.c_str());
    return 0;
  }
  for (const tslrw::Diagnostic& d : report.diagnostics) {
    std::fputs(input.name.c_str(), stdout);
    std::fputs(":", stdout);
    std::fputs(tslrw::RenderDiagnostic(d, input.text).c_str(), stdout);
  }
  std::printf("%s: %zu error(s), %zu warning(s), %zu note(s)\n",
              input.name.c_str(),
              report.count(tslrw::Severity::kError),
              report.count(tslrw::Severity::kWarning),
              report.count(tslrw::Severity::kNote));
  return report.has_errors() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Input> inputs;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::ifstream in(argv[i]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      inputs.push_back({argv[i], buffer.str()});
    }
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    inputs.push_back({"<stdin>", buffer.str()});
  }
  tslrw::Analyzer analyzer;
  int exit_code = 0;
  for (const Input& input : inputs) {
    exit_code |= AnalyzeOne(analyzer, input);
  }
  return exit_code;
}
