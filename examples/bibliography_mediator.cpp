// The paper's running example (\S1, Figs. 1-2): a TSIMMIS-style mediator
// integrating bibliographic sources with different query capabilities.
//
// The user asks for all "SIGMOD 1997" publications. Source s1 only accepts
// year-filtered queries; source s2 only accepts venue=$V templates (a
// parameterized capability); source s3 exports a full dump. The
// capability-based rewriter decomposes the user query into source-specific
// queries that conform to each interface, the "wrappers" (materialization)
// run them, and the mediator consolidates the results.

#include <cstdio>
#include <cstdlib>

#include "mediator/mediator.h"
#include "oem/parser.h"
#include "tsl/parser.h"

namespace {

void Fail(const tslrw::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Must(tslrw::Result<T> result) {
  if (!result.ok()) Fail(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace tslrw;

  SourceCatalog catalog;
  catalog.Put(Must(ParseOemDatabase(R"(
    database s1 {
      <a1 publication { <t1 title "Views"> <v1 venue "SIGMOD">
                        <y1 year "1997"> }>
      <a2 publication { <t2 title "Constraints"> <v2 venue "VLDB">
                        <y2 year "1997"> }>
      <a3 publication { <t3 title "Mediators"> <v3 venue "SIGMOD">
                        <y3 year "1993"> }>
    })")));
  catalog.Put(Must(ParseOemDatabase(R"(
    database s2 {
      <b1 publication { <u1 title "Wrappers"> <w1 venue "SIGMOD">
                        <x1 year "1997"> }>
      <b2 publication { <u2 title "Warehouses"> <w2 venue "SIGMOD">
                        <x2 year "1996"> }>
    })")));
  catalog.Put(Must(ParseOemDatabase(R"(
    database s3 {
      <c1 publication { <r1 title "Dataguides"> <q1 venue "VLDB">
                        <z1 year "1997"> }>
    })")));

  // Capability descriptions (the "views" of \S1).
  Capability s1_by_year97;  // s1 only answers year=1997 queries
  s1_by_year97.view = Must(ParseTslQuery(
      R"(<y97(P') pub {<X' Y' Z'>}> :-
           <P' publication {<U' year "1997">}>@s1 AND
           <P' publication {<X' Y' Z'>}>@s1)",
      "S1Year97"));

  Capability s2_by_venue;  // s2 answers venue=$W templates
  s2_by_venue.view = Must(ParseTslQuery(
      R"(<bv(P',W') pub {<X' Y' Z'>}> :-
           <P' publication {<V' venue W'>}>@s2 AND
           <P' publication {<X' Y' Z'>}>@s2)",
      "S2ByVenue"));
  s2_by_venue.bound_variables = {"W'"};

  Capability s3_dump;  // s3 exports everything
  s3_dump.view = Must(ParseTslQuery(
      R"(<dp(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@s3)",
      "S3Dump"));

  Mediator mediator = Must(Mediator::Make({
      SourceDescription{"s1", {s1_by_year97}},
      SourceDescription{"s2", {s2_by_venue}},
      SourceDescription{"s3", {s3_dump}},
  }));

  // One user query per source, all asking for "SIGMOD 1997" publications.
  const char* kQueryTemplate =
      R"(<f(P) sigmod97 {<X Y Z>}> :-
           <P publication {<U year "1997">}>@%s AND
           <P publication {<V venue "SIGMOD">}>@%s AND
           <P publication {<X Y Z>}>@%s)";
  for (const char* source : {"s1", "s2", "s3"}) {
    char text[512];
    std::snprintf(text, sizeof(text), kQueryTemplate, source, source, source);
    TslQuery query = Must(ParseTslQuery(text, "Sigmod97"));
    std::printf("== user query against %s ==\n", source);

    auto plans = mediator.Plan(query);
    if (!plans.ok()) Fail(plans.status());
    if (plans->empty()) {
      std::printf("  no capability-conformant plan (source interface too "
                  "weak)\n\n");
      continue;
    }
    for (const MediatorPlan& plan : *plans) {
      std::printf("  candidate %s\n", plan.ToString().c_str());
    }
    OemDatabase answer = Must(mediator.Execute(plans->front(), catalog));
    std::printf("  cheapest plan answers:\n%s\n", answer.ToString().c_str());
  }

  std::printf(
      "note: s1's year filter runs at the source, the SIGMOD filter runs at\n"
      "the mediator over the view output; s2's venue template runs at the\n"
      "source with the year filter at the mediator — exactly the division\n"
      "of labor Fig. 2's CBR is responsible for.\n");
  return 0;
}
