// Fault-tolerant mediation: the Fig. 2 loop hardened against wrapper
// faults. A bibliography mediator integrates a replicated source and a
// second, fragile one; scripted faults (deterministic, on a virtual clock)
// drive retry with backoff, failover to an equivalent replica, and finally
// the \S7 degraded fallback — each run ending with the execution report an
// operator would read.

#include <cstdio>
#include <cstdlib>

#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "oem/parser.h"
#include "tsl/parser.h"

namespace {

void Fail(const tslrw::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Must(tslrw::Result<T> result) {
  if (!result.ok()) Fail(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace tslrw;

  // One library database served by two mirror endpoints, plus a separate
  // archive source.
  SourceCatalog catalog;
  catalog.Put(Must(ParseOemDatabase(R"(
    database lib {
      <a1 publication {
        <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
      }>
      <a2 publication {
        <t2 title "Wrappers"> <v2 venue "VLDB"> <y2 year "1997">
      }>
    })")));
  catalog.Put(Must(ParseOemDatabase(R"(
    database archive {
      <b1 publication {
        <u1 title "Mediators"> <w1 venue "SIGMOD"> <x1 year "1997">
      }>
    })")));

  auto dump_view = [](const char* name, const char* head_fn,
                      const char* source) {
    Capability cap;
    cap.view = Must(ParseTslQuery(
        std::string("<") + head_fn +
            "(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@" +
            source,
        name));
    return cap;
  };
  Mediator mediator = Must(Mediator::Make({
      SourceDescription{"lib", {dump_view("MirrorA", "ma", "lib")}},
      SourceDescription{"lib", {dump_view("MirrorB", "mb", "lib")}},
      SourceDescription{"archive", {dump_view("Arch", "ar", "archive")}},
  }));

  TslQuery query = Must(ParseTslQuery(
      R"(<f(P,R) sigmod97 yes> :-
           <P publication {<U year "1997">}>@lib AND
           <R publication {<V venue "SIGMOD">}>@archive)",
      "Sigmod97"));
  std::printf("query: %s\n\n", query.ToString().c_str());

  CatalogWrapper base;

  auto run = [&](const char* title, FaultInjector* injector,
                 VirtualClock* clock) {
    ExecutionPolicy policy;
    policy.wrapper = injector;
    policy.clock = clock;
    policy.retry.max_attempts = 3;
    policy.retry.initial_backoff_ticks = 1;
    policy.retry.per_query_deadline_ticks = 100;
    std::printf("--- %s ---\n", title);
    auto answer = mediator.Answer(query, catalog, policy);
    if (!answer.ok()) {
      std::printf("failed: %s\n\n", answer.status().ToString().c_str());
      return;
    }
    std::printf("%zu answer object(s)\n%s\n",
                answer->result.roots().size(),
                answer->report.ToString().c_str());
  };

  {  // Healthy run: the cheapest plan answers on the first attempt.
    VirtualClock clock;
    FaultInjector injector(&base, /*seed=*/1, &clock);
    run("no faults", &injector, &clock);
  }
  {  // Transient blips: retry with exponential backoff rides them out.
    VirtualClock clock;
    FaultInjector injector(&base, /*seed=*/1, &clock);
    FaultSchedule blips;
    blips.scripted = {Fault::Unavailable(), Fault::Unavailable()};
    injector.SetSchedule("archive", blips);
    run("archive drops two calls, then recovers", &injector, &clock);
  }
  {  // One mirror is down for good: the plan list fails over to the other.
    VirtualClock clock;
    FaultInjector injector(&base, /*seed=*/1, &clock);
    FaultSchedule down;
    down.steady_state = Fault::Unavailable();
    injector.SetSchedule("MirrorA", down);
    run("MirrorA dead, failover to MirrorB", &injector, &clock);
  }
  {  // The archive is gone entirely: no total plan survives, so the
     // mediator degrades to the maximally-contained answer over the
     // remaining views (here: empty, but flagged — never silently wrong).
    VirtualClock clock;
    FaultInjector injector(&base, /*seed=*/1, &clock);
    FaultSchedule down;
    down.steady_state = Fault::Unavailable();
    injector.SetSchedule("archive", down);
    run("archive dead, degraded answer", &injector, &clock);
  }
  return 0;
}
