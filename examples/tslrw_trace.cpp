// Deterministic observability: the fault-tolerant mediation loop of
// examples/fault_tolerant_mediator.cpp, re-run with a Tracer and a
// MetricRegistry attached. Every span timestamp is a virtual-clock tick
// and every annotation a replayed counter, so for a fixed seed both trace
// dumps are byte-identical run after run — diff two runs to prove it. The
// Chrome JSON block loads in chrome://tracing or Perfetto. Metric counters
// are deterministic too; only the wall-time histograms at the very end
// measure real time and vary, which is why they live in the registry and
// never in the trace.

#include <cstdio>
#include <cstdlib>

#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "oem/parser.h"
#include "tsl/parser.h"

namespace {

void Fail(const tslrw::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Must(tslrw::Result<T> result) {
  if (!result.ok()) Fail(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace tslrw;

  SourceCatalog catalog;
  catalog.Put(Must(ParseOemDatabase(R"(
    database lib {
      <a1 publication {
        <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
      }>
      <a2 publication {
        <t2 title "Wrappers"> <v2 venue "VLDB"> <y2 year "1997">
      }>
    })")));
  catalog.Put(Must(ParseOemDatabase(R"(
    database archive {
      <b1 publication {
        <u1 title "Mediators"> <w1 venue "SIGMOD"> <x1 year "1997">
      }>
    })")));

  auto dump_view = [](const char* name, const char* head_fn,
                      const char* source) {
    Capability cap;
    cap.view = Must(ParseTslQuery(
        std::string("<") + head_fn +
            "(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@" +
            source,
        name));
    return cap;
  };
  Mediator mediator = Must(Mediator::Make({
      SourceDescription{"lib", {dump_view("MirrorA", "ma", "lib")}},
      SourceDescription{"lib", {dump_view("MirrorB", "mb", "lib")}},
      SourceDescription{"archive", {dump_view("Arch", "ar", "archive")}},
  }));

  TslQuery query = Must(ParseTslQuery(
      R"(<f(P,R) sigmod97 yes> :-
           <P publication {<U year "1997">}>@lib AND
           <R publication {<V venue "SIGMOD">}>@archive)",
      "Sigmod97"));
  std::printf("query: %s\n", query.ToString().c_str());

  // One clock drives faults, retry deadlines, and every span timestamp, so
  // the trace reads in the same time base as the execution report.
  VirtualClock clock;
  Tracer tracer(&clock);
  MetricRegistry metrics;

  CatalogWrapper base;
  FaultInjector injector(&base, /*seed=*/1, &clock);
  injector.set_tracer(&tracer);
  FaultSchedule blips;  // archive drops two calls, then recovers
  blips.scripted = {Fault::Unavailable(), Fault::Unavailable()};
  injector.SetSchedule("archive", blips);
  FaultSchedule down;  // MirrorA is dead for good: failover to MirrorB
  down.steady_state = Fault::Unavailable();
  injector.SetSchedule("MirrorA", down);

  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = &clock;
  policy.retry.max_attempts = 3;
  policy.retry.initial_backoff_ticks = 1;
  policy.retry.per_query_deadline_ticks = 100;
  policy.tracer = &tracer;
  policy.metrics = &metrics;

  auto answer = Must(mediator.Answer(query, catalog, policy));
  std::printf("%zu answer object(s)\n\n%s\n",
              answer.result.roots().size(),
              answer.report.ToString().c_str());

  Status valid = tracer.Validate();
  if (!valid.ok()) Fail(valid);

  std::printf("--- trace (text) ---\n%s\n", tracer.ToText().c_str());
  std::printf("--- trace (chrome://tracing JSON) ---\n%s\n",
              tracer.ToChromeJson().c_str());
  std::printf("--- metrics (wall-time histograms vary run to run) ---\n%s",
              metrics.ToText().c_str());
  return 0;
}
