// Examples 3.3 and 3.5 end-to-end: a query that has NO rewriting over the
// label/value-splitting view (V1) — until a DTD is supplied, at which point
// label inference and a labeled functional dependency make the rewriting
// valid. "The existence of such constraints allows us to find rewritings
// in cases where, in the absence of constraints, the algorithm would fail."

#include <cstdio>
#include <cstdlib>

#include "constraints/dtd.h"
#include "rewrite/rewriter.h"
#include "tsl/parser.h"

namespace {

void Fail(const tslrw::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Must(tslrw::Result<T> result) {
  if (!result.ok()) Fail(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace tslrw;

  // (V1): groups the labels of p-objects under pr subobjects and their
  // values under v subobjects — losing the label/value correspondence.
  TslQuery v1 = Must(ParseTslQuery(
      R"(<g(P') p {<pp(P',Y') pr Y'> <h(X') v Z'>}> :-
           <P' p {<X' Y' Z'>}>@db)",
      "V1"));
  // (Q7): people whose *name* contains <last stanford>.
  TslQuery q7 = Must(ParseTslQuery(
      R"(<f(P) stanford yes> :-
           <P p {<X name {<Z last stanford>}>}>@db)",
      "Q7"));
  std::printf("view  (V1): %s\nquery (Q7): %s\n\n", v1.ToString().c_str(),
              q7.ToString().c_str());

  // Without constraints: Example 3.3 — a mapping exists, the candidate
  // (Q8) is generated, but Step 2 rejects it (its composition is (Q9)).
  RewriteResult without = Must(RewriteQuery(q7, {v1}));
  std::printf("== without constraints ==\n"
              "mappings: %zu, candidates tested: %zu, rewritings: %zu\n",
              without.mappings_found, without.candidates_tested,
              without.rewritings.size());
  std::printf("  (V1) hides which label each value belongs to, so no\n"
              "  rewriting can exist — Example 3.3.\n\n");

  // The \S3.3 DTD: p has exactly one name; only name carries last.
  const char* kDtd = R"(
    <!ELEMENT p (name, phone, address*)>
    <!ELEMENT name (last, first, middle?, alias?)>
    <!ELEMENT alias (last, first)>
    <!ELEMENT address CDATA>
    <!ELEMENT phone CDATA>
    <!ELEMENT last CDATA>
    <!ELEMENT first CDATA>
    <!ELEMENT middle CDATA>
  )";
  Dtd dtd = Must(Dtd::Parse(kDtd));
  std::printf("== DTD ==\n%s\n", dtd.ToString().c_str());
  StructuralConstraints constraints(std::move(dtd));

  RewriteOptions options;
  options.constraints = &constraints;
  RewriteResult with = Must(RewriteQuery(q7, {v1}, options));
  std::printf("== with the DTD (Example 3.5) ==\n"
              "mappings: %zu, candidates tested: %zu, rewritings: %zu\n",
              with.mappings_found, with.candidates_tested,
              with.rewritings.size());
  for (const TslQuery& rw : with.rewritings) {
    std::printf("  %s\n", rw.ToString().c_str());
  }
  std::printf(
      "\nwhy: composing the candidate with (V1) yields (Q9); label\n"
      "inference forces the unknown label to `name` (only name objects can\n"
      "carry a last subobject under this DTD) and the labeled FD p -> name\n"
      "merges the two name objects, chasing (Q9) to (Q13) = (Q7).\n");
  return with.rewritings.empty() ? 1 : 0;
}
