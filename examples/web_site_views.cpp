// The \S1 "Web site management" application: a Web site is a declaratively
// defined graph over the semistructured data graph (one view per site
// section). When the data is only reachable through the site, user queries
// over the raw data graph must be rewritten as queries over the site —
// "the Web site definitions are just view definitions over the data graph".

#include <cstdio>
#include <cstdlib>

#include "eval/evaluator.h"
#include "oem/parser.h"
#include "rewrite/rewriter.h"
#include "tsl/parser.h"

namespace {

void Fail(const tslrw::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Must(tslrw::Result<T> result) {
  if (!result.ok()) Fail(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace tslrw;

  // The underlying data graph: a movie catalog.
  SourceCatalog catalog;
  catalog.Put(Must(ParseOemDatabase(R"(
    database data {
      <m1 movie { <t1 title "Metropolis"> <d1 director "Lang">
                  <g1 genre "scifi"> }>
      <m2 movie { <t2 title "Alien"> <d2 director "Scott">
                  <g2 genre "scifi"> }>
      <m3 movie { <t3 title "Heat"> <d3 director "Mann">
                  <g3 genre "crime"> }>
    })")));

  // The site: a sci-fi section page and a directors index page, each a
  // view over the data graph (URL-ish Skolem ids make nice page ids).
  TslQuery scifi_page = Must(ParseTslQuery(
      R"(<page(M') scifi-entry {<slot(X') Y' Z'>}> :-
           <M' movie {<G' genre "scifi">}>@data AND
           <M' movie {<X' Y' Z'>}>@data)",
      "ScifiPage"));
  TslQuery directors_page = Must(ParseTslQuery(
      R"(<dirent(M',D') director-entry D'> :-
           <M' movie {<X' director D'>}>@data)",
      "DirectorsPage"));

  std::printf("site definition:\n  %s\n  %s\n\n",
              scifi_page.ToString().c_str(),
              directors_page.ToString().c_str());

  // A user query over the *data graph*: titles of sci-fi movies.
  TslQuery query = Must(ParseTslQuery(
      R"(<hit(M) scifi-title T> :-
           <M movie {<G genre "scifi">}>@data AND
           <M movie {<X title T>}>@data)",
      "ScifiTitles"));
  std::printf("user query over the data graph:\n  %s\n\n",
              query.ToString().c_str());

  // Only the site is accessible: demand a total rewriting over the pages.
  RewriteOptions options;
  options.require_total = true;
  RewriteResult result =
      Must(RewriteQuery(query, {scifi_page, directors_page}, options));
  if (result.rewritings.empty()) {
    std::fprintf(stderr, "query not answerable through the site\n");
    return 1;
  }
  std::printf("rewritten over the site:\n");
  for (const TslQuery& rw : result.rewritings) {
    std::printf("  %s\n", rw.ToString().c_str());
  }

  // Serve it: materialize the site pages, evaluate the rewriting.
  SourceCatalog site;
  site.Put(Must(MaterializeView(scifi_page, catalog)));
  site.Put(Must(MaterializeView(directors_page, catalog)));
  OemDatabase via_site = Must(Evaluate(result.rewritings.front(), site,
                                       EvalOptions{.answer_name = "ans"}));
  std::printf("\nanswer served from the site:\n%s", via_site.ToString().c_str());

  // Sanity: identical to querying the data graph directly.
  OemDatabase direct =
      Must(Evaluate(query, catalog, EvalOptions{.answer_name = "ans"}));
  std::printf("\nidentical to the direct answer: %s\n",
              direct.Equals(via_site) ? "yes" : "NO (bug!)");

  // A query the site cannot answer: crime-movie titles (no crime section).
  TslQuery crime = Must(ParseTslQuery(
      R"(<hit(M) crime-title T> :-
           <M movie {<G genre "crime">}>@data AND
           <M movie {<X title T>}>@data)",
      "CrimeTitles"));
  RewriteResult none =
      Must(RewriteQuery(crime, {scifi_page, directors_page}, options));
  std::printf("\ncrime-movie titles through the site: %zu rewritings "
              "(the site publishes no crime section)\n",
              none.rewritings.size());
  return direct.Equals(via_site) && none.rewritings.empty() ? 0 : 1;
}
