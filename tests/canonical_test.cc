#include "tsl/canonical.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;

// The plan-cache regression the serving layer depends on: two α-equivalent
// parses of (Q1) — head and body variables renamed, conditions reordered —
// must canonicalize to byte-identical keys.
TEST(CanonicalTest, AlphaEquivalentParsesOfQ1ShareOneKey) {
  TslQuery q1 = MustParse(testing::kQ1, "Q1");
  TslQuery q1_renamed = MustParse(
      "<f(Person) female {<f(Sub) Lbl Val>}> :- "
      "<Person person {<Gen gender female> <Sub Lbl Val>}>@db",
      "Q1Renamed");
  CanonicalForm a = CanonicalizeQuery(q1);
  CanonicalForm b = CanonicalizeQuery(q1_renamed);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.query, b.query);
}

TEST(CanonicalTest, HeadVariableNamingIsIrrelevant) {
  // Same rule, only the head's variable spelling differs — the old
  // TslQuery equality would keep these apart.
  TslQuery a = MustParse("<f(P) out Z> :- <P p {<X name Z>}>@db");
  TslQuery b = MustParse("<f(Q) out W> :- <Q p {<Y name W>}>@db");
  EXPECT_FALSE(a == b);  // plain equality is name-sensitive
  EXPECT_EQ(CanonicalizeQuery(a).key, CanonicalizeQuery(b).key);
}

TEST(CanonicalTest, ConditionOrderIsIrrelevant) {
  TslQuery a = MustParse(
      "<f(P) out yes> :- "
      "<P p {<V venue sigmod>}>@db AND <P p {<U year y97>}>@db");
  TslQuery b = MustParse(
      "<f(P) out yes> :- "
      "<P p {<U year y97>}>@db AND <P p {<V venue sigmod>}>@db");
  EXPECT_EQ(CanonicalizeQuery(a).key, CanonicalizeQuery(b).key);
}

TEST(CanonicalTest, RenamingAndReorderingTogether) {
  TslQuery a = MustParse(
      "<f(P) out {<X Y Z>}> :- "
      "<P pub {<V venue sigmod>}>@db AND <P pub {<X Y Z>}>@db");
  TslQuery b = MustParse(
      "<f(Pp) out {<A B C>}> :- "
      "<Pp pub {<A B C>}>@db AND <Pp pub {<Vv venue sigmod>}>@db");
  EXPECT_EQ(CanonicalizeQuery(a).key, CanonicalizeQuery(b).key);
}

TEST(CanonicalTest, DistinctQueriesKeepDistinctKeys) {
  TslQuery sigmod = MustParse("<f(P) out yes> :- <P p {<V venue sigmod>}>@db");
  TslQuery vldb = MustParse("<f(P) out yes> :- <P p {<V venue vldb>}>@db");
  TslQuery other_source =
      MustParse("<f(P) out yes> :- <P p {<V venue sigmod>}>@cache");
  EXPECT_NE(CanonicalizeQuery(sigmod).key, CanonicalizeQuery(vldb).key);
  EXPECT_NE(CanonicalizeQuery(sigmod).key,
            CanonicalizeQuery(other_source).key);
}

TEST(CanonicalTest, RuleNameAndSpanDoNotLeakIntoTheKey) {
  TslQuery named = MustParse(testing::kQ3, "Q3");
  TslQuery anonymous = MustParse(testing::kQ3);
  EXPECT_EQ(CanonicalizeQuery(named).key, CanonicalizeQuery(anonymous).key);
}

TEST(CanonicalTest, CanonicalQueryIsAlphaEquivalentToTheInput) {
  // Soundness of the cache key: the canonical query must be the input up
  // to renaming — same number of conditions, same sources, same shape.
  TslQuery q = MustParse(testing::kQ1, "Q1");
  CanonicalForm form = CanonicalizeQuery(q);
  EXPECT_EQ(form.query.body.size(), q.body.size());
  EXPECT_EQ(form.query.Sources(), q.Sources());
  EXPECT_EQ(form.query.HeadVariables().size(), q.HeadVariables().size());
  EXPECT_EQ(form.query.BodyVariables().size(), q.BodyVariables().size());
}

TEST(CanonicalTest, CanonicalizationIsIdempotent) {
  TslQuery q = MustParse(testing::kQ2, "Q2");
  CanonicalForm once = CanonicalizeQuery(q);
  CanonicalForm twice = CanonicalizeQuery(once.query);
  EXPECT_EQ(once.key, twice.key);
}

TEST(CanonicalTest, InputAlreadyUsingCanonicalAlphabetIsHandled) {
  // Variables named O0/C0 in the "wrong" positions must not collide with
  // the names the renamer assigns (simultaneous substitution).
  TslQuery tricky = MustParse("<f(O1) out C1> :- <O1 p {<O0 C0 C1>}>@db");
  TslQuery plain = MustParse("<f(A) out V> :- <A p {<B L V>}>@db");
  EXPECT_EQ(CanonicalizeQuery(tricky).key, CanonicalizeQuery(plain).key);
}

TEST(CanonicalTest, StableFingerprintIsProcessIndependent) {
  // FNV-1a 64 with the standard offset/prime: pin known values so a
  // platform or refactor can never silently change recorded fingerprints.
  EXPECT_EQ(StableFingerprint(""), 14695981039346656037ULL);
  EXPECT_EQ(StableFingerprint("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(StableFingerprint("hello"), 0xa430d84680aabd0bULL);
}

}  // namespace
}  // namespace tslrw
