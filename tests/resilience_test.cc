// Unit tests for the resilience primitives under the serving layer
// (docs/ROBUSTNESS.md): the per-endpoint circuit-breaker state machine,
// the percentile-based hedge delay, and the deadline/backoff arithmetic
// of RetryPolicy — including the edge cases the chaos drills lean on
// (expired deadlines fail fast with no sleep; backoff math saturates
// instead of overflowing next to a deadline).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "mediator/resilience.h"
#include "mediator/retry.h"
#include "mediator/wrapper.h"
#include "oem/parser.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

// --- deadline arithmetic ----------------------------------------------------

TEST(RetryDeadlineTest, ZeroBudgetMeansNoDeadline) {
  EXPECT_EQ(AbsoluteDeadlineTicks(0, 0), 0u);
  EXPECT_EQ(AbsoluteDeadlineTicks(12345, 0), 0u);
  EXPECT_EQ(RemainingTicks(0, 0), UINT64_MAX);
  EXPECT_EQ(RemainingTicks(UINT64_MAX, 0), UINT64_MAX);
}

TEST(RetryDeadlineTest, AbsoluteDeadlineSaturatesInsteadOfWrapping) {
  EXPECT_EQ(AbsoluteDeadlineTicks(10, 5), 15u);
  EXPECT_EQ(AbsoluteDeadlineTicks(UINT64_MAX - 3, 3), UINT64_MAX);
  // now + budget would wrap to a tiny (already expired) deadline; it must
  // pin to UINT64_MAX instead.
  EXPECT_EQ(AbsoluteDeadlineTicks(UINT64_MAX - 3, 4), UINT64_MAX);
  EXPECT_EQ(AbsoluteDeadlineTicks(UINT64_MAX, UINT64_MAX), UINT64_MAX);
}

TEST(RetryDeadlineTest, ExpiredDeadlineHasZeroRemaining) {
  EXPECT_EQ(RemainingTicks(4, 5), 1u);
  EXPECT_EQ(RemainingTicks(5, 5), 0u);
  EXPECT_EQ(RemainingTicks(6, 5), 0u);
  EXPECT_EQ(RemainingTicks(UINT64_MAX, 5), 0u);
}

// --- backoff arithmetic -----------------------------------------------------

TEST(RetryBackoffTest, GrowsGeometricallyAndCaps) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ticks = 2;
  policy.multiplier = 2.0;
  policy.max_backoff_ticks = 9;
  EXPECT_EQ(policy.BackoffAfterAttempt(1, nullptr), 2u);
  EXPECT_EQ(policy.BackoffAfterAttempt(2, nullptr), 4u);
  EXPECT_EQ(policy.BackoffAfterAttempt(3, nullptr), 8u);
  EXPECT_EQ(policy.BackoffAfterAttempt(4, nullptr), 9u);
  EXPECT_EQ(policy.BackoffAfterAttempt(9, nullptr), 9u);
}

TEST(RetryBackoffTest, NoWaitPrecedesAnAttemptThatNeverHappens) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ticks = 5;
  EXPECT_EQ(policy.BackoffAfterAttempt(3, nullptr), 0u);
  EXPECT_EQ(policy.BackoffAfterAttempt(100, nullptr), 0u);
  // max_attempts = 0 behaves as 1: one try, no backoff ever.
  policy.max_attempts = 0;
  EXPECT_EQ(policy.BackoffAfterAttempt(1, nullptr), 0u);
}

TEST(RetryBackoffTest, HugeAttemptNumbersSaturateWithoutOverflow) {
  // Doubling past 2^63 must saturate at the cap, not wrap through
  // llround's UB range. A cap of UINT64_MAX means every late attempt
  // waits exactly the cap.
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_ticks = 1;
  policy.multiplier = 2.0;
  policy.max_backoff_ticks = UINT64_MAX;
  EXPECT_EQ(policy.BackoffAfterAttempt(999, nullptr), UINT64_MAX);
  EXPECT_EQ(policy.BackoffAfterAttempt(70, nullptr), UINT64_MAX);
}

TEST(RetryBackoffTest, JitterIsSeededAndBounded) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ticks = 100;
  policy.max_backoff_ticks = 100;
  policy.jitter = 0.5;
  DeterministicRng a(42), b(42), c(43);
  const uint64_t first = policy.BackoffAfterAttempt(1, &a);
  EXPECT_EQ(policy.BackoffAfterAttempt(1, &b), first);
  EXPECT_GE(first, 50u);  // drawn from [(1 - jitter) * b, b]
  EXPECT_LE(first, 100u);
  // A different seed is allowed to (and here does) land elsewhere.
  EXPECT_NE(policy.BackoffAfterAttempt(1, &c), first);
}

// --- circuit breakers -------------------------------------------------------

ResiliencePolicy SmallBreakerPolicy() {
  ResiliencePolicy policy;
  policy.breaker.enabled = true;
  policy.breaker.window = 4;
  policy.breaker.min_samples = 4;
  policy.breaker.failure_ratio = 0.5;
  policy.breaker.open_events = 3;
  policy.breaker.half_open_probes = 1;
  policy.breaker.half_open_successes = 1;
  return policy;
}

TEST(CircuitBreakerTest, DisabledRegistryAlwaysAdmits) {
  ResilienceRegistry registry;  // default policy: breakers off
  for (int i = 0; i < 10; ++i) registry.RecordFailure("ep");
  const BreakerDecision decision = registry.Admit("ep");
  EXPECT_TRUE(decision.allowed);
  EXPECT_FALSE(decision.probe);
  EXPECT_TRUE(registry.AllClosed());
}

TEST(CircuitBreakerTest, OpensAtTheFailureRatioAndShortCircuits) {
  ResilienceRegistry registry(SmallBreakerPolicy());
  // Three failures: window not yet at min_samples, still closed.
  for (int i = 0; i < 3; ++i) {
    const BreakerEvent event = registry.RecordFailure("ep");
    EXPECT_FALSE(event.opened);
  }
  EXPECT_TRUE(registry.AllClosed());
  // The fourth failure fills the window at 4/4 >= 0.5: open.
  EXPECT_TRUE(registry.RecordFailure("ep").opened);
  EXPECT_FALSE(registry.AllClosed());
  // While open, fetches are denied — and each denial is counted.
  const BreakerDecision denied = registry.Admit("ep");
  EXPECT_FALSE(denied.allowed);
  const std::vector<BreakerSnapshot> snapshots = registry.Snapshot();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].state, BreakerState::kOpen);
  EXPECT_EQ(snapshots[0].opens_total, 1u);
  EXPECT_EQ(snapshots[0].short_circuits_total, 1u);
  EXPECT_NE(snapshots[0].ToString().find("ep: open"), std::string::npos);
}

TEST(CircuitBreakerTest, SuccessfulProbeClosesTheBreaker) {
  ResilienceRegistry registry(SmallBreakerPolicy());
  for (int i = 0; i < 4; ++i) registry.RecordFailure("ep");
  // The open cooldown is measured in registry events; denials advance it,
  // so a steadily short-circuited endpoint still reaches its probe.
  size_t denials = 0;
  BreakerDecision decision;
  do {
    decision = registry.Admit("ep");
    if (!decision.allowed) ++denials;
    ASSERT_LE(denials, 16u) << "breaker never half-opened";
  } while (!decision.allowed);
  EXPECT_TRUE(decision.probe);
  EXPECT_TRUE(decision.half_opened);
  EXPECT_EQ(denials, 3u);  // open_events = 3
  // The probe succeeds: closed again, window cleared.
  EXPECT_TRUE(registry.RecordSuccess("ep", 1).closed);
  EXPECT_TRUE(registry.AllClosed());
  const std::vector<BreakerSnapshot> snapshots = registry.Snapshot();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].recent_samples, 0u);
}

TEST(CircuitBreakerTest, FailedProbeReopensAndReArmsTheCooldown) {
  ResilienceRegistry registry(SmallBreakerPolicy());
  for (int i = 0; i < 4; ++i) registry.RecordFailure("ep");
  BreakerDecision decision;
  do {
    decision = registry.Admit("ep");
  } while (!decision.allowed);
  ASSERT_TRUE(decision.probe);
  EXPECT_TRUE(registry.RecordFailure("ep").opened);
  // Straight back to denying — the cooldown restarted.
  EXPECT_FALSE(registry.Admit("ep").allowed);
  const std::vector<BreakerSnapshot> snapshots = registry.Snapshot();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].opens_total, 2u);
}

TEST(CircuitBreakerTest, MixedOutcomesBelowTheRatioStayClosed) {
  ResiliencePolicy policy = SmallBreakerPolicy();
  policy.breaker.failure_ratio = 0.75;
  ResilienceRegistry registry(policy);
  // Alternating success/failure holds the window at 2/4 < 0.75.
  for (int i = 0; i < 12; ++i) {
    if (i % 2 == 0) {
      registry.RecordFailure("ep");
    } else {
      registry.RecordSuccess("ep", 1);
    }
    EXPECT_TRUE(registry.AllClosed()) << "tripped after outcome " << i;
  }
}

TEST(CircuitBreakerTest, ResetDropsAllEndpointState) {
  ResilienceRegistry registry(SmallBreakerPolicy());
  for (int i = 0; i < 4; ++i) registry.RecordFailure("ep");
  EXPECT_FALSE(registry.AllClosed());
  registry.Reset();
  EXPECT_TRUE(registry.AllClosed());
  EXPECT_TRUE(registry.Snapshot().empty());
}

// --- hedge delay ------------------------------------------------------------

TEST(HedgeDelayTest, DefaultsUntilEnoughSamples) {
  ResiliencePolicy policy;
  policy.hedge.enabled = true;
  policy.hedge.min_samples = 3;
  policy.hedge.default_delay_ticks = 7;
  ResilienceRegistry registry(policy);
  EXPECT_EQ(registry.HedgeDelayTicks("ep"), 7u);
  registry.RecordSuccess("ep", 50);
  registry.RecordSuccess("ep", 50);
  EXPECT_EQ(registry.HedgeDelayTicks("ep"), 7u);  // 2 < min_samples
  registry.RecordSuccess("ep", 50);
  EXPECT_EQ(registry.HedgeDelayTicks("ep"), 50u);
}

TEST(HedgeDelayTest, TracksTheConfiguredPercentile) {
  ResiliencePolicy policy;
  policy.hedge.enabled = true;
  policy.hedge.min_samples = 3;
  policy.hedge.percentile = 0.95;
  ResilienceRegistry registry(policy);
  registry.RecordSuccess("ep", 1);
  registry.RecordSuccess("ep", 2);
  registry.RecordSuccess("ep", 100);
  // p95 over {1, 2, 100} lands on the top sample.
  EXPECT_EQ(registry.HedgeDelayTicks("ep"), 100u);
  policy.hedge.percentile = 0.5;
  ResilienceRegistry median(policy);
  median.RecordSuccess("ep", 1);
  median.RecordSuccess("ep", 2);
  median.RecordSuccess("ep", 100);
  EXPECT_EQ(median.HedgeDelayTicks("ep"), 2u);
}

TEST(HedgeDelayTest, NeverReturnsZero) {
  // A zero delay would hedge every fetch; all-zero latencies (cache-hit
  // fast sources on virtual time) and a zero default must both clamp to 1.
  ResiliencePolicy policy;
  policy.hedge.enabled = true;
  policy.hedge.min_samples = 1;
  policy.hedge.default_delay_ticks = 0;
  ResilienceRegistry registry(policy);
  EXPECT_EQ(registry.HedgeDelayTicks("ep"), 1u);
  registry.RecordSuccess("ep", 0);
  EXPECT_EQ(registry.HedgeDelayTicks("ep"), 1u);
}

// --- deadlines end to end ---------------------------------------------------

/// A one-source fixture whose only endpoint is unavailable, with a huge
/// configured backoff: if expired deadlines did not fail fast, the clock
/// would show the backoff sleeps.
struct DeadlineFixture {
  SourceCatalog catalog;
  Mediator mediator;
  TslQuery query;

  static DeadlineFixture Make() {
    auto db = ParseOemDatabase(R"(
      database db {
        <p1 publication { <t1 title "Views"> }>
      })");
    EXPECT_TRUE(db.ok()) << db.status();
    auto view = ParseTslQuery(
        "<d(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@db",
        "Dump");
    EXPECT_TRUE(view.ok()) << view.status();
    auto query = ParseTslQuery(
        "<f(P) t yes> :- <P publication {<X Y Z>}>@db", "Q");
    EXPECT_TRUE(query.ok()) << query.status();
    Capability capability;
    capability.view = *view;
    auto mediator =
        Mediator::Make({SourceDescription{"db", {capability}}});
    EXPECT_TRUE(mediator.ok()) << mediator.status();
    SourceCatalog catalog;
    catalog.Put(*db);
    return DeadlineFixture{std::move(catalog), *std::move(mediator),
                           *std::move(query)};
  }
};

TEST(RetryDeadlineTest, ExpiredQueryBudgetSkipsBackoffSleeps) {
  DeadlineFixture fixture = DeadlineFixture::Make();
  CatalogWrapper base;
  VirtualClock clock;
  FaultInjector injector(&base, /*seed=*/1, &clock);
  FaultSchedule dead;
  dead.steady_state = Fault::Unavailable();
  injector.SetSchedule("db", dead);

  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = &clock;
  policy.retry.max_attempts = 5;
  policy.retry.initial_backoff_ticks = 1000;
  policy.retry.per_query_deadline_ticks = 2;
  auto answer = fixture.mediator.Answer(fixture.query, fixture.catalog,
                                        policy);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->completeness, Completeness::kDegraded);
  // The clock never slept a 1000-tick backoff against a 2-tick budget.
  EXPECT_LE(clock.now(), 2u) << "backoff overshot the deadline";
}

TEST(RetryDeadlineTest, AdmissionStampedDeadlineAlreadyExpiredFailsFast) {
  DeadlineFixture fixture = DeadlineFixture::Make();
  CatalogWrapper base;
  VirtualClock clock;
  clock.Advance(50);  // the request arrives after its own deadline

  ExecutionPolicy policy;
  policy.wrapper = &base;
  policy.clock = &clock;
  policy.retry.max_attempts = 5;
  policy.retry.initial_backoff_ticks = 1000;
  policy.admission_deadline_ticks = 10;
  policy.degrade_on_deadline = false;
  auto answer = fixture.mediator.Answer(fixture.query, fixture.catalog,
                                        policy);
  ASSERT_FALSE(answer.ok());
  EXPECT_TRUE(answer.status().IsDeadlineExceeded()) << answer.status();
  EXPECT_EQ(clock.now(), 50u) << "an expired deadline must not sleep";
}

}  // namespace
}  // namespace tslrw
