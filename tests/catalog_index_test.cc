#include "catalog/index_file.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/compiler.h"
#include "constraints/dtd.h"
#include "fixtures.h"
#include "testing/random_rules.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;

std::shared_ptr<const CompiledCatalog> MustCompile(
    const std::vector<TslQuery>& views,
    const StructuralConstraints* constraints = nullptr) {
  auto catalog = CompileCatalog(DescribeViews(views), constraints);
  EXPECT_TRUE(catalog.ok()) << catalog.status();
  return std::move(catalog).ValueOrDie();
}

/// A catalog exercising every serialized corner: indexed views, a
/// duplicate (TSL201), a subsumption edge (TSL200), an always-scan entry
/// would need a budget override, so this sticks to what DescribeViews
/// produces; the random sweep below covers breadth.
std::shared_ptr<const CompiledCatalog> FixtureCatalog() {
  std::vector<TslQuery> views = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db",
                "Wide"),
      MustParse("<v(P') vout {<w(X') m c0>}> :- <P' root {<X' l0 c0>}>@db",
                "Narrow"),
      MustParse("<v(Q') vout {<w(Y') m W'>}> :- <Q' root {<Y' l0 W'>}>@db",
                "WideCopy"),
  };
  return MustCompile(views);
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CatalogIndexFileTest, RoundTripIsByteIdentical) {
  auto catalog = FixtureCatalog();
  const std::string bytes = SerializeCatalog(*catalog);

  auto loaded = DeserializeCatalog(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // compile -> serialize -> load -> serialize is the identity on bytes,
  // and the loaded catalog is indistinguishable from the compiled one.
  EXPECT_EQ(SerializeCatalog(**loaded), bytes);
  EXPECT_EQ((*loaded)->catalog_fingerprint(), catalog->catalog_fingerprint());
  EXPECT_EQ((*loaded)->Summary(), catalog->Summary());
  ASSERT_EQ((*loaded)->diagnostics().size(), catalog->diagnostics().size());
  for (size_t i = 0; i < catalog->diagnostics().size(); ++i) {
    EXPECT_EQ((*loaded)->diagnostics()[i].ToString(),
              catalog->diagnostics()[i].ToString());
  }
  ASSERT_EQ((*loaded)->lattice().size(), catalog->lattice().size());
}

TEST(CatalogIndexFileTest, RandomCatalogsRoundTrip) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    testing::RandomRules rules(seed, /*num_labels=*/3, /*num_values=*/3,
                               "root");
    std::vector<TslQuery> views = {
        rules.View("V0", "db"),
        rules.CopyView("V1", "db"),
        rules.DeepView("V2", "db"),
        rules.View("V3", "db"),
    };
    auto catalog = MustCompile(views);
    const std::string bytes = SerializeCatalog(*catalog);
    auto loaded = DeserializeCatalog(bytes);
    ASSERT_TRUE(loaded.ok()) << "seed " << seed << ": " << loaded.status();
    EXPECT_EQ(SerializeCatalog(**loaded), bytes) << "seed " << seed;
    EXPECT_EQ((*loaded)->catalog_fingerprint(),
              catalog->catalog_fingerprint())
        << "seed " << seed;
  }
}

TEST(CatalogIndexFileTest, EveryTruncationIsDataLoss) {
  const std::string bytes = SerializeCatalog(*FixtureCatalog());
  ASSERT_GT(bytes.size(), 30u);
  for (size_t keep = 0; keep < bytes.size(); keep += 7) {
    auto loaded = DeserializeCatalog(bytes.substr(0, keep));
    EXPECT_FALSE(loaded.ok()) << "prefix of " << keep << " bytes parsed";
    EXPECT_TRUE(loaded.status().IsDataLoss())
        << "prefix of " << keep << ": " << loaded.status();
  }
}

TEST(CatalogIndexFileTest, EveryBitFlipIsDataLoss) {
  const std::string bytes = SerializeCatalog(*FixtureCatalog());
  for (size_t at = 0; at < bytes.size(); at += 11) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x40);
    auto loaded = DeserializeCatalog(corrupt);
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << at << " parsed";
    if (!loaded.ok()) {
      EXPECT_TRUE(loaded.status().IsDataLoss())
          << "flip at " << at << ": " << loaded.status();
    }
  }
}

TEST(CatalogIndexFileTest, SaveThenLoadReproducesTheCatalog) {
  auto catalog = FixtureCatalog();
  const std::string path = TempPath("catalog_index_test.tslrwix");
  ASSERT_TRUE(SaveCatalogIndex(*catalog, path).ok());
  auto loaded = LoadCatalogIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(SerializeCatalog(**loaded), SerializeCatalog(*catalog));
  std::remove(path.c_str());
}

TEST(CatalogIndexFileTest, MissingFileIsNotFound) {
  auto loaded = LoadCatalogIndex(TempPath("does_not_exist.tslrwix"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound()) << loaded.status();
}

TEST(CatalogIndexFileTest, LoadOrCompileUsesAValidFile) {
  std::vector<TslQuery> views = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db",
                "A"),
  };
  auto catalog = MustCompile(views);
  const std::string path = TempPath("catalog_index_valid.tslrwix");
  ASSERT_TRUE(SaveCatalogIndex(*catalog, path).ok());

  auto outcome = LoadOrCompileCatalog(path, DescribeViews(views), nullptr);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->loaded_from_file);
  EXPECT_TRUE(outcome->load_status.ok()) << outcome->load_status;
  EXPECT_EQ(outcome->catalog->catalog_fingerprint(),
            catalog->catalog_fingerprint());
  std::remove(path.c_str());
}

TEST(CatalogIndexFileTest, LoadOrCompileFallsBackOnCorruption) {
  std::vector<TslQuery> views = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db",
                "A"),
  };
  auto catalog = MustCompile(views);
  std::string bytes = SerializeCatalog(*catalog);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
  const std::string path = TempPath("catalog_index_corrupt.tslrwix");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  auto outcome = LoadOrCompileCatalog(path, DescribeViews(views), nullptr);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->loaded_from_file);
  EXPECT_TRUE(outcome->load_status.IsDataLoss()) << outcome->load_status;
  // The fallback compile still yields a working catalog.
  ASSERT_NE(outcome->catalog, nullptr);
  EXPECT_EQ(outcome->catalog->catalog_fingerprint(),
            catalog->catalog_fingerprint());
  std::remove(path.c_str());
}

TEST(CatalogIndexFileTest, LoadOrCompileFallsBackOnStaleDefinitions) {
  std::vector<TslQuery> old_views = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db",
                "A"),
  };
  const std::string path = TempPath("catalog_index_stale.tslrwix");
  ASSERT_TRUE(SaveCatalogIndex(*MustCompile(old_views), path).ok());

  // The view definition changed since the index was written: the loaded
  // index fails validation and a fresh compile takes over.
  std::vector<TslQuery> new_views = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l1 Z'>}>@db",
                "A"),
  };
  auto outcome = LoadOrCompileCatalog(path, DescribeViews(new_views), nullptr);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->loaded_from_file);
  EXPECT_FALSE(outcome->load_status.ok());
  ASSERT_NE(outcome->catalog, nullptr);
  EXPECT_TRUE(outcome->catalog
                  ->ValidateAgainst(new_views, nullptr)
                  .ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tslrw
