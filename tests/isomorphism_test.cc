#include "oem/isomorphism.h"

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "fixtures.h"
#include "oem/bisim.h"
#include "oem/generator.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

Term Atom(const char* s) { return Term::MakeAtom(s); }

TEST(IsomorphismTest, RenamedDatabasesAreIsomorphic) {
  OemDatabase a = MustParseDb(
      "database a { <p1 person { <n1 name ann> <g1 gender female> }> }");
  OemDatabase b = MustParseDb(
      "database b { <q7 person { <m3 name ann> <h9 gender female> }> }");
  auto renaming = FindOidRenaming(a, b);
  ASSERT_TRUE(renaming.has_value());
  EXPECT_EQ(renaming->at(Atom("p1")), Atom("q7"));
  EXPECT_EQ(renaming->at(Atom("n1")), Atom("m3"));
  EXPECT_EQ(renaming->at(Atom("g1")), Atom("h9"));
  EXPECT_TRUE(EquivalentUpToOidRenaming(a, b));
  // Identity-equal databases are trivially isomorphic.
  EXPECT_TRUE(EquivalentUpToOidRenaming(a, a));
}

TEST(IsomorphismTest, DifferentContentIsNot) {
  OemDatabase a = MustParseDb("database a { <p person { <n name ann> }> }");
  OemDatabase value = MustParseDb(
      "database b { <p person { <n name bob> }> }");
  OemDatabase label = MustParseDb(
      "database c { <p person { <n alias ann> }> }");
  OemDatabase extra = MustParseDb(
      "database d { <p person { <n name ann> <x note y> }> }");
  EXPECT_FALSE(EquivalentUpToOidRenaming(a, value));
  EXPECT_FALSE(EquivalentUpToOidRenaming(a, label));
  EXPECT_FALSE(EquivalentUpToOidRenaming(a, extra));
}

TEST(IsomorphismTest, StrictlyFinerThanBisimulation) {
  // A 1-cycle and a 2-cycle: bisimilar, NOT isomorphic.
  OemDatabase one("a");
  ASSERT_TRUE(one.PutSet(Atom("x"), "n").ok());
  ASSERT_TRUE(one.AddEdge(Atom("x"), Atom("x")).ok());
  ASSERT_TRUE(one.AddRoot(Atom("x")).ok());
  OemDatabase two("b");
  ASSERT_TRUE(two.PutSet(Atom("p"), "n").ok());
  ASSERT_TRUE(two.PutSet(Atom("q"), "n").ok());
  ASSERT_TRUE(two.AddEdge(Atom("p"), Atom("q")).ok());
  ASSERT_TRUE(two.AddEdge(Atom("q"), Atom("p")).ok());
  ASSERT_TRUE(two.AddRoot(Atom("p")).ok());
  EXPECT_TRUE(StructurallyEquivalent(one, two));
  EXPECT_FALSE(EquivalentUpToOidRenaming(one, two));

  // Shared child versus two equal copies: bisimilar, NOT isomorphic.
  OemDatabase shared = MustParseDb("database a { <r n { <c m v> }> }");
  OemDatabase copies = MustParseDb(
      "database b { <r n { <c1 m v> <c2 m v> }> }");
  EXPECT_TRUE(StructurallyEquivalent(shared, copies));
  EXPECT_FALSE(EquivalentUpToOidRenaming(shared, copies));
}

TEST(IsomorphismTest, CyclicGraphsMatchStructurally) {
  OemDatabase a = MustParseDb(
      "database a { <x n { <y n { @x }> }> }");
  OemDatabase b = MustParseDb(
      "database b { <u n { <w n { @u }> }> }");
  EXPECT_TRUE(EquivalentUpToOidRenaming(a, b));
}

TEST(IsomorphismTest, RootnessMatters) {
  // Same graph, but b exposes both objects as roots.
  OemDatabase a = MustParseDb("database a { <x n { <y m v> }> }");
  OemDatabase b = MustParseDb("database b { <x n { <y m v> }> @y }");
  EXPECT_FALSE(EquivalentUpToOidRenaming(a, b));
}

TEST(IsomorphismTest, GeneratedDatabasesSelfIsomorphicUnderRenaming) {
  GeneratorOptions options;
  options.seed = 17;
  options.num_roots = 6;
  options.max_depth = 3;
  options.share_probability = 0.2;
  OemDatabase db = GenerateOemDatabase("db", options);
  // Rebuild with renamed oids by round-tripping through text with a
  // substitution on the oid spellings.
  std::string text = db.ToString();
  size_t pos = 0;
  while ((pos = text.find("<o", pos)) != std::string::npos) {
    text.replace(pos, 2, "<z");
    pos += 2;
  }
  pos = 0;
  while ((pos = text.find("@o", pos)) != std::string::npos) {
    text.replace(pos, 2, "@z");
    pos += 2;
  }
  OemDatabase renamed = MustParseDb(text);
  EXPECT_FALSE(db.Equals(renamed));  // oids differ
  EXPECT_TRUE(EquivalentUpToOidRenaming(db, renamed));
}

TEST(IsomorphismTest, SupportsThe6ConjectureCrossCheck) {
  // \S6: if no rewriting produces an *identical* result, none produces an
  // isomorphic one either. Spot-check the machinery agrees on rewriting
  // outputs: identical answers are isomorphic too.
  SourceCatalog catalog;
  catalog.Put(MustParseDb(
      "database db { <p1 p { <n1 name leland> }> }"));
  TslQuery q = MustParse(testing::kQ3, "Q3");
  auto a = Evaluate(q, catalog, {.answer_name = "x"});
  auto b = Evaluate(q, catalog, {.answer_name = "x"});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_TRUE(EquivalentUpToOidRenaming(*a, *b));
}

}  // namespace
}  // namespace tslrw
