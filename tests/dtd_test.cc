#include "constraints/dtd.h"

#include <gtest/gtest.h>

#include "constraints/inference.h"
#include "fixtures.h"

namespace tslrw {
namespace {

TEST(DtdTest, ParsesPaperDtd) {
  auto dtd = Dtd::Parse(testing::kPersonDtd);
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  const Dtd::Element* p = dtd->Find("p");
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->atomic);
  ASSERT_EQ(p->children.size(), 3u);
  EXPECT_EQ(p->children[0].label, "name");
  EXPECT_EQ(p->children[0].multiplicity, Multiplicity::kOne);
  EXPECT_EQ(p->children[2].label, "address");
  EXPECT_EQ(p->children[2].multiplicity, Multiplicity::kStar);
  const Dtd::Element* name = dtd->Find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->FindChild("middle")->multiplicity, Multiplicity::kOptional);
  EXPECT_TRUE(dtd->Find("phone")->atomic);
  EXPECT_FALSE(dtd->declares("zebra"));
}

TEST(DtdTest, PlusEmptyAndAlternation) {
  auto dtd = Dtd::Parse(R"(
    <!ELEMENT a (b+, c)>
    <!ELEMENT b EMPTY>
    <!ELEMENT c (d | e)>
  )");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd->Find("a")->FindChild("b")->multiplicity, Multiplicity::kPlus);
  EXPECT_TRUE(dtd->Find("b")->children.empty());
  EXPECT_FALSE(dtd->Find("b")->atomic);
  // Alternation weakens both branches to optional.
  EXPECT_EQ(dtd->Find("c")->FindChild("d")->multiplicity,
            Multiplicity::kOptional);
  EXPECT_EQ(dtd->Find("c")->FindChild("e")->multiplicity,
            Multiplicity::kOptional);
}

TEST(DtdTest, RepeatedChildWeakensToStar) {
  auto dtd = Dtd::Parse("<!ELEMENT a (b, b)>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->Find("a")->FindChild("b")->multiplicity, Multiplicity::kStar);
}

TEST(DtdTest, RejectsMalformedDeclarations) {
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a>").ok());
  EXPECT_FALSE(Dtd::Parse("<ELEMENT a (b)>").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a (b)> <!ELEMENT a (c)>").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a (b,)>").ok());
}

TEST(DtdTest, RoundTripsToString) {
  auto dtd = Dtd::Parse(testing::kPersonDtd);
  ASSERT_TRUE(dtd.ok());
  auto round = Dtd::Parse(dtd->ToString());
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(dtd->ToString(), round->ToString());
}

TEST(StructuralConstraintsTest, InferMiddleLabelFromPaper) {
  auto dtd = Dtd::Parse(testing::kPersonDtd);
  ASSERT_TRUE(dtd.ok());
  StructuralConstraints c(std::move(dtd).value());
  // Example 3.5: "the only subobject of a p object with a last subobject
  // is a name object".
  EXPECT_EQ(c.InferMiddleLabel("p", "last"), "name");
  EXPECT_EQ(c.InferMiddleLabel("p", "middle"), "name");
  // name.?.last: alias and ... only alias among name's children has last?
  // name's children: last, first, middle?, alias?; alias has (last, first).
  EXPECT_EQ(c.InferMiddleLabel("name", "last"), "alias");
  // Unknown parent: no inference.
  EXPECT_EQ(c.InferMiddleLabel("zebra", "last"), std::nullopt);
}

TEST(StructuralConstraintsTest, UniqueChildFds) {
  auto dtd = Dtd::Parse(testing::kPersonDtd);
  ASSERT_TRUE(dtd.ok());
  StructuralConstraints c(std::move(dtd).value());
  EXPECT_TRUE(c.HasUniqueChild("p", "name"));
  EXPECT_TRUE(c.HasUniqueChild("p", "phone"));
  EXPECT_FALSE(c.HasUniqueChild("p", "address"));   // star
  EXPECT_FALSE(c.HasUniqueChild("name", "middle")); // optional
  EXPECT_FALSE(c.HasUniqueChild("p", "zebra"));
  EXPECT_FALSE(c.HasUniqueChild("zebra", "name"));
}

TEST(StructuralConstraintsTest, AtomicityAndAllowsChild) {
  auto dtd = Dtd::Parse(testing::kPersonDtd);
  ASSERT_TRUE(dtd.ok());
  StructuralConstraints c(std::move(dtd).value());
  EXPECT_TRUE(c.IsAtomic("phone"));
  EXPECT_FALSE(c.IsAtomic("p"));
  EXPECT_FALSE(c.IsAtomic("zebra"));
  EXPECT_TRUE(c.AllowsChild("p", "name"));
  EXPECT_FALSE(c.AllowsChild("p", "last"));
  EXPECT_FALSE(c.AllowsChild("phone", "anything"));
  EXPECT_TRUE(c.AllowsChild("zebra", "anything"));  // open world
}

}  // namespace
}  // namespace tslrw
