#include "rewrite/substitution.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;

Term OidVar(const char* s) { return Term::MakeVar(s, VarKind::kObjectId); }
Term ValVar(const char* s) { return Term::MakeVar(s, VarKind::kLabelValue); }
Term Atom(const char* s) { return Term::MakeAtom(s); }

SetPattern OneMember(const char* text) {
  TslQuery q = MustParse(std::string("<f(X) l yes> :- ") + text + "@db");
  return SetPattern{q.body[0].pattern};
}

TEST(SubstitutionTest, TermAndSetBindingsAreExclusive) {
  Substitution s;
  EXPECT_TRUE(s.BindTerm(ValVar("Z"), Atom("leland")));
  EXPECT_FALSE(s.BindSet(ValVar("Z"), OneMember("<A b c>")));
  Substitution t;
  EXPECT_TRUE(t.BindSet(ValVar("Z"), OneMember("<A b c>")));
  EXPECT_FALSE(t.BindTerm(ValVar("Z"), Atom("leland")));
  // Rebinding a set to the same pattern is fine, to a different one is not.
  EXPECT_TRUE(t.BindSet(ValVar("Z"), OneMember("<A b c>")));
  EXPECT_FALSE(t.BindSet(ValVar("Z"), OneMember("<A b d>")));
}

TEST(SubstitutionTest, OccursCheckOnSetBindings) {
  Substitution s;
  EXPECT_FALSE(s.BindSet(ValVar("Z"), OneMember("<A b Z>")));
}

TEST(SubstitutionTest, ApplyReplacesValueVariableWithSetPattern) {
  // The Example 3.2 instantiation: applying (M5) to (V1)'s head puts
  // {<Z last stanford>} where Z' stood.
  TslQuery v1 = MustParse(testing::kV1, "V1");
  Substitution m5;
  ASSERT_TRUE(m5.BindTerm(OidVar("P'"), OidVar("P")));
  ASSERT_TRUE(m5.BindTerm(OidVar("X'"), OidVar("X")));
  ASSERT_TRUE(m5.BindTerm(ValVar("Y'"), ValVar("Y")));
  ASSERT_TRUE(m5.BindSet(ValVar("Z'"), OneMember("<Z last stanford>")));
  ObjectPattern instantiated = m5.Apply(v1.head);
  TslQuery q6 = MustParse(testing::kQ6);
  EXPECT_EQ(instantiated, q6.body[0].pattern)
      << "got: " << instantiated.ToString();
}

TEST(SubstitutionTest, ApplyRecursesIntoBoundPatterns) {
  Substitution s;
  ASSERT_TRUE(s.BindSet(ValVar("V"), OneMember("<A b W>")));
  ASSERT_TRUE(s.BindTerm(ValVar("W"), Atom("c")));
  TslQuery q = MustParse("<f(X) l V> :- <X a V>@db");
  ObjectPattern head = s.Apply(q.head);
  ASSERT_TRUE(head.value.is_set());
  ASSERT_EQ(head.value.set().size(), 1u);
  ASSERT_TRUE(head.value.set()[0].value.is_term());
  EXPECT_EQ(head.value.set()[0].value.term(), Atom("c"));
}

TEST(SubstitutionTest, UnifyTermsSharesBindingState) {
  Substitution s;
  EXPECT_TRUE(s.UnifyTerms(Term::MakeFunc("g", {OidVar("P")}),
                           Term::MakeFunc("g", {OidVar("P'")})));
  // P and P' are now aliased; a conflicting unification must fail.
  EXPECT_TRUE(s.UnifyTerms(OidVar("P"), Atom("p1")));
  EXPECT_FALSE(s.UnifyTerms(OidVar("P'"), Atom("p2")));
  EXPECT_TRUE(s.UnifyTerms(OidVar("P'"), Atom("p1")));
}

TEST(SubstitutionTest, UnifyTermsRefusesSetBoundVariables) {
  Substitution s;
  ASSERT_TRUE(s.BindSet(ValVar("Z"), OneMember("<A b c>")));
  EXPECT_FALSE(s.UnifyTerms(ValVar("Z"), Atom("x")));
}

TEST(SubstitutionTest, ToStringShowsBothKindsOfBindings) {
  Substitution s;
  ASSERT_TRUE(s.BindTerm(OidVar("P'"), OidVar("P")));
  ASSERT_TRUE(s.BindSet(ValVar("Z'"), OneMember("<Z last stanford>")));
  std::string rendered = s.ToString();
  EXPECT_NE(rendered.find("P' -> P"), std::string::npos);
  EXPECT_NE(rendered.find("Z' -> {<Z last stanford>}"), std::string::npos);
}

}  // namespace
}  // namespace tslrw
