#include "tsl/validate.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;

TEST(ValidateTest, PaperQueriesAreWellFormed) {
  for (std::string_view text :
       {testing::kQ1, testing::kQ2, testing::kV1, testing::kQ3, testing::kQ4,
        testing::kQ5, testing::kQ6, testing::kQ7, testing::kQ8, testing::kQ9,
        testing::kQ10, testing::kQ11, testing::kQ12, testing::kQ13,
        testing::kQ14}) {
    TslQuery q = MustParse(text);
    EXPECT_TRUE(ValidateQuery(q).ok())
        << ValidateQuery(q) << "\n  for: " << text;
  }
}

TEST(SafetyTest, DetectsUnsafeHeadVariable) {
  TslQuery q = MustParse("<f(P) l W> :- <P a V>@db");
  Status st = CheckSafety(q);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIllFormedQuery);
}

TEST(SafetyTest, SafeWhenHeadVarsCovered) {
  EXPECT_TRUE(CheckSafety(MustParse(testing::kQ1)).ok());
  EXPECT_TRUE(CheckSafety(MustParse("<f(P) l V> :- <P a V>@db")).ok());
}

TEST(HeadOidTest, RootMustBeFunctionTerm) {
  // A bare variable root would return source objects instead of minting an
  // answer tree root.
  TslQuery q = MustParse("<f(P) l V> :- <P a V>@db");
  q.head.oid = Term::MakeVar("P", VarKind::kObjectId);
  EXPECT_FALSE(CheckHeadOids(q).ok());
}

TEST(HeadOidTest, DuplicateHeadOidTermRejected) {
  // f(P) used for two distinct head objects.
  TslQuery q = MustParse("<f(P) l {<f(P) m V>}> :- <P a V>@db");
  EXPECT_FALSE(CheckHeadOids(q).ok());
}

TEST(HeadOidTest, DistinctSkolemsAccepted) {
  EXPECT_TRUE(CheckHeadOids(MustParse(testing::kQ1)).ok());
  EXPECT_TRUE(CheckHeadOids(MustParse(testing::kV1)).ok());
}

TEST(HeadOidTest, CopiedSourceObjectsAllowed) {
  // (Q10)'s head embeds <X Y Z> with a variable oid: copy semantics.
  EXPECT_TRUE(CheckHeadOids(MustParse(testing::kQ10)).ok());
}

TEST(HeadOidTest, ConstantHeadOidRejected) {
  TslQuery q = MustParse("<f(P) l {<f(X) m V>}> :- <P a {<X m V>}>@db");
  q.head.value.mutable_set()[0].oid = Term::MakeAtom("fixed");
  EXPECT_FALSE(CheckHeadOids(q).ok());
}

TEST(AcyclicTest, PathBodiesAreAcyclic) {
  EXPECT_TRUE(CheckAcyclicBody(MustParse(testing::kQ2)).ok());
  EXPECT_TRUE(CheckAcyclicBody(MustParse(testing::kQ9)).ok());
}

TEST(AcyclicTest, DirectCycleRejected) {
  // <X a {<X ...>}> asks for an object that contains itself.
  TslQuery q = MustParse("<f(X) l yes> :- <X a {<X b V>}>@db");
  EXPECT_FALSE(CheckAcyclicBody(q).ok());
}

TEST(AcyclicTest, CrossConditionCycleRejected) {
  // X above Y in one condition, Y above X in another.
  TslQuery q = MustParse(
      "<f(X) l yes> :- <X a {<Y b V>}>@db AND <Y c {<X d W>}>@db");
  EXPECT_FALSE(CheckAcyclicBody(q).ok());
}

TEST(AcyclicTest, DiamondIsFine) {
  // X above Y and Z, both above W: a DAG, not a cycle.
  TslQuery q = MustParse(
      "<f(X) l yes> :- <X a {<Y b {<W d U>}>}>@db AND "
      "<X a {<Z c {<W d U>}>}>@db");
  EXPECT_TRUE(CheckAcyclicBody(q).ok());
}

}  // namespace
}  // namespace tslrw
