// Determinism and stability: a rewriting engine that returns different
// plans on identical inputs is a debugging nightmare, so every public
// entry point must be reproducible run-to-run (no address-ordered
// containers leaking into results, no unstable iteration).

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "equiv/equivalence.h"
#include "eval/evaluator.h"
#include "fixtures.h"
#include "mediator/mediator.h"
#include "oem/generator.h"
#include "testing/random_rules.h"
#include "rewrite/contained.h"
#include "rewrite/rewriter.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

std::string RenderRewritings(const RewriteResult& r) {
  std::string out;
  for (const TslQuery& q : r.rewritings) out += q.ToString() + "\n";
  return out;
}

TEST(DeterminismTest, RewritingsAreStableAcrossRuns) {
  testing::RandomRules rules(99, 4, 4, "l0");
  std::vector<TslQuery> views = {rules.View("V1", "db"),
                                 rules.CopyView("V2", "db")};
  for (int i = 0; i < 4; ++i) {
    TslQuery query = rules.Query("Q", "db");
    auto a = RewriteQuery(query, views);
    auto b = RewriteQuery(query, views);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(RenderRewritings(*a), RenderRewritings(*b));
    EXPECT_EQ(a->mappings_found, b->mappings_found);
    EXPECT_EQ(a->candidates_generated, b->candidates_generated);
  }
}

TEST(DeterminismTest, ContainedRewritingsAreStable) {
  TslQuery view = MustParse(
      "<v(P') fem {<w(X') nm Z'>}> :- "
      "<P' person {<G' gender female>}>@db AND "
      "<P' person {<X' name Z'>}>@db",
      "Fem");
  TslQuery query = MustParse("<f(P) out Z> :- <P person {<X name Z>}>@db");
  auto a = FindMaximallyContainedRewriting(query, {view});
  auto b = FindMaximallyContainedRewriting(query, {view});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rewriting.ToString(), b->rewriting.ToString());
  EXPECT_EQ(a->equivalent, b->equivalent);
}

TEST(DeterminismTest, MediatorPlansAreStableAndCostOrdered) {
  std::vector<SourceDescription> sources;
  for (int i = 0; i < 3; ++i) {
    Capability cap;
    cap.view = MustParse(
        StrCat("<d", i, "(P') rec {<X' Y' Z'>}> :- <P' rec {<X' Y' Z'>}>@s",
               i % 2),
        StrCat("Dump", i));
    sources.push_back(SourceDescription{StrCat("s", i % 2), {cap}});
  }
  // Merge duplicate source entries (s0 appears twice).
  std::vector<SourceDescription> merged = {
      SourceDescription{"s0",
                        {sources[0].capabilities[0],
                         sources[2].capabilities[0]}},
      sources[1]};
  auto mediator = Mediator::Make(merged);
  ASSERT_TRUE(mediator.ok()) << mediator.status();
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P rec {<X l0 u>}>@s0 AND <P rec {<Y l1 w>}>@s0",
      "Q");
  auto a = mediator->Plan(query);
  auto b = mediator->Plan(query);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].ToString(), (*b)[i].ToString());
    if (i > 0) {
      EXPECT_LE((*a)[i - 1].cost, (*a)[i].cost);
    }
  }
}

TEST(DeterminismTest, RuleSetFusionConflictsAreDetected) {
  // Two rules fuse the same oid with contradictory atomic values: the
  // union evaluation must fail loudly, not last-write-win.
  SourceCatalog catalog;
  catalog.Put(MustParseDb(
      "database db { <p1 p { <a1 m u1> <a2 n u2> }> }"));
  TslRuleSet rules;
  rules.rules.push_back(MustParse("<f(P) out Z> :- <P p {<X m Z>}>@db", "A"));
  rules.rules.push_back(MustParse("<f(P) out Z> :- <P p {<X n Z>}>@db", "B"));
  auto answer = EvaluateRuleSet(rules, catalog);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kFusionConflict);
}

TEST(DeterminismTest, EquivalenceVerdictsAreStable) {
  testing::RandomRules rules(7, 4, 4, "l0");
  std::vector<TslQuery> pool;
  for (int i = 0; i < 4; ++i) pool.push_back(rules.Query("Q", "db"));
  for (const TslQuery& x : pool) {
    for (const TslQuery& y : pool) {
      auto a = AreEquivalent(x, y);
      auto b = AreEquivalent(x, y);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(*a, *b);
      // Symmetry, while we are here.
      auto rev = AreEquivalent(y, x);
      ASSERT_TRUE(rev.ok());
      EXPECT_EQ(*a, *rev);
    }
  }
}

}  // namespace
}  // namespace tslrw
