// The headline guarantee of the observability layer: for a fixed seed and
// a virtual clock, trace dumps are byte-identical run after run — across
// five consecutive runs, across verification parallelism (1 vs 8), and
// through the serving layer. Spans live on the deterministic control path
// and annotations carry only replayed counters, so nothing in a dump may
// depend on thread scheduling or wall time.

#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "common/virtual_clock.h"
#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "obs/trace.h"
#include "oem/generator.h"
#include "rewrite/rewriter.h"
#include "service/server.h"
#include "testing/random_rules.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

constexpr int kRuns = 5;

/// One traced rewrite of a RandomRules workload; returns both dumps.
std::pair<std::string, std::string> TracedRewrite(size_t parallelism) {
  // Seed 99's rules are pinned by random_rules_test.cc, so this workload
  // is itself a stable fixture.
  testing::RandomRules rules(99, 4, 4, "l0");
  std::vector<TslQuery> views = {rules.View("V1", "db"),
                                 rules.CopyView("V2", "db"),
                                 rules.DeepView("V3", "db")};
  TslQuery query = rules.Query("Q", "db");

  VirtualClock clock;
  Tracer tracer(&clock);
  RewriteOptions options;
  options.parallelism = parallelism;
  options.tracer = &tracer;
  auto result = RewriteQuery(query, views, options);
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(tracer.Validate().ok()) << tracer.Validate().ToString();
  return {tracer.ToText(), tracer.ToChromeJson()};
}

TEST(TraceDeterminismTest, RewriteTraceIsByteIdenticalAcrossFiveRuns) {
  const auto [text, json] = TracedRewrite(/*parallelism=*/1);
  EXPECT_NE(text.find("rewrite.search"), std::string::npos) << text;
  for (int run = 1; run < kRuns; ++run) {
    const auto [t, j] = TracedRewrite(/*parallelism=*/1);
    EXPECT_EQ(t, text) << "run " << run;
    EXPECT_EQ(j, json) << "run " << run;
  }
}

/// Blanks the `workers` annotation — the one *configuration* echo that
/// legitimately differs between parallelism settings. Everything else in a
/// dump must match byte for byte.
std::string BlankWorkers(std::string dump, size_t workers) {
  const std::string text_form = StrCat("workers=", workers);
  const std::string json_form = StrCat("\"workers\":\"", workers, "\"");
  for (const std::string& needle : {text_form, json_form}) {
    size_t at;
    while ((at = dump.find(needle)) != std::string::npos) {
      dump.replace(at, needle.size(), "workers:N");
    }
  }
  return dump;
}

TEST(TraceDeterminismTest, RewriteTraceIsIdenticalAtParallelism8) {
  // Span *content* may not depend on worker scheduling: the dump at
  // parallelism 8 must equal the sequential one on every run, byte for
  // byte up to the `workers` config annotation (scheduling-dependent
  // values live in metrics, never in spans).
  auto [text, json] = TracedRewrite(/*parallelism=*/1);
  text = BlankWorkers(std::move(text), 1);
  json = BlankWorkers(std::move(json), 1);
  for (int run = 0; run < kRuns; ++run) {
    auto [t, j] = TracedRewrite(/*parallelism=*/8);
    EXPECT_EQ(BlankWorkers(std::move(t), 8), text) << "run " << run;
    EXPECT_EQ(BlankWorkers(std::move(j), 8), json) << "run " << run;
  }
}

/// One traced fault-tolerant mediation; returns the text dump.
std::string TracedMediation(uint64_t seed) {
  SourceCatalog catalog;
  GeneratorOptions data;
  data.seed = 42;
  data.num_roots = 8;
  data.max_depth = 2;
  data.root_label = "rec";
  catalog.Put(GenerateOemDatabase("s0", data));

  Capability cap;
  cap.view = ParseTslQuery(
                 "<d(P') rec {<X' Y' Z'>}> :- <P' rec {<X' Y' Z'>}>@s0",
                 "Dump")
                 .ValueOrDie();
  auto mediator = Mediator::Make({SourceDescription{"s0", {cap}}});
  EXPECT_TRUE(mediator.ok()) << mediator.status();
  TslQuery query =
      ParseTslQuery("<f(P) out yes> :- <P rec {<X l0 v0>}>@s0", "Q")
          .ValueOrDie();

  VirtualClock clock;
  Tracer tracer(&clock);
  CatalogWrapper base;
  FaultInjector injector(&base, seed, &clock);
  injector.set_tracer(&tracer);
  FaultSchedule flaky;
  flaky.steady_state = Fault::Flaky(0.5);
  injector.SetSchedule("s0", flaky);

  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = &clock;
  policy.retry.max_attempts = 4;
  policy.retry.initial_backoff_ticks = 1;
  policy.tracer = &tracer;
  auto answer = mediator->Answer(query, catalog, policy);
  EXPECT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(tracer.Validate().ok()) << tracer.Validate().ToString();
  return tracer.ToText();
}

TEST(TraceDeterminismTest, FaultyMediationTraceReplaysExactly) {
  const std::string first = TracedMediation(/*seed=*/7);
  EXPECT_NE(first.find("mediator.fetch"), std::string::npos) << first;
  for (int run = 1; run < kRuns; ++run) {
    EXPECT_EQ(TracedMediation(/*seed=*/7), first) << "run " << run;
  }
  // A different seed draws a different fault pattern — the determinism is
  // per seed, not a constant output.
  EXPECT_NE(TracedMediation(/*seed=*/8), first);
}

/// One traced request through a fresh QueryServer (cold plan cache), via
/// the synchronous Answer path so the test drives exactly one request.
std::string TracedServe(uint64_t seed) {
  SourceCatalog catalog;
  GeneratorOptions data;
  data.seed = 42;
  data.num_roots = 8;
  data.max_depth = 2;
  data.root_label = "rec";
  catalog.Put(GenerateOemDatabase("s0", data));
  Capability cap;
  cap.view = ParseTslQuery(
                 "<d(P') rec {<X' Y' Z'>}> :- <P' rec {<X' Y' Z'>}>@s0",
                 "Dump")
                 .ValueOrDie();
  auto mediator = Mediator::Make({SourceDescription{"s0", {cap}}});
  EXPECT_TRUE(mediator.ok()) << mediator.status();

  std::map<std::string, FaultSchedule> schedules;
  FaultSchedule blip;
  blip.scripted = {Fault::Unavailable()};
  schedules["s0"] = blip;

  ServerOptions options;
  options.threads = 1;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ticks = 1;
  QueryServer server(std::move(mediator).value(), std::move(catalog),
                     options,
                     MakeFaultInjectingWrapperFactory(std::move(schedules)));

  TslQuery query =
      ParseTslQuery("<f(P) out yes> :- <P rec {<X l0 v0>}>@s0", "Q")
          .ValueOrDie();
  VirtualClock placeholder;
  Tracer tracer(&placeholder);  // the server rebinds its request clock
  ServeOptions serve;
  serve.seed = seed;
  serve.tracer = &tracer;
  auto response = server.Answer(query, serve);
  EXPECT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(tracer.Validate().ok()) << tracer.Validate().ToString();
  return tracer.ToText();
}

TEST(TraceDeterminismTest, ServePathTraceIsByteIdenticalAcrossRuns) {
  const std::string first = TracedServe(/*seed=*/5);
  EXPECT_NE(first.find("serve.request"), std::string::npos) << first;
  EXPECT_NE(first.find("plan_cache=miss"), std::string::npos) << first;
  EXPECT_NE(first.find("attempt 1: Unavailable"), std::string::npos)
      << first;
  for (int run = 1; run < kRuns; ++run) {
    EXPECT_EQ(TracedServe(/*seed=*/5), first) << "run " << run;
  }
}

}  // namespace
}  // namespace tslrw
