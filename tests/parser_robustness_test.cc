// Robustness fuzzing (deterministic): mutated and truncated inputs must
// never crash or hang any parser — they either parse or return a Status.
// This locks in the no-exceptions, no-UB error discipline of the parsing
// layer against byte-level garbage.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "constraints/dtd.h"
#include "fixtures.h"
#include "oem/parser.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

constexpr std::string_view kTslSeeds[] = {
    testing::kQ1, testing::kQ2, testing::kV1, testing::kQ5, testing::kQ9,
    testing::kQ10, testing::kQ11, testing::kQ14,
};

constexpr std::string_view kOemSeed = R"(
  database db {
    <p1 person { <n1 name { <l1 last "stanford"> }> <ph1 phone "555"> @p2 }>
    <p2 person { <g2 gender male> }>
  })";

constexpr std::string_view kDtdSeed = R"(
  <!ELEMENT p (name, phone?, address*)>
  <!ELEMENT name (last | alias)>
  <!ELEMENT phone CDATA>
)";

std::string Mutate(std::string_view seed, std::mt19937_64* rng) {
  std::string text(seed);
  std::uniform_int_distribution<int> mutation_count(1, 6);
  static constexpr char kNoise[] = "<>{}()@:-'\"% \nABZabz019_*?!|,";
  int n = mutation_count(*rng);
  for (int i = 0; i < n && !text.empty(); ++i) {
    size_t pos = std::uniform_int_distribution<size_t>(
        0, text.size() - 1)(*rng);
    switch (std::uniform_int_distribution<int>(0, 3)(*rng)) {
      case 0:  // replace
        text[pos] = kNoise[std::uniform_int_distribution<size_t>(
            0, sizeof(kNoise) - 2)(*rng)];
        break;
      case 1:  // delete
        text.erase(pos, 1);
        break;
      case 2:  // insert
        text.insert(pos, 1,
                    kNoise[std::uniform_int_distribution<size_t>(
                        0, sizeof(kNoise) - 2)(*rng)]);
        break;
      case 3:  // truncate
        text.resize(pos);
        break;
    }
  }
  return text;
}

class ParserRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRobustnessTest, MutatedTslNeverCrashes) {
  std::mt19937_64 rng(GetParam());
  for (std::string_view seed : kTslSeeds) {
    for (int i = 0; i < 40; ++i) {
      std::string text = Mutate(seed, &rng);
      auto result = ParseTslQuery(text);
      // Either outcome is fine; what matters is that we got here.
      if (result.ok()) {
        // A successful parse must round-trip through its own printer.
        auto round = ParseTslQuery(result->ToString());
        EXPECT_TRUE(round.ok())
            << "printer produced unparsable text for input: " << text;
      }
    }
  }
}

TEST_P(ParserRobustnessTest, MutatedOemNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  for (int i = 0; i < 120; ++i) {
    std::string text = Mutate(kOemSeed, &rng);
    auto result = ParseOemDatabase(text);
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok())
          << "parser accepted an invalid database for: " << text;
      auto round = ParseOemDatabase(result->ToString());
      EXPECT_TRUE(round.ok())
          << round.status() << "\n  printed:\n" << result->ToString()
          << "  original input: " << text;
    }
  }
}

TEST_P(ParserRobustnessTest, MutatedDtdNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 17 + 3);
  for (int i = 0; i < 120; ++i) {
    std::string text = Mutate(kDtdSeed, &rng);
    auto result = Dtd::Parse(text);
    if (result.ok()) {
      auto round = Dtd::Parse(result->ToString());
      EXPECT_TRUE(round.ok());
    }
  }
}

TEST(ParserRobustnessTest, PathologicalInputs) {
  // Deep nesting, long identifiers, empty and whitespace-only inputs.
  std::string deep_open(2000, '{');
  EXPECT_FALSE(ParseTslQuery(deep_open).ok());
  EXPECT_FALSE(ParseTslQuery("").ok());
  EXPECT_FALSE(ParseTslQuery("   \n\t  ").ok());
  EXPECT_FALSE(ParseOemDatabase(std::string(5000, '<')).ok());
  std::string long_ident(100000, 'a');
  EXPECT_FALSE(ParseTslQuery(long_ident).ok());
  // A legitimately deep (but balanced) pattern parses fine.
  std::string nested_head = "u";
  std::string nested_body = "u";
  for (int d = 60; d >= 1; --d) {
    nested_body = "{<X" + std::to_string(d) + " l " + nested_body + ">}";
  }
  auto deep = ParseTslQuery("<f(X1) out yes> :- <R root " + nested_body +
                            ">@db");
  EXPECT_TRUE(deep.ok()) << deep.status();
}

TEST(ParserRobustnessTest, ParseErrorsCarrySourcePositions) {
  auto truncated = ParseTslQuery("<f(P out");
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().message().find("1:6"), std::string::npos)
      << truncated.status();
  auto second_line = ParseTslQuery("<f(P) out yes> :-\n  <P p V @db");
  ASSERT_FALSE(second_line.ok());
  EXPECT_NE(second_line.status().message().find("2:"), std::string::npos)
      << second_line.status();
}

TEST(ParserRobustnessTest, SortClashErrorNamesBothPositions) {
  // Regression: the V_O/V_C disjointness error used to come without any
  // location; it now points at the first object-id use and the first
  // label/value use of the clashing name.
  auto clash = ParseTslQuery("<f(X) out yes> :- <X a {<Y X Z>}>@db");
  ASSERT_FALSE(clash.ok());
  EXPECT_NE(clash.status().message().find("object id at 1:19"),
            std::string::npos)
      << clash.status();
  EXPECT_NE(clash.status().message().find("label/value at 1:25"),
            std::string::npos)
      << clash.status();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace tslrw
