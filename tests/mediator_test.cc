#include "mediator/mediator.h"

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "fixtures.h"
#include "mediator/cache.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

/// Two bibliographic sources with different publications (the Fig. 1/2
/// integration scenario). Source s1 only supports year-filtered queries;
/// source s2 exports everything.
SourceCatalog BiblioCatalog() {
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database s1 {
      <a1 publication {
        <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
      }>
      <a2 publication {
        <t2 title "Constraints"> <v2 venue "VLDB"> <y2 year "1997">
      }>
      <a3 publication {
        <t3 title "Mediators"> <v3 venue "SIGMOD"> <y3 year "1993">
      }>
    })"));
  catalog.Put(MustParseDb(R"(
    database s2 {
      <b1 publication {
        <u1 title "Wrappers"> <w1 venue "SIGMOD"> <x1 year "1997">
      }>
      <b2 publication {
        <u2 title "Warehouses"> <w2 venue "SIGMOD"> <x2 year "1996">
      }>
    })"));
  return catalog;
}

/// s1's interface: only year-1997 queries (a fixed-constant capability).
/// The view republishes matching publications with all their subobjects.
Capability Year97Capability() {
  Capability cap;
  cap.view = MustParse(
      "<y97(P') pub {<X' Y' Z'>}> :- "
      "<P' publication {<U' year \"1997\">}>@s1 AND "
      "<P' publication {<X' Y' Z'>}>@s1",
      "Y97");
  return cap;
}

/// s2's interface: any publication dump.
Capability DumpCapability() {
  Capability cap;
  cap.view = MustParse(
      "<dump(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@s2",
      "Dump2");
  return cap;
}

Mediator MakeBiblioMediator() {
  SourceDescription s1{"s1", {Year97Capability()}};
  SourceDescription s2{"s2", {DumpCapability()}};
  auto mediator = Mediator::Make({s1, s2});
  EXPECT_TRUE(mediator.ok()) << mediator.status();
  return std::move(mediator).ValueOrDie();
}

TEST(MediatorTest, ValidationCatchesBadDescriptions) {
  Capability unnamed = Year97Capability();
  unnamed.view.name.clear();
  EXPECT_FALSE(
      Mediator::Make({SourceDescription{"s1", {unnamed}}}).ok());

  Capability foreign = Year97Capability();
  EXPECT_FALSE(
      Mediator::Make({SourceDescription{"s2", {foreign}}}).ok());

  Capability dup = Year97Capability();
  EXPECT_FALSE(Mediator::Make({SourceDescription{
                   "s1", {Year97Capability(), dup}}})
                   .ok());

  Capability ghost_param = Year97Capability();
  ghost_param.bound_variables = {"Nope'"};
  EXPECT_FALSE(
      Mediator::Make({SourceDescription{"s1", {ghost_param}}}).ok());
}

TEST(MediatorTest, Sigmod97RunningExample) {
  // The \S1 running example: all "SIGMOD 97" publications. s1 can only be
  // asked for year=1997; the SIGMOD filter runs at the mediator, expressed
  // as a condition over the view's output.
  Mediator mediator = MakeBiblioMediator();
  TslQuery query = MustParse(
      "<f(P) sigmod97 yes> :- "
      "<P publication {<U year \"1997\">}>@s1 AND "
      "<P publication {<V venue \"SIGMOD\">}>@s1",
      "Sigmod97");
  auto plans = mediator.Plan(query);
  ASSERT_TRUE(plans.ok()) << plans.status();
  ASSERT_GE(plans->size(), 1u);
  EXPECT_EQ(plans->front().views_used, std::vector<std::string>{"Y97"});

  SourceCatalog catalog = BiblioCatalog();
  auto answer = mediator.Execute(plans->front(), catalog);
  ASSERT_TRUE(answer.ok()) << answer.status();
  // Only a1 ("Views", SIGMOD, 1997) qualifies in s1.
  EXPECT_EQ(answer->roots().size(), 1u);
  EXPECT_NE(answer->Find(Term::MakeFunc("f", {Term::MakeAtom("a1")})),
            nullptr);

  // Cross-check against evaluating the user query on the raw source.
  auto direct = Evaluate(query, catalog, {.answer_name = "direct"});
  ASSERT_TRUE(direct.ok());
  OemDatabase renamed = *answer;
  renamed.set_name("direct");
  EXPECT_TRUE(renamed.Equals(*direct));
}

TEST(MediatorTest, QueryOutsideCapabilitiesHasNoPlan) {
  // s1 cannot answer year-1993 queries: its only capability fixes 1997.
  Mediator mediator = MakeBiblioMediator();
  TslQuery query = MustParse(
      "<f(P) sigmod93 yes> :- "
      "<P publication {<U year \"1993\">}>@s1 AND "
      "<P publication {<V venue \"SIGMOD\">}>@s1",
      "Sigmod93");
  auto plans = mediator.Plan(query);
  ASSERT_TRUE(plans.ok()) << plans.status();
  EXPECT_TRUE(plans->empty());
  auto answer = mediator.Answer(query, BiblioCatalog());
  EXPECT_FALSE(answer.ok());
  EXPECT_TRUE(answer.status().IsNotFound());
}

TEST(MediatorTest, PlansSortedByCost) {
  // Against s2's dump capability, both single-view plans and any larger
  // ones are found; the cheapest comes first.
  Mediator mediator = MakeBiblioMediator();
  TslQuery query = MustParse(
      "<f(P) s2pub yes> :- <P publication {<W venue \"SIGMOD\">}>@s2",
      "S2Pubs");
  auto plans = mediator.Plan(query);
  ASSERT_TRUE(plans.ok()) << plans.status();
  ASSERT_GE(plans->size(), 1u);
  for (size_t i = 1; i < plans->size(); ++i) {
    EXPECT_LE((*plans)[i - 1].cost, (*plans)[i].cost);
  }
}

TEST(MediatorTest, ParameterizedCapabilityRequiresConstant) {
  // s2 also offers "publications with venue = $W": the parameter surfaces
  // through the head Skolem and must be instantiated by the rewriting.
  Capability by_venue;
  by_venue.view = MustParse(
      "<bv(P',W') pub {<X' Y' Z'>}> :- "
      "<P' publication {<V' venue W'>}>@s2 AND "
      "<P' publication {<X' Y' Z'>}>@s2",
      "ByVenue");
  by_venue.bound_variables = {"W'"};
  auto mediator = Mediator::Make({SourceDescription{"s2", {by_venue}}});
  ASSERT_TRUE(mediator.ok()) << mediator.status();

  // Constant venue: the parameter is bound; a plan exists.
  TslQuery constant = MustParse(
      "<f(P) out yes> :- <P publication {<V venue \"SIGMOD\">}>@s2", "C");
  auto plans = mediator->Plan(constant);
  ASSERT_TRUE(plans.ok()) << plans.status();
  EXPECT_GE(plans->size(), 1u);

  // Venue left variable: the source cannot run the template; no plan.
  TslQuery open = MustParse(
      "<f(P,W) out W> :- <P publication {<V venue W>}>@s2", "O");
  auto open_plans = mediator->Plan(open);
  ASSERT_TRUE(open_plans.ok()) << open_plans.status();
  EXPECT_TRUE(open_plans->empty());
}

TEST(MediatorTest, ConsolidatesAcrossSources) {
  // A two-source query joins nothing but unions per-source answers under
  // distinct Skolem oids.
  Mediator mediator = MakeBiblioMediator();
  TslQuery query = MustParse(
      "<f(P,R) pair yes> :- "
      "<P publication {<U year \"1997\">}>@s1 AND "
      "<R publication {<W year \"1997\">}>@s2",
      "Pairs");
  auto answer = mediator.Answer(query, BiblioCatalog());
  ASSERT_TRUE(answer.ok()) << answer.status();
  // a1, a2 from s1 x b1 from s2 = 2 pairs.
  EXPECT_EQ(answer->result.roots().size(), 2u);
  EXPECT_TRUE(answer->complete()) << answer->report.ToString();
  EXPECT_TRUE(answer->unreachable_sources.empty());
}

// --- Cached queries (\S1, Lore scenario) ------------------------------------

TEST(QueryCacheTest, AnswersFromCacheWithoutTouchingBase) {
  SourceCatalog catalog = BiblioCatalog();
  QueryCache cache;
  // Cache "all SIGMOD publications" (with their subobjects).
  TslQuery sigmod_all = MustParse(
      "<c(P') sig {<X' Y' Z'>}> :- "
      "<P' publication {<V' venue \"SIGMOD\">}>@s1 AND "
      "<P' publication {<X' Y' Z'>}>@s1",
      "SigmodCache");
  ASSERT_TRUE(cache.InsertAndMaterialize(sigmod_all, catalog).ok());
  EXPECT_EQ(cache.size(), 1u);

  // "SIGMOD 97" filters the cached result for 1997 — the paper's \S1
  // cached-query illustration.
  TslQuery query = MustParse(
      "<f(P) sigmod97 yes> :- "
      "<P publication {<V venue \"SIGMOD\">}>@s1 AND "
      "<P publication {<U year \"1997\">}>@s1",
      "Sigmod97");
  SourceCatalog empty;  // prove base data is not needed
  auto answer = cache.TryAnswer(query, empty, /*allow_base_fallback=*/false);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->from_cache);
  EXPECT_TRUE(answer->base_conditions.empty());  // a pure cache hit
  EXPECT_EQ(answer->result.roots().size(), 1u);  // only a1

  // Matches direct evaluation over the base.
  auto direct = Evaluate(query, catalog, {.answer_name = "answer"});
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(answer->result.Equals(*direct));
}

TEST(QueryCacheTest, MissWithoutFallbackIsNotFound) {
  QueryCache cache;
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P publication {<U year \"1997\">}>@s1", "Q");
  auto answer =
      cache.TryAnswer(query, BiblioCatalog(), /*allow_base_fallback=*/false);
  EXPECT_FALSE(answer.ok());
  EXPECT_TRUE(answer.status().IsNotFound());
}

TEST(QueryCacheTest, MissWithFallbackEvaluatesBase) {
  QueryCache cache;
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P publication {<U year \"1997\">}>@s1", "Q");
  auto answer =
      cache.TryAnswer(query, BiblioCatalog(), /*allow_base_fallback=*/true);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_FALSE(answer->from_cache);
  EXPECT_EQ(answer->result.roots().size(), 2u);  // a1, a2
  // Full fallback: every condition ran against base data.
  ASSERT_EQ(answer->base_conditions.size(), query.body.size());
  EXPECT_EQ(answer->base_conditions[0].source, "s1");
}

TEST(QueryCacheTest, PartialRewritingReportsBaseConditions) {
  // The cache covers the s1 half of the query; the s2 condition has no
  // cached statement and must run against base data. The answer says so.
  SourceCatalog catalog = BiblioCatalog();
  QueryCache cache;
  TslQuery sigmod_all = MustParse(
      "<c(P') sig {<X' Y' Z'>}> :- "
      "<P' publication {<V' venue \"SIGMOD\">}>@s1 AND "
      "<P' publication {<X' Y' Z'>}>@s1",
      "SigmodCache");
  ASSERT_TRUE(cache.InsertAndMaterialize(sigmod_all, catalog).ok());

  TslQuery query = MustParse(
      "<f(P,R) pair yes> :- "
      "<P publication {<V venue \"SIGMOD\">}>@s1 AND "
      "<R publication {<W year \"1997\">}>@s2",
      "Mixed");
  auto answer = cache.TryAnswer(query, catalog, /*allow_base_fallback=*/true);
  ASSERT_TRUE(answer.ok()) << answer.status();
  ASSERT_FALSE(answer->base_conditions.empty());
  for (const Condition& c : answer->base_conditions) {
    EXPECT_EQ(c.source, "s2") << c.ToString();
  }
  EXPECT_LT(answer->base_conditions.size(), answer->rewriting.body.size())
      << "the s1 side should have come from the cache";
}

TEST(MediatorTest, AnalyzerRefusesErrorLevelCapabilityViews) {
  // An unsafe capability view (head variable W' absent from the body)
  // would poison every plan using it; Make refuses with the analyzer's
  // coded diagnostics instead of failing later at rewrite time.
  Capability broken;
  broken.view =
      MustParse("<bad(P') out W'> :- <P' publication V'>@s1", "Bad");
  auto mediator = Mediator::Make({SourceDescription{"s1", {broken}}});
  ASSERT_FALSE(mediator.ok());
  EXPECT_EQ(mediator.status().code(), StatusCode::kIllFormedQuery);
  EXPECT_NE(mediator.status().message().find("TSL001"), std::string::npos)
      << mediator.status();
}

TEST(MediatorTest, AnalysisReportRetainsWarnings) {
  // Two interchangeable capability views: each is dead given the other, a
  // warning (TSL104) worth surfacing but no reason to refuse the sources.
  Capability a;
  a.view = MustParse("<da(X') pub Z'> :- <X' publication Z'>@s1", "Da");
  Capability b;
  b.view = MustParse("<db(X') pub Z'> :- <X' publication Z'>@s1", "Db");
  auto mediator = Mediator::Make({SourceDescription{"s1", {a, b}}});
  ASSERT_TRUE(mediator.ok()) << mediator.status();
  EXPECT_FALSE(mediator->analysis().has_errors());
  EXPECT_GE(mediator->analysis().count(Severity::kWarning), 2u)
      << mediator->analysis().ToString();
}

TEST(QueryCacheTest, InsertValidatesNames) {
  QueryCache cache;
  TslQuery unnamed = MustParse(testing::kV1);
  unnamed.name.clear();
  EXPECT_FALSE(cache.Insert(unnamed, OemDatabase("x")).ok());
  TslQuery named = MustParse(testing::kV1, "V1");
  EXPECT_FALSE(cache.Insert(named, OemDatabase("wrong")).ok());
  EXPECT_TRUE(cache.Insert(named, OemDatabase("V1")).ok());
}

}  // namespace
}  // namespace tslrw
