// Cross-module integration scenarios: the full Fig. 2 pipeline combined
// with \S3.3 structural constraints, repository caching on top of a
// mediator, and end-to-end operational checks that tie several modules
// together the way a deployment would.

#include <gtest/gtest.h>

#include "constraints/dataguide.h"
#include "constraints/dtd.h"
#include "eval/evaluator.h"
#include "fixtures.h"
#include "mediator/cache.h"
#include "mediator/mediator.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

SourceCatalog PeopleCatalog() {
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database s1 {
      <p1 p {
        <n1 name { <l1 last stanford> <f1 first jeff> }>
        <ph1 phone "650-1"> }>
      <p2 p {
        <n2 name { <l2 last widom> <f2 first jennifer> }>
        <ph2 phone "650-2"> }>
    })"));
  return catalog;
}

/// The only interface s1 offers is the label/value-splitting (V1).
Capability SplitCapability() {
  Capability cap;
  cap.view = MustParse(
      "<g(P') p {<pp(P',Y') pr Y'> <h(X') v Z'>}> :- <P' p {<X' Y' Z'>}>@s1",
      "Split");
  return cap;
}

TEST(IntegrationTest, DtdUnlocksMediatorPlan) {
  // Without constraints, the Example 3.3 argument applies: the split view
  // cannot answer a name-specific query, so the mediator has no plan.
  TslQuery query = MustParse(
      "<f(P) stanford yes> :- <P p {<X name {<Z last stanford>}>}>@s1",
      "Q7");
  auto plain = Mediator::Make({SourceDescription{"s1", {SplitCapability()}}});
  ASSERT_TRUE(plain.ok());
  auto no_plans = plain->Plan(query);
  ASSERT_TRUE(no_plans.ok()) << no_plans.status();
  EXPECT_TRUE(no_plans->empty());

  // With the \S3.3 DTD, Example 3.5's derivation makes the plan valid.
  auto dtd = Dtd::Parse(testing::kPersonDtd);
  ASSERT_TRUE(dtd.ok());
  StructuralConstraints constraints(std::move(dtd).value());
  auto informed = Mediator::Make(
      {SourceDescription{"s1", {SplitCapability()}}}, &constraints);
  ASSERT_TRUE(informed.ok());
  auto plans = informed->Plan(query);
  ASSERT_TRUE(plans.ok()) << plans.status();
  ASSERT_GE(plans->size(), 1u);

  // Execute the plan and cross-check against direct evaluation.
  SourceCatalog catalog = PeopleCatalog();
  auto via_mediator = informed->Execute(plans->front(), catalog);
  ASSERT_TRUE(via_mediator.ok()) << via_mediator.status();
  auto direct = Evaluate(query, catalog, {.answer_name = "Q7"});
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(via_mediator->Equals(*direct))
      << "mediator:\n" << via_mediator->ToString()
      << "direct:\n" << direct->ToString();
  EXPECT_EQ(direct->roots().size(), 1u);  // only p1 has last=stanford
}

TEST(IntegrationTest, InstanceDerivedConstraintsAlsoUnlockThePlan) {
  // Same scenario, but the constraints come from the data itself
  // (DataGuide-style inference) instead of an authored DTD.
  SourceCatalog catalog = PeopleCatalog();
  auto dtd = InferDtdFromData(*catalog.Find("s1").value());
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  StructuralConstraints constraints(std::move(dtd).value());
  ASSERT_TRUE(constraints.HasUniqueChild("p", "name"));
  ASSERT_EQ(constraints.InferMiddleLabel("p", "last"), "name");

  TslQuery query = MustParse(
      "<f(P) stanford yes> :- <P p {<X name {<Z last stanford>}>}>@s1",
      "Q7");
  auto mediator = Mediator::Make(
      {SourceDescription{"s1", {SplitCapability()}}}, &constraints);
  ASSERT_TRUE(mediator.ok());
  auto plans = mediator->Plan(query);
  ASSERT_TRUE(plans.ok()) << plans.status();
  EXPECT_GE(plans->size(), 1u);
}

TEST(IntegrationTest, CacheInFrontOfMediatorAnswers) {
  // Repository pattern: cache a broad mediator answer, serve narrower
  // queries from the cache without touching sources again.
  SourceCatalog catalog = PeopleCatalog();
  QueryCache cache;
  TslQuery broad = MustParse(
      "<c(P') person {<X' Y' Z'>}> :- <P' p {<X' Y' Z'>}>@s1", "AllPeople");
  ASSERT_TRUE(cache.InsertAndMaterialize(broad, catalog).ok());

  TslQuery narrow = MustParse(
      "<f(P) has-phone N> :- <P p {<H phone N>}>@s1", "Phones");
  SourceCatalog unavailable;  // sources offline
  auto answer =
      cache.TryAnswer(narrow, unavailable, /*allow_base_fallback=*/false);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->from_cache);
  EXPECT_EQ(answer->result.roots().size(), 2u);

  auto direct = Evaluate(narrow, catalog, {.answer_name = "answer"});
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(answer->result.Equals(*direct));
}

TEST(IntegrationTest, MaterializedViewChainsThroughShellPrimitives) {
  // Materialize a view, define a second view over the first, rewrite a
  // query down the chain, evaluate everything, compare — the full stack.
  SourceCatalog catalog = PeopleCatalog();
  TslQuery v1 = MustParse(
      "<a(P') lvl1 {<aa(X') m Z'>}> :- <P' p {<X' phone Z'>}>@s1", "L1");
  auto m1 = MaterializeView(v1, catalog);
  ASSERT_TRUE(m1.ok());
  catalog.Put(std::move(*m1));
  TslQuery v2 = MustParse(
      "<b(P'') lvl2 {<bb(X'') n Z''>}> :- <a(P'') lvl1 {<aa(X'') m Z''>}>@L1",
      "L2");
  auto m2 = MaterializeView(v2, catalog);
  ASSERT_TRUE(m2.ok());
  catalog.Put(std::move(*m2));
  auto answer = Evaluate(
      MustParse("<f(P) out N> :- <b(P) lvl2 {<bb(X) n N>}>@L2", "Q"),
      catalog);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->roots().size(), 2u);
}

}  // namespace
}  // namespace tslrw
