#include "tsl/ast.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;

TEST(AstTest, PatternValueAccessors) {
  PatternValue term = PatternValue::FromTerm(Term::MakeAtom("x"));
  EXPECT_TRUE(term.is_term());
  EXPECT_FALSE(term.is_set());
  PatternValue empty = PatternValue::FromSet({});
  EXPECT_TRUE(empty.is_set());
  EXPECT_TRUE(empty.set().empty());
  EXPECT_EQ(empty.ToString(), "{}");
  // Default-constructed is the empty set pattern.
  PatternValue def;
  EXPECT_TRUE(def.is_set());
  EXPECT_EQ(def, empty);
  EXPECT_NE(def, term);
}

TEST(AstTest, CollectVariablesWalksEverything) {
  TslQuery q = MustParse(testing::kQ1);
  std::set<Term> head_vars = q.HeadVariables();
  EXPECT_EQ(head_vars.size(), 4u);  // P, X, Y, Z
  std::set<Term> body_vars = q.BodyVariables();
  EXPECT_EQ(body_vars.size(), 5u);  // P, G, X, Y, Z
}

TEST(AstTest, SourcesListsDistinctSources) {
  TslQuery q = MustParse(
      "<f(A,B) pair yes> :- <A x U>@db1 AND <B y V>@db2 AND <A x W>@db1");
  EXPECT_EQ(q.Sources(), (std::set<std::string>{"db1", "db2"}));
}

TEST(AstTest, ApplyTermSubstitutionReachesNestedPatterns) {
  TslQuery q = MustParse(testing::kQ7);
  TermSubstitution subst;
  subst.Bind(Term::MakeVar("Z", VarKind::kObjectId), Term::MakeAtom("z9"));
  TslQuery out = ApplyTermSubstitution(subst, q);
  EXPECT_NE(out.ToString().find("z9"), std::string::npos);
  EXPECT_EQ(out.ToString().find("<Z "), std::string::npos);
}

TEST(AstTest, RenameVariablesApartIsConsistent) {
  TslQuery q = MustParse(testing::kQ2);
  TslQuery renamed = RenameVariablesApart(q, "_r1");
  // Same shape, new names everywhere, sorts preserved.
  std::set<Term> vars = renamed.BodyVariables();
  for (const Term& v : vars) {
    EXPECT_NE(v.var_name().find("_r1"), std::string::npos) << v.ToString();
  }
  // P in head and both body conditions stays a single variable.
  EXPECT_TRUE(vars.count(Term::MakeVar("P_r1", VarKind::kObjectId)));
  std::set<Term> original = q.BodyVariables();
  EXPECT_EQ(vars.size(), original.size());
}

TEST(AstTest, RenameVariablesApartKeepsSemanticsParseable) {
  TslQuery q = MustParse(testing::kQ10);
  TslQuery renamed = RenameVariablesApart(q, "_v2");
  TslQuery round = MustParse(renamed.ToString());
  EXPECT_EQ(renamed, round);
}

TEST(AstTest, WithDefaultSourceFillsOnlyEmpty) {
  TslQuery q = MustParse(
      "<f(A,B) pair yes> :- <A x U> AND <B y V>@named");
  TslQuery filled = WithDefaultSource(q, "db");
  EXPECT_EQ(filled.body[0].source, "db");
  EXPECT_EQ(filled.body[1].source, "named");
}

TEST(AstTest, RuleSetToStringOneRulePerLine) {
  TslRuleSet rules;
  rules.rules.push_back(MustParse(testing::kQ3, "A"));
  rules.rules.push_back(MustParse(testing::kQ5, "B"));
  std::string rendered = rules.ToString();
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 1);
}

TEST(AstTest, OrderingIsTotalOnPatterns) {
  TslQuery q2 = MustParse(testing::kQ2);
  std::set<Condition> conditions(q2.body.begin(), q2.body.end());
  EXPECT_EQ(conditions.size(), 2u);
  EXPECT_FALSE(q2.body[0] < q2.body[0]);
}

}  // namespace
}  // namespace tslrw
