#include "rewrite/minimize.h"

#include <gtest/gtest.h>

#include "constraints/dtd.h"
#include "equiv/equivalence.h"
#include "fixtures.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;

TEST(MinimizeTest, RemovesSubsumedCondition) {
  // The wildcard condition is implied by the constant one.
  TslQuery q = MustParse(
      "<f(P) out yes> :- <P p {<X l leland>}>@db AND <P p {<Y l W>}>@db");
  auto minimized = MinimizeQuery(q);
  ASSERT_TRUE(minimized.ok()) << minimized.status();
  EXPECT_EQ(minimized->body.size(), 1u);
  auto eq = AreEquivalent(*minimized, q);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(MinimizeTest, KeepsIndependentConditions) {
  TslQuery q = MustParse(
      "<f(P) out yes> :- <P p {<X a u1>}>@db AND <P p {<Y b u2>}>@db");
  auto minimized = MinimizeQuery(q);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->body.size(), 2u);
}

TEST(MinimizeTest, SafetyBlocksRemoval) {
  // The wildcard condition subsumes nothing else, but W is in the head: it
  // must stay even though another condition covers P.
  TslQuery q = MustParse(
      "<f(P) out W> :- <P p {<X l leland>}>@db AND <P p {<Y l W>}>@db");
  auto minimized = MinimizeQuery(q);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->body.size(), 2u);
}

TEST(MinimizeTest, IdempotentAndEquivalencePreserving) {
  for (std::string_view text :
       {testing::kQ2, testing::kQ3, testing::kQ9, testing::kQ10}) {
    TslQuery q = MustParse(text, "Q");
    auto once = MinimizeQuery(q);
    ASSERT_TRUE(once.ok()) << once.status() << " for " << text;
    auto twice = MinimizeQuery(*once);
    ASSERT_TRUE(twice.ok());
    EXPECT_EQ(*once, *twice);
    auto eq = AreEquivalent(*once, q);
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(*eq) << "minimization changed " << text;
  }
}

TEST(MinimizeTest, UnsatisfiableReported) {
  TslQuery q = MustParse(
      "<f(X) out yes> :- <P p {<X a u1>}>@db AND <R p {<X a u2>}>@db");
  auto minimized = MinimizeQuery(q);
  EXPECT_FALSE(minimized.ok());
  EXPECT_TRUE(minimized.status().IsUnsatisfiable());
}

TEST(MinimizeTest, ConstraintsExposeRedundancy) {
  // Under the person DTD, (Q9)'s two conditions merge (label inference +
  // the p -> name FD chase them onto one oid) and minimization then drops
  // the weaker residual path. Without the DTD the conditions share no oid
  // term and both survive.
  auto dtd = Dtd::Parse(testing::kPersonDtd);
  ASSERT_TRUE(dtd.ok());
  StructuralConstraints constraints(std::move(dtd).value());
  ChaseOptions options{&constraints, {}};
  TslQuery q9 = MustParse(testing::kQ9, "Q9");
  auto minimized = MinimizeQuery(q9, options);
  ASSERT_TRUE(minimized.ok()) << minimized.status();
  EXPECT_EQ(minimized->body.size(), 1u) << minimized->ToString();
  // Without the DTD the two conditions are independent.
  auto plain = MinimizeQuery(q9);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->body.size(), 2u);
}

TEST(MinimizeTest, BranchingQueryCollapsesDuplicatedPaths) {
  // Three copies of one pattern with renamed variables: one survives.
  TslQuery q = MustParse(
      "<f(P) out yes> :- <P p {<X1 a {<Y1 b c>}>}>@db AND "
      "<P p {<X2 a {<Y2 b c>}>}>@db AND <P p {<X3 a {<Y3 b c>}>}>@db");
  auto minimized = MinimizeQuery(q);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->body.size(), 1u);
}

}  // namespace
}  // namespace tslrw
