// Seed-stability regression for the shared tslrw::testing generators.
//
// Tests and benchmarks name RandomRules seeds in their comments and in
// committed baselines (BENCH_*.json workloads, trace goldens), so the
// mapping seed -> generated rules is part of the testing library's
// contract: a refactor that reorders RNG draws silently invalidates every
// such reference. These goldens pin the documented seeds. If a change to
// RandomRules is *intentional*, update the goldens and re-generate any
// affected baselines in the same commit.

#include <gtest/gtest.h>

#include "testing/random_rules.h"

namespace tslrw {
namespace {

TEST(RandomRulesTest, Seed99KeepsGeneratingTheSameRules) {
  testing::RandomRules rules(99, 4, 4, "l0");
  // Draw order matters: views first, then queries, exactly as below.
  EXPECT_EQ(rules.View("V1", "db").ToString(),
            "<v(P') vout {<w(X') m Z'>}> :- <P' l0 {<X' l3 Z'>}>@db");
  EXPECT_EQ(rules.CopyView("V2", "db").ToString(),
            "<v(P') vout {<X' Y' Z'>}> :- <P' l0 {<X' Y' Z'>}>@db");
  EXPECT_EQ(rules.DeepView("V3", "db").ToString(),
            "<v(P') vout {<w(X') mid {<u(W') leaf Z'>}>}> :- "
            "<P' l0 {<X' LA' {<W' l2 Z'>}>}>@db");
  EXPECT_EQ(rules.Query("Q", "db").ToString(),
            "<q1(P) out yes> :- <P l0 {<XP00 l1 {<XP11 l2 W12>}>}>@db");
  EXPECT_EQ(rules.Query("Q", "db").ToString(),
            "<q1(P) out yes> :- <P l0 {<XP00 l3 {}>}>@db AND "
            "<P l0 {<XP01 l0 {<XP10 l1 v3>}>}>@db");
  EXPECT_EQ(rules.Query("Q", "db").ToString(),
            "<q0(P) out yes> :- <P l0 {<XP00 l3 {<XP11 L10 W12>}>}>@db AND "
            "<P l0 {<XP01 l0 {}>}>@db");
}

TEST(RandomRulesTest, Seed7KeepsGeneratingTheSameRules) {
  testing::RandomRules rules(7, 4, 4, "l0");
  EXPECT_EQ(rules.Query("Q", "db").ToString(),
            "<q0(P) out yes> :- <P l0 {<XP00 l0 {<XP11 l2 W11>}>}>@db AND "
            "<P l0 {<XP00 l3 W02>}>@db");
  EXPECT_EQ(rules.Query("Q", "db").ToString(),
            "<q2(P) out yes> :- <P l0 {<XP00 l0 {}>}>@db AND "
            "<P l0 {<XP01 l0 {}>}>@db");
}

TEST(RandomRulesTest, SameSeedSameStream) {
  testing::RandomRules a(123, 5, 5, "rec");
  testing::RandomRules b(123, 5, 5, "rec");
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.Query("Q", "s").ToString(), b.Query("Q", "s").ToString());
  }
  EXPECT_EQ(a.View("V", "s").ToString(), b.View("V", "s").ToString());
  EXPECT_EQ(a.DeepView("W", "s").ToString(), b.DeepView("W", "s").ToString());
}

}  // namespace
}  // namespace tslrw
