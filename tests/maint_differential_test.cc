#include "testing/maint_differential.h"

#include <string>

#include <gtest/gtest.h>

namespace tslrw {
namespace {

/// Runs one drill and asserts byte-identity, printing every divergence.
void ExpectIdentical(const MaintDrillOptions& options) {
  auto result = RunMaintDifferentialDrill(options);
  ASSERT_TRUE(result.ok()) << result.status();
  std::string evidence;
  for (const std::string& d : result->divergences) {
    evidence += d;
    evidence += "\n";
  }
  EXPECT_TRUE(result->identical) << evidence << "\n--- selective log\n"
                                 << result->report;
}

TEST(MaintDifferentialTest, SelectiveMatchesFullFlushSerially) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    MaintDrillOptions options;
    options.seed = seed;
    ExpectIdentical(options);
  }
}

TEST(MaintDifferentialTest, SelectiveMatchesFullFlushUnderParallelism) {
  MaintDrillOptions options;
  options.seed = 7;
  options.parallelism = 8;
  ExpectIdentical(options);
}

TEST(MaintDifferentialTest, SelectiveMatchesFullFlushAcrossShards) {
  MaintDrillOptions options;
  options.seed = 23;
  options.shards = 4;
  options.parallelism = 8;
  ExpectIdentical(options);
}

TEST(MaintDifferentialTest, SelectiveArmActuallyRetainsEntries) {
  // The drill is only a meaningful oracle if the selective arm keeps a
  // real fraction of the cache across mutations — otherwise it degenerates
  // into flush-vs-flush.
  MaintDrillOptions options;
  options.seed = 1;
  auto result = RunMaintDifferentialDrill(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->entries_retained, 0u) << result->report;
  EXPECT_GT(result->entries_examined, result->entries_invalidated)
      << result->report;
  // Retention converts flush-arm cold misses into warm hits.
  EXPECT_GT(result->selective_hits, result->flush_hits) << result->report;
}

TEST(MaintDifferentialTest, DrillIsDeterministic) {
  MaintDrillOptions options;
  options.seed = 7;
  auto first = RunMaintDifferentialDrill(options);
  auto second = RunMaintDifferentialDrill(options);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->report, second->report);
  EXPECT_EQ(first->entries_examined, second->entries_examined);
  EXPECT_EQ(first->entries_invalidated, second->entries_invalidated);
  EXPECT_EQ(first->selective_hits, second->selective_hits);
  EXPECT_EQ(first->flush_hits, second->flush_hits);
}

TEST(NormalizeMaintTraceTest, DropsPlanSearchSubtreeAndHitMissAttribution) {
  const std::string cold =
      "trace (5 spans)\n"
      "- server.request [0,9) ok plan_cache=miss\n"
      "  - mediator.plan_search [0,0) ok\n"
      "    - rewrite.chase [0,0) ok\n"
      "  - mediator.execute [0,9) ok\n"
      "    - fetch s0 [1,4) ok\n";
  const std::string warm =
      "trace (3 spans)\n"
      "- server.request [0,9) ok plan_cache=hit\n"
      "  - mediator.execute [0,9) ok\n"
      "    - fetch s0 [1,4) ok\n";
  EXPECT_EQ(NormalizeMaintTrace(cold), NormalizeMaintTrace(warm));
  // The execution spans themselves must survive normalization.
  EXPECT_NE(NormalizeMaintTrace(cold).find("mediator.execute"),
            std::string::npos);
  EXPECT_NE(NormalizeMaintTrace(cold).find("fetch s0"), std::string::npos);
  EXPECT_EQ(NormalizeMaintTrace(cold).find("plan_search"), std::string::npos);
  // Divergence in real execution structure still shows through.
  const std::string other =
      "trace (3 spans)\n"
      "- server.request [0,9) ok plan_cache=hit\n"
      "  - mediator.execute [0,9) ok\n"
      "    - fetch s1 [1,4) ok\n";
  EXPECT_NE(NormalizeMaintTrace(cold), NormalizeMaintTrace(other));
}

}  // namespace
}  // namespace tslrw
