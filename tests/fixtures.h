#ifndef TSLRW_TESTS_FIXTURES_H_
#define TSLRW_TESTS_FIXTURES_H_

#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "oem/database.h"
#include "oem/parser.h"
#include "tsl/ast.h"
#include "tsl/parser.h"

namespace tslrw::testing {

/// Every numbered rule from the paper, transliterated into the library's
/// concrete syntax. Differences from the printed page: `Stanford` (OCR
/// capitalization in heads) is `stanford`; `Stan-student` is quoted because
/// an unquoted uppercase identifier lexes as a variable; and in (Q8) the
/// paper prints `pp(P,Y)` where faithful application of mapping (M6)
/// (Y' -> name) yields `pp(P,name)`.

// --- \S2: semantics example ------------------------------------------------
inline constexpr std::string_view kQ1 =
    "<f(P) female {<f(X) Y Z>}> :- "
    "<P person {<G gender female> <X Y Z>}>@db";

inline constexpr std::string_view kQ2 =
    "<f(P) female {<f(X) Y Z>}> :- "
    "<P person {<G gender female>}>@db AND <P person {<X Y Z>}>@db";

// --- Example 3.1: view (V1), query (Q3), candidate (Q4) ---------------------
inline constexpr std::string_view kV1 =
    "<g(P') p {<pp(P',Y') pr Y'> <h(X') v Z'>}> :- <P' p {<X' Y' Z'>}>@db";

inline constexpr std::string_view kQ3 =
    "<f(P) stanford yes> :- <P p {<X Y leland>}>@db";

inline constexpr std::string_view kQ4 =
    "<f(P) stanford yes> :- "
    "<g(P) p {<pp(P,Y) pr Y> <h(X) v leland>}>@V1";

// (Q4) in normal form.
inline constexpr std::string_view kQ4n =
    "<f(P) stanford yes> :- "
    "<g(P) p {<pp(P,Y) pr Y>}>@V1 AND <g(P) p {<h(X) v leland>}>@V1";

// (V1)o(Q4)n: the composition of the candidate with the view.
inline constexpr std::string_view kV1oQ4n =
    "<f(P) stanford yes> :- "
    "<P p {<X' Y Z'>}>@db AND <P p {<X'' Y'' leland>}>@db";

// --- Example 3.2: set mappings ----------------------------------------------
inline constexpr std::string_view kQ5 =
    "<f(P) stanford yes> :- <P p {<X Y {<Z last stanford>}>}>@db";

inline constexpr std::string_view kQ6 =
    "<f(P) stanford yes> :- "
    "<g(P) p {<pp(P,Y) pr Y> <h(X) v {<Z last stanford>}>}>@V1";

// --- Example 3.3: a mapping without a rewriting ------------------------------
inline constexpr std::string_view kQ7 =
    "<f(P) stanford yes> :- <P p {<X name {<Z last stanford>}>}>@db";

inline constexpr std::string_view kQ8 =
    "<f(P) stanford yes> :- "
    "<g(P) p {<pp(P,name) pr name> <h(X) v {<Z last stanford>}>}>@V1";

inline constexpr std::string_view kQ9 =
    "<f(P) stanford yes> :- "
    "<P p {<X' name Z'>}>@db AND "
    "<P p {<X'' Y'' {<Z last stanford>}>}>@db";

// --- Example 3.4: chase on a set variable ------------------------------------
inline constexpr std::string_view kQ10 =
    "<f(P) \"Stan-student\" {<X Y Z>}> :- "
    "<P p {<U university stanford>}>@db AND <P p {<X Y Z>}>@db";

inline constexpr std::string_view kQ11 =
    "<f(P) \"Stan-student\" V> :- "
    "<P p {<U university stanford>}>@db AND <P p V>@db";

// --- Example 3.5: DTD-enabled rewriting --------------------------------------
inline constexpr std::string_view kQ12 =
    "<f(P) stanford yes> :- "
    "<P p {<X' name Z'>}>@db AND "
    "<P p {<X' name {<Z last stanford>}>}>@db";

inline constexpr std::string_view kQ13 =
    "<f(P) stanford yes> :- "
    "<P p {<X' name {<Z last stanford> <A B C>}>}>@db";

inline constexpr std::string_view kPersonDtd = R"(
<!ELEMENT p (name, phone, address*)>
<!ELEMENT name (last, first, middle?, alias?)>
<!ELEMENT alias (last, first)>
<!ELEMENT address CDATA>
<!ELEMENT phone CDATA>
<!ELEMENT last CDATA>
<!ELEMENT first CDATA>
<!ELEMENT middle CDATA>
)";

// --- Example 4.1: component decomposition ------------------------------------
inline constexpr std::string_view kQ14 =
    "<l(X) l {<f(Y) m {<n(Z) n V>}>}> :- <X a {<Y b {<Z c V>}>}>@db";

/// Parses a rule or fails the test.
inline TslQuery MustParse(std::string_view text, std::string name = "") {
  auto result = ParseTslQuery(text, std::move(name));
  EXPECT_TRUE(result.ok()) << result.status() << "\n  while parsing: " << text;
  return std::move(result).ValueOrDie();
}

/// Parses an OEM database literal or fails the test.
inline OemDatabase MustParseDb(std::string_view text) {
  auto result = ParseOemDatabase(text);
  EXPECT_TRUE(result.ok()) << result.status() << "\n  while parsing: " << text;
  return std::move(result).ValueOrDie();
}

}  // namespace tslrw::testing

#endif  // TSLRW_TESTS_FIXTURES_H_
