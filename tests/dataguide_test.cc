#include "constraints/dataguide.h"

#include <gtest/gtest.h>

#include "constraints/inference.h"
#include "fixtures.h"
#include "oem/generator.h"
#include "rewrite/chase.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

OemDatabase PersonDb() {
  return MustParseDb(R"(
    database db {
      <p1 p {
        <n1 name { <l1 last smith> <f1 first ann> }>
        <ph1 phone "555-0001">
      }>
      <p2 p {
        <n2 name { <l2 last jones> <f2 first bob> }>
        <ph2 phone "555-0002">
        <a1 address "12 main st">
        <a2 address "old address">
      }>
    })");
}

TEST(DataGuideTest, EveryLabelPathRepresentedOnce) {
  DataGuide guide = DataGuide::Build(PersonDb());
  // Paths: (root), p, p.name, p.name.last, p.name.first, p.phone,
  // p.address -> 7 nodes.
  EXPECT_EQ(guide.size(), 7u);
  const DataGuide::Node* p = guide.Lookup({"p"});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->targets.size(), 2u);
  const DataGuide::Node* last = guide.Lookup({"p", "name", "last"});
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->targets.size(), 2u);
  EXPECT_TRUE(last->has_atomic);
  EXPECT_FALSE(last->has_set);
  EXPECT_EQ(guide.Lookup({"p", "zebra"}), nullptr);
}

TEST(DataGuideTest, LabelsAfterAnswersFormulationQueries) {
  DataGuide guide = DataGuide::Build(PersonDb());
  EXPECT_EQ(guide.LabelsAfter({}), std::set<std::string>{"p"});
  EXPECT_EQ(guide.LabelsAfter({"p"}),
            (std::set<std::string>{"name", "phone", "address"}));
  EXPECT_EQ(guide.LabelsAfter({"p", "name"}),
            (std::set<std::string>{"last", "first"}));
  EXPECT_TRUE(guide.LabelsAfter({"p", "phone"}).empty());
  EXPECT_TRUE(guide.LabelsAfter({"nope"}).empty());
}

TEST(DataGuideTest, HandlesDagsAndCycles) {
  OemDatabase db = MustParseDb(R"(
    database db {
      <a node { <b node { @a }> <c node x> }>
    })");
  DataGuide guide = DataGuide::Build(db);
  // node, node.node, node.node.node... the subset construction converges.
  EXPECT_LE(guide.size(), 6u);
  EXPECT_NE(guide.Lookup({"node", "node", "node"}), nullptr);
}

TEST(DataGuideTest, DeterministicOnGeneratedData) {
  GeneratorOptions options;
  options.seed = 5;
  options.num_roots = 10;
  options.max_depth = 3;
  OemDatabase db = GenerateOemDatabase("db", options);
  DataGuide a = DataGuide::Build(db);
  DataGuide b = DataGuide::Build(db);
  EXPECT_EQ(a.size(), b.size());
}

TEST(InferDtdTest, MultiplicityFromInstance) {
  auto dtd = InferDtdFromData(PersonDb());
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  const Dtd::Element* p = dtd->Find("p");
  ASSERT_NE(p, nullptr);
  // name and phone occur exactly once in both persons; address at most
  // twice and not everywhere.
  EXPECT_EQ(p->FindChild("name")->multiplicity, Multiplicity::kOne);
  EXPECT_EQ(p->FindChild("phone")->multiplicity, Multiplicity::kOne);
  EXPECT_EQ(p->FindChild("address")->multiplicity, Multiplicity::kStar);
  EXPECT_TRUE(dtd->Find("last")->atomic);
  EXPECT_TRUE(dtd->Find("name") != nullptr && !dtd->Find("name")->atomic);
}

TEST(InferDtdTest, MixedAtomicityOmitted) {
  OemDatabase db = MustParseDb(R"(
    database db {
      <a rec { <x m v> }>
      <b m { <y q w> }>
    })");
  // m appears as an atomic object (x) and as a set object (b).
  auto dtd = InferDtdFromData(db);
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_FALSE(dtd->declares("m"));
  EXPECT_TRUE(dtd->declares("rec"));
}

TEST(InferDtdTest, SingleOccurrenceInSomeParentsIsOptional) {
  OemDatabase db = MustParseDb(R"(
    database db {
      <a rec { <x tag v> }>
      <b rec { <y other w> }>
    })");
  auto dtd = InferDtdFromData(db);
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->Find("rec")->FindChild("tag")->multiplicity,
            Multiplicity::kOptional);
}

TEST(InferDtdTest, DrivesTheChaseLikeAnAuthoredDtd) {
  // The instance-derived DTD makes the Example 3.5 style inference work:
  // on PersonDb, p.?.last must be name, and p -> name is an FD.
  auto dtd = InferDtdFromData(PersonDb());
  ASSERT_TRUE(dtd.ok());
  StructuralConstraints constraints(std::move(dtd).value());
  EXPECT_EQ(constraints.InferMiddleLabel("p", "last"), "name");
  EXPECT_TRUE(constraints.HasUniqueChild("p", "name"));
  ChaseOptions options{&constraints, {}};
  TslQuery q = MustParse(
      "<f(P) out yes> :- <P p {<X Y {<Z last smith>}>}>@db");
  auto chased = ChaseQuery(q, options);
  ASSERT_TRUE(chased.ok()) << chased.status();
  EXPECT_EQ(chased->BodyVariables().count(
                Term::MakeVar("Y", VarKind::kLabelValue)),
            0u);
}

}  // namespace
}  // namespace tslrw
