#include "tsl/parser.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "tsl/ast.h"

namespace tslrw {
namespace {

using testing::MustParse;

TEST(TslParserTest, ParsesQ1) {
  TslQuery q = MustParse(testing::kQ1, "Q1");
  EXPECT_EQ(q.name, "Q1");
  // Head: <f(P) female {<f(X) Y Z>}>.
  EXPECT_TRUE(q.head.oid.is_func());
  EXPECT_EQ(q.head.oid.functor(), "f");
  EXPECT_EQ(q.head.label, Term::MakeAtom("female"));
  ASSERT_TRUE(q.head.value.is_set());
  ASSERT_EQ(q.head.value.set().size(), 1u);
  const ObjectPattern& member = q.head.value.set().front();
  EXPECT_EQ(member.oid, Term::MakeFunc("f", {Term::MakeVar(
                            "X", VarKind::kObjectId)}));
  EXPECT_EQ(member.label, Term::MakeVar("Y", VarKind::kLabelValue));
  // Body: one condition on @db with two members.
  ASSERT_EQ(q.body.size(), 1u);
  EXPECT_EQ(q.body[0].source, "db");
  ASSERT_TRUE(q.body[0].pattern.value.is_set());
  EXPECT_EQ(q.body[0].pattern.value.set().size(), 2u);
}

TEST(TslParserTest, VariableKindsResolvedByPosition) {
  TslQuery q = MustParse(testing::kQ1);
  // P and X appear in oid positions; Y, Z, G... G is an oid var (id field
  // of the gender pattern).
  std::set<Term> vars = q.BodyVariables();
  EXPECT_TRUE(vars.count(Term::MakeVar("P", VarKind::kObjectId)));
  EXPECT_TRUE(vars.count(Term::MakeVar("X", VarKind::kObjectId)));
  EXPECT_TRUE(vars.count(Term::MakeVar("G", VarKind::kObjectId)));
  EXPECT_TRUE(vars.count(Term::MakeVar("Y", VarKind::kLabelValue)));
  EXPECT_TRUE(vars.count(Term::MakeVar("Z", VarKind::kLabelValue)));
  EXPECT_EQ(vars.size(), 5u);
}

TEST(TslParserTest, PrimedVariablesParse) {
  TslQuery v1 = MustParse(testing::kV1, "V1");
  std::set<Term> vars = v1.BodyVariables();
  EXPECT_TRUE(vars.count(Term::MakeVar("P'", VarKind::kObjectId)));
  EXPECT_TRUE(vars.count(Term::MakeVar("X'", VarKind::kObjectId)));
  EXPECT_TRUE(vars.count(Term::MakeVar("Y'", VarKind::kLabelValue)));
  EXPECT_TRUE(vars.count(Term::MakeVar("Z'", VarKind::kLabelValue)));
}

TEST(TslParserTest, PaperNamePrefixHonored) {
  auto q = ParseTslQuery("(Q3) <f(P) stanford yes> :- <P p {<X Y leland>}>@db");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->name, "Q3");
}

TEST(TslParserTest, ExplicitNameWinsOverPrefix) {
  auto q = ParseTslQuery(
      "(Q3) <f(P) stanford yes> :- <P p {<X Y leland>}>@db", "mine");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->name, "mine");
}

TEST(TslParserTest, QuotedAtomsAndValueVariables) {
  TslQuery q = MustParse(testing::kQ11, "Q11");
  EXPECT_EQ(q.head.label, Term::MakeAtom("Stan-student"));
  ASSERT_TRUE(q.head.value.is_term());
  EXPECT_EQ(q.head.value.term(), Term::MakeVar("V", VarKind::kLabelValue));
  // Second condition's value is the bare set variable V.
  ASSERT_EQ(q.body.size(), 2u);
  ASSERT_TRUE(q.body[1].pattern.value.is_term());
  EXPECT_EQ(q.body[1].pattern.value.term(),
            Term::MakeVar("V", VarKind::kLabelValue));
}

TEST(TslParserTest, EmptySetPattern) {
  auto q = ParseTslQuery("<f(X) l {}> :- <X a {}>@db");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(q->body[0].pattern.value.is_set());
  EXPECT_TRUE(q->body[0].pattern.value.set().empty());
}

TEST(TslParserTest, MultiSourceBody) {
  auto q = ParseTslQuery(
      "<f(X,Y) pair yes> :- <X a V>@db1 AND <Y b W>@db2");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->Sources(), (std::set<std::string>{"db1", "db2"}));
}

TEST(TslParserTest, RoundTripsThroughToString) {
  for (std::string_view text :
       {testing::kQ1, testing::kQ2, testing::kV1, testing::kQ3, testing::kQ5,
        testing::kQ7, testing::kQ9, testing::kQ10, testing::kQ11,
        testing::kQ14}) {
    TslQuery q = MustParse(text);
    TslQuery round = MustParse(q.ToString());
    EXPECT_EQ(q, round) << "round-trip failed for: " << text;
  }
}

TEST(TslParserTest, RejectsVariableUsedAsBothOidAndLabel) {
  // Y occurs as a label and as an object id: V_O and V_C must be disjoint
  // (this is also what rules out the extra FD discussed after Lemma 5.3).
  auto q = ParseTslQuery("<f(X) l V> :- <X Y {<Y Z W>}>@db");
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kIllFormedQuery);
}

TEST(TslParserTest, RejectsSyntaxErrors) {
  EXPECT_FALSE(ParseTslQuery("<f(P) l V>").ok());                  // no body
  EXPECT_FALSE(ParseTslQuery("<f(P) l V> :- <P a V>@").ok());      // no src
  EXPECT_FALSE(ParseTslQuery("<f(P) l V> :- <P a >@db").ok());     // no value
  EXPECT_FALSE(ParseTslQuery("<f(P) g(x) V> :- <P a V>@db").ok()); // func label
  EXPECT_FALSE(ParseTslQuery("<f(P) l V> :- <P a V>@db junk").ok());
}

TEST(TslParserTest, CommentsIgnored) {
  auto q = ParseTslQuery(
      "% the paper's (Q3)\n"
      "<f(P) stanford yes> :- % head done\n <P p {<X Y leland>}>@db");
  ASSERT_TRUE(q.ok()) << q.status();
}

TEST(TslParserTest, ProgramParsesMultipleNamedRules) {
  auto rules = ParseTslProgram(R"(
    (Q3) <f(P) stanford yes> :- <P p {<X Y leland>}>@db
    (V1) <g(P') p {<pp(P',Y') pr Y'> <h(X') v Z'>}> :- <P' p {<X' Y' Z'>}>@db
  )");
  ASSERT_TRUE(rules.ok()) << rules.status();
  ASSERT_EQ(rules->size(), 2u);
  EXPECT_EQ((*rules)[0].name, "Q3");
  EXPECT_EQ((*rules)[1].name, "V1");
}

TEST(TslParserTest, AllPaperRulesParse) {
  for (std::string_view text :
       {testing::kQ1, testing::kQ2, testing::kV1, testing::kQ3, testing::kQ4,
        testing::kQ4n, testing::kV1oQ4n, testing::kQ5, testing::kQ6,
        testing::kQ7, testing::kQ8, testing::kQ9, testing::kQ10,
        testing::kQ11, testing::kQ12, testing::kQ13, testing::kQ14}) {
    auto q = ParseTslQuery(text);
    EXPECT_TRUE(q.ok()) << q.status() << "\n  while parsing: " << text;
  }
}

}  // namespace
}  // namespace tslrw
