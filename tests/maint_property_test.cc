// Property sweep for selective plan-cache maintenance (docs/SERVING.md
// "Incremental maintenance"): replay random catalog mutations against a
// serving QueryServer and check, per cached query, that retention was
// *sound* — an entry served from cache after a swap must be byte-identical
// to what a fresh plan search against the new catalog produces. That
// direction is a hard property (any violation is a wrong answer in
// production). The converse — invalidate only entries whose plans really
// change — is best-effort by design; this sweep measures it as the
// over-invalidation ratio and only asserts it stays below 1.0, i.e. the
// decider is doing strictly better than a full flush.
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "mediator/mediator.h"
#include "mediator/retry.h"
#include "oem/generator.h"
#include "service/canonical.h"
#include "service/server.h"
#include "testing/random_rules.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

struct ViewState {
  int body_label = 0;
  int alpha = 0;  ///< variable-alphabet revision; bumping it is α-renaming
};

Capability MakeView(size_t id, const ViewState& state) {
  auto var = [&state](const char* base) {
    return state.alpha == 0 ? StrCat(base, "'")
                            : StrCat(base, "a", state.alpha, "'");
  };
  const std::string p = var("P");
  const std::string x = var("X");
  const std::string u = var("U");
  std::string text = StrCat("<v", id, "(", p, ") o", id, " {<w", id, "(", x,
                            ") m ", u, ">}> :- <", p, " rec {<", x, " l",
                            state.body_label, " ", u, ">}>@db");
  auto parsed = ParseTslQuery(text, StrCat("V", id));
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  Capability cap;
  cap.view = std::move(parsed).ValueOrDie();
  return cap;
}

std::vector<SourceDescription> Render(const std::map<size_t, ViewState>& live) {
  std::vector<Capability> caps;
  for (const auto& [id, state] : live) caps.push_back(MakeView(id, state));
  return {SourceDescription{"db", std::move(caps)}};
}

Mediator MustMake(const std::vector<SourceDescription>& sources) {
  auto mediator = Mediator::Make(sources);
  EXPECT_TRUE(mediator.ok()) << mediator.status();
  return std::move(mediator).ValueOrDie();
}

/// Byte rendering of one plan set: what "the same plans" means here.
std::string RenderPlans(const MediatorPlanSet& plans) {
  std::string out =
      StrCat("plans: ", plans.size(), plans.truncated ? " (truncated)" : "",
             "\n");
  for (const MediatorPlan& plan : plans.plans) {
    out += StrCat("  ", plan.ToString(), "\n");
  }
  return out;
}

/// An empty plan set and a NotFound answer are the same observable: the
/// server caches the empty set and then fails the request NotFound when
/// executing it, while a direct Mediator::Plan returns the empty set.
constexpr const char* kUnanswerable = "unanswerable\n";

/// The plan set a fresh search against \p sources produces for the cached
/// entry's canonical query.
std::string FreshPlans(const std::vector<SourceDescription>& sources,
                       const TslQuery& canonical) {
  auto plans = MustMake(sources).Plan(canonical, /*rewrite_parallelism=*/1);
  if (!plans.ok()) {
    return plans.status().IsNotFound()
               ? kUnanswerable
               : StrCat("status: ", plans.status().ToString());
  }
  if (plans->plans.empty()) return kUnanswerable;
  return RenderPlans(*plans);
}

TEST(MaintPropertyTest, RetainedEntriesAlwaysMatchAFreshSearch) {
  constexpr uint64_t kSeeds = 12;
  constexpr size_t kSteps = 8;
  size_t retained_total = 0;
  size_t invalidated_total = 0;
  size_t over_invalidated = 0;

  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    GeneratorOptions gen;
    gen.seed = seed * 0x9E3779B97F4A7C15ULL + 11;
    gen.num_roots = 8;
    gen.max_depth = 2;
    gen.num_labels = 4;
    gen.num_values = 4;
    gen.root_label = "rec";
    SourceCatalog catalog;
    catalog.Put(GenerateOemDatabase("db", gen));

    testing::RandomRules rules(seed ^ 0xABCDu, 4, 4, "rec");
    std::vector<TslQuery> queries;
    for (size_t q = 0; q < 5; ++q) {
      queries.push_back(rules.Query(StrCat("Q", q), "db"));
    }

    std::map<size_t, ViewState> live;
    size_t next_id = 0;
    for (size_t v = 0; v < 5; ++v) {
      live[next_id++] = ViewState{static_cast<int>(v % 4), 0};
    }

    ServerOptions options;
    options.threads = 1;
    QueryServer server(MustMake(Render(live)), std::move(catalog), options);

    // Warm every query and remember the served plan bytes. Some random
    // queries admit no capability-conformant plan: those answers fail, the
    // failure is never cached, and the retention property is vacuous for
    // them — but they stay in the pool, because a mutation can make them
    // answerable (and retaining a stale failure would be false retention).
    std::vector<std::string> cached_plans(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      auto response = server.Answer(queries[q]);
      if (!response.ok()) {
        cached_plans[q] = response.status().IsNotFound()
                              ? kUnanswerable
                              : StrCat("status: ",
                                       response.status().ToString());
        continue;
      }
      ASSERT_NE(response->plans, nullptr);
      cached_plans[q] = RenderPlans(*response->plans);
    }

    DeterministicRng rng(seed * 0x2545F4914F6CDD1DULL + 3);
    for (size_t step = 0; step < kSteps; ++step) {
      // Mutate one view: edit its body, α-rename it, add, or remove.
      const uint64_t kind = rng.NextUint64() % 4;
      if (kind == 0 || live.empty()) {
        live[next_id++] =
            ViewState{static_cast<int>(rng.NextUint64() % 4), 0};
      } else {
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.NextUint64() % live.size()));
        if (kind == 1) {
          it->second.body_label =
              (it->second.body_label + 1 + static_cast<int>(
                                               rng.NextUint64() % 3)) %
              4;
        } else if (kind == 2) {
          it->second.alpha++;  // α-renaming: plans must not change
        } else if (live.size() > 2) {
          live.erase(it);
        } else {
          it->second.body_label = (it->second.body_label + 1) % 4;
        }
      }

      const std::vector<SourceDescription> sources = Render(live);
      server.ReplaceMediator(MustMake(sources));

      for (size_t q = 0; q < queries.size(); ++q) {
        auto response = server.Answer(queries[q]);
        const std::string fresh = FreshPlans(
            sources, MakePlanCacheKey(queries[q]).canonical);
        if (!response.ok()) {
          // The request failed; a fresh search must come up equally empty
          // (a stale-but-nonempty cached set would have produced an
          // answer instead, which the branch below catches).
          const std::string served =
              response.status().IsNotFound()
                  ? kUnanswerable
                  : StrCat("status: ", response.status().ToString());
          ASSERT_EQ(served, fresh)
              << "divergent failure at seed " << seed << " step " << step
              << " query " << queries[q].name;
          cached_plans[q] = served;
          continue;
        }
        ASSERT_NE(response->plans, nullptr);
        const std::string served = RenderPlans(*response->plans);

        if (response->plan_cache_hit) {
          // The hard direction: a retained entry must be exactly what a
          // fresh search would have produced. Any mismatch is false
          // retention — a wrong answer served from a stale cache.
          ++retained_total;
          ASSERT_EQ(served, fresh)
              << "false retention at seed " << seed << " step " << step
              << " query " << queries[q].name << "\n--- served (cached)\n"
              << served << "--- fresh\n"
              << fresh << "--- cached before the swap\n"
              << cached_plans[q];
        } else {
          // The served plans were just computed, so they trivially equal
          // `fresh`; what the miss tells us is that the decider
          // invalidated. If the recomputation produced the same bytes the
          // entry had before the swap, the invalidation was unnecessary.
          ++invalidated_total;
          ASSERT_EQ(served, fresh) << "non-deterministic plan search at seed "
                                   << seed << " step " << step;
          if (served == cached_plans[q]) ++over_invalidated;
        }
        cached_plans[q] = served;
      }
    }
  }

  ASSERT_GT(retained_total, 0u) << "the sweep never exercised retention";
  ASSERT_GT(invalidated_total, 0u)
      << "the sweep never exercised invalidation";
  const double ratio = static_cast<double>(over_invalidated) /
                       static_cast<double>(invalidated_total);
  // Over-invalidation costs a recomputation, never correctness; report it
  // and require the decider to beat a full flush (which would sit at 1.0).
  RecordProperty("retained", static_cast<int>(retained_total));
  RecordProperty("invalidated", static_cast<int>(invalidated_total));
  RecordProperty("over_invalidated", static_cast<int>(over_invalidated));
  std::printf(
      "maint property: %zu retained (all matched fresh), %zu invalidated, "
      "%zu over-invalidated (ratio %.3f)\n",
      retained_total, invalidated_total, over_invalidated, ratio);
  EXPECT_LT(ratio, 1.0);
}

}  // namespace
}  // namespace tslrw
