#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fixtures.h"
#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "mediator/retry.h"
#include "mediator/wrapper.h"
#include "rewrite/rewriter.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

// --- fixtures ---------------------------------------------------------------

/// The bibliographic catalog of mediator_test, reused for fault scenarios.
SourceCatalog BiblioCatalog() {
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database s1 {
      <a1 publication {
        <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
      }>
      <a2 publication {
        <t2 title "Constraints"> <v2 venue "VLDB"> <y2 year "1997">
      }>
      <a3 publication {
        <t3 title "Mediators"> <v3 venue "SIGMOD"> <y3 year "1993">
      }>
    })"));
  catalog.Put(MustParseDb(R"(
    database s2 {
      <b1 publication {
        <u1 title "Wrappers"> <w1 venue "SIGMOD"> <x1 year "1997">
      }>
      <b2 publication {
        <u2 title "Warehouses"> <w2 venue "SIGMOD"> <x2 year "1996">
      }>
    })"));
  return catalog;
}

Capability Year97Capability() {
  Capability cap;
  cap.view = MustParse(
      "<y97(P') pub {<X' Y' Z'>}> :- "
      "<P' publication {<U' year \"1997\">}>@s1 AND "
      "<P' publication {<X' Y' Z'>}>@s1",
      "Y97");
  return cap;
}

Capability DumpCapability() {
  Capability cap;
  cap.view = MustParse(
      "<dump(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@s2",
      "Dump2");
  return cap;
}

Mediator MakeBiblioMediator() {
  SourceDescription s1{"s1", {Year97Capability()}};
  SourceDescription s2{"s2", {DumpCapability()}};
  auto mediator = Mediator::Make({s1, s2});
  EXPECT_TRUE(mediator.ok()) << mediator.status();
  return std::move(mediator).ValueOrDie();
}

/// One source `lib` wrapped by two equivalent endpoints (replicas): the
/// query can be answered through either mirror's view.
Mediator MakeMirroredMediator() {
  Capability a;
  a.view = MustParse(
      "<m(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@lib",
      "MirrorA");
  Capability b;
  b.view = MustParse(
      "<m(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@lib",
      "MirrorB");
  auto mediator = Mediator::Make(
      {SourceDescription{"lib", {a}}, SourceDescription{"lib", {b}}});
  EXPECT_TRUE(mediator.ok()) << mediator.status();
  return std::move(mediator).ValueOrDie();
}

SourceCatalog LibCatalog() {
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database lib {
      <a1 publication {
        <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
      }>
      <a2 publication {
        <t2 title "Wrappers"> <v2 venue "VLDB"> <y2 year "1996">
      }>
    })"));
  return catalog;
}

TslQuery Sigmod97Query() {
  return MustParse(
      "<f(P) sigmod97 yes> :- "
      "<P publication {<U year \"1997\">}>@s1 AND "
      "<P publication {<V venue \"SIGMOD\">}>@s1",
      "Sigmod97");
}

TslQuery PairsQuery() {
  return MustParse(
      "<f(P,R) pair yes> :- "
      "<P publication {<U year \"1997\">}>@s1 AND "
      "<R publication {<W year \"1997\">}>@s2",
      "Pairs");
}

std::set<std::string> RootKeys(const OemDatabase& db) {
  std::set<std::string> keys;
  for (const Oid& root : db.roots()) keys.insert(root.ToString());
  return keys;
}

bool IsSubset(const std::set<std::string>& small,
              const std::set<std::string>& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

// --- retry / backoff on the virtual clock -----------------------------------

TEST(RetryPolicyTest, BackoffGrowsGeometricallyAndCaps) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ticks = 2;
  policy.multiplier = 2.0;
  policy.max_backoff_ticks = 10;
  EXPECT_EQ(policy.BackoffAfterAttempt(1, nullptr), 2u);
  EXPECT_EQ(policy.BackoffAfterAttempt(2, nullptr), 4u);
  EXPECT_EQ(policy.BackoffAfterAttempt(3, nullptr), 8u);
  EXPECT_EQ(policy.BackoffAfterAttempt(4, nullptr), 10u);  // capped
  EXPECT_EQ(policy.BackoffAfterAttempt(5, nullptr), 10u);
  // Past the attempt budget there is no wait: the failure is final.
  EXPECT_EQ(policy.BackoffAfterAttempt(6, nullptr), 0u);
}

TEST(RetryPolicyTest, JitterIsDeterministicPerSeed) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ticks = 100;
  policy.jitter = 0.5;
  DeterministicRng rng_a(42);
  DeterministicRng rng_b(42);
  DeterministicRng rng_c(7);
  std::vector<uint64_t> a, b, c;
  for (size_t attempt = 1; attempt <= 3; ++attempt) {
    a.push_back(policy.BackoffAfterAttempt(attempt, &rng_a));
    b.push_back(policy.BackoffAfterAttempt(attempt, &rng_b));
    c.push_back(policy.BackoffAfterAttempt(attempt, &rng_c));
  }
  EXPECT_EQ(a, b);  // same seed, same waits
  EXPECT_NE(a, c);  // different seed, different jitter draws
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t base = policy.BackoffAfterAttempt(i + 1, nullptr);
    EXPECT_LE(a[i], base);
    EXPECT_GE(a[i], static_cast<uint64_t>(static_cast<double>(base) *
                                          (1.0 - policy.jitter)));
  }
}

TEST(RetryPolicyTest, RetryableFailureClassification) {
  EXPECT_TRUE(IsRetryableFailure(Status::Unavailable("down")));
  EXPECT_TRUE(IsRetryableFailure(Status::DeadlineExceeded("slow")));
  EXPECT_FALSE(IsRetryableFailure(Status::NotFound("missing")));
  EXPECT_FALSE(IsRetryableFailure(Status::InvalidArgument("bad")));
  EXPECT_FALSE(IsRetryableFailure(Status::OK()));
}

TEST(FaultToleranceTest, RetryRecoversFromTransientBlips) {
  // s1 drops the first two calls, then recovers; three attempts suffice
  // and the answer is indistinguishable from the fault-free run.
  Mediator mediator = MakeBiblioMediator();
  SourceCatalog catalog = BiblioCatalog();
  TslQuery query = Sigmod97Query();

  auto fault_free = mediator.Answer(query, catalog);
  ASSERT_TRUE(fault_free.ok()) << fault_free.status();

  CatalogWrapper base;
  VirtualClock clock;
  FaultInjector injector(&base, /*seed=*/1, &clock);
  FaultSchedule blips;
  blips.scripted = {Fault::Unavailable(), Fault::Unavailable()};
  injector.SetSchedule("s1", blips);

  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = &clock;
  policy.retry.max_attempts = 3;
  policy.retry.initial_backoff_ticks = 1;
  auto answer = mediator.Answer(query, catalog, policy);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->complete()) << answer->report.ToString();
  EXPECT_TRUE(answer->result.Equals(fault_free->result));
  EXPECT_FALSE(answer->report.failover);
  EXPECT_GT(answer->report.backoff_ticks_total, 0u);
  ASSERT_EQ(answer->report.fetches.size(), 1u);
  EXPECT_EQ(answer->report.fetches[0].attempts.size(), 3u)
      << answer->report.ToString();
}

// --- plan failover ----------------------------------------------------------

TEST(FaultToleranceTest, FailoverToEquivalentReplica) {
  // Two equivalent endpoints serve `lib`; a scripted fault kills MirrorA
  // for good. Answer fails over to MirrorB and returns the same
  // consolidated result as the fault-free run.
  Mediator mediator = MakeMirroredMediator();
  SourceCatalog catalog = LibCatalog();
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P publication {<V venue \"SIGMOD\">}>@lib", "Q");

  auto fault_free = mediator.Answer(query, catalog);
  ASSERT_TRUE(fault_free.ok()) << fault_free.status();
  ASSERT_EQ(fault_free->result.roots().size(), 1u);

  CatalogWrapper base;
  VirtualClock clock;
  FaultInjector injector(&base, /*seed=*/3, &clock);
  FaultSchedule dead;
  dead.steady_state = Fault::Unavailable();
  injector.SetSchedule("MirrorA", dead);  // view-keyed: one endpoint only

  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = &clock;
  policy.retry.max_attempts = 2;
  auto answer = mediator.Answer(query, catalog, policy);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->complete()) << answer->report.ToString();
  EXPECT_TRUE(answer->result.Equals(fault_free->result))
      << answer->result.ToString();
  // The source itself is still reachable through the live mirror.
  EXPECT_TRUE(answer->unreachable_sources.empty())
      << answer->report.ToString();
  EXPECT_GE(answer->report.plans_attempted, 2u);
}

TEST(FaultToleranceTest, DeadSourcePlansAreSkippedNotRetried) {
  // Once MirrorA is declared dead, later plans touching it are skipped
  // without burning more attempts: the report distinguishes skips.
  Mediator mediator = MakeMirroredMediator();
  SourceCatalog catalog = LibCatalog();
  // Two conditions: plans exist via (MirrorA,MirrorA), (MirrorA,MirrorB),
  // (MirrorB,MirrorB), ... — several touch MirrorA.
  TslQuery query = MustParse(
      "<f(P) out yes> :- "
      "<P publication {<V venue \"SIGMOD\">}>@lib AND "
      "<P publication {<U year \"1997\">}>@lib",
      "Q2");

  CatalogWrapper base;
  VirtualClock clock;
  FaultInjector injector(&base, /*seed=*/3, &clock);
  FaultSchedule dead;
  dead.steady_state = Fault::Unavailable();
  injector.SetSchedule("MirrorA", dead);

  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = &clock;
  policy.retry.max_attempts = 2;
  auto answer = mediator.Answer(query, catalog, policy);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->complete());
  EXPECT_TRUE(answer->report.failover);
  // MirrorA was attempted exactly once (2 attempts in one fetch), then
  // every other plan touching it was skipped outright.
  size_t mirror_a_attempts = 0;
  for (const FetchRecord& fetch : answer->report.fetches) {
    if (fetch.view == "MirrorA") mirror_a_attempts += fetch.attempts.size();
  }
  EXPECT_EQ(mirror_a_attempts, 2u) << answer->report.ToString();
  EXPECT_GE(answer->report.plans_skipped, 1u) << answer->report.ToString();
}

// --- degradation ------------------------------------------------------------

TEST(FaultToleranceTest, AllTotalPlansDeadYieldsDegradedAnswer) {
  // The Pairs query needs both s1 and s2; killing s1 leaves no total plan.
  // The degraded answer is flagged incomplete, names the dead source, and
  // its objects are a subset of the fault-free answer.
  Mediator mediator = MakeBiblioMediator();
  SourceCatalog catalog = BiblioCatalog();
  TslQuery query = PairsQuery();

  auto fault_free = mediator.Answer(query, catalog);
  ASSERT_TRUE(fault_free.ok()) << fault_free.status();
  ASSERT_EQ(fault_free->result.roots().size(), 2u);

  CatalogWrapper base;
  VirtualClock clock;
  FaultInjector injector(&base, /*seed=*/5, &clock);
  FaultSchedule dead;
  dead.steady_state = Fault::Unavailable();
  injector.SetSchedule("s1", dead);

  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = &clock;
  policy.retry.max_attempts = 2;
  auto answer = mediator.Answer(query, catalog, policy);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->completeness, Completeness::kDegraded)
      << answer->report.ToString();
  EXPECT_FALSE(answer->complete());
  EXPECT_EQ(answer->unreachable_sources,
            std::vector<std::string>{"s1"});
  EXPECT_TRUE(
      IsSubset(RootKeys(answer->result), RootKeys(fault_free->result)));
}

TEST(FaultToleranceTest, DegradedDisabledPropagatesTheFailure) {
  Mediator mediator = MakeBiblioMediator();
  SourceCatalog catalog = BiblioCatalog();

  CatalogWrapper base;
  VirtualClock clock;
  FaultInjector injector(&base, /*seed=*/5, &clock);
  FaultSchedule dead;
  dead.steady_state = Fault::Unavailable();
  injector.SetSchedule("s1", dead);

  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = &clock;
  policy.retry.max_attempts = 2;
  policy.allow_degraded = false;
  auto answer = mediator.Answer(PairsQuery(), catalog, policy);
  ASSERT_FALSE(answer.ok());
  EXPECT_TRUE(answer.status().IsUnavailable()) << answer.status();
}

TEST(FaultToleranceTest, TruncatedFeedYieldsPartialSubset) {
  // s1 replies, but with only one root: the answer is flagged partial and
  // is a strict subset of the fault-free run.
  Mediator mediator = MakeBiblioMediator();
  SourceCatalog catalog = BiblioCatalog();
  TslQuery query = MustParse(
      "<f(P) y97 yes> :- <P publication {<U year \"1997\">}>@s1", "Y97All");

  auto fault_free = mediator.Answer(query, catalog);
  ASSERT_TRUE(fault_free.ok()) << fault_free.status();
  ASSERT_EQ(fault_free->result.roots().size(), 2u);  // a1 and a2

  CatalogWrapper base;
  VirtualClock clock;
  FaultInjector injector(&base, /*seed=*/9, &clock);
  FaultSchedule truncated;
  truncated.steady_state = Fault::Truncated(1);
  injector.SetSchedule("s1", truncated);

  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = &clock;
  auto answer = mediator.Answer(query, catalog, policy);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->completeness, Completeness::kPartial)
      << answer->report.ToString();
  EXPECT_LT(answer->result.roots().size(),
            fault_free->result.roots().size());
  EXPECT_TRUE(
      IsSubset(RootKeys(answer->result), RootKeys(fault_free->result)));
  ASSERT_EQ(answer->report.fetches.size(), 1u);
  EXPECT_TRUE(answer->report.fetches[0].truncated);
}

TEST(FaultToleranceTest, PerQueryDeadlineAbortsInsteadOfWaiting) {
  // s1 burns 10 virtual ticks per call against a 4-tick per-call deadline
  // and a 5-tick query budget: the execution aborts deterministically with
  // DeadlineExceeded, no wall-clock involved.
  Mediator mediator = MakeBiblioMediator();
  SourceCatalog catalog = BiblioCatalog();

  CatalogWrapper base;
  VirtualClock clock;
  FaultInjector injector(&base, /*seed=*/2, &clock);
  FaultSchedule slow;
  slow.steady_state = Fault::SlowBy(10);
  injector.SetSchedule("s1", slow);

  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = &clock;
  policy.retry.max_attempts = 3;
  policy.retry.per_call_deadline_ticks = 4;
  policy.retry.per_query_deadline_ticks = 5;
  policy.degrade_on_deadline = false;
  auto answer = mediator.Answer(Sigmod97Query(), catalog, policy);
  ASSERT_FALSE(answer.ok());
  EXPECT_TRUE(answer.status().IsDeadlineExceeded()) << answer.status();
}

TEST(FaultToleranceTest, ExhaustedDeadlineDegradesByDefault) {
  // Same exhausted budget, default policy: instead of erroring, the answer
  // degrades per \S7 — sound (a subset of the fault-free answer, possibly
  // empty), flagged incomplete, and the report says the deadline did it.
  Mediator mediator = MakeBiblioMediator();
  SourceCatalog catalog = BiblioCatalog();

  auto fault_free = mediator.Answer(Sigmod97Query(), catalog);
  ASSERT_TRUE(fault_free.ok()) << fault_free.status();

  CatalogWrapper base;
  VirtualClock clock;
  FaultInjector injector(&base, /*seed=*/2, &clock);
  FaultSchedule slow;
  slow.steady_state = Fault::SlowBy(10);
  injector.SetSchedule("s1", slow);

  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = &clock;
  policy.retry.max_attempts = 3;
  policy.retry.per_call_deadline_ticks = 4;
  policy.retry.per_query_deadline_ticks = 5;
  auto answer = mediator.Answer(Sigmod97Query(), catalog, policy);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->completeness, Completeness::kDegraded)
      << answer->report.ToString();
  EXPECT_TRUE(answer->report.deadline_degraded) << answer->report.ToString();
  EXPECT_TRUE(
      IsSubset(RootKeys(answer->result), RootKeys(fault_free->result)));
}

TEST(FaultToleranceTest, SlowSourceWithinDeadlinesStillAnswers) {
  Mediator mediator = MakeBiblioMediator();
  SourceCatalog catalog = BiblioCatalog();

  CatalogWrapper base;
  VirtualClock clock;
  FaultInjector injector(&base, /*seed=*/2, &clock);
  FaultSchedule slow;
  slow.steady_state = Fault::SlowBy(3);
  injector.SetSchedule("s1", slow);

  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = &clock;
  policy.retry.per_call_deadline_ticks = 5;
  policy.retry.per_query_deadline_ticks = 100;
  auto answer = mediator.Answer(Sigmod97Query(), catalog, policy);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->complete());
  EXPECT_EQ(answer->report.finished_at_ticks, 3u)
      << answer->report.ToString();
}

// --- determinism ------------------------------------------------------------

TEST(FaultToleranceTest, SameSeedSameExecutionReport) {
  // Flaky faults draw from the injector's seeded RNG; with identical
  // seeds the whole execution — answer and report — replays identically.
  Mediator mediator = MakeBiblioMediator();
  SourceCatalog catalog = BiblioCatalog();
  TslQuery query = PairsQuery();

  auto run = [&](uint64_t seed) {
    CatalogWrapper base;
    VirtualClock clock;
    FaultInjector injector(&base, seed, &clock);
    FaultSchedule flaky;
    flaky.steady_state = Fault::Flaky(0.5);
    injector.SetSchedule("s1", flaky);
    injector.SetSchedule("s2", flaky);
    ExecutionPolicy policy;
    policy.wrapper = &injector;
    policy.clock = &clock;
    policy.seed = seed;
    policy.retry.max_attempts = 2;
    policy.retry.jitter = 0.5;
    return mediator.Answer(query, catalog, policy);
  };

  for (uint64_t seed = 0; seed < 8; ++seed) {
    auto first = run(seed);
    auto second = run(seed);
    ASSERT_EQ(first.ok(), second.ok()) << "seed " << seed;
    if (!first.ok()) continue;
    EXPECT_EQ(first->report.ToString(), second->report.ToString())
        << "seed " << seed;
    EXPECT_TRUE(first->result.Equals(second->result)) << "seed " << seed;
    EXPECT_EQ(first->completeness, second->completeness) << "seed " << seed;
  }
}

TEST(FaultToleranceTest, RandomizedFaultsNeverInventObjects) {
  // Property: under any seeded fault schedule, a successful answer only
  // contains objects from the fault-free answer (soundness under faults).
  Mediator mediator = MakeBiblioMediator();
  SourceCatalog catalog = BiblioCatalog();
  TslQuery query = PairsQuery();

  auto fault_free = mediator.Answer(query, catalog);
  ASSERT_TRUE(fault_free.ok()) << fault_free.status();
  const std::set<std::string> truth = RootKeys(fault_free->result);

  for (uint64_t seed = 1; seed <= 25; ++seed) {
    CatalogWrapper base;
    VirtualClock clock;
    FaultInjector injector(&base, seed, &clock);
    // Drive fault selection off the seed too, so the sweep covers flaky,
    // truncated, and slow behavior on both sources.
    FaultSchedule s1_faults;
    s1_faults.steady_state =
        seed % 3 == 0 ? Fault::Truncated(seed % 2) : Fault::Flaky(0.4);
    FaultSchedule s2_faults;
    s2_faults.steady_state =
        seed % 4 == 0 ? Fault::SlowBy(1) : Fault::Flaky(0.3);
    injector.SetSchedule("s1", s1_faults);
    injector.SetSchedule("s2", s2_faults);

    ExecutionPolicy policy;
    policy.wrapper = &injector;
    policy.clock = &clock;
    policy.seed = seed;
    policy.retry.max_attempts = 2;
    auto answer = mediator.Answer(query, catalog, policy);
    ASSERT_TRUE(answer.ok()) << "seed " << seed << ": " << answer.status();
    EXPECT_TRUE(IsSubset(RootKeys(answer->result), truth))
        << "seed " << seed << "\n"
        << answer->report.ToString();
    if (answer->complete()) {
      EXPECT_TRUE(answer->result.Equals(fault_free->result))
          << "seed " << seed;
    }
  }
}

// --- scripted schedules pin the report exactly ------------------------------

TEST(FaultToleranceTest, ScriptedBlipsYieldExactReportNumbers) {
  // Two scripted drops then recovery, backoff 1 then 2 ticks, no jitter:
  // every counter in the report is determined by the schedule, so assert
  // them all exactly.
  Mediator mediator = MakeBiblioMediator();
  SourceCatalog catalog = BiblioCatalog();

  CatalogWrapper base;
  VirtualClock clock;
  FaultInjector injector(&base, /*seed=*/1, &clock);
  FaultSchedule blips;
  blips.scripted = {Fault::Unavailable(), Fault::Unavailable()};
  injector.SetSchedule("s1", blips);

  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = &clock;
  policy.retry.max_attempts = 3;
  policy.retry.initial_backoff_ticks = 1;
  policy.retry.jitter = 0.0;
  policy.rewrite_parallelism = 1;  // sequential: cache hits stay zero
  auto answer = mediator.Answer(Sigmod97Query(), catalog, policy);
  ASSERT_TRUE(answer.ok()) << answer.status();

  const ExecutionReport& report = answer->report;
  EXPECT_EQ(answer->completeness, Completeness::kComplete);
  EXPECT_TRUE(answer->unreachable_sources.empty());
  EXPECT_EQ(report.plans_attempted, 1u);
  EXPECT_EQ(report.plans_skipped, 0u);
  EXPECT_FALSE(report.replanned);
  EXPECT_FALSE(report.failover);
  // Backoffs 1 and 2 ticks; the third attempt succeeds at t=3 and no
  // further virtual time passes.
  EXPECT_EQ(report.backoff_ticks_total, 3u) << report.ToString();
  EXPECT_EQ(report.finished_at_ticks, 3u) << report.ToString();
  ASSERT_EQ(report.fetches.size(), 1u);
  const FetchRecord& fetch = report.fetches[0];
  EXPECT_EQ(fetch.source, "s1");
  EXPECT_EQ(fetch.view, "Y97");
  EXPECT_TRUE(fetch.succeeded);
  EXPECT_FALSE(fetch.truncated);
  ASSERT_EQ(fetch.attempts.size(), 3u);
  EXPECT_EQ(fetch.attempts[0].at_ticks, 0u);
  EXPECT_TRUE(fetch.attempts[0].outcome.IsUnavailable());
  EXPECT_EQ(fetch.attempts[0].backoff_ticks, 1u);
  EXPECT_EQ(fetch.attempts[1].at_ticks, 1u);
  EXPECT_EQ(fetch.attempts[1].backoff_ticks, 2u);
  EXPECT_EQ(fetch.attempts[2].at_ticks, 3u);
  EXPECT_TRUE(fetch.attempts[2].outcome.ok());

  // The plan search behind the answer, replayed on the sequential path:
  // the Sigmod97 query has exactly one total rewriting over Y97.
  const PlanSearchStats& search = report.plan_search;
  EXPECT_EQ(search.candidates_generated, 2u);
  EXPECT_EQ(search.candidates_tested, 1u);
  EXPECT_EQ(search.chase_cache_hits, 0u);
  EXPECT_EQ(search.equiv_cache_hits, 0u);
  EXPECT_EQ(search.batches_dispatched, 0u);
  EXPECT_FALSE(report.plan_search_truncated);
}

TEST(FaultToleranceTest, AllReplicasDeadReportsDegradedGrade) {
  // Both mirrors of `lib` are dead. Deadness is tracked per capability
  // view, so MirrorB's plan is still *attempted* (not skipped) after
  // MirrorA dies; once both views are dead no live view remains, the
  // replan step is moot, and the \S7 fallback produces a degraded answer
  // naming the dead source.
  Mediator mediator = MakeMirroredMediator();
  SourceCatalog catalog = LibCatalog();
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P publication {<V venue \"SIGMOD\">}>@lib", "Q");

  CatalogWrapper base;
  VirtualClock clock;
  FaultInjector injector(&base, /*seed=*/4, &clock);
  FaultSchedule dead;
  dead.steady_state = Fault::Unavailable();
  injector.SetSchedule("lib", dead);  // source-keyed: every endpoint

  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = &clock;
  policy.retry.max_attempts = 2;
  policy.retry.initial_backoff_ticks = 1;
  policy.retry.jitter = 0.0;
  auto answer = mediator.Answer(query, catalog, policy);
  ASSERT_TRUE(answer.ok()) << answer.status();

  EXPECT_EQ(answer->completeness, Completeness::kDegraded)
      << answer->report.ToString();
  EXPECT_EQ(answer->unreachable_sources, std::vector<std::string>{"lib"});
  EXPECT_EQ(answer->result.roots().size(), 0u);
  const ExecutionReport& report = answer->report;
  EXPECT_EQ(report.plans_attempted, 2u) << report.ToString();
  EXPECT_EQ(report.plans_skipped, 0u) << report.ToString();
  // With every view dead there is nothing to replan over: the flag stays
  // false and the fallback fires directly.
  EXPECT_FALSE(report.replanned) << report.ToString();
  // One 1-tick backoff inside each of the two exhausted fetches.
  EXPECT_EQ(report.backoff_ticks_total, 2u) << report.ToString();
  EXPECT_EQ(report.finished_at_ticks, 2u) << report.ToString();
  ASSERT_EQ(report.fetches.size(), 2u);
  EXPECT_EQ(report.fetches[0].view, "MirrorA");
  EXPECT_EQ(report.fetches[1].view, "MirrorB");
  for (const FetchRecord& fetch : report.fetches) {
    EXPECT_FALSE(fetch.succeeded);
    EXPECT_EQ(fetch.attempts.size(), 2u);
  }
}

// --- strict limits (no silent truncation) -----------------------------------

TEST(FaultToleranceTest, TruncatedPlanSearchIsFlagged) {
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P publication {<V venue \"SIGMOD\">}>@lib", "Q");
  Capability cap;
  cap.view = MustParse(
      "<m(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@lib", "M");
  std::vector<TslQuery> views{cap.view};

  RewriteOptions options;
  options.max_candidates = 0;  // cut the search off immediately
  auto result = RewriteQuery(query, views, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->truncated);
  EXPECT_TRUE(result->rewritings.empty());

  options.strict_limits = true;
  auto strict = RewriteQuery(query, views, options);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsResourceExhausted()) << strict.status();
}

TEST(FaultToleranceTest, BudgetHookStopsTheSearch) {
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P publication {<V venue \"SIGMOD\">}>@lib", "Q");
  Capability cap;
  cap.view = MustParse(
      "<m(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@lib", "M");

  RewriteOptions options;
  options.should_stop = [] { return true; };  // budget exhausted up front
  auto result = RewriteQuery(query, {cap.view}, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->truncated);
  EXPECT_TRUE(result->rewritings.empty());
}

}  // namespace
}  // namespace tslrw
