// The parallel verification pipeline's contract (docs/PARALLELISM.md):
// RewriteQuery with parallelism=N must be byte-identical to parallelism=1 —
// same rewritings in the same order with the same names, same legacy
// counters, same truncation flag, same error statuses — for every input.
// The k=5 per-arm stress cases double as the TSan workload (the CI
// thread-sanitize job runs the whole suite under TSan).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/string_util.h"
#include "constraints/dtd.h"
#include "constraints/inference.h"
#include "fixtures.h"
#include "testing/random_rules.h"
#include "rewrite/rewriter.h"

namespace tslrw {
namespace {

using testing::MustParse;

std::string RenderRewritings(const RewriteResult& r) {
  std::string out;
  for (const TslQuery& q : r.rewritings) out += q.ToString() + "\n";
  return out;
}

/// One single-arm view per star-query condition (the CL-EXP-CAND shape).
std::vector<TslQuery> PerArmViews(int k) {
  std::vector<TslQuery> views;
  for (int i = 0; i < k; ++i) {
    views.push_back(MustParse(
        StrCat("<v", i, "(P') o", i, " {<w", i, "(X') m U'>}> :- ",
               "<P' rec {<X' l", i, " U'>}>@db"),
        StrCat("V", i)));
  }
  return views;
}

TslQuery StarQuery(int k) {
  std::vector<std::string> body;
  for (int i = 0; i < k; ++i) {
    body.push_back(StrCat("<P rec {<X", i, " l", i, " u", i, ">}>@db"));
  }
  return MustParse(StrCat("<f(P) out yes> :- ", Join(body, " AND ")), "Q");
}

/// Runs the query at parallelism=1 and at each of {2, 4, 8}; every output
/// the determinism guarantee covers must match the sequential run
/// byte-for-byte. (chase/equiv cache hits, batches, and wall ticks are
/// scheduling-dependent diagnostics and deliberately not compared.)
void ExpectParallelMatchesSequential(const TslQuery& query,
                                     const std::vector<TslQuery>& views,
                                     RewriteOptions options = {}) {
  options.parallelism = 1;
  Result<RewriteResult> sequential = RewriteQuery(query, views, options);
  for (size_t workers : {2u, 4u, 8u}) {
    options.parallelism = workers;
    Result<RewriteResult> parallel = RewriteQuery(query, views, options);
    SCOPED_TRACE(StrCat("parallelism=", workers, " query=", query.ToString()));
    ASSERT_EQ(sequential.ok(), parallel.ok())
        << (sequential.ok() ? parallel.status() : sequential.status())
               .ToString();
    if (!sequential.ok()) {
      EXPECT_EQ(sequential.status().ToString(), parallel.status().ToString());
      continue;
    }
    EXPECT_EQ(RenderRewritings(*sequential), RenderRewritings(*parallel));
    EXPECT_EQ(sequential->mappings_found, parallel->mappings_found);
    EXPECT_EQ(sequential->candidates_generated,
              parallel->candidates_generated);
    EXPECT_EQ(sequential->candidates_tested, parallel->candidates_tested);
    EXPECT_EQ(sequential->truncated, parallel->truncated);
  }
}

TEST(ParallelRewriteTest, PaperFixturesAreByteIdentical) {
  // Every numbered paper query against (V1): the suite the rest of the
  // repo validates the rewriting algorithm itself on.
  const std::vector<std::string_view> fixtures = {
      testing::kQ1,  testing::kQ2,  testing::kQ3,  testing::kQ5,
      testing::kQ7,  testing::kQ9,  testing::kQ10, testing::kQ11,
      testing::kQ12, testing::kQ13, testing::kQ14,
  };
  std::vector<TslQuery> views = {MustParse(testing::kV1, "V1")};
  for (std::string_view text : fixtures) {
    ExpectParallelMatchesSequential(MustParse(text), views);
  }
}

TEST(ParallelRewriteTest, FixturesOverViewBodiesAreByteIdentical) {
  // (Q4)/(Q6)/(Q8) have @V1 conditions — candidates over the view itself.
  std::vector<TslQuery> views = {MustParse(testing::kV1, "V1")};
  for (std::string_view text :
       {testing::kQ4, testing::kQ4n, testing::kQ6, testing::kQ8}) {
    ExpectParallelMatchesSequential(MustParse(text), views);
  }
}

TEST(ParallelRewriteTest, DtdEnabledRewritingIsByteIdentical) {
  // Example 3.5: the rewriting of (Q7) exists only under the DTD — the
  // constraint-exempt chase path through the memo must agree too.
  auto dtd = Dtd::Parse(testing::kPersonDtd);
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  StructuralConstraints constraints(std::move(dtd).value());
  RewriteOptions options;
  options.constraints = &constraints;
  ExpectParallelMatchesSequential(MustParse(testing::kQ7),
                                  {MustParse(testing::kV1, "V1")}, options);
}

TEST(ParallelRewriteTest, RandomRuleSetsAreByteIdentical) {
  for (uint64_t seed : {3u, 17u, 99u}) {
    testing::RandomRules rules(seed, 4, 4, "l0");
    std::vector<TslQuery> views = {rules.View("V1", "db"),
                                   rules.CopyView("V2", "db"),
                                   rules.DeepView("V3", "db")};
    for (int i = 0; i < 4; ++i) {
      ExpectParallelMatchesSequential(rules.Query("Q", "db"), views);
    }
  }
}

TEST(ParallelRewriteTest, PerArmStarIsByteIdenticalWithAndWithoutPruning) {
  TslQuery query = StarQuery(5);
  std::vector<TslQuery> views = PerArmViews(5);
  RewriteOptions options;
  ExpectParallelMatchesSequential(query, views, options);
  options.prune_dominated = false;
  ExpectParallelMatchesSequential(query, views, options);
  options.use_cover_heuristic = false;
  ExpectParallelMatchesSequential(StarQuery(3), PerArmViews(3), options);
}

TEST(ParallelRewriteTest, TruncationIsByteIdentical) {
  TslQuery query = StarQuery(5);
  std::vector<TslQuery> views = PerArmViews(5);
  RewriteOptions options;
  options.prune_dominated = false;
  options.max_candidates = 10;
  ExpectParallelMatchesSequential(query, views, options);

  // strict_limits: the ResourceExhausted message embeds
  // candidates_generated, so byte-identical errors require byte-identical
  // counters at the cut.
  options.strict_limits = true;
  ExpectParallelMatchesSequential(query, views, options);
}

TEST(ParallelRewriteTest, StatefulShouldStopIsByteIdentical) {
  // should_stop is polled on the enumerating thread only, once per emitted
  // candidate in enumeration order — a counting hook therefore fires at
  // the same candidate on both paths.
  TslQuery query = StarQuery(5);
  std::vector<TslQuery> views = PerArmViews(5);
  for (size_t workers : {1u, 2u, 8u}) {
    RewriteOptions options;
    options.prune_dominated = false;
    options.parallelism = workers;
    size_t polls = 0;
    options.should_stop = [&polls] { return ++polls > 12; };
    Result<RewriteResult> result = RewriteQuery(query, views, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->truncated);
    EXPECT_EQ(result->candidates_generated, 12u);
  }
}

TEST(ParallelRewriteTest, SharedWorkCountersReportTheSharing) {
  // CL-EXP-CAND shape: all 2^k - 1 candidates compose to α-equivalent rule
  // sets, so at most one verdict per worker is computed from scratch; the
  // rest must come from the memo. Sequential runs never touch the caches.
  TslQuery query = StarQuery(5);
  std::vector<TslQuery> views = PerArmViews(5);
  RewriteOptions options;
  options.prune_dominated = false;

  options.parallelism = 1;
  Result<RewriteResult> sequential = RewriteQuery(query, views, options);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  EXPECT_EQ(sequential->chase_cache_hits, 0u);
  EXPECT_EQ(sequential->equiv_cache_hits, 0u);
  EXPECT_EQ(sequential->batches_dispatched, 0u);

  options.parallelism = 4;
  Result<RewriteResult> parallel = RewriteQuery(query, views, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(parallel->candidates_generated, 31u);
  EXPECT_GE(parallel->batches_dispatched, 1u);
  EXPECT_GE(parallel->equiv_cache_hits, 1u);
}

TEST(ParallelRewriteTest, StressPerArmStarAtHighParallelism) {
  // The TSan workload: many batches, memo contention, dominance pruning,
  // and the bounded in-flight window all active at once.
  TslQuery query = StarQuery(5);
  std::vector<TslQuery> views = PerArmViews(5);
  RewriteOptions sequential_options;
  sequential_options.prune_dominated = false;
  sequential_options.parallelism = 1;
  Result<RewriteResult> sequential =
      RewriteQuery(query, views, sequential_options);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  for (int round = 0; round < 4; ++round) {
    RewriteOptions options = sequential_options;
    options.parallelism = 8;
    Result<RewriteResult> parallel = RewriteQuery(query, views, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(RenderRewritings(*sequential), RenderRewritings(*parallel));
    EXPECT_EQ(sequential->candidates_tested, parallel->candidates_tested);
  }
}

}  // namespace
}  // namespace tslrw
