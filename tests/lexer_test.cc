#include "common/lexer.h"

#include <gtest/gtest.h>

namespace tslrw {
namespace {

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> out;
  for (const Token& t : tokens) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, PunctuationAndIdentifiers) {
  auto tokens = Tokenize("<f(P) female {<X Y Z>}> :- @db");
  ASSERT_TRUE(tokens.ok()) << tokens.status();
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{
                TokenKind::kLAngle, TokenKind::kIdent, TokenKind::kLParen,
                TokenKind::kIdent, TokenKind::kRParen, TokenKind::kIdent,
                TokenKind::kLBrace, TokenKind::kLAngle, TokenKind::kIdent,
                TokenKind::kIdent, TokenKind::kIdent, TokenKind::kRAngle,
                TokenKind::kRBrace, TokenKind::kRAngle, TokenKind::kTurnstile,
                TokenKind::kAt, TokenKind::kIdent, TokenKind::kEof}));
}

TEST(LexerTest, PrimesAndHyphensInIdentifiers) {
  auto tokens = Tokenize("X' Y'' Stan-student 555-1234 1993");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 6u);
  EXPECT_EQ((*tokens)[0].text, "X'");
  EXPECT_EQ((*tokens)[1].text, "Y''");
  EXPECT_EQ((*tokens)[2].text, "Stan-student");
  EXPECT_EQ((*tokens)[3].text, "555-1234");
  EXPECT_EQ((*tokens)[4].text, "1993");
}

TEST(LexerTest, QuotedStringsWithEscapes) {
  auto tokens = Tokenize(R"("SIGMOD 97" "a\"b" "c\\d")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "SIGMOD 97");
  EXPECT_EQ((*tokens)[1].text, "a\"b");
  EXPECT_EQ((*tokens)[2].text, "c\\d");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("a % comment with <weird> stuff\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = Tokenize("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[0].column, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[1].column, 3);
}

TEST(LexerTest, DtdTokens) {
  auto tokens = Tokenize("<!ELEMENT p (name, phone, address*)>");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kLAngle);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kBang);
  EXPECT_EQ((*tokens)[2].text, "ELEMENT");
  // '*' and '?' are individual tokens.
  bool has_star = false;
  for (const Token& t : *tokens) has_star = has_star || t.kind == TokenKind::kStar;
  EXPECT_TRUE(has_star);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("a : b").ok());          // stray colon
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("a $ b").ok());          // unknown character
}

TEST(TokenCursorTest, PeekNextExpect) {
  auto tokens = Tokenize("a , b");
  ASSERT_TRUE(tokens.ok());
  TokenCursor cur(std::move(*tokens));
  EXPECT_EQ(cur.Peek().text, "a");
  EXPECT_EQ(cur.Peek(1).kind, TokenKind::kComma);
  EXPECT_TRUE(cur.TryConsumeIdent("a"));
  EXPECT_FALSE(cur.TryConsumeIdent("zzz"));
  EXPECT_TRUE(cur.TryConsume(TokenKind::kComma));
  auto b = cur.Expect(TokenKind::kIdent);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->text, "b");
  EXPECT_TRUE(cur.AtEof());
  // Expect at EOF fails gracefully and repeatedly.
  EXPECT_FALSE(cur.Expect(TokenKind::kIdent).ok());
  EXPECT_TRUE(cur.AtEof());
}

}  // namespace
}  // namespace tslrw
