// Tier-1 coverage for the sharded cluster front-end (src/cluster/): the
// consistent-hash ring's contracts (process-independent routing, balance,
// minimal remap on growth), and the ShardRouter's — answers byte-identical
// to a single-shard QueryServer at every shard count over random-rule
// workloads, deterministic failover with §7 degradation under partition,
// retry-after hint propagation from a saturated shard, plan-cache
// retention across a rebalance, and TSan-visible snapshot-swap races
// through the router.

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/ring.h"
#include "common/string_util.h"
#include "mediator/capability.h"
#include "mediator/mediator.h"
#include "mediator/wrapper.h"
#include "obs/metrics.h"
#include "oem/generator.h"
#include "oem/parser.h"
#include "service/canonical.h"
#include "testing/chaos.h"
#include "testing/random_rules.h"
#include "tsl/canonical.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

TslQuery Parse(const std::string& text, std::string name) {
  auto query = ParseTslQuery(text, std::move(name));
  EXPECT_TRUE(query.ok()) << query.status();
  return *std::move(query);
}

// --- ring properties --------------------------------------------------------

TEST(HashRingTest, RoutingIsProcessIndependent) {
  // Golden routes: the ring is built from StableFingerprint + Mix64, both
  // fixed arithmetic, so these values must hold in every process, on every
  // platform, in every run — the cluster analogue of the plan-cache key
  // goldens in canonical_test.cc. A change here is a cache-scattering
  // topology change for every deployed ring and must be deliberate.
  HashRing ring(4);
  EXPECT_EQ(ring.Route(0), 3u);
  EXPECT_EQ(ring.Route(1), 2u);
  EXPECT_EQ(ring.Route(42), 0u);
  EXPECT_EQ(ring.Route(0xDEADBEEFull), 0u);
  EXPECT_EQ(ring.Route(0x123456789ABCDEFull), 2u);
  // Two independently built rings agree everywhere.
  HashRing again(4);
  for (uint64_t i = 0; i < 1000; ++i) {
    const uint64_t fp = StableFingerprint(StrCat("probe ", i));
    EXPECT_EQ(ring.Route(fp), again.Route(fp));
  }
}

TEST(HashRingTest, KeysSpreadEvenlyAcrossShards) {
  HashRing ring(4);
  std::vector<size_t> counts(4, 0);
  const size_t n = 20000;
  for (size_t i = 0; i < n; ++i) {
    counts[ring.Route(StableFingerprint(StrCat("key ", i)))]++;
  }
  for (size_t shard = 0; shard < 4; ++shard) {
    const double share = static_cast<double>(counts[shard]) / n;
    EXPECT_GT(share, 0.15) << "shard " << shard;
    EXPECT_LT(share, 0.35) << "shard " << shard;
  }
}

TEST(HashRingTest, AddingAShardRemapsAtMostItsFairShare) {
  // Consistent hashing's defining property: growing 4 -> 5 shards moves
  // only the keys whose owning arc the new shard's vnodes claimed —
  // about 1/5 of them — so per-shard plan caches keep ~4/5 of their
  // working set warm across the rebalance.
  HashRing before(4);
  HashRing after(5);
  const size_t n = 20000;
  size_t moved = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t fp = StableFingerprint(StrCat("key ", i));
    const size_t from = before.Route(fp);
    const size_t to = after.Route(fp);
    if (from != to) {
      ++moved;
      // Every moved key moves TO the new shard, never between survivors.
      EXPECT_EQ(to, 4u) << "key " << i << " moved " << from << "->" << to;
    }
  }
  const double fraction = static_cast<double>(moved) / n;
  EXPECT_GT(fraction, 0.05);          // the new shard took real load
  EXPECT_LE(fraction, 1.0 / 5 + 0.05);  // and no more than its fair share
}

TEST(HashRingTest, RouteLiveWalksToTheSuccessor) {
  HashRing ring(4);
  const uint64_t fp = StableFingerprint("failover probe");
  const size_t home = ring.Route(fp);
  std::vector<bool> down(4, false);
  EXPECT_EQ(ring.RouteLive(fp, down), home);
  down[home] = true;
  const size_t successor = ring.RouteLive(fp, down);
  EXPECT_NE(successor, home);
  EXPECT_LT(successor, 4u);
  // All down: no live shard to route to.
  down.assign(4, true);
  EXPECT_EQ(ring.RouteLive(fp, down), 4u);
}

// --- fixtures ---------------------------------------------------------------

/// The replicated bibliographic fixture shared with the chaos drills:
/// source `lib` behind two α-equivalent mirrors plus a single-endpoint
/// source `s2`.
std::vector<SourceDescription> BiblioSources() {
  Capability a;
  a.view = Parse(
      "<m(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@lib",
      "MirrorA");
  Capability b;
  b.view = Parse(
      "<m(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@lib",
      "MirrorB");
  Capability dump;
  dump.view = Parse(
      "<dump(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@s2",
      "Dump2");
  return {SourceDescription{"lib", {a}}, SourceDescription{"lib", {b}},
          SourceDescription{"s2", {dump}}};
}

SourceCatalog BiblioCatalog() {
  SourceCatalog catalog;
  auto lib = ParseOemDatabase(R"(
    database lib {
      <a1 publication {
        <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
      }>
      <a2 publication {
        <t2 title "Wrappers"> <v2 venue "VLDB"> <y2 year "1996">
      }>
    })");
  EXPECT_TRUE(lib.ok()) << lib.status();
  catalog.Put(*lib);
  auto s2 = ParseOemDatabase(R"(
    database s2 {
      <b1 publication {
        <u1 title "Warehouses"> <w1 venue "SIGMOD"> <x1 year "1996">
      }>
    })");
  EXPECT_TRUE(s2.ok()) << s2.status();
  catalog.Put(*s2);
  return catalog;
}

std::vector<TslQuery> BiblioQueries() {
  return {
      Parse("<f(P) sigmod yes> :- <P publication {<V venue \"SIGMOD\">}>@lib",
            "Sigmod"),
      Parse("<f(P) year97 yes> :- <P publication {<Y year \"1997\">}>@lib",
            "Year97"),
      Parse("<f(P) all2 yes> :- <P publication {<X Y Z>}>@s2", "All2"),
  };
}

/// Renders a serve outcome — answer bytes, completeness, report counters,
/// or the error status — so identity comparisons cover every observable.
std::string RenderOutcome(const Result<ServeResponse>& response) {
  if (!response.ok()) return StrCat("error: ", response.status().ToString());
  std::string out = response->answer.result.ToString();
  out += "completeness=";
  out += CompletenessToString(response->answer.completeness);
  for (const std::string& s : response->answer.unreachable_sources) {
    out += " unreachable:" + s;
  }
  out += "\n";
  return out;
}

/// A seeded random workload: a generated catalog, capability views over
/// it (a full dump so every query is answerable, plus restructuring
/// views), and random path queries.
struct RandomWorkload {
  SourceCatalog catalog;
  std::vector<SourceDescription> sources;
  std::vector<TslQuery> queries;
};

RandomWorkload MakeRandomWorkload(uint64_t seed) {
  RandomWorkload w;
  GeneratorOptions gen;
  gen.seed = seed;
  gen.num_roots = 5;
  gen.max_depth = 3;
  gen.num_labels = 3;
  gen.num_values = 3;
  gen.root_label = "root";
  gen.share_probability = 0.2;
  w.catalog.Put(GenerateOemDatabase("db", gen));

  testing::RandomRules rules(seed, /*num_labels=*/3, /*num_values=*/3,
                             "root");
  Capability dump;
  dump.view = rules.CopyView("Dump", "db");
  Capability shallow;
  shallow.view = rules.View("Shallow", "db");
  Capability deep;
  deep.view = rules.DeepView("Deep", "db");
  w.sources = {SourceDescription{"db", {dump, shallow, deep}}};
  for (int i = 0; i < 3; ++i) {
    w.queries.push_back(rules.Query(StrCat("Q", i), "db"));
  }
  return w;
}

// --- byte-identity across shard counts --------------------------------------

TEST(ShardRouterTest, AnswersByteIdenticalToSingleServerAcrossShardCounts) {
  // The tentpole invariant: routing only picks which shard's cache and
  // pool serve a request — the answer bytes are a pure function of
  // (query, seed, snapshot), which every shard replicates identically.
  // 25 random-rule workloads, each served by a plain QueryServer and by
  // clusters of 1, 2, 4, and 8 shards; every outcome must match.
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const RandomWorkload w = MakeRandomWorkload(seed);
    auto made = Mediator::Make(w.sources);
    ASSERT_TRUE(made.ok()) << "seed " << seed << ": " << made.status();
    const Mediator& mediator = *made;

    ServerOptions server_options;
    server_options.threads = 1;
    server_options.queue_capacity = 4;
    const QueryServer reference(Mediator(mediator), w.catalog,
                                server_options);
    std::vector<std::string> expected;
    for (size_t i = 0; i < w.queries.size(); ++i) {
      ServeOptions serve;
      serve.seed = seed * 1000 + i;
      expected.push_back(RenderOutcome(reference.Answer(w.queries[i], serve)));
    }

    for (size_t shards : {1u, 2u, 4u, 8u}) {
      ClusterOptions options;
      options.shards = shards;
      options.server = server_options;
      ShardRouter router(Mediator(mediator), w.catalog, options);
      for (size_t i = 0; i < w.queries.size(); ++i) {
        ServeOptions serve;
        serve.seed = seed * 1000 + i;
        EXPECT_EQ(RenderOutcome(router.Answer(w.queries[i], serve)),
                  expected[i])
            << "seed " << seed << ", " << shards << " shard(s), query " << i;
      }
    }
  }
}

TEST(ShardRouterTest, AlphaRenamedSpellingsRouteToTheSameShard) {
  // Routing hashes the canonical-query fingerprint, so two α-renamed
  // spellings of one query land on the same shard — and the second serve
  // hits the plan the first one cached there.
  const TslQuery spelled_a =
      Parse("<f(P) sigmod yes> :- <P publication {<V venue \"SIGMOD\">}>@lib",
            "SpellA");
  const TslQuery spelled_b =
      Parse("<f(Q) sigmod yes> :- <Q publication {<W venue \"SIGMOD\">}>@lib",
            "SpellB");
  const uint64_t fp_a = MakePlanCacheKey(spelled_a).fingerprint;
  const uint64_t fp_b = MakePlanCacheKey(spelled_b).fingerprint;
  EXPECT_EQ(fp_a, fp_b);

  auto made = Mediator::Make(BiblioSources());
  ASSERT_TRUE(made.ok()) << made.status();
  ClusterOptions options;
  options.shards = 4;
  options.server.threads = 1;
  ShardRouter router(*std::move(made), BiblioCatalog(), options);
  EXPECT_EQ(router.HomeOf(fp_a), router.HomeOf(fp_b));

  auto first = router.Answer(spelled_a);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->plan_cache_hit);
  auto second = router.Answer(spelled_b);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->plan_cache_hit);
}

// --- failover and partition -------------------------------------------------

TEST(ShardRouterTest, PartitionReroutesDeterministicallyAndRejoins) {
  auto made = Mediator::Make(BiblioSources());
  ASSERT_TRUE(made.ok()) << made.status();
  ClusterOptions options;
  options.shards = 4;
  options.server.threads = 1;
  MetricRegistry metrics;
  options.server.metrics = &metrics;
  ShardRouter router(*std::move(made), BiblioCatalog(), options);

  const TslQuery query = BiblioQueries()[0];
  const uint64_t fp = MakePlanCacheKey(query).fingerprint;
  const std::string baseline = RenderOutcome(router.Answer(query));

  const size_t home = router.HomeOf(fp);
  router.SetShardDown(home, true);
  EXPECT_TRUE(router.shard_down(home));
  const size_t successor = router.RouteOf(fp);
  EXPECT_NE(successor, home);
  // The successor holds the same replicated snapshot: identical bytes.
  EXPECT_EQ(RenderOutcome(router.Answer(query)), baseline);
  EXPECT_EQ(router.RouteOf(fp), successor);  // deterministic walk
  EXPECT_GE(router.stats().rerouted, 1u);
  EXPECT_EQ(metrics.GetCounter("cluster.rerouted")->value(),
            router.stats().rerouted);

  router.SetShardDown(home, false);
  EXPECT_EQ(router.RouteOf(fp), home);
  EXPECT_EQ(RenderOutcome(router.Answer(query)), baseline);

  // Every shard partitioned: no live route left.
  for (size_t s = 0; s < router.shards(); ++s) router.SetShardDown(s, true);
  auto dead = router.Answer(query);
  EXPECT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kUnavailable);
}

TEST(ShardRouterTest, PartitionChaosDrillIsSoundDeterministicAndRecovers) {
  // The multi-shard standard script swaps pool saturation for the shard
  // partition/rejoin phase: §7 degraded answers while a source is severed
  // and a shard is partitioned, byte-identical baseline after rejoin.
  const std::vector<SourceDescription> sources = BiblioSources();
  const SourceCatalog catalog = BiblioCatalog();
  const std::vector<TslQuery> queries = BiblioQueries();
  ChaosOptions options;
  options.seed = 7;
  options.requests_per_phase = 4;
  options.server.threads = 2;
  options.server.queue_capacity = 8;
  options.cluster_shards = 4;
  const std::vector<ChaosPhase> script = StandardChaosScript(sources, options);
  ASSERT_EQ(script.back().action, ChaosPhase::Action::kShardPartition);

  auto first = RunChaosDrill(sources, catalog, queries, script, options);
  ASSERT_TRUE(first.ok()) << first.status();
  for (const std::string& violation : first->violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_TRUE(first->sound);
  EXPECT_TRUE(first->recovered);
  EXPECT_NE(first->report.find("4 shard(s)"), std::string::npos)
      << first->report;
  EXPECT_NE(first->report.find("phase shard-partition"), std::string::npos);
  EXPECT_NE(first->report.find("re-routed to its ring successor"),
            std::string::npos)
      << first->report;

  auto second = RunChaosDrill(sources, catalog, queries, script, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->report, second->report);
  EXPECT_EQ(first->traces, second->traces);
}

// --- admission control ------------------------------------------------------

/// A wrapper that blocks every fetch until the shared gate releases —
/// saturating one shard's pool deterministically.
class GatedWrapper : public Wrapper {
 public:
  explicit GatedWrapper(std::shared_future<void> release)
      : release_(std::move(release)) {}

  Result<WrapperResult> Fetch(const Capability& capability,
                              const SourceCatalog& catalog) override {
    release_.wait();
    return base_.Fetch(capability, catalog);
  }

 private:
  CatalogWrapper base_;
  std::shared_future<void> release_;
};

TEST(ShardRouterTest, SaturatedShardHintPropagatesThroughTheRouter) {
  // Overload is not failover: the routed shard's kResourceExhausted must
  // surface with that shard's own retry-after hint (tagged with the shard
  // id), never a silent re-route to its successor.
  auto made = Mediator::Make(BiblioSources());
  ASSERT_TRUE(made.ok()) << made.status();
  std::promise<void> gate;
  std::shared_future<void> release = gate.get_future().share();
  ClusterOptions options;
  options.shards = 4;
  options.server.threads = 2;
  options.server.queue_capacity = 2;
  MetricRegistry metrics;
  options.server.metrics = &metrics;
  ShardRouter router(
      *std::move(made), BiblioCatalog(), options,
      [release](VirtualClock*, uint64_t) -> std::unique_ptr<Wrapper> {
        return std::make_unique<GatedWrapper>(release);
      });

  const TslQuery query = BiblioQueries()[0];
  const size_t target = router.RouteOf(MakePlanCacheKey(query).fingerprint);
  std::vector<std::future<Result<ServeResponse>>> accepted;
  std::vector<Status> rejections;
  // 2 workers block in the gate, 2 fill the queue, the rest must reject.
  for (int i = 0; i < 7; ++i) {
    auto submitted = router.Submit(query);
    if (submitted.ok()) {
      accepted.push_back(std::move(*submitted));
    } else {
      rejections.push_back(submitted.status());
    }
  }
  ASSERT_FALSE(rejections.empty());
  for (const Status& status : rejections) {
    EXPECT_TRUE(status.IsResourceExhausted()) << status;
    EXPECT_EQ(status.message().find(StrCat("shard ", target, ": ")), 0u)
        << status;
    // The shard's own hint, verbatim — not a router default.
    EXPECT_NE(status.message().find("request queue is full"),
              std::string::npos)
        << status;
    EXPECT_NE(status.message().find("retry-after"), std::string::npos)
        << status;
  }
  EXPECT_EQ(metrics.GetCounter("cluster.resource_exhausted")->value(),
            rejections.size());
  EXPECT_EQ(router.stats().resource_exhausted, rejections.size());

  gate.set_value();
  for (auto& future : accepted) {
    auto response = future.get();
    EXPECT_TRUE(response.ok()) << response.status();
  }
  router.Shutdown();
}

// --- rebalance --------------------------------------------------------------

TEST(ShardRouterTest, ResizeKeepsUnremappedKeysWarm) {
  // Growing the ring must only cool the keys whose shard changed: a key
  // still routed to its old shard finds its cached plan; a remapped key
  // recomputes on its new (cold or fresh) shard.
  auto made = Mediator::Make(BiblioSources());
  ASSERT_TRUE(made.ok()) << made.status();
  ClusterOptions options;
  options.shards = 4;
  options.server.threads = 1;
  ShardRouter router(*std::move(made), BiblioCatalog(), options);

  const std::vector<TslQuery> queries = BiblioQueries();
  std::vector<size_t> route_before;
  for (const TslQuery& query : queries) {
    auto warm = router.Answer(query);
    ASSERT_TRUE(warm.ok()) << warm.status();
    route_before.push_back(
        router.RouteOf(MakePlanCacheKey(query).fingerprint));
  }

  const double retained = router.Resize(5);
  EXPECT_GE(retained, 0.0);
  EXPECT_LE(retained, 1.0);
  // The sampled retained fraction mirrors the ring property: ~4/5 stay.
  EXPECT_GT(retained, 0.6);
  EXPECT_EQ(router.shards(), 5u);
  EXPECT_EQ(router.stats().rebalances, 1u);

  for (size_t i = 0; i < queries.size(); ++i) {
    const size_t route_after =
        router.RouteOf(MakePlanCacheKey(queries[i]).fingerprint);
    auto again = router.Answer(queries[i]);
    ASSERT_TRUE(again.ok()) << again.status();
    EXPECT_EQ(again->plan_cache_hit, route_after == route_before[i])
        << "query " << i << " routed " << route_before[i] << " -> "
        << route_after;
  }

  // Shrinking back re-homes the moved keys; answers keep flowing.
  (void)router.Resize(4);
  EXPECT_EQ(router.shards(), 4u);
  for (const TslQuery& query : queries) {
    EXPECT_TRUE(router.Answer(query).ok());
  }
}

// --- replication and swap races ---------------------------------------------

TEST(ShardRouterTest, ReplicationAndResizeRaceSafelyWithServing) {
  // TSan coverage for the router's topology lock: concurrent readers
  // serve through shards while a writer replicates catalog snapshots and
  // resizes the ring. Every outcome must be an answer or an admission
  // rejection — never a crash, torn snapshot, or wrong-bytes answer.
  auto made = Mediator::Make(BiblioSources());
  ASSERT_TRUE(made.ok()) << made.status();
  ClusterOptions options;
  options.shards = 4;
  options.server.threads = 2;
  options.server.queue_capacity = 16;
  ShardRouter router(*std::move(made), BiblioCatalog(), options);

  const std::vector<TslQuery> queries = BiblioQueries();
  std::vector<std::string> baselines;
  for (const TslQuery& query : queries) {
    baselines.push_back(RenderOutcome(router.Answer(query)));
  }

  const SourceCatalog catalog = BiblioCatalog();
  std::thread writer([&router, &catalog] {
    for (int i = 0; i < 10; ++i) {
      router.ReplaceCatalog(catalog);  // answer-equivalent snapshot
      (void)router.Resize(i % 2 == 0 ? 5 : 4);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&router, &queries, &baselines, t] {
      for (int i = 0; i < 40; ++i) {
        const size_t q = static_cast<size_t>(t + i) % queries.size();
        auto response = router.Answer(queries[q]);
        ASSERT_TRUE(response.ok()) << response.status();
        EXPECT_EQ(RenderOutcome(response), baselines[q]);
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_GE(router.stats().replications, 10u);
  router.Shutdown();
}

// --- stats surfaces ---------------------------------------------------------

TEST(ShardRouterTest, StatszExposesPerCacheShardAndPerShardLines) {
  auto made = Mediator::Make(BiblioSources());
  ASSERT_TRUE(made.ok()) << made.status();
  ClusterOptions options;
  options.shards = 2;
  options.server.threads = 1;
  options.server.plan_cache_shards = 4;
  MetricRegistry metrics;
  options.server.metrics = &metrics;
  ShardRouter router(*std::move(made), BiblioCatalog(), options);

  for (const TslQuery& query : BiblioQueries()) {
    ASSERT_TRUE(router.Answer(query).ok());
    ASSERT_TRUE(router.Answer(query).ok());  // a hit on the same shard
  }

  const ClusterStats stats = router.stats();
  ASSERT_EQ(stats.shard.size(), 2u);
  // Satellite: the per-cache-shard breakdown sums to the aggregate.
  for (const ServerStats& shard : stats.shard) {
    ASSERT_EQ(shard.plan_cache_shards.size(), 4u);
    uint64_t hits = 0, misses = 0;
    size_t entries = 0;
    for (const PlanCacheStats& cache_shard : shard.plan_cache_shards) {
      hits += cache_shard.hits;
      misses += cache_shard.misses;
      entries += cache_shard.entries;
    }
    EXPECT_EQ(hits, shard.plan_cache.hits);
    EXPECT_EQ(misses, shard.plan_cache.misses);
    EXPECT_EQ(entries, shard.plan_cache.entries);
  }
  const PlanCacheStats total = stats.TotalPlanCache();
  EXPECT_EQ(total.hits, 3u);
  EXPECT_EQ(total.misses, 3u);

  const std::string statsz = router.Statsz();
  EXPECT_NE(statsz.find("cluster: 2 shard(s)"), std::string::npos) << statsz;
  EXPECT_NE(statsz.find("shard 0:"), std::string::npos);
  EXPECT_NE(statsz.find("shard 1:"), std::string::npos);
  EXPECT_NE(statsz.find("cache shard 0:"), std::string::npos) << statsz;
  EXPECT_NE(statsz.find("metrics:"), std::string::npos);
  EXPECT_NE(statsz.find("cluster.requests"), std::string::npos);
}

}  // namespace
}  // namespace tslrw
