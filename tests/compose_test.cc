#include "rewrite/compose.h"

#include <gtest/gtest.h>

#include "equiv/equivalence.h"
#include "eval/evaluator.h"
#include "fixtures.h"
#include "tsl/normal_form.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

TEST(ComposeTest, Example31CompositionMatchesPaper) {
  // (V1)o(Q4)n must be equivalent to the paper's printed composition and,
  // by Example 3.1, to the original (Q3).
  TslQuery q4n = MustParse(testing::kQ4n, "Q4n");
  auto composed = ComposeWithViews(q4n, {MustParse(testing::kV1, "V1")});
  ASSERT_TRUE(composed.ok()) << composed.status();
  ASSERT_FALSE(composed->rules.empty());
  auto eq_paper = AreEquivalent(
      *composed, TslRuleSet::Single(MustParse(testing::kV1oQ4n, "ref")));
  ASSERT_TRUE(eq_paper.ok()) << eq_paper.status();
  EXPECT_TRUE(*eq_paper) << "composed:\n" << composed->ToString();
  auto eq_q3 = AreEquivalent(
      *composed, TslRuleSet::Single(MustParse(testing::kQ3, "Q3")));
  ASSERT_TRUE(eq_q3.ok());
  EXPECT_TRUE(*eq_q3);
}

TEST(ComposeTest, Example33CompositionGivesQ9NotQ7) {
  // (Q8) composes to (Q9), which is *not* equivalent to (Q7): the
  // name/value correspondence is lost (that is the point of Example 3.3).
  TslQuery q8 = MustParse(testing::kQ8, "Q8");
  auto composed = ComposeWithViews(q8, {MustParse(testing::kV1, "V1")});
  ASSERT_TRUE(composed.ok()) << composed.status();
  auto eq_q9 = AreEquivalent(
      *composed, TslRuleSet::Single(MustParse(testing::kQ9, "Q9")));
  ASSERT_TRUE(eq_q9.ok()) << eq_q9.status();
  EXPECT_TRUE(*eq_q9) << "composed:\n" << composed->ToString();
  auto eq_q7 = AreEquivalent(
      *composed, TslRuleSet::Single(MustParse(testing::kQ7, "Q7")));
  ASSERT_TRUE(eq_q7.ok());
  EXPECT_FALSE(*eq_q7);
}

TEST(ComposeTest, Example32CompositionEquivalentToQ5) {
  TslQuery q6 = MustParse(testing::kQ6, "Q6");
  auto composed = ComposeWithViews(q6, {MustParse(testing::kV1, "V1")});
  ASSERT_TRUE(composed.ok()) << composed.status();
  auto eq = AreEquivalent(
      *composed, TslRuleSet::Single(MustParse(testing::kQ5, "Q5")));
  ASSERT_TRUE(eq.ok()) << eq.status();
  EXPECT_TRUE(*eq) << "composed:\n" << composed->ToString();
}

TEST(ComposeTest, NonViewConditionsPassThrough) {
  TslQuery q = MustParse(
      "<f(P) out yes> :- <P p {<X l v>}>@db AND "
      "<g(P) p {<h(X) v leland>}>@V1");
  auto composed = ComposeWithViews(q, {MustParse(testing::kV1, "V1")});
  ASSERT_TRUE(composed.ok()) << composed.status();
  ASSERT_EQ(composed->rules.size(), 1u);
  int db_conditions = 0;
  for (const Condition& c : composed->rules[0].body) {
    EXPECT_EQ(c.source, "db");
    ++db_conditions;
  }
  EXPECT_GE(db_conditions, 2);
}

TEST(ComposeTest, NoViewReferencesIsIdentity) {
  TslQuery q3 = MustParse(testing::kQ3, "Q3");
  auto composed = ComposeWithViews(q3, {MustParse(testing::kV1, "V1")});
  ASSERT_TRUE(composed.ok());
  ASSERT_EQ(composed->rules.size(), 1u);
  EXPECT_EQ(composed->rules[0], ToNormalForm(q3));
}

TEST(ComposeTest, UnsatisfiablePathYieldsEmptyRuleSet) {
  // (V1)'s head has no `zzz`-labeled member: no unifier, no rules.
  TslQuery q = MustParse("<f(P) out yes> :- <g(P) p {<W zzz U>}>@V1");
  auto composed = ComposeWithViews(q, {MustParse(testing::kV1, "V1")});
  ASSERT_TRUE(composed.ok()) << composed.status();
  EXPECT_TRUE(composed->rules.empty());
}

TEST(ComposeTest, AmbiguousBranchYieldsUnionOfRules) {
  // <W M U> can unify with both head members of (V1): pr and v branches.
  TslQuery q = MustParse("<f(P,M) out M> :- <g(P) p {<W M U>}>@V1");
  auto composed = ComposeWithViews(q, {MustParse(testing::kV1, "V1")});
  ASSERT_TRUE(composed.ok()) << composed.status();
  EXPECT_EQ(composed->rules.size(), 2u);
}

TEST(ComposeTest, ViewVariablesRenamedApartPerInstance) {
  // Two conditions over (V1) must not share X'/Y'/Z' instances: the paper's
  // (V1)o(Q4)n has X' in one condition and X''/Y'' in the other.
  TslQuery q4n = MustParse(testing::kQ4n, "Q4n");
  auto composed = ComposeWithViews(q4n, {MustParse(testing::kV1, "V1")});
  ASSERT_TRUE(composed.ok());
  ASSERT_EQ(composed->rules.size(), 1u);
  // P joins the two pulled-in view bodies; the X' instances stay distinct,
  // so the composed body keeps two separate paths.
  EXPECT_EQ(composed->rules[0].body.size(), 2u);
}

TEST(ComposeTest, DeepPathIntoCopiedSubgraphPushedIntoViewBody) {
  // (Q6)'s path continues below h(X) whose value is the copied Z'; the
  // remaining <Z last stanford> must end up under Z' in the view body.
  TslQuery q6 = MustParse(testing::kQ6, "Q6");
  auto composed = ComposeWithViews(q6, {MustParse(testing::kV1, "V1")});
  ASSERT_TRUE(composed.ok());
  ASSERT_EQ(composed->rules.size(), 1u);
  bool found_deep = false;
  for (const Condition& c : composed->rules[0].body) {
    auto path = FlattenPath(c);
    ASSERT_TRUE(path.ok());
    if (path->depth() == 3 && path->tail.is_term() &&
        path->tail.term() == Term::MakeAtom("stanford")) {
      found_deep = true;
    }
  }
  EXPECT_TRUE(found_deep) << composed->ToString();
}

TEST(ComposeTest, CompositionAgreesWithMaterialization) {
  // Operational check: evaluating Q' over the materialized view equals
  // evaluating V o Q' over the base data.
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database db {
      <p1 p { <n1 name leland> <g1 gender female> }>
      <p2 p { <n2 name jane> }>
    })"));
  TslQuery v1 = MustParse(testing::kV1, "V1");
  TslQuery q4 = MustParse(testing::kQ4, "Q4");
  auto composed = ComposeWithViews(q4, {v1});
  ASSERT_TRUE(composed.ok()) << composed.status();

  SourceCatalog with_view = catalog;
  auto view_db = MaterializeView(v1, catalog);
  ASSERT_TRUE(view_db.ok()) << view_db.status();
  with_view.Put(std::move(*view_db));

  auto over_view = Evaluate(q4, with_view, {.answer_name = "ans"});
  ASSERT_TRUE(over_view.ok()) << over_view.status();
  auto over_base = EvaluateRuleSet(*composed, catalog, {.answer_name = "ans"});
  ASSERT_TRUE(over_base.ok()) << over_base.status();
  EXPECT_TRUE(over_view->Equals(*over_base))
      << "over view:\n" << over_view->ToString()
      << "composed over base:\n" << over_base->ToString();
}

TEST(ComposeTest, RuleSetOverloadUnionsResults) {
  TslRuleSet rules;
  rules.rules.push_back(
      MustParse("<f(P) out yes> :- <g(P) p {<h(X) v leland>}>@V1", "A"));
  rules.rules.push_back(
      MustParse("<f(P) out yes> :- <g(P) p {<pp(P,Y) pr name>}>@V1", "B"));
  auto composed = ComposeWithViews(rules, {MustParse(testing::kV1, "V1")});
  ASSERT_TRUE(composed.ok()) << composed.status();
  EXPECT_EQ(composed->rules.size(), 2u);
}

}  // namespace
}  // namespace tslrw
