// Cross-module edge cases and failure injection: error paths that the
// happy-path suites never reach, plus classic semantic corner cases
// (bisimulation on cycles, views over views, fresh-name hygiene in the
// chase).

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "equiv/equivalence.h"
#include "eval/evaluator.h"
#include "fixtures.h"
#include "mediator/mediator.h"
#include "oem/bisim.h"
#include "rewrite/chase.h"
#include "rewrite/compose.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

Term Atom(const char* s) { return Term::MakeAtom(s); }

// --- bisimulation classics ---------------------------------------------------

TEST(BisimEdgeTest, CyclesOfDifferentLengthAreBisimilar) {
  // a 1-cycle and a 2-cycle with identical labels unfold to the same
  // infinite tree: the \S6 equivalence must identify them.
  OemDatabase one("a");
  ASSERT_TRUE(one.PutSet(Atom("x"), "n").ok());
  ASSERT_TRUE(one.AddEdge(Atom("x"), Atom("x")).ok());
  ASSERT_TRUE(one.AddRoot(Atom("x")).ok());
  OemDatabase two("b");
  ASSERT_TRUE(two.PutSet(Atom("p"), "n").ok());
  ASSERT_TRUE(two.PutSet(Atom("q"), "n").ok());
  ASSERT_TRUE(two.AddEdge(Atom("p"), Atom("q")).ok());
  ASSERT_TRUE(two.AddEdge(Atom("q"), Atom("p")).ok());
  ASSERT_TRUE(two.AddRoot(Atom("p")).ok());
  EXPECT_TRUE(StructurallyEquivalent(one, two));
  // But a finite chain is NOT bisimilar to a cycle (its leaf dead-ends).
  OemDatabase chain("c");
  ASSERT_TRUE(chain.PutSet(Atom("u"), "n").ok());
  ASSERT_TRUE(chain.PutSet(Atom("v"), "n").ok());
  ASSERT_TRUE(chain.AddEdge(Atom("u"), Atom("v")).ok());
  ASSERT_TRUE(chain.AddRoot(Atom("u")).ok());
  EXPECT_FALSE(StructurallyEquivalent(one, chain));
}

TEST(BisimEdgeTest, SharedVersusDuplicatedSubtrees) {
  // One root pointing twice at one child vs. two distinct equal children:
  // bisimilar (sets of subobjects are compared up to equivalence).
  OemDatabase shared = MustParseDb(
      "database a { <r n { <c m v> }> }");
  OemDatabase duplicated = MustParseDb(
      "database b { <r n { <c1 m v> <c2 m v> }> }");
  EXPECT_TRUE(StructurallyEquivalent(shared, duplicated));
}

// --- evaluator failure injection ---------------------------------------------

TEST(EvalEdgeTest, SubgraphBindingInOidPositionFails) {
  // V binds a subgraph; f(V) needs an atomic term: IllFormedQuery.
  SourceCatalog catalog;
  catalog.Put(MustParseDb("database db { <p1 p { <n1 m x> }> }"));
  auto result = Evaluate(
      MustParse("<f(V) out yes> :- <P p V>@db"), catalog);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIllFormedQuery);
}

TEST(EvalEdgeTest, HeadLabelBoundToOidFails) {
  // The parser's V_O/V_C disjointness makes this unwritable in concrete
  // syntax, so build it programmatically: a head whose label field holds an
  // oid variable that binds to a function-term oid.
  SourceCatalog catalog;
  catalog.Put(MustParseDb("database db { <p1 p { <n1 m x> }> }"));
  auto view = MaterializeView(
      MustParse("<g(P') p {<h(X') v Z'>}> :- <P' p {<X' Y' Z'>}>@db", "V"),
      catalog);
  ASSERT_TRUE(view.ok());
  catalog.Put(std::move(*view));
  TslQuery q = MustParse("<f(P) out yes> :- <g(P) p {<W v Z>}>@V");
  q.head.label = Term::MakeVar("W", VarKind::kObjectId);  // binds to h(n1)
  auto result = Evaluate(q, catalog);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIllFormedQuery);
}

TEST(EvalEdgeTest, FunctionTermHeadValueRejected) {
  SourceCatalog catalog;
  catalog.Put(MustParseDb("database db { <p1 p { <n1 m x> }> }"));
  auto result = Evaluate(
      MustParse("<f(P) out g(P)> :- <P p {<N m x>}>@db"), catalog);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIllFormedQuery);
}

TEST(EvalEdgeTest, EmptyBodyQueryYieldsOneAnswerPerNoAssignment) {
  // A body over an empty database produces no assignments and no roots —
  // not an error.
  SourceCatalog catalog;
  catalog.Put(OemDatabase("db"));
  auto result = Evaluate(MustParse("<f(P) out yes> :- <P p V>@db"), catalog);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

// --- composition: views over views, cycles -----------------------------------

TEST(ComposeEdgeTest, ViewOverViewExpandsTransitively) {
  // V2 is defined over V1; composing a query over V2 must reach @db.
  TslQuery v1 = MustParse(
      "<a(P') lvl1 {<aa(X') m U'>}> :- <P' rec {<X' l U'>}>@db", "V1");
  TslQuery v2 = MustParse(
      "<b(P'') lvl2 {<bb(X'') n U''>}> :- "
      "<a(P'') lvl1 {<aa(X'') m U''>}>@V1", "V2");
  TslQuery q = MustParse("<f(P) out yes> :- <b(P) lvl2 {<bb(X) n u>}>@V2");
  auto composed = ComposeWithViews(q, {v1, v2});
  ASSERT_TRUE(composed.ok()) << composed.status();
  ASSERT_EQ(composed->rules.size(), 1u);
  for (const Condition& c : composed->rules[0].body) {
    EXPECT_EQ(c.source, "db") << composed->rules[0].ToString();
  }
}

TEST(ComposeEdgeTest, CyclicViewDefinitionsDetected) {
  // V references itself: composition must terminate with an error rather
  // than loop forever.
  TslQuery v = MustParse(
      "<a(P') lvl {<aa(X') m U'>}> :- <a(P') lvl {<aa(X') m U'>}>@V", "V");
  TslQuery q = MustParse("<f(P) out yes> :- <a(P) lvl {<aa(X) m u>}>@V");
  auto composed = ComposeWithViews(q, {v});
  EXPECT_FALSE(composed.ok());
  EXPECT_EQ(composed.status().code(), StatusCode::kInvalidArgument);
}

// --- chase hygiene -----------------------------------------------------------

TEST(ChaseEdgeTest, FreshNamesAvoidExistingVariables) {
  // The query already uses Xf1/Yf1/Zf1: the \S3.2 set-variable rule must
  // mint names that do not collide.
  TslQuery q = MustParse(
      "<f(P) out yes> :- <P rec {<Xf1 Yf1 Zf1>}>@db AND <P rec V>@db");
  auto chased = ChaseQuery(q);
  ASSERT_TRUE(chased.ok()) << chased.status();
  // All variables distinct: the two conditions keep separate witnesses.
  std::set<Term> vars = chased->BodyVariables();
  EXPECT_GE(vars.size(), 5u) << chased->ToString();
  auto round = ParseTslQuery(chased->ToString());
  ASSERT_TRUE(round.ok()) << round.status();
}

TEST(ChaseEdgeTest, HeadOnlySetVariableChasedIntoCopyPattern) {
  // (Q11)-style: V in the head; chase rewrites it to a copy pattern whose
  // oid variable lands in the head oid position — still well formed.
  TslQuery q = MustParse(testing::kQ11, "Q11");
  auto chased = ChaseQuery(q);
  ASSERT_TRUE(chased.ok());
  auto reparsed = ParseTslQuery(chased->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n"
                             << chased->ToString();
  EXPECT_EQ(*reparsed, *chased);
}

// --- mediator failure injection ----------------------------------------------

TEST(MediatorEdgeTest, ExecuteWithMissingSourceData) {
  Capability cap;
  cap.view = MustParse(
      "<d(P') rec {<X' Y' Z'>}> :- <P' rec {<X' Y' Z'>}>@s0", "Dump");
  auto mediator = Mediator::Make({SourceDescription{"s0", {cap}}});
  ASSERT_TRUE(mediator.ok());
  TslQuery q = MustParse("<f(P) out yes> :- <P rec {<X l u>}>@s0");
  auto plans = mediator->Plan(q);
  ASSERT_TRUE(plans.ok());
  ASSERT_FALSE(plans->empty());
  SourceCatalog empty;  // wrapper's backing data is gone
  auto answer = mediator->Execute(plans->front(), empty);
  EXPECT_FALSE(answer.ok());
  EXPECT_TRUE(answer.status().IsNotFound());
}

// --- equivalence across sources ----------------------------------------------

TEST(EquivalenceEdgeTest, SameShapeDifferentSourcesNotEquivalent) {
  TslQuery a = MustParse("<f(P) out Z> :- <P p {<X l Z>}>@db1");
  TslQuery b = MustParse("<f(P) out Z> :- <P p {<X l Z>}>@db2");
  auto eq = AreEquivalent(a, b);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);
}

TEST(EquivalenceEdgeTest, EmptyRuleSetsAreEquivalent) {
  TslRuleSet empty_a, empty_b;
  auto eq = AreEquivalent(empty_a, empty_b);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
  // And an unsatisfiable singleton equals the empty set.
  TslRuleSet unsat;
  unsat.rules.push_back(MustParse(
      "<f(X) out yes> :- <P p {<X a u1>}>@db AND <R p {<X a u2>}>@db", "U"));
  auto eq2 = AreEquivalent(unsat, empty_a);
  ASSERT_TRUE(eq2.ok());
  EXPECT_TRUE(*eq2);
}

}  // namespace
}  // namespace tslrw
