#include "repl/repl.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace tslrw {
namespace {

using ::testing::Test;

class ReplTest : public Test {
 protected:
  std::string Run(std::string_view line) { return session_.Execute(line); }

  void Prepare() {
    EXPECT_NE(Run("source database db { <p1 p { <n1 name ann> "
                  "<g1 gender female> }> <p2 p { <n2 name bob> }> }")
                  .find("source db defined"),
              std::string::npos);
    EXPECT_NE(Run("view (V1) <g(P') p {<pp(P',Y') pr Y'> <h(X') v Z'>}> :- "
                  "<P' p {<X' Y' Z'>}>@db")
                  .find("view V1 defined"),
              std::string::npos);
    EXPECT_NE(Run("query (Q) <f(P) out yes> :- <P p {<X Y ann>}>@db")
                  .find("query Q defined"),
              std::string::npos);
  }

  ReplSession session_;
};

TEST_F(ReplTest, HelpAndUnknown) {
  EXPECT_NE(Run("help").find("rewrite <query>"), std::string::npos);
  EXPECT_NE(Run("frobnicate").find("unknown command"), std::string::npos);
  EXPECT_EQ(Run(""), "");
  EXPECT_EQ(Run("% a comment"), "");
}

TEST_F(ReplTest, QuitEndsSession) {
  EXPECT_FALSE(session_.done());
  Run("quit");
  EXPECT_TRUE(session_.done());
}

TEST_F(ReplTest, EvalProducesAnswerDatabase) {
  Prepare();
  std::string out = Run("eval Q");
  EXPECT_NE(out.find("f(p1)"), std::string::npos);
  EXPECT_EQ(out.find("p2"), std::string::npos);
}

TEST_F(ReplTest, RewriteFindsViewRewriting) {
  Prepare();
  std::string out = Run("rewrite Q");
  EXPECT_NE(out.find("1 rewriting(s)"), std::string::npos);
  EXPECT_NE(out.find("@V1"), std::string::npos);
}

TEST_F(ReplTest, ExplainShowsPipelineStages) {
  Prepare();
  std::string out = Run("explain Q");
  EXPECT_NE(out.find("chased query:"), std::string::npos);
  EXPECT_NE(out.find("step 1A"), std::string::npos);
  EXPECT_NE(out.find("expands to:"), std::string::npos);
}

TEST_F(ReplTest, EquivalentComparesQueries) {
  Prepare();
  Run("query (Q2) <f(R) out yes> :- <R p {<W M ann>}>@db");
  EXPECT_EQ(Run("equivalent Q Q2"), "equivalent\n");
  Run("query (Q3) <f(R) out yes> :- <R p {<W M bob>}>@db");
  EXPECT_EQ(Run("equivalent Q Q3"), "not equivalent\n");
  EXPECT_NE(Run("equivalent Q nosuch").find("error"), std::string::npos);
}

TEST_F(ReplTest, MinimizeDropsRedundantCondition) {
  Prepare();
  Run("query (QR) <f(P) out yes> :- <P p {<X Y ann>}>@db AND "
      "<P p {<W M U>}>@db");
  std::string out = Run("minimize QR");
  // One condition survives.
  EXPECT_EQ(out.find(" AND "), std::string::npos);
}

TEST_F(ReplTest, MaterializeTurnsViewIntoSource) {
  Prepare();
  std::string out = Run("materialize V1");
  EXPECT_NE(out.find("materialized as a source"), std::string::npos);
  EXPECT_TRUE(session_.catalog().Contains("V1"));
  // A query straight over the materialized view evaluates.
  Run("query (QV) <r(P) hit yes> :- <g(P) p {<h(X) v ann>}>@V1");
  EXPECT_NE(Run("eval QV").find("r(p1)"), std::string::npos);
}

TEST_F(ReplTest, DtdCommandEnablesConstraintRewriting) {
  Prepare();
  Run("query (Q7) <f(P) stanford yes> :- "
      "<P p {<X name {<Z last stanford>}>}>@db");
  EXPECT_NE(Run("rewrite Q7").find("0 rewriting(s)"), std::string::npos);
  EXPECT_NE(Run("dtd <!ELEMENT p (name, phone)> "
                "<!ELEMENT name (last, first)> <!ELEMENT phone CDATA> "
                "<!ELEMENT last CDATA> <!ELEMENT first CDATA>")
                .find("constraints set"),
            std::string::npos);
  EXPECT_NE(Run("rewrite Q7").find("1 rewriting(s)"), std::string::npos);
  EXPECT_NE(Run("show constraints").find("<!ELEMENT p"), std::string::npos);
}

TEST_F(ReplTest, DataguideInfersConstraintsFromInstance) {
  Prepare();
  std::string out = Run("dataguide db");
  EXPECT_NE(out.find("constraints inferred"), std::string::npos);
  EXPECT_NE(out.find("<!ELEMENT p"), std::string::npos);
  EXPECT_NE(Run("dataguide nosuch").find("error"), std::string::npos);
}

TEST_F(ReplTest, ContainedCommand) {
  Prepare();
  Run("view (Fem) <v(P') fem {<w(X') nm Z'>}> :- "
      "<P' p {<G' gender female>}>@db AND <P' p {<X' name Z'>}>@db");
  Run("query (All) <f(P) out Z> :- <P p {<X name Z>}>@db");
  std::string out = Run("contained All total");
  EXPECT_NE(out.find("contained rule(s)"), std::string::npos);
  EXPECT_NE(out.find("@Fem"), std::string::npos);
}

TEST_F(ReplTest, ShowListsState) {
  EXPECT_EQ(Run("show sources"), "no sources\n");
  Prepare();
  EXPECT_NE(Run("show sources").find("db: "), std::string::npos);
  EXPECT_NE(Run("show views").find("(V1)"), std::string::npos);
  EXPECT_NE(Run("show queries").find("(Q)"), std::string::npos);
  EXPECT_EQ(Run("show constraints"), "no constraints\n");
  EXPECT_NE(Run("show wat").find("usage"), std::string::npos);
}

TEST_F(ReplTest, ErrorsAreRenderedNotFatal) {
  EXPECT_NE(Run("source database broken {").find("error"), std::string::npos);
  EXPECT_NE(Run("view <unnamed> :- <X a V>@db").find("error"),
            std::string::npos);
  EXPECT_NE(Run("query (Bad) <f(P) out W> :- <P a V>@db").find("error"),
            std::string::npos);  // unsafe
  EXPECT_NE(Run("eval NoSuch").find("error"), std::string::npos);
  EXPECT_NE(Run("dtd <!BROKEN>").find("error"), std::string::npos);
  EXPECT_FALSE(session_.done());
}


TEST_F(ReplTest, ExecuteScriptRunsStatementsWithContinuations) {
  std::string out = session_.ExecuteScript(
      "source database db { <p1 p { <n1 name ann> } > }\n"
      "% comment line\n"
      "query (Q) <f(P) out yes> :- \\\n"
      "  <P p {<X name ann>}>@db\n"
      "eval Q\n");
  EXPECT_NE(out.find("source db defined"), std::string::npos);
  EXPECT_NE(out.find("query Q defined"), std::string::npos);
  EXPECT_NE(out.find("f(p1)"), std::string::npos);
}

TEST_F(ReplTest, AnalyzeRendersCaretDiagnostics) {
  Prepare();
  Run("query (QCart) <f(P) out V> :- <P p V>@db AND <Q r W>@db");
  std::string out = Run("analyze QCart");
  EXPECT_NE(out.find("[TSL102]"), std::string::npos) << out;
  EXPECT_NE(out.find("QCart:1:"), std::string::npos) << out;
  // The caret snippet quotes the text as typed at `query`.
  EXPECT_NE(out.find("1 | (QCart) <f(P) out V>"), std::string::npos) << out;
  EXPECT_NE(out.find("^"), std::string::npos) << out;
  EXPECT_NE(out.find("0 error(s)"), std::string::npos) << out;
}

TEST_F(ReplTest, AnalyzeWithoutArgumentCoversAllRules) {
  Prepare();
  Run("view (Vdup) <g2(P') p {<pp2(P',Y') pr Y'> <h2(X') v Z'>}> :- "
      "<P' p {<X' Y' Z'>}>@db");
  std::string out = Run("analyze");
  // V1 and Vdup are interchangeable, so the dead-view pass flags both.
  EXPECT_NE(out.find("[TSL104]"), std::string::npos) << out;
  EXPECT_NE(Run("analyze nosuch").find("error"), std::string::npos);
  // `:analyze` is accepted as an alias for editor integrations.
  EXPECT_EQ(Run(":analyze Q").find("unknown command"), std::string::npos);
}

TEST_F(ReplTest, LoadAndWriteRoundTripThroughFiles) {
  Prepare();
  std::string dir = ::testing::TempDir();
  std::string data_path = dir + "/tslrw_repl_test_db.oem";
  EXPECT_NE(Run("write db " + data_path).find("wrote db"),
            std::string::npos);
  std::string script_path = dir + "/tslrw_repl_test.tsl";
  {
    std::ofstream script(script_path);
    script << "query (FromFile) <f(P) out yes> :- <P p {<X name ann>}>@db\n"
           << "eval FromFile\n";
  }
  std::string out = Run("load " + script_path);
  EXPECT_NE(out.find("query FromFile defined"), std::string::npos);
  EXPECT_NE(out.find("f(p1)"), std::string::npos);
  // A fresh session can reload the written source.
  ReplSession fresh;
  std::ifstream data(data_path);
  std::ostringstream buffer;
  buffer << data.rdbuf();
  EXPECT_NE(fresh.Execute("source " + buffer.str()).find("source db defined"),
            std::string::npos);
  EXPECT_NE(Run("load /no/such/path.tsl").find("error"), std::string::npos);
  EXPECT_NE(Run("write nosuch " + data_path).find("error"),
            std::string::npos);
}

TEST_F(ReplTest, CapabilityCommandDefinesAndValidates) {
  Prepare();
  EXPECT_NE(Run("capability db (Dump) <d(P') p {<X' Y' Z'>}> :- "
                "<P' p {<X' Y' Z'>}>@db")
                .find("capability Dump of db defined"),
            std::string::npos);
  EXPECT_NE(Run("capability db (Dump) <d(P') p {<X' Y' Z'>}> :- "
                "<P' p {<X' Y' Z'>}>@db")
                .find("redefined"),
            std::string::npos);
  EXPECT_NE(Run("show capabilities").find("Dump"), std::string::npos);
  // Unnamed views and views over a foreign source are rejected.
  EXPECT_NE(Run("capability db <d(P') p {<X' Y' Z'>}> :- "
                "<P' p {<X' Y' Z'>}>@db")
                .find("error"),
            std::string::npos);
  EXPECT_NE(Run("capability db (Bad) <d(P') p {<X' Y' Z'>}> :- "
                "<P' p {<X' Y' Z'>}>@other")
                .find("foreign source"),
            std::string::npos);
  EXPECT_NE(Run("capability").find("usage"), std::string::npos);
}

TEST_F(ReplTest, FaultCommandScriptsAndClears) {
  EXPECT_NE(Run("fault db unavailable").find("fault on db"),
            std::string::npos);
  EXPECT_NE(Run("show faults").find("db"), std::string::npos);
  EXPECT_NE(Run("fault db flaky 0.5").find("fault on db"), std::string::npos);
  EXPECT_NE(Run("fault db slow 3").find("fault on db"), std::string::npos);
  EXPECT_NE(Run("fault db truncated 1").find("fault on db"),
            std::string::npos);
  EXPECT_NE(Run("fault db none").find("cleared"), std::string::npos);
  EXPECT_EQ(Run("show faults"), "no faults\n");
  EXPECT_NE(Run("fault db sideways").find("usage"), std::string::npos);
  EXPECT_NE(Run("fault").find("usage"), std::string::npos);
}

TEST_F(ReplTest, PlanCommandListsPlansAndDumpsIr) {
  Prepare();
  // With only views defined the command lists equivalent rewritings.
  std::string views_out = Run("plan Q");
  EXPECT_NE(views_out.find("rewriting plan(s)"), std::string::npos)
      << views_out;
  EXPECT_NE(views_out.find("@V1"), std::string::npos) << views_out;
  // `ir` appends the per-pass op-count table and the disassembly.
  std::string ir_out = Run("plan Q ir");
  EXPECT_NE(ir_out.find("ops before"), std::string::npos) << ir_out;
  EXPECT_NE(ir_out.find("hoist-invariant-submatches"), std::string::npos);
  EXPECT_NE(ir_out.find("join_unit"), std::string::npos) << ir_out;
  EXPECT_NE(ir_out.find("emit_head"), std::string::npos) << ir_out;
  EXPECT_NE(ir_out.find("segment 0"), std::string::npos) << ir_out;
  // Declared capabilities take precedence over raw views.
  Run("capability db (Dump) <d(P') p {<X' Y' Z'>}> :- "
      "<P' p {<X' Y' Z'>}>@db");
  std::string cap_out = Run("plan Q ir");
  EXPECT_NE(cap_out.find("capability plan(s)"), std::string::npos) << cap_out;
  EXPECT_NE(cap_out.find("fuse_root"), std::string::npos) << cap_out;
  // Usage and error paths render, never throw.
  EXPECT_NE(Run("plan").find("usage"), std::string::npos);
  EXPECT_NE(Run("plan Q sideways").find("usage"), std::string::npos);
  EXPECT_NE(Run("plan NoSuch").find("error"), std::string::npos);
  ReplSession bare;
  bare.Execute("source database db { <p1 p { <n1 name ann> }> }");
  bare.Execute("query (Q) <f(X) out yes> :- <X p {}>@db");
  EXPECT_NE(bare.Execute("plan Q").find("error"), std::string::npos);
}

TEST_F(ReplTest, MediateAnswersAndReportsFaults) {
  Prepare();
  Run("capability db (Dump) <d(P') p {<X' Y' Z'>}> :- "
      "<P' p {<X' Y' Z'>}>@db");
  std::string healthy = Run("mediate Q");
  EXPECT_NE(healthy.find("f(p1)"), std::string::npos) << healthy;
  EXPECT_NE(healthy.find("execution: complete"), std::string::npos) << healthy;
  // A dead source leaves no total plan: the answer degrades and says so.
  Run("fault db unavailable");
  std::string degraded = Run("mediate Q seed 3");
  EXPECT_NE(degraded.find("execution: degraded"), std::string::npos)
      << degraded;
  EXPECT_NE(degraded.find("unreachable: db"), std::string::npos) << degraded;
  EXPECT_NE(Run("mediate NoSuch").find("error"), std::string::npos);
  EXPECT_NE(Run("mediate Q seed").find("usage"), std::string::npos);
  ReplSession bare;
  EXPECT_NE(bare.Execute("mediate Q").find("error"), std::string::npos);
}

TEST_F(ReplTest, ServeAnswersThroughThePlanCache) {
  Prepare();
  // The server needs capabilities; before `serve start`, serving errors.
  EXPECT_NE(Run("serve Q").find("no server running"), std::string::npos);
  EXPECT_NE(Run("serve start").find("no capabilities"), std::string::npos);
  Run("capability db (Dump) <d(P') p {<X' Y' Z'>}> :- "
      "<P' p {<X' Y' Z'>}>@db");
  EXPECT_NE(Run("serve start threads 2 queue 16 cache 8")
                .find("serving 1 source interface(s) on 2 thread(s)"),
            std::string::npos);
  EXPECT_NE(Run("serve start").find("already running"), std::string::npos);

  std::string cold = Run("serve Q");
  EXPECT_NE(cold.find("f(p1)"), std::string::npos) << cold;
  EXPECT_NE(cold.find("plan cache: miss"), std::string::npos) << cold;
  std::string warm = Run("serve Q seed 7");
  EXPECT_NE(warm.find("plan cache: hit"), std::string::npos) << warm;

  std::string stats = Run("stats");
  EXPECT_NE(stats.find("1 hit(s)"), std::string::npos) << stats;
  EXPECT_NE(stats.find("1 miss(es)"), std::string::npos) << stats;

  EXPECT_NE(Run("serve stop").find("server stopped"), std::string::npos);
  // After the server stops, `stats` still shows the session metric sink
  // the serving layer recorded into.
  std::string after = Run("stats");
  EXPECT_NE(after.find("metrics:"), std::string::npos) << after;
  EXPECT_NE(after.find("serve.plan_cache_hits 1"), std::string::npos) << after;
  EXPECT_NE(after.find("serve.completed 2"), std::string::npos) << after;
  EXPECT_NE(Run("serve").find("usage"), std::string::npos);
}

TEST_F(ReplTest, ServeRoutesMutationsThroughSnapshotSwaps) {
  Prepare();
  Run("capability db (Dump) <d(P') p {<X' Y' Z'>}> :- "
      "<P' p {<X' Y' Z'>}>@db");
  Run("serve start");
  ASSERT_NE(Run("serve Q").find("f(p1)"), std::string::npos);

  // Redefining the source publishes a new catalog snapshot; the cached
  // plans survive, so the fresh data is served off a plan-cache hit.
  std::string redefine =
      Run("source database db { <p3 p { <n3 name ann> }> }");
  EXPECT_NE(redefine.find("published"), std::string::npos) << redefine;
  std::string after = Run("serve Q");
  EXPECT_NE(after.find("f(p3)"), std::string::npos) << after;
  EXPECT_EQ(after.find("f(p1)"), std::string::npos) << after;
  EXPECT_NE(after.find("plan cache: hit"), std::string::npos) << after;

  // A genuine capability change replaces the server's mediator, and
  // selective maintenance invalidates the cached plans that the new view
  // could extend: the next serving plans afresh.
  EXPECT_NE(Run("capability db (Dump2) <d2(P') p {<X' Y' Z'>}> :- "
                "<P' p {<X' Y' Z'>}>@db")
                .find("server mediator replaced"),
            std::string::npos);
  std::string replanned = Run("serve Q");
  EXPECT_NE(replanned.find("plan cache: miss"), std::string::npos)
      << replanned;
  std::string stats = Run("stats");
  EXPECT_NE(stats.find("1 catalog swap(s)"), std::string::npos) << stats;
  EXPECT_NE(stats.find("1 mediator swap(s)"), std::string::npos) << stats;
}

TEST_F(ReplTest, ClusterRoutesServesAndReplicatesMutations) {
  Prepare();
  EXPECT_NE(Run("cluster Q").find("no cluster running"), std::string::npos);
  EXPECT_NE(Run("cluster start").find("no capabilities"), std::string::npos);
  Run("capability db (Dump) <d(P') p {<X' Y' Z'>}> :- "
      "<P' p {<X' Y' Z'>}>@db");
  EXPECT_NE(Run("cluster start shards 3 threads 2 queue 16 cache 8")
                .find("cluster of 3 shard(s)"),
            std::string::npos);
  EXPECT_NE(Run("cluster start").find("already running"), std::string::npos);

  std::string cold = Run("cluster Q");
  EXPECT_NE(cold.find("f(p1)"), std::string::npos) << cold;
  EXPECT_NE(cold.find("routed to shard"), std::string::npos) << cold;
  EXPECT_NE(cold.find("plan cache: miss"), std::string::npos) << cold;
  std::string warm = Run("cluster Q seed 7");
  EXPECT_NE(warm.find("plan cache: hit"), std::string::npos) << warm;

  // Redefining the source replicates a snapshot swap to every shard; the
  // owning shard's cached plan survives and serves the fresh data.
  std::string redefine =
      Run("source database db { <p3 p { <n3 name ann> }> }");
  EXPECT_NE(redefine.find("published"), std::string::npos) << redefine;
  std::string after = Run("cluster Q");
  EXPECT_NE(after.find("f(p3)"), std::string::npos) << after;
  EXPECT_EQ(after.find("f(p1)"), std::string::npos) << after;
  EXPECT_NE(after.find("plan cache: hit"), std::string::npos) << after;

  // A genuine capability change replaces every shard's mediator, and the
  // selective-maintenance delta (one added view usable by Q) invalidates
  // the cached plan on every shard: the next serving replans.
  EXPECT_NE(Run("capability db (Dump2) <d2(P') p {<X' Y' Z'>}> :- "
                "<P' p {<X' Y' Z'>}>@db")
                .find("cluster mediator replaced"),
            std::string::npos);
  std::string replanned = Run("cluster Q");
  EXPECT_NE(replanned.find("plan cache: miss"), std::string::npos)
      << replanned;

  std::string statsz = Run("cluster stats");
  EXPECT_NE(statsz.find("cluster: 3 shard(s)"), std::string::npos) << statsz;
  EXPECT_NE(statsz.find("shard 0:"), std::string::npos) << statsz;
  EXPECT_NE(statsz.find("cluster.requests"), std::string::npos) << statsz;
  // `stats` (the session command) folds the router counters in too.
  EXPECT_NE(Run("stats").find("cluster: 3 shard(s)"), std::string::npos);

  EXPECT_NE(Run("cluster stop").find("cluster stopped"), std::string::npos);
  EXPECT_NE(Run("cluster").find("usage"), std::string::npos);
}

TEST_F(ReplTest, CompileAnalyzesTheCatalogAndAttachesToTheServer) {
  // Nothing declared yet: compile has no catalog to work on.
  EXPECT_NE(Run("compile").find("no capabilities or views"),
            std::string::npos);
  EXPECT_NE(Run("compile everything").find("usage"), std::string::npos);

  Prepare();
  Run("capability db (Dump) <d(P') p {<X' Y' Z'>}> :- "
      "<P' p {<X' Y' Z'>}>@db");
  Run("capability db (DumpCopy) <d(Q') p {<U' V' W'>}> :- "
      "<Q' p {<U' V' W'>}>@db");
  std::string report = Run("compile");
  EXPECT_NE(report.find("TSL201"), std::string::npos) << report;
  EXPECT_NE(report.find("compiled 2 view(s)"), std::string::npos) << report;

  // save/load round-trips the same report through the index file.
  const std::string path = ::testing::TempDir() + "/repl_catalog.idx";
  std::string saved = Run("compile save " + path);
  EXPECT_NE(saved.find("wrote index " + path), std::string::npos) << saved;
  std::string loaded = Run("compile load " + path);
  EXPECT_NE(loaded.find("TSL201"), std::string::npos) << loaded;
  EXPECT_NE(loaded.find("compiled 2 view(s)"), std::string::npos) << loaded;

  // A running server ingests the freshly compiled index; a running
  // cluster replicates it to every shard.
  Run("serve start");
  Run("cluster start shards 2");
  std::string attached = Run("compile");
  EXPECT_NE(attached.find("index attached to the running server"),
            std::string::npos)
      << attached;
  EXPECT_NE(attached.find("index replicated to every cluster shard"),
            std::string::npos)
      << attached;
  EXPECT_NE(Run("serve Q").find("f(p1)"), std::string::npos);
  EXPECT_NE(Run("cluster Q").find("f(p1)"), std::string::npos);
  Run("cluster stop");
  Run("serve stop");
}

}  // namespace
}  // namespace tslrw
