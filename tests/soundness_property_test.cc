// CL-SOUND: operational validation of Theorem 5.5's soundness half, plus
// randomized invariants of the chase and the equivalence test. For each
// seed we generate a database, random queries and views, and check that
// every symbolic claim the library makes (this rewriting is equivalent; the
// chase preserves semantics; these queries are equivalent) holds when
// actually evaluated.

#include <gtest/gtest.h>

#include "equiv/equivalence.h"
#include "eval/evaluator.h"
#include "fixtures.h"
#include "oem/generator.h"
#include "testing/random_rules.h"
#include "rewrite/chase.h"
#include "rewrite/compose.h"
#include "rewrite/contained.h"
#include "rewrite/rewriter.h"
#include "tsl/normal_form.h"

namespace tslrw {
namespace {

constexpr int kNumLabels = 4;
constexpr int kNumValues = 4;

class SoundnessPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = GetParam();
    options.num_roots = 6;
    options.max_depth = 3;
    options.max_fanout = 3;
    options.num_labels = kNumLabels;
    options.num_values = kNumValues;
    options.root_label = "l0";
    options.share_probability = 0.15;
    catalog_.Put(GenerateOemDatabase("db", options));
  }

  SourceCatalog catalog_;
};

TEST_P(SoundnessPropertyTest, RewritingsAnswerIdenticallyFromViews) {
  testing::RandomRules rules(GetParam() * 7919 + 1, kNumLabels, kNumValues,
                             "l0");
  std::vector<TslQuery> views = {rules.View("V1", "db"),
                                 rules.CopyView("V2", "db"),
                                 rules.DeepView("V3", "db")};
  for (int i = 0; i < 4; ++i) {
    TslQuery query = rules.Query(StrCat("Q", i), "db");
    auto result = RewriteQuery(query, views);
    ASSERT_TRUE(result.ok()) << result.status() << "\n  " << query.ToString();
    if (result->rewritings.empty()) continue;

    auto expected = Evaluate(query, catalog_, {.answer_name = "ans"});
    ASSERT_TRUE(expected.ok()) << expected.status();

    SourceCatalog extended = catalog_;
    for (const TslQuery& v : views) {
      auto materialized = MaterializeView(v, catalog_);
      ASSERT_TRUE(materialized.ok()) << materialized.status();
      extended.Put(std::move(*materialized));
    }
    for (const TslQuery& rw : result->rewritings) {
      auto actual = Evaluate(rw, extended, {.answer_name = "ans"});
      ASSERT_TRUE(actual.ok()) << actual.status() << "\n  " << rw.ToString();
      EXPECT_TRUE(expected->Equals(*actual))
          << "rewriting differs from query:"
          << "\n  query:     " << query.ToString()
          << "\n  rewriting: " << rw.ToString()
          << "\n  expected:\n" << expected->ToString()
          << "\n  actual:\n" << actual->ToString();
    }
  }
}

TEST_P(SoundnessPropertyTest, ChasePreservesSemantics) {
  testing::RandomRules rules(GetParam() * 104729 + 3, kNumLabels, kNumValues,
                             "l0");
  for (int i = 0; i < 6; ++i) {
    TslQuery query = rules.Query(StrCat("Q", i), "db");
    Result<TslQuery> chased = ChaseQuery(query);
    auto expected = Evaluate(query, catalog_, {.answer_name = "ans"});
    ASSERT_TRUE(expected.ok()) << expected.status();
    if (!chased.ok()) {
      // Unsatisfiable queries must really return nothing.
      ASSERT_TRUE(chased.status().IsUnsatisfiable()) << chased.status();
      EXPECT_EQ(expected->roots().size(), 0u)
          << "chase claimed unsatisfiable: " << query.ToString();
      continue;
    }
    auto actual = Evaluate(*chased, catalog_, {.answer_name = "ans"});
    ASSERT_TRUE(actual.ok()) << actual.status();
    EXPECT_TRUE(expected->Equals(*actual))
        << "chase changed semantics of " << query.ToString() << "\n  into "
        << chased->ToString();
  }
}

TEST_P(SoundnessPropertyTest, NormalFormPreservesSemantics) {
  testing::RandomRules rules(GetParam() * 31 + 17, kNumLabels, kNumValues,
                             "l0");
  for (int i = 0; i < 6; ++i) {
    TslQuery query = rules.Query(StrCat("Q", i), "db");
    TslQuery nf = ToNormalForm(query);
    auto a = Evaluate(query, catalog_, {.answer_name = "ans"});
    auto b = Evaluate(nf, catalog_, {.answer_name = "ans"});
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(a->Equals(*b)) << query.ToString();
  }
}

TEST_P(SoundnessPropertyTest, SymbolicEquivalenceImpliesEqualResults) {
  testing::RandomRules rules(GetParam() * 7 + 5, kNumLabels, kNumValues,
                             "l0");
  std::vector<TslQuery> pool;
  for (int i = 0; i < 5; ++i) pool.push_back(rules.Query("Q", "db"));
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i + 1; j < pool.size(); ++j) {
      auto eq = AreEquivalent(pool[i], pool[j]);
      ASSERT_TRUE(eq.ok()) << eq.status();
      auto a = Evaluate(pool[i], catalog_, {.answer_name = "ans"});
      auto b = Evaluate(pool[j], catalog_, {.answer_name = "ans"});
      ASSERT_TRUE(a.ok() && b.ok());
      if (*eq) {
        EXPECT_TRUE(a->Equals(*b))
            << "claimed equivalent but differ on data:\n  "
            << pool[i].ToString() << "\n  " << pool[j].ToString();
      } else if (!a->Equals(*b)) {
        SUCCEED();  // differing results require non-equivalence: consistent
      }
      // (equal results with *eq == false is fine: one database is not a
      // counterexample.)
    }
  }
}

TEST_P(SoundnessPropertyTest, CompositionAgreesWithMaterialization) {
  testing::RandomRules rules(GetParam() * 13 + 29, kNumLabels, kNumValues,
                             "l0");
  TslQuery view = rules.View("V", "db");
  // Query the view through its own head shape, then compare composition
  // against evaluation over the materialized view.
  TslQuery over_view = testing::MustParse(
      "<q(P) out yes> :- <v(P) vout {<w(X) m Z>}>@V", "Q");
  auto composed = ComposeWithViews(over_view, {view});
  ASSERT_TRUE(composed.ok()) << composed.status();

  SourceCatalog extended = catalog_;
  auto materialized = MaterializeView(view, catalog_);
  ASSERT_TRUE(materialized.ok());
  extended.Put(std::move(*materialized));

  auto via_view = Evaluate(over_view, extended, {.answer_name = "ans"});
  ASSERT_TRUE(via_view.ok()) << via_view.status();
  auto via_composition =
      EvaluateRuleSet(*composed, catalog_, {.answer_name = "ans"});
  ASSERT_TRUE(via_composition.ok()) << via_composition.status();
  EXPECT_TRUE(via_view->Equals(*via_composition))
      << "view: " << view.ToString();
}

/// `a` is a sub-database of `b`: every root and every reachable object of
/// `a` appears in `b` with the same label, the same atomic value, and a
/// superset of children — the operational reading of exposed containment.
bool IsSubdatabase(const OemDatabase& a, const OemDatabase& b) {
  for (const Oid& r : a.roots()) {
    if (b.roots().count(r) == 0) return false;
  }
  for (const Oid& oid : a.ReachableOids()) {
    const OemObject* ao = a.Find(oid);
    const OemObject* bo = b.Find(oid);
    if (ao == nullptr || bo == nullptr) return false;
    if (ao->label != bo->label) return false;
    if (ao->is_atomic() != bo->is_atomic()) return false;
    if (ao->is_atomic()) {
      if (ao->value.atom() != bo->value.atom()) return false;
    } else {
      for (const Oid& c : ao->value.children()) {
        if (bo->value.children().count(c) == 0) return false;
      }
    }
  }
  return true;
}

TEST_P(SoundnessPropertyTest, SymbolicContainmentImpliesAnswerSubset) {
  testing::RandomRules rules(GetParam() * 101 + 13, kNumLabels, kNumValues,
                             "l0");
  std::vector<TslQuery> pool;
  for (int i = 0; i < 4; ++i) pool.push_back(rules.Query("Q", "db"));
  for (const TslQuery& inner : pool) {
    for (const TslQuery& outer : pool) {
      auto contained = IsContainedIn(TslRuleSet::Single(inner),
                                     TslRuleSet::Single(outer));
      ASSERT_TRUE(contained.ok()) << contained.status();
      if (!*contained) continue;
      auto a = Evaluate(inner, catalog_, {.answer_name = "ans"});
      auto b = Evaluate(outer, catalog_, {.answer_name = "ans"});
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_TRUE(IsSubdatabase(*a, *b))
          << "claimed contained but answers are not a subset:\n  inner: "
          << inner.ToString() << "\n  outer: " << outer.ToString();
    }
  }
}

TEST_P(SoundnessPropertyTest, ContainedRewritingsAreSound) {
  testing::RandomRules rules(GetParam() * 37 + 11, kNumLabels, kNumValues,
                             "l0");
  std::vector<TslQuery> views = {rules.View("V1", "db"),
                                 rules.View("V2", "db")};
  RewriteOptions options;
  options.require_total = true;
  for (int i = 0; i < 3; ++i) {
    TslQuery query = rules.Query(StrCat("Q", i), "db");
    auto result = FindMaximallyContainedRewriting(query, views, options);
    ASSERT_TRUE(result.ok()) << result.status() << "\n  " << query.ToString();
    if (result->rewriting.rules.empty()) continue;

    SourceCatalog views_only;
    for (const TslQuery& v : views) {
      auto materialized = MaterializeView(v, catalog_);
      ASSERT_TRUE(materialized.ok());
      views_only.Put(std::move(*materialized));
    }
    auto partial = EvaluateRuleSet(result->rewriting, views_only,
                                   {.answer_name = "ans"});
    ASSERT_TRUE(partial.ok()) << partial.status();
    auto full = Evaluate(query, catalog_, {.answer_name = "ans"});
    ASSERT_TRUE(full.ok()) << full.status();
    EXPECT_TRUE(IsSubdatabase(*partial, *full))
        << "contained rewriting produced extra answers:"
        << "\n  query: " << query.ToString()
        << "\n  rules:\n" << result->rewriting.ToString();
    if (result->equivalent) {
      EXPECT_TRUE(full->Equals(*partial))
          << "claimed equivalent but differs on data: " << query.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace tslrw
