#include "rewrite/contained.h"

#include <gtest/gtest.h>

#include "equiv/equivalence.h"
#include "eval/evaluator.h"
#include "fixtures.h"
#include "rewrite/compose.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

TEST(ContainedTest, EquivalentRewritingIsFoundAndMarked) {
  // Where an equivalent rewriting exists, the maximally contained one is
  // that rewriting, flagged equivalent.
  TslQuery q3 = MustParse(testing::kQ3, "Q3");
  TslQuery v1 = MustParse(testing::kV1, "V1");
  auto result = FindMaximallyContainedRewriting(q3, {v1});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->equivalent);
  ASSERT_GE(result->rewriting.rules.size(), 1u);
}

TEST(ContainedTest, PartialViewGivesContainedNotEquivalent) {
  // The view publishes only gender=female people; a query over all people
  // is only *partially* answerable: contained, not equivalent.
  TslQuery view = MustParse(
      "<v(P') fem {<w(X') m Z'>}> :- "
      "<P' person {<G' gender female>}>@db AND "
      "<P' person {<X' name Z'>}>@db",
      "FemaleNames");
  TslQuery query = MustParse(
      "<f(P) out Z> :- <P person {<X name Z>}>@db", "Q");
  RewriteOptions options;
  options.require_total = true;
  auto result = FindMaximallyContainedRewriting(query, {view}, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GE(result->rewriting.rules.size(), 1u);
  EXPECT_FALSE(result->equivalent);

  // Operational check: the contained rewriting returns exactly the
  // view-covered subset of the query's answer.
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database db {
      <p1 person { <g1 gender female> <n1 name ann> }>
      <p2 person { <g2 gender male> <n2 name bob> }>
    })"));
  SourceCatalog views_only;
  auto materialized = MaterializeView(view, catalog);
  ASSERT_TRUE(materialized.ok());
  views_only.Put(std::move(*materialized));
  auto partial = EvaluateRuleSet(result->rewriting, views_only,
                                 {.answer_name = "ans"});
  ASSERT_TRUE(partial.ok()) << partial.status();
  // Only ann (via p1) is reachable through the view.
  EXPECT_EQ(partial->roots().size(), 1u);
  auto full = Evaluate(query, catalog, {.answer_name = "ans"});
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->roots().size(), 2u);
}

TEST(ContainedTest, UnionOfPartialViewsCanBeEquivalent) {
  // Female and male views together cover a gender-filtered query family.
  TslQuery female = MustParse(
      "<vf(P') fem {<wf(X') nm Z'>}> :- "
      "<P' person {<G' gender female>}>@db AND "
      "<P' person {<X' name Z'>}>@db",
      "Female");
  TslQuery male = MustParse(
      "<vm(P') mal {<wm(X') nm Z'>}> :- "
      "<P' person {<G' gender male>}>@db AND "
      "<P' person {<X' name Z'>}>@db",
      "Male");
  // A query already restricted to females is fully covered by one view.
  TslQuery query = MustParse(
      "<f(P) out Z> :- <P person {<G gender female>}>@db AND "
      "<P person {<X name Z>}>@db",
      "Q");
  RewriteOptions options;
  options.require_total = true;
  auto result = FindMaximallyContainedRewriting(query, {female, male},
                                                options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->equivalent)
      << "the Female view alone answers the female-restricted query";
}

TEST(ContainedTest, SubsumedRulesPruned) {
  // Two copies of one view: accepted rules through either are mutually
  // contained; only one survives pruning.
  TslQuery v1 = MustParse(
      "<a(P') o {<aa(X') m U'>}> :- <P' rec {<X' l U'>}>@db", "CopyA");
  TslQuery v2 = MustParse(
      "<b(P') o {<bb(X') m U'>}> :- <P' rec {<X' l U'>}>@db", "CopyB");
  TslQuery query = MustParse("<f(P) out yes> :- <P rec {<X l u>}>@db", "Q");
  RewriteOptions options;
  options.require_total = true;
  auto result = FindMaximallyContainedRewriting(query, {v1, v2}, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rewriting.rules.size(), 1u);
  EXPECT_TRUE(result->equivalent);
}

TEST(ContainedTest, NothingContainedWhenViewsIrrelevant) {
  TslQuery view = MustParse(
      "<v(X') out U'> :- <X' zebra U'>@db", "Zebra");
  TslQuery query = MustParse("<f(P) out yes> :- <P rec {<X l u>}>@db", "Q");
  auto result = FindMaximallyContainedRewriting(query, {view},
                                                RewriteOptions{
                                                    .require_total = true});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->rewriting.rules.empty());
  EXPECT_FALSE(result->equivalent);
}

TEST(ContainedTest, AllAcceptedRulesAreActuallyContained) {
  // Cross-check the containment claim through composition, independently.
  TslQuery view = MustParse(
      "<v(P') fem {<w(X') m Z'>}> :- "
      "<P' person {<G' gender female>}>@db AND "
      "<P' person {<X' name Z'>}>@db",
      "FemaleNames");
  TslQuery query = MustParse(
      "<f(P) out Z> :- <P person {<X name Z>}>@db", "Q");
  auto result = FindMaximallyContainedRewriting(
      query, {view}, RewriteOptions{.require_total = true});
  ASSERT_TRUE(result.ok());
  for (const TslQuery& rule : result->rewriting.rules) {
    auto composed = ComposeWithViews(rule, {view});
    ASSERT_TRUE(composed.ok());
    auto contained = IsContainedIn(*composed, TslRuleSet::Single(query));
    ASSERT_TRUE(contained.ok());
    EXPECT_TRUE(*contained) << rule.ToString();
  }
}

}  // namespace
}  // namespace tslrw
