#include "tsl/datalog.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;

TEST(DatalogTest, SimpleRuleRenders) {
  TslQuery q = MustParse(testing::kQ3, "Q3");
  auto program = ToDatalog(q);
  ASSERT_TRUE(program.ok()) << program.status();
  // Body over db: top + two object atoms (root and child).
  EXPECT_NE(program->find("db.top(P)"), std::string::npos);
  EXPECT_NE(program->find("db.object(P,'p','set')"), std::string::npos);
  EXPECT_NE(program->find("db.member(P,X)"), std::string::npos);
  EXPECT_NE(program->find("db.object(X,Y,'leland')"), std::string::npos);
  // Head: one answer root + its object fact.
  EXPECT_NE(program->find("ans.top(f(P))"), std::string::npos);
  EXPECT_NE(program->find("ans.object(f(P),'stanford','yes')"),
            std::string::npos);
}

TEST(DatalogTest, HeadStructureBecomesMemberRules) {
  TslQuery q = MustParse(testing::kQ14, "Q14");
  auto program = ToDatalog(q);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_NE(program->find("ans.member(l(X),f(Y))"), std::string::npos);
  EXPECT_NE(program->find("ans.member(f(Y),n(Z))"), std::string::npos);
  EXPECT_NE(program->find("ans.object(l(X),'l','set')"), std::string::npos);
  EXPECT_NE(program->find("ans.object(n(Z),'n',V)"), std::string::npos);
}

TEST(DatalogTest, SubgraphCopyEmitsClosureRules) {
  // (Q11)'s head value V copies a subgraph: the limited recursion shows up.
  TslQuery q = MustParse(testing::kQ11, "Q11");
  auto program = ToDatalog(q);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_NE(program->find("copy_db(C)"), std::string::npos);
  EXPECT_NE(program->find("ans.member(O,C) :- copy_db(O), db.member(O,C)."),
            std::string::npos);
  EXPECT_NE(
      program->find("ans.object(O,L,V) :- copy_db(O), db.object(O,L,V)."),
      std::string::npos);
  EXPECT_NE(program->find("copy_db(C) :- copy_db(O), db.member(O,C)."),
            std::string::npos);
}

TEST(DatalogTest, NoCopyRulesWithoutSubgraphValues) {
  auto program = ToDatalog(MustParse(testing::kQ3, "Q3"));
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->find("copy_"), std::string::npos);
}

TEST(DatalogTest, BodyAtomsDeduplicated) {
  // Both (Q2) conditions share the root atom: it appears once per rule.
  TslQuery q = MustParse(testing::kQ2, "Q2");
  auto program = ToDatalog(q);
  ASSERT_TRUE(program.ok());
  std::string needle = "db.object(P,'person','set')";
  size_t first = program->find(needle);
  ASSERT_NE(first, std::string::npos);
  // Within the first rule line, the atom occurs exactly once.
  size_t line_end = program->find('\n', first);
  std::string line = program->substr(0, line_end);
  size_t second_in_line = line.find(needle, first + 1);
  EXPECT_EQ(second_in_line, std::string::npos);
}

TEST(DatalogTest, QuotedAtomsSurviveSpecialSpelling) {
  TslQuery q = MustParse(testing::kQ10, "Q10");
  auto program = ToDatalog(q);
  ASSERT_TRUE(program.ok());
  EXPECT_NE(program->find("'Stan-student'"), std::string::npos);
}

TEST(DatalogTest, RuleSetsConcatenate) {
  TslRuleSet rules;
  rules.rules.push_back(MustParse(testing::kQ3, "A"));
  rules.rules.push_back(MustParse(testing::kQ5, "B"));
  auto program = ToDatalog(rules);
  ASSERT_TRUE(program.ok());
  EXPECT_NE(program->find("% rule A"), std::string::npos);
  EXPECT_NE(program->find("% rule B"), std::string::npos);
}

}  // namespace
}  // namespace tslrw
