// The \S7 regular-path-expression extension (evaluation side): `l+`
// closure steps, `**` descendant steps, and the `*` any-label shorthand.
// The rewriting pipeline must reject them explicitly — the paper defers
// that theory — while evaluation, chase, and equivalence handle them.

#include <gtest/gtest.h>

#include "equiv/equivalence.h"
#include "eval/evaluator.h"
#include "fixtures.h"
#include "rewrite/compose.h"
#include "rewrite/contained.h"
#include "rewrite/rewriter.h"
#include "tsl/normal_form.h"
#include "tsl/parser.h"
#include "tsl/validate.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

SourceCatalog PartsCatalog() {
  // A part hierarchy: engine contains block contains piston; the doc
  // subobject hangs off the middle level. A cyclic `likes` graph tests
  // termination.
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database db {
      <e1 part {
        <b1 part {
          <p1 part { <s1 serial "s-123"> }>
          <d1 doc "block manual">
        }>
        <w1 weight "300kg">
      }>
      <x1 misc { <y1 inner { <z1 deep "treasure"> }> }>
      <c1 node { <c2 node { @c1 } > }>
    })"));
  return catalog;
}

TEST(RegexStepsTest, ParsingAndPrinting) {
  TslQuery plus = MustParse("<f(X) out yes> :- <R part {<X part+ V>}>@db");
  ASSERT_TRUE(plus.body[0].pattern.value.is_set());
  EXPECT_EQ(plus.body[0].pattern.value.set()[0].step, StepKind::kClosure);
  EXPECT_NE(plus.ToString().find("part+"), std::string::npos);
  EXPECT_EQ(MustParse(plus.ToString()), plus);  // syntactic round-trip

  TslQuery desc = MustParse("<f(X) out yes> :- <R misc {<X ** V>}>@db");
  EXPECT_EQ(desc.body[0].pattern.value.set()[0].step, StepKind::kDescendant);
  EXPECT_NE(desc.ToString().find("**"), std::string::npos);
  EXPECT_EQ(MustParse(desc.ToString()), desc);

  // `*` is sugar for a fresh label variable: a plain child step.
  TslQuery any = MustParse("<f(X) out yes> :- <R misc {<X * V>}>@db");
  EXPECT_EQ(any.body[0].pattern.value.set()[0].step, StepKind::kChild);
  EXPECT_TRUE(any.body[0].pattern.value.set()[0].label.is_var());

  // A closure step needs a constant label.
  EXPECT_FALSE(ParseTslQuery("<f(X) out yes> :- <R a {<X Y+ V>}>@db").ok());
}

TEST(RegexStepsTest, ClosureMatchesChainsOfLikeLabeledObjects) {
  SourceCatalog catalog = PartsCatalog();
  // All parts transitively inside e1 (depth 1 and deeper).
  auto answer = Evaluate(
      MustParse("<f(X) sub yes> :- <E part {<X part+ V>}>@db"), catalog);
  ASSERT_TRUE(answer.ok()) << answer.status();
  // Chains from e1: b1, b1->p1; from b1: p1. Roots f(b1), f(p1).
  EXPECT_EQ(answer->roots().size(), 2u);
  EXPECT_NE(answer->Find(Term::MakeFunc("f", {Term::MakeAtom("b1")})),
            nullptr);
  EXPECT_NE(answer->Find(Term::MakeFunc("f", {Term::MakeAtom("p1")})),
            nullptr);
  // The chain stops at non-part objects: no doc/weight/serial results.
  EXPECT_EQ(answer->Find(Term::MakeFunc("f", {Term::MakeAtom("d1")})),
            nullptr);
}

TEST(RegexStepsTest, ClosureChainsDoNotSkipForeignLabels) {
  // s1 is below p1 via part-chain, but s1 itself is labeled serial: a
  // part+ step cannot land on it, nor pass through d1 (doc) to anything.
  SourceCatalog catalog = PartsCatalog();
  auto answer = Evaluate(
      MustParse("<f(X) hit V> :- <E part {<X part+ {<S serial V>}>}>@db"),
      catalog);
  ASSERT_TRUE(answer.ok());
  // Only p1 carries a serial.
  EXPECT_EQ(answer->roots().size(), 1u);
}

TEST(RegexStepsTest, DescendantReachesAnyDepthAndLabel) {
  SourceCatalog catalog = PartsCatalog();
  auto answer = Evaluate(
      MustParse("<f(X) deep yes> :- <M misc {<X ** \"treasure\">}>@db"),
      catalog);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->roots(),
            std::set<Oid>{Term::MakeFunc("f", {Term::MakeAtom("z1")})});
}

TEST(RegexStepsTest, DescendantTerminatesOnCycles) {
  SourceCatalog catalog = PartsCatalog();
  auto answer = Evaluate(
      MustParse("<f(X) inloop yes> :- <C node {<X ** {}>}>@db"), catalog);
  ASSERT_TRUE(answer.ok()) << answer.status();
  // Descendants of c1: c2 and (via the cycle) c1 itself; both set-valued.
  EXPECT_EQ(answer->roots().size(), 2u);
}

TEST(RegexStepsTest, DescendantEquivalentQueriesViaIdentityMapping) {
  TslQuery a = MustParse("<f(X) out V> :- <M misc {<X ** V>}>@db", "A");
  TslQuery b = MustParse("<f(Y) out W> :- <N misc {<Y ** W>}>@db", "B");
  auto eq = AreEquivalent(a, b);
  ASSERT_TRUE(eq.ok()) << eq.status();
  EXPECT_TRUE(*eq);
  // Descendant and plain-child queries are *not* identified.
  TslQuery c = MustParse("<f(Y) out W> :- <N misc {<Y AnonLabel1 W>}>@db",
                         "C");
  auto neq = AreEquivalent(a, c);
  ASSERT_TRUE(neq.ok());
  EXPECT_FALSE(*neq);
}

TEST(RegexStepsTest, ChaseHandlesClosureEndpointsSoundly) {
  // X occurs as a part+ endpoint and as a direct child with a label
  // variable: the endpoint label (part) pins Y := part.
  TslQuery q = MustParse(
      "<f(X) out yes> :- <E part {<X part+ V>}>@db AND "
      "<R other {<X Y W>}>@db");
  auto chased = ChaseQuery(q);
  ASSERT_TRUE(chased.ok()) << chased.status();
  EXPECT_EQ(chased->BodyVariables().count(
                Term::MakeVar("Y", VarKind::kLabelValue)),
            0u);
  // A descendant endpoint pins nothing.
  TslQuery q2 = MustParse(
      "<f(X) out yes> :- <E misc {<X ** V>}>@db AND <R other {<X Y W>}>@db");
  auto chased2 = ChaseQuery(q2);
  ASSERT_TRUE(chased2.ok());
  EXPECT_EQ(chased2->BodyVariables().count(
                Term::MakeVar("Y", VarKind::kLabelValue)),
            1u);
}

TEST(RegexStepsTest, ValidationRejectsRegexInHeadsAndAtTopLevel) {
  TslQuery in_head = MustParse("<f(X) out yes> :- <R a {<X b V>}>@db");
  in_head.head.value = PatternValue::FromSet(
      {ObjectPattern{Term::MakeFunc("g", {Term::MakeVar(
                         "X", VarKind::kObjectId)}),
                     Term::MakeAtom("b"), PatternValue::FromTerm(
                         Term::MakeVar("V", VarKind::kLabelValue)),
                     StepKind::kClosure}});
  EXPECT_FALSE(CheckRegexStepPlacement(in_head).ok());

  TslQuery top = MustParse("<f(X) out yes> :- <R a {<X b V>}>@db");
  top.body[0].pattern.step = StepKind::kDescendant;
  EXPECT_FALSE(CheckRegexStepPlacement(top).ok());
}

TEST(RegexStepsTest, RewritingPipelineRejectsRegexQueries) {
  TslQuery query = MustParse(
      "<f(X) out yes> :- <E part {<X part+ V>}>@db", "Q");
  TslQuery view = MustParse(testing::kV1, "V1");
  auto rewrite = RewriteQuery(query, {view});
  EXPECT_FALSE(rewrite.ok());
  EXPECT_EQ(rewrite.status().code(), StatusCode::kIllFormedQuery);
  auto contained = FindMaximallyContainedRewriting(query, {view});
  EXPECT_FALSE(contained.ok());

  // And regex *views* are rejected too.
  TslQuery plain = MustParse(testing::kQ3, "Q3");
  TslQuery regex_view = MustParse(
      "<v(X') o V'> :- <E' part {<X' part+ V'>}>@db", "RV");
  auto with_regex_view = RewriteQuery(plain, {regex_view});
  EXPECT_FALSE(with_regex_view.ok());
}

TEST(RegexStepsTest, DirectCompositionOverViewsAlsoRejected) {
  // ComposeWithViews called directly (outside the guarded rewriter) with a
  // regex step over a view condition: explicit error, never silent
  // child-step treatment. Regex conditions over base sources pass through.
  TslQuery view = MustParse(testing::kV1, "V1");
  TslQuery over_view = MustParse(
      "<f(P) out yes> :- <g(P) p {<W v+ U>}>@V1", "Q");
  auto composed = ComposeWithViews(over_view, {view});
  EXPECT_FALSE(composed.ok());
  EXPECT_EQ(composed.status().code(), StatusCode::kIllFormedQuery);

  TslQuery over_base = MustParse(
      "<f(P) out yes> :- <E part {<X part+ V>}>@db AND "
      "<g(P) p {<h(X2) v U>}>@V1",
      "Q2");
  auto passthrough = ComposeWithViews(over_base, {view});
  ASSERT_TRUE(passthrough.ok()) << passthrough.status();
  ASSERT_EQ(passthrough->rules.size(), 1u);
  bool kept_regex = false;
  for (const Condition& c : passthrough->rules[0].body) {
    kept_regex = kept_regex ||
                 c.ToString().find("part+") != std::string::npos;
  }
  EXPECT_TRUE(kept_regex);
}

TEST(RegexStepsTest, NormalFormAndPathsPreserveStepKinds) {
  TslQuery q = MustParse(
      "<f(X,Y) out yes> :- "
      "<E part {<X part+ {<S serial V>}> <Y ** {<D doc W>}>}>@db");
  TslQuery nf = ToNormalForm(q);
  EXPECT_EQ(nf.body.size(), 2u);
  auto paths = BodyPaths(nf);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ((*paths)[0].steps[1].kind, StepKind::kClosure);
  EXPECT_EQ((*paths)[1].steps[1].kind, StepKind::kDescendant);
  EXPECT_EQ(UnflattenPath((*paths)[0]), nf.body[0]);
  EXPECT_EQ(UnflattenPath((*paths)[1]), nf.body[1]);
}

TEST(RegexStepsTest, ClosureVersusExplicitChainsAgreeOnData) {
  // part+ of depth ≤2 equals the union of the depth-1 and depth-2 explicit
  // queries on this catalog (whose part nesting is 2 deep).
  SourceCatalog catalog = PartsCatalog();
  auto closure = Evaluate(
      MustParse("<f(X) sub yes> :- <E part {<X part+ V>}>@db", "Q"),
      catalog);
  ASSERT_TRUE(closure.ok());
  TslRuleSet explicit_rules;
  explicit_rules.rules.push_back(MustParse(
      "<f(X) sub yes> :- <E part {<X part V>}>@db", "Q"));
  explicit_rules.rules.push_back(MustParse(
      "<f(X) sub yes> :- <E part {<M part {<X part V>}>}>@db", "Q"));
  auto unions = EvaluateRuleSet(explicit_rules, catalog,
                                {.answer_name = "Q"});
  ASSERT_TRUE(unions.ok());
  EXPECT_TRUE(closure->Equals(*unions));
}

}  // namespace
}  // namespace tslrw
