#include <gtest/gtest.h>

#include "fixtures.h"
#include "rewrite/mapping.h"
#include "tsl/normal_form.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;

std::vector<Path> Paths(const TslQuery& q) {
  auto paths = BodyPaths(ToNormalForm(q));
  EXPECT_TRUE(paths.ok()) << paths.status();
  return std::move(paths).ValueOrDie();
}

TEST(PartialMappingTest, UnmappedPathsAllowed) {
  // The view's gender path has no counterpart in the query; with
  // allow_unmapped it can be skipped while the name path maps.
  TslQuery view = MustParse(
      "<v(P') fem {<w(X') nm Z'>}> :- "
      "<P' person {<G' gender female>}>@db AND "
      "<P' person {<X' name Z'>}>@db",
      "V");
  TslQuery query = MustParse("<f(P) out Z> :- <P person {<X name Z>}>@db");
  // Total mappings: none.
  auto total = FindBodyMappings(Paths(view), Paths(query));
  EXPECT_TRUE(total.empty());
  // Partial mappings: the name path maps, the gender path is kUnmapped.
  auto partial = FindBodyMappings(Paths(view), Paths(query), Substitution(),
                                  /*allow_unmapped=*/true);
  ASSERT_FALSE(partial.empty());
  bool found = false;
  for (const BodyMapping& m : partial) {
    bool gender_skipped = m.target[0] == BodyMapping::kUnmapped;
    bool name_mapped = m.target[1] == 0;
    found = found || (gender_skipped && name_mapped && !m.IsTotal());
  }
  EXPECT_TRUE(found);
}

TEST(PartialMappingTest, AllUnmappedSuppressed) {
  TslQuery view = MustParse("<v(P') o U'> :- <P' zebra U'>@db", "V");
  TslQuery query = MustParse("<f(P) out yes> :- <P rec {<X l u>}>@db");
  auto partial = FindBodyMappings(Paths(view), Paths(query), Substitution(),
                                  /*allow_unmapped=*/true);
  // The only option would be skipping everything, which carries no signal.
  EXPECT_TRUE(partial.empty());
}

TEST(PartialMappingTest, TotalMappingsAreASubset) {
  TslQuery view = MustParse(testing::kV1, "V1");
  for (std::string_view text : {testing::kQ3, testing::kQ5, testing::kQ7}) {
    TslQuery query = MustParse(text);
    auto total = FindBodyMappings(Paths(view), Paths(query));
    auto partial = FindBodyMappings(Paths(view), Paths(query), Substitution(),
                                    /*allow_unmapped=*/true);
    EXPECT_GE(partial.size(), total.size());
    for (const BodyMapping& t : total) {
      bool present = false;
      for (const BodyMapping& p : partial) {
        present = present || (p.subst == t.subst && p.target == t.target);
      }
      EXPECT_TRUE(present) << "total mapping missing from partial set";
    }
  }
}

TEST(PartialMappingTest, IsTotalReflectsTargets) {
  BodyMapping m;
  m.target = {0, 1};
  EXPECT_TRUE(m.IsTotal());
  m.target.push_back(BodyMapping::kUnmapped);
  EXPECT_FALSE(m.IsTotal());
}

}  // namespace
}  // namespace tslrw
