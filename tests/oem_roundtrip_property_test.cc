// Property: the OEM text format round-trips arbitrary generated databases
// (trees, DAGs via sharing, cyclic graphs), and printing is canonical
// (equal databases print identically). Parameterized over seeds.

#include <gtest/gtest.h>

#include "oem/bisim.h"
#include "oem/database.h"
#include "oem/generator.h"
#include "oem/parser.h"

namespace tslrw {
namespace {

class OemRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

GeneratorOptions OptionsFor(uint64_t seed, double share) {
  GeneratorOptions options;
  options.seed = seed;
  options.num_roots = 4 + static_cast<int>(seed % 5);
  options.max_depth = 2 + static_cast<int>(seed % 3);
  options.max_fanout = 4;
  options.num_labels = 5;
  options.num_values = 5;
  options.share_probability = share;
  return options;
}

TEST_P(OemRoundTripTest, TreeShapedDatabases) {
  OemDatabase db = GenerateOemDatabase("db", OptionsFor(GetParam(), 0.0));
  auto round = ParseOemDatabase(db.ToString());
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_TRUE(db.Equals(*round));
  EXPECT_EQ(db.ToString(), round->ToString());
}

TEST_P(OemRoundTripTest, DagShapedDatabases) {
  OemDatabase db = GenerateOemDatabase("db", OptionsFor(GetParam(), 0.4));
  auto round = ParseOemDatabase(db.ToString());
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_TRUE(db.Equals(*round));
  // Identity implies structural (bisimulation) equivalence too.
  EXPECT_TRUE(StructurallyEquivalent(db, *round));
}

TEST_P(OemRoundTripTest, CyclicDatabases) {
  // Inject a back-edge from a deep set object to a root.
  OemDatabase db = GenerateOemDatabase("db", OptionsFor(GetParam(), 0.2));
  const Oid root = *db.roots().begin();
  Oid deep_set = root;
  for (const auto& [oid, obj] : db.objects()) {
    if (!obj.is_atomic() && !(oid == root)) deep_set = oid;
  }
  ASSERT_TRUE(db.AddEdge(deep_set, root).ok());
  ASSERT_TRUE(db.Validate().ok());
  auto round = ParseOemDatabase(db.ToString());
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_TRUE(db.Equals(*round));
}

TEST_P(OemRoundTripTest, PrintingIsCanonical) {
  // Two independently built copies print byte-identically.
  OemDatabase a = GenerateOemDatabase("db", OptionsFor(GetParam(), 0.3));
  OemDatabase b = GenerateOemDatabase("db", OptionsFor(GetParam(), 0.3));
  ASSERT_TRUE(a.Equals(b));
  EXPECT_EQ(a.ToString(), b.ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OemRoundTripTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace tslrw
