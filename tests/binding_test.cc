#include "eval/binding.h"

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "fixtures.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

Term Atom(const char* s) { return Term::MakeAtom(s); }

TEST(BoundValueTest, TermBindings) {
  BoundValue a = BoundValue::FromTerm(Atom("x"));
  BoundValue b = BoundValue::FromTerm(Atom("x"));
  BoundValue c = BoundValue::FromTerm(Atom("y"));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a.is_term());
  EXPECT_FALSE(a.is_set_value());
  EXPECT_EQ(a.ToString(), "x");
}

TEST(BoundValueTest, SetValueEqualityIsByValueNotByOwner) {
  // p and r are distinct objects with the *same* value (child set {c}).
  OemDatabase db = MustParseDb(R"(
    database db {
      <p rec { <c m v> }>
      <r rec { @c }>
      <s rec { <d m v> }>
    })");
  BoundValue via_p = BoundValue::FromSetValue(&db, Atom("p"));
  BoundValue via_r = BoundValue::FromSetValue(&db, Atom("r"));
  BoundValue via_s = BoundValue::FromSetValue(&db, Atom("s"));
  EXPECT_TRUE(via_p == via_r);   // same child set {c}
  EXPECT_FALSE(via_p == via_s);  // {c} vs {d}: different oids
  EXPECT_FALSE(via_p == BoundValue::FromTerm(Atom("p")));
}

TEST(BoundValueTest, CrossDatabaseEqualityComparesSubgraphs) {
  OemDatabase a = MustParseDb(
      "database a { <p rec { <c m { <e q v> }> }> }");
  OemDatabase same = MustParseDb(
      "database b { <p rec { <c m { <e q v> }> }> }");
  OemDatabase differs = MustParseDb(
      "database c { <p rec { <c m { <e q OTHER> }> }> }");
  BoundValue in_a = BoundValue::FromSetValue(&a, Atom("p"));
  EXPECT_TRUE(in_a == BoundValue::FromSetValue(&same, Atom("p")));
  EXPECT_FALSE(in_a == BoundValue::FromSetValue(&differs, Atom("p")));
}

TEST(BoundValueTest, CyclicSubgraphComparisonTerminates) {
  OemDatabase a = MustParseDb(
      "database a { <p rec { <c m { @p }> }> }");
  OemDatabase b = MustParseDb(
      "database b { <p rec { <c m { @p }> }> }");
  EXPECT_TRUE(BoundValue::FromSetValue(&a, Atom("p")) ==
              BoundValue::FromSetValue(&b, Atom("p")));
}

TEST(BoundValueTest, JoinOnSharedValueVariableAcrossOwners) {
  // End-to-end: V must take the same *value* in both conditions; distinct
  // owners with identical child sets join.
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database db {
      <p a { <c m v> }>
      <r b { @c }>
      <s b { <d m v> }>
    })"));
  auto answer = Evaluate(
      MustParse("<f(P,R) pair yes> :- <P a V>@db AND <R b V>@db"), catalog);
  ASSERT_TRUE(answer.ok()) << answer.status();
  // Only (p, r) share the value {c}; (p, s) differ ({c} vs {d}).
  EXPECT_EQ(answer->roots().size(), 1u);
  EXPECT_NE(answer->Find(Term::MakeFunc("f", {Atom("p"), Atom("r")})),
            nullptr);
}

}  // namespace
}  // namespace tslrw
