#include "rewrite/chase.h"
#include "rewrite/rewriter.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "constraints/dtd.h"
#include "equiv/equivalence.h"
#include "eval/evaluator.h"
#include "fixtures.h"
#include "tsl/normal_form.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;

TEST(ChaseTest, Example34Q11BecomesQ10) {
  // The set-variable rule: V in (Q11) is forced to a set by the second
  // occurrence of P; the chase replaces it with a fresh {<X Y Z>}
  // everywhere, head included, yielding (Q10) up to variable renaming.
  TslQuery q11 = MustParse(testing::kQ11, "Q11");
  auto chased = ChaseQuery(q11);
  ASSERT_TRUE(chased.ok()) << chased.status();
  // The head's V became a one-member set pattern.
  ASSERT_TRUE(chased->head.value.is_set());
  ASSERT_EQ(chased->head.value.set().size(), 1u);
  EXPECT_TRUE(chased->head.value.set()[0].oid.is_var());
  // And the chased query is equivalent to (Q10).
  auto eq = AreEquivalent(*chased, MustParse(testing::kQ10, "Q10"));
  ASSERT_TRUE(eq.ok()) << eq.status();
  EXPECT_TRUE(*eq);
}

TEST(ChaseTest, FixpointIsIdempotent) {
  for (std::string_view text :
       {testing::kQ2, testing::kQ3, testing::kQ9, testing::kQ10,
        testing::kQ11}) {
    auto once = ChaseQuery(MustParse(text));
    ASSERT_TRUE(once.ok()) << once.status() << " for " << text;
    auto twice = ChaseQuery(*once);
    ASSERT_TRUE(twice.ok());
    EXPECT_EQ(*once, *twice) << "chase not idempotent for " << text;
  }
}

TEST(ChaseTest, LabelVariableUnifiedAcrossOccurrences) {
  // X occurs twice; its labels Y and b must coincide, so Y := b.
  TslQuery q = MustParse(
      "<f(X) out Z> :- <P p {<X Y Z>}>@db AND <R r {<X b W>}>@db");
  auto chased = ChaseQuery(q);
  ASSERT_TRUE(chased.ok()) << chased.status();
  std::set<Term> vars = chased->BodyVariables();
  EXPECT_EQ(vars.count(Term::MakeVar("Y", VarKind::kLabelValue)), 0u);
  // Values Z and W also merge into one variable.
  bool has_z = vars.count(Term::MakeVar("Z", VarKind::kLabelValue)) > 0;
  bool has_w = vars.count(Term::MakeVar("W", VarKind::kLabelValue)) > 0;
  EXPECT_NE(has_z, has_w);
}

TEST(ChaseTest, ConflictingLabelsUnsatisfiable) {
  TslQuery q = MustParse(
      "<f(X) out yes> :- <P p {<X a U>}>@db AND <R r {<X b W>}>@db");
  auto chased = ChaseQuery(q);
  EXPECT_FALSE(chased.ok());
  EXPECT_TRUE(chased.status().IsUnsatisfiable());
}

TEST(ChaseTest, ConflictingAtomicValuesUnsatisfiable) {
  TslQuery q = MustParse(
      "<f(X) out yes> :- <P p {<X a u1>}>@db AND <R p {<X a u2>}>@db");
  auto chased = ChaseQuery(q);
  EXPECT_FALSE(chased.ok());
  EXPECT_TRUE(chased.status().IsUnsatisfiable());
}

TEST(ChaseTest, SetVersusAtomicUnsatisfiable) {
  // X is set-valued in one condition and atomic (constant) in the other.
  TslQuery q = MustParse(
      "<f(X) out yes> :- <P p {<X a {<Y b c>}>}>@db AND <R p {<X a v>}>@db");
  auto chased = ChaseQuery(q);
  EXPECT_FALSE(chased.ok());
  EXPECT_TRUE(chased.status().IsUnsatisfiable());
}

TEST(ChaseTest, ValueVariableTakesConstant) {
  TslQuery q = MustParse(
      "<f(X) out Z> :- <P p {<X a Z>}>@db AND <R p {<X a v1>}>@db");
  auto chased = ChaseQuery(q);
  ASSERT_TRUE(chased.ok()) << chased.status();
  // Z := v1 everywhere, including the head.
  ASSERT_TRUE(chased->head.value.is_term());
  EXPECT_EQ(chased->head.value.term(), Term::MakeAtom("v1"));
}

TEST(ChaseTest, DuplicateConditionsDropped) {
  TslQuery q = MustParse(
      "<f(X) out Z> :- <X a Z>@db AND <X a Z>@db");
  auto chased = ChaseQuery(q);
  ASSERT_TRUE(chased.ok());
  EXPECT_EQ(chased->body.size(), 1u);
}

TEST(ChaseTest, SemanticsPreservedOnData) {
  // Chasing must not change query results; validated operationally.
  SourceCatalog catalog;
  catalog.Put(testing::MustParseDb(R"(
    database db {
      <s1 p { <u1 university stanford> <d1 dept { <dn1 deptname cs> }> }>
      <s2 p { <u2 university berkeley> }>
      <s3 p { <u3 university stanford> }>
    })"));
  for (std::string_view text : {testing::kQ10, testing::kQ11}) {
    TslQuery q = MustParse(text, "Q");
    auto chased = ChaseQuery(q);
    ASSERT_TRUE(chased.ok()) << chased.status();
    auto before = Evaluate(q, catalog);
    auto after = Evaluate(*chased, catalog);
    ASSERT_TRUE(before.ok() && after.ok());
    EXPECT_TRUE(before->Equals(*after)) << "chase changed semantics of "
                                        << text;
  }
}

// --- \S3.3: label inference and labeled FDs (Example 3.5) ------------------

class ConstraintChaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dtd = Dtd::Parse(testing::kPersonDtd);
    ASSERT_TRUE(dtd.ok()) << dtd.status();
    constraints_ = StructuralConstraints(std::move(dtd).value());
    options_.constraints = &constraints_;
  }
  StructuralConstraints constraints_;
  ChaseOptions options_;
};

TEST_F(ConstraintChaseTest, Example35Q9ChasesToQ13) {
  // (Q9): label inference makes Y'' = name; the labeled FD p -> name makes
  // X'' = X'; the oid chase merges the two paths. The result must be
  // equivalent to (Q13) — and hence to (Q7).
  TslQuery q9 = MustParse(testing::kQ9, "Q9");
  auto chased = ChaseQuery(q9, options_);
  ASSERT_TRUE(chased.ok()) << chased.status();
  // Y'' is gone.
  EXPECT_EQ(chased->BodyVariables().count(
                Term::MakeVar("Y''", VarKind::kLabelValue)),
            0u);
  auto eq13 = AreEquivalent(*chased, MustParse(testing::kQ13, "Q13"),
                            options_);
  ASSERT_TRUE(eq13.ok()) << eq13.status();
  EXPECT_TRUE(*eq13) << "chased (Q9) = " << chased->ToString();
  auto eq7 = AreEquivalent(*chased, MustParse(testing::kQ7, "Q7"), options_);
  ASSERT_TRUE(eq7.ok());
  EXPECT_TRUE(*eq7);
}

TEST_F(ConstraintChaseTest, WithoutConstraintsQ9StaysApart) {
  TslQuery q9 = MustParse(testing::kQ9, "Q9");
  auto chased = ChaseQuery(q9);  // no constraints
  ASSERT_TRUE(chased.ok());
  auto eq = AreEquivalent(*chased, MustParse(testing::kQ7, "Q7"));
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);
}

TEST_F(ConstraintChaseTest, LabelInferenceFiresOnUniqueMiddle) {
  // In kPersonDtd only `name` among p's children can carry `last`:
  // p.?.last resolves, and p.?.middle resolves too.
  for (const char* grandchild : {"last", "middle"}) {
    TslQuery q = MustParse(
        StrCat("<f(P) out yes> :- <P p {<X Y {<Z ", grandchild,
               " m>}>}>@db"));
    auto chased = ChaseQuery(q, options_);
    ASSERT_TRUE(chased.ok()) << chased.status();
    EXPECT_EQ(chased->BodyVariables().count(
                  Term::MakeVar("Y", VarKind::kLabelValue)),
              0u)
        << "no inference for p.?." << grandchild;
  }
}

TEST_F(ConstraintChaseTest, LabelInferenceNeedsUniqueMiddle) {
  // A DTD where both name and alias are children of p carrying `last`:
  // p.?.last is ambiguous, so Y must survive.
  auto dtd = Dtd::Parse(R"(
    <!ELEMENT p (name, alias?, phone)>
    <!ELEMENT name (last, first)>
    <!ELEMENT alias (last, first)>
    <!ELEMENT phone CDATA>
    <!ELEMENT last CDATA>
    <!ELEMENT first CDATA>
  )");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  StructuralConstraints ambiguous(std::move(dtd).value());
  ChaseOptions options{&ambiguous, {}};
  TslQuery q = MustParse(
      "<f(P) out yes> :- <P p {<X Y {<Z last stanford>}>}>@db");
  auto chased = ChaseQuery(q, options);
  ASSERT_TRUE(chased.ok());
  EXPECT_EQ(chased->BodyVariables().count(
                Term::MakeVar("Y", VarKind::kLabelValue)),
            1u);
  // first is equally ambiguous; phone's CDATA never hosts children.
  TslQuery q2 = MustParse(
      "<f(P) out yes> :- <P p {<X Y {<Z first jo>}>}>@db");
  auto chased2 = ChaseQuery(q2, options);
  ASSERT_TRUE(chased2.ok());
  EXPECT_EQ(chased2->BodyVariables().count(
                Term::MakeVar("Y", VarKind::kLabelValue)),
            1u);
}

TEST_F(ConstraintChaseTest, LabeledFdMergesSiblings) {
  // p has exactly one phone: two phone children of one person unify.
  TslQuery q = MustParse(
      "<f(P) out yes> :- <P p {<A phone u>}>@db AND <P p {<B phone u>}>@db");
  auto chased = ChaseQuery(q, options_);
  ASSERT_TRUE(chased.ok()) << chased.status();
  EXPECT_EQ(chased->body.size(), 1u);  // merged then deduplicated
}

TEST_F(ConstraintChaseTest, StarMultiplicityInducesNoFd) {
  // address* admits several addresses: no merge.
  TslQuery q = MustParse(
      "<f(P) out yes> :- <P p {<A address u>}>@db AND "
      "<P p {<B address u>}>@db");
  auto chased = ChaseQuery(q, options_);
  ASSERT_TRUE(chased.ok());
  EXPECT_EQ(chased->body.size(), 2u);
}

TEST_F(ConstraintChaseTest, DescendingBelowCdataUnsatisfiable) {
  // phone is CDATA: a pattern demanding subobjects of a phone can never
  // match conforming data (structural-conflict extension).
  TslQuery q = MustParse(
      "<f(P) out yes> :- <P p {<H phone {<Z digit d>}>}>@db");
  auto chased = ChaseQuery(q, options_);
  EXPECT_FALSE(chased.ok());
  EXPECT_TRUE(chased.status().IsUnsatisfiable());
  // Same for a `{}` tail (set-ness demanded).
  TslQuery q2 = MustParse("<f(P) out yes> :- <P p {<H phone {}>}>@db");
  auto chased2 = ChaseQuery(q2, options_);
  EXPECT_FALSE(chased2.ok());
  EXPECT_TRUE(chased2.status().IsUnsatisfiable());
  // An atomic-value tail is fine.
  TslQuery q3 = MustParse("<f(P) out N> :- <P p {<H phone N>}>@db");
  EXPECT_TRUE(ChaseQuery(q3, options_).ok());
}

TEST_F(ConstraintChaseTest, ForbiddenChildLabelUnsatisfiable) {
  // p's content model has no zebra child; undeclared parents stay open.
  TslQuery q = MustParse("<f(P) out yes> :- <P p {<Z zebra u>}>@db");
  auto chased = ChaseQuery(q, options_);
  EXPECT_FALSE(chased.ok());
  EXPECT_TRUE(chased.status().IsUnsatisfiable());
  TslQuery open = MustParse(
      "<f(P) out yes> :- <P undeclared {<Z zebra u>}>@db");
  EXPECT_TRUE(ChaseQuery(open, options_).ok());
  // Without constraints, no conflict is raised at all.
  EXPECT_TRUE(ChaseQuery(q).ok());
}

TEST_F(ConstraintChaseTest, ConflictsPruneRewriterCandidates) {
  // A query that the DTD renders unsatisfiable yields an empty rewriting
  // result rather than an error (consistent with the unsat contract).
  TslQuery q = MustParse("<f(P) out yes> :- <P p {<Z zebra u>}>@db", "Q");
  RewriteOptions options;
  options.constraints = &constraints_;
  auto result = RewriteQuery(q, {MustParse(testing::kV1, "V1")}, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->rewritings.empty());
}

TEST_F(ConstraintChaseTest, FdConflictUnsatisfiable) {
  // The unique phone of P would need two different atomic values.
  TslQuery q = MustParse(
      "<f(P) out yes> :- <P p {<A phone u1>}>@db AND "
      "<P p {<B phone u2>}>@db");
  auto chased = ChaseQuery(q, options_);
  EXPECT_FALSE(chased.ok());
  EXPECT_TRUE(chased.status().IsUnsatisfiable());
}

}  // namespace
}  // namespace tslrw
