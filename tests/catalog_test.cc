#include "catalog/compiler.h"

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/diagnostic.h"
#include "catalog/diff.h"
#include "catalog/signature.h"
#include "constraints/dtd.h"
#include "fixtures.h"
#include "obs/metrics.h"
#include "rewrite/chase.h"
#include "rewrite/rewriter.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;

std::shared_ptr<const CompiledCatalog> MustCompile(
    const std::vector<TslQuery>& views,
    const StructuralConstraints* constraints = nullptr,
    CatalogCompileOptions options = {}) {
  auto catalog = CompileCatalog(DescribeViews(views), constraints, options);
  EXPECT_TRUE(catalog.ok()) << catalog.status();
  return std::move(catalog).ValueOrDie();
}

const Diagnostic* FindDiag(const CompiledCatalog& catalog, DiagCode code,
                           std::string_view rule) {
  for (const Diagnostic& d : catalog.diagnostics()) {
    if (d.code == code && d.rule == rule) return &d;
  }
  return nullptr;
}

StructuralConstraints OneLeafDtd() {
  auto dtd = Dtd::Parse("<!ELEMENT root (leaf)> <!ELEMENT leaf CDATA>");
  EXPECT_TRUE(dtd.ok()) << dtd.status();
  return StructuralConstraints(std::move(dtd).ValueOrDie());
}

/// The compile-time chase options: constraints plus every view name exempt
/// (what CompileCatalog itself uses; probes must match by contract).
ChaseOptions CompileChaseOptions(const std::vector<TslQuery>& views,
                                 const StructuralConstraints* constraints) {
  ChaseOptions options;
  options.constraints = constraints;
  for (const TslQuery& v : views) {
    options.constraint_exempt_sources.insert(v.name);
  }
  return options;
}

TEST(CatalogCompilerTest, IndexesACleanCatalogWithoutDiagnostics) {
  std::vector<TslQuery> views = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db",
                "V0"),
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l1 Z'>}>@db",
                "V1"),
  };
  auto catalog = MustCompile(views);
  ASSERT_EQ(catalog->entries().size(), 2u);
  for (const CompiledViewEntry& e : catalog->entries()) {
    EXPECT_EQ(e.state, CompiledViewState::kIndexed);
    EXPECT_EQ(e.source, "db");
    EXPECT_NE(e.raw_fingerprint, 0u);
    EXPECT_FALSE(e.chased_text.empty());
    EXPECT_FALSE(e.required.empty());
    EXPECT_FALSE(e.anchor.empty());
    EXPECT_TRUE(std::binary_search(e.required.begin(), e.required.end(),
                                   e.anchor));
  }
  EXPECT_TRUE(catalog->servable());
  EXPECT_EQ(catalog->error_count(), 0u);
  EXPECT_TRUE(catalog->diagnostics().empty())
      << catalog->diagnostics().front().ToString();
  EXPECT_NE(catalog->catalog_fingerprint(), 0u);
}

TEST(CatalogCompilerTest, Tsl201FlagsAlphaEquivalentDuplicates) {
  std::vector<TslQuery> views = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db",
                "VA"),
      MustParse("<v(Q') vout {<w(Y') m W'>}> :- <Q' root {<Y' l0 W'>}>@db",
                "VB"),
  };
  auto catalog = MustCompile(views);
  // The later catalog entry is the duplicate; the first copy is unflagged.
  const Diagnostic* d = FindDiag(*catalog, DiagCode::kDuplicateView, "VB");
  ASSERT_NE(d, nullptr) << catalog->Summary();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_TRUE(d->span.valid());
  EXPECT_NE(d->message.find("VA"), std::string::npos) << d->message;
  EXPECT_EQ(FindDiag(*catalog, DiagCode::kDuplicateView, "VA"), nullptr);
}

TEST(CatalogCompilerTest, Tsl200FlagsSubsumedViews) {
  // Every answer of the constant-tail view is produced by the variable-tail
  // view, so Narrow ⊑ Wide (and not conversely).
  std::vector<TslQuery> views = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db",
                "Wide"),
      MustParse("<v(P') vout {<w(X') m c0>}> :- <P' root {<X' l0 c0>}>@db",
                "Narrow"),
  };
  auto catalog = MustCompile(views);
  ASSERT_FALSE(catalog->lattice().empty());
  const CatalogLatticeEdge& edge = catalog->lattice().front();
  EXPECT_EQ(catalog->entries()[edge.subsumed].name, "Narrow");
  EXPECT_EQ(catalog->entries()[edge.subsuming].name, "Wide");
  EXPECT_FALSE(edge.equivalent);

  const Diagnostic* d = FindDiag(*catalog, DiagCode::kViewSubsumed, "Narrow");
  ASSERT_NE(d, nullptr) << catalog->Summary();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_TRUE(d->span.valid());
  EXPECT_NE(d->message.find("Wide"), std::string::npos) << d->message;
  EXPECT_EQ(FindDiag(*catalog, DiagCode::kViewSubsumed, "Wide"), nullptr);
}

TEST(CatalogCompilerTest, Tsl202FlagsViewsProvenEmptyByTheChase) {
  // Under <!ELEMENT root (leaf)> a root has exactly one leaf child, so the
  // two conditions fuse and the distinct constant tails conflict.
  StructuralConstraints constraints = OneLeafDtd();
  std::vector<TslQuery> views = {
      MustParse("<v(P') vout yes> :- "
                "<P' root {<X1' leaf va>}>@db AND "
                "<P' root {<X2' leaf vb>}>@db",
                "Empty"),
      MustParse("<v(P') vout Z'> :- <P' root {<X' leaf Z'>}>@db", "Live"),
  };
  auto catalog = MustCompile(views, &constraints);
  const CompiledViewEntry* empty = nullptr;
  for (const CompiledViewEntry& e : catalog->entries()) {
    if (e.name == "Empty") empty = &e;
  }
  ASSERT_NE(empty, nullptr);
  EXPECT_EQ(empty->state, CompiledViewState::kUnsatisfiable);

  const Diagnostic* d =
      FindDiag(*catalog, DiagCode::kViewUnsatisfiable, "Empty");
  ASSERT_NE(d, nullptr) << catalog->Summary();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_TRUE(d->span.valid());
  EXPECT_GE(catalog->error_count(), 1u);
  // An unsatisfiable view is still a servable catalog: probes skip it,
  // exactly as the full scan drops it.
  EXPECT_TRUE(catalog->servable());
}

TEST(CatalogCompilerTest, Tsl203FlagsBoundVariablesAbsentFromTheHead) {
  Capability cap;
  cap.view =
      MustParse("<v(P') vout Z'> :- <P' root {<X' l0 Z'>}>@db", "Bound");
  cap.bound_variables = {"X'"};  // in the body, never in the head
  SourceDescription sd{"db", {cap}};
  auto catalog = CompileCatalog({sd}, nullptr);
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  const Diagnostic* d =
      FindDiag(**catalog, DiagCode::kUnreachableCapability, "Bound");
  ASSERT_NE(d, nullptr) << (*catalog)->Summary();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_TRUE(d->span.valid());
  EXPECT_NE(d->message.find("X'"), std::string::npos) << d->message;
}

TEST(CatalogCompilerTest, Tsl204BudgetedViewsFallBackToOnlineChase) {
  std::vector<TslQuery> views = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db",
                "Big"),
  };
  CatalogCompileOptions options;
  options.max_chase_conditions = 0;
  auto catalog = MustCompile(views, nullptr, options);
  ASSERT_EQ(catalog->entries().size(), 1u);
  EXPECT_EQ(catalog->entries()[0].state, CompiledViewState::kAlwaysScan);

  const Diagnostic* d =
      FindDiag(*catalog, DiagCode::kChaseBudgetExceeded, "Big");
  ASSERT_NE(d, nullptr) << catalog->Summary();
  EXPECT_EQ(d->severity, Severity::kWarning);

  // The budgeted view is admitted by every probe and chased per query, so
  // indexed rewriting still matches the full scan byte for byte.
  TslQuery query =
      MustParse("<f(P) out yes> :- <P root {<X l0 W>}>@db", "Q");
  RewriteOptions plain;
  auto full = RewriteQuery(query, views, plain);
  ASSERT_TRUE(full.ok()) << full.status();
  RewriteOptions indexed;
  indexed.view_index = catalog.get();
  auto fast = RewriteQuery(query, views, indexed);
  ASSERT_TRUE(fast.ok()) << fast.status();
  ASSERT_EQ(full->rewritings.size(), fast->rewritings.size());
  for (size_t i = 0; i < full->rewritings.size(); ++i) {
    EXPECT_EQ(full->rewritings[i].ToString(), fast->rewritings[i].ToString());
  }
}

TEST(CatalogCompilerTest, DiagnosticsComeOutSorted) {
  // Three findings from different passes; the report must still be in
  // (line, column, code) order however the passes appended them.
  StructuralConstraints constraints = OneLeafDtd();
  std::vector<TslQuery> views = {
      MustParse("<v(P') vout yes> :- "
                "<P' root {<X1' leaf va>}>@db AND "
                "<P' root {<X2' leaf vb>}>@db",
                "Empty"),
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db",
                "DupA"),
      MustParse("<v(Q') vout {<w(Y') m W'>}> :- <Q' root {<Y' l0 W'>}>@db",
                "DupB"),
  };
  auto catalog = MustCompile(views, &constraints);
  ASSERT_GE(catalog->diagnostics().size(), 2u);
  const std::vector<Diagnostic>& diags = catalog->diagnostics();
  for (size_t i = 1; i < diags.size(); ++i) {
    const Diagnostic& a = diags[i - 1];
    const Diagnostic& b = diags[i];
    auto key = [](const Diagnostic& d) {
      return std::make_tuple(d.span.line, d.span.column,
                             static_cast<int>(d.code), d.rule, d.message);
    };
    EXPECT_LE(key(a), key(b)) << a.ToString() << " vs " << b.ToString();
  }
}

TEST(CatalogCompilerTest, ProbeSkipsViewsWhoseSignaturesCannotMap) {
  std::vector<TslQuery> views = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db",
                "L0"),
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l1 Z'>}>@db",
                "L1"),
  };
  auto catalog = MustCompile(views);
  ChaseOptions chase_options = CompileChaseOptions(views, nullptr);
  TslQuery query =
      MustParse("<f(P) out yes> :- <P root {<X l0 W>}>@db", "Q");
  auto chased = ChaseQuery(query, chase_options);
  ASSERT_TRUE(chased.ok()) << chased.status();

  ViewProbeOutcome outcome;
  auto probed =
      catalog->ChasedViewsFor(*chased, views, chase_options, &outcome);
  ASSERT_TRUE(probed.ok()) << probed.status();
  ASSERT_TRUE(probed->has_value());
  // L1 requires the ground label l1 the query cannot provide: no
  // containment mapping can exist, so the probe prunes it.
  EXPECT_EQ(outcome.admitted, 1u);
  EXPECT_EQ(outcome.skipped, 1u);
  ASSERT_EQ((*probed)->size(), 1u);
  EXPECT_EQ((*probed)->front().name, "L0");
}

TEST(CatalogCompilerTest, ProbeForceIncludesViewsTheQueryNames) {
  // The query's body ranges over the view L1 itself; composition resolves
  // that name from the returned list, so the probe must keep L1 even
  // though no signature admits it.
  std::vector<TslQuery> views = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l1 Z'>}>@db",
                "L1"),
  };
  auto catalog = MustCompile(views);
  ChaseOptions chase_options = CompileChaseOptions(views, nullptr);
  TslQuery query =
      MustParse("<f(P) out yes> :- <v(P) vout {<X m W>}>@L1", "Q");
  auto chased = ChaseQuery(query, chase_options);
  ASSERT_TRUE(chased.ok()) << chased.status();

  ViewProbeOutcome outcome;
  auto probed =
      catalog->ChasedViewsFor(*chased, views, chase_options, &outcome);
  ASSERT_TRUE(probed.ok()) << probed.status();
  ASSERT_TRUE(probed->has_value());
  EXPECT_EQ(outcome.admitted, 1u);
  EXPECT_EQ(outcome.skipped, 0u);
}

TEST(CatalogCompilerTest, CoversViewsRequiresTheExactViewVector) {
  std::vector<TslQuery> views = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db",
                "A"),
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l1 Z'>}>@db",
                "B"),
  };
  auto catalog = MustCompile(views);
  EXPECT_TRUE(catalog->CoversViews(views));
  // Subsets (failover replans) and permutations decline: the probe answers
  // only for the compiled catalog, everything else takes the full scan.
  EXPECT_FALSE(catalog->CoversViews({views[0]}));
  EXPECT_FALSE(catalog->CoversViews({views[1], views[0]}));
  EXPECT_FALSE(catalog->CoversViews({}));

  ChaseOptions chase_options = CompileChaseOptions(views, nullptr);
  TslQuery query =
      MustParse("<f(P) out yes> :- <P root {<X l0 W>}>@db", "Q");
  auto chased = ChaseQuery(query, chase_options);
  ASSERT_TRUE(chased.ok()) << chased.status();
  auto probed = catalog->ChasedViewsFor(*chased, {views[0]}, chase_options,
                                        nullptr);
  ASSERT_TRUE(probed.ok()) << probed.status();
  EXPECT_FALSE(probed->has_value());
}

TEST(CatalogCompilerTest, ValidateAgainstPinsDefinitionsAndConstraints) {
  std::vector<TslQuery> views = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db",
                "A"),
  };
  auto catalog = MustCompile(views);
  EXPECT_TRUE(catalog->ValidateAgainst(views, nullptr).ok());

  std::vector<TslQuery> changed = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l1 Z'>}>@db",
                "A"),
  };
  EXPECT_FALSE(catalog->ValidateAgainst(changed, nullptr).ok());

  StructuralConstraints constraints = OneLeafDtd();
  EXPECT_FALSE(catalog->ValidateAgainst(views, &constraints).ok());
  EXPECT_FALSE(catalog->ValidateAgainst({}, nullptr).ok());
}

TEST(CatalogCompilerTest, InvalidViewsMakeTheCatalogUnservable) {
  std::vector<TslQuery> views = {
      // Unsafe: head variable W never bound in the body.
      MustParse("<v(P') vout W> :- <P' root {<X' l0 Z'>}>@db", "Bad"),
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db",
                "Good"),
  };
  auto catalog = MustCompile(views);
  EXPECT_FALSE(catalog->servable());
  EXPECT_FALSE(catalog->CoversViews(views));
  EXPECT_FALSE(catalog->ValidateAgainst(views, nullptr).ok());
  // The analyzer fold reports the specifics as error-level findings.
  EXPECT_GE(catalog->error_count(), 1u);
}

TEST(CatalogCompilerTest, DescribeViewsGroupsBySource) {
  std::vector<TslQuery> views = {
      MustParse("<v(P') a {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@s1",
                "A"),
      MustParse("<v(P') b {<w(X') m Z'>}> :- <P' root {<X' l1 Z'>}>@s2",
                "B"),
      MustParse("<v(P') c {<w(X') m Z'>}> :- <P' root {<X' l2 Z'>}>@s1",
                "C"),
  };
  std::vector<SourceDescription> sources = DescribeViews(views);
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[0].source, "s1");
  ASSERT_EQ(sources[0].capabilities.size(), 2u);
  EXPECT_EQ(sources[0].capabilities[0].view.name, "A");
  EXPECT_EQ(sources[0].capabilities[1].view.name, "C");
  EXPECT_EQ(sources[1].source, "s2");
  ASSERT_EQ(sources[1].capabilities.size(), 1u);
  EXPECT_EQ(sources[1].capabilities[0].view.name, "B");
}

TEST(CatalogCompilerTest, SummaryAndMetricsReportTheCompile) {
  MetricRegistry metrics;
  CatalogCompileOptions options;
  options.metrics = &metrics;
  std::vector<TslQuery> views = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db",
                "A"),
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l1 Z'>}>@db",
                "B"),
  };
  auto catalog = MustCompile(views, nullptr, options);
  std::string summary = catalog->Summary();
  EXPECT_NE(summary.find("compiled 2 view(s)"), std::string::npos) << summary;
  EXPECT_NE(summary.find("2 indexed"), std::string::npos) << summary;
  EXPECT_EQ(metrics.GetCounter("catalog.compiles")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("catalog.views_compiled")->value(), 2u);
  EXPECT_EQ(metrics.GetCounter("catalog.views_indexed")->value(), 2u);
}

TEST(CatalogSignatureTest, FeaturesAreAlphaInvariantNecessaryConditions) {
  ChaseOptions plain;
  TslQuery va = MustParse(
      "<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db", "A");
  TslQuery vb = MustParse(
      "<v(Q') vout {<w(Y') m W'>}> :- <Q' root {<Y' l0 W'>}>@db", "B");
  auto ca = ChaseQuery(va, plain);
  auto cb = ChaseQuery(vb, plain);
  ASSERT_TRUE(ca.ok() && cb.ok());
  auto ra = RequiredFeatures(*ca);
  auto rb = RequiredFeatures(*cb);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(*ra, *rb);  // α-renaming does not change the signature
  EXPECT_TRUE(std::is_sorted(ra->begin(), ra->end()));

  // A query matching the view provides every required feature; a query on
  // a different label misses at least one.
  TslQuery q_hit =
      MustParse("<f(P) out yes> :- <P root {<X l0 W>}>@db", "QH");
  TslQuery q_miss =
      MustParse("<f(P) out yes> :- <P root {<X l1 W>}>@db", "QM");
  auto ch = ChaseQuery(q_hit, plain);
  auto cm = ChaseQuery(q_miss, plain);
  ASSERT_TRUE(ch.ok() && cm.ok());
  auto ph = ProvidedFeatures(*ch);
  auto pm = ProvidedFeatures(*cm);
  ASSERT_TRUE(ph.ok() && pm.ok());
  auto subset = [](const std::vector<std::string>& req,
                   const std::set<std::string>& prov) {
    for (const std::string& r : req) {
      if (prov.count(r) == 0) return false;
    }
    return true;
  };
  EXPECT_TRUE(subset(*ra, ph->provided));
  EXPECT_FALSE(subset(*ra, pm->provided));
}

// --- catalog diffs (the negative paths selective maintenance relies on) -----

TEST(CatalogDiffTest, AlphaRenamedViewDiffsAsUnchanged) {
  // Same view name, consistently renamed variables: plan-equivalent, so
  // the delta must be empty — a swap to this catalog is a maintenance
  // no-op and every cached plan survives.
  std::vector<SourceDescription> old_sources = DescribeViews({MustParse(
      "<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db", "V0")});
  std::vector<SourceDescription> new_sources = DescribeViews({MustParse(
      "<v(Q') vout {<w(Y') m W'>}> :- <Q' root {<Y' l0 W'>}>@db", "V0")});
  CatalogDelta delta =
      ComputeCatalogDelta(old_sources, nullptr, new_sources, nullptr);
  EXPECT_TRUE(delta.empty()) << delta.ToString();
  EXPECT_TRUE(delta.changed.empty());
  EXPECT_FALSE(delta.constraints_changed);
}

TEST(CatalogDiffTest, ConstraintBodyOnlyChangeDiffsAsChanged) {
  // Identical views, different DTD: no view-level entries, but the
  // constraints fingerprint differs — and constraints shape every chase,
  // so the delta must not read as empty.
  std::vector<SourceDescription> sources = DescribeViews({MustParse(
      "<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' l0 Z'>}>@db", "V0")});
  StructuralConstraints one_leaf = OneLeafDtd();
  auto other_dtd =
      Dtd::Parse("<!ELEMENT root (leaf, extra)> <!ELEMENT leaf CDATA>");
  ASSERT_TRUE(other_dtd.ok()) << other_dtd.status();
  StructuralConstraints other(std::move(other_dtd).ValueOrDie());

  CatalogDelta delta =
      ComputeCatalogDelta(sources, &one_leaf, sources, &other);
  EXPECT_TRUE(delta.constraints_changed) << delta.ToString();
  EXPECT_FALSE(delta.empty());
  EXPECT_TRUE(delta.added.empty() && delta.removed.empty() &&
              delta.changed.empty());

  // The same DTD on both sides is not a constraints change...
  EXPECT_FALSE(ComputeCatalogDelta(sources, &one_leaf, sources, &one_leaf)
                   .constraints_changed);
  // ...but attaching or dropping constraints entirely is.
  EXPECT_TRUE(ComputeCatalogDelta(sources, nullptr, sources, &one_leaf)
                  .constraints_changed);
  EXPECT_TRUE(ComputeCatalogDelta(sources, &one_leaf, sources, nullptr)
                  .constraints_changed);
}

}  // namespace
}  // namespace tslrw
