#include "oem/edge_labeled.h"

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "fixtures.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;

Term Atom(const char* s) { return Term::MakeAtom(s); }

EdgeLabeledDatabase MovieGraph() {
  EdgeLabeledDatabase db("movies");
  EXPECT_TRUE(db.AddNode(Atom("m1")).ok());
  EXPECT_TRUE(db.AddAtomicNode(Atom("t1"), "Metropolis").ok());
  EXPECT_TRUE(db.AddAtomicNode(Atom("d1"), "Lang").ok());
  EXPECT_TRUE(db.AddEdge(Atom("m1"), "title", Atom("t1")).ok());
  EXPECT_TRUE(db.AddEdge(Atom("m1"), "director", Atom("d1")).ok());
  EXPECT_TRUE(db.AddRoot(Atom("m1")).ok());
  return db;
}

TEST(EdgeLabeledTest, BasicConstructionAndValidation) {
  EdgeLabeledDatabase db = MovieGraph();
  const EdgeLabeledDatabase::Node* m1 = db.Find(Atom("m1"));
  ASSERT_NE(m1, nullptr);
  EXPECT_FALSE(m1->atomic_value.has_value());
  EXPECT_EQ(m1->out.size(), 2u);
  // Atomic nodes cannot grow edges; unknown sources are rejected.
  EXPECT_FALSE(db.AddEdge(Atom("t1"), "x", Atom("d1")).ok());
  EXPECT_FALSE(db.AddEdge(Atom("ghost"), "x", Atom("d1")).ok());
  EXPECT_FALSE(db.AddRoot(Atom("ghost")).ok());
}

TEST(EdgeLabeledTest, EncodeProducesQueryableOem) {
  auto encoded = EncodeEdgeLabeled(MovieGraph());
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  EXPECT_TRUE(encoded->Validate().ok());
  // m1 --title--> t1 becomes <m1 node {<edge(m1,title,t1) title {<t1 ...>}>}>.
  Term edge_oid = Term::MakeFunc(
      "edge", {Atom("m1"), Atom("title"), Atom("t1")});
  const OemObject* edge = encoded->Find(edge_oid);
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->label, "title");

  // TSL paths over the encoding follow node/edge alternation.
  SourceCatalog catalog;
  catalog.Put(*encoded);
  auto answer = Evaluate(
      MustParse("<f(M) out T> :- "
                "<M node {<E title {<V node T>}>}>@movies"),
      catalog);
  ASSERT_TRUE(answer.ok()) << answer.status();
  ASSERT_EQ(answer->roots().size(), 1u);
  const OemObject* hit =
      answer->Find(Term::MakeFunc("f", {Atom("m1")}));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->value.atom(), "Metropolis");
}

TEST(EdgeLabeledTest, MultipleLabelsIntoOneNode) {
  // The \S6 point: in the edge-labeled model a node has no label of its
  // own, so two parents may reach it under different labels.
  EdgeLabeledDatabase db("g");
  ASSERT_TRUE(db.AddNode(Atom("a")).ok());
  ASSERT_TRUE(db.AddNode(Atom("b")).ok());
  ASSERT_TRUE(db.AddAtomicNode(Atom("shared"), "v").ok());
  ASSERT_TRUE(db.AddEdge(Atom("a"), "left", Atom("shared")).ok());
  ASSERT_TRUE(db.AddEdge(Atom("b"), "right", Atom("shared")).ok());
  ASSERT_TRUE(db.AddRoot(Atom("a")).ok());
  ASSERT_TRUE(db.AddRoot(Atom("b")).ok());
  auto encoded = EncodeEdgeLabeled(db);
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  // The node-labeled encoding cannot express this directly on `shared`;
  // the synthetic edge objects carry the two labels instead.
  EXPECT_NE(encoded->Find(Term::MakeFunc(
                "edge", {Atom("a"), Atom("left"), Atom("shared")})),
            nullptr);
  EXPECT_NE(encoded->Find(Term::MakeFunc(
                "edge", {Atom("b"), Atom("right"), Atom("shared")})),
            nullptr);
}

TEST(EdgeLabeledTest, EncodeDecodeRoundTrip) {
  EdgeLabeledDatabase db = MovieGraph();
  auto encoded = EncodeEdgeLabeled(db);
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeEdgeLabeled(*encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->roots(), db.roots());
  const auto* m1 = decoded->Find(Atom("m1"));
  ASSERT_NE(m1, nullptr);
  EXPECT_EQ(m1->out.size(), 2u);
  const auto* t1 = decoded->Find(Atom("t1"));
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1->atomic_value, "Metropolis");
}

TEST(EdgeLabeledTest, CyclicGraphsEncode) {
  EdgeLabeledDatabase db("g");
  ASSERT_TRUE(db.AddNode(Atom("a")).ok());
  ASSERT_TRUE(db.AddNode(Atom("b")).ok());
  ASSERT_TRUE(db.AddEdge(Atom("a"), "next", Atom("b")).ok());
  ASSERT_TRUE(db.AddEdge(Atom("b"), "next", Atom("a")).ok());
  ASSERT_TRUE(db.AddRoot(Atom("a")).ok());
  auto encoded = EncodeEdgeLabeled(db);
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  EXPECT_TRUE(encoded->Validate().ok());
  EXPECT_EQ(encoded->ReachableOids().size(), 4u);  // 2 nodes + 2 edges
}

TEST(EdgeLabeledTest, DanglingEdgeRejectedAtEncode) {
  EdgeLabeledDatabase db("g");
  ASSERT_TRUE(db.AddNode(Atom("a")).ok());
  // The edge target never gets declared.
  ASSERT_TRUE(db.AddEdge(Atom("a"), "next", Atom("ghost")).ok());
  ASSERT_TRUE(db.AddRoot(Atom("a")).ok());
  auto encoded = EncodeEdgeLabeled(db);
  EXPECT_FALSE(encoded.ok());
}

TEST(EdgeLabeledTest, DecodeRejectsForeignShapes) {
  OemDatabase not_encoded("x");
  ASSERT_TRUE(not_encoded.PutSet(Atom("a"), "person").ok());
  ASSERT_TRUE(not_encoded.AddRoot(Atom("a")).ok());
  EXPECT_FALSE(DecodeEdgeLabeled(not_encoded).ok());
}

}  // namespace
}  // namespace tslrw
