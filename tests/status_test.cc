#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace tslrw {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, FailureCarriesCodeAndMessage) {
  Status st = Status::ParseError("unexpected '>'");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsParseError());
  EXPECT_EQ(st.message(), "unexpected '>'");
  EXPECT_EQ(st.ToString(), "ParseError: unexpected '>'");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::ParseError("m").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::IllFormedQuery("m").code(), StatusCode::kIllFormedQuery);
  EXPECT_EQ(Status::Unsatisfiable("m").code(), StatusCode::kUnsatisfiable);
  EXPECT_EQ(Status::FusionConflict("m").code(), StatusCode::kFusionConflict);
  EXPECT_EQ(Status::NotFound("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("m").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::NotFound("x");
  Status b = a;
  EXPECT_EQ(b.message(), "x");
  EXPECT_TRUE(b.IsNotFound());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  TSLRW_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_FALSE(UsesReturnNotOk(-1).ok());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  TSLRW_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndStatusAccess) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  Result<int> bad = ParsePositive(-3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultTest, MoveOnlyFriendly) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace tslrw
