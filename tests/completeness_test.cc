// CL-COMPLETE: constructed families where a rewriting is known to exist;
// Theorem 5.5's completeness half says the algorithm must find one. Also
// checks the variable discipline of Lemma 5.3 (rewritings introduce no
// variables beyond the query's own) and the Lemma 5.2 size bound.

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "fixtures.h"
#include "rewrite/rewriter.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;

/// The identity/dump view over label `rec` republishes everything: any
/// query over rec-objects must be rewritable through it.
TslQuery DumpView() {
  return MustParse(
      "<d(P') rec {<X' Y' Z'>}> :- <P' rec {<X' Y' Z'>}>@db", "Dump");
}

class DumpCompletenessTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DumpCompletenessTest, RewritingExistsThroughDumpView) {
  TslQuery query = MustParse(GetParam(), "Q");
  auto result = RewriteQuery(query, {DumpView()});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->rewritings.size(), 1u)
      << "no rewriting found for " << query.ToString();
  // Lemma 5.2: at most k conditions; Lemma 5.3: no foreign variables.
  std::set<Term> query_vars = query.BodyVariables();
  for (const Term& v : query.HeadVariables()) query_vars.insert(v);
  for (const TslQuery& rw : result->rewritings) {
    EXPECT_LE(rw.body.size(), query.body.size());
    for (const Term& v : rw.BodyVariables()) {
      EXPECT_TRUE(query_vars.count(v) > 0)
          << "rewriting invents variable " << v.ToString() << " in "
          << rw.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    QueriesOverRecords, DumpCompletenessTest,
    ::testing::Values(
        // Flat value filters.
        "<f(P) out yes> :- <P rec {<X name leland>}>@db",
        "<f(P) out Z> :- <P rec {<X name Z>}>@db",
        // Label variables.
        "<f(P,Y) out Y> :- <P rec {<X Y Z>}>@db",
        // Deep paths (pushed below the view's copied value).
        "<f(P) out yes> :- <P rec {<X a {<W last stanford>}>}>@db",
        // Multiple conditions joined on the root.
        "<f(P) out yes> :- <P rec {<X a u1>}>@db AND <P rec {<Y b u2>}>@db",
        // Empty-set tail.
        "<f(P) out yes> :- <P rec {<X a {}>}>@db",
        // Copy head.
        "<f(P) out {<X Y Z>}> :- <P rec {<X Y Z>}>@db"));

TEST(CompletenessTest, TwoViewsPartitioningTheQuery) {
  // Each view exposes one arm of the join; a total rewriting combining the
  // two must be found.
  TslQuery va = MustParse(
      "<a(P') wa {<aa(X') m U'>}> :- <P' rec {<X' a U'>}>@db", "ViewA");
  TslQuery vb = MustParse(
      "<b(P') wb {<bb(Y') m W'>}> :- <P' rec {<Y' b W'>}>@db", "ViewB");
  TslQuery q = MustParse(
      "<f(P) out yes> :- <P rec {<X a u1>}>@db AND <P rec {<Y b u2>}>@db",
      "Q");
  RewriteOptions options;
  options.require_total = true;
  auto result = RewriteQuery(q, {va, vb}, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GE(result->rewritings.size(), 1u);
  std::set<std::string> sources;
  for (const Condition& c : result->rewritings[0].body) {
    sources.insert(c.source);
  }
  EXPECT_EQ(sources, (std::set<std::string>{"ViewA", "ViewB"}));
}

TEST(CompletenessTest, ChaseBridgesSetVariableGap) {
  // The query stores the whole record value in V; the view requires an
  // explicit subobject. Only after the \S3.2 chase does the mapping exist
  // (Example 3.4's raison d'être) — completeness depends on it.
  TslQuery q = MustParse(
      "<f(P) out V> :- <P rec {<U tag t1>}>@db AND <P rec V>@db", "Q");
  auto result = RewriteQuery(q, {DumpView()});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->rewritings.size(), 1u);
}

TEST(CompletenessTest, CoverHeuristicDoesNotLoseRewritings) {
  // The heuristic is completeness-preserving: compare against exhaustive
  // enumeration across a family of queries.
  std::vector<TslQuery> views = {
      DumpView(),
      MustParse("<a(P') wa {<aa(X') m U'>}> :- <P' rec {<X' a U'>}>@db",
                "ViewA")};
  for (const char* text :
       {"<f(P) out yes> :- <P rec {<X a u1>}>@db",
        "<f(P) out yes> :- <P rec {<X a u1>}>@db AND <P rec {<Y b u2>}>@db",
        "<f(P,Y) out Y> :- <P rec {<X Y Z>}>@db"}) {
    TslQuery q = MustParse(text, "Q");
    RewriteOptions with;
    with.use_cover_heuristic = true;
    with.prune_dominated = false;
    RewriteOptions without = with;
    without.use_cover_heuristic = false;
    auto fast = RewriteQuery(q, views, with);
    auto slow = RewriteQuery(q, views, without);
    ASSERT_TRUE(fast.ok() && slow.ok());
    // Every rewriting found exhaustively is also found with the heuristic.
    for (const TslQuery& rw : slow->rewritings) {
      bool found = false;
      for (const TslQuery& frw : fast->rewritings) {
        found = found || frw.body == rw.body;
      }
      EXPECT_TRUE(found) << "heuristic lost: " << rw.ToString();
    }
  }
}

TEST(CompletenessTest, MultipleRewritingsAllReturned) {
  // Two interchangeable views: both single-view rewritings are reported.
  TslQuery v1 = MustParse(
      "<a(P') o {<aa(X') m U'>}> :- <P' rec {<X' a U'>}>@db", "TwinA");
  TslQuery v2 = MustParse(
      "<b(P') o {<bb(X') m U'>}> :- <P' rec {<X' a U'>}>@db", "TwinB");
  TslQuery q = MustParse("<f(P) out yes> :- <P rec {<X a u1>}>@db", "Q");
  auto result = RewriteQuery(q, {v1, v2});
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<std::string> sources;
  for (const TslQuery& rw : result->rewritings) {
    for (const Condition& c : rw.body) sources.insert(c.source);
  }
  EXPECT_TRUE(sources.count("TwinA") == 1 && sources.count("TwinB") == 1)
      << "expected rewritings through both twin views";
}

}  // namespace
}  // namespace tslrw
