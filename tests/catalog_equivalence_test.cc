// Byte-identity of indexed rewriting: for every query, RewriteQuery with a
// compiled catalog index attached must return exactly the RewriteResult of
// the full scan — same rewritings in the same order, same counters, same
// truncation flag — and a mediator planning through the index must degrade
// identically under injected faults. docs/CATALOG.md states the argument;
// this suite pins it across fixture, DTD-constrained, and seeded-random
// catalogs.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/compiler.h"
#include "constraints/dtd.h"
#include "fixtures.h"
#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "mediator/wrapper.h"
#include "obs/metrics.h"
#include "testing/random_rules.h"
#include "rewrite/rewriter.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

/// Every observable field of a RewriteResult, rendered. Two results with
/// equal renderings are byte-identical for the caller. The shared-work
/// diagnostics (cache hits, batches) are scheduling-dependent and outside
/// the determinism guarantee, so they stay out.
std::string Render(const RewriteResult& result) {
  std::string out;
  for (const TslQuery& q : result.rewritings) {
    out += q.ToString();
    out += "\n";
  }
  out += "mappings=" + std::to_string(result.mappings_found);
  out += " generated=" + std::to_string(result.candidates_generated);
  out += " tested=" + std::to_string(result.candidates_tested);
  out += result.truncated ? " truncated" : "";
  return out;
}

/// Compiles an index over \p views and checks RewriteQuery(query) with and
/// without it renders identically. Returns the probe's skip count so
/// callers can assert pruning actually happened.
uint64_t ExpectIndexedMatchesFullScan(
    const TslQuery& query, const std::vector<TslQuery>& views,
    const StructuralConstraints* constraints) {
  auto catalog = CompileCatalog(DescribeViews(views), constraints);
  EXPECT_TRUE(catalog.ok()) << catalog.status();
  if (!catalog.ok()) return 0;

  RewriteOptions plain;
  plain.constraints = constraints;
  auto full = RewriteQuery(query, views, plain);

  MetricRegistry metrics;
  RewriteOptions indexed = plain;
  indexed.view_index = catalog->get();
  indexed.metrics = &metrics;
  auto fast = RewriteQuery(query, views, indexed);

  EXPECT_EQ(full.ok(), fast.ok())
      << full.status() << " vs " << fast.status();
  if (full.ok() && fast.ok()) {
    EXPECT_EQ(Render(*full), Render(*fast)) << query.ToString();
  }
  EXPECT_EQ(metrics.GetCounter("catalog.index_misses")->value(), 0u);
  return metrics.GetCounter("catalog.index_views_skipped")->value();
}

TEST(CatalogEquivalenceTest, PaperFixtureSuite) {
  std::vector<TslQuery> views = {
      MustParse(testing::kV1, "V1"),
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' other {<X' l0 Z'>}>@db",
                "Unrelated"),
  };
  uint64_t skipped = 0;
  skipped += ExpectIndexedMatchesFullScan(MustParse(testing::kQ3, "Q3"),
                                          views, nullptr);
  skipped += ExpectIndexedMatchesFullScan(MustParse(testing::kQ5, "Q5"),
                                          views, nullptr);
  // The `other`-rooted view cannot map into a `p`-rooted query: the index
  // must actually prune it, not just match by accident.
  EXPECT_GT(skipped, 0u);
}

TEST(CatalogEquivalenceTest, DtdConstrainedSuite) {
  auto dtd = Dtd::Parse(
      "<!ELEMENT root (leaf)> <!ELEMENT leaf CDATA>");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  StructuralConstraints constraints(std::move(dtd).ValueOrDie());
  std::vector<TslQuery> views = {
      MustParse("<v(P') vout {<w(X') m Z'>}> :- <P' root {<X' leaf Z'>}>@db",
                "Leaf"),
      // Proven empty by the chase (one leaf per root, conflicting tails):
      // the compiled index drops it exactly as the full scan does.
      MustParse("<v(P') vout yes> :- "
                "<P' root {<X1' leaf va>}>@db AND "
                "<P' root {<X2' leaf vb>}>@db",
                "Empty"),
  };
  TslQuery fused = MustParse(
      "<f(P) out Z> :- "
      "<P root {<X1 leaf Z>}>@db AND <P root {<X2 leaf va>}>@db",
      "QF");
  TslQuery simple =
      MustParse("<f(P) out Z> :- <P root {<X leaf Z>}>@db", "QS");
  ExpectIndexedMatchesFullScan(fused, views, &constraints);
  ExpectIndexedMatchesFullScan(simple, views, &constraints);
}

TEST(CatalogEquivalenceTest, SeededRandomSuite) {
  uint64_t skipped = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    testing::RandomRules rules(seed, /*num_labels=*/3, /*num_values=*/3,
                               "root");
    std::vector<TslQuery> views = {
        rules.View("V0", "db"),
        rules.CopyView("V1", "db"),
        rules.DeepView("V2", "db"),
        rules.View("V3", "db"),
        rules.DeepView("V4", "db"),
    };
    TslQuery query = rules.Query("Q", "db");
    skipped +=
        ExpectIndexedMatchesFullScan(query, views, nullptr);
  }
  // Across 25 seeds the signature probe must have pruned something:
  // a probe that admits everything would trivially pass the identity
  // checks above without testing the pruning path at all.
  EXPECT_GT(skipped, 0u);
}

// --- mediator integration: identical plans, identical degradation -----------

SourceCatalog BiblioCatalog() {
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database s1 {
      <a1 publication {
        <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
      }>
      <a2 publication {
        <t2 title "Constraints"> <v2 venue "VLDB"> <y2 year "1997">
      }>
    })"));
  catalog.Put(MustParseDb(R"(
    database s2 {
      <b1 publication {
        <u1 title "Wrappers"> <w1 venue "SIGMOD"> <x1 year "1997">
      }>
    })"));
  return catalog;
}

std::vector<SourceDescription> BiblioSources() {
  Capability y97;
  y97.view = MustParse(
      "<y97(P') pub {<X' Y' Z'>}> :- "
      "<P' publication {<U' year \"1997\">}>@s1 AND "
      "<P' publication {<X' Y' Z'>}>@s1",
      "Y97");
  Capability dump;
  dump.view = MustParse(
      "<dump(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@s2",
      "Dump2");
  return {SourceDescription{"s1", {y97}}, SourceDescription{"s2", {dump}}};
}

TslQuery Sigmod97Query() {
  return MustParse(
      "<f(P) sigmod97 yes> :- "
      "<P publication {<U year \"1997\">}>@s1 AND "
      "<P publication {<V venue \"SIGMOD\">}>@s1",
      "Sigmod97");
}

std::string RenderAnswer(const DegradedAnswer& answer) {
  std::string out = answer.result.ToString();
  out += "completeness=";
  out += CompletenessToString(answer.completeness);
  for (const std::string& s : answer.unreachable_sources) {
    out += " unreachable:" + s;
  }
  out += "\n";
  out += answer.report.ToString();
  return out;
}

TEST(CatalogEquivalenceTest, MediatorAnswersIdenticallyThroughTheIndex) {
  auto sources = BiblioSources();
  auto index = CompileCatalog(sources, nullptr);
  ASSERT_TRUE(index.ok()) << index.status();

  auto plain = Mediator::Make(sources, nullptr);
  ASSERT_TRUE(plain.ok()) << plain.status();
  auto indexed = Mediator::Make(sources, nullptr, *index);
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  ASSERT_NE(indexed->catalog_index(), nullptr);

  SourceCatalog catalog = BiblioCatalog();
  TslQuery query = Sigmod97Query();
  auto a = plain->Answer(query, catalog);
  auto b = indexed->Answer(query, catalog);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(RenderAnswer(*a), RenderAnswer(*b));
}

TEST(CatalogEquivalenceTest, DegradedAnswersAreIdenticalUnderFaults) {
  auto sources = BiblioSources();
  auto index = CompileCatalog(sources, nullptr);
  ASSERT_TRUE(index.ok()) << index.status();
  auto plain = Mediator::Make(sources, nullptr);
  ASSERT_TRUE(plain.ok()) << plain.status();
  auto indexed = Mediator::Make(sources, nullptr, *index);
  ASSERT_TRUE(indexed.ok()) << indexed.status();

  SourceCatalog catalog = BiblioCatalog();
  // Two-source query so killing s1 degrades instead of failing: both
  // mediators must walk the same plans, declare the same source dead, and
  // produce the same maximally-contained answer.
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P publication {<U year \"1997\">}>@s1",
      "Q97");
  for (uint64_t seed = 0; seed < 4; ++seed) {
    auto run = [&](const Mediator& mediator) -> std::string {
      CatalogWrapper base;
      VirtualClock clock;
      FaultInjector injector(&base, seed, &clock);
      FaultSchedule dead;
      dead.steady_state = Fault::Unavailable();
      injector.SetSchedule("s1", dead);
      ExecutionPolicy policy;
      policy.wrapper = &injector;
      policy.clock = &clock;
      policy.seed = seed;
      policy.retry.max_attempts = 2;
      policy.retry.initial_backoff_ticks = 1;
      auto answer = mediator.Answer(query, catalog, policy);
      EXPECT_TRUE(answer.ok()) << answer.status();
      return answer.ok() ? RenderAnswer(*answer) : std::string();
    };
    std::string a = run(*plain);
    std::string b = run(*indexed);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_NE(a.find("unreachable:s1"), std::string::npos) << a;
  }
}

}  // namespace
}  // namespace tslrw
