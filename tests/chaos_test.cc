// Tier-1 coverage for the chaos-drill harness (src/testing/chaos.h): the
// drill invariants the CI job gates on — same-seed byte-identical reports
// and traces, soundness of every answer against the fault-free baseline,
// and full recovery (breakers re-closed, plan cache retained) — plus the
// standard script's shape. The broad multi-seed sweep lives in
// chaos_property_test.cc.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mediator/capability.h"
#include "mediator/fault.h"
#include "oem/parser.h"
#include "testing/chaos.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

TslQuery Parse(const std::string& text, std::string name) {
  auto query = ParseTslQuery(text, std::move(name));
  EXPECT_TRUE(query.ok()) << query.status();
  return *std::move(query);
}

/// The replicated fixture of examples/tslrw_chaos.cpp: source `lib` with
/// two α-equivalent mirrors (failover and hedge targets) plus a
/// single-endpoint source `s2`.
std::vector<SourceDescription> DrillSources() {
  Capability a;
  a.view = Parse(
      "<m(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@lib",
      "MirrorA");
  Capability b;
  b.view = Parse(
      "<m(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@lib",
      "MirrorB");
  Capability dump;
  dump.view = Parse(
      "<dump(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@s2",
      "Dump2");
  return {SourceDescription{"lib", {a}}, SourceDescription{"lib", {b}},
          SourceDescription{"s2", {dump}}};
}

SourceCatalog DrillCatalog() {
  SourceCatalog catalog;
  auto lib = ParseOemDatabase(R"(
    database lib {
      <a1 publication {
        <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
      }>
      <a2 publication {
        <t2 title "Wrappers"> <v2 venue "VLDB"> <y2 year "1996">
      }>
    })");
  EXPECT_TRUE(lib.ok()) << lib.status();
  catalog.Put(*lib);
  auto s2 = ParseOemDatabase(R"(
    database s2 {
      <b1 publication {
        <u1 title "Warehouses"> <w1 venue "SIGMOD"> <x1 year "1996">
      }>
    })");
  EXPECT_TRUE(s2.ok()) << s2.status();
  catalog.Put(*s2);
  return catalog;
}

std::vector<TslQuery> DrillQueries() {
  return {
      Parse("<f(P) sigmod yes> :- <P publication {<V venue \"SIGMOD\">}>@lib",
            "Sigmod"),
      Parse("<f(P) all2 yes> :- <P publication {<X Y Z>}>@s2", "All2"),
  };
}

ChaosOptions SmallDrill(uint64_t seed) {
  ChaosOptions options;
  options.seed = seed;
  options.requests_per_phase = 4;
  options.server.threads = 2;
  options.server.queue_capacity = 8;
  return options;
}

TEST(ChaosScriptTest, StandardScriptCoversEveryRegime) {
  const ChaosOptions options = SmallDrill(7);
  const std::vector<ChaosPhase> script =
      StandardChaosScript(DrillSources(), options);
  std::vector<std::string> names;
  for (const ChaosPhase& phase : script) names.push_back(phase.name);
  const std::vector<std::string> expected = {
      "baseline",           "endpoint-flap",    "latency-storm",
      "flaky-network",      "source-outage",    "index-corruption",
      "snapshot-swap-race", "pool-saturation"};
  EXPECT_EQ(names, expected);
  EXPECT_TRUE(script.front().faults.empty());
  EXPECT_EQ(script.back().action, ChaosPhase::Action::kPoolSaturation);
}

TEST(ChaosDrillTest, SameSeedReplaysByteIdentically) {
  const std::vector<SourceDescription> sources = DrillSources();
  const SourceCatalog catalog = DrillCatalog();
  const std::vector<TslQuery> queries = DrillQueries();
  const ChaosOptions options = SmallDrill(7);
  const std::vector<ChaosPhase> script =
      StandardChaosScript(sources, options);

  auto first = RunChaosDrill(sources, catalog, queries, script, options);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = RunChaosDrill(sources, catalog, queries, script, options);
  ASSERT_TRUE(second.ok()) << second.status();

  EXPECT_EQ(first->report, second->report);
  EXPECT_EQ(first->traces, second->traces);
  EXPECT_FALSE(first->traces.empty());
}

TEST(ChaosDrillTest, StandardDrillIsSoundAndRecovers) {
  const std::vector<SourceDescription> sources = DrillSources();
  const SourceCatalog catalog = DrillCatalog();
  const std::vector<TslQuery> queries = DrillQueries();
  const ChaosOptions options = SmallDrill(3);
  const std::vector<ChaosPhase> script =
      StandardChaosScript(sources, options);

  auto drill = RunChaosDrill(sources, catalog, queries, script, options);
  ASSERT_TRUE(drill.ok()) << drill.status();
  for (const std::string& violation : drill->violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_TRUE(drill->sound);
  EXPECT_TRUE(drill->recovered);
  // The report tells the whole story: every phase, the recovery line, and
  // a final verdict the CI log can be grepped for.
  EXPECT_NE(drill->report.find("phase baseline"), std::string::npos)
      << drill->report;
  EXPECT_NE(drill->report.find("phase pool-saturation"), std::string::npos);
  EXPECT_NE(drill->report.find("recovery:"), std::string::npos);
  EXPECT_NE(drill->report.find("breakers all closed"), std::string::npos);
  EXPECT_NE(drill->report.find("plan cache retained"), std::string::npos);
  EXPECT_NE(drill->report.find("verdict: SOUND, RECOVERED"),
            std::string::npos)
      << drill->report;
}

TEST(ChaosDrillTest, CustomScriptOutagePhaseDegradesThenRecovers) {
  // A hand-written two-phase script: kill the replicated source outright,
  // then hand control back to the harness's fault-free recovery loop. The
  // single-endpoint source keeps answering, so the outage phase must show
  // degraded (not failed) answers, and the drill must still recover.
  const std::vector<SourceDescription> sources = DrillSources();
  const SourceCatalog catalog = DrillCatalog();
  const std::vector<TslQuery> queries = DrillQueries();
  ChaosOptions options = SmallDrill(11);

  ChaosPhase outage;
  outage.name = "lib-outage";
  FaultSchedule dead;
  dead.steady_state = Fault::Unavailable();
  outage.faults["lib"] = dead;
  const std::vector<ChaosPhase> script = {outage};

  auto drill = RunChaosDrill(sources, catalog, queries, script, options);
  ASSERT_TRUE(drill.ok()) << drill.status();
  for (const std::string& violation : drill->violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_TRUE(drill->sound);
  EXPECT_TRUE(drill->recovered);
  EXPECT_NE(drill->report.find("phase lib-outage"), std::string::npos)
      << drill->report;
  EXPECT_NE(drill->report.find("degraded"), std::string::npos)
      << drill->report;
}

TEST(ChaosDrillTest, UnanswerableFixtureQueryIsASetupError) {
  // The drill's soundness checks compare against a fault-free baseline;
  // a query with no fault-free answer is a broken fixture, not a finding.
  const std::vector<SourceDescription> sources = DrillSources();
  const SourceCatalog catalog = DrillCatalog();
  std::vector<TslQuery> queries = {
      Parse("<f(P) nosuch yes> :- <P nosuch {<X Y Z>}>@nosrc", "NoSuch")};
  const ChaosOptions options = SmallDrill(1);
  auto drill = RunChaosDrill(sources, catalog, queries,
                             StandardChaosScript(sources, options), options);
  EXPECT_FALSE(drill.ok());
}

}  // namespace
}  // namespace tslrw
