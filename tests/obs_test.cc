// The observability layer itself: metric semantics (lock-free counters,
// power-of-two histogram buckets, registry snapshots), span-tree
// well-formedness (Validate as the arbiter), the null-tracer discipline
// instrumented code relies on, and the integration points — mediator
// retry/fault events in spans, server counters staying exact under
// concurrent load (run under TSan in CI).

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "common/virtual_clock.h"
#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "oem/parser.h"
#include "service/server.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

TEST(MetricsTest, CounterAndGaugeBasics) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);

  Gauge gauge;
  gauge.Set(7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.value(), -3);
}

TEST(MetricsTest, HistogramBucketContract) {
  // Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64u);

  EXPECT_EQ(Histogram::BucketRange(0), std::make_pair(uint64_t{0},
                                                      uint64_t{0}));
  EXPECT_EQ(Histogram::BucketRange(1), std::make_pair(uint64_t{1},
                                                      uint64_t{1}));
  EXPECT_EQ(Histogram::BucketRange(4), std::make_pair(uint64_t{8},
                                                      uint64_t{15}));
  EXPECT_EQ(Histogram::BucketRange(64).second, UINT64_MAX);
  // Ranges tile the axis: every bucket starts right after its predecessor.
  for (size_t i = 1; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketRange(i).first,
              Histogram::BucketRange(i - 1).second + 1);
  }

  Histogram hist;
  hist.Observe(0);
  hist.Observe(9);
  hist.Observe(12);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.sum(), 21u);
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(4), 2u);
}

TEST(MetricsTest, RegistryHandlesAreStableAndSnapshotsSorted) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("z.late");
  EXPECT_EQ(registry.GetCounter("z.late"), c);  // same name, same storage
  registry.GetCounter("a.early")->Increment(5);
  registry.GetGauge("depth")->Set(3);
  registry.GetHistogram("lat")->Observe(100);
  c->Increment(2);

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.early");  // sorted by name
  EXPECT_EQ(snap.counters[0].second, 5u);
  EXPECT_EQ(snap.counters[1].second, 2u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  ASSERT_EQ(snap.histograms[0].buckets.size(), 1u);
  EXPECT_EQ(snap.histograms[0].buckets[0].first,
            Histogram::BucketIndex(100));

  std::string text = registry.ToText();
  EXPECT_NE(text.find("a.early 5"), std::string::npos) << text;
  EXPECT_NE(text.find("depth 3"), std::string::npos) << text;
  EXPECT_NE(text.find("lat count=1 sum=100"), std::string::npos) << text;
}

TEST(MetricsTest, NullRegistryHelpersAreNoOps) {
  CountIf(nullptr, "x");  // must not crash
  ObserveIf(nullptr, "x", 1);
  MetricRegistry registry;
  CountIf(&registry, "never", 0);  // zero delta does not even register
  EXPECT_EQ(registry.ToText(), "");
}

TEST(MetricsTest, ConcurrentCountersStayExact) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* counter = registry.GetCounter("shared");
      Histogram* hist = registry.GetHistogram("samples");
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Observe(static_cast<uint64_t>(i % 7));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared")->value(),
            uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(registry.GetHistogram("samples")->count(),
            uint64_t{kThreads} * kPerThread);
}

TEST(TracerTest, SpanTreeStructureAndDump) {
  VirtualClock clock;
  Tracer tracer(&clock);
  int root = tracer.Begin("root");
  clock.Advance(1);
  {
    ScopedSpan child(&tracer, "child");
    child.Annotate("k", "v");
    child.Annotate("n", uint64_t{7});
    clock.Advance(2);
    child.Event("blip");
  }
  tracer.Annotate(root, "outcome", "ok");
  clock.Advance(1);
  tracer.End(root);

  EXPECT_TRUE(tracer.Validate().ok()) << tracer.Validate().ToString();
  std::vector<TraceSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[1].start_ticks, 1u);
  EXPECT_EQ(spans[1].end_ticks, 3u);

  EXPECT_EQ(tracer.ToText(),
            "trace (2 spans)\n"
            "- root [0..4] outcome=ok\n"
            "  - child [1..3] k=v n=7\n"
            "    @3 blip\n");
  std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"name\":\"child\",\"cat\":\"tslrw\",\"ph\":\"X\","
                      "\"ts\":1,\"dur\":2"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ph\":\"i\",\"ts\":3"), std::string::npos) << json;
}

TEST(TracerTest, ValidateCatchesUnclosedAndOverflowingSpans) {
  {
    VirtualClock clock;
    Tracer tracer(&clock);
    tracer.Begin("dangling");
    Status status = tracer.Validate();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.ToString().find("never closed"), std::string::npos);
  }
  {
    // A child that outlives its parent: the parent's End comes first, so
    // the child's interval overflows the parent's.
    VirtualClock clock;
    Tracer tracer(&clock);
    int parent = tracer.Begin("parent");
    int child = tracer.Begin("child");
    tracer.End(parent);
    clock.Advance(5);
    tracer.End(child);
    Status status = tracer.Validate();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.ToString().find("overflows parent"),
              std::string::npos);
  }
}

TEST(TracerTest, NullTracerDisciplineIsSafe) {
  ScopedSpan span(nullptr, "anything");
  span.Annotate("k", "v");
  span.Event("e");
  span.EndNow();
  EXPECT_EQ(span.handle(), -1);
}

TEST(TracerTest, EventHereAttachesToInnermostOpenSpanOnly) {
  VirtualClock clock;
  Tracer tracer(&clock);
  tracer.EventHere("dropped: nothing open");
  int outer = tracer.Begin("outer");
  int inner = tracer.Begin("inner");
  tracer.EventHere("hits inner");
  tracer.End(inner);
  tracer.EventHere("hits outer");
  tracer.End(outer);

  std::vector<TraceSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  ASSERT_EQ(spans[0].events.size(), 1u);
  EXPECT_EQ(spans[0].events[0].text, "hits outer");
  ASSERT_EQ(spans[1].events.size(), 1u);
  EXPECT_EQ(spans[1].events[0].text, "hits inner");
}

TEST(TracerTest, JsonEscapesAnnotationAndNameText) {
  Tracer tracer(nullptr);  // null clock: all timestamps 0
  int span = tracer.Begin("quote\"backslash\\");
  tracer.Annotate(span, "key", "line\nbreak\ttab");
  tracer.End(span);
  std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("quote\\\"backslash\\\\"), std::string::npos) << json;
  EXPECT_NE(json.find("line\\nbreak\\ttab"), std::string::npos) << json;
}

TEST(TracerTest, WallTimeIsRenderedOnlyWhenRequested) {
  VirtualClock clock;
  Tracer silent(&clock);
  Tracer timed(&clock, /*record_wall_time=*/true);
  {
    ScopedSpan a(&silent, "work");
    ScopedSpan b(&timed, "work");
  }
  EXPECT_EQ(silent.ToText().find("wall_us"), std::string::npos);
  EXPECT_NE(timed.ToText().find("wall_us"), std::string::npos);
}

// --- Integration: the instrumented pipeline ---------------------------

Capability DumpCapability(const std::string& view_name,
                          const std::string& source) {
  Capability cap;
  auto parsed = ParseTslQuery(
      StrCat("<d(P') p {<X' Y' Z'>}> :- <P' p {<X' Y' Z'>}>@", source),
      view_name);
  cap.view = std::move(parsed).ValueOrDie();
  return cap;
}

SourceCatalog SmallCatalog() {
  SourceCatalog catalog;
  catalog.Put(ParseOemDatabase(
                  "database db { <p1 p { <n1 name ann> }> }")
                  .ValueOrDie());
  return catalog;
}

TEST(ObsIntegrationTest, MediatorTraceShowsRetriesFaultsAndFailover) {
  SourceCatalog catalog = SmallCatalog();
  auto mediator = Mediator::Make({SourceDescription{
      "db", {DumpCapability("Dump", "db")}}});
  ASSERT_TRUE(mediator.ok()) << mediator.status();
  auto query =
      ParseTslQuery("<f(P) out yes> :- <P p {<X name ann>}>@db", "Q");
  ASSERT_TRUE(query.ok());

  VirtualClock clock;
  Tracer tracer(&clock);
  MetricRegistry metrics;
  CatalogWrapper base;
  FaultInjector injector(&base, /*seed=*/3, &clock);
  injector.set_tracer(&tracer);
  FaultSchedule blips;
  blips.scripted = {Fault::Unavailable(), Fault::Unavailable()};
  injector.SetSchedule("db", blips);

  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = &clock;
  policy.retry.max_attempts = 3;
  policy.retry.initial_backoff_ticks = 1;
  policy.tracer = &tracer;
  policy.metrics = &metrics;
  auto answer = mediator->Answer(*query, catalog, policy);
  ASSERT_TRUE(answer.ok()) << answer.status();

  ASSERT_TRUE(tracer.Validate().ok()) << tracer.Validate().ToString();
  std::string text = tracer.ToText();
  EXPECT_NE(text.find("mediator.plan_search"), std::string::npos) << text;
  EXPECT_NE(text.find("- rewrite "), std::string::npos) << text;
  EXPECT_NE(text.find("mediator.fetch"), std::string::npos) << text;
  // The FaultInjector's events land inside the fetch span, interleaved
  // with the retry attempts, all on the same virtual timeline.
  EXPECT_NE(text.find("fault: db call 1 unavailable"), std::string::npos)
      << text;
  EXPECT_NE(text.find("attempt 1: Unavailable"), std::string::npos) << text;
  EXPECT_NE(text.find("backoff 1 tick(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("attempt 3: ok"), std::string::npos) << text;

  EXPECT_EQ(metrics.GetCounter("mediator.retries")->value(), 2u);
  EXPECT_EQ(metrics.GetCounter("mediator.fetch_attempts")->value(), 3u);
  EXPECT_EQ(metrics.GetCounter("mediator.answers_complete")->value(), 1u);
}

TEST(ObsIntegrationTest, ServerCountersStayConsistentUnderLoad) {
  auto mediator = Mediator::Make({SourceDescription{
      "db", {DumpCapability("Dump", "db")}}});
  ASSERT_TRUE(mediator.ok()) << mediator.status();
  MetricRegistry metrics;
  ServerOptions options;
  options.threads = 4;
  options.queue_capacity = 256;
  options.metrics = &metrics;
  QueryServer server(std::move(mediator).value(), SmallCatalog(), options);

  auto query =
      ParseTslQuery("<f(P) out yes> :- <P p {<X name ann>}>@db", "Q");
  ASSERT_TRUE(query.ok());

  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::vector<std::thread> clients;
  std::atomic<uint64_t> ok{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        ServeOptions serve;
        serve.seed = static_cast<uint64_t>(c) * 100 + static_cast<uint64_t>(r);
        auto submitted = server.Submit(*query, serve);
        if (!submitted.ok()) continue;  // admission control may reject
        auto response = std::move(submitted).value().get();
        if (response.ok()) ok.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Shutdown();

  const uint64_t requests = metrics.GetCounter("serve.requests")->value();
  const uint64_t completed = metrics.GetCounter("serve.completed")->value();
  const uint64_t failed = metrics.GetCounter("serve.failed")->value();
  EXPECT_EQ(completed, ok.load());
  EXPECT_EQ(requests, completed + failed);
  EXPECT_EQ(metrics.GetCounter("serve.accepted")->value(), requests);
  // Every cache lookup was a hit or a miss, one per request.
  EXPECT_EQ(metrics.GetCounter("serve.plan_cache_hits")->value() +
                metrics.GetCounter("serve.plan_cache_misses")->value(),
            requests);
  EXPECT_EQ(metrics.GetCounter("pool.tasks_run")->value(), requests);
  EXPECT_EQ(metrics.GetGauge("pool.queue_depth")->value(), 0);
}

}  // namespace
}  // namespace tslrw
