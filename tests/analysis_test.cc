// Tests for the rule-level static analyzer: every diagnostic code has a
// crafted trigger asserting its code string, severity, and source span, and
// every paper fixture analyzes without errors.

#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "constraints/dtd.h"
#include "constraints/inference.h"
#include "fixtures.h"
#include "oem/term.h"
#include "tsl/ast.h"

namespace tslrw {
namespace {

using testing::MustParse;

/// The first diagnostic with \p code, or nullptr.
const Diagnostic* FindDiag(const AnalysisReport& report, DiagCode code) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

size_t CountDiag(const AnalysisReport& report, DiagCode code) {
  size_t n = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) ++n;
  }
  return n;
}

TEST(DiagnosticTest, CodeStringsAreStable) {
  EXPECT_EQ(DiagCodeToString(DiagCode::kParseError), "TSL000");
  EXPECT_EQ(DiagCodeToString(DiagCode::kUnsafeQuery), "TSL001");
  EXPECT_EQ(DiagCodeToString(DiagCode::kHeadOidViolation), "TSL002");
  EXPECT_EQ(DiagCodeToString(DiagCode::kCyclicPattern), "TSL003");
  EXPECT_EQ(DiagCodeToString(DiagCode::kMisplacedRegexStep), "TSL004");
  EXPECT_EQ(DiagCodeToString(DiagCode::kVariableSortClash), "TSL005");
  EXPECT_EQ(DiagCodeToString(DiagCode::kUnsatisfiableBody), "TSL006");
  EXPECT_EQ(DiagCodeToString(DiagCode::kRedundantCondition), "TSL101");
  EXPECT_EQ(DiagCodeToString(DiagCode::kCartesianProduct), "TSL102");
  EXPECT_EQ(DiagCodeToString(DiagCode::kUnboundedPathStep), "TSL103");
  EXPECT_EQ(DiagCodeToString(DiagCode::kDeadView), "TSL104");
  EXPECT_EQ(DiagCodeToString(DiagCode::kSingleUseVariable), "TSL105");
  EXPECT_EQ(DiagCodeToString(DiagCode::kSearchTruncated), "TSL106");
}

TEST(DiagnosticTest, SeveritiesFollowTheCode) {
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kParseError), Severity::kError);
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kUnsatisfiableBody), Severity::kError);
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kRedundantCondition),
            Severity::kWarning);
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kDeadView), Severity::kWarning);
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kSingleUseVariable), Severity::kNote);
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kSearchTruncated), Severity::kWarning);
}

TEST(DiagnosticTest, ToStringCarriesRuleSpanSeverityAndCode) {
  Diagnostic d{DiagCode::kCartesianProduct, Severity::kWarning,
               SourceSpan{1, 32}, "Q", "disconnected body"};
  EXPECT_EQ(d.ToString(), "Q:1:32: warning: disconnected body [TSL102]");
}

TEST(DiagnosticTest, RenderAppendsCaretSnippet) {
  std::string_view source = "<f(P) out V> :- <P p V>@db AND <Q r W>@db";
  Diagnostic d{DiagCode::kCartesianProduct, Severity::kWarning,
               SourceSpan{1, 32}, "", "disconnected body"};
  std::string rendered = RenderDiagnostic(d, source);
  EXPECT_NE(rendered.find("  1 | <f(P) out V>"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("^"), std::string::npos) << rendered;
}

TEST(AnalyzerTest, ParseErrorBecomesTSL000WithPosition) {
  AnalysisReport report = Analyzer().AnalyzeProgramText("<f(P out");
  const Diagnostic* d = FindDiag(report, DiagCode::kParseError);
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 6);
  EXPECT_TRUE(report.has_errors());
}

TEST(AnalyzerTest, UnsafeQueryIsTSL001AtTheHead) {
  AnalysisReport report =
      Analyzer().AnalyzeProgramText("<f(P) out W> :- <P p V>@db");
  const Diagnostic* d = FindDiag(report, DiagCode::kUnsafeQuery);
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 1);
}

TEST(AnalyzerTest, GroundHeadOidIsTSL002) {
  AnalysisReport report =
      Analyzer().AnalyzeProgramText("<a out yes> :- <P p V>@db");
  const Diagnostic* d = FindDiag(report, DiagCode::kHeadOidViolation);
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 1);
}

TEST(AnalyzerTest, CyclicBodyPatternIsTSL003) {
  AnalysisReport report = Analyzer().AnalyzeProgramText(
      "<f(X) out yes> :- <X a {<Y b {<X c V>}>}>@db");
  const Diagnostic* d = FindDiag(report, DiagCode::kCyclicPattern);
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 19);
}

TEST(AnalyzerTest, RegexStepInHeadIsTSL004AtTheStep) {
  AnalysisReport report = Analyzer().AnalyzeProgramText(
      "<f(P) l {<f(X) a+ Z>}> :- <P a Z>@db AND <P b {<X a Z>}>@db");
  const Diagnostic* d = FindDiag(report, DiagCode::kMisplacedRegexStep);
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 10);
}

TEST(AnalyzerTest, TopLevelRegexStepIsTSL004) {
  AnalysisReport report =
      Analyzer().AnalyzeProgramText("<f(P) out yes> :- <P a+ V>@db");
  const Diagnostic* d = FindDiag(report, DiagCode::kMisplacedRegexStep);
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 19);
}

TEST(AnalyzerTest, VariableSortClashIsTSL005OnProgrammaticRules) {
  // The parser rejects V_O/V_C clashes outright, so assemble the rule by
  // hand: X is an object id in the body oid and a label/value variable in
  // the same pattern's label.
  TslQuery query;
  query.name = "Bad";
  query.head.oid =
      Term::MakeFunc("f", {Term::MakeVar("X", VarKind::kObjectId)});
  query.head.label = Term::MakeAtom("out");
  query.head.value = PatternValue::FromTerm(Term::MakeAtom("yes"));
  ObjectPattern pattern;
  pattern.oid = Term::MakeVar("X", VarKind::kObjectId);
  pattern.label = Term::MakeVar("X", VarKind::kLabelValue);
  pattern.value = PatternValue::FromTerm(Term::MakeAtom("v"));
  query.body.push_back(Condition{pattern, "db"});
  AnalysisReport report = Analyzer().AnalyzeQuery(query);
  const Diagnostic* d = FindDiag(report, DiagCode::kVariableSortClash);
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->rule, "Bad");
}

TEST(AnalyzerTest, ConflictingConstantsAreTSL006) {
  AnalysisReport report = Analyzer().AnalyzeProgramText(
      "<f(X) out yes> :- <P p {<X a u1>}>@db AND <R p {<X a u2>}>@db");
  const Diagnostic* d = FindDiag(report, DiagCode::kUnsatisfiableBody);
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 19);
  // An unsatisfiable body suppresses the redundancy pass (every condition
  // of a false body is vacuously droppable).
  EXPECT_EQ(CountDiag(report, DiagCode::kRedundantCondition), 0u);
}

TEST(AnalyzerTest, RedundantConditionsAreTSL101AtEachCondition) {
  AnalysisReport report = Analyzer().AnalyzeProgramText(
      "<f(P) out yes> :- <P p {<X a b>}>@db AND <P p {<Y a b>}>@db");
  ASSERT_EQ(CountDiag(report, DiagCode::kRedundantCondition), 2u)
      << report.ToString();
  EXPECT_EQ(report.diagnostics[0].severity, Severity::kWarning);
  const Diagnostic* d = FindDiag(report, DiagCode::kRedundantCondition);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 19);
  EXPECT_FALSE(report.has_errors());
}

TEST(AnalyzerTest, DisconnectedBodyIsTSL102AtTheStrayCondition) {
  AnalysisReport report = Analyzer().AnalyzeProgramText(
      "<f(P) out V> :- <P p V>@db AND <Q r W>@db");
  const Diagnostic* d = FindDiag(report, DiagCode::kCartesianProduct);
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 32);
}

TEST(AnalyzerTest, JoinedBodyIsNotACartesianProduct) {
  AnalysisReport report = Analyzer().AnalyzeProgramText(
      "<f(P) out V> :- <P p V>@db AND <P r W>@db");
  EXPECT_EQ(FindDiag(report, DiagCode::kCartesianProduct), nullptr)
      << report.ToString();
}

TEST(AnalyzerTest, NestedClosureStepIsTSL103Warning) {
  AnalysisReport report =
      Analyzer().AnalyzeProgramText("<f(P) out yes> :- <P p {<X a+ Z>}>@db");
  const Diagnostic* d = FindDiag(report, DiagCode::kUnboundedPathStep);
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 25);
  EXPECT_FALSE(report.has_errors());
}

TEST(AnalyzerTest, DescendantStepIsTSL103Warning) {
  AnalysisReport report =
      Analyzer().AnalyzeProgramText("<f(P) out yes> :- <P p {<X ** Z>}>@db");
  const Diagnostic* d = FindDiag(report, DiagCode::kUnboundedPathStep);
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 25);
}

TEST(AnalyzerTest, FullyCoveredViewsAreTSL104) {
  AnalysisReport report = Analyzer().AnalyzeProgramText(
      "(Va) <va(X') out Z'> :- <X' a Z'>@db\n"
      "(Vb) <vb(X') out Z'> :- <X' a Z'>@db");
  ASSERT_EQ(CountDiag(report, DiagCode::kDeadView), 2u) << report.ToString();
  const Diagnostic* d = FindDiag(report, DiagCode::kDeadView);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 1);
  EXPECT_EQ(report.diagnostics[1].span.line, 2);
}

TEST(AnalyzerTest, TruncatedDeadViewSearchIsTSL106) {
  // With the candidate budget cut to nothing, the dead-view pass cannot
  // complete its coverage search: instead of silently reporting "no dead
  // views" it emits TSL106 for the truncated analysis.
  AnalyzerOptions options;
  options.max_candidates = 0;
  AnalysisReport report = Analyzer(options).AnalyzeProgramText(
      "(Va) <va(X') out Z'> :- <X' a Z'>@db\n"
      "(Vb) <vb(X') out Z'> :- <X' a Z'>@db");
  EXPECT_GE(CountDiag(report, DiagCode::kSearchTruncated), 1u)
      << report.ToString();
  // The views cover each other, but a cut-off search must not claim so.
  EXPECT_EQ(CountDiag(report, DiagCode::kDeadView), 0u) << report.ToString();
}

TEST(AnalyzerTest, DistinctViewsAreNotDead) {
  AnalysisReport report = Analyzer().AnalyzeProgramText(
      "(Va) <va(X') out Z'> :- <X' a Z'>@db\n"
      "(Vb) <vb(X') out Z'> :- <X' b Z'>@db");
  EXPECT_EQ(FindDiag(report, DiagCode::kDeadView), nullptr)
      << report.ToString();
}

TEST(AnalyzerTest, SingleUseVariableIsTSL105Note) {
  AnalysisReport report =
      Analyzer().AnalyzeProgramText("<f(P) out yes> :- <P p V>@db");
  const Diagnostic* d = FindDiag(report, DiagCode::kSingleUseVariable);
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 19);
  EXPECT_FALSE(report.has_errors());
}

TEST(AnalyzerTest, SingleUseLintCanBeDisabled) {
  AnalyzerOptions options;
  options.lint_single_use_variables = false;
  AnalysisReport report =
      Analyzer(options).AnalyzeProgramText("<f(P) out yes> :- <P p V>@db");
  EXPECT_EQ(FindDiag(report, DiagCode::kSingleUseVariable), nullptr);
}

TEST(AnalyzerTest, SpansSurviveMultiLineRules) {
  AnalysisReport report = Analyzer().AnalyzeProgramText(
      "\n  <a out yes> :- <P p V>@db");
  const Diagnostic* d = FindDiag(report, DiagCode::kHeadOidViolation);
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->span.line, 2);
  EXPECT_EQ(d->span.column, 3);
}

TEST(AnalyzerTest, ConstraintsFlowIntoTheRedundancyPass) {
  // (Q12)'s first condition is implied by the second — Example 3.5's
  // reasoning under the person DTD, and already by the \S3.2 set-variable
  // chase without it — so TSL101 fires with constraints wired through.
  auto dtd = Dtd::Parse(testing::kPersonDtd);
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  StructuralConstraints constraints(std::move(dtd).value());
  AnalyzerOptions options;
  options.constraints = &constraints;
  AnalysisReport report =
      Analyzer(options).AnalyzeProgramText(testing::kQ12);
  EXPECT_NE(FindDiag(report, DiagCode::kRedundantCondition), nullptr)
      << report.ToString();
  EXPECT_FALSE(report.has_errors());
}

TEST(AnalyzerTest, PaperFixturesAnalyzeWithoutErrors) {
  const std::vector<std::pair<std::string, std::string_view>> fixtures = {
      {"Q1", testing::kQ1},   {"Q2", testing::kQ2},
      {"V1", testing::kV1},   {"Q3", testing::kQ3},
      {"Q4", testing::kQ4},   {"Q4n", testing::kQ4n},
      {"V1oQ4n", testing::kV1oQ4n},
      {"Q5", testing::kQ5},   {"Q6", testing::kQ6},
      {"Q7", testing::kQ7},   {"Q8", testing::kQ8},
      {"Q9", testing::kQ9},   {"Q10", testing::kQ10},
      {"Q11", testing::kQ11}, {"Q12", testing::kQ12},
      {"Q13", testing::kQ13}, {"Q14", testing::kQ14},
  };
  Analyzer analyzer;
  for (const auto& [name, text] : fixtures) {
    AnalysisReport report = analyzer.AnalyzeQuery(MustParse(text, name));
    EXPECT_FALSE(report.has_errors())
        << name << " reported errors:\n" << report.ToString();
  }
}

TEST(AnalyzerTest, AnalyzeRulesKeepsPerRuleFindingsApart) {
  std::vector<TslQuery> rules = {
      MustParse("<f(P) out W> :- <P p V>@db", "Broken"),
      MustParse(testing::kQ3, "Q3"),
  };
  AnalysisReport report = Analyzer().AnalyzeRules(rules);
  const Diagnostic* d = FindDiag(report, DiagCode::kUnsafeQuery);
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->rule, "Broken");
  for (const Diagnostic& diag : report.diagnostics) {
    if (diag.rule == "Q3") {
      EXPECT_NE(diag.severity, Severity::kError) << diag.ToString();
    }
  }
}

TEST(AnalyzerTest, DiagnosticsAreSortedBySpanThenCode) {
  // A program whose findings come from different passes, appended in pass
  // order (not source order): the report must still come out sorted by
  // (line, column, code), so renderings are deterministic and diffable.
  AnalysisReport report = Analyzer().AnalyzeProgramText(
      "<f(P) out yes> :- <P p V>@db AND <P p V>@db AND <R q W>@db\n"
      "<g(X) out W> :- <X p {<Y a+ Z>}>@db");
  ASSERT_GE(report.diagnostics.size(), 2u);
  for (size_t i = 1; i < report.diagnostics.size(); ++i) {
    const Diagnostic& a = report.diagnostics[i - 1];
    const Diagnostic& b = report.diagnostics[i];
    auto key = [](const Diagnostic& d) {
      return std::make_tuple(d.span.line, d.span.column,
                             static_cast<int>(d.code), d.rule, d.message);
    };
    EXPECT_LE(key(a), key(b)) << a.ToString() << " before " << b.ToString();
  }
}

TEST(AnalyzerTest, SemanticPassesCanBeDisabled) {
  AnalyzerOptions options;
  options.semantic_passes = false;
  AnalysisReport report = Analyzer(options).AnalyzeProgramText(
      "<f(X) out yes> :- <P p {<X a u1>}>@db AND <R p {<X a u2>}>@db");
  EXPECT_EQ(FindDiag(report, DiagCode::kUnsatisfiableBody), nullptr);
}

}  // namespace
}  // namespace tslrw
