// Byte-identity of compiled plan execution: for every rule set and every
// optimization-pass configuration, ExecuteIr must return exactly the answer
// of the tree walker — same graph, same roots, same database name, and the
// same error (code and message) on the same input. docs/IR.md states the
// argument; this suite pins it across the paper fixtures, DTD-shaped data,
// seeded-random rules, degraded answers under injected faults, and a chaos
// drill running the whole serving stack on the IR backend.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <future>

#include "constraints/dtd.h"
#include "eval/evaluator.h"
#include "fixtures.h"
#include "ir/compiler.h"
#include "ir/interp.h"
#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "oem/generator.h"
#include "obs/metrics.h"
#include "service/server.h"
#include "testing/chaos.h"
#include "testing/random_rules.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

/// The four pass configurations the suite sweeps: every one must be
/// byte-identical; only the work done may differ.
std::vector<std::pair<std::string, IrPassOptions>> PassConfigs() {
  IrPassOptions none;
  none.hoist_invariant_submatches = false;
  none.common_subplan_elimination = false;
  none.copy_elision = false;
  IrPassOptions hoist = none;
  hoist.hoist_invariant_submatches = true;
  IrPassOptions cse = hoist;
  cse.common_subplan_elimination = true;
  IrPassOptions all;  // defaults: everything on
  return {{"none", none}, {"hoist", hoist}, {"hoist+cse", cse}, {"all", all}};
}

/// Renders an evaluation outcome so that equal strings mean byte-identical
/// observables: status on error, else database name + canonical text.
std::string RenderOutcome(Result<OemDatabase> result) {
  if (!result.ok()) return "error: " + result.status().ToString();
  const OemDatabase& db = *result;
  return db.name() + "\n" + db.ToString();
}

/// Tree-vs-IR identity for one rule under every pass configuration.
void ExpectQueryIdentity(const TslQuery& query, const SourceCatalog& catalog,
                         const std::string& default_source = "db") {
  EvalOptions eval_opts;
  eval_opts.default_source = default_source;
  std::string tree = RenderOutcome(Evaluate(query, catalog, eval_opts));
  for (const auto& [label, passes] : PassConfigs()) {
    PlanCompiler compiler(passes);
    auto program = compiler.Compile(query);
    ASSERT_TRUE(program.ok()) << program.status();
    IrExecOptions exec;
    exec.default_source = default_source;
    std::string ir = RenderOutcome(ExecuteIr(**program, catalog, exec));
    EXPECT_EQ(tree, ir) << "passes=" << label << "\n" << query.ToString();
  }
}

/// Tree-vs-IR identity for a rule set sharing one answer database.
void ExpectRuleSetIdentity(const TslRuleSet& rules,
                           const SourceCatalog& catalog) {
  std::string tree = RenderOutcome(EvaluateRuleSet(rules, catalog));
  for (const auto& [label, passes] : PassConfigs()) {
    PlanCompiler compiler(passes);
    auto program = compiler.Compile(rules);
    ASSERT_TRUE(program.ok()) << program.status();
    std::string ir = RenderOutcome(ExecuteIr(**program, catalog));
    EXPECT_EQ(tree, ir) << "passes=" << label;
  }
}

/// Tree-vs-IR identity for a plan set executed plan-by-plan: one answer per
/// plan (how the mediator runs rewritten plan sets), with hoisted units
/// shared across all plans on the IR side.
void ExpectPlanSetIdentity(const std::vector<TslQuery>& plans,
                           const SourceCatalog& catalog) {
  std::vector<std::string> tree;
  tree.reserve(plans.size());
  for (const TslQuery& plan : plans) {
    tree.push_back(RenderOutcome(Evaluate(plan, catalog)));
  }
  for (const auto& [label, passes] : PassConfigs()) {
    PlanCompiler compiler(passes);
    auto program = compiler.CompilePlans(plans);
    ASSERT_TRUE(program.ok()) << program.status();
    auto answers = ExecuteIrPerSegment(**program, catalog);
    ASSERT_TRUE(answers.ok()) << answers.status();
    ASSERT_EQ(answers->size(), plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      EXPECT_EQ(tree[i],
                (*answers)[i].name() + "\n" + (*answers)[i].ToString())
          << "passes=" << label << " plan " << i << "\n"
          << plans[i].ToString();
    }
  }
}

SourceCatalog PeopleCatalog() {
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database db {
      <p1 person {
        <g1 gender female>
        <n1 name {<l1 last smith> <f1 first ann>}>
        <u1 university stanford>
      }>
      <p2 person {
        <g2 gender male>
        <n2 name {<l2 last jones> <f2 first bo>}>
      }>
      <p3 p {
        <x1 name {<z1 last stanford>}>
        <y1 office leland>
      }>
      <p4 p {
        <x2 phone leland>
        <u2 university stanford>
      }>
    })"));
  return catalog;
}

TEST(IrEquivalenceTest, PaperFixtureSuite) {
  SourceCatalog catalog = PeopleCatalog();
  for (std::string_view text :
       {testing::kQ1, testing::kQ2, testing::kQ3, testing::kQ5, testing::kQ7,
        testing::kQ9, testing::kQ10, testing::kQ11, testing::kQ12,
        testing::kQ13, testing::kQ14}) {
    ExpectQueryIdentity(MustParse(text, "Q"), catalog);
  }
}

TEST(IrEquivalenceTest, SetValueCopyAndFusion) {
  SourceCatalog catalog = PeopleCatalog();
  // Whole-subgraph copies (value variables over set objects) exercise the
  // CopySubgraph path and, with passes on, the copy memo.
  ExpectQueryIdentity(
      MustParse("<c(P) copy V> :- <P person V>@db", "Copy"), catalog);
  ExpectQueryIdentity(
      MustParse("<c(P) copy {<f(X) m V>}> :- <P person {<X name V>}>@db",
                "DeepCopy"),
      catalog);
  // Two rules fusing into the same answer objects.
  TslRuleSet fused;
  fused.rules = {
      MustParse("<f(P) person {<g(G) has Z>}> :- "
                "<P person {<G gender Z>}>@db",
                "R1"),
      MustParse("<f(P) person {<h(X) copy V>}> :- "
                "<P person {<X name V>}>@db",
                "R2"),
  };
  ExpectRuleSetIdentity(fused, catalog);
}

TEST(IrEquivalenceTest, ErrorsAreIdentical) {
  SourceCatalog catalog = PeopleCatalog();
  // Unsafe head variable (never bound by the body).
  ExpectQueryIdentity(
      MustParse("<f(P) out W0> :- <P person {}>@db", "Unsafe"), catalog);
  // Subgraph binding used where an atomic term is required (oid position).
  ExpectQueryIdentity(
      MustParse("<f(V) out yes> :- <P person V>@db", "SubgraphOid"),
      catalog);
  // Head value instantiates to a function term.
  ExpectQueryIdentity(
      MustParse("<f(P) out g(P)> :- <P person {}>@db", "FuncValue"),
      catalog);
  // Missing source: an error only when evaluation actually reaches the
  // condition — after an empty frontier the tree walker stops resolving,
  // and lazy IR source resolution must stop at the same point.
  ExpectQueryIdentity(
      MustParse("<f(P) out yes> :- <P person {}>@nosuch", "MissingSource"),
      catalog);
  ExpectQueryIdentity(
      MustParse("<f(P) out yes> :- "
                "<P nolabel {}>@db AND <P person {}>@nosuch",
                "UnreachedSource"),
      catalog);
}

TEST(IrEquivalenceTest, DtdShapedSuite) {
  auto dtd = Dtd::Parse(testing::kPersonDtd);
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database db {
      <p1 p {
        <n1 name {<l1 last smith> <f1 first ann>
                  <a1 alias {<l2 last stanford> <f2 first annie>}>}>
        <ph1 phone "555">
        <ad1 address "main st">
      }>
      <p2 p {
        <n2 name {<l3 last stanford> <f3 first bo>}>
        <ph2 phone "556">
      }>
    })"));
  ExpectQueryIdentity(MustParse(testing::kQ7, "Q7"), catalog);
  ExpectQueryIdentity(MustParse(testing::kQ12, "Q12"), catalog);
  ExpectQueryIdentity(MustParse(testing::kQ13, "Q13"), catalog);
  ExpectQueryIdentity(
      MustParse("<f(P) names {<X Y Z>}> :- <P p {<N name {<X Y Z>}>}>@db",
                "AllNames"),
      catalog);
}

TEST(IrEquivalenceTest, RegexStepSuite) {
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database db {
      <r1 part {
        <s1 part {<s2 part {<l1 leaf v0>}> <l2 leaf v1>}>
        <o1 other {<l3 leaf v2>}>
      }>
    })"));
  // Label-closure chains and descendant steps drive StepCandidates' BFS,
  // shared verbatim between the walker and the interpreter.
  ExpectQueryIdentity(
      MustParse("<f(X) out Z> :- <R part {<X part+ {<L leaf Z>}>}>@db",
                "Chain"),
      catalog);
  ExpectQueryIdentity(
      MustParse("<f(X) out Z> :- <R part {<X ** Z>}>@db", "Desc"), catalog);
}

TEST(IrEquivalenceTest, SeededRandomSuite) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    GeneratorOptions gen;
    gen.seed = seed;
    gen.num_roots = 6;
    gen.max_depth = 3;
    gen.num_labels = 3;
    gen.num_values = 3;
    gen.root_label = "root";
    gen.share_probability = 0.2;
    SourceCatalog catalog;
    OemDatabase db = GenerateOemDatabase("db", gen);
    catalog.Put(db);

    testing::RandomRules rules(seed, /*num_labels=*/3, /*num_values=*/3,
                               "root");
    std::vector<TslQuery> plans = {
        rules.Query("Q0", "db"), rules.View("V0", "db"),
        rules.CopyView("V1", "db"), rules.DeepView("V2", "db"),
        rules.Query("Q1", "db"),
    };
    for (const TslQuery& plan : plans) {
      ExpectQueryIdentity(plan, catalog);
    }
    ExpectPlanSetIdentity(plans, catalog);
    TslRuleSet set;
    set.rules = {plans[0], plans[4]};
    ExpectRuleSetIdentity(set, catalog);
  }
}

TEST(IrEquivalenceTest, CseSharesAlphaEquivalentConditions) {
  SourceCatalog catalog = PeopleCatalog();
  // Two plans whose conditions differ only by variable naming: the CSE
  // pass must merge their units, and answers must not change.
  std::vector<TslQuery> plans = {
      MustParse("<f(P) out Z> :- <P person {<X name Z>}>@db", "A"),
      MustParse("<f(Q) out W> :- <Q person {<Y name W>}>@db", "B"),
  };
  ExpectPlanSetIdentity(plans, catalog);

  MetricRegistry metrics;
  PlanCompiler compiler(IrPassOptions{}, &metrics);
  auto program = compiler.CompilePlans(plans);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(metrics.GetCounter("ir.units_shared")->value(), 1u);
  bool found = false;
  for (const IrPassStat& stat : (*program)->pass_stats) {
    if (stat.pass == "common-subplan-elim") {
      found = true;
      EXPECT_EQ(stat.units_before, 2u);
      EXPECT_EQ(stat.units_after, 1u);
    }
  }
  EXPECT_TRUE(found);

  // A shared unit is materialized exactly once per execution.
  MetricRegistry exec_metrics;
  IrExecOptions exec;
  exec.metrics = &exec_metrics;
  auto answers = ExecuteIrPerSegment(**program, catalog, exec);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(exec_metrics.GetCounter("ir.units_materialized")->value(), 1u);
}

TEST(IrEquivalenceTest, ConditionFingerprintIsAlphaInvariant) {
  auto cond = [](std::string_view text) {
    return MustParse(text, "Q").body.front();
  };
  EXPECT_EQ(
      ConditionFingerprint(cond("<f(P) o y> :- <P p {<X name Z>}>@db")),
      ConditionFingerprint(cond("<f(Q) o y> :- <Q p {<Y name W>}>@db")));
  // Different source, same pattern: distinct.
  EXPECT_NE(
      ConditionFingerprint(cond("<f(P) o y> :- <P p {<X name Z>}>@db")),
      ConditionFingerprint(cond("<f(P) o y> :- <P p {<X name Z>}>@other")));
  // Repeated variables must not collide with distinct ones.
  EXPECT_NE(
      ConditionFingerprint(cond("<f(P) o y> :- <P p {<X Y Y>}>@db")),
      ConditionFingerprint(cond("<f(P) o y> :- <P p {<X Y Z>}>@db")));
}

TEST(IrEquivalenceTest, DisassemblyListsOpsAndPassStats) {
  PlanCompiler compiler;
  auto program =
      compiler.Compile(MustParse(testing::kQ1, "Q1"));
  ASSERT_TRUE(program.ok()) << program.status();
  std::string text = Disassemble(**program);
  for (const char* needle :
       {"iter_roots", "match_oid", "join_unit", "emit_row", "emit_head",
        "fuse_root"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle << "\n" << text;
  }
  std::string stats = PassStatsTable(**program);
  EXPECT_NE(stats.find("hoist-invariant-submatches"), std::string::npos);
  EXPECT_NE(stats.find("common-subplan-elim"), std::string::npos);
  EXPECT_NE(stats.find("copy-elision"), std::string::npos);
  // Dumps are deterministic.
  EXPECT_EQ(text, Disassemble(**program));
}

// --- mediator: fault-tolerant answers, tree vs IR backend -------------------

SourceCatalog BiblioCatalog() {
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database s1 {
      <a1 publication {
        <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
      }>
      <a2 publication {
        <t2 title "Constraints"> <v2 venue "VLDB"> <y2 year "1997">
      }>
    })"));
  catalog.Put(MustParseDb(R"(
    database s2 {
      <b1 publication {
        <u1 title "Wrappers"> <w1 venue "SIGMOD"> <x1 year "1997">
      }>
    })"));
  return catalog;
}

/// s1 exposes a 1997 filter; s2 is replicated behind two α-equivalent dump
/// mirrors so the chaos drill's flap phase has somewhere to fail over.
std::vector<SourceDescription> BiblioSources() {
  Capability y97;
  y97.view = MustParse(
      "<y97(P') pub {<X' Y' Z'>}> :- "
      "<P' publication {<U' year \"1997\">}>@s1 AND "
      "<P' publication {<X' Y' Z'>}>@s1",
      "Y97");
  Capability dump_a;
  dump_a.view = MustParse(
      "<da(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@s2",
      "DumpA");
  Capability dump_b;
  dump_b.view = MustParse(
      "<db(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@s2",
      "DumpB");
  return {SourceDescription{"s1", {y97}}, SourceDescription{"s2", {dump_a}},
          SourceDescription{"s2", {dump_b}}};
}

TslQuery Year97Query() {
  return MustParse(
      "<f(P) out yes> :- <P publication {<U year \"1997\">}>@s1", "Q97");
}

TslQuery SigmodDumpQuery() {
  return MustParse(
      "<g(P) sigmod yes> :- <P publication {<V venue \"SIGMOD\">}>@s2",
      "Sigmod");
}

/// Full observable surface of a fault-tolerant answer: the consolidated
/// database, the completeness verdict, the dead-source list, and the whole
/// execution report (attempt-by-attempt, on virtual time).
std::string RenderAnswer(const DegradedAnswer& answer) {
  std::string out = answer.result.ToString();
  out += "completeness=";
  out += CompletenessToString(answer.completeness);
  for (const std::string& s : answer.unreachable_sources) {
    out += " unreachable:" + s;
  }
  out += "\n";
  out += answer.report.ToString();
  return out;
}

TEST(IrEquivalenceTest, DegradedAnswersIdenticalAcrossBackends) {
  auto mediator = Mediator::Make(BiblioSources(), nullptr);
  ASSERT_TRUE(mediator.ok()) << mediator.status();
  SourceCatalog catalog = BiblioCatalog();
  struct Scenario {
    const char* name;
    const char* dead;  // source whose wrapper never answers; null = healthy
  };
  const Scenario scenarios[] = {
      {"healthy", nullptr}, {"s1 dead", "s1"}, {"s2 dead", "s2"}};
  for (const TslQuery& query : {Year97Query(), SigmodDumpQuery()}) {
    for (const Scenario& scenario : scenarios) {
      for (uint64_t seed = 0; seed < 8; ++seed) {
        auto run = [&](ExecutionBackend backend) -> std::string {
          CatalogWrapper base;
          VirtualClock clock;
          FaultInjector injector(&base, seed, &clock);
          if (scenario.dead != nullptr) {
            FaultSchedule dead;
            dead.steady_state = Fault::Unavailable();
            injector.SetSchedule(scenario.dead, dead);
          }
          ExecutionPolicy policy;
          policy.wrapper = &injector;
          policy.clock = &clock;
          policy.seed = seed;
          policy.retry.max_attempts = 2;
          policy.retry.initial_backoff_ticks = 1;
          policy.backend = backend;
          auto answer = mediator->Answer(query, catalog, policy);
          return answer.ok() ? RenderAnswer(*answer)
                             : "error: " + answer.status().ToString();
        };
        std::string tree = run(ExecutionBackend::kTree);
        std::string ir = run(ExecutionBackend::kIR);
        EXPECT_EQ(tree, ir) << scenario.name << " seed " << seed << "\n"
                            << query.ToString();
        // When the query's own source is the dead one, the degraded path
        // must actually have been exercised, not silently stayed complete.
        const bool touches_dead =
            scenario.dead != nullptr &&
            ((query.name == "Q97" && std::string(scenario.dead) == "s1") ||
             (query.name == "Sigmod" && std::string(scenario.dead) == "s2"));
        if (touches_dead) {
          EXPECT_NE(tree.find(std::string("unreachable:") + scenario.dead),
                    std::string::npos)
              << scenario.name << "\n" << tree;
        }
      }
    }
  }
}

TEST(IrEquivalenceTest, ChaosDrillSoundAndRecoveredOnIrBackend) {
  auto sources = BiblioSources();
  SourceCatalog catalog = BiblioCatalog();
  std::vector<TslQuery> queries = {Year97Query(), SigmodDumpQuery()};
  ChaosOptions options;
  options.seed = 7;
  options.requests_per_phase = 4;
  options.server.backend = ExecutionBackend::kIR;
  auto script = StandardChaosScript(sources, options);
  auto drill = RunChaosDrill(sources, catalog, queries, script, options);
  ASSERT_TRUE(drill.ok()) << drill.status();
  EXPECT_TRUE(drill->sound);
  EXPECT_TRUE(drill->recovered);
  for (const std::string& violation : drill->violations) {
    ADD_FAILURE() << "violation: " << violation;
  }
}

TEST(IrEquivalenceTest, ParallelServerAnswersIdenticalAcrossBackends) {
  // Same concurrent request mix against a tree-backend and an IR-backend
  // server at parallelism 8 (the TSan CI job runs this binary): per
  // (query, seed) the answers must agree byte for byte. Only the plan-cache
  // hit/miss attribution may differ between racing requests, so the report
  // is excluded here (DegradedAnswersIdenticalAcrossBackends covers it).
  SourceCatalog catalog = BiblioCatalog();
  const std::vector<TslQuery> queries = {Year97Query(), SigmodDumpQuery()};
  constexpr size_t kRequests = 24;
  auto collect = [&](ExecutionBackend backend) {
    auto mediator = Mediator::Make(BiblioSources(), nullptr);
    EXPECT_TRUE(mediator.ok()) << mediator.status();
    ServerOptions options;
    options.threads = 8;
    options.backend = backend;
    QueryServer server(std::move(*mediator), catalog, options);
    std::vector<std::future<Result<ServeResponse>>> futures;
    for (size_t i = 0; i < kRequests; ++i) {
      ServeOptions serve;
      serve.seed = i;
      auto submitted = server.Submit(queries[i % queries.size()], serve);
      EXPECT_TRUE(submitted.ok()) << submitted.status();
      futures.push_back(std::move(*submitted));
    }
    std::vector<std::string> rendered;
    for (auto& future : futures) {
      Result<ServeResponse> response = future.get();
      EXPECT_TRUE(response.ok()) << response.status();
      if (!response.ok()) {
        rendered.push_back("error: " + response.status().ToString());
        continue;
      }
      const DegradedAnswer& answer = response->answer;
      rendered.push_back(answer.result.name() + "\n" +
                         answer.result.ToString() + "completeness=" +
                         std::string(CompletenessToString(answer.completeness)));
    }
    return rendered;
  };
  std::vector<std::string> tree = collect(ExecutionBackend::kTree);
  std::vector<std::string> ir = collect(ExecutionBackend::kIR);
  ASSERT_EQ(tree.size(), ir.size());
  for (size_t i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(tree[i], ir[i]) << "request " << i;
  }
}

}  // namespace
}  // namespace tslrw
