#include "tsl/normal_form.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "tsl/parser.h"
#include "tsl/validate.h"

namespace tslrw {
namespace {

using testing::MustParse;

TEST(NormalFormTest, Q1ConvertsToQ2) {
  // The paper's worked conversion (\S2): (Q1) splits into the two-path (Q2).
  TslQuery q1 = MustParse(testing::kQ1);
  TslQuery q2 = MustParse(testing::kQ2);
  EXPECT_FALSE(IsNormalForm(q1));
  EXPECT_TRUE(IsNormalForm(q2));
  TslQuery converted = ToNormalForm(q1);
  EXPECT_TRUE(IsNormalForm(converted));
  EXPECT_EQ(converted, q2);
}

TEST(NormalFormTest, AlreadyNormalIsIdentity) {
  TslQuery q3 = MustParse(testing::kQ3);
  EXPECT_TRUE(IsNormalForm(q3));
  EXPECT_EQ(ToNormalForm(q3), q3);
  // Deep single paths are normal: (Q5), (Q7).
  EXPECT_TRUE(IsNormalForm(MustParse(testing::kQ5)));
  EXPECT_TRUE(IsNormalForm(MustParse(testing::kQ7)));
}

TEST(NormalFormTest, NestedBranchingSplitsIntoAllPaths) {
  TslQuery q = MustParse(
      "<f(P) r yes> :- "
      "<P p {<X name {<A last s1> <B first s2>}> <U phone N>}>@db");
  TslQuery nf = ToNormalForm(q);
  EXPECT_TRUE(IsNormalForm(nf));
  ASSERT_EQ(nf.body.size(), 3u);
  EXPECT_EQ(nf, MustParse(
      "<f(P) r yes> :- "
      "<P p {<X name {<A last s1>}>}>@db AND "
      "<P p {<X name {<B first s2>}>}>@db AND "
      "<P p {<U phone N>}>@db"));
}

TEST(NormalFormTest, EmptySetPatternPreserved) {
  TslQuery q = MustParse("<f(X) l yes> :- <X a {}>@db");
  TslQuery nf = ToNormalForm(q);
  EXPECT_EQ(nf, q);
  EXPECT_TRUE(IsNormalForm(nf));
}

TEST(NormalFormTest, DuplicatePathsDeduplicated) {
  TslQuery q = MustParse(
      "<f(P) r yes> :- <P p {<X Y Z> <X Y Z>}>@db");
  TslQuery nf = ToNormalForm(q);
  EXPECT_EQ(nf.body.size(), 1u);
}

TEST(NormalFormTest, SourcePreservedPerPath) {
  TslQuery q = MustParse(
      "<f(P,R) r yes> :- <P p {<A x U> <B y W>}>@db1 AND <R q V>@db2");
  TslQuery nf = ToNormalForm(q);
  ASSERT_EQ(nf.body.size(), 3u);
  EXPECT_EQ(nf.body[0].source, "db1");
  EXPECT_EQ(nf.body[1].source, "db1");
  EXPECT_EQ(nf.body[2].source, "db2");
}

TEST(NormalFormTest, SemanticsPreservedIsCheckedByValidation) {
  // Normal-form output of a safe, well-formed query stays safe/well-formed.
  for (std::string_view text : {testing::kQ1, testing::kQ10, testing::kQ11}) {
    TslQuery nf = ToNormalForm(MustParse(text));
    EXPECT_TRUE(ValidateQuery(nf).ok()) << nf.ToString();
  }
}

TEST(PathTest, FlattenAndUnflattenRoundTrip) {
  TslQuery q7 = MustParse(testing::kQ7);
  ASSERT_EQ(q7.body.size(), 1u);
  auto path = FlattenPath(q7.body[0]);
  ASSERT_TRUE(path.ok()) << path.status();
  // <P p {<X name {<Z last stanford>}>}> has 3 steps and tail `stanford`.
  EXPECT_EQ(path->depth(), 3u);
  EXPECT_EQ(path->steps[0].label, Term::MakeAtom("p"));
  EXPECT_EQ(path->steps[1].label, Term::MakeAtom("name"));
  EXPECT_EQ(path->steps[2].label, Term::MakeAtom("last"));
  ASSERT_TRUE(path->tail.is_term());
  EXPECT_EQ(path->tail.term(), Term::MakeAtom("stanford"));
  EXPECT_EQ(path->source, "db");
  EXPECT_EQ(UnflattenPath(*path), q7.body[0]);
}

TEST(PathTest, EmptySetTail) {
  TslQuery q = MustParse("<f(X) l yes> :- <X a {}>@db");
  auto path = FlattenPath(q.body[0]);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->depth(), 1u);
  EXPECT_TRUE(path->tail.is_set());
  EXPECT_TRUE(path->tail.set().empty());
  EXPECT_EQ(UnflattenPath(*path), q.body[0]);
}

TEST(PathTest, RejectsNonNormalCondition) {
  TslQuery q1 = MustParse(testing::kQ1);
  EXPECT_FALSE(FlattenPath(q1.body[0]).ok());
}

}  // namespace
}  // namespace tslrw
