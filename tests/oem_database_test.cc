#include "oem/database.h"

#include <gtest/gtest.h>

#include "oem/bisim.h"
#include "oem/generator.h"
#include "oem/parser.h"

namespace tslrw {
namespace {

Term Atom(const char* s) { return Term::MakeAtom(s); }

OemDatabase SmallDb() {
  OemDatabase db("db");
  EXPECT_TRUE(db.PutSet(Atom("p1"), "person").ok());
  EXPECT_TRUE(db.PutAtomic(Atom("g1"), "gender", "female").ok());
  EXPECT_TRUE(db.PutAtomic(Atom("n1"), "name", "ashish").ok());
  EXPECT_TRUE(db.AddEdge(Atom("p1"), Atom("g1")).ok());
  EXPECT_TRUE(db.AddEdge(Atom("p1"), Atom("n1")).ok());
  EXPECT_TRUE(db.AddRoot(Atom("p1")).ok());
  return db;
}

TEST(OemDatabaseTest, PutAndFind) {
  OemDatabase db = SmallDb();
  const OemObject* p = db.Find(Atom("p1"));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->label, "person");
  EXPECT_TRUE(p->value.is_set());
  EXPECT_EQ(p->value.children().size(), 2u);
  const OemObject* g = db.Find(Atom("g1"));
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->is_atomic());
  EXPECT_EQ(g->value.atom(), "female");
}

TEST(OemDatabaseTest, OidIsKeyAcrossInserts) {
  OemDatabase db = SmallDb();
  // Same content: fine (idempotent).
  EXPECT_TRUE(db.PutAtomic(Atom("g1"), "gender", "female").ok());
  // Different atomic value / label / kind: rejected.
  EXPECT_FALSE(db.PutAtomic(Atom("g1"), "gender", "male").ok());
  EXPECT_FALSE(db.PutAtomic(Atom("g1"), "sex", "female").ok());
  EXPECT_FALSE(db.PutSet(Atom("g1"), "gender").ok());
}

TEST(OemDatabaseTest, PutSetFusesChildren) {
  OemDatabase db("db");
  ASSERT_TRUE(db.PutSet(Atom("s"), "rec", {Atom("a")}).ok());
  ASSERT_TRUE(db.PutSet(Atom("s"), "rec", {Atom("b")}).ok());
  const OemObject* s = db.Find(Atom("s"));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->value.children().size(), 2u);
}

TEST(OemDatabaseTest, NonGroundOidRejected) {
  OemDatabase db("db");
  Term var = Term::MakeVar("X", VarKind::kObjectId);
  EXPECT_FALSE(db.PutAtomic(var, "l", "v").ok());
  EXPECT_FALSE(db.AddRoot(var).ok());
}

TEST(OemDatabaseTest, FunctionTermOids) {
  OemDatabase db("ans");
  Term fp = Term::MakeFunc("f", {Atom("p1")});
  ASSERT_TRUE(db.PutSet(fp, "female").ok());
  ASSERT_TRUE(db.AddRoot(fp).ok());
  EXPECT_NE(db.Find(fp), nullptr);
  EXPECT_EQ(db.ReachableOids().size(), 1u);
}

TEST(OemDatabaseTest, ReachabilityIgnoresOrphans) {
  OemDatabase db = SmallDb();
  ASSERT_TRUE(db.PutAtomic(Atom("orphan"), "x", "y").ok());
  std::set<Oid> reach = db.ReachableOids();
  EXPECT_EQ(reach.size(), 3u);
  EXPECT_EQ(reach.count(Atom("orphan")), 0u);
}

TEST(OemDatabaseTest, ValidateCatchesDanglingChild) {
  OemDatabase db = SmallDb();
  ASSERT_TRUE(db.AddEdge(Atom("p1"), Atom("missing")).ok());
  EXPECT_FALSE(db.Validate().ok());
}

TEST(OemDatabaseTest, EqualityIsIdentityOnReachablePortion) {
  OemDatabase a = SmallDb();
  OemDatabase b = SmallDb();
  EXPECT_TRUE(a.Equals(b));
  // Orphans don't matter.
  ASSERT_TRUE(b.PutAtomic(Atom("orphan"), "x", "y").ok());
  EXPECT_TRUE(a.Equals(b));
  // A different atomic value does.
  OemDatabase c("db");
  ASSERT_TRUE(c.PutSet(Atom("p1"), "person").ok());
  ASSERT_TRUE(c.PutAtomic(Atom("g1"), "gender", "male").ok());
  ASSERT_TRUE(c.PutAtomic(Atom("n1"), "name", "ashish").ok());
  ASSERT_TRUE(c.AddEdge(Atom("p1"), Atom("g1")).ok());
  ASSERT_TRUE(c.AddEdge(Atom("p1"), Atom("n1")).ok());
  ASSERT_TRUE(c.AddRoot(Atom("p1")).ok());
  EXPECT_FALSE(a.Equals(c));
  // Different oids for the same structure: not equal under \S3 identity.
  OemDatabase d("db");
  ASSERT_TRUE(d.PutSet(Atom("q1"), "person").ok());
  ASSERT_TRUE(d.PutAtomic(Atom("g2"), "gender", "female").ok());
  ASSERT_TRUE(d.PutAtomic(Atom("n2"), "name", "ashish").ok());
  ASSERT_TRUE(d.AddEdge(Atom("q1"), Atom("g2")).ok());
  ASSERT_TRUE(d.AddEdge(Atom("q1"), Atom("n2")).ok());
  ASSERT_TRUE(d.AddRoot(Atom("q1")).ok());
  EXPECT_FALSE(a.Equals(d));
  // ... but equivalent under the \S6 isomorphism comparator.
  EXPECT_TRUE(StructurallyEquivalent(a, d));
  EXPECT_FALSE(StructurallyEquivalent(a, c));
}

TEST(OemDatabaseTest, CyclicGraphsSupported) {
  OemDatabase db("db");
  ASSERT_TRUE(db.PutSet(Atom("a"), "node").ok());
  ASSERT_TRUE(db.PutSet(Atom("b"), "node").ok());
  ASSERT_TRUE(db.AddEdge(Atom("a"), Atom("b")).ok());
  ASSERT_TRUE(db.AddEdge(Atom("b"), Atom("a")).ok());
  ASSERT_TRUE(db.AddRoot(Atom("a")).ok());
  EXPECT_EQ(db.ReachableOids().size(), 2u);
  EXPECT_TRUE(db.Validate().ok());
  // Printing terminates and re-parses to an equal database.
  auto round = ParseOemDatabase(db.ToString());
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_TRUE(db.Equals(*round));
}

TEST(OemParserTest, ParsesNestedObjects) {
  auto db = ParseOemDatabase(R"(
    database db {
      <p1 person {
        <n1 name { <l1 last "stanford"> }>
        <ph1 phone "555-1234">
      }>
    })");
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->name(), "db");
  EXPECT_EQ(db->roots().size(), 1u);
  EXPECT_EQ(db->ReachableOids().size(), 4u);
  const OemObject* l1 = db->Find(Atom("l1"));
  ASSERT_NE(l1, nullptr);
  EXPECT_EQ(l1->value.atom(), "stanford");
  const OemObject* ph = db->Find(Atom("ph1"));
  ASSERT_NE(ph, nullptr);
  EXPECT_EQ(ph->value.atom(), "555-1234");
}

TEST(OemParserTest, ParsesReferencesAndFunctionOids) {
  auto db = ParseOemDatabase(R"(
    database ans {
      <f(p1) female { <f(n1) name ashish> }>
      <g(p1) person { @f(n1) }>
    })");
  ASSERT_TRUE(db.ok()) << db.status();
  Term fn1 = Term::MakeFunc("f", {Atom("n1")});
  const OemObject* shared = db->Find(fn1);
  ASSERT_NE(shared, nullptr);
  const OemObject* g = db->Find(Term::MakeFunc("g", {Atom("p1")}));
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value.children().count(fn1), 1u);
}

TEST(OemParserTest, RoundTripsToString) {
  OemDatabase db = MakeFig3Database();
  auto round = ParseOemDatabase(db.ToString());
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_TRUE(db.Equals(*round));
  EXPECT_EQ(db.ToString(), round->ToString());
}

TEST(OemParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseOemDatabase("database db { <p1 person }").ok());
  EXPECT_FALSE(ParseOemDatabase("database db { <p1> }").ok());
  EXPECT_FALSE(ParseOemDatabase("db { }").ok());
  EXPECT_FALSE(ParseOemDatabase("database db { } extra").ok());
  // Reference to an undefined object fails validation.
  EXPECT_FALSE(ParseOemDatabase("database db { <a x { @nope }> }").ok());
}

TEST(OemGeneratorTest, DeterministicAndValid) {
  GeneratorOptions opt;
  opt.seed = 7;
  opt.num_roots = 5;
  opt.max_depth = 3;
  OemDatabase a = GenerateOemDatabase("g", opt);
  OemDatabase b = GenerateOemDatabase("g", opt);
  EXPECT_TRUE(a.Equals(b));
  EXPECT_TRUE(a.Validate().ok());
  EXPECT_EQ(a.roots().size(), 5u);
  opt.seed = 8;
  OemDatabase c = GenerateOemDatabase("g", opt);
  EXPECT_FALSE(a.Equals(c));
}

TEST(OemGeneratorTest, SharingCreatesDags) {
  GeneratorOptions opt;
  opt.seed = 3;
  opt.num_roots = 4;
  opt.max_depth = 4;
  opt.share_probability = 0.5;
  opt.atomic_probability = 0.3;
  OemDatabase db = GenerateOemDatabase("g", opt);
  EXPECT_TRUE(db.Validate().ok());
  // With heavy sharing, some object is referenced by two parents.
  std::map<Oid, int> indegree;
  for (const auto& [oid, obj] : db.objects()) {
    if (obj.is_atomic()) continue;
    for (const Oid& c : obj.value.children()) indegree[c]++;
  }
  bool shared = false;
  for (const auto& [oid, deg] : indegree) shared = shared || deg > 1;
  EXPECT_TRUE(shared);
}

TEST(Fig3Test, MatchesPaperStructure) {
  OemDatabase db = MakeFig3Database();
  EXPECT_TRUE(db.Validate().ok());
  EXPECT_EQ(db.roots().size(), 2u);
  const OemObject* pub2 = db.Find(Atom("pub2"));
  ASSERT_NE(pub2, nullptr);
  EXPECT_EQ(pub2->label, "publication");
  EXPECT_EQ(pub2->value.children().size(), 4u);
  const OemObject* y2 = db.Find(Atom("y2"));
  ASSERT_NE(y2, nullptr);
  EXPECT_EQ(y2->label, "year");
  EXPECT_EQ(y2->value.atom(), "1993");
}

}  // namespace
}  // namespace tslrw
