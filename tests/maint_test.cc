#include "maint/invalidate.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/diff.h"
#include "constraints/dtd.h"
#include "fixtures.h"
#include "maint/footprint.h"
#include "mediator/capability.h"
#include "service/canonical.h"
#include "service/plan_cache.h"
#include "service/server.h"

namespace tslrw {
namespace {

using testing::MustParse;

Capability Cap(std::string_view text, std::string name) {
  Capability cap;
  cap.view = MustParse(text, std::move(name));
  return cap;
}

/// One source `db` with label-l0 and label-l1 copy views (the catalog the
/// decider tests mutate around).
Capability ViewA() {
  return Cap("<v(P') o {<w(X') m U'>}> :- <P' rec {<X' l0 U'>}>@db", "VA");
}
Capability ViewB() {
  return Cap("<v(P') o {<w(X') m U'>}> :- <P' rec {<X' l1 U'>}>@db", "VB");
}
/// ViewB with a genuinely different body (l2 instead of l1).
Capability ViewBEdited() {
  return Cap("<v(P') o {<w(X') m U'>}> :- <P' rec {<X' l2 U'>}>@db", "VB");
}

std::vector<SourceDescription> Sources(std::vector<Capability> caps) {
  return {SourceDescription{"db", std::move(caps)}};
}

StructuralConstraints RecDtd() {
  auto dtd = Dtd::Parse("<!ELEMENT rec (l0*, l1*)> <!ELEMENT l0 CDATA>");
  EXPECT_TRUE(dtd.ok()) << dtd.status();
  return StructuralConstraints(std::move(dtd).ValueOrDie());
}

/// A captured footprint for a plan set computed against {VA, VB} whose
/// search consulted only \p consulted and whose chased query carries one
/// \p body_label condition.
PlanFootprint FootprintOver(const std::set<std::string>& consulted,
                            std::string_view body_label) {
  PlanFootprint footprint;
  footprint.captured = true;
  footprint.view_names = consulted;
  footprint.view_fingerprints = {{"VA", ViewIdentityFingerprint(ViewA())},
                                 {"VB", ViewIdentityFingerprint(ViewB())}};
  footprint.query_sources = {"db"};
  footprint.chased_query = MustParse(
      std::string("<f(P) out yes> :- <P rec {<X ") + std::string(body_label) +
          " U>}>@db",
      "Q");
  return footprint;
}

// --- view identity fingerprints ---------------------------------------------

TEST(ViewIdentityFingerprintTest, AlphaRenamingIsInvariant) {
  Capability renamed = Cap(
      "<v(Q') o {<w(Y') m W'>}> :- <Q' rec {<Y' l0 W'>}>@db", "VA");
  EXPECT_EQ(ViewIdentityFingerprint(ViewA()),
            ViewIdentityFingerprint(renamed));
}

TEST(ViewIdentityFingerprintTest, NameBodyAndBindingsAllDistinguish) {
  const uint64_t base = ViewIdentityFingerprint(ViewA());
  // Same rule, different capability name.
  Capability other_name =
      Cap("<v(P') o {<w(X') m U'>}> :- <P' rec {<X' l0 U'>}>@db", "VZ");
  EXPECT_NE(base, ViewIdentityFingerprint(other_name));
  // Same name, different body label.
  EXPECT_NE(base, ViewIdentityFingerprint(ViewB()));
  // Same rule, one variable now requires a binding.
  Capability bound = ViewA();
  bound.bound_variables = {"U'"};
  EXPECT_NE(base, ViewIdentityFingerprint(bound));
}

// --- catalog deltas ---------------------------------------------------------

TEST(CatalogDeltaTest, IdenticalCatalogsDiffEmpty) {
  CatalogDelta delta = ComputeCatalogDelta(
      Sources({ViewA(), ViewB()}), nullptr, Sources({ViewA(), ViewB()}),
      nullptr);
  EXPECT_TRUE(delta.empty()) << delta.ToString();
}

TEST(CatalogDeltaTest, ClassifiesAddedRemovedAndChanged) {
  CatalogDelta delta =
      ComputeCatalogDelta(Sources({ViewA(), ViewB()}), nullptr,
                          Sources({ViewBEdited(),
                                   Cap("<v(P') o {<w(X') m U'>}> :- "
                                       "<P' rec {<X' l3 U'>}>@db",
                                       "VC")}),
                          nullptr);
  ASSERT_EQ(delta.added.size(), 1u);
  EXPECT_EQ(delta.added[0].name, "VC");
  EXPECT_EQ(delta.added[0].old_fingerprint, 0u);
  ASSERT_EQ(delta.removed.size(), 1u);
  EXPECT_EQ(delta.removed[0].name, "VA");
  EXPECT_EQ(delta.removed[0].new_fingerprint, 0u);
  ASSERT_EQ(delta.changed.size(), 1u);
  EXPECT_EQ(delta.changed[0].name, "VB");
  EXPECT_NE(delta.changed[0].old_fingerprint,
            delta.changed[0].new_fingerprint);
  EXPECT_FALSE(delta.constraints_changed);
  EXPECT_EQ(delta.TouchedNames(),
            (std::vector<std::string>{"VA", "VB", "VC"}));
}

TEST(CatalogDeltaTest, ViewMovingBetweenSourceDescriptionsIsUnchanged) {
  std::vector<SourceDescription> split = {
      SourceDescription{"db", {ViewA()}},
      SourceDescription{"db2", {ViewB()}}};
  std::vector<SourceDescription> merged = {
      SourceDescription{"db", {ViewA(), ViewB()}},
      SourceDescription{"db2", {}}};
  EXPECT_TRUE(ComputeCatalogDelta(split, nullptr, merged, nullptr).empty());
}

TEST(CatalogDeltaTest, DeltaViewNamedLikeAReferencedSourceIsAHazard) {
  // The new view is *named* "db" — the source every body references. View
  // names form the constraint-exempt chase set, so this addition can
  // change the stored chase of untouched views: flagged for a full flush.
  CatalogDelta delta = ComputeCatalogDelta(
      Sources({ViewA()}), nullptr,
      Sources({ViewA(),
               Cap("<v(P') o {<w(X') m U'>}> :- <P' rec {<X' l1 U'>}>@db",
                   "db")}),
      nullptr);
  EXPECT_TRUE(delta.exempt_hazard) << delta.ToString();
  EXPECT_FALSE(delta.empty());
}

// --- the invalidation decider -----------------------------------------------

TEST(InvalidationDeciderTest, EmptyDeltaIsANoop) {
  CatalogDelta delta = ComputeCatalogDelta(Sources({ViewA()}), nullptr,
                                           Sources({ViewA()}), nullptr);
  InvalidationDecider decider(delta, Sources({ViewA()}), nullptr);
  EXPECT_TRUE(decider.no_op());
  EXPECT_FALSE(decider.full_flush());
  EXPECT_FALSE(decider.ShouldInvalidate(PlanFootprint{}));  // even uncaptured
}

TEST(InvalidationDeciderTest, ConstraintsChangeFlushesEverything) {
  StructuralConstraints dtd = RecDtd();
  CatalogDelta delta = ComputeCatalogDelta(Sources({ViewA()}), nullptr,
                                           Sources({ViewA()}), &dtd);
  ASSERT_TRUE(delta.constraints_changed);
  InvalidationDecider decider(delta, Sources({ViewA()}), &dtd);
  EXPECT_TRUE(decider.full_flush());
  EXPECT_EQ(decider.flush_reason(), "constraints changed");
  EXPECT_TRUE(decider.ShouldInvalidate(FootprintOver({"VA"}, "l0")));
}

TEST(InvalidationDeciderTest, ExemptHazardFlushesEverything) {
  // A new view named like the source every body reads: view names form the
  // chase's constraint-exempt set, so untouched views' stored chases may no
  // longer be valid — per-entry reasoning is off the table.
  std::vector<SourceDescription> after = Sources(
      {ViewA(),
       Cap("<v(P') o {<w(X') m U'>}> :- <P' rec {<X' l1 U'>}>@db", "db")});
  CatalogDelta delta =
      ComputeCatalogDelta(Sources({ViewA()}), nullptr, after, nullptr);
  ASSERT_TRUE(delta.exempt_hazard);
  InvalidationDecider decider(delta, after, nullptr);
  EXPECT_TRUE(decider.full_flush());
  EXPECT_NE(decider.flush_reason().find("doubles as a source"),
            std::string::npos)
      << decider.flush_reason();
  EXPECT_TRUE(decider.ShouldInvalidate(FootprintOver({"VA"}, "l0")));
}

TEST(InvalidationDeciderTest, RegexProbeViewFlushesEverything) {
  // A regex-path view makes every fresh plan search fail (§7 future work);
  // retaining entries would diverge from that failure, so the decider
  // refuses to reason per entry.
  std::vector<SourceDescription> after = Sources(
      {ViewA(),
       Cap("<v(P') o {<w(X') m U'>}> :- <P' rec {<X' ** U'>}>@db", "VR")});
  CatalogDelta delta =
      ComputeCatalogDelta(Sources({ViewA()}), nullptr, after, nullptr);
  ASSERT_EQ(delta.added.size(), 1u);
  InvalidationDecider decider(delta, after, nullptr);
  EXPECT_TRUE(decider.full_flush());
  EXPECT_NE(decider.flush_reason().find("regular path expressions"),
            std::string::npos)
      << decider.flush_reason();
  EXPECT_TRUE(decider.ShouldInvalidate(FootprintOver({"VA"}, "l0")));
}

TEST(InvalidationDeciderTest, UnsatisfiableAddedViewIsSkippedNotProbed) {
  // Under <!ELEMENT rec (l0)> a rec has exactly one l0 child, so the added
  // view's two constant tails fuse and conflict: the chase proves it always
  // empty. An always-empty view can extend no cached plan — the decider
  // skips the probe instead of flushing, and warm entries survive.
  auto dtd = Dtd::Parse("<!ELEMENT rec (l0)>");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  StructuralConstraints constraints(std::move(dtd).ValueOrDie());
  std::vector<SourceDescription> after = Sources(
      {ViewA(),
       Cap("<v(P') o {<w(X') m yes>}> :- <P' rec {<X1' l0 va>}>@db AND "
           "<P' rec {<X2' l0 vb>}>@db",
           "VE")});
  CatalogDelta delta = ComputeCatalogDelta(Sources({ViewA()}), &constraints,
                                           after, &constraints);
  ASSERT_FALSE(delta.constraints_changed);
  ASSERT_EQ(delta.added.size(), 1u);
  InvalidationDecider decider(delta, after, &constraints);
  EXPECT_FALSE(decider.full_flush());
  EXPECT_FALSE(decider.no_op());
  EXPECT_FALSE(decider.ShouldInvalidate(FootprintOver({"VA"}, "l0")));
}

TEST(InvalidationDeciderTest, UncapturedFootprintsAreAlwaysInvalidated) {
  CatalogDelta delta = ComputeCatalogDelta(
      Sources({ViewA(), ViewB()}), nullptr,
      Sources({ViewA(), ViewBEdited()}), nullptr);
  InvalidationDecider decider(delta, Sources({ViewA(), ViewBEdited()}),
                              nullptr);
  EXPECT_FALSE(decider.no_op());
  EXPECT_FALSE(decider.full_flush());
  EXPECT_TRUE(decider.ShouldInvalidate(PlanFootprint{}));
}

TEST(InvalidationDeciderTest, ConsultedViewWhoseIdentityChangedInvalidates) {
  CatalogDelta delta = ComputeCatalogDelta(
      Sources({ViewA(), ViewB()}), nullptr,
      Sources({ViewA(), ViewBEdited()}), nullptr);
  InvalidationDecider decider(delta, Sources({ViewA(), ViewBEdited()}),
                              nullptr);
  // The search consulted VB; its recorded fingerprint is no longer in the
  // new catalog.
  EXPECT_TRUE(decider.ShouldInvalidate(FootprintOver({"VA", "VB"}, "l1")));
}

TEST(InvalidationDeciderTest, UnconsultedEditWithNoMappingIsRetained) {
  // VB's body changed from l1 to l2, but the entry's search consulted only
  // VA and its chased query has a single l0 condition: neither the old nor
  // the new VB body can map into it, so the plan set is provably
  // unchanged.
  CatalogDelta delta = ComputeCatalogDelta(
      Sources({ViewA(), ViewB()}), nullptr,
      Sources({ViewA(), ViewBEdited()}), nullptr);
  InvalidationDecider decider(delta, Sources({ViewA(), ViewBEdited()}),
                              nullptr);
  EXPECT_FALSE(decider.ShouldInvalidate(FootprintOver({"VA"}, "l0")));
}

TEST(InvalidationDeciderTest, AddedViewThatMapsIntoTheQueryInvalidates) {
  // A brand-new l0 view appears. The cached entry never consulted it, but
  // its body maps into the entry's chased l0 query — a fresh search would
  // find a new candidate atom, so the entry must go.
  CatalogDelta delta = ComputeCatalogDelta(
      Sources({ViewA()}), nullptr,
      Sources({ViewA(),
               Cap("<u(P') o2 {<w(X') m U'>}> :- <P' rec {<X' l0 U'>}>@db",
                   "VNEW")}),
      nullptr);
  std::vector<SourceDescription> new_sources = Sources(
      {ViewA(),
       Cap("<u(P') o2 {<w(X') m U'>}> :- <P' rec {<X' l0 U'>}>@db", "VNEW")});
  InvalidationDecider decider(delta, new_sources, nullptr);
  EXPECT_TRUE(decider.ShouldInvalidate(FootprintOver({"VA"}, "l0")));
  // ...while an entry over an l1-only query is untouched by the l0 view.
  EXPECT_FALSE(decider.ShouldInvalidate(FootprintOver({}, "l1")));
}

TEST(InvalidationDeciderTest, QueryReferencingADeltaViewNameInvalidates) {
  // The query's own body names the removed view as a source: its
  // constraint-exempt chase environment changed, whatever the plans were.
  CatalogDelta delta = ComputeCatalogDelta(Sources({ViewA(), ViewB()}),
                                           nullptr, Sources({ViewA()}),
                                           nullptr);
  InvalidationDecider decider(delta, Sources({ViewA()}), nullptr);
  PlanFootprint footprint = FootprintOver({"VA"}, "l0");
  footprint.query_sources = {"db", "VB"};
  EXPECT_TRUE(decider.ShouldInvalidate(footprint));
  // The same delta with a db-only query: VB was never consulted and is
  // gone, so nothing about the entry can change.
  EXPECT_FALSE(decider.ShouldInvalidate(FootprintOver({"VA"}, "l0")));
}

TEST(InvalidationDeciderTest, UnsatisfiableQueriesSurviveViewDeltas) {
  CatalogDelta delta = ComputeCatalogDelta(
      Sources({ViewA(), ViewB()}), nullptr,
      Sources({ViewA(), ViewBEdited()}), nullptr);
  InvalidationDecider decider(delta, Sources({ViewA(), ViewBEdited()}),
                              nullptr);
  PlanFootprint footprint = FootprintOver({}, "l0");
  footprint.query_unsatisfiable = true;
  EXPECT_FALSE(decider.ShouldInvalidate(footprint));
}

// --- plan-cache generations -------------------------------------------------

MediatorPlanSet PlansUsing(const std::string& view) {
  MediatorPlanSet set;
  MediatorPlan plan;
  plan.views_used = {view};
  plan.cost = 1;
  set.plans.push_back(std::move(plan));
  return set;
}

TEST(PlanCacheMaintTest, FlushKeepsCountersAndDropsEntries) {
  PlanCache cache(PlanCache::Options{8, 2});
  PlanCacheKey key = MakePlanCacheKey(
      MustParse("<f(P) out yes> :- <P rec {<X l0 U>}>@db", "Q"));
  auto compute = [] { return Result<MediatorPlanSet>(PlansUsing("VA")); };
  ASSERT_TRUE(cache.LookupOrCompute(key, compute).ok());  // miss
  ASSERT_TRUE(cache.LookupOrCompute(key, compute).ok());  // hit
  ASSERT_EQ(cache.stats().hits, 1u);

  const uint64_t before = cache.generation();
  cache.Flush();
  EXPECT_EQ(cache.generation(), before + 1);
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 0u);
  ASSERT_TRUE(cache.LookupOrCompute(key, compute).ok());
  EXPECT_EQ(cache.stats().misses, 2u);  // really gone
}

TEST(PlanCacheMaintTest, StaleGenerationComputationsDoNotInsert) {
  PlanCache cache(PlanCache::Options{8, 1});
  PlanCacheKey key = MakePlanCacheKey(
      MustParse("<f(P) out yes> :- <P rec {<X l0 U>}>@db", "Q"));
  int computed = 0;
  auto compute = [&computed] {
    ++computed;
    return Result<MediatorPlanSet>(PlansUsing("VA"));
  };

  // A request admitted under the old generation computes after the fence:
  // it gets its own answer but must not populate the new generation.
  const uint64_t stale = cache.generation();
  cache.BeginGeneration();
  auto detached = cache.LookupOrCompute(key, stale, compute);
  ASSERT_TRUE(detached.ok());
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(cache.stats().entries, 0u);

  auto fresh = cache.LookupOrCompute(key, cache.generation(), compute);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(computed, 2);  // the stale result was not served
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(PlanCacheMaintTest, InvalidateMatchingDropsOnlySelectedEntries) {
  PlanCache cache(PlanCache::Options{8, 2});
  PlanCacheKey qa = MakePlanCacheKey(
      MustParse("<f(P) out yes> :- <P rec {<X l0 U>}>@db", "QA"));
  PlanCacheKey qb = MakePlanCacheKey(
      MustParse("<f(P) out yes> :- <P rec {<X l1 U>}>@db", "QB"));
  ASSERT_TRUE(
      cache
          .LookupOrCompute(
              qa, [] { return Result<MediatorPlanSet>(PlansUsing("VA")); })
          .ok());
  ASSERT_TRUE(
      cache
          .LookupOrCompute(
              qb, [] { return Result<MediatorPlanSet>(PlansUsing("VB")); })
          .ok());

  size_t dropped = cache.InvalidateMatching(
      [](const std::string&, const MediatorPlanSet& plans) {
        return !plans.plans.empty() && !plans.plans[0].views_used.empty() &&
               plans.plans[0].views_used[0] == "VB";
      });
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);

  // QA still hits; QB recomputes.
  ASSERT_TRUE(cache
                  .LookupOrCompute(
                      qa,
                      []() -> Result<MediatorPlanSet> {
                        ADD_FAILURE() << "QA should have been retained";
                        return PlansUsing("VA");
                      })
                  .ok());
  int recomputed = 0;
  ASSERT_TRUE(cache
                  .LookupOrCompute(qb,
                                   [&recomputed] {
                                     ++recomputed;
                                     return Result<MediatorPlanSet>(
                                         PlansUsing("VB"));
                                   })
                  .ok());
  EXPECT_EQ(recomputed, 1);
}

// --- operator surfacing -----------------------------------------------------

TEST(MaintenanceReportTest, RendersEachOutcome) {
  MaintenanceReport flush;
  flush.full_flush = true;
  flush.flush_reason = "constraints changed";
  flush.entries_invalidated = 7;
  EXPECT_EQ(flush.ToString(),
            "full flush (constraints changed), 7 entries dropped");

  MaintenanceReport noop;
  noop.noop = true;
  noop.entries_retained = 3;
  EXPECT_EQ(noop.ToString(), "no-op (identical catalogs), 3 entries kept");

  MaintenanceReport selective;
  selective.delta_summary = "+0 -0 ~1 views, constraints unchanged";
  selective.entries_examined = 5;
  selective.entries_invalidated = 2;
  selective.entries_retained = 3;
  EXPECT_EQ(selective.ToString(),
            "selective: +0 -0 ~1 views, constraints unchanged; "
            "invalidated 2/5, retained 3");
}

TEST(MaintenanceStatsTest, RendersTotals) {
  MaintenanceStats stats;
  stats.selective_applies = 2;
  stats.full_flushes = 1;
  stats.noop_applies = 4;
  stats.entries_examined = 10;
  stats.entries_invalidated = 3;
  stats.entries_retained = 7;
  EXPECT_EQ(stats.ToString(),
            "maintenance: 2 selective, 1 full flush(es), 4 no-op(s); "
            "entries 10 examined, 3 invalidated, 7 retained");
}

}  // namespace
}  // namespace tslrw
