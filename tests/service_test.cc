#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/compiler.h"
#include "fixtures.h"
#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "service/canonical.h"
#include "service/plan_cache.h"
#include "service/server.h"
#include "runtime/thread_pool.h"
#include "tsl/canonical.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

// --- fixtures (the bibliographic mediator of mediator_test) -----------------

SourceCatalog BiblioCatalog() {
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database s1 {
      <a1 publication {
        <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
      }>
      <a2 publication {
        <t2 title "Constraints"> <v2 venue "VLDB"> <y2 year "1997">
      }>
      <a3 publication {
        <t3 title "Mediators"> <v3 venue "SIGMOD"> <y3 year "1993">
      }>
    })"));
  catalog.Put(MustParseDb(R"(
    database s2 {
      <b1 publication {
        <u1 title "Wrappers"> <w1 venue "SIGMOD"> <x1 year "1997">
      }>
      <b2 publication {
        <u2 title "Warehouses"> <w2 venue "SIGMOD"> <x2 year "1996">
      }>
    })"));
  return catalog;
}

Mediator MakeBiblioMediator() {
  Capability y97;
  y97.view = MustParse(
      "<y97(P') pub {<X' Y' Z'>}> :- "
      "<P' publication {<U' year \"1997\">}>@s1 AND "
      "<P' publication {<X' Y' Z'>}>@s1",
      "Y97");
  Capability dump;
  dump.view = MustParse(
      "<dump(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@s2",
      "Dump2");
  auto mediator = Mediator::Make(
      {SourceDescription{"s1", {y97}}, SourceDescription{"s2", {dump}}});
  EXPECT_TRUE(mediator.ok()) << mediator.status();
  return std::move(mediator).ValueOrDie();
}

TslQuery Sigmod97Query() {
  return MustParse(
      "<f(P) sigmod97 yes> :- "
      "<P publication {<U year \"1997\">}>@s1 AND "
      "<P publication {<V venue \"SIGMOD\">}>@s1",
      "Sigmod97");
}

/// α-equivalent rendering of Sigmod97Query: variables renamed, conditions
/// reordered. Same name, so even the answer-database name matches.
TslQuery Sigmod97QueryRenamed() {
  return MustParse(
      "<f(Pub) sigmod97 yes> :- "
      "<Pub publication {<Ven venue \"SIGMOD\">}>@s1 AND "
      "<Pub publication {<Yr year \"1997\">}>@s1",
      "Sigmod97");
}

TslQuery DumpQuery() {
  return MustParse(
      "<f(P) all97 yes> :- <P publication {<U year \"1997\">}>@s2", "All97");
}

MediatorPlanSet TrivialPlans(const std::string& view) {
  MediatorPlanSet set;
  MediatorPlan plan;
  plan.views_used = {view};
  plan.cost = 1;
  set.plans.push_back(std::move(plan));
  return set;
}

PlanCacheKey KeyFor(std::string_view text) {
  return MakePlanCacheKey(MustParse(text));
}

ServerOptions SmallServer(size_t threads, size_t queue_capacity) {
  ServerOptions options;
  options.threads = threads;
  options.queue_capacity = queue_capacity;
  return options;
}

// --- thread pool ------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryAdmittedTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(ThreadPool::Options{4, 64});
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }).ok());
    }
  }  // destructor drains and joins
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, RejectsWithResourceExhaustedWhenQueueIsFull) {
  ThreadPool pool(ThreadPool::Options{1, 1});
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();

  // Occupy the single worker...
  ASSERT_TRUE(pool.TrySubmit([&entered, release_future] {
                    entered.set_value();
                    release_future.wait();
                  })
                  .ok());
  entered.get_future().wait();  // the blocker is running, not queued
  // ...fill the queue...
  std::atomic<bool> queued_ran{false};
  ASSERT_TRUE(
      pool.TrySubmit([&queued_ran] { queued_ran.store(true); }).ok());
  // ...and the next submission is pushed back, not buffered.
  Status rejected = pool.TrySubmit([] {});
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted) << rejected;
  EXPECT_NE(rejected.message().find("retry"), std::string::npos) << rejected;

  release.set_value();
  pool.Shutdown();
  EXPECT_TRUE(queued_ran.load());  // admitted before shutdown => ran
}

TEST(ThreadPoolTest, RejectsWithUnavailableAfterShutdown) {
  ThreadPool pool(ThreadPool::Options{1, 4});
  pool.Shutdown();
  Status late = pool.TrySubmit([] {});
  EXPECT_EQ(late.code(), StatusCode::kUnavailable) << late;
}

// --- plan cache -------------------------------------------------------------

TEST(PlanCacheTest, CountsHitsMissesAndEvictions) {
  PlanCache::Options options;
  options.capacity = 2;
  options.shards = 1;  // one shard so the eviction order is exact
  PlanCache cache(options);

  PlanCacheKey k1 = KeyFor("<f(P) a yes> :- <P p {<X l v1>}>@db");
  PlanCacheKey k2 = KeyFor("<f(P) a yes> :- <P p {<X l v2>}>@db");
  PlanCacheKey k3 = KeyFor("<f(P) a yes> :- <P p {<X l v3>}>@db");
  auto compute = [] { return Result<MediatorPlanSet>(TrivialPlans("V")); };

  ASSERT_TRUE(cache.LookupOrCompute(k1, compute).ok());  // miss
  ASSERT_TRUE(cache.LookupOrCompute(k1, compute).ok());  // hit
  ASSERT_TRUE(cache.LookupOrCompute(k2, compute).ok());  // miss
  ASSERT_TRUE(cache.LookupOrCompute(k3, compute).ok());  // miss, evicts k1
  ASSERT_TRUE(cache.LookupOrCompute(k1, compute).ok());  // miss again

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, AlphaEquivalentQueriesShareOneEntry) {
  PlanCache cache(PlanCache::Options{});
  int runs = 0;
  auto compute = [&runs] {
    ++runs;
    return Result<MediatorPlanSet>(TrivialPlans("V"));
  };
  ASSERT_TRUE(
      cache.LookupOrCompute(KeyFor("<f(P) a Z> :- <P p {<X l Z>}>@db"),
                            compute)
          .ok());
  ASSERT_TRUE(
      cache.LookupOrCompute(KeyFor("<f(Q) a W> :- <Q p {<Y l W>}>@db"),
                            compute)
          .ok());
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCacheTest, FailedComputationsPropagateAndAreNotCached) {
  PlanCache cache(PlanCache::Options{});
  PlanCacheKey key = KeyFor("<f(P) a yes> :- <P p {<X l v>}>@db");
  auto fail = [] {
    return Result<MediatorPlanSet>(Status::Unavailable("planner down"));
  };
  auto first = cache.LookupOrCompute(key, fail);
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
  // The failure was not cached: the next lookup computes again.
  int runs = 0;
  auto succeed = [&runs] {
    ++runs;
    return Result<MediatorPlanSet>(TrivialPlans("V"));
  };
  ASSERT_TRUE(cache.LookupOrCompute(key, succeed).ok());
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, ConcurrentLookupsCoalesceIntoOneComputation) {
  PlanCache cache(PlanCache::Options{});
  PlanCacheKey key = KeyFor("<f(P) a yes> :- <P p {<X l v>}>@db");

  constexpr int kWaiters = 6;
  std::promise<void> compute_entered;
  std::promise<void> compute_release;
  std::shared_future<void> release = compute_release.get_future().share();
  std::atomic<int> compute_runs{0};
  auto blocking_compute = [&] {
    compute_runs.fetch_add(1);
    compute_entered.set_value();
    release.wait();
    return Result<MediatorPlanSet>(TrivialPlans("V"));
  };

  std::thread owner([&] {
    auto result = cache.LookupOrCompute(key, blocking_compute);
    EXPECT_TRUE(result.ok());
  });
  compute_entered.get_future().wait();  // the flight is registered

  std::vector<std::thread> waiters;
  auto never_runs = [&] {
    ADD_FAILURE() << "coalesced waiter recomputed the plans";
    return Result<MediatorPlanSet>(TrivialPlans("V"));
  };
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      auto result = cache.LookupOrCompute(key, never_runs);
      EXPECT_TRUE(result.ok());
    });
  }
  // Wait until every waiter has latched onto the in-flight computation;
  // `coalesced` is incremented under the shard lock before blocking.
  while (cache.stats().coalesced < static_cast<uint64_t>(kWaiters)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  compute_release.set_value();
  owner.join();
  for (std::thread& t : waiters) t.join();

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(compute_runs.load(), 1);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.coalesced, static_cast<uint64_t>(kWaiters));
  EXPECT_EQ(stats.inflight_peak, 1u);
  EXPECT_EQ(stats.inflight_now, 0u);
}

// --- query server: correctness ----------------------------------------------

TEST(QueryServerTest, AnswersMatchTheDirectMediator) {
  Mediator mediator = MakeBiblioMediator();
  SourceCatalog catalog = BiblioCatalog();
  TslQuery query = Sigmod97Query();

  auto direct = mediator.Answer(query, catalog);
  ASSERT_TRUE(direct.ok()) << direct.status();

  QueryServer server(MakeBiblioMediator(), BiblioCatalog());
  auto served = server.Answer(query);
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_TRUE(served->answer.result.Equals(direct->result))
      << served->answer.result.ToString();
  EXPECT_EQ(served->answer.completeness, direct->completeness);
  EXPECT_FALSE(served->plan_cache_hit);  // cold cache

  // An α-equivalent rendering reuses the cached plans and still produces
  // the identical answer.
  auto renamed = server.Answer(Sigmod97QueryRenamed());
  ASSERT_TRUE(renamed.ok()) << renamed.status();
  EXPECT_TRUE(renamed->plan_cache_hit);
  EXPECT_TRUE(renamed->answer.result.Equals(direct->result))
      << renamed->answer.result.ToString();
}

TEST(QueryServerTest, SubmitResolvesFuturesOnThePool) {
  QueryServer server(MakeBiblioMediator(), BiblioCatalog(),
                     SmallServer(2, 32));
  std::vector<std::future<Result<ServeResponse>>> futures;
  for (int i = 0; i < 8; ++i) {
    auto submitted = server.Submit(i % 2 == 0 ? Sigmod97Query() : DumpQuery());
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    futures.push_back(std::move(submitted).ValueOrDie());
  }
  for (auto& future : futures) {
    auto response = future.get();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_TRUE(response->answer.complete());
  }
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 8u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.completed, 8u);
  // Two distinct canonical queries; everything else coalesced or hit.
  EXPECT_EQ(stats.plan_cache.misses, 2u);
}

// --- query server: admission control ----------------------------------------

/// A wrapper that parks every Fetch until released, so requests occupy the
/// worker pool for as long as the test needs.
class GatedWrapper : public Wrapper {
 public:
  struct Gate {
    std::promise<void> first_entered;
    std::once_flag entered_once;
    std::shared_future<void> release;
  };

  explicit GatedWrapper(std::shared_ptr<Gate> gate) : gate_(std::move(gate)) {}

  Result<WrapperResult> Fetch(const Capability& capability,
                              const SourceCatalog& catalog) override {
    std::call_once(gate_->entered_once,
                   [this] { gate_->first_entered.set_value(); });
    gate_->release.wait();
    return base_.Fetch(capability, catalog);
  }

 private:
  std::shared_ptr<Gate> gate_;
  CatalogWrapper base_;
};

TEST(QueryServerTest, OverloadIsRejectedWithResourceExhausted) {
  auto gate = std::make_shared<GatedWrapper::Gate>();
  std::promise<void> release;
  gate->release = release.get_future().share();

  QueryServer server(MakeBiblioMediator(), BiblioCatalog(),
                     SmallServer(1, 1),
                     [gate](VirtualClock*, uint64_t) {
                       return std::make_unique<GatedWrapper>(gate);
                     });

  auto running = server.Submit(Sigmod97Query());
  ASSERT_TRUE(running.ok()) << running.status();
  gate->first_entered.get_future().wait();  // the worker is busy, not queued

  auto queued = server.Submit(Sigmod97Query());  // fills the queue
  ASSERT_TRUE(queued.ok()) << queued.status();

  auto rejected = server.Submit(Sigmod97Query());  // pushed back
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted)
      << rejected.status();
  EXPECT_NE(rejected.status().message().find("retry"), std::string::npos)
      << rejected.status();

  release.set_value();
  auto first = std::move(running).ValueOrDie().get();
  auto second = std::move(queued).ValueOrDie().get();
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->plan_cache_hit);  // coalesced or hit behind the first

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
}

// --- query server: determinism under concurrency and faults ------------------

/// Owns the CatalogWrapper + FaultInjector pair for one request, wiring the
/// same scripted schedules every time: answers become a pure function of
/// (query, seed, snapshot), which is what the stress test asserts.
class ScriptedWrapper : public Wrapper {
 public:
  ScriptedWrapper(uint64_t seed, VirtualClock* clock,
                  const std::map<std::string, FaultSchedule>& schedules)
      : injector_(&base_, seed, clock) {
    for (const auto& [key, schedule] : schedules) {
      injector_.SetSchedule(key, schedule);
    }
  }

  Result<WrapperResult> Fetch(const Capability& capability,
                              const SourceCatalog& catalog) override {
    return injector_.Fetch(capability, catalog);
  }

 private:
  CatalogWrapper base_;
  FaultInjector injector_;
};

std::map<std::string, FaultSchedule> StressSchedules() {
  std::map<std::string, FaultSchedule> schedules;
  FaultSchedule blips;  // s1 drops two calls, then recovers: retries win
  blips.scripted = {Fault::Unavailable(), Fault::Unavailable()};
  schedules["s1"] = blips;
  FaultSchedule flaky;  // s2 fails each call with a seeded coin
  flaky.steady_state = Fault::Flaky(0.5);
  schedules["s2"] = flaky;
  return schedules;
}

ServerOptions StressOptions() {
  ServerOptions options;
  options.threads = 8;
  options.queue_capacity = 1024;  // large enough that nothing is rejected
  options.retry.max_attempts = 4;
  options.retry.initial_backoff_ticks = 1;
  return options;
}

TEST(QueryServerTest, ConcurrentAnswersAreIdenticalToSingleThreadedRuns) {
  // N threads x M queries against a faulty catalog: every concurrent
  // answer must be bit-identical to the single-threaded mediator's answer
  // for the same (query, seed) — per-request wrappers and clocks make each
  // request a replay, and the plan cache must not change any outcome.
  const std::map<std::string, FaultSchedule> schedules = StressSchedules();
  const ServerOptions options = StressOptions();

  struct Case {
    TslQuery query;
    uint64_t seed;
    std::string expected;  // result rendering + completeness
  };
  std::vector<Case> cases;
  {
    Mediator reference = MakeBiblioMediator();
    SourceCatalog catalog = BiblioCatalog();
    std::vector<TslQuery> queries = {Sigmod97Query(), Sigmod97QueryRenamed(),
                                     DumpQuery()};
    for (const TslQuery& query : queries) {
      for (uint64_t seed = 0; seed < 4; ++seed) {
        VirtualClock clock;
        ScriptedWrapper wrapper(seed, &clock, schedules);
        ExecutionPolicy policy;
        policy.wrapper = &wrapper;
        policy.clock = &clock;
        policy.retry = options.retry;
        policy.seed = seed;
        auto expected = reference.Answer(query, catalog, policy);
        ASSERT_TRUE(expected.ok()) << expected.status();
        cases.push_back(Case{query, seed,
                             expected->result.ToString() + "\n#" +
                                 std::to_string(static_cast<int>(
                                     expected->completeness))});
      }
    }
  }

  QueryServer server(MakeBiblioMediator(), BiblioCatalog(), options,
                     [&schedules](VirtualClock* clock, uint64_t seed) {
                       return std::make_unique<ScriptedWrapper>(seed, clock,
                                                                schedules);
                     });

  constexpr int kThreads = 8;
  constexpr int kRounds = 6;  // each thread walks all cases, offset per thread
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const Case& c = cases[(static_cast<size_t>(t + round * 3)) %
                              cases.size()];
        ServeOptions serve;
        serve.seed = c.seed;
        auto response = server.Answer(c.query, serve);
        if (!response.ok()) {
          ADD_FAILURE() << response.status();
          mismatches.fetch_add(1);
          continue;
        }
        std::string got =
            response->answer.result.ToString() + "\n#" +
            std::to_string(static_cast<int>(response->answer.completeness));
        if (got != c.expected) {
          ADD_FAILURE() << "seed " << c.seed << " diverged:\n--- expected\n"
                        << c.expected << "\n--- got\n"
                        << got;
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Sigmod97Query and its renaming share one canonical form, so only two
  // distinct plan searches ever ran, and the single-flight invariant held:
  // the in-flight count never exceeded the number of distinct canonical
  // queries.
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.plan_cache.misses, 2u) << stats.ToString();
  EXPECT_LE(stats.plan_cache.inflight_peak, 2u) << stats.ToString();
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.failed, 0u);
}

// --- query server: snapshot isolation ----------------------------------------

TEST(QueryServerTest, CatalogSwapsKeepThePlanCacheAndChangeAnswers) {
  QueryServer server(MakeBiblioMediator(), BiblioCatalog());
  TslQuery query = Sigmod97Query();

  auto before = server.Answer(query);
  ASSERT_TRUE(before.ok()) << before.status();
  const size_t roots_before = before->answer.result.roots().size();

  server.UpdateCatalog(MustParseDb(R"(
    database s1 {
      <a1 publication {
        <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
      }>
      <a4 publication {
        <t4 title "Rewriting"> <v4 venue "SIGMOD"> <y4 year "1997">
      }>
    })"));

  auto after = server.Answer(query);
  ASSERT_TRUE(after.ok()) << after.status();
  // The new data is served, and the plans survived the swap: the second
  // request was a cache hit even though the catalog changed underneath.
  EXPECT_NE(after->answer.result.roots().size(), roots_before);
  EXPECT_TRUE(after->plan_cache_hit);
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.catalog_swaps, 1u);
  EXPECT_EQ(stats.plan_cache.hits, 1u);
}

TEST(QueryServerTest, MediatorSwapsStartAFreshPlanCacheGeneration) {
  // Under MaintenanceMode::kFullFlush every swap retires the whole cache,
  // even when the replacement mediator is identical.
  ServerOptions options;
  options.maintenance = MaintenanceMode::kFullFlush;
  QueryServer server(MakeBiblioMediator(), BiblioCatalog(), options);
  ASSERT_TRUE(server.Answer(Sigmod97Query()).ok());
  auto warm = server.Answer(Sigmod97Query());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);

  MaintenanceReport report = server.ReplaceMediator(MakeBiblioMediator());
  EXPECT_TRUE(report.full_flush);
  auto cold = server.Answer(Sigmod97Query());
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->plan_cache_hit);  // cached plans named retired views
  EXPECT_EQ(server.stats().mediator_swaps, 1u);
}

TEST(QueryServerTest, IdenticalMediatorSwapIsAMaintenanceNoop) {
  // Selective maintenance (the default) diffs the catalogs: swapping in a
  // byte-identical mediator is a no-op and every cached plan survives.
  QueryServer server(MakeBiblioMediator(), BiblioCatalog());
  ASSERT_TRUE(server.Answer(Sigmod97Query()).ok());
  ASSERT_TRUE(server.Answer(DumpQuery()).ok());

  MaintenanceReport report = server.ReplaceMediator(MakeBiblioMediator());
  EXPECT_TRUE(report.noop) << report.ToString();
  EXPECT_FALSE(report.full_flush) << report.ToString();
  EXPECT_EQ(report.entries_invalidated, 0u) << report.ToString();

  auto warm = server.Answer(Sigmod97Query());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  auto warm2 = server.Answer(DumpQuery());
  ASSERT_TRUE(warm2.ok());
  EXPECT_TRUE(warm2->plan_cache_hit);
  // The swap still happened: the new mediator object is serving.
  EXPECT_EQ(server.stats().mediator_swaps, 1u);
  EXPECT_EQ(server.stats().maintenance.noop_applies, 1u);
}

TEST(QueryServerTest, SelectiveSwapInvalidatesOnlyAffectedEntries) {
  // Change only the s2 view: the Sigmod97 entry (which depends on Y97
  // over s1 alone) must survive, while the DumpQuery entry (planned over
  // the edited view) must be invalidated.
  QueryServer server(MakeBiblioMediator(), BiblioCatalog());
  ASSERT_TRUE(server.Answer(Sigmod97Query()).ok());
  ASSERT_TRUE(server.Answer(DumpQuery()).ok());

  Capability y97;
  y97.view = MustParse(
      "<y97(P') pub {<X' Y' Z'>}> :- "
      "<P' publication {<U' year \"1997\">}>@s1 AND "
      "<P' publication {<X' Y' Z'>}>@s1",
      "Y97");
  Capability dump;  // body gains a year filter: a real semantic change
  dump.view = MustParse(
      "<dump(P') pub {<X' Y' Z'>}> :- "
      "<P' publication {<X' Y' Z'>}>@s2 AND "
      "<P' publication {<U' year \"1997\">}>@s2",
      "Dump2");
  auto changed = Mediator::Make(
      {SourceDescription{"s1", {y97}}, SourceDescription{"s2", {dump}}});
  ASSERT_TRUE(changed.ok()) << changed.status();

  MaintenanceReport report =
      server.ReplaceMediator(std::move(changed).ValueOrDie());
  EXPECT_FALSE(report.full_flush) << report.ToString();
  EXPECT_FALSE(report.noop) << report.ToString();
  EXPECT_EQ(report.entries_examined, 2u) << report.ToString();
  EXPECT_EQ(report.entries_invalidated, 1u) << report.ToString();
  EXPECT_EQ(report.entries_retained, 1u) << report.ToString();

  auto retained = server.Answer(Sigmod97Query());
  ASSERT_TRUE(retained.ok());
  EXPECT_TRUE(retained->plan_cache_hit);
  auto invalidated = server.Answer(DumpQuery());
  ASSERT_TRUE(invalidated.ok());
  EXPECT_FALSE(invalidated->plan_cache_hit);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.maintenance.selective_applies, 1u) << stats.ToString();
  EXPECT_EQ(stats.maintenance.entries_retained, 1u) << stats.ToString();
  EXPECT_EQ(stats.maintenance.entries_invalidated, 1u) << stats.ToString();
}

TEST(QueryServerTest, InvalidatePlansKeepsCacheCountersMonotonic) {
  // Regression: InvalidatePlans used to rebuild the cache object, zeroing
  // the per-shard hit/miss/coalesced counters and making Statsz rates run
  // backwards. A flush must drop entries, not history.
  QueryServer server(MakeBiblioMediator(), BiblioCatalog());
  ASSERT_TRUE(server.Answer(Sigmod97Query()).ok());
  auto warm = server.Answer(Sigmod97Query());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  ASSERT_EQ(server.stats().plan_cache.hits, 1u);
  ASSERT_EQ(server.stats().plan_cache.misses, 1u);

  server.InvalidatePlans();

  PlanCacheStats after = server.stats().plan_cache;
  EXPECT_EQ(after.hits, 1u);    // survived the flush
  EXPECT_EQ(after.misses, 1u);  // survived the flush
  EXPECT_EQ(after.entries, 0u);  // ...but the entries did not

  auto cold = server.Answer(Sigmod97Query());
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->plan_cache_hit);
  EXPECT_EQ(server.stats().plan_cache.misses, 2u);
  EXPECT_EQ(server.stats().plan_cache.hits, 1u);
}

TEST(QueryServerTest, RequestsUnderConcurrentSwapsSeeAConsistentSnapshot) {
  // Readers hammer the server while a writer republishes the catalog;
  // every answer must match one of the two catalog states, never a blend.
  QueryServer server(MakeBiblioMediator(), BiblioCatalog(),
                     SmallServer(4, 256));
  TslQuery query = Sigmod97Query();

  auto old_answer = server.Answer(query);
  ASSERT_TRUE(old_answer.ok()) << old_answer.status();
  const std::string old_rendering = old_answer->answer.result.ToString();

  SourceCatalog next_catalog = BiblioCatalog();
  {
    OemDatabase grown = MustParseDb(R"(
      database s1 {
        <a1 publication {
          <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
        }>
        <a2 publication {
          <t2 title "Constraints"> <v2 venue "VLDB"> <y2 year "1997">
        }>
        <a3 publication {
          <t3 title "Mediators"> <v3 venue "SIGMOD"> <y3 year "1993">
        }>
        <a4 publication {
          <t4 title "Rewriting"> <v4 venue "SIGMOD"> <y4 year "1997">
        }>
      })");
    next_catalog.Put(grown);
  }
  QueryServer reference(MakeBiblioMediator(), std::move(next_catalog));
  auto new_answer = reference.Answer(query);
  ASSERT_TRUE(new_answer.ok()) << new_answer.status();
  const std::string new_rendering = new_answer->answer.result.ToString();
  ASSERT_NE(old_rendering, new_rendering);

  std::atomic<bool> stop{false};
  std::atomic<int> bad_renderings{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto response = server.Answer(query);
        if (!response.ok()) {
          ADD_FAILURE() << response.status();
          bad_renderings.fetch_add(1);
          return;
        }
        const std::string got = response->answer.result.ToString();
        if (got != old_rendering && got != new_rendering) {
          bad_renderings.fetch_add(1);
        }
      }
    });
  }
  for (int swap = 0; swap < 20; ++swap) {
    server.UpdateCatalog(MustParseDb(R"(
      database s1 {
        <a1 publication {
          <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
        }>
        <a2 publication {
          <t2 title "Constraints"> <v2 venue "VLDB"> <y2 year "1997">
        }>
        <a3 publication {
          <t3 title "Mediators"> <v3 venue "SIGMOD"> <y3 year "1993">
        }>
        <a4 publication {
          <t4 title "Rewriting"> <v4 venue "SIGMOD"> <y4 year "1997">
        }>
      })"));
    server.UpdateCatalog(*BiblioCatalog().Find("s1").ValueOrDie());
  }
  server.UpdateCatalog(*BiblioCatalog().Find("s1").ValueOrDie());
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(bad_renderings.load(), 0);
  EXPECT_EQ(server.stats().catalog_swaps, 41u);
}

// --- compiled catalog index on the serving path -----------------------------

std::vector<SourceDescription> BiblioSources() {
  Capability y97;
  y97.view = MustParse(
      "<y97(P') pub {<X' Y' Z'>}> :- "
      "<P' publication {<U' year \"1997\">}>@s1 AND "
      "<P' publication {<X' Y' Z'>}>@s1",
      "Y97");
  Capability dump;
  dump.view = MustParse(
      "<dump(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@s2",
      "Dump2");
  return {SourceDescription{"s1", {y97}}, SourceDescription{"s2", {dump}}};
}

std::shared_ptr<const CompiledCatalog> BiblioIndex() {
  auto index = CompileCatalog(BiblioSources(), nullptr);
  EXPECT_TRUE(index.ok()) << index.status();
  return std::move(index).ValueOrDie();
}

TEST(QueryServerTest, AttachedIndexKeepsAnswersAndThePlanCache) {
  QueryServer server(MakeBiblioMediator(), BiblioCatalog());
  TslQuery query = Sigmod97Query();
  auto before = server.Answer(query);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_FALSE(server.has_catalog_index());

  auto index = BiblioIndex();
  ASSERT_TRUE(server.AttachCatalogIndex(index).ok());
  EXPECT_TRUE(server.has_catalog_index());
  EXPECT_EQ(server.catalog_index_fingerprint(),
            index->catalog_fingerprint());

  auto after = server.Answer(query);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_TRUE(after->answer.result.Equals(before->answer.result));
  // Indexed plan lists are byte-identical, so the attach kept the cache.
  EXPECT_TRUE(after->plan_cache_hit);

  ASSERT_TRUE(server.AttachCatalogIndex(nullptr).ok());
  EXPECT_FALSE(server.has_catalog_index());
  EXPECT_EQ(server.catalog_index_fingerprint(), 0u);
}

TEST(QueryServerTest, StaleIndexIsRejectedAtAttach) {
  QueryServer server(MakeBiblioMediator(), BiblioCatalog());
  // An index compiled for a different view set must not be ingested.
  auto stale_sources = BiblioSources();
  stale_sources.pop_back();
  auto stale = CompileCatalog(stale_sources, nullptr);
  ASSERT_TRUE(stale.ok()) << stale.status();
  EXPECT_FALSE(server.AttachCatalogIndex(*stale).ok());
  EXPECT_FALSE(server.has_catalog_index());
}

TEST(QueryServerTest, IndexCarriesAcrossMatchingSwapsAndDropsOnStale) {
  MetricRegistry metrics;
  ServerOptions options;
  options.metrics = &metrics;
  QueryServer server(MakeBiblioMediator(), BiblioCatalog(), options);
  auto index = BiblioIndex();
  ASSERT_TRUE(server.AttachCatalogIndex(index).ok());
  EXPECT_EQ(metrics.GetCounter("catalog.index_attached")->value(), 1u);

  // Same capability set: the stale-index guard re-validates and carries
  // the index into the new snapshot.
  server.ReplaceMediator(MakeBiblioMediator());
  EXPECT_TRUE(server.has_catalog_index());
  EXPECT_EQ(server.catalog_index_fingerprint(),
            index->catalog_fingerprint());
  EXPECT_EQ(metrics.GetCounter("catalog.index_carried")->value(), 1u);

  // Shrunken capability set: validation fails, the index is dropped, and
  // the server scans — serving a stale index would be unsound.
  auto small_sources = BiblioSources();
  small_sources.pop_back();
  auto small = Mediator::Make(small_sources, nullptr);
  ASSERT_TRUE(small.ok()) << small.status();
  server.ReplaceMediator(std::move(small).ValueOrDie());
  EXPECT_FALSE(server.has_catalog_index());
  EXPECT_EQ(metrics.GetCounter("catalog.index_dropped_stale")->value(), 1u);
}

TEST(QueryServerTest, RequestsUnderConcurrentIndexSwapsAreIdentical) {
  // Readers hammer the server while a writer attaches/detaches the index
  // and replaces the mediator; indexed and scanned plans are byte-identical
  // so every response must render exactly the same answer.
  QueryServer server(MakeBiblioMediator(), BiblioCatalog(),
                     SmallServer(4, 256));
  TslQuery query = Sigmod97Query();
  auto expected = server.Answer(query);
  ASSERT_TRUE(expected.ok()) << expected.status();
  const std::string expected_rendering =
      expected->answer.result.ToString();
  auto index = BiblioIndex();

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto response = server.Answer(query);
        if (!response.ok()) {
          ADD_FAILURE() << response.status();
          bad.fetch_add(1);
          return;
        }
        if (response->answer.result.ToString() != expected_rendering) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (int swap = 0; swap < 20; ++swap) {
    ASSERT_TRUE(server.AttachCatalogIndex(index).ok());
    server.ReplaceMediator(MakeBiblioMediator());  // index carries over
    ASSERT_TRUE(server.AttachCatalogIndex(nullptr).ok());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_FALSE(server.has_catalog_index());
}

}  // namespace
}  // namespace tslrw
