#include "equiv/equivalence.h"

#include <gtest/gtest.h>

#include "equiv/component.h"
#include "fixtures.h"
#include "tsl/normal_form.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;

// --- Example 4.1: decomposition of (Q14) -----------------------------------

TEST(ComponentTest, Example41DecomposesIntoSixRules) {
  TslQuery q14 = MustParse(testing::kQ14, "Q14");
  auto parts = DecomposeQuery(q14);
  ASSERT_TRUE(parts.ok()) << parts.status();
  // 1 top + 2 member + 3 object rules.
  ASSERT_EQ(parts->size(), 6u);
  int tops = 0, members = 0, objects = 0;
  for (const ComponentQuery& c : *parts) {
    switch (c.kind) {
      case ComponentKind::kTop: ++tops; break;
      case ComponentKind::kMember: ++members; break;
      case ComponentKind::kObject: ++objects; break;
    }
  }
  EXPECT_EQ(tops, 1);
  EXPECT_EQ(members, 2);
  EXPECT_EQ(objects, 3);
  // top(l(X)) heads the decomposition.
  EXPECT_EQ((*parts)[0].kind, ComponentKind::kTop);
  EXPECT_EQ((*parts)[0].head_terms[0].ToString(), "l(X)");
  // Every component carries the full body.
  for (const ComponentQuery& c : *parts) {
    EXPECT_EQ(c.body.size(), 1u);
  }
}

TEST(ComponentTest, MemberRulesRecordEdges) {
  TslQuery q14 = MustParse(testing::kQ14, "Q14");
  auto parts = DecomposeQuery(q14);
  ASSERT_TRUE(parts.ok());
  std::vector<std::pair<std::string, std::string>> edges;
  for (const ComponentQuery& c : *parts) {
    if (c.kind == ComponentKind::kMember) {
      edges.emplace_back(c.head_terms[0].ToString(),
                         c.head_terms[1].ToString());
    }
  }
  EXPECT_EQ(edges, (std::vector<std::pair<std::string, std::string>>{
                       {"l(X)", "f(Y)"}, {"f(Y)", "n(Z)"}}));
}

TEST(ComponentTest, ObjectRulesEmptySetValues) {
  // Set-valued head objects decompose into `{}` object rules; the member
  // rules carry the structure. Atomic/copied values stay as terms.
  TslQuery q14 = MustParse(testing::kQ14, "Q14");
  auto parts = DecomposeQuery(q14);
  ASSERT_TRUE(parts.ok());
  int empty_sets = 0, term_values = 0;
  for (const ComponentQuery& c : *parts) {
    if (c.kind != ComponentKind::kObject) continue;
    if (c.value.is_set()) {
      EXPECT_TRUE(c.value.set().empty());
      ++empty_sets;
    } else {
      ++term_values;
    }
  }
  EXPECT_EQ(empty_sets, 2);   // l(X) and f(Y)
  EXPECT_EQ(term_values, 1);  // <n(Z) n V>
}

// --- Theorem 4.2 / 4.3 ------------------------------------------------------

TEST(EquivalenceTest, AlphaRenamingIsEquivalent) {
  TslQuery a = MustParse("<f(P) out Z> :- <P p {<X l Z>}>@db");
  TslQuery b = MustParse("<f(Q) out W> :- <Q p {<Y l W>}>@db");
  auto eq = AreEquivalent(a, b);
  ASSERT_TRUE(eq.ok()) << eq.status();
  EXPECT_TRUE(*eq);
}

TEST(EquivalenceTest, DifferentSkolemFunctorsDiffer) {
  // \S3 equivalence is identity of answer graphs — oids included.
  TslQuery a = MustParse("<f(P) out Z> :- <P p {<X l Z>}>@db");
  TslQuery b = MustParse("<g(P) out Z> :- <P p {<X l Z>}>@db");
  auto eq = AreEquivalent(a, b);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);
}

TEST(EquivalenceTest, DifferentLabelsDiffer) {
  TslQuery a = MustParse("<f(P) out Z> :- <P p {<X l Z>}>@db");
  TslQuery b = MustParse("<f(P) other Z> :- <P p {<X l Z>}>@db");
  auto eq = AreEquivalent(a, b);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);
}

TEST(EquivalenceTest, RedundantConditionIsEquivalent) {
  // The second condition is subsumed by the first (classic CQ redundancy).
  TslQuery a = MustParse("<f(P) out yes> :- <P p {<X l leland>}>@db");
  TslQuery b = MustParse(
      "<f(P) out yes> :- <P p {<X l leland>}>@db AND <P p {<Y l W>}>@db");
  auto eq = AreEquivalent(a, b);
  ASSERT_TRUE(eq.ok()) << eq.status();
  EXPECT_TRUE(*eq);
}

TEST(EquivalenceTest, StricterConditionIsNotEquivalent) {
  TslQuery a = MustParse("<f(P) out yes> :- <P p {<X l Z>}>@db");
  TslQuery b = MustParse("<f(P) out yes> :- <P p {<X l leland>}>@db");
  auto eq = AreEquivalent(a, b);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);
  auto contained = IsContainedIn(TslRuleSet::Single(b), TslRuleSet::Single(a));
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(*contained);
  auto reverse = IsContainedIn(TslRuleSet::Single(a), TslRuleSet::Single(b));
  ASSERT_TRUE(reverse.ok());
  EXPECT_FALSE(*reverse);
}

TEST(EquivalenceTest, Q10EquivalentToQ11ViaChase) {
  // Theorem 4.3 together with the \S3.2 chase (Example 3.4).
  auto eq = AreEquivalent(MustParse(testing::kQ10, "A"),
                          MustParse(testing::kQ11, "B"));
  ASSERT_TRUE(eq.ok()) << eq.status();
  EXPECT_TRUE(*eq);
}

TEST(EquivalenceTest, Q1EquivalentToQ2) {
  auto eq = AreEquivalent(MustParse(testing::kQ1, "A"),
                          MustParse(testing::kQ2, "B"));
  ASSERT_TRUE(eq.ok()) << eq.status();
  EXPECT_TRUE(*eq);
}

TEST(EquivalenceTest, HeadStructureMatters) {
  // Same body; one head nests the copied object, the other flattens it.
  TslQuery a = MustParse("<f(P) out {<f(X) m Z>}> :- <P p {<X l Z>}>@db");
  TslQuery b = MustParse("<f(P) out {}> :- <P p {<X l Z>}>@db");
  auto eq = AreEquivalent(a, b);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);
}

TEST(EquivalenceTest, CopyDirectiveVersusConstructedMembersDiffer) {
  // <X Y Z> copies source objects; <f(X) Y Z> constructs fresh ones.
  TslQuery a = MustParse("<g(P) out {<X Y Z>}> :- <P p {<X Y Z>}>@db");
  TslQuery b = MustParse("<g(P) out {<f(X) Y Z>}> :- <P p {<X Y Z>}>@db");
  auto eq = AreEquivalent(a, b);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);
}

TEST(EquivalenceTest, UnionCoversSplitRules) {
  // One rule per gender versus a single label-variable rule: the union is
  // contained in the general rule but not equivalent (other genders).
  TslRuleSet split;
  split.rules.push_back(MustParse(
      "<f(P) rec {<f(G) gender female>}> :- "
      "<P p {<G gender female>}>@db", "A"));
  split.rules.push_back(MustParse(
      "<f(P) rec {<f(G) gender male>}> :- <P p {<G gender male>}>@db", "B"));
  TslRuleSet general = TslRuleSet::Single(MustParse(
      "<f(P) rec {<f(G) gender W>}> :- <P p {<G gender W>}>@db", "C"));
  auto contained = IsContainedIn(split, general);
  ASSERT_TRUE(contained.ok()) << contained.status();
  EXPECT_TRUE(*contained);
  auto eq = AreEquivalent(split, general);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);
}

TEST(EquivalenceTest, UnsatisfiableRuleContributesNothing) {
  TslRuleSet with_unsat;
  with_unsat.rules.push_back(
      MustParse("<f(P) out Z> :- <P p {<X l Z>}>@db", "A"));
  with_unsat.rules.push_back(MustParse(
      "<f(P) out Z> :- <P p {<X l Z>}>@db AND <Q q {<X m u>}>@db", "B"));
  TslRuleSet clean = TslRuleSet::Single(
      MustParse("<f(P) out Z> :- <P p {<X l Z>}>@db", "C"));
  auto eq = AreEquivalent(with_unsat, clean);
  ASSERT_TRUE(eq.ok()) << eq.status();
  EXPECT_TRUE(*eq);
}

TEST(ComponentTest, MapsOntoRequiresMatchingKindHeadAndValue) {
  auto parts_of = [](std::string_view text) {
    auto parts = DecomposeQuery(MustParse(text, "Q"));
    EXPECT_TRUE(parts.ok());
    return std::move(parts).ValueOrDie();
  };
  auto a = parts_of("<f(P) out Z> :- <P p {<X l Z>}>@db");
  auto b = parts_of("<f(Q) out W> :- <Q p {<Y l W>}>@db");
  // top maps onto top, never onto an object rule.
  EXPECT_TRUE(ComponentMapsOnto(a[0], b[0]));
  EXPECT_FALSE(ComponentMapsOnto(a[0], b[1]));
  // The object rule's value term must map (Z -> W works; constant doesn't).
  auto c = parts_of("<f(Q) out fixed> :- <Q p {<Y l W>}>@db");
  EXPECT_TRUE(ComponentMapsOnto(a[1], b[1]));
  EXPECT_FALSE(ComponentMapsOnto(c[1], a[1]));  // fixed cannot map onto Z
  // Z -> fixed in the head conflicts with Z -> W in the body (c's body
  // does not pin the value), so no mapping — c is NOT contained in a.
  EXPECT_FALSE(ComponentMapsOnto(a[1], c[1]));
  // Against a body that does pin the value, the head binding is
  // consistent and the mapping exists.
  auto e = parts_of("<f(Q) out fixed> :- <Q p {<Y l fixed>}>@db");
  EXPECT_TRUE(ComponentMapsOnto(a[1], e[1]));
  // A `{}`-valued object rule never maps onto a term-valued one.
  auto d = parts_of("<f(Q) out {}> :- <Q p {<Y l W>}>@db");
  EXPECT_FALSE(ComponentMapsOnto(d[1], a[1]));
  EXPECT_FALSE(ComponentMapsOnto(a[1], d[1]));
}

TEST(ComponentTest, HeadSeedConstrainsBodyMapping) {
  // Heads force P' -> P; the body condition of `a` (constant leland) then
  // cannot map into b's wildcard body.
  auto a = DecomposeQuery(
      MustParse("<f(P) out yes> :- <P p {<X l leland>}>@db", "A"));
  auto b = DecomposeQuery(
      MustParse("<f(P) out yes> :- <P p {<X l Z>}>@db", "B"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(ComponentMapsOnto((*a)[0], (*b)[0]));  // leland vs Z
  EXPECT_TRUE(ComponentMapsOnto((*b)[0], (*a)[0]));   // Z -> leland
}

TEST(ComponentTest, ToStringRendersDatalogStyle) {
  auto parts = DecomposeQuery(MustParse(testing::kQ14, "Q14"));
  ASSERT_TRUE(parts.ok());
  EXPECT_NE((*parts)[0].ToString().find("top(l(X)) :- "), std::string::npos);
  EXPECT_NE((*parts)[1].ToString().find("<l(X) l {}> :- "),
            std::string::npos);
  EXPECT_NE((*parts)[2].ToString().find("member(l(X),f(Y)) :- "),
            std::string::npos);
}

TEST(EquivalenceTest, TesterMatchesOneShotApi) {
  TslQuery q = MustParse(testing::kQ3, "Q3");
  auto tester = EquivalenceTester::Make(TslRuleSet::Single(q));
  ASSERT_TRUE(tester.ok()) << tester.status();
  for (std::string_view text : {testing::kQ3, testing::kQ5, testing::kQ7}) {
    TslRuleSet other = TslRuleSet::Single(MustParse(text, "O"));
    auto one_shot = AreEquivalent(TslRuleSet::Single(q), other);
    auto amortized = tester->EquivalentTo(other);
    ASSERT_TRUE(one_shot.ok() && amortized.ok());
    EXPECT_EQ(*one_shot, *amortized) << text;
    auto contained = IsContainedIn(other, TslRuleSet::Single(q));
    auto amortized_containment = tester->ContainedInReference(other);
    ASSERT_TRUE(contained.ok() && amortized_containment.ok());
    EXPECT_EQ(*contained, *amortized_containment) << text;
  }
}

TEST(EquivalenceTest, EquivalenceIsReflexiveOnPaperQueries) {
  for (std::string_view text :
       {testing::kQ1, testing::kQ3, testing::kQ5, testing::kQ7,
        testing::kQ9, testing::kQ10, testing::kQ14}) {
    TslQuery q = MustParse(text, "Q");
    auto eq = AreEquivalent(q, q);
    ASSERT_TRUE(eq.ok()) << eq.status();
    EXPECT_TRUE(*eq) << "not self-equivalent: " << text;
  }
}

}  // namespace
}  // namespace tslrw
