#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "oem/bisim.h"
#include "oem/generator.h"
#include "tsl/normal_form.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

Term Atom(const char* s) { return Term::MakeAtom(s); }

SourceCatalog PersonCatalog() {
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database db {
      <p1 person {
        <g1 gender female>
        <n1 name ashish>
        <ph1 phone "555-1234">
      }>
      <p2 person {
        <g2 gender male>
        <n2 name rahul>
      }>
    })"));
  return catalog;
}

TEST(EvalTest, Q1SemanticsFromSection2) {
  SourceCatalog catalog = PersonCatalog();
  auto answer = Evaluate(MustParse(testing::kQ1, "Q1"), catalog);
  ASSERT_TRUE(answer.ok()) << answer.status();
  // Only p1 is female. The answer root is f(p1), labeled female, with one
  // f(x) subobject per (x,y,z) subobject of p1 — fused into one object.
  Term fp1 = Term::MakeFunc("f", {Atom("p1")});
  EXPECT_EQ(answer->roots(), std::set<Oid>{fp1});
  const OemObject* root = answer->Find(fp1);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->label, "female");
  ASSERT_TRUE(root->value.is_set());
  EXPECT_EQ(root->value.children().size(), 3u);
  const OemObject* copied_name =
      answer->Find(Term::MakeFunc("f", {Atom("n1")}));
  ASSERT_NE(copied_name, nullptr);
  EXPECT_EQ(copied_name->label, "name");
  EXPECT_EQ(copied_name->value.atom(), "ashish");
}

TEST(EvalTest, NormalFormPreservesSemantics) {
  SourceCatalog catalog = PersonCatalog();
  TslQuery q1 = MustParse(testing::kQ1, "Q");
  TslQuery q2 = ToNormalForm(q1);
  auto a1 = Evaluate(q1, catalog);
  auto a2 = Evaluate(q2, catalog);
  ASSERT_TRUE(a1.ok() && a2.ok());
  EXPECT_TRUE(a1->Equals(*a2));
}

TEST(EvalTest, EmptyResultWhenNothingMatches) {
  SourceCatalog catalog = PersonCatalog();
  auto answer =
      Evaluate(MustParse("<f(P) r yes> :- <P person {<G gender other>}>@db"),
               catalog);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->roots().empty());
  EXPECT_EQ(answer->size(), 0u);
}

TEST(EvalTest, ConstantsFilterAtomicValues) {
  SourceCatalog catalog = PersonCatalog();
  auto answer = Evaluate(
      MustParse("<f(P) match yes> :- <P person {<N name rahul>}>@db"),
      catalog);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->roots(), std::set<Oid>{Term::MakeFunc("f", {Atom("p2")})});
}

TEST(EvalTest, LabelVariablesBindToLabels) {
  SourceCatalog catalog = PersonCatalog();
  // Project the label of every subobject of p1 as an atomic value.
  auto answer = Evaluate(
      MustParse("<f(P,Y) lab Y> :- <P person {<X Y Z>}>@db"), catalog);
  ASSERT_TRUE(answer.ok());
  // p1 has 3 subobject labels, p2 has 2; one answer object each.
  EXPECT_EQ(answer->roots().size(), 5u);
  const OemObject* o =
      answer->Find(Term::MakeFunc("f", {Atom("p1"), Atom("gender")}));
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->value.atom(), "gender");
}

TEST(EvalTest, FusionMergesSameSkolemOid) {
  SourceCatalog catalog = PersonCatalog();
  // One f(P) object per person, fusing each (X,Y,Z) into its child set.
  auto answer = Evaluate(
      MustParse("<f(P) rec {<f(X) Y Z>}> :- <P person {<X Y Z>}>@db"),
      catalog);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->roots().size(), 2u);
  const OemObject* r1 = answer->Find(Term::MakeFunc("f", {Atom("p1")}));
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->value.children().size(), 3u);
}

TEST(EvalTest, FusionConflictOnContradictoryAtomics) {
  SourceCatalog catalog = PersonCatalog();
  // f() (one shared oid) would need two different atomic values.
  auto answer =
      Evaluate(MustParse("<f() v Z> :- <P person {<G gender Z>}>@db"),
               catalog);
  EXPECT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kFusionConflict);
}

TEST(EvalTest, SetValueBindingCopiesSubgraph) {
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database db {
      <p1 person {
        <n1 name { <l1 last smith> <f1 first jo> }>
      }>
    })"));
  // V binds to the set value of n1; the answer object adopts n1's children
  // and the subgraph is copied.
  auto answer = Evaluate(
      MustParse("<f(X) copy V> :- <P person {<X name V>}>@db"), catalog);
  ASSERT_TRUE(answer.ok()) << answer.status();
  Term fx = Term::MakeFunc("f", {Atom("n1")});
  const OemObject* root = answer->Find(fx);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->value.children().size(), 2u);
  const OemObject* l1 = answer->Find(Atom("l1"));
  ASSERT_NE(l1, nullptr);
  EXPECT_EQ(l1->value.atom(), "smith");
}

TEST(EvalTest, SetValueBindingWithCyclicSubgraph) {
  // "the query result can actually be a graph: a constructed tree with
  //  (perhaps cyclic) subgraphs potentially hanging off some branches".
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database db {
      <p1 person {
        <k1 knows { <p2 person { <k2 knows { @p1 } > }> }>
      }>
    })"));
  auto answer = Evaluate(
      MustParse("<f(X) copy V> :- <P person {<X knows V>}>@db"), catalog);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->Validate().ok());
  // The cycle p1 -> k1 -> p2 -> k2 -> p1 is present in the copied portion.
  EXPECT_NE(answer->Find(Atom("p1")), nullptr);
  EXPECT_NE(answer->Find(Atom("k2")), nullptr);
}

TEST(EvalTest, Q10AndQ11AreEquivalentOnData) {
  // Example 3.4's pair: (Q11) uses a set variable, (Q10) the chased form.
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database db {
      <s1 p {
        <u1 university stanford>
        <d1 dept { <dn1 deptname cs> }>
      }>
      <s2 p { <u2 university berkeley> }>
    })"));
  auto a10 = Evaluate(MustParse(testing::kQ10, "Q"), catalog);
  auto a11 = Evaluate(MustParse(testing::kQ11, "Q"), catalog);
  ASSERT_TRUE(a10.ok()) << a10.status();
  ASSERT_TRUE(a11.ok()) << a11.status();
  EXPECT_TRUE(a10->Equals(*a11))
      << "Q10:\n" << a10->ToString() << "Q11:\n" << a11->ToString();
}

TEST(EvalTest, MultipleSources) {
  SourceCatalog catalog;
  catalog.Put(MustParseDb("database db1 { <a x u> }"));
  catalog.Put(MustParseDb("database db2 { <b y v> }"));
  auto answer = Evaluate(
      MustParse("<f(A,B) pair yes> :- <A x U>@db1 AND <B y V>@db2"), catalog);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->roots().size(), 1u);
}

TEST(EvalTest, MissingSourceFails) {
  SourceCatalog catalog = PersonCatalog();
  auto answer = Evaluate(MustParse("<f(P) r yes> :- <P a V>@nope"), catalog);
  EXPECT_FALSE(answer.ok());
  EXPECT_TRUE(answer.status().IsNotFound());
}

TEST(EvalTest, DefaultSourceUsedWhenUnannotated) {
  SourceCatalog catalog = PersonCatalog();
  EvalOptions options;
  options.default_source = "db";
  auto answer = Evaluate(
      MustParse("<f(P) found yes> :- <P person {<G gender female>}>"),
      catalog, options);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->roots().size(), 1u);
}

TEST(EvalTest, JoinAcrossConditions) {
  SourceCatalog catalog = PersonCatalog();
  // Join on P: gender female AND a phone subobject.
  auto answer = Evaluate(MustParse(
      "<f(P) both yes> :- <P person {<G gender female>}>@db AND "
      "<P person {<H phone W>}>@db"), catalog);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->roots().size(), 1u);
  // Nobody is male with a phone.
  auto none = Evaluate(MustParse(
      "<f(P) both yes> :- <P person {<G gender male>}>@db AND "
      "<P person {<H phone W>}>@db"), catalog);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->roots().empty());
}

TEST(EvalTest, SetPatternMembersMayShareAWitness) {
  SourceCatalog catalog = PersonCatalog();
  // Both members can match the same gender subobject of p1.
  auto answer = Evaluate(MustParse(
      "<f(P) ok yes> :- <P person {<G gender female> <X Y female>}>@db"),
      catalog);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->roots().size(), 1u);
}

TEST(EvalTest, MatchingOverMaterializedViewWithSkolemOids) {
  // Materialize (V1) and run a query against its g(...)/pp(...)/h(...)
  // answer objects; the body oid patterns are function terms. (V1) ranges
  // over objects labeled `p`, the paper's abbreviation.
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database db {
      <p1 p { <n1 name ashish> <g1 gender female> }>
      <p2 p { <n2 name rahul> }>
    })"));
  auto view = MaterializeView(MustParse(testing::kV1, "V1"), catalog);
  ASSERT_TRUE(view.ok()) << view.status();
  catalog.Put(std::move(*view));
  auto answer = Evaluate(
      MustParse("<r(P) person-with-values yes> :- "
                "<g(P) p {<h(X) v ashish>}>@V1"),
      catalog);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->roots(),
            std::set<Oid>{Term::MakeFunc("r", {Atom("p1")})});
}

TEST(EvalTest, EmptySetPatternMatchesAnySetObject) {
  SourceCatalog catalog = PersonCatalog();
  auto answer =
      Evaluate(MustParse("<f(P) isset yes> :- <P person {}>@db"), catalog);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->roots().size(), 2u);
  // Atomic objects do not match {}.
  auto none =
      Evaluate(MustParse("<f(G) isset yes> :- <P person {<G gender {}>}>@db"),
               catalog);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->roots().empty());
}

TEST(EvalTest, RuleSetUnionFusesAcrossRules) {
  SourceCatalog catalog = PersonCatalog();
  TslRuleSet rules;
  rules.rules.push_back(
      MustParse("<f(P) rec {<f(G) has-gender Z>}> :- "
                "<P person {<G gender Z>}>@db", "R"));
  rules.rules.push_back(
      MustParse("<f(P) rec {<f(N) has-name Z>}> :- "
                "<P person {<N name Z>}>@db", "R"));
  auto answer = EvaluateRuleSet(rules, catalog);
  ASSERT_TRUE(answer.ok()) << answer.status();
  const OemObject* r1 = answer->Find(Term::MakeFunc("f", {Atom("p1")}));
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->value.children().size(), 2u);  // gender + name contributions
}

TEST(EvalTest, AnswersAreDeterministic) {
  GeneratorOptions opt;
  opt.seed = 11;
  opt.num_roots = 8;
  opt.max_depth = 3;
  opt.num_labels = 3;
  SourceCatalog catalog;
  OemDatabase db = GenerateOemDatabase("db", opt);
  catalog.Put(db);
  TslQuery q = MustParse("<f(X,Y) out Z> :- <R l0 {<X Y Z>}>@db");
  auto a1 = Evaluate(q, catalog);
  auto a2 = Evaluate(q, catalog);
  ASSERT_TRUE(a1.ok() && a2.ok());
  EXPECT_TRUE(a1->Equals(*a2));
  EXPECT_EQ(a1->ToString(), a2->ToString());
}

}  // namespace
}  // namespace tslrw
