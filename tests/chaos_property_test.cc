// Randomized property sweep for the chaos-drill harness, extending the
// PR 2 fault-tolerance properties from static fault schedules to full
// multi-phase chaos scripts: across many seeds — each seed drawing its
// own flap/storm targets, fault magnitudes, and request seeds — every
// drilled answer stays sound (roots ⊆ the fault-free baseline, §7),
// every drill recovers, and the drill report is a pure function of the
// seed: byte-identical on replay and independent of the verification
// parallelism used inside plan searches (1 vs 8 workers).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mediator/capability.h"
#include "oem/parser.h"
#include "testing/chaos.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

constexpr uint64_t kSeeds = 25;

TslQuery Parse(const std::string& text, std::string name) {
  auto query = ParseTslQuery(text, std::move(name));
  EXPECT_TRUE(query.ok()) << query.status();
  return *std::move(query);
}

std::vector<SourceDescription> DrillSources() {
  Capability a;
  a.view = Parse(
      "<m(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@lib",
      "MirrorA");
  Capability b;
  b.view = Parse(
      "<m(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@lib",
      "MirrorB");
  Capability dump;
  dump.view = Parse(
      "<dump(P') pub {<X' Y' Z'>}> :- <P' publication {<X' Y' Z'>}>@s2",
      "Dump2");
  return {SourceDescription{"lib", {a}}, SourceDescription{"lib", {b}},
          SourceDescription{"s2", {dump}}};
}

SourceCatalog DrillCatalog() {
  SourceCatalog catalog;
  auto lib = ParseOemDatabase(R"(
    database lib {
      <a1 publication {
        <t1 title "Views"> <v1 venue "SIGMOD"> <y1 year "1997">
      }>
      <a2 publication {
        <t2 title "Wrappers"> <v2 venue "VLDB"> <y2 year "1996">
      }>
      <a3 publication {
        <t3 title "Mediators"> <v3 venue "SIGMOD"> <y3 year "1993">
      }>
    })");
  EXPECT_TRUE(lib.ok()) << lib.status();
  catalog.Put(*lib);
  auto s2 = ParseOemDatabase(R"(
    database s2 {
      <b1 publication {
        <u1 title "Warehouses"> <w1 venue "SIGMOD"> <x1 year "1996">
      }>
    })");
  EXPECT_TRUE(s2.ok()) << s2.status();
  catalog.Put(*s2);
  return catalog;
}

std::vector<TslQuery> DrillQueries() {
  return {
      Parse("<f(P) sigmod yes> :- <P publication {<V venue \"SIGMOD\">}>@lib",
            "Sigmod"),
      Parse("<f(P) year97 yes> :- <P publication {<Y year \"1997\">}>@lib",
            "Year97"),
      Parse("<f(P) all2 yes> :- <P publication {<X Y Z>}>@s2", "All2"),
  };
}

/// The one legitimate parallelism fingerprint in a trace is the
/// `workers=N` annotation on rewrite.search spans (it reports the knob
/// itself). Mask it so the comparison checks everything else — timings,
/// outcomes, candidate counts — is parallelism-invariant.
std::string MaskWorkerCounts(std::string trace) {
  size_t at = 0;
  while ((at = trace.find("workers=", at)) != std::string::npos) {
    const size_t begin = at + 8;
    size_t end = begin;
    while (end < trace.size() && trace[end] != ' ' && trace[end] != '\n') {
      ++end;
    }
    // erase + insert rather than replace: GCC 12's -Wrestrict sees a
    // false-positive overlap in the inlined replace-with-literal path.
    trace.erase(begin, end - begin);
    trace.insert(begin, 1, '*');
    at = begin;
  }
  return trace;
}

ChaosOptions DrillOptions(uint64_t seed, size_t rewrite_parallelism) {
  ChaosOptions options;
  options.seed = seed;
  options.requests_per_phase = 4;
  options.server.threads = 2;
  options.server.queue_capacity = 8;
  options.server.rewrite_parallelism = rewrite_parallelism;
  return options;
}

/// Every seed: sound + recovered at parallelism 1, and the drill report —
/// tallies, breaker states, recovery line — is byte-identical at
/// parallelism 8 (plan searches verify candidates in parallel but plans,
/// and therefore execution, are byte-identical; docs/DETERMINISM.md).
TEST(ChaosPropertyTest, DrillsAreSoundRecoveredAndParallelismInvariant) {
  const std::vector<SourceDescription> sources = DrillSources();
  const SourceCatalog catalog = DrillCatalog();
  const std::vector<TslQuery> queries = DrillQueries();

  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const ChaosOptions sequential = DrillOptions(seed, 1);
    const std::vector<ChaosPhase> script =
        StandardChaosScript(sources, sequential);

    auto drill = RunChaosDrill(sources, catalog, queries, script, sequential);
    ASSERT_TRUE(drill.ok()) << "seed " << seed << ": " << drill.status();
    for (const std::string& violation : drill->violations) {
      ADD_FAILURE() << "seed " << seed << ": " << violation;
    }
    EXPECT_TRUE(drill->sound) << "seed " << seed;
    EXPECT_TRUE(drill->recovered) << "seed " << seed;

    const ChaosOptions parallel = DrillOptions(seed, 8);
    auto wide = RunChaosDrill(sources, catalog, queries,
                              StandardChaosScript(sources, parallel),
                              parallel);
    ASSERT_TRUE(wide.ok()) << "seed " << seed << ": " << wide.status();
    EXPECT_TRUE(wide->sound) << "seed " << seed;
    EXPECT_TRUE(wide->recovered) << "seed " << seed;
    EXPECT_EQ(drill->report, wide->report)
        << "seed " << seed
        << ": drill report depends on rewrite parallelism";
    EXPECT_EQ(MaskWorkerCounts(drill->traces),
              MaskWorkerCounts(wide->traces))
        << "seed " << seed
        << ": drill traces depend on rewrite parallelism";
  }
}

}  // namespace
}  // namespace tslrw
