#include "oem/term.h"

#include <gtest/gtest.h>

#include <set>

namespace tslrw {
namespace {

Term Atom(const char* s) { return Term::MakeAtom(s); }
Term OidVar(const char* s) { return Term::MakeVar(s, VarKind::kObjectId); }
Term ValVar(const char* s) { return Term::MakeVar(s, VarKind::kLabelValue); }

TEST(TermTest, AtomBasics) {
  Term a = Atom("person");
  EXPECT_TRUE(a.is_atom());
  EXPECT_EQ(a.atom_name(), "person");
  EXPECT_TRUE(a.IsGround());
  EXPECT_EQ(a.ToString(), "person");
  EXPECT_EQ(a, Atom("person"));
  EXPECT_NE(a, Atom("publication"));
}

TEST(TermTest, VariableSortsDistinguishEquality) {
  Term p_oid = OidVar("P");
  Term p_val = ValVar("P");
  EXPECT_NE(p_oid, p_val);
  EXPECT_FALSE(p_oid.IsGround());
  EXPECT_EQ(p_oid.ToString(), "P");
}

TEST(TermTest, FunctionTermStructure) {
  Term f = Term::MakeFunc("f", {OidVar("P"), Atom("x")});
  EXPECT_TRUE(f.is_func());
  EXPECT_EQ(f.functor(), "f");
  ASSERT_EQ(f.args().size(), 2u);
  EXPECT_EQ(f.ToString(), "f(P,x)");
  EXPECT_FALSE(f.IsGround());
  EXPECT_TRUE(Term::MakeFunc("f", {Atom("p1")}).IsGround());
}

TEST(TermTest, EqualityIsStructural) {
  Term a = Term::MakeFunc("f", {OidVar("P"), OidVar("Q")});
  Term b = Term::MakeFunc("f", {OidVar("P"), OidVar("Q")});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, Term::MakeFunc("f", {OidVar("Q"), OidVar("P")}));
  EXPECT_NE(a, Term::MakeFunc("g", {OidVar("P"), OidVar("Q")}));
}

TEST(TermTest, OrderingIsTotalAndConsistent) {
  std::set<Term> terms{Atom("b"), Atom("a"), OidVar("X"),
                       Term::MakeFunc("f", {Atom("a")})};
  EXPECT_EQ(terms.size(), 4u);
  EXPECT_FALSE(Atom("a") < Atom("a"));
}

TEST(TermTest, CollectVariables) {
  Term t = Term::MakeFunc("f", {OidVar("P"), Term::MakeFunc("g", {ValVar("Y")}),
                                Atom("c")});
  std::set<Term> vars;
  t.CollectVariables(&vars);
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_TRUE(vars.count(OidVar("P")));
  EXPECT_TRUE(vars.count(ValVar("Y")));
}

TEST(SubstitutionTest, BindAndApply) {
  TermSubstitution s;
  EXPECT_TRUE(s.Bind(OidVar("P"), Atom("p1")));
  EXPECT_TRUE(s.Bind(ValVar("Y"), Atom("name")));
  // Rebinding to the same value is idempotent; to a new value, rejected.
  EXPECT_TRUE(s.Bind(OidVar("P"), Atom("p1")));
  EXPECT_FALSE(s.Bind(OidVar("P"), Atom("p2")));
  EXPECT_EQ(s.Apply(Term::MakeFunc("f", {OidVar("P"), ValVar("Y")})),
            Term::MakeFunc("f", {Atom("p1"), Atom("name")}));
  // Unbound variables pass through.
  EXPECT_EQ(s.Apply(OidVar("Q")), OidVar("Q"));
}

TEST(SubstitutionTest, SortsOfSameNameAreIndependent) {
  TermSubstitution s;
  EXPECT_TRUE(s.Bind(OidVar("X"), Atom("o1")));
  EXPECT_EQ(s.Apply(ValVar("X")), ValVar("X"));
}

TEST(UnifyTest, AtomWithAtom) {
  TermSubstitution s;
  EXPECT_TRUE(Unify(Atom("a"), Atom("a"), &s));
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(Unify(Atom("a"), Atom("b"), &s));
}

TEST(UnifyTest, VariableBinds) {
  TermSubstitution s;
  EXPECT_TRUE(Unify(OidVar("P"), Atom("p1"), &s));
  EXPECT_EQ(s.Apply(OidVar("P")), Atom("p1"));
}

TEST(UnifyTest, FunctionTermsUnifyComponentwise) {
  TermSubstitution s;
  Term lhs = Term::MakeFunc("f", {OidVar("P"), ValVar("Y")});
  Term rhs = Term::MakeFunc("f", {Atom("p1"), Atom("name")});
  EXPECT_TRUE(Unify(lhs, rhs, &s));
  EXPECT_EQ(s.Apply(lhs), rhs);
}

TEST(UnifyTest, FunctorMismatchFails) {
  TermSubstitution s;
  EXPECT_FALSE(Unify(Term::MakeFunc("f", {OidVar("P")}),
                     Term::MakeFunc("g", {OidVar("P")}), &s));
  EXPECT_FALSE(Unify(Term::MakeFunc("f", {OidVar("P")}),
                     Term::MakeFunc("f", {OidVar("P"), OidVar("Q")}), &s));
}

TEST(UnifyTest, OccursCheckRejectsCyclicBinding) {
  TermSubstitution s;
  EXPECT_FALSE(
      Unify(OidVar("P"), Term::MakeFunc("f", {OidVar("P")}), &s));
}

TEST(UnifyTest, SortDisciplineEnforced) {
  TermSubstitution s;
  // A label/value variable cannot unify with a function term (oids only).
  EXPECT_FALSE(Unify(ValVar("Y"), Term::MakeFunc("f", {Atom("a")}), &s));
  // An oid variable can.
  EXPECT_TRUE(Unify(OidVar("P"), Term::MakeFunc("f", {Atom("a")}), &s));
  // Variables of different sorts may alias each other (sorts are a
  // positional discipline, not a semantic type): see SortsCompatible.
  TermSubstitution s2;
  EXPECT_TRUE(Unify(OidVar("X"), ValVar("X'"), &s2));
}

TEST(UnifyTest, TransitiveChains) {
  // f(P, P) with f(p1, Q) forces Q = p1.
  TermSubstitution s;
  Term lhs = Term::MakeFunc("f", {OidVar("P"), OidVar("P")});
  Term rhs = Term::MakeFunc("f", {Atom("p1"), OidVar("Q")});
  EXPECT_TRUE(Unify(lhs, rhs, &s));
  EXPECT_EQ(s.Apply(OidVar("Q")), Atom("p1"));
}

TEST(UnifyTest, FailureLeavesSubstitutionUntouched) {
  TermSubstitution s;
  ASSERT_TRUE(s.Bind(OidVar("P"), Atom("p1")));
  Term lhs = Term::MakeFunc("f", {OidVar("P"), Atom("x")});
  Term rhs = Term::MakeFunc("f", {Atom("p2"), Atom("x")});
  EXPECT_FALSE(Unify(lhs, rhs, &s));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.Apply(OidVar("P")), Atom("p1"));
}

TEST(UnifyTest, RespectsExistingBindings) {
  TermSubstitution s;
  ASSERT_TRUE(s.Bind(OidVar("P"), Atom("p1")));
  EXPECT_TRUE(Unify(OidVar("P"), Atom("p1"), &s));
  EXPECT_FALSE(Unify(OidVar("P"), Atom("p2"), &s));
}

}  // namespace
}  // namespace tslrw
