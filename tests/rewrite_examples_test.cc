#include "rewrite/rewriter.h"

#include <gtest/gtest.h>

#include "constraints/dtd.h"
#include "equiv/equivalence.h"
#include "eval/evaluator.h"
#include "fixtures.h"
#include "rewrite/compose.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;
using testing::MustParseDb;

/// True iff some found rewriting is syntactically over the given source.
bool UsesSource(const TslQuery& q, const std::string& source) {
  for (const Condition& c : q.body) {
    if (c.source == source) return true;
  }
  return false;
}

/// Every rewriting the algorithm returns must be verified: composing it
/// with the views yields a query equivalent to the original (Theorem 5.5
/// soundness, checked independently here).
void ExpectAllSound(const RewriteResult& result, const TslQuery& query,
                    const std::vector<TslQuery>& views,
                    const ChaseOptions& chase = {}) {
  for (const TslQuery& rw : result.rewritings) {
    auto composed = ComposeWithViews(rw, views);
    ASSERT_TRUE(composed.ok()) << composed.status();
    auto eq = AreEquivalent(*composed, TslRuleSet::Single(query), chase);
    ASSERT_TRUE(eq.ok()) << eq.status();
    EXPECT_TRUE(*eq) << "unsound rewriting: " << rw.ToString();
  }
}

// --- Example 3.1: (Q3) rewritten over (V1) ----------------------------------

TEST(RewriteExamplesTest, Example31FindsQ4) {
  TslQuery q3 = MustParse(testing::kQ3, "Q3");
  TslQuery v1 = MustParse(testing::kV1, "V1");
  auto result = RewriteQuery(q3, {v1});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rewritings.size(), 1u);
  const TslQuery& found = result->rewritings[0];
  EXPECT_TRUE(UsesSource(found, "V1"));
  // The found rewriting matches the paper's (Q4): same head, and its body
  // is the (M2)-instantiated view head.
  TslQuery q4 = MustParse(testing::kQ4, "Q4");
  EXPECT_EQ(found.head, q4.head);
  auto same = AreEquivalent(
      ComposeWithViews(found, {v1})->rules[0],
      ComposeWithViews(q4, {v1})->rules[0]);
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(*same) << "found: " << found.ToString();
  ExpectAllSound(*result, q3, {v1});
}

TEST(RewriteExamplesTest, Example31SinglePathEntryPoint) {
  auto result = RewriteSinglePath(MustParse(testing::kQ3, "Q3"),
                                  MustParse(testing::kV1, "V1"));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rewritings.size(), 1u);
  EXPECT_EQ(result->mappings_found, 1u);
}

// --- Example 3.2: set mappings end-to-end -----------------------------------

TEST(RewriteExamplesTest, Example32FindsQ6) {
  TslQuery q5 = MustParse(testing::kQ5, "Q5");
  TslQuery v1 = MustParse(testing::kV1, "V1");
  auto result = RewriteQuery(q5, {v1});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rewritings.size(), 1u);
  EXPECT_TRUE(UsesSource(result->rewritings[0], "V1"));
  ExpectAllSound(*result, q5, {v1});
  // And the rewriting is interchangeable with the paper's (Q6).
  auto eq = AreEquivalent(
      ComposeWithViews(result->rewritings[0], {v1})->rules[0],
      ComposeWithViews(MustParse(testing::kQ6, "Q6"), {v1})->rules[0]);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

// --- Example 3.3: the correctness test rejects (Q8) -------------------------

TEST(RewriteExamplesTest, Example33FindsNoRewriting) {
  TslQuery q7 = MustParse(testing::kQ7, "Q7");
  TslQuery v1 = MustParse(testing::kV1, "V1");
  auto result = RewriteQuery(q7, {v1});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->rewritings.empty())
      << "Example 3.3: the view loses the label/value correspondence, no "
         "rewriting exists; found " << result->rewritings[0].ToString();
  // Step 1 did produce the (M6)-based candidate; Step 2 rejected it.
  EXPECT_GE(result->mappings_found, 1u);
  EXPECT_GE(result->candidates_tested, 1u);
}

// --- Example 3.5: the DTD makes (Q8) a valid rewriting of (Q7) --------------

TEST(RewriteExamplesTest, Example35DtdEnablesRewriting) {
  auto dtd = Dtd::Parse(testing::kPersonDtd);
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  StructuralConstraints constraints(std::move(dtd).value());
  RewriteOptions options;
  options.constraints = &constraints;

  TslQuery q7 = MustParse(testing::kQ7, "Q7");
  TslQuery v1 = MustParse(testing::kV1, "V1");
  auto result = RewriteQuery(q7, {v1}, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GE(result->rewritings.size(), 1u)
      << "with the person DTD, Example 3.5 derives a rewriting";
  EXPECT_TRUE(UsesSource(result->rewritings[0], "V1"));
  ExpectAllSound(*result, q7, {v1}, ChaseOptions{&constraints, {}});
}

// --- Operational soundness: rewritings answer from materialized views ------

TEST(RewriteExamplesTest, RewritingAnswersFromMaterializedView) {
  SourceCatalog catalog;
  catalog.Put(MustParseDb(R"(
    database db {
      <p1 p { <n1 name leland> <g1 gender female> }>
      <p2 p { <n2 name jane> }>
      <p3 p { <x3 nickname leland> }>
    })"));
  TslQuery q3 = MustParse(testing::kQ3, "Q3");
  TslQuery v1 = MustParse(testing::kV1, "V1");
  auto result = RewriteQuery(q3, {v1});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rewritings.size(), 1u);

  auto original = Evaluate(q3, catalog, {.answer_name = "ans"});
  ASSERT_TRUE(original.ok()) << original.status();

  SourceCatalog views_only;  // the rewriting never touches db
  auto view_db = MaterializeView(v1, catalog);
  ASSERT_TRUE(view_db.ok()) << view_db.status();
  views_only.Put(std::move(*view_db));
  auto rewritten =
      Evaluate(result->rewritings[0], views_only, {.answer_name = "ans"});
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();

  EXPECT_TRUE(original->Equals(*rewritten))
      << "original:\n" << original->ToString()
      << "rewritten:\n" << rewritten->ToString();
  // Both p1 and p3 carry the value leland (under different labels) — the
  // label-losing view still answers the label-agnostic (Q3).
  EXPECT_EQ(original->roots().size(), 2u);
}

// --- Multi-condition queries and partial rewritings -------------------------

TEST(RewriteTest, PartialRewritingKeepsResidualCondition) {
  // A view that exposes only the gender paths; the phone condition must
  // stay on @db (the mediator filters locally, \S1's CBR story).
  TslQuery view = MustParse(
      "<v(P') has-gender {<vg(G') g W'>}> :- "
      "<P' person {<G' gender W'>}>@db", "GenderView");
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P person {<G gender female>}>@db AND "
      "<P person {<H phone N>}>@db", "Q");
  auto result = RewriteQuery(query, {view});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GE(result->rewritings.size(), 1u);
  bool found_partial = false;
  for (const TslQuery& rw : result->rewritings) {
    found_partial = found_partial ||
                    (UsesSource(rw, "GenderView") && UsesSource(rw, "db"));
  }
  EXPECT_TRUE(found_partial);
  ExpectAllSound(*result, query, {view});
}

TEST(RewriteTest, RequireTotalSuppressesPartialRewritings) {
  TslQuery view = MustParse(
      "<v(P') has-gender {<vg(G') g W'>}> :- "
      "<P' person {<G' gender W'>}>@db", "GenderView");
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P person {<G gender female>}>@db AND "
      "<P person {<H phone N>}>@db", "Q");
  RewriteOptions options;
  options.require_total = true;
  auto result = RewriteQuery(query, {view}, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->rewritings.empty());
}

TEST(RewriteTest, TotalRewritingAcrossTwoViews) {
  TslQuery gender_view = MustParse(
      "<v(P') has-gender {<vg(G') g W'>}> :- "
      "<P' person {<G' gender W'>}>@db", "GenderView");
  TslQuery phone_view = MustParse(
      "<w(P') has-phone {<wp(H') ph N'>}> :- "
      "<P' person {<H' phone N'>}>@db", "PhoneView");
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P person {<G gender female>}>@db AND "
      "<P person {<H phone N>}>@db", "Q");
  RewriteOptions options;
  options.require_total = true;
  auto result = RewriteQuery(query, {gender_view, phone_view}, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GE(result->rewritings.size(), 1u);
  for (const TslQuery& rw : result->rewritings) {
    for (const Condition& c : rw.body) EXPECT_NE(c.source, "db");
  }
  ExpectAllSound(*result, query, {gender_view, phone_view});
}

TEST(RewriteTest, IrrelevantViewYieldsNoMappings) {
  TslQuery view = MustParse(
      "<v(X') out U'> :- <X' zebra U'>@db", "ZebraView");
  auto result = RewriteQuery(MustParse(testing::kQ3, "Q3"), {view});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->mappings_found, 0u);
  EXPECT_TRUE(result->rewritings.empty());
}

TEST(RewriteTest, UnsafeQueriesRejected) {
  TslQuery q = MustParse("<f(P) out W> :- <P p V>@db");
  auto result = RewriteQuery(q, {MustParse(testing::kV1, "V1")});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIllFormedQuery);
}

TEST(RewriteTest, UnnamedViewRejected) {
  TslQuery view = MustParse(testing::kV1);
  view.name.clear();
  auto result = RewriteQuery(MustParse(testing::kQ3, "Q3"), {view});
  EXPECT_FALSE(result.ok());
}

TEST(RewriteTest, UnsatisfiableQueryYieldsEmptyResult) {
  TslQuery q = MustParse(
      "<f(X) out yes> :- <P p {<X a u1>}>@db AND <R p {<X a u2>}>@db");
  auto result = RewriteQuery(q, {MustParse(testing::kV1, "V1")});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->rewritings.empty());
}

TEST(RewriteTest, CoverHeuristicPreservesResults) {
  TslQuery q3 = MustParse(testing::kQ3, "Q3");
  TslQuery v1 = MustParse(testing::kV1, "V1");
  RewriteOptions with, without;
  with.use_cover_heuristic = true;
  without.use_cover_heuristic = false;
  auto a = RewriteQuery(q3, {v1}, with);
  auto b = RewriteQuery(q3, {v1}, without);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rewritings.size(), b->rewritings.size());
  // The heuristic never tests more candidates than exhaustive search.
  EXPECT_LE(a->candidates_generated, b->candidates_generated);
}

TEST(RewriteTest, DominatedRewritingsPruned) {
  // Two copies of the same view: the rewriting needs only one view
  // condition; candidates adding the second (or a residual db condition)
  // are dominated and pruned.
  TslQuery q3 = MustParse(testing::kQ3, "Q3");
  TslQuery v1 = MustParse(testing::kV1, "V1");
  RewriteOptions options;
  options.prune_dominated = true;
  auto result = RewriteQuery(q3, {v1}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rewritings.size(), 1u);
  EXPECT_EQ(result->rewritings[0].body.size(), 1u);
}

TEST(RewriteTest, HeadIsAlwaysQueryHead) {
  // Lemma 5.4: rewritings carry the original head.
  TslQuery q5 = MustParse(testing::kQ5, "Q5");
  auto result = RewriteQuery(q5, {MustParse(testing::kV1, "V1")});
  ASSERT_TRUE(result.ok());
  for (const TslQuery& rw : result->rewritings) {
    EXPECT_EQ(rw.head, q5.head);
  }
}

TEST(RewriteTest, BodySizeBoundedByK) {
  // Lemma 5.2: rewritings use at most k = |body(Q)| conditions.
  TslQuery query = MustParse(
      "<f(P) out yes> :- <P person {<G gender female>}>@db AND "
      "<P person {<H phone N>}>@db", "Q");
  TslQuery view = MustParse(
      "<v(P') has-gender {<vg(G') g W'>}> :- "
      "<P' person {<G' gender W'>}>@db", "GenderView");
  auto result = RewriteQuery(query, {view});
  ASSERT_TRUE(result.ok());
  for (const TslQuery& rw : result->rewritings) {
    EXPECT_LE(rw.body.size(), 2u);
  }
}

}  // namespace
}  // namespace tslrw
