#include "rewrite/mapping.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "tsl/normal_form.h"
#include "tsl/parser.h"

namespace tslrw {
namespace {

using testing::MustParse;

Term OidVar(const char* s) { return Term::MakeVar(s, VarKind::kObjectId); }
Term ValVar(const char* s) { return Term::MakeVar(s, VarKind::kLabelValue); }
Term Atom(const char* s) { return Term::MakeAtom(s); }

TEST(MatchIntoTest, VariablesBindToArbitraryTerms) {
  Substitution s;
  EXPECT_TRUE(MatchInto(OidVar("P'"), OidVar("P"), &s));
  EXPECT_TRUE(MatchInto(ValVar("Z'"), Atom("leland"), &s));
  EXPECT_EQ(s.Apply(OidVar("P'")), OidVar("P"));
  // Bound variables must keep their image.
  EXPECT_TRUE(MatchInto(OidVar("P'"), OidVar("P"), &s));
  EXPECT_FALSE(MatchInto(OidVar("P'"), OidVar("Q"), &s));
}

TEST(MatchIntoTest, FunctionTermsMatchStructurally) {
  Substitution s;
  Term from = Term::MakeFunc("g", {OidVar("P'")});
  Term to = Term::MakeFunc("g", {Atom("p1")});
  EXPECT_TRUE(MatchInto(from, to, &s));
  EXPECT_EQ(s.Apply(OidVar("P'")), Atom("p1"));
  EXPECT_FALSE(MatchInto(Term::MakeFunc("h", {OidVar("X")}), to, &s));
}

TEST(MatchIntoTest, SortsAreRespected) {
  Substitution s;
  // A label/value variable cannot map to an oid function term.
  EXPECT_FALSE(MatchInto(ValVar("Y"), Term::MakeFunc("f", {Atom("a")}), &s));
  // Variables of different sorts may alias (see SortsCompatible).
  EXPECT_TRUE(MatchInto(OidVar("X"), ValVar("Y"), &s));
}

// --- Example 3.1: the unique mapping (M2) from (V1) to (Q3) ---------------

TEST(FindMappingsTest, Example31ProducesM2) {
  auto mappings = FindMappings(MustParse(testing::kV1, "V1"),
                               MustParse(testing::kQ3, "Q3"));
  ASSERT_TRUE(mappings.ok()) << mappings.status();
  ASSERT_EQ(mappings->size(), 1u);
  const Substitution& m2 = (*mappings)[0].subst;
  // (M2) [P' -> P, X' -> X, Y' -> Y, Z' -> leland]
  EXPECT_EQ(m2.Apply(OidVar("P'")), OidVar("P"));
  EXPECT_EQ(m2.Apply(OidVar("X'")), OidVar("X"));
  EXPECT_EQ(m2.Apply(ValVar("Y'")), ValVar("Y"));
  EXPECT_EQ(m2.Apply(ValVar("Z'")), Atom("leland"));
  EXPECT_EQ((*mappings)[0].target, std::vector<size_t>{0});
}

// --- Example 3.2: the set mapping (M5) from (V1) to (Q5) -------------------

TEST(FindMappingsTest, Example32ProducesSetMappingM5) {
  auto mappings = FindMappings(MustParse(testing::kV1, "V1"),
                               MustParse(testing::kQ5, "Q5"));
  ASSERT_TRUE(mappings.ok()) << mappings.status();
  ASSERT_EQ(mappings->size(), 1u);
  const Substitution& m5 = (*mappings)[0].subst;
  EXPECT_EQ(m5.Apply(OidVar("P'")), OidVar("P"));
  EXPECT_EQ(m5.Apply(OidVar("X'")), OidVar("X"));
  EXPECT_EQ(m5.Apply(ValVar("Y'")), ValVar("Y"));
  // Z' -> {<Z last stanford>}
  const SetPattern* bound = m5.LookupSet(ValVar("Z'"));
  ASSERT_NE(bound, nullptr);
  TslQuery q5 = MustParse(testing::kQ5);
  const ObjectPattern& inner =
      q5.body[0].pattern.value.set()[0].value.set()[0];
  ASSERT_EQ(bound->size(), 1u);
  EXPECT_EQ((*bound)[0], inner);
}

// --- Example 3.3: a mapping exists even though no rewriting does -----------

TEST(FindMappingsTest, Example33ProducesM6) {
  auto mappings = FindMappings(MustParse(testing::kV1, "V1"),
                               MustParse(testing::kQ7, "Q7"));
  ASSERT_TRUE(mappings.ok()) << mappings.status();
  ASSERT_EQ(mappings->size(), 1u);
  const Substitution& m6 = (*mappings)[0].subst;
  EXPECT_EQ(m6.Apply(ValVar("Y'")), Atom("name"));
  ASSERT_NE(m6.LookupSet(ValVar("Z'")), nullptr);
}

TEST(FindMappingsTest, NoMappingWhenLabelsClash) {
  TslQuery view = MustParse("<v(X') out yes> :- <X' a Z'>@db", "V");
  TslQuery query = MustParse("<f(X) out yes> :- <X b Z>@db", "Q");
  auto mappings = FindMappings(view, query);
  ASSERT_TRUE(mappings.ok());
  EXPECT_TRUE(mappings->empty());
}

TEST(FindMappingsTest, NoMappingAcrossSources) {
  TslQuery view = MustParse("<v(X') out yes> :- <X' a Z'>@other", "V");
  TslQuery query = MustParse("<f(X) out yes> :- <X a Z>@db", "Q");
  auto mappings = FindMappings(view, query);
  ASSERT_TRUE(mappings.ok());
  EXPECT_TRUE(mappings->empty());
}

TEST(FindMappingsTest, ViewDeeperThanQueryDoesNotMap) {
  // The view demands a child under X'; the query only binds a value
  // variable there (only the chase can bridge this, Example 3.4).
  TslQuery view = MustParse("<v(P') o yes> :- <P' p {<X' Y' Z'>}>@db", "V");
  TslQuery query = MustParse("<f(P) o V> :- <P p V>@db", "Q");
  auto mappings = FindMappings(view, query);
  ASSERT_TRUE(mappings.ok());
  EXPECT_TRUE(mappings->empty());
}

TEST(FindMappingsTest, ConstantTailMustMatchExactly) {
  TslQuery view = MustParse("<v(P') o yes> :- <P' p {<X' l leland>}>@db", "V");
  EXPECT_TRUE(
      FindMappings(view, MustParse("<f(P) o yes> :- <P p {<X l leland>}>@db"))
          ->size() == 1u);
  // Variable in the query where the view demands a constant: no mapping.
  EXPECT_TRUE(
      FindMappings(view, MustParse("<f(P) o Z> :- <P p {<X l Z>}>@db"))
          ->empty());
  // Different constant: no mapping.
  EXPECT_TRUE(
      FindMappings(view, MustParse("<f(P) o yes> :- <P p {<X l jane>}>@db"))
          ->empty());
}

TEST(FindMappingsTest, MultiPathViewsNeedConsistentBindings) {
  TslQuery view = MustParse(
      "<v(P') o yes> :- <P' p {<X' a U'>}>@db AND <P' p {<Y' b W'>}>@db",
      "V");
  // Query joins both paths on the same P: one mapping.
  auto both = FindMappings(view, MustParse(
      "<f(P) o yes> :- <P p {<X a U>}>@db AND <P p {<Y b W>}>@db"));
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->size(), 1u);
  // Query uses two different roots: P' cannot be both.
  auto split = FindMappings(view, MustParse(
      "<f(P,R) o yes> :- <P p {<X a U>}>@db AND <R p {<Y b W>}>@db"));
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(split->empty());
}

TEST(FindMappingsTest, MultipleMappingsEnumerated) {
  // A one-path view maps into each of the query's two a-paths.
  TslQuery view = MustParse("<v(P') o yes> :- <P' p {<X' a U'>}>@db", "V");
  auto mappings = FindMappings(view, MustParse(
      "<f(P) o yes> :- <P p {<X a u1>}>@db AND <P p {<Y a u2>}>@db"));
  ASSERT_TRUE(mappings.ok());
  EXPECT_EQ(mappings->size(), 2u);
}

TEST(FindMappingsTest, EmptySetTailNeedsSetObject) {
  TslQuery view = MustParse("<v(X') o yes> :- <X' a {}>@db", "V");
  // Query path continues below: the object is a set. Mapping exists.
  EXPECT_EQ(
      FindMappings(view, MustParse("<f(X) o yes> :- <X a {<Y b c>}>@db"))
          ->size(),
      1u);
  // Query ends in an atomic constant: no mapping.
  EXPECT_TRUE(
      FindMappings(view, MustParse("<f(X) o yes> :- <X a v1>@db"))->empty());
}

TEST(FindMappingsTest, SetBindingMustBeConsistentAcrossPaths) {
  // Z' is the tail of both view paths; its two images must be identical
  // set patterns.
  TslQuery view = MustParse(
      "<v(P') o yes> :- <P' a Z'>@db AND <P' b Z'>@db", "V");
  auto same = FindMappings(view, MustParse(
      "<f(P) o yes> :- <P a {<X m c>}>@db AND <P b {<X m c>}>@db"));
  ASSERT_TRUE(same.ok());
  // Note: <P a ...> and <P b ...> disagree on P's label; mapping discovery
  // is purely syntactic (the chase would reject this query), so the
  // consistent set binding maps.
  EXPECT_EQ(same->size(), 1u);
  auto differ = FindMappings(view, MustParse(
      "<f(P) o yes> :- <P a {<X m c>}>@db AND <P b {<Y n d>}>@db"));
  ASSERT_TRUE(differ.ok());
  EXPECT_TRUE(differ->empty());
}

TEST(FindMappingsTest, RequiresNormalForm) {
  TslQuery q1 = MustParse(testing::kQ1);
  EXPECT_FALSE(FindMappings(q1, q1).ok());
  TslQuery nf = ToNormalForm(q1);
  EXPECT_TRUE(FindMappings(nf, nf).ok());
}

TEST(FindMappingsTest, IdentityMappingAlwaysFound) {
  for (std::string_view text :
       {testing::kQ2, testing::kQ3, testing::kQ5, testing::kQ7,
        testing::kQ9}) {
    TslQuery q = ToNormalForm(MustParse(text));
    auto mappings = FindMappings(q, q);
    ASSERT_TRUE(mappings.ok());
    EXPECT_GE(mappings->size(), 1u) << "no self-mapping for " << text;
  }
}

}  // namespace
}  // namespace tslrw
