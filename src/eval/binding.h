#ifndef TSLRW_EVAL_BINDING_H_
#define TSLRW_EVAL_BINDING_H_

#include <map>
#include <string>

#include "oem/database.h"
#include "oem/term.h"

namespace tslrw {

/// \brief What a variable is bound to during evaluation: per \S2, an
/// assignment maps object-id variables to O, label variables to C, and
/// value variables to C ∪ P_D (atomic data or subgraphs).
///
/// A subgraph binding ("set value") is represented intensionally as the set
/// value of a concrete source object: the pair (database, owner oid). The
/// value is the owner's child set together with the subgraph hanging below,
/// which stays implicit in the source database until head construction
/// copies it into the answer.
class BoundValue {
 public:
  /// An atomic binding: a source oid (for V_O) or an atom (label or atomic
  /// value, for V_C).
  static BoundValue FromTerm(Term t) {
    BoundValue v;
    v.term_ = std::move(t);
    return v;
  }

  /// The set value of \p owner in \p db.
  static BoundValue FromSetValue(const OemDatabase* db, Oid owner) {
    BoundValue v;
    v.db_ = db;
    v.owner_ = std::move(owner);
    return v;
  }

  bool is_term() const { return db_ == nullptr; }
  bool is_set_value() const { return db_ != nullptr; }

  const Term& term() const { return term_; }
  const OemDatabase* db() const { return db_; }
  const Oid& owner() const { return owner_; }

  std::string ToString() const {
    if (is_term()) return term_.ToString();
    return "setvalue(" + db_->name() + "," + owner_.ToString() + ")";
  }

  /// Equality is *by value*: two subgraph bindings are equal when the
  /// owners' set values — child oids and everything reachable below them —
  /// are identical, even across databases. A view's copied subgraph must
  /// join with the original source subgraph (\S2 copy semantics preserve
  /// oids), so pointer identity of the database is not part of the value.
  friend bool operator==(const BoundValue& a, const BoundValue& b);

  /// Ordering for container use; coarser than ==, refined only by cheap
  /// fields (equal values in different databases may order apart, which
  /// merely costs a duplicate assignment that fusion collapses later).
  friend bool operator<(const BoundValue& a, const BoundValue& b) {
    if (a.db_ != b.db_) return a.db_ < b.db_;
    if (!(a.owner_ == b.owner_)) return a.owner_ < b.owner_;
    return a.term_ < b.term_;
  }

 private:
  Term term_;
  const OemDatabase* db_ = nullptr;
  Oid owner_;
};

/// \brief One satisfying assignment θ : V → O ∪ C ∪ P_D.
using Assignment = std::map<Term, BoundValue>;

}  // namespace tslrw

#endif  // TSLRW_EVAL_BINDING_H_
