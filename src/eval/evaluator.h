#ifndef TSLRW_EVAL_EVALUATOR_H_
#define TSLRW_EVAL_EVALUATOR_H_

#include <string>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "oem/database.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Options for TSL evaluation.
struct EvalOptions {
  /// Source used for body conditions that carry no `@source` annotation.
  std::string default_source = "db";
  /// Name given to the answer database; defaults to the query name.
  std::string answer_name;
  /// Optional eval.* metric sink (rule evaluations, assignment counts,
  /// emitted roots); null disables instrumentation.
  MetricRegistry* metrics = nullptr;
  /// Optional span tree: one `eval.rule` span per evaluated rule. Spans sit
  /// on the deterministic control path only, so a fixed input replays the
  /// trace byte for byte (docs/OBSERVABILITY.md).
  Tracer* tracer = nullptr;
};

/// \brief Evaluates a TSL query over the sources in \p catalog and returns
/// the answer database (\S2 semantics).
///
/// For every satisfying assignment θ the head is instantiated: each head
/// object pattern `<t L V>` creates an object with oid θ(t), label θ(L) and
/// value θ(V). Assignments that produce the same oid term *fuse* their
/// values (set union of subobjects); conflicting atomic fusions fail with
/// FusionConflict. A value variable bound to a subgraph is copied into the
/// answer together with everything reachable from it — which is how a TSL
/// "answer tree" can end up with (possibly cyclic) source subgraphs hanging
/// off its branches.
///
/// The top-level head object becomes an answer root.
Result<OemDatabase> Evaluate(const TslQuery& query,
                             const SourceCatalog& catalog,
                             const EvalOptions& options = {});

/// \brief Evaluates each rule of \p rules into one shared answer database
/// (rules contributing the same oids fuse, \S4: "different rules can
/// contribute different parts of the same answer graph").
Result<OemDatabase> EvaluateRuleSet(const TslRuleSet& rules,
                                    const SourceCatalog& catalog,
                                    const EvalOptions& options = {});

/// \brief Materializes a view: evaluates it and names the result after the
/// view, so the rewritten query's `@ViewName` conditions resolve to it.
Result<OemDatabase> MaterializeView(const TslQuery& view,
                                    const SourceCatalog& catalog,
                                    const EvalOptions& options = {});

}  // namespace tslrw

#endif  // TSLRW_EVAL_EVALUATOR_H_
