#include "eval/binding.h"

#include <deque>

namespace tslrw {

namespace {

/// Whether the set values of (adb, a) and (bdb, b) are identical. A set
/// object's *value* is its child set together with the subgraph below
/// (\S2): the owners themselves may differ (two distinct objects can hold
/// the same value), but the child oid sets must coincide and every
/// reachable child must carry the same label and value on both sides.
/// Cycle-safe.
bool SetValuesEqual(const OemDatabase& adb, const Oid& a,
                    const OemDatabase& bdb, const Oid& b) {
  const OemObject* a_owner = adb.Find(a);
  const OemObject* b_owner = bdb.Find(b);
  if (a_owner == nullptr || b_owner == nullptr) return a_owner == b_owner;
  if (a_owner->is_atomic() || b_owner->is_atomic()) return false;
  if (!(a_owner->value == b_owner->value)) return false;
  std::deque<Oid> work(a_owner->value.children().begin(),
                       a_owner->value.children().end());
  std::set<Oid> seen;
  while (!work.empty()) {
    Oid oid = work.front();
    work.pop_front();
    if (!seen.insert(oid).second) continue;
    const OemObject* ao = adb.Find(oid);
    const OemObject* bo = bdb.Find(oid);
    if (ao == nullptr || bo == nullptr) return ao == bo;
    if (ao->label != bo->label) return false;
    if (!(ao->value == bo->value)) return false;
    if (ao->is_atomic()) continue;
    for (const Oid& c : ao->value.children()) work.push_back(c);
  }
  return true;
}

}  // namespace

bool operator==(const BoundValue& a, const BoundValue& b) {
  if (a.is_term() != b.is_term()) return false;
  if (a.is_term()) return a.term_ == b.term_;
  // Same owner in the same database: trivially the same value. Otherwise
  // the values must be compared structurally — two distinct owners (even
  // within one database) can hold identical set values.
  if (a.db_ == b.db_ && a.owner_ == b.owner_) return true;
  return SetValuesEqual(*a.db_, a.owner_, *b.db_, b.owner_);
}

}  // namespace tslrw
