#include "eval/evaluator.h"

#include <deque>

#include "common/string_util.h"
#include "eval/binding.h"
#include "eval/matcher.h"

namespace tslrw {

namespace {

/// Wraps oid-key violations raised while building the answer as fusion
/// conflicts: two assignments tried to give one answer object different
/// content.
Status AsFusion(Status st) {
  if (st.ok() || st.code() != StatusCode::kInvalidArgument) return st;
  return Status::FusionConflict(st.message());
}

/// Applies θ to a head term; the result must be ground and must not be a
/// subgraph binding (those are legal only in value position).
Result<Term> GroundTerm(const Term& t, const Assignment& theta) {
  switch (t.kind()) {
    case TermKind::kAtom:
      return t;
    case TermKind::kVariable: {
      auto it = theta.find(t);
      if (it == theta.end()) {
        return Status::IllFormedQuery(
            StrCat("unsafe head variable ", t.ToString(),
                   " has no binding"));
      }
      if (!it->second.is_term()) {
        return Status::IllFormedQuery(
            StrCat("variable ", t.ToString(),
                   " is bound to a subgraph but used where an atomic term "
                   "is required"));
      }
      return it->second.term();
    }
    case TermKind::kFunction: {
      std::vector<Term> args;
      args.reserve(t.args().size());
      for (const Term& a : t.args()) {
        TSLRW_ASSIGN_OR_RETURN(Term ga, GroundTerm(a, theta));
        args.push_back(std::move(ga));
      }
      return Term::MakeFunc(t.functor(), std::move(args));
    }
  }
  return Status::Internal("unreachable term kind");
}

/// Copies the object \p oid and everything reachable from it out of \p src
/// into \p answer (the \S2 copy semantics for subgraph bindings).
Status CopySubgraph(const OemDatabase& src, const Oid& oid,
                    OemDatabase* answer) {
  std::deque<Oid> work{oid};
  std::set<Oid> seen;
  while (!work.empty()) {
    Oid cur = work.front();
    work.pop_front();
    if (!seen.insert(cur).second) continue;
    const OemObject* obj = src.Find(cur);
    if (obj == nullptr) {
      return Status::Internal(
          StrCat("source object ", cur.ToString(), " vanished during copy"));
    }
    if (obj->is_atomic()) {
      TSLRW_RETURN_NOT_OK(
          AsFusion(answer->PutAtomic(cur, obj->label, obj->value.atom())));
    } else {
      TSLRW_RETURN_NOT_OK(AsFusion(answer->PutSet(cur, obj->label)));
      for (const Oid& c : obj->value.children()) {
        TSLRW_RETURN_NOT_OK(answer->AddEdge(cur, c));
        work.push_back(c);
      }
    }
  }
  return Status::OK();
}

/// Instantiates one head object pattern under θ; returns the created oid.
Result<Oid> BuildObject(const ObjectPattern& pattern, const Assignment& theta,
                        OemDatabase* answer) {
  TSLRW_ASSIGN_OR_RETURN(Term oid, GroundTerm(pattern.oid, theta));
  TSLRW_ASSIGN_OR_RETURN(Term label_term, GroundTerm(pattern.label, theta));
  if (!label_term.is_atom()) {
    return Status::IllFormedQuery(
        StrCat("head label instantiates to non-atom ",
               label_term.ToString()));
  }
  const std::string& label = label_term.atom_name();

  if (pattern.value.is_set()) {
    TSLRW_RETURN_NOT_OK(AsFusion(answer->PutSet(oid, label)));
    for (const ObjectPattern& member : pattern.value.set()) {
      TSLRW_ASSIGN_OR_RETURN(Oid child, BuildObject(member, theta, answer));
      TSLRW_RETURN_NOT_OK(answer->AddEdge(oid, child));
    }
    return oid;
  }

  const Term& vt = pattern.value.term();
  if (vt.is_var()) {
    auto it = theta.find(vt);
    if (it == theta.end()) {
      return Status::IllFormedQuery(
          StrCat("unsafe head variable ", vt.ToString(), " has no binding"));
    }
    if (it->second.is_set_value()) {
      // Subgraph binding: the new object adopts the source object's child
      // set, and the subgraph below is copied into the answer.
      const OemDatabase& src = *it->second.db();
      const OemObject* owner = src.Find(it->second.owner());
      if (owner == nullptr || owner->is_atomic()) {
        return Status::Internal("subgraph binding owner is not a set object");
      }
      TSLRW_RETURN_NOT_OK(AsFusion(answer->PutSet(oid, label)));
      for (const Oid& c : owner->value.children()) {
        TSLRW_RETURN_NOT_OK(CopySubgraph(src, c, answer));
        TSLRW_RETURN_NOT_OK(answer->AddEdge(oid, c));
      }
      return oid;
    }
    TSLRW_RETURN_NOT_OK(AsFusion(
        answer->PutAtomic(oid, label, it->second.term().atom_name())));
    return oid;
  }
  if (vt.is_atom()) {
    TSLRW_RETURN_NOT_OK(
        AsFusion(answer->PutAtomic(oid, label, vt.atom_name())));
    return oid;
  }
  return Status::IllFormedQuery(
      StrCat("head value ", vt.ToString(),
             " is a function term; OEM values are atomic data or sets"));
}

Status EvaluateInto(const TslQuery& query, const SourceCatalog& catalog,
                    const EvalOptions& options, OemDatabase* answer) {
  ScopedSpan span(options.tracer, "eval.rule");
  span.Annotate("rule", query.name);
  CountIf(options.metrics, "eval.rules");
  TSLRW_ASSIGN_OR_RETURN(
      std::vector<Assignment> assignments,
      EnumerateAssignments(query.body, catalog, options.default_source));
  span.Annotate("assignments", static_cast<uint64_t>(assignments.size()));
  ObserveIf(options.metrics, "eval.assignments", assignments.size());
  for (const Assignment& theta : assignments) {
    TSLRW_ASSIGN_OR_RETURN(Oid root, BuildObject(query.head, theta, answer));
    TSLRW_RETURN_NOT_OK(answer->AddRoot(root));
  }
  CountIf(options.metrics, "eval.roots_emitted", assignments.size());
  return Status::OK();
}

}  // namespace

Result<OemDatabase> Evaluate(const TslQuery& query,
                             const SourceCatalog& catalog,
                             const EvalOptions& options) {
  OemDatabase answer(options.answer_name.empty() ? query.name
                                                 : options.answer_name);
  TSLRW_RETURN_NOT_OK(EvaluateInto(query, catalog, options, &answer));
  return answer;
}

Result<OemDatabase> EvaluateRuleSet(const TslRuleSet& rules,
                                    const SourceCatalog& catalog,
                                    const EvalOptions& options) {
  std::string name = options.answer_name;
  if (name.empty() && !rules.rules.empty()) name = rules.rules.front().name;
  OemDatabase answer(name);
  for (const TslQuery& rule : rules.rules) {
    TSLRW_RETURN_NOT_OK(EvaluateInto(rule, catalog, options, &answer));
  }
  return answer;
}

Result<OemDatabase> MaterializeView(const TslQuery& view,
                                    const SourceCatalog& catalog,
                                    const EvalOptions& options) {
  EvalOptions opts = options;
  opts.answer_name = view.name;
  return Evaluate(view, catalog, opts);
}

}  // namespace tslrw
