#include "eval/matcher.h"

#include <deque>
#include <set>

#include "common/string_util.h"

namespace tslrw {

namespace {

/// One-way matching of a body term against a ground term (oid, label, or
/// atomic value). Variables bind; atoms and function terms must agree
/// structurally. Returns false and leaves \p a unchanged on mismatch.
bool MatchTerm(const Term& pattern, const Term& ground, Assignment* a) {
  switch (pattern.kind()) {
    case TermKind::kAtom:
      return pattern == ground;
    case TermKind::kVariable: {
      auto it = a->find(pattern);
      BoundValue bound = BoundValue::FromTerm(ground);
      if (it != a->end()) return it->second == bound;
      a->emplace(pattern, std::move(bound));
      return true;
    }
    case TermKind::kFunction: {
      if (!ground.is_func() || ground.functor() != pattern.functor() ||
          ground.args().size() != pattern.args().size()) {
        return false;
      }
      Assignment scratch = *a;
      for (size_t i = 0; i < pattern.args().size(); ++i) {
        if (!MatchTerm(pattern.args()[i], ground.args()[i], &scratch)) {
          return false;
        }
      }
      *a = std::move(scratch);
      return true;
    }
  }
  return false;
}

void MatchObject(const ObjectPattern& pattern, const Oid& oid,
                 const OemDatabase& db, const Assignment& a,
                 std::vector<Assignment>* out);

}  // namespace

std::vector<Oid> StepCandidates(const ObjectPattern& member,
                                const OemObject& parent,
                                const OemDatabase& db) {
  std::vector<Oid> out;
  if (member.step == StepKind::kChild) {
    out.assign(parent.value.children().begin(),
               parent.value.children().end());
    return out;
  }
  const bool closure = member.step == StepKind::kClosure;
  const std::string chain_label =
      closure && member.label.is_atom() ? member.label.atom_name() : "";
  std::set<Oid> seen;
  std::deque<Oid> work(parent.value.children().begin(),
                       parent.value.children().end());
  while (!work.empty()) {
    Oid oid = work.front();
    work.pop_front();
    if (!seen.insert(oid).second) continue;
    const OemObject* obj = db.Find(oid);
    if (obj == nullptr) continue;
    if (closure && obj->label != chain_label) continue;
    out.push_back(oid);
    if (obj->is_atomic()) continue;
    for (const Oid& c : obj->value.children()) work.push_back(c);
  }
  return out;
}

namespace {

/// Matches a value field against the value of \p obj, extending \p a into
/// zero or more assignments appended to \p out.
void MatchValue(const PatternValue& pv, const OemObject& obj,
                const OemDatabase& db, const Assignment& a,
                std::vector<Assignment>* out) {
  if (pv.is_term()) {
    const Term& t = pv.term();
    if (obj.is_atomic()) {
      Assignment scratch = a;
      if (MatchTerm(t, Term::MakeAtom(obj.value.atom()), &scratch)) {
        out->push_back(std::move(scratch));
      }
      return;
    }
    // A set value: only a (value) variable can bind to a subgraph (\S2,
    // value variables range over C ∪ P_D). Constants and function terms
    // denote atomic data and never match set objects.
    if (!t.is_var()) return;
    BoundValue bound = BoundValue::FromSetValue(&db, obj.oid);
    auto it = a.find(t);
    if (it != a.end()) {
      if (it->second == bound) out->push_back(a);
      return;
    }
    Assignment scratch = a;
    scratch.emplace(t, std::move(bound));
    out->push_back(std::move(scratch));
    return;
  }
  // Set pattern: the object must be set-valued; each member needs some
  // witness (witnesses may be shared between members).
  if (obj.is_atomic()) return;
  std::vector<Assignment> frontier{a};
  for (const ObjectPattern& member : pv.set()) {
    std::vector<Oid> candidates = StepCandidates(member, obj, db);
    std::vector<Assignment> next;
    for (const Assignment& cur : frontier) {
      for (const Oid& candidate : candidates) {
        MatchObject(member, candidate, db, cur, &next);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) return;
  }
  out->insert(out->end(), frontier.begin(), frontier.end());
}

void MatchObject(const ObjectPattern& pattern, const Oid& oid,
                 const OemDatabase& db, const Assignment& a,
                 std::vector<Assignment>* out) {
  const OemObject* obj = db.Find(oid);
  if (obj == nullptr) return;
  Assignment scratch = a;
  if (!MatchTerm(pattern.oid, oid, &scratch)) return;
  // A descendant step constrains no label (its sentinel is not a pattern).
  if (pattern.step != StepKind::kDescendant &&
      !MatchTerm(pattern.label, Term::MakeAtom(obj->label), &scratch)) {
    return;
  }
  MatchValue(pattern.value, *obj, db, scratch, out);
}

}  // namespace

Result<std::vector<Assignment>> EnumerateAssignments(
    const std::vector<Condition>& body, const SourceCatalog& catalog,
    const std::string& default_source) {
  std::vector<Assignment> frontier{Assignment{}};
  for (const Condition& cond : body) {
    const std::string& source =
        cond.source.empty() ? default_source : cond.source;
    TSLRW_ASSIGN_OR_RETURN(const OemDatabase* db, catalog.Find(source));
    // A constant root label prunes the candidate roots once per condition
    // instead of once per (assignment, root) pair.
    std::vector<Oid> roots;
    roots.reserve(db->roots().size());
    for (const Oid& root : db->roots()) {
      if (cond.pattern.step == StepKind::kChild &&
          cond.pattern.label.is_atom()) {
        const OemObject* obj = db->Find(root);
        if (obj == nullptr || obj->label != cond.pattern.label.atom_name()) {
          continue;
        }
      }
      roots.push_back(root);
    }
    std::vector<Assignment> next;
    for (const Assignment& a : frontier) {
      for (const Oid& root : roots) {
        MatchObject(cond.pattern, root, *db, a, &next);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  std::set<Assignment> dedup(frontier.begin(), frontier.end());
  return std::vector<Assignment>(dedup.begin(), dedup.end());
}

}  // namespace tslrw
