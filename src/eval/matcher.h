#ifndef TSLRW_EVAL_MATCHER_H_
#define TSLRW_EVAL_MATCHER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "eval/binding.h"
#include "oem/database.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Enumerates every assignment θ that satisfies all \p body
/// conditions against the sources in \p catalog (\S2 body semantics).
///
/// Each condition is matched against the *top-level* (root) objects of its
/// source — query bodies start at the roots. A set pattern member requires
/// some child to match (subset semantics: "the object may also have other
/// subobjects"), two members may match the same child, and conditions join
/// on shared variables. A condition with an empty source string is resolved
/// against \p default_source.
///
/// The returned assignments are deduplicated and deterministic (sorted by
/// binding content). Fails if a referenced source is absent from the
/// catalog.
Result<std::vector<Assignment>> EnumerateAssignments(
    const std::vector<Condition>& body, const SourceCatalog& catalog,
    const std::string& default_source);

/// \brief Candidate objects for one set-pattern member below \p parent,
/// according to the member's step kind: direct children (kChild), chains of
/// like-labeled objects (`l+`), or all proper descendants (`**`). BFS with a
/// visited set, so cyclic data terminates. \p parent must be set-valued.
///
/// Shared with the compiled-plan interpreter (src/ir/), which must agree
/// with the tree walker on candidate sets byte for byte (docs/IR.md).
std::vector<Oid> StepCandidates(const ObjectPattern& member,
                                const OemObject& parent,
                                const OemDatabase& db);

}  // namespace tslrw

#endif  // TSLRW_EVAL_MATCHER_H_
