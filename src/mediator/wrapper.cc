#include "mediator/wrapper.h"

#include "eval/evaluator.h"

namespace tslrw {

Result<WrapperResult> CatalogWrapper::Fetch(const Capability& capability,
                                            const SourceCatalog& catalog) {
  TSLRW_ASSIGN_OR_RETURN(OemDatabase data,
                         MaterializeView(capability.view, catalog));
  return WrapperResult{std::move(data), /*complete=*/true};
}

}  // namespace tslrw
