#ifndef TSLRW_MEDIATOR_WRAPPER_H_
#define TSLRW_MEDIATOR_WRAPPER_H_

#include "common/result.h"
#include "mediator/capability.h"
#include "oem/database.h"

namespace tslrw {

/// \brief What one wrapper call returns: the materialized capability view
/// plus whether the source delivered everything it had. A fault (or a
/// source-side result cap) can truncate the feed without failing it; the
/// mediator then degrades the answer's completeness instead of its
/// soundness.
struct WrapperResult {
  OemDatabase data;
  bool complete = true;
};

/// \brief The seam between Mediator::Execute and the sources (Fig. 1's
/// wrapper boxes): one call ships a capability's query template to its
/// source and returns the materialized view.
///
/// Implementations signal transient trouble with Status::Unavailable and
/// slow calls are caught by the retry layer's per-call deadline; anything
/// else (NotFound, evaluation failures) is treated as permanent. The
/// default CatalogWrapper never fails transiently; FaultInjector decorates
/// it with scripted, reproducible failure modes.
class Wrapper {
 public:
  virtual ~Wrapper() = default;

  virtual Result<WrapperResult> Fetch(const Capability& capability,
                                      const SourceCatalog& catalog) = 0;
};

/// \brief The in-process default wrapper: "sends" the view to the source by
/// materializing it over the catalog — the original synchronous behavior,
/// now behind the seam.
class CatalogWrapper : public Wrapper {
 public:
  Result<WrapperResult> Fetch(const Capability& capability,
                              const SourceCatalog& catalog) override;
};

}  // namespace tslrw

#endif  // TSLRW_MEDIATOR_WRAPPER_H_
