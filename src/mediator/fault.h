#ifndef TSLRW_MEDIATOR_FAULT_H_
#define TSLRW_MEDIATOR_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mediator/retry.h"
#include "mediator/wrapper.h"

namespace tslrw {

class Tracer;

/// \brief One scripted failure mode for a source.
struct Fault {
  enum class Kind : uint8_t {
    kNone,         ///< behave normally
    kUnavailable,  ///< the call fails with Status::Unavailable
    kFlaky,        ///< fails with probability `probability` (seeded coin)
    kSlowBy,       ///< succeeds, but consumes `ticks` of virtual time
    kTruncated,    ///< succeeds with only the first `keep_roots` roots
  };

  Kind kind = Kind::kNone;
  double probability = 1.0;  ///< kFlaky: per-attempt failure chance
  uint64_t ticks = 0;        ///< kSlowBy: virtual time the call takes
  size_t keep_roots = 0;     ///< kTruncated: roots kept in the reply

  static Fault None() { return Fault{}; }
  static Fault Unavailable() { return Fault{Kind::kUnavailable}; }
  static Fault Flaky(double p) { return Fault{Kind::kFlaky, p}; }
  static Fault SlowBy(uint64_t t) { return Fault{Kind::kSlowBy, 1.0, t}; }
  static Fault Truncated(size_t n) {
    return Fault{Kind::kTruncated, 1.0, 0, n};
  }

  std::string ToString() const;
};

/// \brief The faults a source exhibits over successive wrapper calls:
/// `scripted[i]` applies to call i (0-based); calls past the script get
/// `steady_state`. A dead source is `{.steady_state = Fault::Unavailable()}`;
/// a source that recovers after two failed calls scripts two Unavailable
/// entries and leaves steady_state at None.
struct FaultSchedule {
  std::vector<Fault> scripted;
  Fault steady_state;

  const Fault& ForCall(size_t call) const {
    return call < scripted.size() ? scripted[call] : steady_state;
  }
};

/// \brief A Wrapper decorator that injects scripted, reproducible faults.
///
/// Every failure mode the execution layer must survive — dead source,
/// flaky network, slow reply, truncated feed — is driven by per-source
/// schedules plus a seeded RNG, so a test (or a bug report) replays
/// identically from (schedule, seed). Wall time is never involved: slow
/// replies advance the shared VirtualClock.
class FaultInjector : public Wrapper {
 public:
  /// \param inner the real wrapper (not owned; must outlive this).
  /// \param seed drives the kFlaky coins.
  /// \param clock advanced by kSlowBy faults; may be null (slowness then
  ///        has nothing to be measured against and is ignored).
  FaultInjector(Wrapper* inner, uint64_t seed, VirtualClock* clock = nullptr)
      : inner_(inner), rng_(seed), clock_(clock) {}

  /// \param key a source name (faults every capability view of the
  ///        source), or a capability view name to target one endpoint of a
  ///        replicated source. View-keyed schedules take precedence.
  void SetSchedule(const std::string& key, FaultSchedule schedule) {
    schedules_[key] = std::move(schedule);
  }

  Result<WrapperResult> Fetch(const Capability& capability,
                              const SourceCatalog& catalog) override;

  /// Wrapper calls observed so far under schedule key \p key (the view
  /// name when a view-keyed schedule exists, the source name otherwise).
  size_t calls(const std::string& key) const;

  /// Makes injected faults visible in the caller's span tree: each fired
  /// fault becomes an instant event on the innermost open span — in the
  /// mediator, the `mediator.fetch` span of the affected call. Faults are
  /// scripted and the coin RNG is seeded, so the events are as
  /// deterministic as the schedule itself. Null detaches.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  Wrapper* inner_;
  DeterministicRng rng_;
  VirtualClock* clock_;
  Tracer* tracer_ = nullptr;
  std::map<std::string, FaultSchedule> schedules_;
  std::map<std::string, size_t> calls_;
};

}  // namespace tslrw

#endif  // TSLRW_MEDIATOR_FAULT_H_
