#include "mediator/fault.h"

#include <deque>

#include "common/string_util.h"
#include "obs/trace.h"

namespace tslrw {

std::string Fault::ToString() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kUnavailable:
      return "unavailable";
    case Kind::kFlaky:
      return StrCat("flaky(p=", probability, ")");
    case Kind::kSlowBy:
      return StrCat("slow(", ticks, " ticks)");
    case Kind::kTruncated:
      return StrCat("truncated(keep ", keep_roots, " roots)");
  }
  return "unknown";
}

namespace {

/// The source a capability ranges over. Validation guarantees every body
/// condition names the owning source; an (unusual) empty body falls back to
/// the view name so the schedule lookup still has a stable key.
const std::string& SourceOf(const Capability& capability) {
  return capability.view.body.empty() ? capability.view.name
                                      : capability.view.body.front().source;
}

/// The reachable portion of \p db hanging off its first \p keep roots.
OemDatabase TruncateRoots(const OemDatabase& db, size_t keep) {
  OemDatabase out(db.name());
  std::deque<Oid> frontier;
  std::set<Oid> seen;
  size_t taken = 0;
  for (const Oid& root : db.roots()) {
    if (taken++ >= keep) break;
    if (seen.insert(root).second) frontier.push_back(root);
  }
  std::vector<Oid> kept_roots(frontier.begin(), frontier.end());
  while (!frontier.empty()) {
    Oid oid = frontier.front();
    frontier.pop_front();
    const OemObject* object = db.Find(oid);
    if (object == nullptr) continue;
    if (object->is_atomic()) {
      (void)out.PutAtomic(oid, object->label, object->value.atom());
      continue;
    }
    (void)out.PutSet(oid, object->label, object->value.children());
    for (const Oid& child : object->value.children()) {
      if (seen.insert(child).second) frontier.push_back(child);
    }
  }
  for (const Oid& root : kept_roots) (void)out.AddRoot(root);
  return out;
}

}  // namespace

size_t FaultInjector::calls(const std::string& key) const {
  auto it = calls_.find(key);
  return it == calls_.end() ? 0 : it->second;
}

Result<WrapperResult> FaultInjector::Fetch(const Capability& capability,
                                           const SourceCatalog& catalog) {
  const std::string& source = SourceOf(capability);
  // A view-keyed schedule targets this one endpoint; a source-keyed one
  // faults every view of the source. The call cursor follows the key so a
  // scripted sequence advances per schedule, not per unrelated call.
  const std::string* key = &source;
  const FaultSchedule* schedule = nullptr;
  if (auto it = schedules_.find(capability.view.name);
      it != schedules_.end()) {
    key = &capability.view.name;
    schedule = &it->second;
  } else if (auto it2 = schedules_.find(source); it2 != schedules_.end()) {
    schedule = &it2->second;
  }
  size_t call = calls_[*key]++;
  Fault fault = Fault::None();
  if (schedule != nullptr) fault = schedule->ForCall(call);
  auto trace_fault = [&] {
    if (tracer_ != nullptr) {
      tracer_->EventHere(StrCat("fault: ", source, " call ", call + 1, " ",
                                fault.ToString()));
    }
  };
  switch (fault.kind) {
    case Fault::Kind::kUnavailable:
      trace_fault();
      return Status::Unavailable(
          StrCat("source ", source, " is unavailable (scripted, call ",
                 call + 1, ")"));
    case Fault::Kind::kFlaky:
      if (rng_.NextUnit() < fault.probability) {
        trace_fault();
        return Status::Unavailable(
            StrCat("source ", source, " dropped the connection (flaky, call ",
                   call + 1, ")"));
      }
      break;
    case Fault::Kind::kSlowBy:
      trace_fault();
      if (clock_ != nullptr) clock_->Advance(fault.ticks);
      break;
    case Fault::Kind::kNone:
      break;
    case Fault::Kind::kTruncated:
      trace_fault();
      break;
  }
  TSLRW_ASSIGN_OR_RETURN(WrapperResult result,
                         inner_->Fetch(capability, catalog));
  if (fault.kind == Fault::Kind::kTruncated &&
      result.data.roots().size() > fault.keep_roots) {
    result.data = TruncateRoots(result.data, fault.keep_roots);
    result.complete = false;
  }
  return result;
}

}  // namespace tslrw
