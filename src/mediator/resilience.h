#ifndef TSLRW_MEDIATOR_RESILIENCE_H_
#define TSLRW_MEDIATOR_RESILIENCE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tslrw {

/// \brief Per-endpoint circuit-breaker discipline (docs/ROBUSTNESS.md).
///
/// Liveness in the mediator is per *capability view* (one wrapper endpoint
/// each), and so are breakers: a flapping endpoint is short-circuited into
/// the degraded path instead of being re-probed — and re-timed-out — on
/// every query. The state machine is the classic closed / open / half-open
/// triangle, driven entirely by recorded fetch outcomes:
///
///  - **closed**: outcomes fill a sliding window; when at least
///    `min_samples` are present and the failure fraction reaches
///    `failure_ratio`, the breaker opens.
///  - **open**: every fetch is denied (a *short-circuit*: the caller treats
///    the endpoint as dead without spending attempts, backoff, or deadline
///    budget). After `open_events` further registry events the breaker
///    half-opens.
///  - **half-open**: up to `half_open_probes` fetches are let through;
///    `half_open_successes` successes close the breaker (window cleared),
///    any failure re-opens it and re-arms the cooldown.
///
/// Time base: breakers live across requests, but each request runs its own
/// VirtualClock starting at 0, so request clocks cannot order cross-request
/// history. The registry therefore keeps its own monotonic *event counter*
/// (every recorded outcome or short-circuit advances it) and measures the
/// open cooldown in events. Under a sequential request stream — the chaos
/// drills, the shell, the property suites at parallelism 1 — the counter is
/// a deterministic function of the request history, which is what makes
/// drill reports byte-reproducible.
struct CircuitBreakerPolicy {
  /// Master switch; the default keeps the legacy always-probe behavior.
  bool enabled = false;
  /// Sliding outcome window per endpoint.
  size_t window = 8;
  /// Minimum outcomes in the window before the breaker may trip.
  size_t min_samples = 4;
  /// Open when failures / samples >= this fraction.
  double failure_ratio = 0.5;
  /// Registry events an open breaker waits out before half-opening.
  uint64_t open_events = 8;
  /// Probe fetches admitted while half-open.
  size_t half_open_probes = 1;
  /// Probe successes required to close again.
  size_t half_open_successes = 1;
};

/// \brief Hedged-fetch discipline: when a primary endpoint is slower than a
/// percentile of its recent history, a backup fetch is issued to an
/// equivalent failover endpoint and the first success wins.
///
/// Determinism: the delay is a percentile over a bounded window of
/// *virtual-tick* latencies recorded in request order, so for a fixed seed
/// and schedule the hedge decision — and therefore the trace — replays
/// exactly. Endpoints are eligible backups only when they export an
/// α-equivalent view of the same source (Mediator::Make precomputes the
/// partner sets), so a hedge can never change the answer, only who
/// materializes it.
struct HedgePolicy {
  /// Master switch; hedging also needs at least one partner endpoint.
  bool enabled = false;
  /// Latency percentile (0..1] of the recent window that arms the hedge.
  double percentile = 0.95;
  /// Latencies remembered per endpoint.
  size_t latency_window = 16;
  /// Samples required before the percentile is trusted.
  size_t min_samples = 3;
  /// Hedge delay used until `min_samples` latencies are recorded.
  uint64_t default_delay_ticks = 4;
};

/// \brief The resilience knobs the serving layer applies to every request.
struct ResiliencePolicy {
  CircuitBreakerPolicy breaker;
  HedgePolicy hedge;
};

enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

std::string_view BreakerStateToString(BreakerState state);

/// \brief What a breaker transition looked like, so the caller (the
/// mediator) can translate it into `breaker.*` metrics and trace events
/// without the registry depending on the observability layer.
struct BreakerEvent {
  bool opened = false;
  bool closed = false;
  bool half_opened = false;
};

/// \brief Whether a fetch may proceed, and why.
struct BreakerDecision {
  /// False = short-circuit: treat the endpoint as dead right now.
  bool allowed = true;
  /// The fetch was admitted as a half-open probe.
  bool probe = false;
  /// This call transitioned the breaker open -> half-open.
  bool half_opened = false;
};

/// \brief One endpoint's breaker state, for `stats` / `/statsz`.
struct BreakerSnapshot {
  std::string endpoint;
  BreakerState state = BreakerState::kClosed;
  size_t recent_failures = 0;
  size_t recent_samples = 0;
  uint64_t opens_total = 0;
  uint64_t short_circuits_total = 0;

  /// e.g. `Y97: open (4/4 recent failures, opened 2x, 17 short-circuits)`.
  std::string ToString() const;
};

/// \brief Shared, thread-safe resilience state: per-endpoint circuit
/// breakers and latency windows, living across requests (the QueryServer
/// owns one; `ExecutionPolicy::resilience` points at it). All methods are
/// safe to call from concurrent requests; the state evolution is
/// deterministic whenever the outcome stream is (sequential drills).
class ResilienceRegistry {
 public:
  explicit ResilienceRegistry(ResiliencePolicy policy = {})
      : policy_(policy) {}

  const ResiliencePolicy& policy() const { return policy_; }
  bool breakers_enabled() const { return policy_.breaker.enabled; }
  bool hedging_enabled() const { return policy_.hedge.enabled; }

  /// Consults (and possibly advances) \p endpoint's breaker. Denials count
  /// as registry events, so a fully short-circuited endpoint still marches
  /// toward its half-open probe.
  BreakerDecision Admit(const std::string& endpoint);

  /// Records one successful fetch and its virtual-tick latency.
  BreakerEvent RecordSuccess(const std::string& endpoint,
                             uint64_t latency_ticks);

  /// Records one failed fetch attempt.
  BreakerEvent RecordFailure(const std::string& endpoint);

  /// The hedge-arming delay for \p endpoint: the configured percentile of
  /// its recent successful latencies, or the policy default before enough
  /// samples exist. Never returns 0 (a zero delay would hedge every fetch).
  uint64_t HedgeDelayTicks(const std::string& endpoint) const;

  /// All endpoint breakers, sorted by endpoint name.
  std::vector<BreakerSnapshot> Snapshot() const;

  /// True when no breaker is open or half-open (the recovery criterion the
  /// chaos drills assert).
  bool AllClosed() const;

  /// Drops all endpoint state (breakers closed, latency windows empty).
  void Reset();

 private:
  struct Endpoint {
    BreakerState state = BreakerState::kClosed;
    /// Recent outcomes, true = failure; bounded by policy.breaker.window.
    std::deque<bool> outcomes;
    uint64_t opened_at_event = 0;
    size_t probes_used = 0;
    size_t probe_successes = 0;
    uint64_t opens_total = 0;
    uint64_t short_circuits_total = 0;
    /// Recent successful latencies in ticks, sorted on demand for the
    /// percentile; bounded ring of policy.hedge.latency_window.
    std::vector<uint64_t> latencies;
    size_t latency_next = 0;
  };

  size_t RecentFailures(const Endpoint& endpoint) const;
  /// Applies one outcome to the window and runs the state machine.
  BreakerEvent Record(Endpoint& endpoint, bool failure);

  const ResiliencePolicy policy_;
  mutable std::mutex mu_;
  uint64_t events_ = 0;
  std::map<std::string, Endpoint> endpoints_;
};

}  // namespace tslrw

#endif  // TSLRW_MEDIATOR_RESILIENCE_H_
