#ifndef TSLRW_MEDIATOR_EXEC_REPORT_H_
#define TSLRW_MEDIATOR_EXEC_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tslrw {

/// \brief How much of the true answer an execution delivered.
enum class Completeness : uint8_t {
  /// Every source answered fully; the result equals the fault-free answer.
  kComplete,
  /// All plan views answered but at least one feed was truncated: the
  /// result is a sound subset of the fault-free answer.
  kPartial,
  /// No total plan survived; the result is the union of maximally-contained
  /// rewritings over the live views (\S7) — sound, maximal over what was
  /// reachable, and possibly incomplete.
  kDegraded,
};

std::string_view CompletenessToString(Completeness completeness);

/// \brief One try against one source, on the virtual clock.
struct AttemptRecord {
  uint64_t at_ticks = 0;       ///< virtual time when the attempt started
  Status outcome;              ///< OK, Unavailable, DeadlineExceeded, ...
  uint64_t backoff_ticks = 0;  ///< wait scheduled after a failed attempt
};

/// \brief Everything that happened between the mediator and one capability
/// view while executing plans: the per-attempt outcomes the operator reads
/// to learn *why* an answer is partial.
struct FetchRecord {
  std::string source;  ///< the wrapped source
  std::string view;    ///< the capability view sent to it
  std::vector<AttemptRecord> attempts;
  bool succeeded = false;
  bool truncated = false;  ///< replied, but with a partial feed
  /// An open circuit breaker denied the fetch without touching the source.
  bool short_circuited = false;
  /// The winning data came from a hedged backup endpoint, named here.
  std::string hedged_to;
};

/// \brief Counters from the rewrite search(es) behind an answer's plan
/// list: how large the candidate space was and how much per-candidate work
/// the parallel verification pipeline shared (RewriteResult's diagnostics,
/// summed over the initial search and any failover re-plan). The cache-hit
/// and wall-tick fields depend on worker scheduling — report them, but do
/// not assert exact values in tests.
struct PlanSearchStats {
  size_t candidates_generated = 0;
  size_t candidates_tested = 0;
  size_t chase_cache_hits = 0;
  size_t equiv_cache_hits = 0;
  size_t batches_dispatched = 0;
  uint64_t verify_wall_ticks = 0;

  void Add(const PlanSearchStats& other);

  /// One-line operator rendering, e.g.
  /// `31 candidate(s), 31 tested, 0 chase / 30 equiv cache hit(s), 8
  /// batch(es), 1234us verifying`.
  std::string ToString() const;
};

/// \brief The execution trace threaded through Execute/Answer: per-source
/// attempts and waits, which fallbacks fired, and the completeness verdict.
struct ExecutionReport {
  std::vector<FetchRecord> fetches;
  /// Plans taken from the cheapest-first list and actually attempted.
  size_t plans_attempted = 0;
  /// Plans skipped without an attempt because they touch a source already
  /// known dead.
  size_t plans_skipped = 0;
  /// The plan list was exhausted and planning ran again over live views.
  bool replanned = false;
  /// The answer came from a plan other than the cheapest (or after skips).
  bool failover = false;
  /// The plan search hit its candidate budget; cheaper plans may exist.
  bool plan_search_truncated = false;
  /// Rewrite-search counters behind this answer's plan list (initial
  /// search plus any failover re-plan).
  PlanSearchStats plan_search;
  Completeness completeness = Completeness::kComplete;
  /// Sources declared dead during this execution (retries exhausted).
  std::vector<std::string> unreachable_sources;
  /// Total virtual time spent waiting out backoffs.
  uint64_t backoff_ticks_total = 0;
  /// Virtual time when the answer (or the final failure) was produced.
  uint64_t finished_at_ticks = 0;
  /// Hedged backup fetches issued / won (a win = the backup's data was the
  /// answer's copy of that view).
  size_t hedges_issued = 0;
  size_t hedge_wins = 0;
  /// Virtual ticks where a hedge backup overlapped its primary: both run on
  /// the one monotonic clock, so the modeled-parallel completion time is
  /// `clock->now() - hedge_overlap_ticks` (the mediator's EffectiveNow).
  uint64_t hedge_overlap_ticks = 0;
  /// Fetches denied outright by an open circuit breaker.
  size_t breaker_short_circuits = 0;
  /// The per-request deadline expired and the answer was degraded per §7
  /// instead of failing with DeadlineExceeded.
  bool deadline_degraded = false;

  /// Locates (or appends) the record for \p view against \p source.
  FetchRecord* RecordFor(const std::string& source, const std::string& view);

  /// The operator-facing rendering (multi-line, stable order), e.g.:
  ///
  /// ```
  /// execution: degraded (2 plans attempted, 1 skipped, failover)
  ///   s1/Y97: attempt 1 at t=0 Unavailable ... -> dead
  ///   s2/Dump2: attempt 1 at t=3 OK
  /// unreachable: s1
  /// ```
  std::string ToString() const;
};

}  // namespace tslrw

#endif  // TSLRW_MEDIATOR_EXEC_REPORT_H_
