#ifndef TSLRW_MEDIATOR_CACHE_H_
#define TSLRW_MEDIATOR_CACHE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/inference.h"
#include "oem/database.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief A repository-side cache of materialized queries (\S1's Lore
/// scenario): cached query statements play the role of views, and a new
/// query is answered by rewriting it over them — "the rewriting algorithm
/// only needs the query and the cached query statements; it does not need
/// to examine the source data".
///
/// Thread safety: externally synchronized. TryAnswer is `const` but the
/// class is NOT safe for concurrent readers while an Insert /
/// InsertAndMaterialize runs — a racing mutation of `entries_` invalidates
/// iterators a reader may be walking. Callers must either (a) serialize
/// every call, or (b) treat a fully-populated QueryCache as immutable and
/// share it read-only. The serving layer (src/service/) does the latter:
/// mutations build a new cache and publish it through an immutable
/// `shared_ptr` snapshot swap (see docs/SERVING.md), so in-flight readers
/// keep the snapshot they started with and never observe a mutation.
class QueryCache {
 public:
  explicit QueryCache(const StructuralConstraints* constraints = nullptr)
      : constraints_(constraints) {}

  /// Materializes \p view over \p sources and caches statement + result.
  Status InsertAndMaterialize(const TslQuery& view,
                              const SourceCatalog& sources);

  /// Caches a pre-materialized result (e.g. shipped from another site).
  /// The database must be named after the view.
  Status Insert(const TslQuery& view, OemDatabase result);

  struct Answer {
    /// The rewriting that produced the result.
    TslQuery rewriting;
    OemDatabase result;
    /// False when the query had to be answered entirely from base data.
    bool from_cache = false;
    /// The rewriting's conditions that range over base data rather than a
    /// cached statement — empty for a pure cache hit, the whole body for a
    /// full fallback. Tells the caller exactly which work bypassed the
    /// cache (and would hit the sources again on re-execution).
    std::vector<Condition> base_conditions;
  };

  /// Answers \p query from the cache when a rewriting over the cached
  /// statements exists; cache misses fall back to evaluating over
  /// \p sources directly when \p allow_base_fallback (and partial
  /// rewritings may mix cached and base conditions). NotFound when the
  /// query cannot be answered at all under the given policy.
  Result<Answer> TryAnswer(const TslQuery& query, const SourceCatalog& sources,
                           bool allow_base_fallback) const;

  size_t size() const { return entries_.size(); }
  std::vector<TslQuery> CachedStatements() const;

 private:
  struct Entry {
    TslQuery statement;
    OemDatabase result;
  };
  std::map<std::string, Entry> entries_;
  const StructuralConstraints* constraints_;
};

}  // namespace tslrw

#endif  // TSLRW_MEDIATOR_CACHE_H_
