#ifndef TSLRW_MEDIATOR_MEDIATOR_H_
#define TSLRW_MEDIATOR_MEDIATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/result.h"
#include "constraints/inference.h"
#include "maint/footprint.h"
#include "mediator/capability.h"
#include "mediator/exec_report.h"
#include "mediator/resilience.h"
#include "mediator/retry.h"
#include "mediator/wrapper.h"
#include "oem/database.h"
#include "rewrite/rewriter.h"
#include "tsl/ast.h"

namespace tslrw {

struct IrProgram;

/// \brief Which backend evaluates rewritten plans (and the degraded
/// fallback's rule sets): the original tree walker (src/eval) or the
/// compiled flat-IR interpreter (src/ir). Answers are byte-identical —
/// same graph, same roots, same degraded semantics under faults
/// (docs/IR.md) — only the work done differs.
enum class ExecutionBackend {
  kTree,
  kIR,
};

/// \brief Lazily compiled IR for one plan. Copies of a MediatorPlan share
/// the slot (shared_ptr), so the serving layer's plan cache compiles each
/// cached plan at most once across all requests that replay it, and the
/// compiled program dies with the cached plan set (invalidated together).
struct CompiledPlanSlot {
  std::mutex mu;
  std::shared_ptr<const IrProgram> program;
};

/// \brief One executable plan produced by the capability-based rewriter: a
/// total rewriting whose body conditions all refer to capability views, so
/// every piece of work conforms to some source's interface (Fig. 2's
/// "candidate plans").
struct MediatorPlan {
  TslQuery rewriting;
  /// Names of the capability views the rewriting touches, i.e. the
  /// source-specific queries the mediator would send to wrappers.
  std::vector<std::string> views_used;
  /// A crude cost estimate (Fig. 2's optimizer hook): the number of view
  /// accesses; plans are returned cheapest-first.
  size_t cost = 0;
  /// ExecutionBackend::kIR compilation cache (see CompiledPlanSlot).
  std::shared_ptr<CompiledPlanSlot> compiled =
      std::make_shared<CompiledPlanSlot>();

  std::string ToString() const;
};

/// \brief Every plan the capability-based rewriter found, cheapest-first,
/// plus whether the search was cut off before enumerating them all.
struct MediatorPlanSet {
  std::vector<MediatorPlan> plans;
  /// The candidate search hit RewriteOptions::max_candidates (or a
  /// deadline): cheaper or additional plans may exist that were never
  /// examined. Surfaced so a "no plan" verdict is never silently wrong.
  bool truncated = false;
  /// Counters from the rewrite search that produced this list (candidate
  /// space size, shared-work cache hits, verification wall time).
  PlanSearchStats search;
  /// What the search consulted (views admitting mappings, query-body
  /// sources, fired constraints, the chased query): the maintenance layer's
  /// input for deciding whether a catalog delta can affect this entry
  /// (src/maint/invalidate.h). Captured by every Plan/PlanOverViews call.
  PlanFootprint footprint;

  // Vector-style accessors: most callers only care about the plan list.
  size_t size() const { return plans.size(); }
  bool empty() const { return plans.empty(); }
  const MediatorPlan& front() const { return plans.front(); }
  const MediatorPlan& operator[](size_t i) const { return plans[i]; }
  std::vector<MediatorPlan>::const_iterator begin() const {
    return plans.begin();
  }
  std::vector<MediatorPlan>::const_iterator end() const {
    return plans.end();
  }
};

/// \brief Knobs for fault-tolerant execution. The defaults reproduce the
/// original synchronous behavior: an in-process CatalogWrapper that never
/// fails transiently, no deadlines, degraded fallback armed but unreachable.
struct ExecutionPolicy {
  /// The wrapper "sends" source queries; not owned, may be null (an
  /// internal CatalogWrapper is used). Tests install a FaultInjector here.
  Wrapper* wrapper = nullptr;
  RetryPolicy retry;
  /// Virtual time; not owned, may be null (a per-call clock starting at 0
  /// is used). Share one clock with the FaultInjector for slow-source
  /// faults to count against deadlines.
  VirtualClock* clock = nullptr;
  /// Seed for backoff jitter; fixed seed => identical ExecutionReport.
  uint64_t seed = 0;
  /// When no total plan survives the faults, fall back to the union of
  /// maximally-contained rewritings over the live views (\S7) instead of
  /// failing. Disable to make Answer all-or-nothing.
  bool allow_degraded = true;
  /// Fail with ResourceExhausted when the plan search is truncated instead
  /// of continuing with the plans found so far.
  bool strict = false;
  /// Worker threads for candidate verification inside every plan search
  /// (RewriteOptions::parallelism): 0 = hardware concurrency, 1 = the exact
  /// sequential path. Plans are byte-identical either way.
  size_t rewrite_parallelism = 0;
  /// Optional span tree for this execution (docs/OBSERVABILITY.md): plan
  /// search, per-plan attempts, fetch retries/backoffs, failover and
  /// degraded-fallback decisions. Everything recorded is driven by the
  /// virtual clock and the seeded RNG, so a fixed seed + schedule replays
  /// the trace byte for byte. Also handed to a FaultInjector sharing the
  /// tracer so injected faults appear as events inside fetch spans.
  Tracer* tracer = nullptr;
  /// Optional metric sink (attempt/retry/failover/degraded counters plus
  /// the rewriter's metrics for in-line plan searches).
  MetricRegistry* metrics = nullptr;
  /// Optional cross-request resilience state (circuit breakers + latency
  /// windows for hedging); not owned, may be null (no breakers, no
  /// hedging). The serving layer shares one registry across requests so an
  /// endpoint's history survives snapshot swaps.
  ResilienceRegistry* resilience = nullptr;
  /// Absolute end-to-end deadline on `clock`, stamped at admission by the
  /// serving layer (0 = none). Combined with
  /// `retry.per_query_deadline_ticks` the effective deadline is the
  /// earlier of the two, so no stage — plan search, fetches, backoff —
  /// can overspend the request budget.
  uint64_t admission_deadline_ticks = 0;
  /// When the effective deadline expires mid-execution, fall into the §7
  /// degraded path (sound, possibly incomplete, possibly empty) instead of
  /// failing with DeadlineExceeded. Requires `allow_degraded`; disable to
  /// restore the PR 2 hard-error behavior.
  bool degrade_on_deadline = true;
  /// How plan rewritings (and degraded-fallback rule sets) are evaluated
  /// over the fetched view results. kIR compiles each plan once (cached on
  /// the plan, so the serving layer's plan cache amortizes compilation) and
  /// runs the flat-IR interpreter; answers are byte-identical to kTree.
  ExecutionBackend backend = ExecutionBackend::kTree;
};

/// \brief A fault-tolerant answer: the consolidated result annotated with
/// how complete it is, which sources could not be reached, and the full
/// execution trace explaining why.
///
/// `completeness == kComplete` is the fault-free answer; `kPartial` means
/// every plan view replied but some feed was truncated; `kDegraded` means
/// no total plan survived and the result is the union of
/// maximally-contained rewritings over the live views — still sound (every
/// object belongs to the true answer), no longer guaranteed complete.
struct DegradedAnswer {
  OemDatabase result;
  Completeness completeness = Completeness::kComplete;
  /// Sources whose retries were exhausted (dead for this execution).
  std::vector<std::string> unreachable_sources;
  ExecutionReport report;

  bool complete() const { return completeness == Completeness::kComplete; }
};

/// \brief The TSIMMIS-style mediator of Fig. 1/2: integrates wrapped
/// sources whose interfaces are described by capability views and answers
/// user queries through the rewriting algorithm (the Capability-Based
/// Rewriter, \S1), surviving wrapper faults via retry, plan failover, and
/// maximally-contained degradation.
class Mediator {
 public:
  /// \param sources wrapped source descriptions (validated, then run
  ///        through the static analyzer: error-level diagnostics on any
  ///        capability view make Make fail with the rendered report, and
  ///        warnings are kept in analysis() for the caller to surface).
  /// \param constraints optional DTD-derived constraints on the source
  ///        data, forwarded to the rewriter (\S3.3) and the analyzer.
  static Result<Mediator> Make(std::vector<SourceDescription> sources,
                               const StructuralConstraints* constraints =
                                   nullptr);

  /// Make + AttachCatalogIndex in one step: ingests a compiled catalog
  /// index (src/catalog — typically loaded from a `tslrw_compile -o` index
  /// file) so plan searches probe view signatures instead of chasing every
  /// view. Fails when the index was not compiled for exactly these
  /// (sources, constraints).
  static Result<Mediator> Make(std::vector<SourceDescription> sources,
                               const StructuralConstraints* constraints,
                               std::shared_ptr<const ViewSetIndex> index);

  /// Validates \p index against this mediator's views and constraints and,
  /// on success, consults it in every subsequent plan search (Plan, Answer,
  /// and the serving layer's cached searches). Plans are byte-identical
  /// with or without an index — the index only skips views that provably
  /// admit no containment mapping. Passing null detaches. On failure the
  /// previously attached index (if any) is left in place.
  Status AttachCatalogIndex(std::shared_ptr<const ViewSetIndex> index);

  /// The attached catalog index, or null.
  const std::shared_ptr<const ViewSetIndex>& catalog_index() const {
    return catalog_index_;
  }

  /// Capability-based rewriting: every total rewriting of \p query over
  /// the capability views, cheapest-first. An empty plan list means the
  /// query cannot be answered within the sources' interfaces (unless the
  /// set is flagged truncated).
  ///
  /// Parameterized capabilities are honored: a plan is kept only when each
  /// bound variable of each used capability is instantiated to a constant
  /// by the rewriting (the mediator can then fill the `$X` slot).
  ///
  /// \param rewrite_parallelism verification workers for the candidate
  ///        search (RewriteOptions::parallelism semantics); the plan list
  ///        is byte-identical for every value.
  /// \param tracer / \param metrics optional observability sinks for the
  ///        underlying rewrite search (may be null).
  /// \param deadline_clock / \param deadline_ticks optional absolute tick
  ///        deadline for the search itself (wired to
  ///        RewriteOptions::should_stop): past it the enumeration stops and
  ///        the set comes back `truncated`. The serving layer threads each
  ///        request's admission deadline here so a cold plan-cache miss
  ///        cannot overspend the request budget.
  Result<MediatorPlanSet> Plan(const TslQuery& query,
                               size_t rewrite_parallelism = 0,
                               Tracer* tracer = nullptr,
                               MetricRegistry* metrics = nullptr,
                               const VirtualClock* deadline_clock = nullptr,
                               uint64_t deadline_ticks = 0) const;

  /// Executes a plan: sends each used capability view to its wrapper, then
  /// evaluates the rewriting over the collected results and consolidates
  /// them (the fusion step of \S1's running example). The two-argument form
  /// runs the built-in CatalogWrapper with no retries — the original
  /// synchronous behavior.
  Result<OemDatabase> Execute(const MediatorPlan& plan,
                              const SourceCatalog& catalog) const;

  /// Fault-tolerant Execute: fetches through `policy.wrapper` with
  /// retry/backoff on the virtual clock and appends per-attempt outcomes
  /// to \p report (which may be null). Fails with the last source failure
  /// when retries are exhausted.
  Result<OemDatabase> Execute(const MediatorPlan& plan,
                              const SourceCatalog& catalog,
                              const ExecutionPolicy& policy,
                              ExecutionReport* report) const;

  /// Plan + fault-tolerant execution with failover (the paper's Fig. 2
  /// loop hardened):
  ///
  ///  1. walk the cheapest-first plan list, skipping plans that touch a
  ///     capability view already known dead (liveness is per endpoint, so
  ///     replicated sources fail over independently), retrying transient
  ///     failures per RetryPolicy;
  ///  2. when the list is exhausted, re-plan over the live views only;
  ///  3. when no total plan survives, fall back to the union of
  ///     maximally-contained rewritings over the live views (\S7) and
  ///     return a degraded (sound, maximally-contained) answer.
  ///
  /// NotFound when the query admits no plan even fault-free; hard errors
  /// (evaluation failures, fusion conflicts) propagate immediately.
  Result<DegradedAnswer> Answer(const TslQuery& query,
                                const SourceCatalog& catalog,
                                const ExecutionPolicy& policy = {}) const;

  /// The execution half of Answer, taking an already-computed plan list:
  /// the serving layer caches MediatorPlanSets (the exponential part) per
  /// canonical query and replays them here. \p plans must have been
  /// produced for \p query or an α-equivalent rendering of it — rewriting
  /// heads instantiate to the same ground answer objects either way, and
  /// the answer database is named after \p query. Behavior is identical to
  /// Answer given the same plan list: failover, re-planning over live
  /// views, and the \S7 degraded fallback all apply.
  ///
  /// Thread safety: const and reentrant. Concurrent calls must not share a
  /// mutable `policy.wrapper` or `policy.clock` — give each call its own
  /// (the service layer builds both per request).
  Result<DegradedAnswer> AnswerWithPlans(const TslQuery& query,
                                         const MediatorPlanSet& plans,
                                         const SourceCatalog& catalog,
                                         const ExecutionPolicy& policy =
                                             {}) const;

  const std::vector<SourceDescription>& sources() const { return sources_; }

  /// The structural constraints this mediator plans under (may be null).
  /// The maintenance layer diffs them across snapshot swaps.
  const StructuralConstraints* constraints() const { return constraints_; }

  /// The analyzer's report over all capability views, produced at Make
  /// time. Error-free by construction (errors fail Make); may carry
  /// warnings (dead views, redundant conditions, ...) worth logging.
  const AnalysisReport& analysis() const { return analysis_; }

 private:
  /// Shared state of one fault-tolerant execution.
  struct ExecContext {
    Wrapper* wrapper;
    VirtualClock* clock;
    DeterministicRng* rng;
    const RetryPolicy* retry;
    uint64_t deadline_ticks;  ///< absolute per-query deadline; 0 = none
    ExecutionReport* report;
    std::string answer_name;
    Tracer* tracer = nullptr;          ///< may be null
    MetricRegistry* metrics = nullptr; ///< may be null
    ResilienceRegistry* resilience = nullptr;  ///< may be null
    bool degrade_on_deadline = true;
    ExecutionBackend backend = ExecutionBackend::kTree;
  };

  Mediator(std::vector<SourceDescription> sources,
           const StructuralConstraints* constraints, AnalysisReport analysis)
      : sources_(std::move(sources)),
        constraints_(constraints),
        analysis_(std::move(analysis)) {}

  /// All capability views across sources.
  std::vector<TslQuery> AllViews() const;
  /// The capability owning view \p name; nullptr if unknown.
  const Capability* FindCapability(const std::string& name) const;
  /// The source whose interface exports view \p name; empty if unknown.
  std::string SourceOfView(const std::string& name) const;
  /// The sorted source names that are unreachable given the dead view set:
  /// a source is listed only when every capability view exporting it is
  /// dead (a replicated source with one live mirror still answers).
  std::vector<std::string> SourcesOfViews(
      const std::set<std::string>& views) const;

  /// The planning pipeline over an explicit view set (used both for the
  /// initial plan list and for re-planning over live views).
  Result<MediatorPlanSet> PlanOverViews(const TslQuery& query,
                                        const std::vector<TslQuery>& views,
                                        const RewriteOptions& options) const;

  /// Rewrite options for Answer-path plan searches: constraints, strict
  /// limits, and a should_stop hook wired to \p deadline_ticks on \p clock
  /// (0 = no deadline). \p clock must outlive the returned options.
  RewriteOptions PlanningOptions(const ExecutionPolicy& policy,
                                 const VirtualClock* clock,
                                 uint64_t deadline_ticks) const;

  /// The modeled "now" of this execution: the raw clock minus the ticks
  /// where a hedged backup ran concurrently with its primary. The clock is
  /// monotonic and shared (fault SlowBy advances it), so overlapping work
  /// is sequentialized on it and the overlap subtracted back out here; all
  /// deadline math uses this.
  static uint64_t EffectiveNow(const ExecContext& ctx);
  /// True when the effective per-request deadline has passed.
  static bool QueryDeadlineExceeded(const ExecContext& ctx);
  /// Populates the context fields shared by Execute/AnswerWithPlans,
  /// including the effective absolute deadline (the earlier of the retry
  /// budget and the admission deadline).
  static void InitContext(const ExecutionPolicy& policy, ExecContext* ctx);

  /// One view fetch with retry/backoff/deadlines, circuit-breaker
  /// admission, and at most one hedged backup fetch; appends attempts to
  /// the report. Failure means retries were exhausted (or a permanent
  /// error, or an open breaker short-circuited the endpoint).
  Result<WrapperResult> FetchWithRetry(const Capability& capability,
                                       const SourceCatalog& catalog,
                                       const ExecContext& ctx) const;

  /// Issues the one-shot hedged backup fetch against \p partner and
  /// returns its data renamed to \p primary_view (partner views are
  /// α-equivalent, so the bytes are the answer's either way).
  Result<WrapperResult> HedgeFetch(const Capability& partner,
                                   const std::string& primary_view,
                                   const SourceCatalog& catalog,
                                   const ExecContext& ctx) const;

  struct PlanExecution {
    OemDatabase answer;
    bool any_truncated = false;
  };
  /// The compiled IR for \p plan under ExecutionBackend::kIR: returns the
  /// plan's cached program, compiling it (under a `plan.compile` span) on
  /// first use. Thread-safe via the plan's CompiledPlanSlot mutex.
  Result<std::shared_ptr<const IrProgram>> CompiledProgramFor(
      const MediatorPlan& plan, const ExecContext& ctx) const;

  /// Fetches every view of \p plan and evaluates the rewriting. On failure
  /// \p failed_view names the capability view that could not be reached
  /// (empty for non-source errors).
  Result<PlanExecution> RunPlan(const MediatorPlan& plan,
                                const SourceCatalog& catalog,
                                const ExecContext& ctx,
                                std::string* failed_view) const;

  /// The \S7 fallback: union of maximally-contained rewritings over the
  /// capability views not in \p dead (a set of view names).
  Result<DegradedAnswer> DegradedFallback(const TslQuery& query,
                                          const SourceCatalog& catalog,
                                          const ExecContext& ctx,
                                          std::set<std::string> dead,
                                          ExecutionReport report) const;

  std::vector<SourceDescription> sources_;
  const StructuralConstraints* constraints_;
  AnalysisReport analysis_;
  /// view name -> the other capability views that are valid hedge targets
  /// for it: α-equivalent view queries (equal canonical keys) over the same
  /// source with the same bound-variable set, name-sorted. Computed once at
  /// Make; empty for views with no replica.
  std::map<std::string, std::vector<std::string>> hedge_partners_;
  /// Optional compiled catalog index (shared with the serving layer's
  /// snapshots; immutable, so copies of the mediator alias it safely).
  std::shared_ptr<const ViewSetIndex> catalog_index_;
};

}  // namespace tslrw

#endif  // TSLRW_MEDIATOR_MEDIATOR_H_
