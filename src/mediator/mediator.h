#ifndef TSLRW_MEDIATOR_MEDIATOR_H_
#define TSLRW_MEDIATOR_MEDIATOR_H_

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/result.h"
#include "constraints/inference.h"
#include "mediator/capability.h"
#include "oem/database.h"
#include "rewrite/rewriter.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief One executable plan produced by the capability-based rewriter: a
/// total rewriting whose body conditions all refer to capability views, so
/// every piece of work conforms to some source's interface (Fig. 2's
/// "candidate plans").
struct MediatorPlan {
  TslQuery rewriting;
  /// Names of the capability views the rewriting touches, i.e. the
  /// source-specific queries the mediator would send to wrappers.
  std::vector<std::string> views_used;
  /// A crude cost estimate (Fig. 2's optimizer hook): the number of view
  /// accesses; plans are returned cheapest-first.
  size_t cost = 0;

  std::string ToString() const;
};

/// \brief The TSIMMIS-style mediator of Fig. 1/2: integrates wrapped
/// sources whose interfaces are described by capability views and answers
/// user queries through the rewriting algorithm (the Capability-Based
/// Rewriter, \S1).
class Mediator {
 public:
  /// \param sources wrapped source descriptions (validated, then run
  ///        through the static analyzer: error-level diagnostics on any
  ///        capability view make Make fail with the rendered report, and
  ///        warnings are kept in analysis() for the caller to surface).
  /// \param constraints optional DTD-derived constraints on the source
  ///        data, forwarded to the rewriter (\S3.3) and the analyzer.
  static Result<Mediator> Make(std::vector<SourceDescription> sources,
                               const StructuralConstraints* constraints =
                                   nullptr);

  /// Capability-based rewriting: every total rewriting of \p query over
  /// the capability views, cheapest-first. An empty result means the query
  /// cannot be answered within the sources' interfaces.
  ///
  /// Parameterized capabilities are honored: a plan is kept only when each
  /// bound variable of each used capability is instantiated to a constant
  /// by the rewriting (the mediator can then fill the `$X` slot).
  Result<std::vector<MediatorPlan>> Plan(const TslQuery& query) const;

  /// Executes a plan: "sends" each used capability view to its wrapper by
  /// materializing it over the source data in \p catalog, then evaluates
  /// the rewriting over the collected results and consolidates them (the
  /// fusion step of \S1's running example).
  Result<OemDatabase> Execute(const MediatorPlan& plan,
                              const SourceCatalog& catalog) const;

  /// Plan + execute the cheapest plan; NotFound when no plan exists.
  Result<OemDatabase> Answer(const TslQuery& query,
                             const SourceCatalog& catalog) const;

  const std::vector<SourceDescription>& sources() const { return sources_; }

  /// The analyzer's report over all capability views, produced at Make
  /// time. Error-free by construction (errors fail Make); may carry
  /// warnings (dead views, redundant conditions, ...) worth logging.
  const AnalysisReport& analysis() const { return analysis_; }

 private:
  Mediator(std::vector<SourceDescription> sources,
           const StructuralConstraints* constraints, AnalysisReport analysis)
      : sources_(std::move(sources)),
        constraints_(constraints),
        analysis_(std::move(analysis)) {}

  /// All capability views across sources.
  std::vector<TslQuery> AllViews() const;
  /// The capability owning view \p name; nullptr if unknown.
  const Capability* FindCapability(const std::string& name) const;

  std::vector<SourceDescription> sources_;
  const StructuralConstraints* constraints_;
  AnalysisReport analysis_;
};

}  // namespace tslrw

#endif  // TSLRW_MEDIATOR_MEDIATOR_H_
