#include "mediator/resilience.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tslrw {

std::string_view BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

std::string BreakerSnapshot::ToString() const {
  std::ostringstream out;
  out << endpoint << ": " << BreakerStateToString(state) << " ("
      << recent_failures << "/" << recent_samples << " recent failures, opened "
      << opens_total << "x, " << short_circuits_total << " short-circuits)";
  return out.str();
}

size_t ResilienceRegistry::RecentFailures(const Endpoint& endpoint) const {
  size_t failures = 0;
  for (bool failed : endpoint.outcomes) {
    if (failed) ++failures;
  }
  return failures;
}

BreakerDecision ResilienceRegistry::Admit(const std::string& endpoint_name) {
  if (!policy_.breaker.enabled) return BreakerDecision{};
  std::lock_guard<std::mutex> lock(mu_);
  Endpoint& endpoint = endpoints_[endpoint_name];
  BreakerDecision decision;
  switch (endpoint.state) {
    case BreakerState::kClosed:
      return decision;
    case BreakerState::kOpen:
      if (events_ - endpoint.opened_at_event >= policy_.breaker.open_events) {
        endpoint.state = BreakerState::kHalfOpen;
        endpoint.probes_used = 1;
        endpoint.probe_successes = 0;
        decision.probe = true;
        decision.half_opened = true;
        return decision;
      }
      ++events_;
      ++endpoint.short_circuits_total;
      decision.allowed = false;
      return decision;
    case BreakerState::kHalfOpen:
      if (endpoint.probes_used < policy_.breaker.half_open_probes) {
        ++endpoint.probes_used;
        decision.probe = true;
        return decision;
      }
      ++events_;
      ++endpoint.short_circuits_total;
      decision.allowed = false;
      return decision;
  }
  return decision;
}

BreakerEvent ResilienceRegistry::Record(Endpoint& endpoint, bool failure) {
  ++events_;
  BreakerEvent event;
  const CircuitBreakerPolicy& policy = policy_.breaker;
  if (endpoint.state == BreakerState::kHalfOpen) {
    if (failure) {
      endpoint.state = BreakerState::kOpen;
      endpoint.opened_at_event = events_;
      ++endpoint.opens_total;
      event.opened = true;
    } else if (++endpoint.probe_successes >= policy.half_open_successes) {
      endpoint.state = BreakerState::kClosed;
      endpoint.outcomes.clear();
      event.closed = true;
    }
    return event;
  }
  endpoint.outcomes.push_back(failure);
  while (endpoint.outcomes.size() > policy.window) {
    endpoint.outcomes.pop_front();
  }
  if (endpoint.state == BreakerState::kClosed &&
      endpoint.outcomes.size() >= policy.min_samples) {
    const size_t failures = RecentFailures(endpoint);
    const double ratio = static_cast<double>(failures) /
                         static_cast<double>(endpoint.outcomes.size());
    if (ratio >= policy.failure_ratio) {
      endpoint.state = BreakerState::kOpen;
      endpoint.opened_at_event = events_;
      ++endpoint.opens_total;
      event.opened = true;
    }
  }
  return event;
}

BreakerEvent ResilienceRegistry::RecordSuccess(const std::string& endpoint_name,
                                               uint64_t latency_ticks) {
  std::lock_guard<std::mutex> lock(mu_);
  Endpoint& endpoint = endpoints_[endpoint_name];
  if (policy_.hedge.latency_window > 0) {
    if (endpoint.latencies.size() < policy_.hedge.latency_window) {
      endpoint.latencies.push_back(latency_ticks);
    } else {
      endpoint.latencies[endpoint.latency_next] = latency_ticks;
      endpoint.latency_next =
          (endpoint.latency_next + 1) % policy_.hedge.latency_window;
    }
  }
  if (!policy_.breaker.enabled) {
    ++events_;
    return BreakerEvent{};
  }
  return Record(endpoint, /*failure=*/false);
}

BreakerEvent ResilienceRegistry::RecordFailure(
    const std::string& endpoint_name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!policy_.breaker.enabled) {
    ++events_;
    return BreakerEvent{};
  }
  return Record(endpoints_[endpoint_name], /*failure=*/true);
}

uint64_t ResilienceRegistry::HedgeDelayTicks(
    const std::string& endpoint_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t fallback = std::max<uint64_t>(
      1, policy_.hedge.default_delay_ticks);
  auto it = endpoints_.find(endpoint_name);
  if (it == endpoints_.end() ||
      it->second.latencies.size() < policy_.hedge.min_samples) {
    return fallback;
  }
  std::vector<uint64_t> sorted = it->second.latencies;
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::clamp(policy_.hedge.percentile, 0.0, 1.0) *
                      static_cast<double>(sorted.size() - 1);
  const uint64_t value = sorted[static_cast<size_t>(std::ceil(rank))];
  return std::max<uint64_t>(1, value);
}

std::vector<BreakerSnapshot> ResilienceRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BreakerSnapshot> snapshots;
  snapshots.reserve(endpoints_.size());
  for (const auto& [name, endpoint] : endpoints_) {
    BreakerSnapshot snapshot;
    snapshot.endpoint = name;
    snapshot.state = endpoint.state;
    snapshot.recent_failures = RecentFailures(endpoint);
    snapshot.recent_samples = endpoint.outcomes.size();
    snapshot.opens_total = endpoint.opens_total;
    snapshot.short_circuits_total = endpoint.short_circuits_total;
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;  // std::map iteration is already name-sorted.
}

bool ResilienceRegistry::AllClosed() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, endpoint] : endpoints_) {
    (void)name;
    if (endpoint.state != BreakerState::kClosed) return false;
  }
  return true;
}

void ResilienceRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_.clear();
  events_ = 0;
}

}  // namespace tslrw
