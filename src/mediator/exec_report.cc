#include "mediator/exec_report.h"

#include "common/string_util.h"

namespace tslrw {

std::string_view CompletenessToString(Completeness completeness) {
  switch (completeness) {
    case Completeness::kComplete:
      return "complete";
    case Completeness::kPartial:
      return "partial";
    case Completeness::kDegraded:
      return "degraded";
  }
  return "unknown";
}

void PlanSearchStats::Add(const PlanSearchStats& other) {
  candidates_generated += other.candidates_generated;
  candidates_tested += other.candidates_tested;
  chase_cache_hits += other.chase_cache_hits;
  equiv_cache_hits += other.equiv_cache_hits;
  batches_dispatched += other.batches_dispatched;
  verify_wall_ticks += other.verify_wall_ticks;
}

std::string PlanSearchStats::ToString() const {
  return StrCat(candidates_generated, " candidate(s), ", candidates_tested,
                " tested, ", chase_cache_hits, " chase / ", equiv_cache_hits,
                " equiv cache hit(s), ", batches_dispatched, " batch(es), ",
                verify_wall_ticks, "us verifying");
}

FetchRecord* ExecutionReport::RecordFor(const std::string& source,
                                        const std::string& view) {
  for (FetchRecord& record : fetches) {
    if (record.source == source && record.view == view) return &record;
  }
  FetchRecord record;
  record.source = source;
  record.view = view;
  fetches.push_back(std::move(record));
  return &fetches.back();
}

std::string ExecutionReport::ToString() const {
  std::string out = StrCat(
      "execution: ", CompletenessToString(completeness), " (", plans_attempted,
      " plan(s) attempted, ", plans_skipped, " skipped",
      failover ? ", failover" : "", replanned ? ", replanned" : "",
      plan_search_truncated ? ", plan search truncated" : "", ")\n");
  if (plan_search.candidates_generated > 0) {
    // Only the deterministic counters: cache hits and wall ticks vary with
    // worker scheduling and would break byte-compare uses of this render.
    out += StrCat("plan search: ", plan_search.candidates_generated,
                  " candidate(s), ", plan_search.candidates_tested,
                  " tested\n");
  }
  for (const FetchRecord& fetch : fetches) {
    out += StrCat("  ", fetch.source, "/", fetch.view, ":");
    for (size_t i = 0; i < fetch.attempts.size(); ++i) {
      const AttemptRecord& attempt = fetch.attempts[i];
      out += StrCat(" attempt ", i + 1, " at t=", attempt.at_ticks, " ",
                    attempt.outcome.ok()
                        ? "OK"
                        : std::string(
                              StatusCodeToString(attempt.outcome.code())));
      if (attempt.backoff_ticks > 0) {
        out += StrCat(" (backoff ", attempt.backoff_ticks, ")");
      }
      if (i + 1 < fetch.attempts.size()) out += ";";
    }
    if (fetch.short_circuited && fetch.attempts.empty()) {
      out += " short-circuited (breaker open)";
    }
    if (!fetch.succeeded) {
      out += " -> dead";
    } else if (fetch.truncated) {
      out += " -> truncated feed";
    }
    if (!fetch.hedged_to.empty()) {
      out += StrCat(" [hedged -> ", fetch.hedged_to, "]");
    }
    out += "\n";
  }
  if (hedges_issued > 0) {
    out += StrCat("hedges: ", hedges_issued, " issued, ", hedge_wins,
                  " won, ", hedge_overlap_ticks, " overlap tick(s)\n");
  }
  if (breaker_short_circuits > 0) {
    out += StrCat("breaker: ", breaker_short_circuits, " short-circuit(s)\n");
  }
  if (deadline_degraded) {
    out += "deadline: budget exhausted, degraded per §7\n";
  }
  if (!unreachable_sources.empty()) {
    out += StrCat("unreachable: ",
                  JoinMapped(unreachable_sources, ", ",
                             [](const std::string& s) { return s; }),
                  "\n");
  }
  out += StrCat("virtual time: ", finished_at_ticks, " tick(s), ",
                backoff_ticks_total, " waiting\n");
  return out;
}

}  // namespace tslrw
