#include "mediator/capability.h"

#include <map>

#include "common/string_util.h"
#include "tsl/canonical.h"

namespace tslrw {

uint64_t ViewIdentityFingerprint(const Capability& capability) {
  std::map<Term, Term> renaming;
  const CanonicalForm canon = CanonicalizeQuery(capability.view, &renaming);
  // Translate each bound-variable name into the canonical alphabet so the
  // fingerprint stays stable under α-renaming. A bound name that does not
  // occur in the view makes every plan using the capability inadmissible
  // regardless of which name it is, so it contributes a fixed marker.
  std::set<std::string> bound_canonical;
  bool bound_missing = false;
  for (const std::string& name : capability.bound_variables) {
    bool found = false;
    for (const auto& [orig, canonical] : renaming) {
      if (orig.var_name() == name) {
        bound_canonical.insert(canonical.var_name());
        found = true;
      }
    }
    if (!found) bound_missing = true;
  }
  std::string identity = StrCat("view:", capability.view.name, "\n",
                                canon.key, "\n");
  for (const std::string& name : bound_canonical) {
    identity += StrCat("bound:", name, "\n");
  }
  if (bound_missing) identity += "bound-missing\n";
  return StableFingerprint(identity);
}

}  // namespace tslrw
