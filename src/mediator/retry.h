#ifndef TSLRW_MEDIATOR_RETRY_H_
#define TSLRW_MEDIATOR_RETRY_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "common/virtual_clock.h"

namespace tslrw {

/// \brief Deterministic 64-bit RNG (SplitMix64). Backoff jitter and fault
/// coins must replay identically under a fixed seed, so the execution layer
/// never touches std::random_device or global RNG state.
class DeterministicRng {
 public:
  explicit DeterministicRng(uint64_t seed) : state_(seed) {}

  uint64_t NextUint64();
  /// Uniform in [0, 1).
  double NextUnit();

 private:
  uint64_t state_;
};

/// \brief Retry discipline for one wrapper call, on virtual time.
struct RetryPolicy {
  /// Total tries per source per plan, including the first (0 behaves as 1).
  size_t max_attempts = 3;
  /// Backoff before the second attempt; doubles (times `multiplier`) after
  /// each further failure, capped at `max_backoff_ticks`.
  uint64_t initial_backoff_ticks = 1;
  double multiplier = 2.0;
  uint64_t max_backoff_ticks = 64;
  /// Fraction of each backoff randomized: the wait is drawn uniformly from
  /// [(1 - jitter) * b, b]. 0 disables jitter; keep it seeded either way.
  double jitter = 0.0;
  /// A single wrapper call taking longer than this (as observed on the
  /// virtual clock) counts as a failed attempt. 0 = unlimited.
  uint64_t per_call_deadline_ticks = 0;
  /// Budget for a whole Answer: planning, fetching, backoff waits, and
  /// failover all share it. 0 = unlimited.
  uint64_t per_query_deadline_ticks = 0;

  /// The backoff to wait after failed attempt number \p attempt (1-based),
  /// jittered through \p rng. Attempts at or past max_attempts get 0 (no
  /// wait precedes a try that will never happen). Saturates at
  /// `max_backoff_ticks` for any attempt number — never overflows.
  uint64_t BackoffAfterAttempt(size_t attempt, DeterministicRng* rng) const;
};

/// Converts a relative tick budget to an absolute deadline on a clock at
/// \p now, saturating instead of wrapping when `now + budget` would
/// overflow. A zero budget means "no deadline" and maps to 0.
uint64_t AbsoluteDeadlineTicks(uint64_t now, uint64_t budget_ticks);

/// Ticks left before \p deadline as seen at \p now: 0 when the deadline is
/// reached or passed, UINT64_MAX when there is no deadline (deadline 0).
/// Expired and zero budgets therefore fail fast — callers must not sleep
/// when this returns 0.
uint64_t RemainingTicks(uint64_t now, uint64_t deadline_ticks);

/// Whether a failed wrapper call is worth retrying: Unavailable (the source
/// may come back) and DeadlineExceeded (the call may be fast next time).
/// Anything else — NotFound, eval errors — is deterministic and permanent.
bool IsRetryableFailure(const Status& status);

}  // namespace tslrw

#endif  // TSLRW_MEDIATOR_RETRY_H_
