#ifndef TSLRW_MEDIATOR_CAPABILITY_H_
#define TSLRW_MEDIATOR_CAPABILITY_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief One query template a source can answer, described as a view over
/// its data (\S1: "the different and limited query capabilities of the
/// sources are often described by 'views'").
///
/// Plain capabilities are just named TSL views. The TSIMMIS twist —
/// parameterized views whose constants are placeholders (`R.A = $X`) — is
/// modeled minimally by `bound_variables`: value variables the client must
/// instantiate with constants before the query is sent. \S1 notes that
/// parameters "do not seriously affect the complexity"; we support them by
/// instantiating the parameter from the mapping the rewriter found.
struct Capability {
  /// The view definition; its name doubles as the plan's source name.
  TslQuery view;
  /// Names of view variables that must be bound to constants by the
  /// mediator before the source will accept the query (binding-pattern
  /// adornment). Empty for plain views.
  std::set<std::string> bound_variables;
};

/// \brief The description of a wrapped source: where its data lives and the
/// query templates its interface supports (Fig. 2's "capabilities" input).
struct SourceDescription {
  /// Name of the source's OEM database in the catalog.
  std::string source;
  std::vector<Capability> capabilities;
};

/// \brief Validates a set of source descriptions: views must be named,
/// unique, and range over their own source only.
Status ValidateDescriptions(const std::vector<SourceDescription>& sources);

/// \brief An α-invariant identity fingerprint for one capability: covers the
/// view's name, its canonical body/head rendering (tsl/canonical), and the
/// bound-variable set translated into the canonical variable alphabet.
/// Renaming the view's variables consistently leaves the fingerprint
/// unchanged; editing its name, its rule (beyond α), or which variables the
/// client must bind changes it. The owning source's name is deliberately
/// excluded: a capability's contribution to a plan search depends only on
/// its rule (conditions are keyed by view name), so catalog diffing over
/// these fingerprints invalidates nothing when a view merely moves between
/// source descriptions.
uint64_t ViewIdentityFingerprint(const Capability& capability);

}  // namespace tslrw

#endif  // TSLRW_MEDIATOR_CAPABILITY_H_
