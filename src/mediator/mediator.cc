#include "mediator/mediator.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"
#include "eval/evaluator.h"

namespace tslrw {

Status ValidateDescriptions(const std::vector<SourceDescription>& sources) {
  std::set<std::string> names;
  for (const SourceDescription& sd : sources) {
    if (sd.source.empty()) {
      return Status::InvalidArgument("source description without a source");
    }
    for (const Capability& cap : sd.capabilities) {
      if (cap.view.name.empty()) {
        return Status::InvalidArgument(
            StrCat("capability view of source ", sd.source, " is unnamed"));
      }
      if (!names.insert(cap.view.name).second) {
        return Status::InvalidArgument(
            StrCat("duplicate capability view name ", cap.view.name));
      }
      for (const Condition& c : cap.view.body) {
        if (c.source != sd.source) {
          return Status::InvalidArgument(
              StrCat("capability view ", cap.view.name, " of source ",
                     sd.source, " ranges over foreign source ", c.source));
        }
      }
      for (const std::string& var : cap.bound_variables) {
        bool found = false;
        for (const Term& v : cap.view.BodyVariables()) {
          found = found || v.var_name() == var;
        }
        if (!found) {
          return Status::InvalidArgument(
              StrCat("bound variable ", var, " does not occur in view ",
                     cap.view.name));
        }
      }
    }
  }
  return Status::OK();
}

std::string MediatorPlan::ToString() const {
  return StrCat("plan(cost=", cost, ", views=[",
                JoinMapped(views_used, ",",
                           [](const std::string& s) { return s; }),
                "]): ", rewriting.ToString());
}

Result<Mediator> Mediator::Make(std::vector<SourceDescription> sources,
                                const StructuralConstraints* constraints) {
  TSLRW_RETURN_NOT_OK(ValidateDescriptions(sources));
  // Run the static analyzer over all capability views: a view with
  // error-level diagnostics would poison every rewriting that uses it, so
  // refuse to build the mediator. Warnings (dead views, redundant
  // conditions) are kept for the caller to log.
  AnalyzerOptions analyzer_options;
  analyzer_options.constraints = constraints;
  std::vector<TslQuery> views;
  for (const SourceDescription& sd : sources) {
    for (const Capability& cap : sd.capabilities) {
      views.push_back(cap.view);
      analyzer_options.constraint_exempt_sources.insert(cap.view.name);
    }
  }
  AnalysisReport report = Analyzer(analyzer_options).AnalyzeRules(views);
  if (report.has_errors()) {
    return Status::IllFormedQuery(
        StrCat("capability views failed analysis:\n", report.ToString()));
  }
  return Mediator(std::move(sources), constraints, std::move(report));
}

std::vector<TslQuery> Mediator::AllViews() const {
  std::vector<TslQuery> views;
  for (const SourceDescription& sd : sources_) {
    for (const Capability& cap : sd.capabilities) views.push_back(cap.view);
  }
  return views;
}

const Capability* Mediator::FindCapability(const std::string& name) const {
  for (const SourceDescription& sd : sources_) {
    for (const Capability& cap : sd.capabilities) {
      if (cap.view.name == name) return &cap;
    }
  }
  return nullptr;
}

namespace {

/// Whether every occurrence of a bound (`$X`) variable inside \p view_term
/// was instantiated to a constant in \p inst_term. Skolem arguments are
/// inspected recursively, so parameters surfaced through head oids (e.g.
/// `yp(P',YB')`) are covered.
bool TermParametersBound(const Term& view_term, const Term& inst_term,
                         const std::set<std::string>& bound) {
  switch (view_term.kind()) {
    case TermKind::kAtom:
      return true;
    case TermKind::kVariable:
      return bound.count(view_term.var_name()) == 0 || inst_term.is_atom();
    case TermKind::kFunction: {
      if (!inst_term.is_func() ||
          inst_term.args().size() != view_term.args().size()) {
        return true;  // structure changed beyond recognition; accept
      }
      for (size_t i = 0; i < view_term.args().size(); ++i) {
        if (!TermParametersBound(view_term.args()[i], inst_term.args()[i],
                                 bound)) {
          return false;
        }
      }
      return true;
    }
  }
  return true;
}

/// Walks the capability's head and its instantiation in a rewriting body
/// in parallel, checking that every occurrence of a bound (`$X`) variable
/// was instantiated to a constant the mediator can splice in.
bool BoundVariablesInstantiated(const ObjectPattern& view_head,
                                const ObjectPattern& instantiated,
                                const std::set<std::string>& bound) {
  auto needs_constant = [&bound](const Term& t) {
    return t.is_var() && bound.count(t.var_name()) > 0;
  };
  if (!TermParametersBound(view_head.oid, instantiated.oid, bound)) {
    return false;
  }
  if (needs_constant(view_head.label) && !instantiated.label.is_atom()) {
    return false;
  }
  if (view_head.value.is_term() && needs_constant(view_head.value.term()) &&
      !(instantiated.value.is_term() &&
        instantiated.value.term().is_atom())) {
    return false;
  }
  if (view_head.value.is_set() && instantiated.value.is_set()) {
    const SetPattern& vh = view_head.value.set();
    const SetPattern& in = instantiated.value.set();
    if (vh.size() != in.size()) return true;  // structure changed; accept
    for (size_t i = 0; i < vh.size(); ++i) {
      if (!BoundVariablesInstantiated(vh[i], in[i], bound)) return false;
    }
  }
  return true;
}

}  // namespace

Result<std::vector<MediatorPlan>> Mediator::Plan(
    const TslQuery& query) const {
  RewriteOptions options;
  options.constraints = constraints_;
  options.require_total = true;  // every condition must fit some interface
  TSLRW_ASSIGN_OR_RETURN(RewriteResult rewrites,
                         RewriteQuery(query, AllViews(), options));
  std::vector<MediatorPlan> plans;
  for (TslQuery& rw : rewrites.rewritings) {
    MediatorPlan plan;
    std::set<std::string> used;
    bool admissible = true;
    for (const Condition& c : rw.body) {
      const Capability* cap = FindCapability(c.source);
      if (cap == nullptr) {
        admissible = false;  // defensive; total rewritings only use views
        break;
      }
      if (!cap->bound_variables.empty() &&
          !BoundVariablesInstantiated(cap->view.head, c.pattern,
                                      cap->bound_variables)) {
        admissible = false;
        break;
      }
      used.insert(c.source);
    }
    if (!admissible) continue;
    plan.views_used.assign(used.begin(), used.end());
    plan.cost = rw.body.size();
    plan.rewriting = std::move(rw);
    plans.push_back(std::move(plan));
  }
  std::sort(plans.begin(), plans.end(),
            [](const MediatorPlan& a, const MediatorPlan& b) {
              return a.cost < b.cost;
            });
  return plans;
}

Result<OemDatabase> Mediator::Execute(const MediatorPlan& plan,
                                      const SourceCatalog& catalog) const {
  // "Send" each source-specific query to its wrapper: materialize the
  // capability view over the source data.
  SourceCatalog view_results;
  for (const std::string& view_name : plan.views_used) {
    const Capability* cap = FindCapability(view_name);
    if (cap == nullptr) {
      return Status::NotFound(StrCat("unknown capability view ", view_name));
    }
    TSLRW_ASSIGN_OR_RETURN(OemDatabase result,
                           MaterializeView(cap->view, catalog));
    view_results.Put(std::move(result));
  }
  // Collect + consolidate at the mediator: evaluate the rewriting over the
  // wrapper results (fusion merges per-source fragments by oid).
  EvalOptions eval;
  eval.answer_name = plan.rewriting.name.empty() ? "answer"
                                                 : plan.rewriting.name;
  return Evaluate(plan.rewriting, view_results, eval);
}

Result<OemDatabase> Mediator::Answer(const TslQuery& query,
                                     const SourceCatalog& catalog) const {
  TSLRW_ASSIGN_OR_RETURN(std::vector<MediatorPlan> plans, Plan(query));
  if (plans.empty()) {
    return Status::NotFound(
        "no capability-conformant plan answers this query");
  }
  return Execute(plans.front(), catalog);
}

}  // namespace tslrw
