#include "mediator/mediator.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <tuple>

#include "common/string_util.h"
#include "eval/evaluator.h"
#include "ir/compiler.h"
#include "ir/interp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewrite/contained.h"
#include "rewrite/view_index.h"
#include "tsl/canonical.h"

namespace tslrw {

namespace {

/// Groups capability views into hedge-partner sets: two views are mutual
/// backups when they are α-equivalent (equal canonical keys — same head
/// shape, so materialized replies carry identical object structure), range
/// over the same source, and expose the same bound-variable set. Hedging to
/// a partner can therefore never change the answer bytes, only which
/// endpoint produced them.
std::map<std::string, std::vector<std::string>> ComputeHedgePartners(
    const std::vector<SourceDescription>& sources) {
  struct GroupKey {
    std::string source;
    std::string canonical;
    std::set<std::string> bound;
    bool operator<(const GroupKey& other) const {
      return std::tie(source, canonical, bound) <
             std::tie(other.source, other.canonical, other.bound);
    }
  };
  std::map<GroupKey, std::vector<std::string>> groups;
  for (const SourceDescription& sd : sources) {
    for (const Capability& cap : sd.capabilities) {
      GroupKey key{sd.source, CanonicalizeQuery(cap.view).key,
                   cap.bound_variables};
      groups[key].push_back(cap.view.name);
    }
  }
  std::map<std::string, std::vector<std::string>> partners;
  for (auto& [key, members] : groups) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end());
    for (const std::string& name : members) {
      std::vector<std::string> others;
      for (const std::string& other : members) {
        if (other != name) others.push_back(other);
      }
      partners[name] = std::move(others);
    }
  }
  return partners;
}

}  // namespace

Status ValidateDescriptions(const std::vector<SourceDescription>& sources) {
  std::set<std::string> names;
  for (const SourceDescription& sd : sources) {
    if (sd.source.empty()) {
      return Status::InvalidArgument("source description without a source");
    }
    for (const Capability& cap : sd.capabilities) {
      if (cap.view.name.empty()) {
        return Status::InvalidArgument(
            StrCat("capability view of source ", sd.source, " is unnamed"));
      }
      if (!names.insert(cap.view.name).second) {
        return Status::InvalidArgument(
            StrCat("duplicate capability view name ", cap.view.name));
      }
      for (const Condition& c : cap.view.body) {
        if (c.source != sd.source) {
          return Status::InvalidArgument(
              StrCat("capability view ", cap.view.name, " of source ",
                     sd.source, " ranges over foreign source ", c.source));
        }
      }
      for (const std::string& var : cap.bound_variables) {
        bool found = false;
        for (const Term& v : cap.view.BodyVariables()) {
          found = found || v.var_name() == var;
        }
        if (!found) {
          return Status::InvalidArgument(
              StrCat("bound variable ", var, " does not occur in view ",
                     cap.view.name));
        }
      }
    }
  }
  return Status::OK();
}

std::string MediatorPlan::ToString() const {
  return StrCat("plan(cost=", cost, ", views=[",
                JoinMapped(views_used, ",",
                           [](const std::string& s) { return s; }),
                "]): ", rewriting.ToString());
}

Result<Mediator> Mediator::Make(std::vector<SourceDescription> sources,
                                const StructuralConstraints* constraints) {
  TSLRW_RETURN_NOT_OK(ValidateDescriptions(sources));
  // Run the static analyzer over all capability views: a view with
  // error-level diagnostics would poison every rewriting that uses it, so
  // refuse to build the mediator. Warnings (dead views, redundant
  // conditions) are kept for the caller to log.
  AnalyzerOptions analyzer_options;
  analyzer_options.constraints = constraints;
  std::vector<TslQuery> views;
  for (const SourceDescription& sd : sources) {
    for (const Capability& cap : sd.capabilities) {
      views.push_back(cap.view);
      analyzer_options.constraint_exempt_sources.insert(cap.view.name);
    }
  }
  AnalysisReport report = Analyzer(analyzer_options).AnalyzeRules(views);
  if (report.has_errors()) {
    return Status::IllFormedQuery(
        StrCat("capability views failed analysis:\n", report.ToString()));
  }
  Mediator mediator(std::move(sources), constraints, std::move(report));
  mediator.hedge_partners_ = ComputeHedgePartners(mediator.sources_);
  return mediator;
}

Result<Mediator> Mediator::Make(std::vector<SourceDescription> sources,
                                const StructuralConstraints* constraints,
                                std::shared_ptr<const ViewSetIndex> index) {
  TSLRW_ASSIGN_OR_RETURN(Mediator mediator,
                         Make(std::move(sources), constraints));
  TSLRW_RETURN_NOT_OK(mediator.AttachCatalogIndex(std::move(index)));
  return mediator;
}

Status Mediator::AttachCatalogIndex(
    std::shared_ptr<const ViewSetIndex> index) {
  if (index == nullptr) {
    catalog_index_ = nullptr;
    return Status::OK();
  }
  // The index's stored chase outcomes are only exact for the (views,
  // constraints) pair it was compiled under; refuse anything else rather
  // than serve plans from stale structure.
  TSLRW_RETURN_NOT_OK(index->ValidateAgainst(AllViews(), constraints_));
  catalog_index_ = std::move(index);
  return Status::OK();
}

std::vector<TslQuery> Mediator::AllViews() const {
  std::vector<TslQuery> views;
  for (const SourceDescription& sd : sources_) {
    for (const Capability& cap : sd.capabilities) views.push_back(cap.view);
  }
  return views;
}

const Capability* Mediator::FindCapability(const std::string& name) const {
  for (const SourceDescription& sd : sources_) {
    for (const Capability& cap : sd.capabilities) {
      if (cap.view.name == name) return &cap;
    }
  }
  return nullptr;
}

std::string Mediator::SourceOfView(const std::string& name) const {
  for (const SourceDescription& sd : sources_) {
    for (const Capability& cap : sd.capabilities) {
      if (cap.view.name == name) return sd.source;
    }
  }
  return "";
}

std::vector<std::string> Mediator::SourcesOfViews(
    const std::set<std::string>& views) const {
  // A source is unreachable only when every endpoint exporting it is dead:
  // a replicated source with one live mirror still answers. Per-endpoint
  // detail stays in ExecutionReport::fetches.
  std::map<std::string, bool> every_view_dead;
  for (const SourceDescription& sd : sources_) {
    for (const Capability& cap : sd.capabilities) {
      bool is_dead = views.count(cap.view.name) > 0;
      auto [it, inserted] = every_view_dead.try_emplace(sd.source, is_dead);
      if (!inserted) it->second = it->second && is_dead;
    }
  }
  std::vector<std::string> out;
  for (const auto& [source, all_dead] : every_view_dead) {
    if (all_dead) out.push_back(source);
  }
  return out;
}

namespace {

/// Whether every occurrence of a bound (`$X`) variable inside \p view_term
/// was instantiated to a constant in \p inst_term. Skolem arguments are
/// inspected recursively, so parameters surfaced through head oids (e.g.
/// `yp(P',YB')`) are covered.
bool TermParametersBound(const Term& view_term, const Term& inst_term,
                         const std::set<std::string>& bound) {
  switch (view_term.kind()) {
    case TermKind::kAtom:
      return true;
    case TermKind::kVariable:
      return bound.count(view_term.var_name()) == 0 || inst_term.is_atom();
    case TermKind::kFunction: {
      if (!inst_term.is_func() ||
          inst_term.args().size() != view_term.args().size()) {
        return true;  // structure changed beyond recognition; accept
      }
      for (size_t i = 0; i < view_term.args().size(); ++i) {
        if (!TermParametersBound(view_term.args()[i], inst_term.args()[i],
                                 bound)) {
          return false;
        }
      }
      return true;
    }
  }
  return true;
}

/// Walks the capability's head and its instantiation in a rewriting body
/// in parallel, checking that every occurrence of a bound (`$X`) variable
/// was instantiated to a constant the mediator can splice in.
bool BoundVariablesInstantiated(const ObjectPattern& view_head,
                                const ObjectPattern& instantiated,
                                const std::set<std::string>& bound) {
  auto needs_constant = [&bound](const Term& t) {
    return t.is_var() && bound.count(t.var_name()) > 0;
  };
  if (!TermParametersBound(view_head.oid, instantiated.oid, bound)) {
    return false;
  }
  if (needs_constant(view_head.label) && !instantiated.label.is_atom()) {
    return false;
  }
  if (view_head.value.is_term() && needs_constant(view_head.value.term()) &&
      !(instantiated.value.is_term() &&
        instantiated.value.term().is_atom())) {
    return false;
  }
  if (view_head.value.is_set() && instantiated.value.is_set()) {
    const SetPattern& vh = view_head.value.set();
    const SetPattern& in = instantiated.value.set();
    if (vh.size() != in.size()) return true;  // structure changed; accept
    for (size_t i = 0; i < vh.size(); ++i) {
      if (!BoundVariablesInstantiated(vh[i], in[i], bound)) return false;
    }
  }
  return true;
}

}  // namespace

Result<MediatorPlanSet> Mediator::PlanOverViews(
    const TslQuery& query, const std::vector<TslQuery>& views,
    const RewriteOptions& options) const {
  RewriteOptions rewrite_options = options;
  rewrite_options.require_total = true;  // every condition must fit some
                                         // interface
  TSLRW_ASSIGN_OR_RETURN(RewriteResult rewrites,
                         RewriteQuery(query, views, rewrite_options));
  MediatorPlanSet set;
  set.truncated = rewrites.truncated;
  set.search.candidates_generated = rewrites.candidates_generated;
  set.search.candidates_tested = rewrites.candidates_tested;
  set.search.chase_cache_hits = rewrites.chase_cache_hits;
  set.search.equiv_cache_hits = rewrites.equiv_cache_hits;
  set.search.batches_dispatched = rewrites.batches_dispatched;
  set.search.verify_wall_ticks = rewrites.verify_wall_ticks;
  // Dependency footprint for the maintenance layer (maint/footprint.h):
  // which views the search consulted, under which identity fingerprints,
  // and what the query itself referenced.
  set.footprint.captured = true;
  set.footprint.view_names = std::move(rewrites.views_touched);
  set.footprint.fired_constraints = std::move(rewrites.fired_constraints);
  set.footprint.chased_query = std::move(rewrites.chased_query);
  set.footprint.query_unsatisfiable = rewrites.query_unsatisfiable;
  for (const Condition& c : query.body) {
    set.footprint.query_sources.insert(c.source);
  }
  for (const std::string& name : set.footprint.view_names) {
    const Capability* cap = FindCapability(name);
    if (cap != nullptr) {
      set.footprint.view_fingerprints[name] = ViewIdentityFingerprint(*cap);
    }
  }
  for (TslQuery& rw : rewrites.rewritings) {
    MediatorPlan plan;
    std::set<std::string> used;
    bool admissible = true;
    for (const Condition& c : rw.body) {
      const Capability* cap = FindCapability(c.source);
      if (cap == nullptr) {
        admissible = false;  // defensive; total rewritings only use views
        break;
      }
      if (!cap->bound_variables.empty() &&
          !BoundVariablesInstantiated(cap->view.head, c.pattern,
                                      cap->bound_variables)) {
        admissible = false;
        break;
      }
      used.insert(c.source);
    }
    if (!admissible) continue;
    plan.views_used.assign(used.begin(), used.end());
    plan.cost = rw.body.size();
    plan.rewriting = std::move(rw);
    set.plans.push_back(std::move(plan));
  }
  std::sort(set.plans.begin(), set.plans.end(),
            [](const MediatorPlan& a, const MediatorPlan& b) {
              return a.cost < b.cost;
            });
  return set;
}

Result<MediatorPlanSet> Mediator::Plan(const TslQuery& query,
                                       size_t rewrite_parallelism,
                                       Tracer* tracer,
                                       MetricRegistry* metrics,
                                       const VirtualClock* deadline_clock,
                                       uint64_t deadline_ticks) const {
  RewriteOptions options;
  options.constraints = constraints_;
  options.parallelism = rewrite_parallelism;
  options.tracer = tracer;
  options.metrics = metrics;
  options.view_index = catalog_index_.get();
  if (deadline_clock != nullptr && deadline_ticks > 0) {
    options.should_stop = [deadline_clock, deadline_ticks] {
      return deadline_clock->now() >= deadline_ticks;
    };
  }
  ScopedSpan span(tracer, "mediator.plan_search");
  CountIf(metrics, "mediator.plan_searches");
  Result<MediatorPlanSet> set = PlanOverViews(query, AllViews(), options);
  if (set.ok()) {
    span.Annotate("plans", static_cast<uint64_t>(set->size()));
    span.Annotate("truncated", set->truncated ? "true" : "false");
  }
  return set;
}

uint64_t Mediator::EffectiveNow(const ExecContext& ctx) {
  const uint64_t now = ctx.clock->now();
  const uint64_t overlap = ctx.report->hedge_overlap_ticks;
  return now >= overlap ? now - overlap : 0;
}

bool Mediator::QueryDeadlineExceeded(const ExecContext& ctx) {
  return ctx.deadline_ticks > 0 && EffectiveNow(ctx) >= ctx.deadline_ticks;
}

namespace {

/// The effective end-to-end deadline: the earlier of the per-query retry
/// budget (relative to now, converted here) and the admission deadline
/// stamped by the serving layer (already absolute on the shared clock).
uint64_t EffectiveDeadline(const ExecutionPolicy& policy,
                           const VirtualClock* clock) {
  uint64_t deadline = AbsoluteDeadlineTicks(
      clock->now(), policy.retry.per_query_deadline_ticks);
  if (policy.admission_deadline_ticks > 0 &&
      (deadline == 0 || policy.admission_deadline_ticks < deadline)) {
    deadline = policy.admission_deadline_ticks;
  }
  return deadline;
}

}  // namespace

void Mediator::InitContext(const ExecutionPolicy& policy, ExecContext* ctx) {
  ctx->retry = &policy.retry;
  ctx->deadline_ticks = EffectiveDeadline(policy, ctx->clock);
  ctx->tracer = policy.tracer;
  ctx->metrics = policy.metrics;
  ctx->resilience = policy.resilience;
  ctx->degrade_on_deadline = policy.degrade_on_deadline &&
                             policy.allow_degraded;
  ctx->backend = policy.backend;
}

Result<WrapperResult> Mediator::HedgeFetch(const Capability& partner,
                                           const std::string& primary_view,
                                           const SourceCatalog& catalog,
                                           const ExecContext& ctx) const {
  Result<WrapperResult> fetched = ctx.wrapper->Fetch(partner, catalog);
  if (fetched.ok()) {
    // Partner views are α-equivalent over the same source, so the
    // materialized bytes are the answer's either way; evaluation looks the
    // data up under the primary view's name.
    fetched->data.set_name(primary_view);
  }
  return fetched;
}

Result<WrapperResult> Mediator::FetchWithRetry(const Capability& capability,
                                               const SourceCatalog& catalog,
                                               const ExecContext& ctx) const {
  const std::string& view_name = capability.view.name;
  const std::string source = SourceOfView(view_name);
  FetchRecord* record = ctx.report->RecordFor(source, view_name);
  ScopedSpan fetch_span(ctx.tracer, "mediator.fetch");
  fetch_span.Annotate("view", view_name);
  fetch_span.Annotate("source", source);
  ResilienceRegistry* res = ctx.resilience;

  // Feeds a fetch outcome back into the shared registry (breaker windows
  // and hedge-latency history) and surfaces any state transition.
  auto record_outcome = [&](const std::string& endpoint, bool ok,
                            uint64_t latency_ticks) {
    if (res == nullptr) return;
    BreakerEvent event = ok ? res->RecordSuccess(endpoint, latency_ticks)
                            : res->RecordFailure(endpoint);
    if (event.opened) {
      fetch_span.Event(StrCat("breaker opened: ", endpoint));
      CountIf(ctx.metrics, "breaker.opened");
    }
    if (event.closed) {
      fetch_span.Event(StrCat("breaker closed: ", endpoint));
      CountIf(ctx.metrics, "breaker.closed");
    }
  };

  // Circuit-breaker admission: one decision per fetch, so a half-open
  // probe admits the whole retried call and its outcome decides whether
  // the breaker closes or re-opens.
  if (res != nullptr && res->breakers_enabled()) {
    BreakerDecision decision = res->Admit(view_name);
    if (decision.half_opened) {
      fetch_span.Event(StrCat("breaker half-open: ", view_name));
      CountIf(ctx.metrics, "breaker.half_opened");
    }
    if (!decision.allowed) {
      // Short-circuit: the endpoint is known dead; spend no attempts, no
      // backoff, and no deadline budget on it. Unavailable routes the view
      // into the regular dead-view failover/degraded path.
      record->short_circuited = true;
      ++ctx.report->breaker_short_circuits;
      fetch_span.Annotate("short_circuited", "true");
      CountIf(ctx.metrics, "breaker.short_circuits");
      return Status::Unavailable(StrCat("circuit breaker open for view ",
                                        view_name, " of source ", source));
    }
  }

  // Hedge eligibility: enabled, and this view has α-equivalent replica
  // endpoints to fail over to. At most one backup per fetch.
  const std::vector<std::string>* partners = nullptr;
  if (res != nullptr && res->hedging_enabled()) {
    auto it = hedge_partners_.find(view_name);
    if (it != hedge_partners_.end()) partners = &it->second;
  }
  bool hedged = false;

  const size_t max_attempts = std::max<size_t>(ctx.retry->max_attempts, 1);
  Status last = Status::Unavailable(
      StrCat("source ", source, " unreachable"));
  for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (QueryDeadlineExceeded(ctx)) {
      fetch_span.Event("query deadline exceeded before attempt");
      CountIf(ctx.metrics, "mediator.fetch_deadline_aborts");
      return Status::DeadlineExceeded(
          StrCat("request deadline (t=", ctx.deadline_ticks,
                 ") exceeded before attempt ", attempt, " against ",
                 source));
    }
    const uint64_t started = ctx.clock->now();
    // The hedge trigger is fixed *before* the primary is issued (as a live
    // system would arm a timer): the primary's own latency must not move
    // the percentile that decides whether to hedge it.
    const uint64_t hedge_delay =
        partners != nullptr ? res->HedgeDelayTicks(view_name) : 0;
    CountIf(ctx.metrics, "mediator.fetch_attempts");
    if (attempt > 1) CountIf(ctx.metrics, "mediator.retries");
    Result<WrapperResult> fetched = ctx.wrapper->Fetch(capability, catalog);
    const uint64_t elapsed = ctx.clock->now() - started;
    Status outcome = fetched.ok() ? Status::OK() : fetched.status();
    if (outcome.ok() && ctx.retry->per_call_deadline_ticks > 0 &&
        elapsed > ctx.retry->per_call_deadline_ticks) {
      // The reply arrived after the caller stopped listening: a timeout,
      // not a success, however complete the data was.
      outcome = Status::DeadlineExceeded(
          StrCat("view ", view_name, " took ", elapsed,
                 " tick(s); the per-call deadline is ",
                 ctx.retry->per_call_deadline_ticks));
    }
    record->attempts.push_back(AttemptRecord{started, outcome, 0});
    fetch_span.Event(StrCat("attempt ", attempt, ": ",
                            outcome.ok()
                                ? "ok"
                                : StatusCodeToString(outcome.code())));
    record_outcome(view_name, outcome.ok(), elapsed);

    // Hedge: in a live system the backup fires while the primary is still
    // pending, once the wait passes the endpoint's recent latency
    // percentile. The virtual clock is monotonic and shared, so the backup
    // runs after the primary here and the concurrency is reconstructed
    // arithmetically: backup issue time = started + delay, both completion
    // times are compared, and the overlap is subtracted from all later
    // deadline math via EffectiveNow.
    if (partners != nullptr && !hedged && elapsed > hedge_delay &&
        (outcome.ok() || IsRetryableFailure(outcome))) {
      const Capability* partner_cap = nullptr;
      for (const std::string& partner_name : *partners) {
        const Capability* candidate = FindCapability(partner_name);
        if (candidate == nullptr) continue;
        if (res->breakers_enabled() && !res->Admit(partner_name).allowed) {
          CountIf(ctx.metrics, "breaker.short_circuits");
          continue;  // the backup endpoint is known dead too
        }
        partner_cap = candidate;
        break;
      }
      if (partner_cap != nullptr) {
        hedged = true;
        const std::string& partner_name = partner_cap->view.name;
        ++ctx.report->hedges_issued;
        fetch_span.Event(StrCat("hedge issued -> ", partner_name, " (delay ",
                                hedge_delay, ")"));
        CountIf(ctx.metrics, "mediator.hedges_issued");
        const uint64_t backup_started = ctx.clock->now();
        Result<WrapperResult> backup =
            HedgeFetch(*partner_cap, view_name, catalog, ctx);
        const uint64_t backup_elapsed = ctx.clock->now() - backup_started;
        Status backup_outcome = backup.ok() ? Status::OK() : backup.status();
        if (backup_outcome.ok() && ctx.retry->per_call_deadline_ticks > 0 &&
            backup_elapsed > ctx.retry->per_call_deadline_ticks) {
          backup_outcome = Status::DeadlineExceeded(
              StrCat("hedge to view ", partner_name, " took ",
                     backup_elapsed, " tick(s); the per-call deadline is ",
                     ctx.retry->per_call_deadline_ticks));
        }
        FetchRecord* partner_record =
            ctx.report->RecordFor(source, partner_name);
        // RecordFor may grow the fetches vector; the primary's record
        // pointer from the loop head is invalid past this point.
        record = ctx.report->RecordFor(source, view_name);
        partner_record->attempts.push_back(
            AttemptRecord{backup_started, backup_outcome, 0});
        partner_record->succeeded =
            partner_record->succeeded || backup_outcome.ok();
        record_outcome(partner_name, backup_outcome.ok(), backup_elapsed);
        // Modeled times relative to the primary's start: the backup was
        // issued at `hedge_delay` and completed at hedge_delay + its own
        // latency; the race resolves on those, ties to the primary.
        const uint64_t backup_done = hedge_delay + backup_elapsed;
        uint64_t completion;  // modeled end of the whole hedged fetch
        bool backup_wins;
        if (outcome.ok() && backup_outcome.ok()) {
          backup_wins = backup_done < elapsed;
          completion = std::min(elapsed, backup_done);
        } else if (outcome.ok()) {
          backup_wins = false;
          completion = elapsed;
        } else if (backup_outcome.ok()) {
          backup_wins = true;
          completion = backup_done;
        } else {
          backup_wins = false;
          completion = std::max(elapsed, backup_done);
        }
        // The clock ran primary + backup back to back; credit back the
        // ticks where they would have overlapped.
        ctx.report->hedge_overlap_ticks +=
            (elapsed + backup_elapsed) - completion;
        if (backup_wins) {
          ++ctx.report->hedge_wins;
          record->succeeded = true;
          record->truncated = record->truncated || !backup->complete;
          record->hedged_to = partner_name;
          fetch_span.Event(StrCat("hedge won: ", partner_name));
          CountIf(ctx.metrics, "mediator.hedge_wins");
          if (!backup->complete) {
            fetch_span.Annotate("truncated", "true");
            CountIf(ctx.metrics, "mediator.fetches_truncated");
          }
          CountIf(ctx.metrics, "mediator.fetches_ok");
          ObserveIf(ctx.metrics, "mediator.fetch_attempts_per_call",
                    attempt);
          return backup;
        }
        fetch_span.Event("hedge lost");
      }
    }

    if (outcome.ok()) {
      record->succeeded = true;
      record->truncated = record->truncated || !fetched->complete;
      if (!fetched->complete) {
        fetch_span.Annotate("truncated", "true");
        CountIf(ctx.metrics, "mediator.fetches_truncated");
      }
      CountIf(ctx.metrics, "mediator.fetches_ok");
      ObserveIf(ctx.metrics, "mediator.fetch_attempts_per_call", attempt);
      return fetched;
    }
    last = outcome;
    if (!IsRetryableFailure(outcome)) {
      CountIf(ctx.metrics, "mediator.fetch_permanent_failures");
      return outcome;
    }
    if (attempt < max_attempts) {
      uint64_t backoff = ctx.retry->BackoffAfterAttempt(attempt, ctx.rng);
      if (ctx.deadline_ticks > 0) {
        // Never sleep past the request deadline: a zero or expired budget
        // fails fast at the next loop head without waiting at all, and a
        // nearly-spent one waits only the remainder.
        backoff = std::min(
            backoff, RemainingTicks(EffectiveNow(ctx), ctx.deadline_ticks));
      }
      if (backoff > 0) {
        ctx.clock->Advance(backoff);
        record->attempts.back().backoff_ticks = backoff;
        ctx.report->backoff_ticks_total += backoff;
        fetch_span.Event(StrCat("backoff ", backoff, " tick(s)"));
        CountIf(ctx.metrics, "mediator.backoff_ticks", backoff);
      }
    }
  }
  fetch_span.Annotate("exhausted", "true");
  CountIf(ctx.metrics, "mediator.fetches_exhausted");
  return last;
}

Result<Mediator::PlanExecution> Mediator::RunPlan(
    const MediatorPlan& plan, const SourceCatalog& catalog,
    const ExecContext& ctx, std::string* failed_view) const {
  failed_view->clear();
  SourceCatalog view_results;
  PlanExecution exec;
  for (const std::string& view_name : plan.views_used) {
    const Capability* cap = FindCapability(view_name);
    if (cap == nullptr) {
      return Status::NotFound(StrCat("unknown capability view ", view_name));
    }
    Result<WrapperResult> fetched = FetchWithRetry(*cap, catalog, ctx);
    if (!fetched.ok()) {
      if (IsRetryableFailure(fetched.status())) {
        *failed_view = view_name;
      }
      return fetched.status();
    }
    exec.any_truncated = exec.any_truncated || !fetched->complete;
    view_results.Put(std::move(fetched->data));
  }
  // Collect + consolidate at the mediator: evaluate the rewriting over the
  // wrapper results (fusion merges per-source fragments by oid).
  if (ctx.backend == ExecutionBackend::kIR) {
    TSLRW_ASSIGN_OR_RETURN(std::shared_ptr<const IrProgram> program,
                           CompiledProgramFor(plan, ctx));
    ScopedSpan exec_span(ctx.tracer, "plan.exec_ir");
    exec_span.Annotate("ops", static_cast<uint64_t>(program->ops.size()));
    IrExecOptions ir;
    ir.answer_name = ctx.answer_name;
    ir.metrics = ctx.metrics;
    TSLRW_ASSIGN_OR_RETURN(exec.answer,
                           ExecuteIr(*program, view_results, ir));
    return exec;
  }
  EvalOptions eval;
  eval.answer_name = ctx.answer_name;
  eval.metrics = ctx.metrics;
  eval.tracer = ctx.tracer;
  TSLRW_ASSIGN_OR_RETURN(exec.answer,
                         Evaluate(plan.rewriting, view_results, eval));
  return exec;
}

Result<std::shared_ptr<const IrProgram>> Mediator::CompiledProgramFor(
    const MediatorPlan& plan, const ExecContext& ctx) const {
  std::lock_guard<std::mutex> lock(plan.compiled->mu);
  if (plan.compiled->program != nullptr) {
    CountIf(ctx.metrics, "ir.plan_cache_hits");
    return plan.compiled->program;
  }
  ScopedSpan compile_span(ctx.tracer, "plan.compile");
  PlanCompiler compiler(IrPassOptions{}, ctx.metrics);
  TSLRW_ASSIGN_OR_RETURN(plan.compiled->program,
                         compiler.Compile(plan.rewriting));
  compile_span.Annotate(
      "ops", static_cast<uint64_t>(plan.compiled->program->ops.size()));
  return plan.compiled->program;
}

Result<OemDatabase> Mediator::Execute(const MediatorPlan& plan,
                                      const SourceCatalog& catalog) const {
  return Execute(plan, catalog, ExecutionPolicy{}, nullptr);
}

Result<OemDatabase> Mediator::Execute(const MediatorPlan& plan,
                                      const SourceCatalog& catalog,
                                      const ExecutionPolicy& policy,
                                      ExecutionReport* report) const {
  CatalogWrapper catalog_wrapper;
  VirtualClock local_clock;
  DeterministicRng rng(policy.seed);
  ExecutionReport local_report;
  ExecContext ctx;
  ctx.wrapper = policy.wrapper != nullptr ? policy.wrapper : &catalog_wrapper;
  ctx.clock = policy.clock != nullptr ? policy.clock : &local_clock;
  ctx.rng = &rng;
  ctx.report = report != nullptr ? report : &local_report;
  ctx.answer_name = plan.rewriting.name.empty() ? "answer"
                                                : plan.rewriting.name;
  InitContext(policy, &ctx);
  ++ctx.report->plans_attempted;
  CountIf(ctx.metrics, "mediator.plans_attempted");
  std::string failed_source;
  TSLRW_ASSIGN_OR_RETURN(PlanExecution exec,
                         RunPlan(plan, catalog, ctx, &failed_source));
  ctx.report->completeness = exec.any_truncated ? Completeness::kPartial
                                                : Completeness::kComplete;
  ctx.report->finished_at_ticks = EffectiveNow(ctx);
  return std::move(exec.answer);
}

RewriteOptions Mediator::PlanningOptions(const ExecutionPolicy& policy,
                                         const VirtualClock* clock,
                                         uint64_t deadline_ticks) const {
  RewriteOptions options;
  options.constraints = constraints_;
  options.strict_limits = policy.strict;
  options.parallelism = policy.rewrite_parallelism;
  options.tracer = policy.tracer;
  options.metrics = policy.metrics;
  // The index declines any view set it was not compiled for (CoversViews),
  // so replans over live-view subsets and the degraded fallback take the
  // full scan automatically and stay byte-identical.
  options.view_index = catalog_index_.get();
  if (deadline_ticks > 0) {
    options.should_stop = [clock, deadline_ticks] {
      return clock->now() >= deadline_ticks;
    };
  }
  return options;
}

Result<DegradedAnswer> Mediator::Answer(const TslQuery& query,
                                        const SourceCatalog& catalog,
                                        const ExecutionPolicy& policy) const {
  // The local clock must span both planning and execution so a per-query
  // deadline covers the whole Answer, as before the Plan/Execute split.
  // (The clock only advances on backoff waits and slow-source faults, so
  // recomputing the deadline in AnswerWithPlans lands on the same tick.)
  VirtualClock local_clock;
  ExecutionPolicy effective = policy;
  if (effective.clock == nullptr) effective.clock = &local_clock;
  const uint64_t deadline_ticks =
      EffectiveDeadline(effective, effective.clock);
  RewriteOptions plan_options =
      PlanningOptions(effective, effective.clock, deadline_ticks);
  ScopedSpan plan_span(effective.tracer, "mediator.plan_search");
  CountIf(effective.metrics, "mediator.plan_searches");
  TSLRW_ASSIGN_OR_RETURN(MediatorPlanSet plans,
                         PlanOverViews(query, AllViews(), plan_options));
  plan_span.Annotate("plans", static_cast<uint64_t>(plans.size()));
  plan_span.Annotate("truncated", plans.truncated ? "true" : "false");
  plan_span.EndNow();
  return AnswerWithPlans(query, plans, catalog, effective);
}

Result<DegradedAnswer> Mediator::AnswerWithPlans(
    const TslQuery& query, const MediatorPlanSet& plans,
    const SourceCatalog& catalog, const ExecutionPolicy& policy) const {
  CatalogWrapper catalog_wrapper;
  VirtualClock local_clock;
  DeterministicRng rng(policy.seed);
  ExecutionReport report;
  ExecContext ctx;
  ctx.wrapper = policy.wrapper != nullptr ? policy.wrapper : &catalog_wrapper;
  ctx.clock = policy.clock != nullptr ? policy.clock : &local_clock;
  ctx.rng = &rng;
  ctx.report = &report;
  ctx.answer_name = query.name.empty() ? "answer" : query.name;
  InitContext(policy, &ctx);
  ScopedSpan answer_span(ctx.tracer, "mediator.answer");
  answer_span.Annotate("plans", static_cast<uint64_t>(plans.size()));
  CountIf(ctx.metrics, "mediator.answers");

  // Options for the failover re-plan over live views; also where a strict
  // caller learns that a cached plan list was itself truncated (Answer
  // would have failed inside the initial search).
  RewriteOptions plan_options =
      PlanningOptions(policy, ctx.clock, ctx.deadline_ticks);
  report.plan_search_truncated = plans.truncated;
  report.plan_search = plans.search;
  if (policy.strict && plans.truncated) {
    return Status::ResourceExhausted(
        "plan search was truncated and strict mode forbids serving from a "
        "shortened plan list");
  }
  if (plans.empty()) {
    if (plans.truncated && QueryDeadlineExceeded(ctx)) {
      // The plan search itself was cut short by the request deadline: the
      // absence of plans is budget exhaustion, not "no plan exists" — fall
      // into §7 rather than report a (possibly wrong) NotFound, or, with
      // degradation disabled, fail fast with the honest status.
      if (ctx.degrade_on_deadline) {
        report.deadline_degraded = true;
        CountIf(ctx.metrics, "mediator.deadline_degraded");
        answer_span.Annotate("completeness", "deadline-degraded");
        return DegradedFallback(query, catalog, ctx, {}, std::move(report));
      }
      return Status::DeadlineExceeded(
          "request deadline expired during plan search");
    }
    return Status::NotFound(
        "no capability-conformant plan answers this query");
  }

  // Liveness is tracked per capability view — one wrapper endpoint each —
  // so replicated sources (two descriptions exporting equivalent views
  // over the same database) fail over independently. The report
  // aggregates dead views back to source names.
  std::set<std::string> dead;
  Status last_failure;
  std::optional<DegradedAnswer> answered;
  // Set when the request deadline expired mid-execution and
  // degrade_on_deadline routes the rest of the request into §7 instead of
  // erroring out.
  bool deadline_hit = false;
  // Failover loop: walk a cheapest-first plan list, skipping plans that
  // touch a view already declared dead. Returns non-OK only on hard
  // (non-failover) errors; "list exhausted" is OK with `answered` unset.
  auto try_plans = [&](const std::vector<MediatorPlan>& list) -> Status {
    for (const MediatorPlan& plan : list) {
      bool touches_dead = false;
      for (const std::string& view : plan.views_used) {
        if (dead.count(view) > 0) {
          touches_dead = true;
          break;
        }
      }
      if (touches_dead) {
        ++report.plans_skipped;
        CountIf(ctx.metrics, "mediator.plans_skipped");
        answer_span.Event(
            StrCat("plan ", plan.rewriting.name, " skipped: dead view"));
        continue;
      }
      if (QueryDeadlineExceeded(ctx)) {
        if (ctx.degrade_on_deadline) {
          deadline_hit = true;
          return Status::OK();  // stop attempting; degrade below
        }
        return Status::DeadlineExceeded(
            StrCat("request deadline (t=", ctx.deadline_ticks,
                   ") exceeded during plan failover"));
      }
      ++report.plans_attempted;
      CountIf(ctx.metrics, "mediator.plans_attempted");
      ScopedSpan attempt_span(ctx.tracer, "mediator.plan_attempt");
      attempt_span.Annotate("plan", plan.rewriting.name);
      attempt_span.Annotate("cost", static_cast<uint64_t>(plan.cost));
      std::string failed_view;
      Result<PlanExecution> run = RunPlan(plan, catalog, ctx, &failed_view);
      if (run.ok()) {
        attempt_span.Annotate("outcome", "ok");
        DegradedAnswer answer;
        answer.result = std::move(run->answer);
        answer.completeness = run->any_truncated ? Completeness::kPartial
                                                 : Completeness::kComplete;
        answered = std::move(answer);
        return Status::OK();
      }
      if (!failed_view.empty() && !QueryDeadlineExceeded(ctx)) {
        dead.insert(failed_view);
        last_failure = run.status();
        attempt_span.Annotate("outcome",
                              StrCat("failover: view ", failed_view, " dead"));
        CountIf(ctx.metrics, "mediator.failovers");
        continue;  // failover: try the next plan
      }
      if (QueryDeadlineExceeded(ctx) && ctx.degrade_on_deadline) {
        if (!failed_view.empty()) {
          dead.insert(failed_view);
          last_failure = run.status();
        }
        attempt_span.Annotate("outcome", "deadline");
        deadline_hit = true;
        return Status::OK();  // stop attempting; degrade below
      }
      attempt_span.Annotate("outcome",
                            StatusCodeToString(run.status().code()));
      return run.status();  // hard error, or the query budget is gone
    }
    return Status::OK();
  };

  TSLRW_RETURN_NOT_OK(try_plans(plans.plans));

  // The list is exhausted: re-plan over the live views only. With a
  // truncated first search this can surface plans never enumerated; it is
  // also the natural point to notice nothing total is left.
  if (!answered.has_value() && !deadline_hit && !dead.empty()) {
    std::vector<TslQuery> live_views;
    for (const SourceDescription& sd : sources_) {
      for (const Capability& cap : sd.capabilities) {
        if (dead.count(cap.view.name) == 0) live_views.push_back(cap.view);
      }
    }
    if (!live_views.empty()) {
      report.replanned = true;
      CountIf(ctx.metrics, "mediator.replans");
      ScopedSpan replan_span(ctx.tracer, "mediator.replan");
      replan_span.Annotate("live_views",
                           static_cast<uint64_t>(live_views.size()));
      TSLRW_ASSIGN_OR_RETURN(
          MediatorPlanSet replanned,
          PlanOverViews(query, live_views, plan_options));
      replan_span.Annotate("plans", static_cast<uint64_t>(replanned.size()));
      replan_span.EndNow();
      report.plan_search_truncated =
          report.plan_search_truncated || replanned.truncated;
      report.plan_search.Add(replanned.search);
      TSLRW_RETURN_NOT_OK(try_plans(replanned.plans));
    }
  }

  if (answered.has_value()) {
    report.failover = report.plans_attempted + report.plans_skipped > 1;
    report.completeness = answered->completeness;
    report.unreachable_sources = SourcesOfViews(dead);
    report.finished_at_ticks = EffectiveNow(ctx);
    answered->unreachable_sources = report.unreachable_sources;
    answer_span.Annotate("completeness",
                         CompletenessToString(answered->completeness));
    if (report.failover) {
      answer_span.Annotate("failover", "true");
      CountIf(ctx.metrics, "mediator.answers_with_failover");
    }
    CountIf(ctx.metrics,
            answered->completeness == Completeness::kComplete
                ? "mediator.answers_complete"
                : "mediator.answers_partial");
    answered->report = std::move(report);
    return std::move(*answered);
  }

  if (deadline_hit) {
    // Budget exhausted mid-request: whatever is still reachable within §7
    // becomes the answer (possibly empty), graded kDegraded — a resilient
    // server answers late-budget requests with less, not with an error.
    report.deadline_degraded = true;
    CountIf(ctx.metrics, "mediator.deadline_degraded");
    answer_span.Annotate("completeness", "deadline-degraded");
    return DegradedFallback(query, catalog, ctx, std::move(dead),
                            std::move(report));
  }
  if (!policy.allow_degraded) {
    answer_span.Annotate("completeness", "refused");
    CountIf(ctx.metrics, "mediator.answers_refused");
    return last_failure.ok()
               ? Status::Unavailable("every total plan touches a dead source")
               : last_failure;
  }
  answer_span.Annotate("completeness", "degraded-fallback");
  return DegradedFallback(query, catalog, ctx, std::move(dead),
                          std::move(report));
}

Result<DegradedAnswer> Mediator::DegradedFallback(
    const TslQuery& query, const SourceCatalog& catalog,
    const ExecContext& ctx, std::set<std::string> dead,
    ExecutionReport report) const {
  // \S7's escape hatch: no total plan survives, but the live views still
  // admit sound, maximally-contained answers — return their union instead
  // of nothing.
  ScopedSpan degraded_span(ctx.tracer, "mediator.degraded_fallback");
  CountIf(ctx.metrics, "mediator.degraded_fallbacks");
  std::vector<TslQuery> live_views;
  for (const SourceDescription& sd : sources_) {
    for (const Capability& cap : sd.capabilities) {
      if (dead.count(cap.view.name) == 0) live_views.push_back(cap.view);
    }
  }
  ContainedRewritingResult contained;
  if (!live_views.empty()) {
    RewriteOptions options;
    options.constraints = constraints_;
    options.require_total = true;  // only view conditions are executable
    if (ctx.deadline_ticks > 0) {
      const VirtualClock* clock = ctx.clock;
      const uint64_t deadline = ctx.deadline_ticks;
      options.should_stop = [clock, deadline] {
        return clock->now() >= deadline;
      };
    }
    TSLRW_ASSIGN_OR_RETURN(
        contained, FindMaximallyContainedRewriting(query, live_views,
                                                   options));
  }

  // Fetch each view the contained rules need, once; sources that die here
  // take their rules down with them (the union shrinks, soundness holds).
  std::set<std::string> needed;
  for (const TslQuery& rule : contained.rewriting.rules) {
    for (const Condition& c : rule.body) needed.insert(c.source);
  }
  SourceCatalog view_results;
  std::set<std::string> fetched;
  bool any_truncated = false;
  for (const std::string& view_name : needed) {
    const Capability* cap = FindCapability(view_name);
    if (cap == nullptr || dead.count(view_name) > 0) continue;
    Result<WrapperResult> result = FetchWithRetry(*cap, catalog, ctx);
    if (result.ok()) {
      any_truncated = any_truncated || !result->complete;
      view_results.Put(std::move(result->data));
      fetched.insert(view_name);
      continue;
    }
    if (IsRetryableFailure(result.status()) &&
        (!QueryDeadlineExceeded(ctx) || ctx.degrade_on_deadline)) {
      // An exhausted budget behaves like a dead endpoint here: the rules
      // needing this view drop out of the union and soundness holds. With
      // degrade_on_deadline off, a deadline failure still aborts.
      dead.insert(view_name);
      continue;
    }
    return result.status();
  }
  TslRuleSet live_rules;
  bool dropped_rules = false;
  for (const TslQuery& rule : contained.rewriting.rules) {
    bool live = true;
    for (const Condition& c : rule.body) {
      if (fetched.count(c.source) == 0) {
        live = false;
        break;
      }
    }
    if (live) {
      live_rules.rules.push_back(rule);
    } else {
      dropped_rules = true;
    }
  }

  OemDatabase result(ctx.answer_name);
  if (!live_rules.rules.empty()) {
    if (ctx.backend == ExecutionBackend::kIR) {
      // Degraded rule sets depend on which views died, so they are compiled
      // per execution rather than cached on a plan.
      std::shared_ptr<const IrProgram> program;
      {
        ScopedSpan compile_span(ctx.tracer, "plan.compile");
        PlanCompiler compiler(IrPassOptions{}, ctx.metrics);
        TSLRW_ASSIGN_OR_RETURN(program, compiler.Compile(live_rules));
        compile_span.Annotate("ops",
                              static_cast<uint64_t>(program->ops.size()));
      }
      ScopedSpan exec_span(ctx.tracer, "plan.exec_ir");
      exec_span.Annotate("ops", static_cast<uint64_t>(program->ops.size()));
      IrExecOptions ir;
      ir.answer_name = ctx.answer_name;
      ir.metrics = ctx.metrics;
      TSLRW_ASSIGN_OR_RETURN(result, ExecuteIr(*program, view_results, ir));
    } else {
      EvalOptions eval;
      eval.answer_name = ctx.answer_name;
      eval.metrics = ctx.metrics;
      eval.tracer = ctx.tracer;
      TSLRW_ASSIGN_OR_RETURN(result,
                             EvaluateRuleSet(live_rules, view_results, eval));
    }
  }
  DegradedAnswer answer;
  answer.result = std::move(result);
  // The union can still be equivalent to the query (several contained
  // rules covering it together) — then nothing was actually lost.
  bool provably_complete = contained.equivalent && !dropped_rules &&
                           !any_truncated && !contained.truncated;
  answer.completeness = provably_complete ? Completeness::kComplete
                                          : Completeness::kDegraded;
  answer.unreachable_sources = SourcesOfViews(dead);
  report.completeness = answer.completeness;
  report.unreachable_sources = answer.unreachable_sources;
  report.finished_at_ticks = EffectiveNow(ctx);
  degraded_span.Annotate("contained_rules",
                         static_cast<uint64_t>(
                             contained.rewriting.rules.size()));
  degraded_span.Annotate("live_rules",
                         static_cast<uint64_t>(live_rules.rules.size()));
  degraded_span.Annotate("completeness",
                         CompletenessToString(answer.completeness));
  CountIf(ctx.metrics, answer.completeness == Completeness::kComplete
                           ? "mediator.answers_complete"
                           : "mediator.answers_degraded");
  answer.report = std::move(report);
  return answer;
}

}  // namespace tslrw
