#include "mediator/cache.h"

#include "common/string_util.h"
#include "eval/evaluator.h"
#include "rewrite/rewriter.h"

namespace tslrw {

Status QueryCache::InsertAndMaterialize(const TslQuery& view,
                                        const SourceCatalog& sources) {
  TSLRW_ASSIGN_OR_RETURN(OemDatabase result, MaterializeView(view, sources));
  return Insert(view, std::move(result));
}

Status QueryCache::Insert(const TslQuery& view, OemDatabase result) {
  if (view.name.empty()) {
    return Status::InvalidArgument("cached statements must be named");
  }
  if (result.name() != view.name) {
    return Status::InvalidArgument(
        StrCat("cached result database is named ", result.name(),
               ", expected the statement name ", view.name));
  }
  entries_.insert_or_assign(view.name, Entry{view, std::move(result)});
  return Status::OK();
}

std::vector<TslQuery> QueryCache::CachedStatements() const {
  std::vector<TslQuery> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry.statement);
  return out;
}

Result<QueryCache::Answer> QueryCache::TryAnswer(
    const TslQuery& query, const SourceCatalog& sources,
    bool allow_base_fallback) const {
  RewriteOptions options;
  options.constraints = constraints_;
  options.require_total = !allow_base_fallback;
  TSLRW_ASSIGN_OR_RETURN(RewriteResult rewrites,
                         RewriteQuery(query, CachedStatements(), options));

  // Prefer the rewriting touching base data least (fewest non-view
  // conditions), then the shortest one.
  const TslQuery* best = nullptr;
  size_t best_base = 0;
  for (const TslQuery& rw : rewrites.rewritings) {
    size_t base_conditions = 0;
    for (const Condition& c : rw.body) {
      if (entries_.count(c.source) == 0) ++base_conditions;
    }
    if (best == nullptr || base_conditions < best_base ||
        (base_conditions == best_base && rw.body.size() < best->body.size())) {
      best = &rw;
      best_base = base_conditions;
    }
  }

  SourceCatalog catalog = sources;
  for (const auto& [name, entry] : entries_) catalog.Put(entry.result);

  if (best != nullptr) {
    TSLRW_ASSIGN_OR_RETURN(
        OemDatabase result,
        Evaluate(*best, catalog, EvalOptions{.answer_name = "answer"}));
    Answer answer;
    answer.rewriting = *best;
    answer.result = std::move(result);
    answer.from_cache = true;
    for (const Condition& c : answer.rewriting.body) {
      if (entries_.count(c.source) == 0) answer.base_conditions.push_back(c);
    }
    return answer;
  }
  if (!allow_base_fallback) {
    return Status::NotFound("no rewriting over the cached statements");
  }
  TSLRW_ASSIGN_OR_RETURN(
      OemDatabase result,
      Evaluate(query, catalog, EvalOptions{.answer_name = "answer"}));
  Answer answer;
  answer.rewriting = query;
  answer.result = std::move(result);
  answer.from_cache = false;
  answer.base_conditions = answer.rewriting.body;
  return answer;
}

}  // namespace tslrw
