#include "mediator/retry.h"

#include <algorithm>
#include <cmath>

namespace tslrw {

uint64_t DeterministicRng::NextUint64() {
  // SplitMix64 (Steele, Lea, Flood): tiny, full-period, and statistically
  // fine for jitter and fault coins.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double DeterministicRng::NextUnit() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t RetryPolicy::BackoffAfterAttempt(size_t attempt,
                                          DeterministicRng* rng) const {
  if (attempt >= std::max<size_t>(max_attempts, 1)) return 0;
  const double cap = static_cast<double>(max_backoff_ticks);
  double backoff = static_cast<double>(initial_backoff_ticks);
  for (size_t i = 1; i < attempt && backoff < cap; ++i) backoff *= multiplier;
  backoff = std::min(backoff, cap);
  if (jitter > 0.0 && rng != nullptr) {
    double fraction = std::min(std::max(jitter, 0.0), 1.0);
    backoff *= 1.0 - fraction * rng->NextUnit();
  }
  // llround is UB outside [LLONG_MIN, LLONG_MAX]; a tick cap near 2^64
  // (doubled past 2^63 by the growth loop, or configured that large) must
  // saturate to the cap instead of rounding.
  if (!(backoff < 0x1.0p63)) return max_backoff_ticks;
  return static_cast<uint64_t>(std::llround(backoff));
}

uint64_t AbsoluteDeadlineTicks(uint64_t now, uint64_t budget_ticks) {
  if (budget_ticks == 0) return 0;
  if (now > UINT64_MAX - budget_ticks) return UINT64_MAX;
  return now + budget_ticks;
}

uint64_t RemainingTicks(uint64_t now, uint64_t deadline_ticks) {
  if (deadline_ticks == 0) return UINT64_MAX;
  if (now >= deadline_ticks) return 0;
  return deadline_ticks - now;
}

bool IsRetryableFailure(const Status& status) {
  return status.IsUnavailable() || status.IsDeadlineExceeded();
}

}  // namespace tslrw
