#include "service/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"

namespace tslrw {

ThreadPool::ThreadPool(const Options& options)
    : queue_capacity_(std::max<size_t>(options.queue_capacity, 1)) {
  const size_t threads = std::max<size_t>(options.threads, 1);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      return Status::Unavailable("thread pool is shutting down");
    }
    if (queue_.size() >= queue_capacity_) {
      // Admission control: reject rather than queue unboundedly. The hint
      // tells the client how deep the backlog is so it can back off
      // proportionally instead of hammering a full queue.
      return Status::ResourceExhausted(
          StrCat("request queue is full (", queue_.size(), "/",
                 queue_capacity_,
                 "); retry-after: ~1 queued-request-time per waiting task"));
    }
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
  return Status::OK();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace tslrw
