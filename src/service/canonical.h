#ifndef TSLRW_SERVICE_CANONICAL_H_
#define TSLRW_SERVICE_CANONICAL_H_

#include <cstdint>
#include <string>

#include "tsl/ast.h"
#include "tsl/canonical.h"

namespace tslrw {

/// \brief The key a query is cached under in the PlanCache: the canonical
/// (α-renamed, condition-sorted) rendering plus a stable fingerprint used
/// to pick the shard.
///
/// The canonical query itself rides along because it is what the plan
/// search runs on: plans computed for the canonical query are executed on
/// behalf of every α-equivalent request (rewriting heads instantiate to
/// ground Skolem oids, so variable naming never reaches the answer).
struct PlanCacheKey {
  /// Byte-identical for α-equivalent queries (modulo the documented
  /// best-effort cases in tsl/canonical.h); never equal for queries that
  /// are not α-equivalent.
  std::string key;
  /// StableFingerprint(key): process-independent shard selector.
  uint64_t fingerprint = 0;
  /// The query the cached plan list is computed from.
  TslQuery canonical;
};

/// \brief Canonicalizes \p query into its plan-cache key.
PlanCacheKey MakePlanCacheKey(const TslQuery& query);

}  // namespace tslrw

#endif  // TSLRW_SERVICE_CANONICAL_H_
