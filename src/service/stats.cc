#include "service/stats.h"

#include "common/string_util.h"

namespace tslrw {

std::string PlanCacheStats::ToString() const {
  return StrCat("plan cache: ", entries, " entr", entries == 1 ? "y" : "ies",
                ", ", hits, " hit(s), ", misses, " miss(es), ", coalesced,
                " coalesced, ", evictions, " eviction(s), in-flight ",
                inflight_now, " (peak ", inflight_peak, ")");
}

std::string MaintenanceStats::ToString() const {
  return StrCat("maintenance: ", selective_applies, " selective, ",
                full_flushes, " full flush(es), ", noop_applies,
                " no-op(s); entries ", entries_examined, " examined, ",
                entries_invalidated, " invalidated, ", entries_retained,
                " retained");
}

std::string ServerStats::ToString() const {
  std::string out = StrCat(
      "server: ", threads, " thread(s), queue ", queue_depth, "/",
      queue_capacity, "\n  requests: ", accepted, " accepted, ", rejected,
      " rejected, ", completed, " completed, ", failed,
      " failed\n  snapshots: ", catalog_swaps, " catalog swap(s), ",
      mediator_swaps, " mediator swap(s)\n  ", plan_cache.ToString(),
      "\n");
  for (size_t i = 0; i < plan_cache_shards.size(); ++i) {
    const PlanCacheStats& shard = plan_cache_shards[i];
    out += StrCat("    cache shard ", i, ": ", shard.hits, " hit(s), ",
                  shard.misses, " miss(es), ", shard.coalesced,
                  " coalesced, ", shard.evictions, " eviction(s), ",
                  shard.entries, " entr", shard.entries == 1 ? "y" : "ies",
                  "\n");
  }
  out += StrCat("  ", maintenance.ToString(), "\n");
  out += StrCat("  retry-after hint: ~", retry_after_queued,
                " queued-request-time(s)\n");
  if (!breakers.empty()) {
    out += "  breakers:\n";
    for (const BreakerSnapshot& breaker : breakers) {
      out += StrCat("    ", breaker.ToString(), "\n");
    }
  }
  return out;
}

}  // namespace tslrw
