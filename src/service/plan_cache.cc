#include "service/plan_cache.h"

#include <algorithm>

namespace tslrw {

PlanCache::PlanCache(const Options& options)
    : per_shard_capacity_(std::max<size_t>(
          options.capacity / std::max<size_t>(options.shards, 1), 1)),
      shards_(std::max<size_t>(options.shards, 1)) {}

Result<PlanCache::PlanSetPtr> PlanCache::LookupOrCompute(
    const PlanCacheKey& key, const ComputeFn& compute) {
  return LookupOrCompute(key, generation_.load(), compute);
}

Result<PlanCache::PlanSetPtr> PlanCache::LookupOrCompute(
    const PlanCacheKey& key, uint64_t generation, const ComputeFn& compute) {
  Shard& shard = ShardFor(key.fingerprint);
  std::shared_ptr<InFlight> flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto hit = shard.index.find(key.key);
    if (hit != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, hit->second);
      ++shard.hits;
      return hit->second->second;
    }
    auto racing = shard.inflight.find(key.key);
    if (racing != shard.inflight.end() &&
        racing->second->generation == generation) {
      ++shard.coalesced;
      flight = racing->second;
    } else {
      // No flight, or one admitted under a different snapshot generation:
      // detach the stale flight (it still answers its own waiters and is
      // barred from the LRU by the insert-time generation check) and own a
      // fresh search.
      ++shard.misses;
      flight = std::make_shared<InFlight>();
      flight->generation = generation;
      shard.inflight[key.key] = flight;
      owner = true;
      // Single-flight gauge: one in-flight search per distinct canonical
      // query and generation, by construction — the peak proves it in
      // tests.
      const uint64_t now = inflight_now_.fetch_add(1) + 1;
      uint64_t peak = inflight_peak_.load();
      while (now > peak && !inflight_peak_.compare_exchange_weak(peak, now)) {
      }
    }
  }

  if (!owner) {
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->done_cv.wait(lock, [&flight] { return flight->done; });
    if (!flight->status.ok()) return flight->status;
    return flight->plans;
  }

  // Owner path: search outside every lock, then publish to waiters and,
  // on success, to the LRU.
  Result<MediatorPlanSet> computed = compute();
  Status status = computed.ok() ? Status::OK() : computed.status();
  PlanSetPtr plans;
  if (computed.ok()) {
    plans =
        std::make_shared<const MediatorPlanSet>(std::move(computed).value());
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto inflight_it = shard.inflight.find(key.key);
    if (inflight_it != shard.inflight.end() && inflight_it->second == flight) {
      shard.inflight.erase(inflight_it);  // not ours once detached
    }
    // The generation fence: a search admitted before a snapshot swap must
    // not publish its (old-snapshot) plans into the post-swap cache.
    if (status.ok() && flight->generation == generation_.load() &&
        shard.index.find(key.key) == shard.index.end()) {
      shard.lru.emplace_front(key.key, plans);
      shard.index.emplace(key.key, shard.lru.begin());
      while (shard.lru.size() > per_shard_capacity_) {
        shard.index.erase(shard.lru.back().first);
        shard.lru.pop_back();
        ++shard.evictions;
      }
    }
  }
  inflight_now_.fetch_sub(1);
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->status = status;
    flight->plans = plans;
    flight->done = true;
  }
  flight->done_cv.notify_all();
  if (!status.ok()) return status;
  return plans;
}

void PlanCache::Invalidate(const PlanCacheKey& key) {
  Shard& shard = ShardFor(key.fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.key);
  if (it == shard.index.end()) return;
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

size_t PlanCache::InvalidateMatching(
    const std::function<bool(const std::string& key,
                             const MediatorPlanSet& plans)>& pred) {
  size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (pred(it->first, *it->second)) {
        shard.index.erase(it->first);
        it = shard.lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

uint64_t PlanCache::BeginGeneration() {
  return generation_.fetch_add(1) + 1;
}

void PlanCache::Flush() {
  BeginGeneration();
  Clear();
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.coalesced += shard.coalesced;
    stats.entries += shard.lru.size();
  }
  stats.inflight_now = inflight_now_.load();
  stats.inflight_peak = inflight_peak_.load();
  return stats;
}

std::vector<PlanCacheStats> PlanCache::ShardStats() const {
  std::vector<PlanCacheStats> stats(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    stats[i].hits = shard.hits;
    stats[i].misses = shard.misses;
    stats[i].evictions = shard.evictions;
    stats[i].coalesced = shard.coalesced;
    stats[i].entries = shard.lru.size();
  }
  return stats;
}

size_t PlanCache::size() const {
  size_t entries = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    entries += shard.lru.size();
  }
  return entries;
}

}  // namespace tslrw
