#ifndef TSLRW_SERVICE_SERVER_H_
#define TSLRW_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "catalog/diff.h"
#include "common/result.h"
#include "maint/invalidate.h"
#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "mediator/retry.h"
#include "mediator/wrapper.h"
#include "oem/database.h"
#include "service/canonical.h"
#include "service/plan_cache.h"
#include "service/stats.h"
#include "runtime/thread_pool.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief How a mediator swap treats the plan cache (docs/SERVING.md
/// "Incremental maintenance").
enum class MaintenanceMode : uint8_t {
  /// Diff old vs new catalog (catalog/diff.h) and invalidate only the
  /// cached plan sets whose dependency footprint the delta can affect;
  /// everything else survives the swap verbatim. Differentially tested
  /// byte-identical to kFullFlush (src/testing/maint_differential.h).
  kSelective,
  /// The pre-maintenance behavior: every swap flushes the whole cache.
  kFullFlush,
};

/// \brief What one maintenance pass (mediator swap or InvalidatePlans) did
/// to the plan cache; returned by ReplaceMediator for operator surfacing.
struct MaintenanceReport {
  bool full_flush = false;
  bool noop = false;  ///< the delta was empty; nothing was touched
  std::string flush_reason;  ///< why a selective pass fell back to a flush
  std::string delta_summary;  ///< CatalogDelta::ToString()
  size_t entries_examined = 0;
  size_t entries_invalidated = 0;
  size_t entries_retained = 0;

  /// e.g. `selective: +0 -0 ~1 views, constraints unchanged; invalidated
  /// 3/128, retained 125` or `full flush (constraints changed), 128
  /// entries dropped`.
  std::string ToString() const;
};

/// \brief Serving-layer knobs. The defaults suit a small interactive
/// deployment; the load driver and benchmarks sweep them.
struct ServerOptions {
  /// Worker threads executing requests.
  size_t threads = 4;
  /// Bounded request queue; a full queue rejects with kResourceExhausted
  /// (admission control), so overload degrades instead of OOMing.
  size_t queue_capacity = 128;
  size_t plan_cache_capacity = 256;
  size_t plan_cache_shards = 8;
  /// Execution knobs applied to every request. Per-request wrapper and
  /// clock are built by the server (see WrapperFactory); seed comes from
  /// ServeOptions.
  RetryPolicy retry;
  bool allow_degraded = true;
  bool strict = false;
  /// Verification workers inside each cold plan search and each failover
  /// re-plan (RewriteOptions::parallelism semantics: 0 = hardware
  /// concurrency, 1 = sequential). Cached plans are byte-identical for
  /// every value, so this only changes cold-miss latency.
  size_t rewrite_parallelism = 0;
  /// Optional server-wide metric sink (not owned; must outlive the
  /// server): thread-pool admission, per-request outcomes, plan-cache
  /// hits/misses, and every mediator/rewriter counter of the requests.
  /// Counters are lock-free and shared across request threads — reads are
  /// monotonic per counter. Null disables metrics.
  MetricRegistry* metrics = nullptr;
  /// Circuit-breaker and hedged-fetch policy (both off by default). The
  /// server owns one ResilienceRegistry built from this, shared by every
  /// request and surviving snapshot swaps — endpoint history is about the
  /// endpoints, not about any one catalog version.
  ResiliencePolicy resilience;
  /// Default end-to-end tick budget stamped on every request at admission
  /// (0 = unlimited): plan search, fetches, retry backoff, and hedges all
  /// draw from it, and an exhausted budget degrades the answer per §7
  /// instead of erroring. ServeOptions::deadline_ticks overrides per
  /// request.
  uint64_t request_deadline_ticks = 0;
  /// Plan-evaluation backend for every request (ExecutionPolicy::backend).
  /// kIR compiles each cached plan once — the compiled program lives and
  /// dies with the plan-cache entry — and answers stay byte-identical to
  /// the tree walker.
  ExecutionBackend backend = ExecutionBackend::kTree;
  /// Plan-cache treatment on mediator swaps (see MaintenanceMode).
  MaintenanceMode maintenance = MaintenanceMode::kSelective;
  /// Optional span sink for maintenance passes (not owned): each
  /// ReplaceMediator opens a `maint.invalidate` span annotated with the
  /// delta and the examined/invalidated/retained counts. Null disables.
  Tracer* maintenance_tracer = nullptr;
};

/// \brief Per-request knobs.
struct ServeOptions {
  /// Seed for the request's DeterministicRng and wrapper factory: the same
  /// (query, seed, snapshot) always reproduces the same answer, however
  /// many requests run concurrently.
  uint64_t seed = 0;
  /// Optional per-request span tree (not owned). Each request drives its
  /// own tracer on its own virtual clock, so the span *content* for a
  /// (query, seed, snapshot) triple is deterministic regardless of which
  /// worker thread serves it; only cache-hit attribution can differ when
  /// requests race a cold plan search. Null disables tracing.
  Tracer* tracer = nullptr;
  /// Per-request end-to-end tick budget; 0 = use
  /// ServerOptions::request_deadline_ticks.
  uint64_t deadline_ticks = 0;
};

/// \brief One served answer plus serving-layer metadata.
struct ServeResponse {
  DegradedAnswer answer;
  /// The rewriting-plan list came from the cache (hit or coalesced wait)
  /// rather than a fresh plan search.
  bool plan_cache_hit = false;
  /// Rewrite-search counters for the plan list this answer used. On a cold
  /// miss these describe the search this request just paid for; on a hit
  /// they replay the original search's numbers (the cache stores them with
  /// the plans), attributing the saved work.
  PlanSearchStats plan_search;
  /// The immutable plan list the answer executed (shared with the cache).
  /// The differential maintenance harness compares these across the
  /// selective and full-flush arms; plan_search/plan_cache_hit only tell
  /// half the story.
  std::shared_ptr<const MediatorPlanSet> plans;
};

/// \brief Builds the per-request Wrapper (and may capture the per-request
/// VirtualClock, e.g. for slow-source faults). Called once per request from
/// a worker thread; each returned wrapper is used by exactly one request,
/// so implementations need no internal synchronization. Null factory =>
/// the built-in CatalogWrapper.
using WrapperFactory =
    std::function<std::unique_ptr<Wrapper>(VirtualClock* clock,
                                           uint64_t seed)>;

/// \brief The standard faulty-catalog factory: each request gets a fresh
/// CatalogWrapper decorated by a FaultInjector running \p schedules (keys
/// are source or capability-view names, as in FaultInjector::SetSchedule).
/// Fresh injector + seeded RNG per request means every serving replays
/// deterministically from (query, seed, snapshot). The shell, the load
/// driver, and the benchmarks all build their fault setups through this.
WrapperFactory MakeFaultInjectingWrapperFactory(
    std::map<std::string, FaultSchedule> schedules);

/// \brief A thread-safe serving layer in front of the mediator (the
/// "stream of client queries" deployment of \S1 Fig. 2): a fixed thread
/// pool with admission control, a sharded single-flight plan cache keyed by
/// canonical query, and snapshot isolation for catalog/mediator mutations.
///
/// Concurrency model (details in docs/SERVING.md):
///  - Requests run on the pool; each takes an immutable Snapshot
///    (mediator + catalog + plan-cache generation) at start and never sees
///    a mutation mid-flight.
///  - Mutations (UpdateCatalog, ReplaceMediator) build a new Snapshot and
///    publish it with a shared_ptr swap; writers are serialized, readers
///    never block writers beyond the pointer swap.
///  - The plan cache is generation-scoped: catalog data changes keep it
///    (plans depend only on views), capability changes start a fresh one.
class QueryServer {
 public:
  /// \param mediator the planning/execution core (Mediator::Make result).
  /// \param catalog initial source data; snapshot-swapped by UpdateCatalog.
  QueryServer(Mediator mediator, SourceCatalog catalog,
              ServerOptions options = {},
              WrapperFactory wrapper_factory = nullptr);
  /// Drains admitted requests, then joins the workers.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Admits \p query to the pool. Fails fast with kResourceExhausted (plus
  /// a retry-after hint) when the queue is full; on success the future
  /// resolves to the request's outcome.
  Result<std::future<Result<ServeResponse>>> Submit(TslQuery query,
                                                    ServeOptions serve = {});

  /// The synchronous request path (what workers run): canonicalize, fetch
  /// or compute the plan list through the single-flight cache, execute via
  /// Mediator::AnswerWithPlans on this request's snapshot. Safe to call
  /// from any thread, including alongside Submit traffic.
  Result<ServeResponse> Answer(const TslQuery& query,
                               const ServeOptions& serve = {}) const;

  /// Adds or replaces one source database: copy-on-write on the catalog,
  /// then a snapshot swap. In-flight requests keep the old snapshot; the
  /// plan cache survives (plans do not depend on source data).
  void UpdateCatalog(OemDatabase db);

  /// Replaces the whole catalog (same swap discipline as UpdateCatalog).
  void ReplaceCatalog(SourceCatalog catalog);

  /// Replaces the mediator (new capability views): snapshot swap plus plan
  /// -cache maintenance per ServerOptions::maintenance — selective
  /// invalidation of only the entries the old-vs-new catalog delta can
  /// affect (the cache object, its counters, and every retained entry
  /// survive), or a full flush. A catalog index attached to the retiring
  /// snapshot is carried over iff it still validates against the new
  /// mediator (same views, same constraints — the catalog-fingerprint
  /// guard); otherwise it is dropped and `catalog.index_dropped_stale`
  /// counts the event. An index attached to \p mediator itself always
  /// wins. Returns what happened to the cache.
  MaintenanceReport ReplaceMediator(Mediator mediator);

  /// As above with a precomputed old-vs-new CatalogDelta: the cluster
  /// router diffs once against its template mediator and replicates the
  /// same delta to every shard. \p delta must describe exactly the change
  /// from this server's current mediator to \p mediator — a wrong delta
  /// breaks the retention proof (entries may be kept that should not be).
  MaintenanceReport ReplaceMediator(Mediator mediator,
                                    const CatalogDelta& delta);

  /// Attaches a compiled catalog index (src/catalog) to the serving
  /// snapshot: validates it against the current mediator, then publishes a
  /// snapshot whose plan searches probe the index. The plan-cache
  /// generation survives — indexed plan lists are byte-identical to
  /// scanned ones. Pass null to detach.
  Status AttachCatalogIndex(std::shared_ptr<const ViewSetIndex> index);

  /// True when the current snapshot's mediator holds a catalog index.
  bool has_catalog_index() const;
  /// The attached index's catalog fingerprint, or 0 when none is attached.
  uint64_t catalog_index_fingerprint() const;

  /// Starts a fresh plan-cache generation for the current mediator and
  /// drops every entry. Benchmarks use this for cold-cache runs. The cache
  /// object and its hit/miss/coalesced counters survive, so Statsz deltas
  /// across an invalidation stay monotone.
  void InvalidatePlans();

  ServerStats stats() const;

  /// The shared cross-request resilience state (breaker states, hedge
  /// latency windows). The chaos harness asserts recovery through it;
  /// `Reset()` re-closes every breaker.
  ResilienceRegistry& resilience() { return resilience_; }
  const ResilienceRegistry& resilience() const { return resilience_; }

  /// A `/statsz`-style plain-text dump: the ServerStats snapshot followed
  /// by every metric in ServerOptions::metrics (sorted by name). The load
  /// driver and the shell's `stats` command print this verbatim.
  std::string Statsz() const;

  /// Stops admitting, drains the queue, joins the workers. Idempotent.
  void Shutdown();

 private:
  /// What one request executes against, immutable once published.
  struct Snapshot {
    std::shared_ptr<const Mediator> mediator;
    std::shared_ptr<const SourceCatalog> catalog;
    /// Shared (not const): the cache synchronizes internally and is the
    /// one deliberately concurrent-mutable piece of a snapshot.
    std::shared_ptr<PlanCache> plan_cache;
    /// The plan-cache generation this snapshot's searches are admitted
    /// under. A search begun against a retired snapshot carries a stale
    /// generation, so the cache rejects its insert and refuses to coalesce
    /// new-snapshot requests onto it (plan_cache.h).
    uint64_t plan_generation = 0;
  };

  std::shared_ptr<const Snapshot> snapshot() const;
  void Publish(std::shared_ptr<const Snapshot> next);
  PlanCache::Options CacheOptions() const;
  /// Shared tail of the ReplaceMediator overloads; expects mutate_mu_.
  MaintenanceReport ReplaceMediatorLocked(
      Mediator mediator, const CatalogDelta& delta,
      const std::shared_ptr<const Snapshot>& current);

  ServerOptions options_;
  WrapperFactory wrapper_factory_;
  /// Cross-request breaker/hedge state; mutable because serving a request
  /// (const Answer) legitimately evolves endpoint history.
  mutable ResilienceRegistry resilience_;

  mutable std::mutex snapshot_mu_;  ///< guards the snapshot_ pointer only
  std::shared_ptr<const Snapshot> snapshot_;
  std::mutex mutate_mu_;  ///< serializes snapshot builders (writers)

  mutable std::atomic<uint64_t> accepted_{0};
  mutable std::atomic<uint64_t> rejected_{0};
  mutable std::atomic<uint64_t> completed_{0};
  mutable std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> catalog_swaps_{0};
  std::atomic<uint64_t> mediator_swaps_{0};
  std::atomic<uint64_t> maint_selective_applies_{0};
  std::atomic<uint64_t> maint_full_flushes_{0};
  std::atomic<uint64_t> maint_noop_applies_{0};
  std::atomic<uint64_t> maint_entries_examined_{0};
  std::atomic<uint64_t> maint_entries_invalidated_{0};
  std::atomic<uint64_t> maint_entries_retained_{0};

  /// Last member: destroyed (and therefore drained+joined) first, while
  /// the snapshot and counters its tasks use are still alive.
  ThreadPool pool_;
};

}  // namespace tslrw

#endif  // TSLRW_SERVICE_SERVER_H_
