#ifndef TSLRW_SERVICE_SERVER_H_
#define TSLRW_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "mediator/retry.h"
#include "mediator/wrapper.h"
#include "oem/database.h"
#include "service/canonical.h"
#include "service/plan_cache.h"
#include "service/stats.h"
#include "runtime/thread_pool.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Serving-layer knobs. The defaults suit a small interactive
/// deployment; the load driver and benchmarks sweep them.
struct ServerOptions {
  /// Worker threads executing requests.
  size_t threads = 4;
  /// Bounded request queue; a full queue rejects with kResourceExhausted
  /// (admission control), so overload degrades instead of OOMing.
  size_t queue_capacity = 128;
  size_t plan_cache_capacity = 256;
  size_t plan_cache_shards = 8;
  /// Execution knobs applied to every request. Per-request wrapper and
  /// clock are built by the server (see WrapperFactory); seed comes from
  /// ServeOptions.
  RetryPolicy retry;
  bool allow_degraded = true;
  bool strict = false;
  /// Verification workers inside each cold plan search and each failover
  /// re-plan (RewriteOptions::parallelism semantics: 0 = hardware
  /// concurrency, 1 = sequential). Cached plans are byte-identical for
  /// every value, so this only changes cold-miss latency.
  size_t rewrite_parallelism = 0;
  /// Optional server-wide metric sink (not owned; must outlive the
  /// server): thread-pool admission, per-request outcomes, plan-cache
  /// hits/misses, and every mediator/rewriter counter of the requests.
  /// Counters are lock-free and shared across request threads — reads are
  /// monotonic per counter. Null disables metrics.
  MetricRegistry* metrics = nullptr;
  /// Circuit-breaker and hedged-fetch policy (both off by default). The
  /// server owns one ResilienceRegistry built from this, shared by every
  /// request and surviving snapshot swaps — endpoint history is about the
  /// endpoints, not about any one catalog version.
  ResiliencePolicy resilience;
  /// Default end-to-end tick budget stamped on every request at admission
  /// (0 = unlimited): plan search, fetches, retry backoff, and hedges all
  /// draw from it, and an exhausted budget degrades the answer per §7
  /// instead of erroring. ServeOptions::deadline_ticks overrides per
  /// request.
  uint64_t request_deadline_ticks = 0;
  /// Plan-evaluation backend for every request (ExecutionPolicy::backend).
  /// kIR compiles each cached plan once — the compiled program lives and
  /// dies with the plan-cache entry — and answers stay byte-identical to
  /// the tree walker.
  ExecutionBackend backend = ExecutionBackend::kTree;
};

/// \brief Per-request knobs.
struct ServeOptions {
  /// Seed for the request's DeterministicRng and wrapper factory: the same
  /// (query, seed, snapshot) always reproduces the same answer, however
  /// many requests run concurrently.
  uint64_t seed = 0;
  /// Optional per-request span tree (not owned). Each request drives its
  /// own tracer on its own virtual clock, so the span *content* for a
  /// (query, seed, snapshot) triple is deterministic regardless of which
  /// worker thread serves it; only cache-hit attribution can differ when
  /// requests race a cold plan search. Null disables tracing.
  Tracer* tracer = nullptr;
  /// Per-request end-to-end tick budget; 0 = use
  /// ServerOptions::request_deadline_ticks.
  uint64_t deadline_ticks = 0;
};

/// \brief One served answer plus serving-layer metadata.
struct ServeResponse {
  DegradedAnswer answer;
  /// The rewriting-plan list came from the cache (hit or coalesced wait)
  /// rather than a fresh plan search.
  bool plan_cache_hit = false;
  /// Rewrite-search counters for the plan list this answer used. On a cold
  /// miss these describe the search this request just paid for; on a hit
  /// they replay the original search's numbers (the cache stores them with
  /// the plans), attributing the saved work.
  PlanSearchStats plan_search;
};

/// \brief Builds the per-request Wrapper (and may capture the per-request
/// VirtualClock, e.g. for slow-source faults). Called once per request from
/// a worker thread; each returned wrapper is used by exactly one request,
/// so implementations need no internal synchronization. Null factory =>
/// the built-in CatalogWrapper.
using WrapperFactory =
    std::function<std::unique_ptr<Wrapper>(VirtualClock* clock,
                                           uint64_t seed)>;

/// \brief The standard faulty-catalog factory: each request gets a fresh
/// CatalogWrapper decorated by a FaultInjector running \p schedules (keys
/// are source or capability-view names, as in FaultInjector::SetSchedule).
/// Fresh injector + seeded RNG per request means every serving replays
/// deterministically from (query, seed, snapshot). The shell, the load
/// driver, and the benchmarks all build their fault setups through this.
WrapperFactory MakeFaultInjectingWrapperFactory(
    std::map<std::string, FaultSchedule> schedules);

/// \brief A thread-safe serving layer in front of the mediator (the
/// "stream of client queries" deployment of \S1 Fig. 2): a fixed thread
/// pool with admission control, a sharded single-flight plan cache keyed by
/// canonical query, and snapshot isolation for catalog/mediator mutations.
///
/// Concurrency model (details in docs/SERVING.md):
///  - Requests run on the pool; each takes an immutable Snapshot
///    (mediator + catalog + plan-cache generation) at start and never sees
///    a mutation mid-flight.
///  - Mutations (UpdateCatalog, ReplaceMediator) build a new Snapshot and
///    publish it with a shared_ptr swap; writers are serialized, readers
///    never block writers beyond the pointer swap.
///  - The plan cache is generation-scoped: catalog data changes keep it
///    (plans depend only on views), capability changes start a fresh one.
class QueryServer {
 public:
  /// \param mediator the planning/execution core (Mediator::Make result).
  /// \param catalog initial source data; snapshot-swapped by UpdateCatalog.
  QueryServer(Mediator mediator, SourceCatalog catalog,
              ServerOptions options = {},
              WrapperFactory wrapper_factory = nullptr);
  /// Drains admitted requests, then joins the workers.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Admits \p query to the pool. Fails fast with kResourceExhausted (plus
  /// a retry-after hint) when the queue is full; on success the future
  /// resolves to the request's outcome.
  Result<std::future<Result<ServeResponse>>> Submit(TslQuery query,
                                                    ServeOptions serve = {});

  /// The synchronous request path (what workers run): canonicalize, fetch
  /// or compute the plan list through the single-flight cache, execute via
  /// Mediator::AnswerWithPlans on this request's snapshot. Safe to call
  /// from any thread, including alongside Submit traffic.
  Result<ServeResponse> Answer(const TslQuery& query,
                               const ServeOptions& serve = {}) const;

  /// Adds or replaces one source database: copy-on-write on the catalog,
  /// then a snapshot swap. In-flight requests keep the old snapshot; the
  /// plan cache survives (plans do not depend on source data).
  void UpdateCatalog(OemDatabase db);

  /// Replaces the whole catalog (same swap discipline as UpdateCatalog).
  void ReplaceCatalog(SourceCatalog catalog);

  /// Replaces the mediator (new capability views): snapshot swap plus a
  /// fresh plan-cache generation — cached plans reference retired views.
  /// A catalog index attached to the retiring snapshot is carried over iff
  /// it still validates against the new mediator (same views, same
  /// constraints — the catalog-fingerprint guard); otherwise it is dropped
  /// and `catalog.index_dropped_stale` counts the event. An index attached
  /// to \p mediator itself always wins.
  void ReplaceMediator(Mediator mediator);

  /// Attaches a compiled catalog index (src/catalog) to the serving
  /// snapshot: validates it against the current mediator, then publishes a
  /// snapshot whose plan searches probe the index. The plan-cache
  /// generation survives — indexed plan lists are byte-identical to
  /// scanned ones. Pass null to detach.
  Status AttachCatalogIndex(std::shared_ptr<const ViewSetIndex> index);

  /// True when the current snapshot's mediator holds a catalog index.
  bool has_catalog_index() const;
  /// The attached index's catalog fingerprint, or 0 when none is attached.
  uint64_t catalog_index_fingerprint() const;

  /// Starts a fresh plan-cache generation for the current mediator.
  /// Benchmarks use this for cold-cache runs.
  void InvalidatePlans();

  ServerStats stats() const;

  /// The shared cross-request resilience state (breaker states, hedge
  /// latency windows). The chaos harness asserts recovery through it;
  /// `Reset()` re-closes every breaker.
  ResilienceRegistry& resilience() { return resilience_; }
  const ResilienceRegistry& resilience() const { return resilience_; }

  /// A `/statsz`-style plain-text dump: the ServerStats snapshot followed
  /// by every metric in ServerOptions::metrics (sorted by name). The load
  /// driver and the shell's `stats` command print this verbatim.
  std::string Statsz() const;

  /// Stops admitting, drains the queue, joins the workers. Idempotent.
  void Shutdown();

 private:
  /// What one request executes against, immutable once published.
  struct Snapshot {
    std::shared_ptr<const Mediator> mediator;
    std::shared_ptr<const SourceCatalog> catalog;
    /// Shared (not const): the cache synchronizes internally and is the
    /// one deliberately concurrent-mutable piece of a snapshot.
    std::shared_ptr<PlanCache> plan_cache;
  };

  std::shared_ptr<const Snapshot> snapshot() const;
  void Publish(std::shared_ptr<const Snapshot> next);
  PlanCache::Options CacheOptions() const;

  ServerOptions options_;
  WrapperFactory wrapper_factory_;
  /// Cross-request breaker/hedge state; mutable because serving a request
  /// (const Answer) legitimately evolves endpoint history.
  mutable ResilienceRegistry resilience_;

  mutable std::mutex snapshot_mu_;  ///< guards the snapshot_ pointer only
  std::shared_ptr<const Snapshot> snapshot_;
  std::mutex mutate_mu_;  ///< serializes snapshot builders (writers)

  mutable std::atomic<uint64_t> accepted_{0};
  mutable std::atomic<uint64_t> rejected_{0};
  mutable std::atomic<uint64_t> completed_{0};
  mutable std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> catalog_swaps_{0};
  std::atomic<uint64_t> mediator_swaps_{0};

  /// Last member: destroyed (and therefore drained+joined) first, while
  /// the snapshot and counters its tasks use are still alive.
  ThreadPool pool_;
};

}  // namespace tslrw

#endif  // TSLRW_SERVICE_SERVER_H_
