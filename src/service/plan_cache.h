#ifndef TSLRW_SERVICE_PLAN_CACHE_H_
#define TSLRW_SERVICE_PLAN_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "mediator/mediator.h"
#include "service/canonical.h"
#include "service/stats.h"

namespace tslrw {

/// \brief A sharded, LRU cache of rewriting-plan lists keyed by canonical
/// query, with request coalescing (single flight).
///
/// The cached artifact is the MediatorPlanSet — the output of the
/// exponential \S5.1 plan search — not the materialized answer: answers
/// depend on source data and per-request fault luck, plans only on the
/// query and the capability views ("the rewriting algorithm only needs the
/// query and the cached query statements"). Entries are immutable
/// shared_ptrs, so a hit hands the caller a reference the cache can evict
/// under without invalidating.
///
/// Coalescing: concurrent lookups of the same key block on one in-flight
/// computation instead of N duplicate searches; at most one plan search per
/// distinct canonical query is ever running. A failed computation
/// propagates its Status to every coalesced waiter and caches nothing.
///
/// Thread safety: all public members may be called from any thread.
class PlanCache {
 public:
  struct Options {
    /// Total cached plan lists across all shards.
    size_t capacity = 256;
    /// Lock shards; 0 behaves as 1. Capacity is split evenly.
    size_t shards = 8;
  };

  using PlanSetPtr = std::shared_ptr<const MediatorPlanSet>;
  using ComputeFn = std::function<Result<MediatorPlanSet>()>;

  explicit PlanCache(const Options& options);

  /// Returns the cached plan list for \p key, or runs \p compute (once,
  /// however many callers race) and caches its result. \p compute runs
  /// without any cache lock held. The two-argument form computes under the
  /// cache's current generation; the serving layer passes its snapshot's
  /// generation explicitly so a request admitted against an old snapshot
  /// can neither insert a stale plan set after a swap nor coalesce onto a
  /// search that was started against a different snapshot (a stale
  /// in-flight computation is detached — it still serves its own waiters —
  /// and a fresh one is started).
  Result<PlanSetPtr> LookupOrCompute(const PlanCacheKey& key,
                                     const ComputeFn& compute);
  Result<PlanSetPtr> LookupOrCompute(const PlanCacheKey& key,
                                     uint64_t generation,
                                     const ComputeFn& compute);

  /// Drops the entry for \p key, if cached. The serving layer uses this
  /// when a cold search came back truncated because the *requesting*
  /// query's deadline expired mid-search: such a shortened plan list must
  /// not be served to later, better-funded requests.
  void Invalidate(const PlanCacheKey& key);

  /// Drops every cached entry (in-flight computations finish and insert
  /// normally). Counters and the generation are preserved.
  void Clear();

  /// Runs \p pred over every cached entry (under the owning shard's lock)
  /// and drops the entries it returns true for; returns how many were
  /// dropped. Counters survive. \p pred must not call back into the cache.
  size_t InvalidateMatching(
      const std::function<bool(const std::string& key,
                               const MediatorPlanSet& plans)>& pred);

  /// Starts a new entry generation and returns it. Computations begun
  /// under an earlier generation still finish and answer their waiters,
  /// but no longer insert into the LRU, and later lookups no longer
  /// coalesce onto them — the fence that makes same-cache-object snapshot
  /// swaps safe (docs/SERVING.md "Incremental maintenance").
  uint64_t BeginGeneration();

  /// The current generation (monotone; starts at 0).
  uint64_t generation() const { return generation_.load(); }

  /// Full flush that keeps the counters: BeginGeneration + Clear. The fix
  /// for the Statsz-monotonicity bug where invalidation rebuilt the cache
  /// object and zeroed per-shard hit/miss/coalesced counts.
  void Flush();

  PlanCacheStats stats() const;

  /// Per-lock-shard counters, index = shard (fingerprint % shards). The
  /// cluster's per-shard statsz prints these; the aggregate stats() is
  /// their sum. The in-flight gauges are cache-global and reported only by
  /// stats().
  std::vector<PlanCacheStats> ShardStats() const;

  size_t size() const;

 private:
  /// One single-flight rendezvous: the owner computes, waiters block on
  /// done_cv and read status/plans.
  struct InFlight {
    std::mutex mu;
    std::condition_variable done_cv;
    bool done = false;
    Status status;
    PlanSetPtr plans;
    /// The generation the owning computation was admitted under; set once
    /// before the flight is published, read under the shard lock.
    uint64_t generation = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used; `index` points into this list.
    std::list<std::pair<std::string, PlanSetPtr>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, PlanSetPtr>>::iterator>
        index;
    std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t coalesced = 0;
  };

  Shard& ShardFor(uint64_t fingerprint) {
    return shards_[fingerprint % shards_.size()];
  }

  const size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> inflight_now_{0};
  std::atomic<uint64_t> inflight_peak_{0};
  std::atomic<uint64_t> generation_{0};
};

}  // namespace tslrw

#endif  // TSLRW_SERVICE_PLAN_CACHE_H_
