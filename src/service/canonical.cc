#include "service/canonical.h"

namespace tslrw {

PlanCacheKey MakePlanCacheKey(const TslQuery& query) {
  CanonicalForm form = CanonicalizeQuery(query);
  PlanCacheKey key;
  key.key = std::move(form.key);
  key.fingerprint = form.fingerprint;
  key.canonical = std::move(form.query);
  return key;
}

}  // namespace tslrw
