#include "service/server.h"

#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewrite/view_index.h"

namespace tslrw {

std::string MaintenanceReport::ToString() const {
  if (full_flush) {
    return StrCat("full flush (", flush_reason, "), ", entries_invalidated,
                  " entries dropped");
  }
  if (noop) {
    return StrCat("no-op (identical catalogs), ", entries_retained,
                  " entries kept");
  }
  return StrCat("selective: ", delta_summary, "; invalidated ",
                entries_invalidated, "/", entries_examined, ", retained ",
                entries_retained);
}

namespace {

/// Owns the CatalogWrapper + FaultInjector pair for one request.
class FaultInjectingWrapper : public Wrapper {
 public:
  FaultInjectingWrapper(uint64_t seed, VirtualClock* clock,
                        const std::map<std::string, FaultSchedule>& schedules)
      : injector_(&base_, seed, clock) {
    for (const auto& [key, schedule] : schedules) {
      injector_.SetSchedule(key, schedule);
    }
  }

  Result<WrapperResult> Fetch(const Capability& capability,
                              const SourceCatalog& catalog) override {
    return injector_.Fetch(capability, catalog);
  }

 private:
  CatalogWrapper base_;
  FaultInjector injector_;
};

}  // namespace

WrapperFactory MakeFaultInjectingWrapperFactory(
    std::map<std::string, FaultSchedule> schedules) {
  auto shared = std::make_shared<const std::map<std::string, FaultSchedule>>(
      std::move(schedules));
  return [shared](VirtualClock* clock,
                  uint64_t seed) -> std::unique_ptr<Wrapper> {
    return std::make_unique<FaultInjectingWrapper>(seed, clock, *shared);
  };
}

QueryServer::QueryServer(Mediator mediator, SourceCatalog catalog,
                         ServerOptions options,
                         WrapperFactory wrapper_factory)
    : options_(std::move(options)),
      wrapper_factory_(std::move(wrapper_factory)),
      resilience_(options_.resilience),
      pool_(ThreadPool::Options{options_.threads, options_.queue_capacity,
                                /*lazy_spawn=*/false, options_.metrics}) {
  auto first = std::make_shared<Snapshot>();
  first->mediator = std::make_shared<const Mediator>(std::move(mediator));
  first->catalog = std::make_shared<const SourceCatalog>(std::move(catalog));
  first->plan_cache = std::make_shared<PlanCache>(CacheOptions());
  snapshot_ = std::move(first);
}

QueryServer::~QueryServer() { Shutdown(); }

PlanCache::Options QueryServer::CacheOptions() const {
  PlanCache::Options cache;
  cache.capacity = options_.plan_cache_capacity;
  cache.shards = options_.plan_cache_shards;
  return cache;
}

std::shared_ptr<const QueryServer::Snapshot> QueryServer::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

void QueryServer::Publish(std::shared_ptr<const Snapshot> next) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(next);
}

Result<std::future<Result<ServeResponse>>> QueryServer::Submit(
    TslQuery query, ServeOptions serve) {
  auto task = std::make_shared<std::packaged_task<Result<ServeResponse>()>>(
      [this, query = std::move(query), serve] {
        return Answer(query, serve);
      });
  std::future<Result<ServeResponse>> future = task->get_future();
  Status admitted = pool_.TrySubmit([task] { (*task)(); });
  if (!admitted.ok()) {
    rejected_.fetch_add(1);
    CountIf(options_.metrics, "serve.rejected");
    return admitted;
  }
  accepted_.fetch_add(1);
  CountIf(options_.metrics, "serve.accepted");
  return future;
}

Result<ServeResponse> QueryServer::Answer(const TslQuery& query,
                                          const ServeOptions& serve) const {
  // Snapshot isolation: everything this request reads is resolved here,
  // once; concurrent mutations publish new snapshots without touching it.
  const std::shared_ptr<const Snapshot> snap = snapshot();

  // Per-request execution state: its own clock and wrapper, so requests
  // never share mutable fault/retry machinery and every answer is a pure
  // function of (query, seed, snapshot). The clock is declared before the
  // request span so every span closes while it is still alive.
  VirtualClock clock;
  if (serve.tracer != nullptr) serve.tracer->set_clock(&clock);
  ScopedSpan request_span(serve.tracer, "serve.request");
  CountIf(options_.metrics, "serve.requests");
  // End-to-end deadline, stamped at admission on this request's clock:
  // every stage below — the cold plan search included — draws from the one
  // budget.
  const uint64_t deadline_budget = serve.deadline_ticks != 0
                                       ? serve.deadline_ticks
                                       : options_.request_deadline_ticks;
  const uint64_t admission_deadline =
      AbsoluteDeadlineTicks(clock.now(), deadline_budget);
  PlanCacheKey key = MakePlanCacheKey(query);
  bool computed_here = false;
  // The snapshot's generation rides along so a search admitted against a
  // retired snapshot can neither publish stale plans after a swap nor
  // capture coalescing traffic from the new snapshot.
  Result<PlanCache::PlanSetPtr> plans = snap->plan_cache->LookupOrCompute(
      key, snap->plan_generation,
      [this, &snap, &key, &computed_here, &serve, &clock,
       admission_deadline]() -> Result<MediatorPlanSet> {
        computed_here = true;
        return snap->mediator->Plan(key.canonical,
                                    options_.rewrite_parallelism,
                                    serve.tracer, options_.metrics, &clock,
                                    admission_deadline);
      });
  if (computed_here && admission_deadline > 0 && plans.ok() &&
      (*plans)->truncated && clock.now() >= admission_deadline) {
    // This request's budget cut the search short; the shortened plan list
    // is fine for *this* answer (§7 degrades if needed) but must not be
    // served to later, better-funded requests.
    snap->plan_cache->Invalidate(key);
    CountIf(options_.metrics, "serve.plan_cache_deadline_invalidations");
  }
  if (!plans.ok()) {
    failed_.fetch_add(1);
    CountIf(options_.metrics, "serve.failed");
    request_span.Annotate("outcome", "plan-search-error");
    return plans.status();
  }
  request_span.Annotate("plan_cache",
                        computed_here ? "miss" : "hit");
  CountIf(options_.metrics,
          computed_here ? "serve.plan_cache_misses" : "serve.plan_cache_hits");

  std::unique_ptr<Wrapper> wrapper;
  ExecutionPolicy policy;
  policy.retry = options_.retry;
  policy.allow_degraded = options_.allow_degraded;
  policy.strict = options_.strict;
  policy.rewrite_parallelism = options_.rewrite_parallelism;
  policy.seed = serve.seed;
  policy.clock = &clock;
  policy.tracer = serve.tracer;
  policy.metrics = options_.metrics;
  policy.resilience = &resilience_;
  policy.admission_deadline_ticks = admission_deadline;
  policy.backend = options_.backend;
  if (wrapper_factory_ != nullptr) {
    wrapper = wrapper_factory_(&clock, serve.seed);
    policy.wrapper = wrapper.get();
  }
  Result<DegradedAnswer> answer =
      snap->mediator->AnswerWithPlans(query, **plans, *snap->catalog, policy);
  if (!answer.ok()) {
    failed_.fetch_add(1);
    CountIf(options_.metrics, "serve.failed");
    request_span.Annotate("outcome",
                          StatusCodeToString(answer.status().code()));
    return answer.status();
  }
  completed_.fetch_add(1);
  CountIf(options_.metrics, "serve.completed");
  request_span.Annotate("outcome",
                        CompletenessToString(answer->completeness));
  ServeResponse response;
  response.answer = std::move(answer).value();
  response.plan_cache_hit = !computed_here;
  response.plan_search = (*plans)->search;
  response.plans = *plans;
  return response;
}

void QueryServer::UpdateCatalog(OemDatabase db) {
  std::lock_guard<std::mutex> writer(mutate_mu_);
  const std::shared_ptr<const Snapshot> current = snapshot();
  auto catalog = std::make_shared<SourceCatalog>(*current->catalog);
  catalog->Put(std::move(db));
  auto next = std::make_shared<Snapshot>(*current);
  next->catalog = std::move(catalog);
  Publish(std::move(next));
  catalog_swaps_.fetch_add(1);
}

void QueryServer::ReplaceCatalog(SourceCatalog catalog) {
  std::lock_guard<std::mutex> writer(mutate_mu_);
  const std::shared_ptr<const Snapshot> current = snapshot();
  auto next = std::make_shared<Snapshot>(*current);
  next->catalog = std::make_shared<const SourceCatalog>(std::move(catalog));
  Publish(std::move(next));
  catalog_swaps_.fetch_add(1);
}

MaintenanceReport QueryServer::ReplaceMediator(Mediator mediator) {
  std::lock_guard<std::mutex> writer(mutate_mu_);
  const std::shared_ptr<const Snapshot> current = snapshot();
  const CatalogDelta delta = ComputeCatalogDelta(
      current->mediator->sources(), current->mediator->constraints(),
      mediator.sources(), mediator.constraints());
  return ReplaceMediatorLocked(std::move(mediator), delta, current);
}

MaintenanceReport QueryServer::ReplaceMediator(Mediator mediator,
                                               const CatalogDelta& delta) {
  std::lock_guard<std::mutex> writer(mutate_mu_);
  return ReplaceMediatorLocked(std::move(mediator), delta, snapshot());
}

MaintenanceReport QueryServer::ReplaceMediatorLocked(
    Mediator mediator, const CatalogDelta& delta,
    const std::shared_ptr<const Snapshot>& current) {
  // Stale-index guard: a catalog index compiled for the retiring view set
  // must not serve the new one. Re-validate it against the incoming
  // mediator (ValidateAgainst pins names, definitions, and constraints —
  // the catalog fingerprint); carry it over only on success.
  if (mediator.catalog_index() == nullptr &&
      current->mediator->catalog_index() != nullptr) {
    if (mediator.AttachCatalogIndex(current->mediator->catalog_index())
            .ok()) {
      CountIf(options_.metrics, "catalog.index_carried");
    } else {
      CountIf(options_.metrics, "catalog.index_dropped_stale");
    }
  }
  MaintenanceReport report;
  report.delta_summary = delta.ToString();
  ScopedSpan maint_span(options_.maintenance_tracer, "maint.invalidate");
  maint_span.Annotate("delta", report.delta_summary);

  auto next = std::make_shared<Snapshot>();
  next->mediator = std::make_shared<const Mediator>(std::move(mediator));
  next->catalog = current->catalog;
  // The cache object survives the swap — entries the delta cannot affect
  // keep serving, and the hit/miss counters stay monotone. Stale inserts
  // and stale coalescing are fenced by the generation carried on the
  // snapshot (plan_cache.h).
  next->plan_cache = current->plan_cache;
  PlanCache& cache = *next->plan_cache;
  report.entries_examined = cache.size();

  const InvalidationDecider decider(delta, next->mediator->sources(),
                                    next->mediator->constraints());
  if (options_.maintenance == MaintenanceMode::kFullFlush ||
      decider.full_flush()) {
    report.full_flush = true;
    report.flush_reason = options_.maintenance == MaintenanceMode::kFullFlush
                              ? "full-flush maintenance mode"
                              : decider.flush_reason();
    report.entries_invalidated = report.entries_examined;
    cache.Flush();
    maint_full_flushes_.fetch_add(1);
    CountIf(options_.metrics, "maint.full_flushes");
  } else if (decider.no_op()) {
    // Identical catalogs: every entry (and every in-flight search) is
    // exact as-is; do not even start a new generation.
    report.noop = true;
    report.entries_retained = report.entries_examined;
    maint_noop_applies_.fetch_add(1);
    CountIf(options_.metrics, "maint.noop_applies");
  } else {
    cache.BeginGeneration();
    report.entries_invalidated = cache.InvalidateMatching(
        [&decider](const std::string&, const MediatorPlanSet& plans) {
          return decider.ShouldInvalidate(plans.footprint);
        });
    report.entries_retained =
        report.entries_examined - report.entries_invalidated;
    maint_selective_applies_.fetch_add(1);
    CountIf(options_.metrics, "maint.selective_applies");
  }
  maint_entries_examined_.fetch_add(report.entries_examined);
  maint_entries_invalidated_.fetch_add(report.entries_invalidated);
  maint_entries_retained_.fetch_add(report.entries_retained);
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("maint.entries_examined")
        ->Increment(report.entries_examined);
    options_.metrics->GetCounter("maint.entries_invalidated")
        ->Increment(report.entries_invalidated);
    options_.metrics->GetCounter("maint.entries_retained")
        ->Increment(report.entries_retained);
  }
  maint_span.Annotate("mode", report.full_flush
                                  ? "full-flush"
                                  : (report.noop ? "noop" : "selective"));
  maint_span.Annotate("examined",
                      static_cast<uint64_t>(report.entries_examined));
  maint_span.Annotate("invalidated",
                      static_cast<uint64_t>(report.entries_invalidated));
  maint_span.Annotate("retained",
                      static_cast<uint64_t>(report.entries_retained));

  next->plan_generation = cache.generation();
  Publish(std::move(next));
  mediator_swaps_.fetch_add(1);
  return report;
}

Status QueryServer::AttachCatalogIndex(
    std::shared_ptr<const ViewSetIndex> index) {
  std::lock_guard<std::mutex> writer(mutate_mu_);
  const std::shared_ptr<const Snapshot> current = snapshot();
  Mediator mediator = *current->mediator;
  TSLRW_RETURN_NOT_OK(mediator.AttachCatalogIndex(std::move(index)));
  auto next = std::make_shared<Snapshot>(*current);
  next->mediator = std::make_shared<const Mediator>(std::move(mediator));
  // The plan cache survives: an indexed plan search returns byte-identical
  // plan lists, so cached entries stay valid across the attach.
  Publish(std::move(next));
  CountIf(options_.metrics, "catalog.index_attached");
  return Status::OK();
}

bool QueryServer::has_catalog_index() const {
  return snapshot()->mediator->catalog_index() != nullptr;
}

uint64_t QueryServer::catalog_index_fingerprint() const {
  const std::shared_ptr<const ViewSetIndex>& index =
      snapshot()->mediator->catalog_index();
  return index == nullptr ? 0 : index->catalog_fingerprint();
}

void QueryServer::InvalidatePlans() {
  std::lock_guard<std::mutex> writer(mutate_mu_);
  const std::shared_ptr<const Snapshot> current = snapshot();
  // Flush in place: the cache object (and its hit/miss/coalesced counters)
  // survives, so Statsz deltas across an invalidation stay monotone. The
  // old code rebuilt the PlanCache here and silently zeroed them.
  current->plan_cache->Flush();
  auto next = std::make_shared<Snapshot>(*current);
  next->plan_generation = current->plan_cache->generation();
  Publish(std::move(next));
}

ServerStats QueryServer::stats() const {
  ServerStats stats;
  stats.accepted = accepted_.load();
  stats.rejected = rejected_.load();
  stats.completed = completed_.load();
  stats.failed = failed_.load();
  stats.catalog_swaps = catalog_swaps_.load();
  stats.mediator_swaps = mediator_swaps_.load();
  stats.maintenance.selective_applies = maint_selective_applies_.load();
  stats.maintenance.full_flushes = maint_full_flushes_.load();
  stats.maintenance.noop_applies = maint_noop_applies_.load();
  stats.maintenance.entries_examined = maint_entries_examined_.load();
  stats.maintenance.entries_invalidated = maint_entries_invalidated_.load();
  stats.maintenance.entries_retained = maint_entries_retained_.load();
  stats.threads = pool_.threads();
  stats.queue_depth = pool_.queue_depth();
  stats.queue_capacity = pool_.queue_capacity();
  const std::shared_ptr<const Snapshot> snap = snapshot();
  stats.plan_cache = snap->plan_cache->stats();
  stats.plan_cache_shards = snap->plan_cache->ShardStats();
  stats.retry_after_queued = stats.queue_depth;
  stats.breakers = resilience_.Snapshot();
  return stats;
}

std::string QueryServer::Statsz() const {
  std::string out = stats().ToString();
  if (options_.metrics != nullptr) {
    out += "metrics:\n";
    out += options_.metrics->ToText();
  }
  return out;
}

void QueryServer::Shutdown() { pool_.Shutdown(); }

}  // namespace tslrw
