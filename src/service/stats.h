#ifndef TSLRW_SERVICE_STATS_H_
#define TSLRW_SERVICE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mediator/resilience.h"

namespace tslrw {

/// \brief A point-in-time snapshot of plan-cache effectiveness. All
/// counters are cumulative since the cache (generation) was created.
struct PlanCacheStats {
  /// Lookups answered from a cached rewriting-plan list.
  uint64_t hits = 0;
  /// Lookups that had to run the plan search (the exponential part).
  uint64_t misses = 0;
  /// Entries dropped by per-shard LRU to stay within capacity.
  uint64_t evictions = 0;
  /// Lookups that blocked on another request's in-flight computation of
  /// the same canonical query instead of searching redundantly.
  uint64_t coalesced = 0;
  /// Plan searches running right now / the most ever concurrent. The peak
  /// can never exceed the number of distinct canonical queries in flight —
  /// that is the single-flight guarantee.
  uint64_t inflight_now = 0;
  uint64_t inflight_peak = 0;
  /// Cached plan lists currently resident.
  size_t entries = 0;

  double hit_rate() const {
    const uint64_t lookups = hits + misses + coalesced;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits + coalesced) /
                              static_cast<double>(lookups);
  }

  std::string ToString() const;
};

/// \brief Cumulative counters for incremental catalog maintenance: how
/// mediator swaps were applied to the plan cache (docs/SERVING.md
/// "Incremental maintenance").
struct MaintenanceStats {
  /// Swaps applied by selective, footprint-driven invalidation.
  uint64_t selective_applies = 0;
  /// Swaps that fell back to (or were configured as) a full flush.
  uint64_t full_flushes = 0;
  /// Swaps whose catalog delta was empty — nothing touched, no new
  /// generation started.
  uint64_t noop_applies = 0;
  /// Cached entries examined / dropped / kept across all swaps. On a full
  /// flush every resident entry counts as examined and invalidated.
  uint64_t entries_examined = 0;
  uint64_t entries_invalidated = 0;
  uint64_t entries_retained = 0;

  std::string ToString() const;
};

/// \brief A point-in-time snapshot of the serving layer as a whole.
struct ServerStats {
  /// Requests admitted to the queue / turned away at admission control.
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  /// Requests that produced an answer / a failure status.
  uint64_t completed = 0;
  uint64_t failed = 0;
  /// Snapshot swaps: catalog-only (plans survive) and mediator (plans
  /// invalidated — a new cache generation starts).
  uint64_t catalog_swaps = 0;
  uint64_t mediator_swaps = 0;
  size_t threads = 0;
  size_t queue_depth = 0;
  size_t queue_capacity = 0;
  PlanCacheStats plan_cache;
  /// Per-cache-shard counters (index = fingerprint % shards): where each
  /// lock shard's hits, misses, and coalesced waits landed. `plan_cache`
  /// is their sum; Statsz prints one line per shard.
  std::vector<PlanCacheStats> plan_cache_shards;
  /// How mediator swaps were applied to the plan cache.
  MaintenanceStats maintenance;
  /// The admission-control retry-after hint, in queued-request-times: a
  /// rejected client should wait roughly this many average request
  /// durations before resubmitting (it equals the current queue depth —
  /// the work ahead of a hypothetical next request).
  size_t retry_after_queued = 0;
  /// Per-endpoint circuit-breaker states (empty when the server runs
  /// without a resilience policy or no endpoint has been touched yet).
  std::vector<BreakerSnapshot> breakers;

  std::string ToString() const;
};

}  // namespace tslrw

#endif  // TSLRW_SERVICE_STATS_H_
