#include "runtime/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"

namespace tslrw {

ThreadPool::ThreadPool(const Options& options)
    : queue_capacity_(std::max<size_t>(options.queue_capacity, 1)),
      max_threads_(std::max<size_t>(options.threads, 1)) {
  if (options.metrics != nullptr) {
    submitted_metric_ = options.metrics->GetCounter("pool.submitted");
    rejected_full_metric_ = options.metrics->GetCounter("pool.rejected_full");
    rejected_shutdown_metric_ =
        options.metrics->GetCounter("pool.rejected_shutdown");
    tasks_run_metric_ = options.metrics->GetCounter("pool.tasks_run");
    queue_depth_metric_ = options.metrics->GetGauge("pool.queue_depth");
    depth_at_admit_metric_ =
        options.metrics->GetHistogram("pool.queue_depth_at_admit");
  }
  workers_.reserve(max_threads_);
  if (options.lazy_spawn) return;
  for (size_t i = 0; i < max_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      if (rejected_shutdown_metric_ != nullptr) {
        rejected_shutdown_metric_->Increment();
      }
      return Status::Unavailable("thread pool is shutting down");
    }
    if (queue_.size() >= queue_capacity_) {
      // Admission control: reject rather than queue unboundedly. The hint
      // tells the client how deep the backlog is so it can back off
      // proportionally instead of hammering a full queue.
      if (rejected_full_metric_ != nullptr) rejected_full_metric_->Increment();
      return Status::ResourceExhausted(
          StrCat("request queue is full (", queue_.size(), "/",
                 queue_capacity_,
                 "); retry-after: ~1 queued-request-time per waiting task"));
    }
    if (submitted_metric_ != nullptr) {
      submitted_metric_->Increment();
      depth_at_admit_metric_->Observe(queue_.size());
    }
    queue_.push_back(std::move(task));
    if (queue_depth_metric_ != nullptr) {
      queue_depth_metric_->Set(static_cast<int64_t>(queue_.size()));
    }
    // Lazy spawning: start another worker only when every started worker
    // is busy and the cap allows it. Eager pools start saturated
    // (workers_.size() == max_threads_), so this never fires for them.
    if (workers_.size() < max_threads_ && queue_.size() > idle_workers_) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
  work_ready_.notify_one();
  return Status::OK();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++idle_workers_;
      work_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      --idle_workers_;
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_metric_ != nullptr) {
        queue_depth_metric_->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    task();
    if (tasks_run_metric_ != nullptr) tasks_run_metric_->Increment();
  }
}

}  // namespace tslrw
