#ifndef TSLRW_RUNTIME_THREAD_POOL_H_
#define TSLRW_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace tslrw {

/// \brief A fixed-size worker pool with a bounded request queue and
/// admission control: when the queue is full, TrySubmit rejects with
/// kResourceExhausted instead of queueing unboundedly, so overload degrades
/// into fast, explicit push-back rather than memory growth.
///
/// Thread safety: all public members may be called from any thread.
class ThreadPool {
 public:
  struct Options {
    /// Worker threads; 0 behaves as 1.
    size_t threads = 4;
    /// Tasks admitted but not yet running; 0 behaves as 1. Tasks already
    /// executing do not count against the queue.
    size_t queue_capacity = 128;
    /// When true, worker threads are spawned on demand (at TrySubmit, when
    /// no idle worker can take the task) instead of all at construction.
    /// A pool sized for the worst case then only pays thread start-up for
    /// the concurrency a workload actually reaches — short-lived pools
    /// over a handful of tasks skip most of it. `threads` stays the cap.
    bool lazy_spawn = false;
    /// Optional metric sink (not owned; must outlive the pool). Publishes
    /// `pool.submitted` / `pool.rejected_full` / `pool.rejected_shutdown` /
    /// `pool.tasks_run` counters, a `pool.queue_depth` gauge, and a
    /// `pool.queue_depth_at_admit` histogram.
    MetricRegistry* metrics = nullptr;
  };

  explicit ThreadPool(const Options& options);
  /// Drains every admitted task, then joins the workers (tasks admitted
  /// before destruction always run — their futures must complete).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Admits \p task, or rejects with kResourceExhausted (queue full — the
  /// message carries a retry-after hint) / kUnavailable (shutting down).
  Status TrySubmit(std::function<void()> task);

  /// Stops admitting work, drains the queue, and joins. Idempotent; also
  /// run by the destructor.
  void Shutdown();

  size_t threads() const { return max_threads_; }
  size_t queue_capacity() const { return queue_capacity_; }
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  const size_t queue_capacity_;
  const size_t max_threads_;
  /// Metric handles resolved once at construction (null when Options had
  /// no registry), so the hot path pays one branch + one relaxed add.
  Counter* submitted_metric_ = nullptr;
  Counter* rejected_full_metric_ = nullptr;
  Counter* rejected_shutdown_metric_ = nullptr;
  Counter* tasks_run_metric_ = nullptr;
  Gauge* queue_depth_metric_ = nullptr;
  Histogram* depth_at_admit_metric_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  size_t idle_workers_ = 0;  // workers blocked in work_ready_.wait
  std::vector<std::thread> workers_;
};

}  // namespace tslrw

#endif  // TSLRW_RUNTIME_THREAD_POOL_H_
