#ifndef TSLRW_EQUIV_EQUIVALENCE_H_
#define TSLRW_EQUIV_EQUIVALENCE_H_

#include "common/result.h"
#include "equiv/component.h"
#include "rewrite/chase.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief The \S4 compile-time equivalence test for TSL queries
/// (Theorems 4.2 and 4.3): chase both sides, decompose them into graph
/// component queries, and check mutual coverage by mappings.
///
/// Rules whose chase is unsatisfiable contribute nothing (they can never
/// produce answer objects) and are dropped rather than reported as errors.
/// Queries are normalized (normal form + chase under \p options) before
/// decomposition, which is what makes the syntactic mapping test complete
/// under the oid key dependencies (\S5).
Result<bool> AreEquivalent(const TslRuleSet& a, const TslRuleSet& b,
                           const ChaseOptions& options = {});

Result<bool> AreEquivalent(const TslQuery& a, const TslQuery& b,
                           const ChaseOptions& options = {});

/// \brief One-sided test: every answer-graph component produced by \p inner
/// is also produced by \p outer ("exposed" containment in the sense the
/// paper borrows from [18]).
Result<bool> IsContainedIn(const TslRuleSet& inner, const TslRuleSet& outer,
                           const ChaseOptions& options = {});

/// \brief Amortized equivalence against one fixed reference query: chases
/// and decomposes the reference once, then tests candidates against it.
///
/// The \S3.4 rewriting loop calls the equivalence test once per candidate
/// with the *same* right-hand side (the chased query); this class factors
/// that work out of the loop.
class EquivalenceTester {
 public:
  /// Prepares the tester; fails only on hard chase errors (an
  /// unsatisfiable reference becomes the empty component set).
  static Result<EquivalenceTester> Make(const TslRuleSet& reference,
                                        const ChaseOptions& options = {});

  /// Whether \p candidate (chased under the same options) is equivalent to
  /// the reference.
  Result<bool> EquivalentTo(const TslRuleSet& candidate) const;

  /// Whether \p candidate is contained in the reference.
  Result<bool> ContainedInReference(const TslRuleSet& candidate) const;

 private:
  EquivalenceTester(std::vector<ComponentQuery> components,
                    ChaseOptions options)
      : components_(std::move(components)), options_(options) {}

  std::vector<ComponentQuery> components_;
  ChaseOptions options_;
};

}  // namespace tslrw

#endif  // TSLRW_EQUIV_EQUIVALENCE_H_
