#include "equiv/component.h"

#include "common/string_util.h"
#include "rewrite/mapping.h"

namespace tslrw {

std::string_view ComponentKindToString(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kTop: return "top";
    case ComponentKind::kMember: return "member";
    case ComponentKind::kObject: return "object";
  }
  return "?";
}

std::string ComponentQuery::ToString() const {
  std::string head;
  switch (kind) {
    case ComponentKind::kTop:
      head = StrCat("top(", head_terms[0].ToString(), ")");
      break;
    case ComponentKind::kMember:
      head = StrCat("member(", head_terms[0].ToString(), ",",
                    head_terms[1].ToString(), ")");
      break;
    case ComponentKind::kObject:
      head = StrCat("<", head_terms[0].ToString(), " ", label.ToString(), " ",
                    value.ToString(), ">");
      break;
  }
  return StrCat(head, " :- ",
                JoinMapped(body, " AND ",
                           [](const Path& p) { return p.ToString(); }));
}

namespace {

void DecomposePattern(const ObjectPattern& pattern,
                      const std::vector<Path>& body,
                      std::vector<ComponentQuery>* out) {
  ComponentQuery object;
  object.kind = ComponentKind::kObject;
  object.head_terms = {pattern.oid};
  object.label = pattern.label;
  if (pattern.value.is_term()) {
    object.value = pattern.value;
  } else {
    object.value = PatternValue::FromSet({});  // members live in kMember
  }
  object.body = body;
  out->push_back(std::move(object));
  if (pattern.value.is_set()) {
    for (const ObjectPattern& member : pattern.value.set()) {
      ComponentQuery edge;
      edge.kind = ComponentKind::kMember;
      edge.head_terms = {pattern.oid, member.oid};
      edge.body = body;
      out->push_back(std::move(edge));
      DecomposePattern(member, body, out);
    }
  }
}

}  // namespace

Result<std::vector<ComponentQuery>> DecomposeQuery(const TslQuery& query) {
  TSLRW_ASSIGN_OR_RETURN(std::vector<Path> body, BodyPaths(query));
  std::vector<ComponentQuery> out;
  ComponentQuery top;
  top.kind = ComponentKind::kTop;
  top.head_terms = {query.head.oid};
  top.body = body;
  out.push_back(std::move(top));
  DecomposePattern(query.head, body, &out);
  return out;
}

Result<std::vector<ComponentQuery>> DecomposeRuleSet(const TslRuleSet& rules) {
  std::vector<ComponentQuery> out;
  for (const TslQuery& rule : rules.rules) {
    TSLRW_ASSIGN_OR_RETURN(std::vector<ComponentQuery> parts,
                           DecomposeQuery(rule));
    out.insert(out.end(), std::make_move_iterator(parts.begin()),
               std::make_move_iterator(parts.end()));
  }
  return out;
}

bool ComponentMapsOnto(const ComponentQuery& from, const ComponentQuery& to) {
  if (from.kind != to.kind) return false;
  if (from.head_terms.size() != to.head_terms.size()) return false;
  Substitution seed;
  for (size_t i = 0; i < from.head_terms.size(); ++i) {
    if (!MatchInto(from.head_terms[i], to.head_terms[i], &seed)) return false;
  }
  if (from.kind == ComponentKind::kObject) {
    if (!MatchInto(from.label, to.label, &seed)) return false;
    // Values must correspond exactly: both `{}` markers, or terms related
    // by the mapping. A copy directive (term) never maps onto constructed
    // members (`{}`) or vice versa — they build different graphs.
    if (from.value.is_set() != to.value.is_set()) return false;
    if (from.value.is_term() &&
        !MatchInto(from.value.term(), to.value.term(), &seed)) {
      return false;
    }
  }
  return ExistsBodyMapping(from.body, to.body, seed);
}

bool ComponentsCover(const std::vector<ComponentQuery>& covering,
                     const std::vector<ComponentQuery>& covered) {
  for (const ComponentQuery& p : covered) {
    bool found = false;
    for (const ComponentQuery& t : covering) {
      if (ComponentMapsOnto(t, p)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace tslrw
