#include "equiv/equivalence.h"

namespace tslrw {

namespace {

/// Chases every rule; unsatisfiable rules are dropped (they contribute no
/// answer objects), other chase failures propagate.
Result<TslRuleSet> ChaseRules(const TslRuleSet& rules,
                              const ChaseOptions& options) {
  TslRuleSet out;
  for (const TslQuery& rule : rules.rules) {
    Result<TslQuery> chased = ChaseQuery(rule, options);
    if (!chased.ok()) {
      if (chased.status().IsUnsatisfiable()) continue;
      return chased.status();
    }
    out.rules.push_back(std::move(chased).value());
  }
  return out;
}

}  // namespace

Result<bool> AreEquivalent(const TslRuleSet& a, const TslRuleSet& b,
                           const ChaseOptions& options) {
  TSLRW_ASSIGN_OR_RETURN(TslRuleSet ca, ChaseRules(a, options));
  TSLRW_ASSIGN_OR_RETURN(TslRuleSet cb, ChaseRules(b, options));
  TSLRW_ASSIGN_OR_RETURN(std::vector<ComponentQuery> da, DecomposeRuleSet(ca));
  TSLRW_ASSIGN_OR_RETURN(std::vector<ComponentQuery> db, DecomposeRuleSet(cb));
  return ComponentsCover(da, db) && ComponentsCover(db, da);
}

Result<bool> AreEquivalent(const TslQuery& a, const TslQuery& b,
                           const ChaseOptions& options) {
  return AreEquivalent(TslRuleSet::Single(a), TslRuleSet::Single(b), options);
}

Result<bool> IsContainedIn(const TslRuleSet& inner, const TslRuleSet& outer,
                           const ChaseOptions& options) {
  TSLRW_ASSIGN_OR_RETURN(TslRuleSet ci, ChaseRules(inner, options));
  TSLRW_ASSIGN_OR_RETURN(TslRuleSet co, ChaseRules(outer, options));
  TSLRW_ASSIGN_OR_RETURN(std::vector<ComponentQuery> di, DecomposeRuleSet(ci));
  TSLRW_ASSIGN_OR_RETURN(std::vector<ComponentQuery> dc, DecomposeRuleSet(co));
  return ComponentsCover(dc, di);
}

Result<EquivalenceTester> EquivalenceTester::Make(const TslRuleSet& reference,
                                                  const ChaseOptions& options) {
  TSLRW_ASSIGN_OR_RETURN(TslRuleSet chased, ChaseRules(reference, options));
  TSLRW_ASSIGN_OR_RETURN(std::vector<ComponentQuery> components,
                         DecomposeRuleSet(chased));
  return EquivalenceTester(std::move(components), options);
}

Result<bool> EquivalenceTester::EquivalentTo(
    const TslRuleSet& candidate) const {
  TSLRW_ASSIGN_OR_RETURN(TslRuleSet chased, ChaseRules(candidate, options_));
  TSLRW_ASSIGN_OR_RETURN(std::vector<ComponentQuery> theirs,
                         DecomposeRuleSet(chased));
  return ComponentsCover(components_, theirs) &&
         ComponentsCover(theirs, components_);
}

Result<bool> EquivalenceTester::ContainedInReference(
    const TslRuleSet& candidate) const {
  TSLRW_ASSIGN_OR_RETURN(TslRuleSet chased, ChaseRules(candidate, options_));
  TSLRW_ASSIGN_OR_RETURN(std::vector<ComponentQuery> theirs,
                         DecomposeRuleSet(chased));
  return ComponentsCover(components_, theirs);
}

}  // namespace tslrw
