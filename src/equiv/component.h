#ifndef TSLRW_EQUIV_COMPONENT_H_
#define TSLRW_EQUIV_COMPONENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "tsl/ast.h"
#include "tsl/normal_form.h"

namespace tslrw {

/// \brief The three kinds of graph component queries a TSL rule decomposes
/// into (\S4): roots, edges, and objects of the answer graph.
enum class ComponentKind {
  kTop,     ///< `top(t)` — t is a root of the answer graph
  kMember,  ///< `member(t1, t2)` — edge from object t1 to subobject t2
  kObject,  ///< `<t label value>` — an object's label and (emptied) value
};

std::string_view ComponentKindToString(ComponentKind kind);

/// \brief One graph component query: a finer-grain rule whose head
/// describes a single root / edge / object and whose body is the TSL rule's
/// body (Example 4.1).
struct ComponentQuery {
  ComponentKind kind;
  /// kTop: {root oid term}. kMember: {parent oid term, child oid term}.
  /// kObject: {oid term}.
  std::vector<Term> head_terms;
  /// kObject only: the object's label term.
  Term label;
  /// kObject only: the object's value — a term, or the `{}` marker for set
  /// objects (their members are carried by kMember components).
  PatternValue value;
  /// The originating rule's body, as normal-form paths.
  std::vector<Path> body;

  /// Datalog-flavoured rendering, e.g. `member(l(X),f(Y)) :- ...`.
  std::string ToString() const;
};

/// \brief Decomposes a TSL rule into its graph component queries: one top
/// rule, one member rule per object–subobject relationship in the head, and
/// one object rule per head object pattern (\S4, Example 4.1). The rule's
/// body must be in normal form.
Result<std::vector<ComponentQuery>> DecomposeQuery(const TslQuery& query);

/// \brief Decomposition of a union of rules: the concatenation of the
/// rules' decompositions (the \S4 test is defined on sets).
Result<std::vector<ComponentQuery>> DecomposeRuleSet(const TslRuleSet& rules);

/// \brief Whether some mapping carries \p from onto \p to: kinds equal, the
/// head of `from` maps onto the head of `to`, and every body path of `from`
/// maps into a body path of `to` (the Theorem 4.2 mapping; its existence
/// means `to` is contained in `from`).
bool ComponentMapsOnto(const ComponentQuery& from, const ComponentQuery& to);

/// \brief Theorem 4.2: every component of \p covered has a component of
/// \p covering mapping onto it.
bool ComponentsCover(const std::vector<ComponentQuery>& covering,
                     const std::vector<ComponentQuery>& covered);

}  // namespace tslrw

#endif  // TSLRW_EQUIV_COMPONENT_H_
