#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <sstream>

namespace tslrw {

size_t Histogram::BucketIndex(uint64_t sample) {
  return static_cast<size_t>(std::bit_width(sample));
}

std::pair<uint64_t, uint64_t> Histogram::BucketRange(size_t i) {
  if (i == 0) return {0, 0};
  uint64_t lo = uint64_t{1} << (i - 1);
  uint64_t hi = (i >= 64) ? std::numeric_limits<uint64_t>::max()
                          : (uint64_t{1} << i) - 1;
  return {lo, hi};
}

void Histogram::Observe(uint64_t sample) {
  buckets_[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->count();
    h.sum = histogram->sum();
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      uint64_t c = histogram->bucket(i);
      if (c != 0) h.buckets.emplace_back(i, c);
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << name << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    out << name << " " << value << "\n";
  }
  for (const auto& h : histograms) {
    out << h.name << " count=" << h.count << " sum=" << h.sum;
    for (const auto& [index, count] : h.buckets) {
      auto [lo, hi] = Histogram::BucketRange(index);
      out << " [" << lo;
      if (hi != lo) out << ".." << hi;
      out << "]=" << count;
    }
    out << "\n";
  }
  return out.str();
}

std::string MetricRegistry::ToText() const { return Snapshot().ToText(); }

}  // namespace tslrw
