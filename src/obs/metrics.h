#ifndef TSLRW_OBS_METRICS_H_
#define TSLRW_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tslrw {

/// \brief Monotonic event count. The write path is a single relaxed
/// fetch_add — safe to hit from every worker and request thread.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Point-in-time level (queue depth, in-flight requests). Unlike a
/// Counter it may go down.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Bounded histogram over uint64 samples with power-of-two buckets.
///
/// Bucket 0 holds the value 0; bucket i >= 1 holds values in
/// [2^(i-1), 2^i - 1]. 65 buckets cover the whole uint64 range, so Observe
/// never allocates: it is three relaxed atomic adds, which keeps it safe on
/// the rewriter's verification hot path.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void Observe(uint64_t sample);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Index of the bucket \p sample lands in (0 for 0, else bit width).
  static size_t BucketIndex(uint64_t sample);
  /// Inclusive [lo, hi] range of values covered by bucket \p i.
  static std::pair<uint64_t, uint64_t> BucketRange(size_t i);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// \brief One histogram's state as read at snapshot time.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  /// Non-empty buckets only, as (bucket index, count), ascending.
  std::vector<std::pair<size_t, uint64_t>> buckets;
};

/// \brief A consistent-enough, sorted read of every registered metric.
///
/// Values are read with relaxed loads, so a snapshot taken while writers
/// are running reflects each metric at *some* recent moment (monotonicity
/// per counter still holds); a snapshot taken at quiescence is exact.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Human-readable `/statsz` style dump, one metric per line, sorted by
  /// name — deterministic for deterministic values.
  std::string ToText() const;
};

/// \brief Names metrics and owns their storage.
///
/// Registration (GetCounter / GetGauge / GetHistogram) takes a mutex and
/// is expected at setup time or on first use; the returned pointers are
/// stable for the registry's lifetime, so hot paths cache them and pay
/// only the atomic write. A null registry is always legal at call sites:
/// instrumented code guards with `if (metrics)` or caches null handles.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  /// Shorthand for Snapshot().ToText().
  std::string ToText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Adds \p delta to the named counter iff \p metrics is non-null.
inline void CountIf(MetricRegistry* metrics, std::string_view name,
                    uint64_t delta = 1) {
  if (metrics != nullptr && delta != 0) metrics->GetCounter(name)->Increment(delta);
}

/// Observes \p sample in the named histogram iff \p metrics is non-null.
inline void ObserveIf(MetricRegistry* metrics, std::string_view name,
                      uint64_t sample) {
  if (metrics != nullptr) metrics->GetHistogram(name)->Observe(sample);
}

}  // namespace tslrw

#endif  // TSLRW_OBS_METRICS_H_
