#include "obs/trace.h"

#include <algorithm>
#include <sstream>

namespace tslrw {

namespace {

/// Minimal JSON string escaping: quotes, backslashes, and control bytes.
/// Span names and event texts are ASCII by construction, so this is enough
/// for chrome://tracing / Perfetto to load the output.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int Tracer::Begin(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span;
  span.name = std::string(name);
  span.start_ticks = NowTicks();
  span.end_ticks = span.start_ticks;
  span.parent = open_.empty() ? -1 : open_.back();
  int handle = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_.push_back(handle);
  if (record_wall_time_) {
    wall_starts_.resize(spans_.size());
    wall_starts_[static_cast<size_t>(handle)] = std::chrono::steady_clock::now();
  }
  return handle;
}

void Tracer::End(int handle) {
  std::lock_guard<std::mutex> lock(mu_);
  if (handle < 0 || static_cast<size_t>(handle) >= spans_.size()) return;
  TraceSpan& span = spans_[static_cast<size_t>(handle)];
  if (!span.open) return;
  span.open = false;
  span.end_ticks = NowTicks();
  if (record_wall_time_ &&
      static_cast<size_t>(handle) < wall_starts_.size()) {
    auto elapsed = std::chrono::steady_clock::now() -
                   wall_starts_[static_cast<size_t>(handle)];
    span.wall_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }
  // Well-bracketed callers close the innermost span; tolerate (and repair)
  // out-of-order closes so a dump is always possible.
  auto it = std::find(open_.rbegin(), open_.rend(), handle);
  if (it != open_.rend()) open_.erase(std::next(it).base());
}

void Tracer::Annotate(int handle, std::string_view key,
                      std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (handle < 0 || static_cast<size_t>(handle) >= spans_.size()) return;
  spans_[static_cast<size_t>(handle)].annotations.push_back(
      {std::string(key), std::string(value)});
}

void Tracer::Annotate(int handle, std::string_view key, uint64_t value) {
  Annotate(handle, key, std::to_string(value));
}

void Tracer::Event(int handle, std::string_view text) {
  std::lock_guard<std::mutex> lock(mu_);
  if (handle < 0 || static_cast<size_t>(handle) >= spans_.size()) return;
  spans_[static_cast<size_t>(handle)].events.push_back(
      {NowTicks(), std::string(text)});
}

void Tracer::EventHere(std::string_view text) {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_.empty()) return;
  spans_[static_cast<size_t>(open_.back())].events.push_back(
      {NowTicks(), std::string(text)});
}

Status Tracer::Validate() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& span = spans_[i];
    if (span.open) {
      return Status::Internal("trace: span '" + span.name + "' (#" +
                              std::to_string(i) + ") was never closed");
    }
    if (span.start_ticks > span.end_ticks) {
      return Status::Internal("trace: span '" + span.name +
                              "' ends before it starts");
    }
    if (span.parent >= 0) {
      if (static_cast<size_t>(span.parent) >= i) {
        return Status::Internal("trace: span '" + span.name +
                                "' has parent #" +
                                std::to_string(span.parent) +
                                " not preceding it");
      }
      const TraceSpan& parent = spans_[static_cast<size_t>(span.parent)];
      if (span.start_ticks < parent.start_ticks ||
          span.end_ticks > parent.end_ticks) {
        return Status::Internal("trace: span '" + span.name +
                                "' [" + std::to_string(span.start_ticks) +
                                ".." + std::to_string(span.end_ticks) +
                                "] overflows parent '" + parent.name + "' [" +
                                std::to_string(parent.start_ticks) + ".." +
                                std::to_string(parent.end_ticks) + "]");
      }
    }
    for (const TraceEvent& event : span.events) {
      if (event.at_ticks < span.start_ticks ||
          event.at_ticks > span.end_ticks) {
        return Status::Internal("trace: event '" + event.text +
                                "' at tick " +
                                std::to_string(event.at_ticks) +
                                " outside span '" + span.name + "'");
      }
    }
  }
  return Status::OK();
}

std::string Tracer::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "trace (" << spans_.size() << " spans)\n";
  // Depth by chasing parents; spans_ is in Begin order, which is a
  // pre-order traversal of the forest, so printing in index order with
  // indentation renders the tree.
  std::vector<int> depth(spans_.size(), 0);
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& span = spans_[i];
    if (span.parent >= 0) depth[i] = depth[static_cast<size_t>(span.parent)] + 1;
    for (int d = 0; d < depth[i]; ++d) out << "  ";
    out << "- " << span.name << " [" << span.start_ticks << ".."
        << span.end_ticks << "]";
    if (span.open) out << " OPEN";
    if (record_wall_time_) out << " wall_us=" << span.wall_us;
    for (const TraceAnnotation& a : span.annotations) {
      out << " " << a.key << "=" << a.value;
    }
    out << "\n";
    for (const TraceEvent& event : span.events) {
      for (int d = 0; d < depth[i] + 1; ++d) out << "  ";
      out << "@" << event.at_ticks << " " << event.text << "\n";
    }
  }
  return out.str();
}

std::string Tracer::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : spans_) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << JsonEscape(span.name)
        << "\",\"cat\":\"tslrw\",\"ph\":\"X\",\"ts\":" << span.start_ticks
        << ",\"dur\":" << (span.end_ticks - span.start_ticks)
        << ",\"pid\":1,\"tid\":1";
    if (!span.annotations.empty() || (record_wall_time_ && span.wall_us != 0)) {
      out << ",\"args\":{";
      bool first_arg = true;
      for (const TraceAnnotation& a : span.annotations) {
        if (!first_arg) out << ",";
        first_arg = false;
        out << "\"" << JsonEscape(a.key) << "\":\"" << JsonEscape(a.value)
            << "\"";
      }
      if (record_wall_time_ && span.wall_us != 0) {
        if (!first_arg) out << ",";
        out << "\"wall_us\":\"" << span.wall_us << "\"";
      }
      out << "}";
    }
    out << "}";
    for (const TraceEvent& event : span.events) {
      out << ",\n{\"name\":\"" << JsonEscape(event.text)
          << "\",\"cat\":\"tslrw\",\"ph\":\"i\",\"ts\":" << event.at_ticks
          << ",\"pid\":1,\"tid\":1,\"s\":\"t\"}";
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

std::vector<TraceSpan> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

}  // namespace tslrw
