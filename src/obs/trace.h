#ifndef TSLRW_OBS_TRACE_H_
#define TSLRW_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/virtual_clock.h"

namespace tslrw {

/// \brief A deterministic key=value fact attached to a span at End time or
/// along the way (counts, decisions, outcome codes).
struct TraceAnnotation {
  std::string key;
  std::string value;
};

/// \brief An instant event inside a span (a retry firing, a fault injected,
/// a failover decision), stamped on the virtual clock.
struct TraceEvent {
  uint64_t at_ticks = 0;
  std::string text;
};

/// \brief One node of the span tree.
///
/// Timestamps are virtual-clock ticks, so with a fixed seed the whole
/// struct — and therefore every dump derived from it — is deterministic.
/// `wall_us` is the one exception: it is only populated when the owning
/// Tracer was built with `record_wall_time = true` and is rendered only
/// then, keeping the default dumps byte-identical across runs.
struct TraceSpan {
  std::string name;
  uint64_t start_ticks = 0;
  uint64_t end_ticks = 0;
  bool open = true;
  /// Index of the enclosing span in Tracer::spans(), or -1 for a root.
  int parent = -1;
  std::vector<TraceAnnotation> annotations;
  std::vector<TraceEvent> events;
  /// Wall-clock duration in microseconds; 0 unless wall time was recorded.
  uint64_t wall_us = 0;
};

/// \brief Builds a span tree off a VirtualClock and renders it as text or
/// Chrome `trace_event` JSON (loadable in chrome://tracing and Perfetto).
///
/// Spans must be created on the deterministic control path — the request
/// thread, the rewriter's producing thread — never inside worker threads,
/// whose interleaving is scheduling-dependent. Parentage is the stack of
/// currently-open spans, so the tracer expects one nesting discipline
/// (Begin/End properly bracketed, innermost first), which Validate()
/// checks. All methods take an internal mutex: a tracer is safe to *read*
/// (dump, snapshot) while another thread drives it, but concurrent Begin
/// calls from several threads would race for parentage and defeat
/// determinism — instrumented code never does that.
class Tracer {
 public:
  /// \param clock the virtual clock spans are stamped on; must outlive the
  ///        tracer. May be null, in which case every timestamp is 0 and
  ///        only structure, annotations, and events carry information.
  /// \param record_wall_time also record wall-clock span durations
  ///        (`wall_us`), trading byte-identical dumps for real timings.
  explicit Tracer(const VirtualClock* clock, bool record_wall_time = false)
      : clock_(clock), record_wall_time_(record_wall_time) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span named \p name under the innermost open span (or as a
  /// root) and returns its handle (index into spans()).
  int Begin(std::string_view name);

  /// Closes the span \p handle, stamping its end tick.
  void End(int handle);

  /// Attaches key=value to span \p handle. Annotation order is the call
  /// order, which must itself be deterministic.
  void Annotate(int handle, std::string_view key, std::string_view value);
  void Annotate(int handle, std::string_view key, uint64_t value);

  /// Records an instant event inside span \p handle at the current tick.
  void Event(int handle, std::string_view text);
  /// Records an instant event inside the innermost open span; a root-level
  /// pseudo-span is *not* created — with no open span the event is dropped.
  /// This is the hook for decorators (FaultInjector) that see the world
  /// mid-call without holding a span handle.
  void EventHere(std::string_view text);

  /// Rebinds the clock spans are stamped on. The serving layer builds the
  /// VirtualClock per request *after* the caller built its tracer, so it
  /// attaches the request clock here before opening the request span. The
  /// caller must rebind (or pass null) before reusing the tracer once the
  /// clock is gone; recorded spans and dumps never touch the clock again.
  void set_clock(const VirtualClock* clock) {
    std::lock_guard<std::mutex> lock(mu_);
    clock_ = clock;
  }

  /// Well-formedness: every span closed, start <= end, parents precede and
  /// contain their children, events inside their span's interval.
  Status Validate() const;

  /// Indented tree, one span per line with `[start..end]` ticks and
  /// annotations, events as `@tick` lines. Deterministic unless wall time
  /// was recorded.
  std::string ToText() const;

  /// Chrome trace_event JSON: one "ph":"X" complete event per span
  /// (ts = start ticks, dur = span ticks) and one "ph":"i" instant event
  /// per TraceEvent, all on pid 1 / tid 1.
  std::string ToChromeJson() const;

  /// Copy of the span tree (indices are stable handles).
  std::vector<TraceSpan> spans() const;

  bool record_wall_time() const { return record_wall_time_; }
  size_t span_count() const;

 private:
  uint64_t NowTicks() const { return clock_ != nullptr ? clock_->now() : 0; }

  const VirtualClock* clock_;
  const bool record_wall_time_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  /// Indices of currently-open spans, outermost first.
  std::vector<int> open_;
  /// Wall-clock start per span, parallel to spans_; only filled when
  /// record_wall_time_ is set.
  std::vector<std::chrono::steady_clock::time_point> wall_starts_;
};

/// \brief RAII span that tolerates a null tracer, so instrumented code
/// reads the same with observability on or off:
///
///     ScopedSpan span(options.tracer, "rewrite.search");
///     span.Annotate("candidates", n);
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view name) : tracer_(tracer) {
    if (tracer_ != nullptr) handle_ = tracer_->Begin(name);
  }
  ~ScopedSpan() { EndNow(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Annotate(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr && handle_ >= 0) tracer_->Annotate(handle_, key, value);
  }
  void Annotate(std::string_view key, uint64_t value) {
    if (tracer_ != nullptr && handle_ >= 0) tracer_->Annotate(handle_, key, value);
  }
  void Event(std::string_view text) {
    if (tracer_ != nullptr && handle_ >= 0) tracer_->Event(handle_, text);
  }
  /// Closes the span early (idempotent; the destructor becomes a no-op).
  void EndNow() {
    if (tracer_ != nullptr && handle_ >= 0) tracer_->End(handle_);
    handle_ = -1;
  }

  int handle() const { return handle_; }

 private:
  Tracer* tracer_;
  int handle_ = -1;
};

}  // namespace tslrw

#endif  // TSLRW_OBS_TRACE_H_
