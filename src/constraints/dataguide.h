#ifndef TSLRW_CONSTRAINTS_DATAGUIDE_H_
#define TSLRW_CONSTRAINTS_DATAGUIDE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/dtd.h"
#include "oem/database.h"

namespace tslrw {

/// \brief A strong DataGuide over an OEM database (Goldman & Widom [16],
/// cited in \S3.3 as a structural description usable by the rewriting
/// algorithm alongside DTDs).
///
/// Every distinct label path from the roots is represented by exactly one
/// guide node; a node's target set is the set of source objects reachable
/// by that path. Built by the classic subset (determinization)
/// construction, which handles DAGs and cycles.
class DataGuide {
 public:
  /// Builds the strong DataGuide of \p db.
  static DataGuide Build(const OemDatabase& db);

  struct Node {
    /// Source objects reachable by this node's label path(s).
    std::set<Oid> targets;
    /// Outgoing edges: child label -> guide node index.
    std::map<std::string, size_t> children;
    /// True when some target is an atomic object.
    bool has_atomic = false;
    /// True when some target is a set object.
    bool has_set = false;
  };

  const std::vector<Node>& nodes() const { return nodes_; }
  /// The synthetic root whose children are the database's root labels.
  size_t root() const { return 0; }

  /// Resolves a label path from the root; nullptr when no object matches.
  const Node* Lookup(const std::vector<std::string>& path) const;

  /// All labels reachable at the end of \p path ("what can follow?"),
  /// empty when the path matches nothing — the query-formulation service
  /// DataGuides exist for.
  std::set<std::string> LabelsAfter(const std::vector<std::string>& path) const;

  /// The number of distinct label paths represented (guide size).
  size_t size() const { return nodes_.size(); }

 private:
  std::vector<Node> nodes_;
};

/// \brief Derives a DTD-shaped structural summary from an OEM instance, so
/// instance-level structure can drive the \S3.3 machinery (label inference
/// and labeled FDs) when no authored DTD exists.
///
/// For every label l, the content model unions over all l-objects:
/// a child label b gets multiplicity `kOne` when every l-object has exactly
/// one b child, `kOptional` when at most one, `kStar` otherwise; l is CDATA
/// when every l-object is atomic. Labels whose objects are sometimes atomic
/// and sometimes set-valued are omitted (no sound summary exists in the DTD
/// vocabulary).
///
/// The derived constraints are valid for the given instance — the right
/// contract for cached-query rewriting over a repository snapshot; for live
/// sources an authored DTD remains the sound choice.
Result<Dtd> InferDtdFromData(const OemDatabase& db);

}  // namespace tslrw

#endif  // TSLRW_CONSTRAINTS_DATAGUIDE_H_
