#include "constraints/dataguide.h"

#include <deque>

#include "common/string_util.h"

namespace tslrw {

DataGuide DataGuide::Build(const OemDatabase& db) {
  DataGuide guide;
  std::map<std::set<Oid>, size_t> index;  // target set -> node id

  // Node 0: synthetic root standing above the database roots.
  guide.nodes_.push_back(Node{});
  std::deque<size_t> work;

  auto intern = [&](std::set<Oid> targets) -> size_t {
    auto it = index.find(targets);
    if (it != index.end()) return it->second;
    size_t id = guide.nodes_.size();
    Node node;
    for (const Oid& oid : targets) {
      const OemObject* obj = db.Find(oid);
      if (obj == nullptr) continue;
      node.has_atomic = node.has_atomic || obj->is_atomic();
      node.has_set = node.has_set || !obj->is_atomic();
    }
    node.targets = std::move(targets);
    guide.nodes_.push_back(std::move(node));
    index.emplace(guide.nodes_.back().targets, id);
    work.push_back(id);
    return id;
  };

  // The synthetic root's children group the database roots by label.
  {
    std::map<std::string, std::set<Oid>> by_label;
    for (const Oid& r : db.roots()) {
      const OemObject* obj = db.Find(r);
      if (obj != nullptr) by_label[obj->label].insert(r);
    }
    for (auto& [label, targets] : by_label) {
      guide.nodes_[0].children[label] = intern(std::move(targets));
    }
  }

  while (!work.empty()) {
    size_t id = work.front();
    work.pop_front();
    std::map<std::string, std::set<Oid>> by_label;
    for (const Oid& oid : guide.nodes_[id].targets) {
      const OemObject* obj = db.Find(oid);
      if (obj == nullptr || obj->is_atomic()) continue;
      for (const Oid& child : obj->value.children()) {
        const OemObject* cobj = db.Find(child);
        if (cobj != nullptr) by_label[cobj->label].insert(child);
      }
    }
    for (auto& [label, targets] : by_label) {
      size_t child_id = intern(std::move(targets));
      guide.nodes_[id].children[label] = child_id;
    }
  }
  return guide;
}

const DataGuide::Node* DataGuide::Lookup(
    const std::vector<std::string>& path) const {
  size_t node = root();
  for (const std::string& label : path) {
    auto it = nodes_[node].children.find(label);
    if (it == nodes_[node].children.end()) return nullptr;
    node = it->second;
  }
  return &nodes_[node];
}

std::set<std::string> DataGuide::LabelsAfter(
    const std::vector<std::string>& path) const {
  std::set<std::string> labels;
  const Node* node = Lookup(path);
  if (node == nullptr) return labels;
  for (const auto& [label, child] : node->children) labels.insert(label);
  return labels;
}

Result<Dtd> InferDtdFromData(const OemDatabase& db) {
  struct Stats {
    bool seen_atomic = false;
    bool seen_set = false;
    size_t instances = 0;
    // child label -> (min occurrences, max occurrences, #parents seen in)
    std::map<std::string, std::pair<size_t, size_t>> child_minmax;
    std::map<std::string, size_t> child_parents;
  };
  std::map<std::string, Stats> per_label;

  std::set<Oid> reachable = db.ReachableOids();
  for (const Oid& oid : reachable) {
    const OemObject* obj = db.Find(oid);
    if (obj == nullptr) continue;
    Stats& stats = per_label[obj->label];
    ++stats.instances;
    if (obj->is_atomic()) {
      stats.seen_atomic = true;
      continue;
    }
    stats.seen_set = true;
    std::map<std::string, size_t> counts;
    for (const Oid& child : obj->value.children()) {
      const OemObject* cobj = db.Find(child);
      if (cobj != nullptr) ++counts[cobj->label];
    }
    for (const auto& [label, n] : counts) {
      auto [it, inserted] =
          stats.child_minmax.emplace(label, std::make_pair(n, n));
      if (!inserted) {
        it->second.first = std::min(it->second.first, n);
        it->second.second = std::max(it->second.second, n);
      }
      ++stats.child_parents[label];
    }
  }

  std::string text;
  for (const auto& [label, stats] : per_label) {
    if (stats.seen_atomic && stats.seen_set) continue;  // no DTD summary
    if (stats.seen_atomic) {
      text += StrCat("<!ELEMENT ", label, " CDATA>\n");
      continue;
    }
    std::vector<std::string> parts;
    for (const auto& [child, minmax] : stats.child_minmax) {
      size_t parents = stats.child_parents.at(child);
      bool in_all = parents == stats.instances;
      size_t max = minmax.second;
      const char* marker;
      if (in_all && max == 1) {
        marker = "";  // exactly one everywhere
      } else if (max == 1) {
        marker = "?";
      } else {
        marker = "*";
      }
      parts.push_back(StrCat(child, marker));
    }
    if (parts.empty()) {
      text += StrCat("<!ELEMENT ", label, " EMPTY>\n");
    } else {
      text += StrCat("<!ELEMENT ", label, " (", Join(parts, ", "), ")>\n");
    }
  }
  return Dtd::Parse(text);
}

}  // namespace tslrw
