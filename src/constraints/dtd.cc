#include "constraints/dtd.h"

#include "common/lexer.h"
#include "common/string_util.h"

namespace tslrw {

std::string_view MultiplicityToString(Multiplicity m) {
  switch (m) {
    case Multiplicity::kOne: return "";
    case Multiplicity::kOptional: return "?";
    case Multiplicity::kStar: return "*";
    case Multiplicity::kPlus: return "+";
  }
  return "";
}

const Dtd::Child* Dtd::Element::FindChild(const std::string& label) const {
  for (const Child& c : children) {
    if (c.label == label) return &c;
  }
  return nullptr;
}

namespace {

Multiplicity ParseMarker(TokenCursor* cur) {
  if (cur->TryConsume(TokenKind::kQuestion)) return Multiplicity::kOptional;
  if (cur->TryConsume(TokenKind::kStar)) return Multiplicity::kStar;
  if (cur->TryConsume(TokenKind::kPlus)) return Multiplicity::kPlus;
  return Multiplicity::kOne;
}

Multiplicity Weaken(Multiplicity m) {
  switch (m) {
    case Multiplicity::kOne: return Multiplicity::kOptional;
    case Multiplicity::kPlus: return Multiplicity::kStar;
    default: return m;
  }
}

/// Parses `(a, b?, c*)` or `(a | b)`; alternation weakens every alternative
/// to an optional occurrence.
Status ParseContentModel(TokenCursor* cur, Dtd::Element* element) {
  TSLRW_RETURN_NOT_OK(cur->Expect(TokenKind::kLParen).status());
  bool alternation = false;
  std::vector<Dtd::Child> children;
  while (true) {
    TSLRW_ASSIGN_OR_RETURN(Token name, cur->Expect(TokenKind::kIdent));
    Multiplicity m = ParseMarker(cur);
    children.push_back(Dtd::Child{name.text, m});
    if (cur->TryConsume(TokenKind::kComma)) continue;
    if (cur->TryConsume(TokenKind::kPipe)) {
      alternation = true;
      continue;
    }
    TSLRW_RETURN_NOT_OK(cur->Expect(TokenKind::kRParen).status());
    break;
  }
  if (alternation) {
    for (Dtd::Child& c : children) c.multiplicity = Weaken(c.multiplicity);
  }
  // Repeated mentions of one child label weaken to `*`.
  for (const Dtd::Child& c : children) {
    if (Dtd::Child* prior = [&]() -> Dtd::Child* {
          for (Dtd::Child& p : element->children) {
            if (p.label == c.label) return &p;
          }
          return nullptr;
        }()) {
      prior->multiplicity = Multiplicity::kStar;
    } else {
      element->children.push_back(c);
    }
  }
  return Status::OK();
}

}  // namespace

Result<Dtd> Dtd::Parse(std::string_view text) {
  TSLRW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenCursor cur(std::move(tokens));
  Dtd dtd;
  while (!cur.AtEof()) {
    TSLRW_RETURN_NOT_OK(cur.Expect(TokenKind::kLAngle).status());
    TSLRW_RETURN_NOT_OK(cur.Expect(TokenKind::kBang).status());
    TSLRW_RETURN_NOT_OK(cur.ExpectIdent("ELEMENT"));
    TSLRW_ASSIGN_OR_RETURN(Token name, cur.Expect(TokenKind::kIdent));
    if (dtd.elements_.count(name.text) > 0) {
      return Status::ParseError(
          StrCat("duplicate <!ELEMENT ", name.text, "> declaration"));
    }
    Element element;
    if (cur.TryConsumeIdent("CDATA")) {
      element.atomic = true;
    } else if (cur.TryConsumeIdent("EMPTY")) {
      element.atomic = false;  // a set element with no permitted children
    } else {
      TSLRW_RETURN_NOT_OK(ParseContentModel(&cur, &element));
    }
    TSLRW_RETURN_NOT_OK(cur.Expect(TokenKind::kRAngle).status());
    dtd.elements_.emplace(name.text, std::move(element));
  }
  return dtd;
}

const Dtd::Element* Dtd::Find(const std::string& label) const {
  auto it = elements_.find(label);
  return it == elements_.end() ? nullptr : &it->second;
}

std::string Dtd::ToString() const {
  std::string out;
  for (const auto& [name, element] : elements_) {
    out += StrCat("<!ELEMENT ", name, " ");
    if (element.atomic) {
      out += "CDATA";
    } else if (element.children.empty()) {
      out += "EMPTY";
    } else {
      out += StrCat(
          "(",
          JoinMapped(element.children, ", ",
                     [](const Child& c) {
                       return StrCat(c.label,
                                     MultiplicityToString(c.multiplicity));
                     }),
          ")");
    }
    out += ">\n";
  }
  return out;
}

}  // namespace tslrw
