#include "constraints/inference.h"

namespace tslrw {

std::optional<std::string> StructuralConstraints::InferMiddleLabel(
    const std::string& parent_label,
    const std::string& grandchild_label) const {
  const Dtd::Element* parent = dtd_.Find(parent_label);
  if (parent == nullptr || parent->atomic) return std::nullopt;
  std::optional<std::string> unique;
  for (const Dtd::Child& middle : parent->children) {
    const Dtd::Element* mid_elem = dtd_.Find(middle.label);
    // An undeclared middle element could have any children: inference is
    // only safe when every candidate is declared.
    bool can_have = mid_elem == nullptr
                        ? true
                        : (!mid_elem->atomic &&
                           mid_elem->FindChild(grandchild_label) != nullptr);
    if (mid_elem == nullptr) {
      // Unknown content model: this candidate may or may not allow the
      // grandchild, so uniqueness can never be established.
      return std::nullopt;
    }
    if (can_have) {
      if (unique.has_value()) return std::nullopt;  // ambiguous
      unique = middle.label;
    }
  }
  return unique;
}

bool StructuralConstraints::HasUniqueChild(
    const std::string& parent_label, const std::string& child_label) const {
  const Dtd::Element* parent = dtd_.Find(parent_label);
  if (parent == nullptr || parent->atomic) return false;
  const Dtd::Child* child = parent->FindChild(child_label);
  return child != nullptr && child->multiplicity == Multiplicity::kOne;
}

bool StructuralConstraints::IsAtomic(const std::string& label) const {
  const Dtd::Element* element = dtd_.Find(label);
  return element != nullptr && element->atomic;
}

bool StructuralConstraints::AllowsChild(const std::string& parent_label,
                                        const std::string& child_label) const {
  const Dtd::Element* parent = dtd_.Find(parent_label);
  if (parent == nullptr) return true;  // open world
  if (parent->atomic) return false;
  return parent->FindChild(child_label) != nullptr;
}

}  // namespace tslrw
