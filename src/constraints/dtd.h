#ifndef TSLRW_CONSTRAINTS_DTD_H_
#define TSLRW_CONSTRAINTS_DTD_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace tslrw {

/// \brief How often a child element may occur in its parent's content model.
enum class Multiplicity {
  kOne,       ///< exactly one (`name`)
  kOptional,  ///< zero or one (`middle?`)
  kStar,      ///< zero or more (`address*`)
  kPlus,      ///< one or more (`author+`)
};

std::string_view MultiplicityToString(Multiplicity m);

/// \brief A structural description of source data in the DTD subset the
/// paper uses (\S3.3): `<!ELEMENT name (child-spec, ...)>` with `?`/`*`/`+`
/// occurrence markers, or `<!ELEMENT name CDATA>` for atomic elements.
///
/// Since OEM does not support order, the order of children in a content
/// model is ignored (footnote 8). Alternation (`|`) is accepted and treated
/// as making each alternative optional, the weakest reading that stays
/// sound for inference.
class Dtd {
 public:
  struct Child {
    std::string label;
    Multiplicity multiplicity;
  };

  struct Element {
    /// True for CDATA declarations: instances are atomic objects.
    bool atomic = false;
    std::vector<Child> children;

    /// Looks up \p label among the children; nullptr if not allowed.
    const Child* FindChild(const std::string& label) const;
  };

  /// Parses a sequence of `<!ELEMENT ...>` declarations. Duplicate
  /// declarations for one element are rejected; undeclared child references
  /// are permitted (open-world, like real DTDs used with OEM data).
  static Result<Dtd> Parse(std::string_view text);

  /// Content model of \p label; nullptr if the element is not declared.
  const Element* Find(const std::string& label) const;

  bool declares(const std::string& label) const {
    return Find(label) != nullptr;
  }
  const std::map<std::string, Element>& elements() const { return elements_; }

  /// Re-renders the declarations (sorted by element name).
  std::string ToString() const;

 private:
  std::map<std::string, Element> elements_;
};

}  // namespace tslrw

#endif  // TSLRW_CONSTRAINTS_DTD_H_
