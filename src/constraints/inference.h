#ifndef TSLRW_CONSTRAINTS_INFERENCE_H_
#define TSLRW_CONSTRAINTS_INFERENCE_H_

#include <optional>
#include <string>

#include "constraints/dtd.h"

namespace tslrw {

/// \brief The two kinds of information the rewriting algorithm extracts
/// from a structural description (\S3.3):
///
///  - **label inference**: in a path expression `a.?.c`, if the only child
///    label of `a` that can itself have a `c` child is `b`, then `? = b`;
///  - **labeled functional dependencies**: if objects labeled `a` have
///    exactly one `b` subobject, the dependency X_a -> Y_b holds and the
///    chase may unify sibling `b` children of one `a` object.
///
/// The class is a thin query layer over a parsed Dtd; it performs no
/// mutation of queries itself (see rewrite/chase.h for application).
class StructuralConstraints {
 public:
  StructuralConstraints() = default;
  explicit StructuralConstraints(Dtd dtd) : dtd_(std::move(dtd)) {}

  const Dtd& dtd() const { return dtd_; }

  /// Label inference for `parent.?.grandchild_label`: the unique child
  /// label `b` of \p parent_label whose content model allows a
  /// \p grandchild_label child. Returns nullopt if \p parent_label is
  /// undeclared, or zero / more than one candidate exists.
  std::optional<std::string> InferMiddleLabel(
      const std::string& parent_label,
      const std::string& grandchild_label) const;

  /// True iff \p parent_label objects have *exactly one* \p child_label
  /// subobject (multiplicity `kOne`), i.e. the labeled FD
  /// X_parent -> Y_child holds.
  bool HasUniqueChild(const std::string& parent_label,
                      const std::string& child_label) const;

  /// True iff the DTD declares \p label as CDATA (atomic objects only).
  bool IsAtomic(const std::string& label) const;

  /// True iff \p child_label can appear as a child of \p parent_label.
  /// Undeclared parents permit anything (open world).
  bool AllowsChild(const std::string& parent_label,
                   const std::string& child_label) const;

 private:
  Dtd dtd_;
};

}  // namespace tslrw

#endif  // TSLRW_CONSTRAINTS_INFERENCE_H_
