#ifndef TSLRW_TESTING_MAINT_DIFFERENTIAL_H_
#define TSLRW_TESTING_MAINT_DIFFERENTIAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "service/server.h"

namespace tslrw {

/// \brief Knobs for one differential maintenance drill. Everything that
/// shapes outcomes is derived from these, so one options struct replays
/// byte-identically.
struct MaintDrillOptions {
  /// Drives the catalog-mutation script, the query fixtures, and every
  /// request seed.
  uint64_t seed = 0;
  /// QueryServer shards behind the drilled ShardRouter (1 = the
  /// single-shard cluster, answer-identical to a plain QueryServer).
  size_t shards = 1;
  /// Request parallelism per step: 1 issues synchronously, > 1 submits
  /// that many requests to the shard pools concurrently (worker threads
  /// are sized to match). Either way observations are recorded in
  /// submission order, so parallelism cannot reorder the comparison.
  size_t parallelism = 1;
  /// Catalog mutations replayed (each followed by a request burst).
  size_t steps = 10;
  size_t requests_per_step = 6;
  /// Views in the starting catalog and distinct client queries.
  size_t base_views = 6;
  size_t num_queries = 5;
  /// Base server configuration; the harness overrides threads (from
  /// `parallelism`) and the maintenance mode (one arm each).
  ServerOptions server;
};

/// \brief The outcome of one drill: whether the selective arm was
/// byte-identical to the full-flush arm, plus the selective arm's
/// retention accounting (what incremental maintenance actually saved).
struct MaintDrillResult {
  /// Every observation — answer bytes, completeness, execution report,
  /// the served plan list, and the normalized request trace — matched
  /// between the two arms, for every request of every step.
  bool identical = true;
  /// Evidence for each mismatch (empty iff identical).
  std::vector<std::string> divergences;
  /// Deterministic per-step log from the selective arm: the mutation
  /// applied and the MaintenanceReport it produced.
  std::string report;
  /// Selective-arm totals across all ReplaceMediator calls.
  size_t entries_examined = 0;
  size_t entries_invalidated = 0;
  size_t entries_retained = 0;
  /// Cluster-wide plan-cache hits after the replay, per arm: retention
  /// converts the flush arm's cold misses into warm hits.
  uint64_t selective_hits = 0;
  uint64_t flush_hits = 0;
};

/// \brief Normalizes a per-request Tracer::ToText dump so the selective
/// and full-flush arms compare byte-identically: drops the span subtree
/// rooted at any `mediator.plan_search` span (present only on cold
/// misses), strips the `plan_cache=hit|miss` annotation, and erases the
/// span count from the `trace (N spans)` header. Everything else — span
/// names, tick ranges, outcomes — must match exactly; the plan search
/// never advances the request's virtual clock, so execution spans line up
/// whether or not a search preceded them.
std::string NormalizeMaintTrace(const std::string& trace);

/// \brief Replays one seeded catalog-mutation + query script twice — once
/// with MaintenanceMode::kSelective, once with kFullFlush — against
/// otherwise identical ShardRouters, and compares every observable of
/// every request byte-for-byte (modulo cache-hit attribution, which the
/// two arms differ on by design). The script mutates the catalog between
/// request bursts: no-op swaps, α-renamings of a view's variables, view
/// body edits, additions, removals, and constraint (DTD) toggles.
///
/// A clean result is the tentpole's correctness proof: selective
/// invalidation retained entries only where a fresh plan search would
/// have produced the same plans, answers, reports, and traces.
///
/// Fails (the Result) only on fixture-construction errors; divergences
/// are reported in the MaintDrillResult.
Result<MaintDrillResult> RunMaintDifferentialDrill(
    const MaintDrillOptions& options);

}  // namespace tslrw

#endif  // TSLRW_TESTING_MAINT_DIFFERENTIAL_H_
