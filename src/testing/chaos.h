#ifndef TSLRW_TESTING_CHAOS_H_
#define TSLRW_TESTING_CHAOS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "mediator/capability.h"
#include "mediator/fault.h"
#include "oem/database.h"
#include "service/server.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief One phase of a chaos drill: a named fault regime plus an
/// optional serving-layer disturbance, applied to a *live* QueryServer —
/// schedules change between phases while the server keeps serving, which
/// is exactly the flap/storm/recover shape real incidents have.
struct ChaosPhase {
  /// How the drill interferes with the serving layer during the phase.
  enum class Action : uint8_t {
    kNone,
    /// Compile the catalog index, corrupt its serialized image, prove the
    /// loader rejects it (kDataLoss — never a silently wrong index), then
    /// attach the pristine index to the running server mid-drill.
    kIndexCorruption,
    /// Publish an answer-equivalent catalog snapshot halfway through the
    /// phase's request stream: answers before and after must agree and the
    /// plan cache must survive the swap.
    kCatalogSwapRace,
    /// Block every worker inside a fetch, fill the bounded queue, and
    /// prove overflow rejects deterministically with kResourceExhausted
    /// while the retry-after hint reports the queued backlog; then release
    /// the gate and drain everything. Requires a single-shard drill (the
    /// saturation arithmetic assumes one pool); multi-shard scripts use
    /// kShardPartition instead.
    kPoolSaturation,
    /// Cluster drills only (ChaosOptions::cluster_shards > 1): partition
    /// the shard owning the first drill query — its keys re-route to the
    /// ring successor — while the phase's faults sever a source, so
    /// answers degrade per §7 (sound, roots ⊆ baseline); halfway through
    /// the phase the shard rejoins and the faults clear, and the standard
    /// recovery checks then prove answers return to the byte-identical
    /// baseline with the plan caches retained.
    kShardPartition,
  };

  std::string name;
  /// Fault schedules active while the phase runs. Keys are source names or
  /// capability-view names (FaultInjector::SetSchedule semantics); empty
  /// means the phase is fault-free.
  std::map<std::string, FaultSchedule> faults;
  Action action = Action::kNone;
};

/// \brief Drill-wide knobs. Everything that shapes outcomes is either here
/// or in the phase script, so one (script, options) pair replays
/// byte-identically.
struct ChaosOptions {
  /// Drives request seeds, and — in StandardChaosScript — the choice of
  /// flap/storm targets and fault magnitudes.
  uint64_t seed = 0;
  /// Sequential requests issued per phase (round-robin over the queries).
  size_t requests_per_phase = 6;
  /// End-to-end tick budget stamped on every drill request; storms and
  /// retry backoff draw it down, and exhaustion degrades per §7.
  uint64_t request_deadline_ticks = 256;
  /// Base server configuration. The harness overrides
  /// request_deadline_ticks from above and, when the breaker policy is
  /// left disabled, turns on breakers and hedging with their defaults (a
  /// chaos drill without breakers has nothing to recover).
  ServerOptions server;
  /// Submissions past threads + queue_capacity during kPoolSaturation —
  /// each must be rejected, deterministically.
  size_t saturation_overflow = 3;
  /// Fault-free request rounds allowed for every breaker to re-close
  /// after the scripted phases before the drill declares non-recovery.
  size_t max_recovery_rounds = 16;
  /// QueryServer shards behind the drilled ShardRouter. 1 (the default)
  /// drills the single-shard cluster, which answers byte-identically to a
  /// plain QueryServer; > 1 makes StandardChaosScript swap the
  /// pool-saturation phase for the shard-partition/rejoin phase.
  size_t cluster_shards = 1;
};

/// \brief The outcome of one drill. `report` (and `traces`) are built only
/// from deterministic inputs — virtual-clock ticks, seeded coins, breaker
/// event counts — so two runs of the same (sources, catalog, queries,
/// script, options) produce byte-identical strings; the chaos tests and
/// the CI drill job diff them.
struct ChaosDrillResult {
  /// Per-phase outcome tallies, breaker states, recovery verdict.
  std::string report;
  /// The span tree of the first request of every sequential phase
  /// (Tracer::ToText on the request's virtual clock).
  std::string traces;
  /// Every answered request's roots were a subset of the fault-free
  /// baseline (degraded answers sound, §7), and every kComplete answer was
  /// byte-identical to it.
  bool sound = true;
  /// After the script: breakers re-closed, answers byte-identical to the
  /// baseline, plan cache retained.
  bool recovered = true;
  /// Human-readable descriptions of every violated invariant (empty iff
  /// sound && recovered).
  std::vector<std::string> violations;
};

/// \brief The standard drill script: baseline, endpoint flap (a dead
/// capability view), latency storm (slow replies on a view, provoking
/// hedges and deadline pressure), flaky network, index corruption
/// mid-drill, answer-equivalent snapshot swap race, and pool saturation —
/// or, when options.cluster_shards > 1, a shard partition/rejoin phase in
/// saturation's place. Targets and magnitudes are drawn deterministically
/// from options.seed, preferring views of replicated sources (so failover
/// and hedging have somewhere to go).
std::vector<ChaosPhase> StandardChaosScript(
    const std::vector<SourceDescription>& sources,
    const ChaosOptions& options);

/// \brief Runs \p script against a live ShardRouter (with
/// options.cluster_shards QueryServer shards — one by default, which is
/// answer-identical to a plain QueryServer) over \p sources / \p catalog
/// and checks the drill invariants:
///
///  1. soundness — every answer's roots ⊆ the fault-free baseline's, and
///     complete answers are byte-identical to it;
///  2. determinism — the returned report/traces depend only on the
///     arguments (callers replay and diff);
///  3. recovery — after the script plus fault-free recovery rounds, every
///     breaker is closed, answers match the baseline byte-for-byte, and
///     the plan cache still holds the drilled queries' plans.
///
/// Fails (the Result) only on setup errors — unanswerable fixture queries,
/// Mediator::Make rejection; invariant violations are reported in the
/// ChaosDrillResult instead, with the evidence in `violations`.
Result<ChaosDrillResult> RunChaosDrill(
    const std::vector<SourceDescription>& sources,
    const SourceCatalog& catalog, const std::vector<TslQuery>& queries,
    const std::vector<ChaosPhase>& script, const ChaosOptions& options);

}  // namespace tslrw

#endif  // TSLRW_TESTING_CHAOS_H_
