#ifndef TSLRW_TESTING_RANDOM_RULES_H_
#define TSLRW_TESTING_RANDOM_RULES_H_

#include <random>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "oem/generator.h"
#include "tsl/ast.h"
#include "tsl/parser.h"

namespace tslrw::testing {

/// \brief Deterministic generator of random safe TSL queries and views over
/// the alphabet produced by GenerateOemDatabase (labels l0..l{L-1}, atomic
/// values v0..v{V-1}, roots labeled `root_label`).
///
/// Produced rules are paths of depth 1..max_depth whose steps use either a
/// constant label or a label variable, and whose tails are constants,
/// variables, or `{}`; views restructure by republishing the matched
/// subobjects under Skolem ids. All rules parse, validate, and are safe by
/// construction.
class RandomRules {
 public:
  RandomRules(uint64_t seed, int num_labels, int num_values,
              std::string root_label)
      : rng_(seed),
        num_labels_(num_labels),
        num_values_(num_values),
        root_label_(std::move(root_label)) {}

  /// A random query named \p name over \p source: 1-2 path conditions
  /// joined on the root variable, head `<q(P) out yes>`.
  TslQuery Query(const std::string& name, const std::string& source) {
    int conditions = 1 + Pick(2);
    std::vector<std::string> body;
    for (int c = 0; c < conditions; ++c) {
      body.push_back(PathCondition("P", source, 1 + Pick(2)));
    }
    std::string text =
        StrCat("<q", Pick(3), "(P) out yes> :- ", Join(body, " AND "));
    return MustParseRule(text, name);
  }

  /// A random view named \p name over \p source: republishes the matched
  /// root and one subobject layer under fresh Skolem ids.
  TslQuery View(const std::string& name, const std::string& source) {
    std::string label = StepLabel("LV'");
    std::string text = StrCat(
        "<v(P') vout {<w(X') m Z'>}> :- <P' ", root_label_, " {<X' ", label,
        " Z'>}>@", source);
    return MustParseRule(text, name);
  }

  /// A view that copies whole subobjects (exercises copy semantics).
  TslQuery CopyView(const std::string& name, const std::string& source) {
    std::string text = StrCat("<v(P') vout {<X' Y' Z'>}> :- <P' ",
                              root_label_, " {<X' Y' Z'>}>@", source);
    return MustParseRule(text, name);
  }

  /// A two-level view: republishes a depth-2 body path with nested head
  /// structure (exercises deep mapping alignment and composition's
  /// push-below-copied-value branch).
  TslQuery DeepView(const std::string& name, const std::string& source) {
    std::string l1 = StepLabel("LA'");
    std::string l2 = StepLabel("LB'");
    std::string text = StrCat(
        "<v(P') vout {<w(X') mid {<u(W') leaf Z'>}>}> :- <P' ", root_label_,
        " {<X' ", l1, " {<W' ", l2, " Z'>}>}>@", source);
    return MustParseRule(text, name);
  }

 private:
  std::string PathCondition(const std::string& root_var,
                            const std::string& source, int depth) {
    std::string open = StrCat("<", root_var, " ", root_label_, " {");
    std::string close = "}>";
    std::string inner;
    for (int d = 0; d < depth; ++d) {
      std::string oid = StrCat("X", root_var, d, Pick(2));
      std::string label = StepLabel(StrCat("L", d, Pick(2)));
      if (d + 1 < depth) {
        inner += StrCat("<", oid, " ", label, " {");
      } else {
        inner += StrCat("<", oid, " ", label, " ", Tail(d), ">");
        for (int u = 0; u < d; ++u) inner += "}>";
      }
    }
    return StrCat(open, inner, close, "@", source);
  }

  std::string StepLabel(const std::string& var_name) {
    // 60% constant label, 40% variable.
    if (Pick(10) < 6) return StrCat("l", Pick(num_labels_));
    return var_name;
  }

  std::string Tail(int depth) {
    switch (Pick(4)) {
      case 0: return StrCat("v", Pick(num_values_));  // constant
      case 1: return "{}";
      default: return StrCat("W", depth, Pick(3));    // variable
    }
  }

  int Pick(int n) {
    return std::uniform_int_distribution<int>(0, n - 1)(rng_);
  }

  static TslQuery MustParseRule(const std::string& text,
                                const std::string& name) {
    auto parsed = ParseTslQuery(text, name);
    if (!parsed.ok()) {
      fprintf(stderr, "RandomRules produced unparsable rule: %s\n  %s\n",
              text.c_str(), parsed.status().ToString().c_str());
      abort();
    }
    return std::move(parsed).ValueOrDie();
  }

  std::mt19937_64 rng_;
  int num_labels_;
  int num_values_;
  std::string root_label_;
};

}  // namespace tslrw::testing

#endif  // TSLRW_TESTING_RANDOM_RULES_H_
